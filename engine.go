// Package mistique is a Go implementation of MISTIQUE (Model Intermediate
// STore and QUery Engine, SIGMOD 2018): a system that captures, stores and
// queries model intermediates — the datasets produced by every stage of a
// traditional ML pipeline and the hidden activations of every layer of a
// deep neural network — to accelerate model diagnosis.
//
// A System ties together the three architectural components of the paper:
// the PipelineExecutor (internal/pipeline and internal/nn run models and
// hand intermediates over for logging), the DataStore (internal/colstore,
// a column-chunked, partitioned, de-duplicating, compressed store), and
// the ChunkReader (the query path, which consults the cost model in
// internal/cost to decide between re-running the model and reading a
// materialized intermediate). The MetadataDB (internal/metadata) records
// models, stage timings, intermediate locations and query counts.
//
// A System is safe for concurrent use: Log*, GetIntermediate, Flush,
// Calibrate and DropModel may be called from multiple goroutines, and the
// hot paths (per-column quantize/encode/dedup on ingest, partition
// compression on flush, chunk reads on query) fan out across a worker pool
// bounded by Config.Workers. See DESIGN.md for the concurrency model.
//
// Basic use:
//
//	sys, _ := mistique.Open(dir, mistique.Config{})
//	sys.LogPipeline(p, env)                  // log a TRAD pipeline
//	sys.LogDNN("vgg@e0", net, images, opts)  // log DNN activations
//	res, _ := sys.GetIntermediate("vgg@e0", "conv5_3", nil, 1000)
//	// res.Data is an examples x columns matrix; res.Strategy says whether
//	// the engine re-ran the model or read the stored intermediate.
package mistique

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mistique/internal/cas"
	"mistique/internal/colstore"
	"mistique/internal/cost"
	"mistique/internal/frame"
	"mistique/internal/metadata"
	"mistique/internal/nindex"
	"mistique/internal/nn"
	"mistique/internal/parallel"
	"mistique/internal/pipeline"
	"mistique/internal/quant"
	"mistique/internal/sample"
	"mistique/internal/tensor"
)

// Scheme selects the storage scheme for logged intermediates (Sec. 4.1).
type Scheme string

const (
	// SchemeFull stores raw float32 values.
	SchemeFull Scheme = "FULL"
	// SchemeLP stores float16 values (LP_QT).
	SchemeLP Scheme = "LP_QT"
	// Scheme8Bit stores 256-quantile bin indices (KBIT_QT, k=8).
	Scheme8Bit Scheme = "8BIT_QT"
	// SchemePool2 average-pools activation maps 2x2 before storing
	// (POOL_QT sigma=2, the paper's default for DNNs).
	SchemePool2 Scheme = "POOL2_QT"
	// SchemePool4 average-pools activation maps 4x4 before storing
	// (POOL_QT sigma=4, the middle point of the paper's overhead sweep).
	SchemePool4 Scheme = "POOL4_QT"
	// SchemePool32 collapses each activation map to one value
	// (POOL_QT sigma=S).
	SchemePool32 Scheme = "POOL32_QT"
	// SchemeThreshold stores 1-bit indicators against the 99.5th
	// percentile (THRESHOLD_QT).
	SchemeThreshold Scheme = "THRESHOLD_QT"
)

// Config controls a System. Zero values select paper defaults.
type Config struct {
	// RowBlockRows is the RowBlock height (default 1024, the paper's 1K).
	RowBlockRows int
	// Store configures the column store; Mode and dedup switches select
	// the STORE_ALL / DEDUP behaviours of the evaluation.
	Store colstore.Config
	// Gamma is the adaptive-materialization threshold in seconds/byte
	// (Eq. 5). Negative disables adaptive mode and materializes
	// everything at logging time (the paper's DEDUP/STORE_ALL setups).
	// Zero also materializes everything.
	Gamma float64
	// Cost holds calibrated cost-model constants; zero uses defaults.
	Cost cost.Params
	// Workers bounds the goroutines each hot path fans out to: per-column
	// quantizer fitting, encoding and dedup hashing on ingest; partition
	// compression on flush/compaction; chunk reads on query. 0 selects
	// GOMAXPROCS; 1 recovers the serial baseline for A/B benchmarking.
	Workers int
	// SlowQueryThreshold, when positive, enables the slow-query log:
	// queries whose fetch wall time meets or exceeds the threshold append
	// a JSON line (model, intermediate, strategy, cost estimates, measured
	// seconds) to <dir>/slow_queries.jsonl. Zero disables logging.
	SlowQueryThreshold time.Duration
	// SlowQueryLogMaxBytes bounds slow_queries.jsonl: when the log grows
	// past this size it is rotated to slow_queries.jsonl.1 (one generation
	// kept, the previous .1 replaced). Zero selects 4 MiB.
	SlowQueryLogMaxBytes int64
	// Sample sizes the per-intermediate reservoir samples behind the
	// approximate query path (ColDist, ApproxTopK, ConfusionMatrix,
	// GetIntermediateApprox). Zero values select sample.DefaultCap etc.
	// Samples are built at ingest for intermediates with more rows than
	// the cap (a sample that would hold every row adds nothing over the
	// store) and always for streaming ingest.
	Sample sample.Config
	// Index controls the lazily built neuron-centric diagnostic indexes
	// (internal/nindex) behind TopK, FilterRows and KNN; see IndexConfig.
	Index IndexConfig
}

// System is a MISTIQUE instance rooted at a directory.
type System struct {
	// mu guards the resident-model maps (pipelines, networks, logging)
	// and the mutable cost constants in cfg.Cost. Everything else in cfg
	// is immutable after Open; store and meta synchronize internally.
	mu    sync.RWMutex
	cfg   Config
	dir   string
	store *colstore.Store
	meta  *metadata.DB
	// nidx manages the lazy per-column diagnostic indexes (nil when
	// Config.Index.Disable is set; every query path then full-scans).
	nidx *nindex.Manager
	// weights is the content-addressed object store holding one weight
	// snapshot per logged DNN version; fine-tuned checkpoints dedup at
	// CDC-chunk granularity and store as deltas along Parent links.
	weights *cas.Store

	// metrics is the system-wide observability registry (never nil); the
	// store and catalog register their instruments in the same registry at
	// Open, so System.Metrics() sees every layer.
	metrics *systemMetrics
	// slowMu guards the lazily opened slow-query log file and its
	// rotation bookkeeping.
	slowMu   sync.Mutex
	slowLog  *os.File
	slowSize int64

	// samples persists per-intermediate reservoir samples (data/sample);
	// sampleMu guards the in-memory cache of loaded snapshots.
	samples     *sample.Manager
	sampleMu    sync.Mutex
	sampleCache map[string]*sample.Sample
	// streamMu guards the map of live streaming-ingest states; each state
	// has its own mutex for the ingest hot path.
	streamMu sync.Mutex
	streams  map[string]*streamState

	pipelines map[string]*pipelineModel
	networks  map[string]*dnnModel
	// logging holds model names with a Log* call in flight, so concurrent
	// logs of the same name fail fast instead of racing.
	logging map[string]struct{}
}

type pipelineModel struct {
	p   *pipeline.Pipeline
	env map[string]*frame.Frame
	// stageOf maps intermediate name -> stage index.
	stageOf map[string]int
	// colsOf maps intermediate name -> numeric column names.
	colsOf map[string][]string
	// exec serializes pipeline re-runs: transformers keep per-run state,
	// so only one RunTo may execute at a time.
	exec sync.Mutex
}

type dnnModel struct {
	net   *nn.Network
	input *tensor.T4
	opts  DNNLogOptions
	// layerOf maps intermediate (layer) name -> layer index.
	layerOf map[string]int
	// exec serializes forward passes: layers cache their last input for
	// backprop, so Network is not reentrant.
	exec sync.Mutex
}

// Open creates or reopens a System rooted at dir. Reopening a previously
// flushed directory restores the catalog and the stored chunks, so
// materialized intermediates are immediately readable; model re-runs
// (and thus the RERUN strategy and adaptive materialization) become
// available again once the corresponding pipelines/networks are re-logged
// — their fitted transformer state lives in memory, as in the paper.
func Open(dir string, cfg Config) (*System, error) {
	if cfg.RowBlockRows <= 0 {
		cfg.RowBlockRows = 1024
	}
	cfg.Store.RowBlockRows = cfg.RowBlockRows
	if cfg.Store.Workers == 0 {
		cfg.Store.Workers = cfg.Workers
	}
	if cfg.Cost == (cost.Params{}) {
		cfg.Cost = cost.DefaultParams()
	}
	if cfg.SlowQueryLogMaxBytes <= 0 {
		cfg.SlowQueryLogMaxBytes = 4 << 20
	}
	metrics := newSystemMetrics()
	cfg.Store.Obs = metrics.reg
	st, err := colstore.Open(filepath.Join(dir, "data"), cfg.Store)
	if err != nil {
		return nil, fmt.Errorf("mistique: %w", err)
	}
	meta := metadata.NewDB()
	metaPath := filepath.Join(dir, "metadata.json")
	if _, statErr := os.Stat(metaPath); statErr == nil {
		meta, err = metadata.Load(metaPath)
		if errors.Is(err, metadata.ErrCorrupt) {
			// Fail soft, like the store does for its manifest: quarantine
			// the corrupt catalog and start fresh. Stored chunks survive in
			// the column store and become queryable again as models are
			// re-logged.
			os.Rename(metaPath, metaPath+".corrupt")
			meta, err = metadata.NewDB(), nil
		}
		if err != nil {
			return nil, fmt.Errorf("mistique: reopen catalog: %w", err)
		}
	}
	meta.SetObs(metrics.reg)
	var nidx *nindex.Manager
	if !cfg.Index.Disable {
		// Index files live in a subdirectory of the store's data dir (the
		// store's recovery sweep skips subdirectories, so it never mistakes
		// them for partitions) and share the store's fault-injectable FS.
		nidx, err = nindex.NewManager(nindex.ManagerConfig{
			Dir:            filepath.Join(dir, "data", "nindex"),
			FS:             cfg.Store.FS,
			MemBudgetBytes: cfg.Index.MemBudgetBytes,
			Index: nindex.Config{
				SegmentEntries: cfg.Index.SegmentEntries,
				HistogramBins:  cfg.Index.HistogramBins,
			},
			Obs: metrics.reg,
		})
		if err != nil {
			return nil, fmt.Errorf("mistique: %w", err)
		}
	}
	// Weight snapshots live in a content-addressed store next to the
	// partition files (a subdirectory, so the colstore recovery sweep
	// never mistakes its files for partitions).
	weights, err := cas.OpenStore(filepath.Join(dir, "data", "cas"), cas.Config{FS: cfg.Store.FS})
	if err != nil {
		return nil, fmt.Errorf("mistique: open weight store: %w", err)
	}
	// Reservoir samples live next to the partitions (a subdirectory, so
	// the colstore recovery sweep skips them), like nindex and cas.
	samples, err := sample.NewManager(sample.ManagerConfig{
		Dir: filepath.Join(dir, "data", "sample"),
		FS:  cfg.Store.FS,
		Obs: metrics.reg,
	})
	if err != nil {
		return nil, fmt.Errorf("mistique: open sample store: %w", err)
	}
	sys := &System{
		cfg:         cfg,
		dir:         dir,
		store:       st,
		meta:        meta,
		nidx:        nidx,
		weights:     weights,
		metrics:     metrics,
		samples:     samples,
		sampleCache: make(map[string]*sample.Sample),
		streams:     make(map[string]*streamState),
		pipelines:   make(map[string]*pipelineModel),
		networks:    make(map[string]*dnnModel),
		logging:     make(map[string]struct{}),
	}
	// Replay streaming-ingest WALs (data/wal): every batch acknowledged
	// before a crash is re-offered to the store and the sampler.
	if err := sys.replayStreams(); err != nil {
		return nil, fmt.Errorf("mistique: %w", err)
	}
	return sys, nil
}

// Metadata exposes the catalog (read-mostly; used by tools and tests).
func (s *System) Metadata() *metadata.DB { return s.meta }

// RecoveryReport returns what the store's Open-time recovery sweep had to
// repair (nil only before Open completes; Clean() reports a healthy start).
func (s *System) RecoveryReport() *colstore.RecoveryReport { return s.store.LastRecovery() }

// Store exposes the column store for stats and flushing.
func (s *System) Store() *colstore.Store { return s.store }

// Flush writes all dirty partitions to disk (concurrently, bounded by
// Config.Workers) and persists the catalog. Streaming-ingest states drain
// first (their partial tail block goes to the store, so the catalog row
// counts saved below only ever cover durable rows), and their WALs shrink
// to the header afterwards — strictly after the partitions and the catalog
// are durable, so a crash at any point in between replays from the WAL
// instead of losing acknowledged rows.
func (s *System) Flush() error {
	sts := s.lockAllStreams()
	defer unlockStreams(sts)
	for _, st := range sts {
		if err := st.drainTailLocked(s); err != nil {
			return err
		}
	}
	if err := s.store.Flush(); err != nil {
		return err
	}
	if err := s.weights.Flush(); err != nil {
		return err
	}
	if err := s.meta.Save(filepath.Join(s.dir, "metadata.json")); err != nil {
		return err
	}
	for _, st := range sts {
		if err := st.checkpointLocked(s); err != nil {
			return err
		}
	}
	return nil
}

// Close drains the System to disk: it flushes all dirty partitions,
// persists the catalog, and releases the slow-query log handle. It is a
// drain point, not a teardown — the System stays usable afterwards — so a
// server can Close on SIGTERM (guaranteeing no logged intermediates are
// lost) while in-process callers keep reading.
func (s *System) Close() error {
	err := s.Flush()
	s.slowMu.Lock()
	if s.slowLog != nil {
		if cerr := s.slowLog.Close(); err == nil {
			err = cerr
		}
		s.slowLog = nil
	}
	s.slowMu.Unlock()
	return err
}

// DiskBytes reports the on-disk footprint of stored intermediates.
func (s *System) DiskBytes() (int64, error) { return s.store.DiskBytes() }

// adaptiveOn reports whether adaptive materialization gates storage.
func (s *System) adaptiveOn() bool { return s.cfg.Gamma > 0 }

// workers returns the ingest/query fan-out bound (immutable after Open).
func (s *System) workers() int { return s.cfg.Workers }

// beginLogging reserves a model name for an in-flight Log* call. It fails
// if the name is already resident or being logged.
func (s *System) beginLogging(name string, kind string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.pipelines[name]; dup {
		return fmt.Errorf("mistique: pipeline %q already logged", name)
	}
	if _, dup := s.networks[name]; dup {
		return fmt.Errorf("mistique: %s %q already logged", kind, name)
	}
	if _, dup := s.logging[name]; dup {
		return fmt.Errorf("mistique: %s %q is being logged concurrently", kind, name)
	}
	s.logging[name] = struct{}{}
	return nil
}

// endLogging releases the reservation, installing the finished model when
// pm or dm is non-nil.
func (s *System) endLogging(name string, pm *pipelineModel, dm *dnnModel) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.logging, name)
	if pm != nil {
		s.pipelines[name] = pm
	}
	if dm != nil {
		s.networks[name] = dm
	}
}

func (s *System) pipelineModelFor(name string) (*pipelineModel, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pm, ok := s.pipelines[name]
	return pm, ok
}

func (s *System) dnnModelFor(name string) (*dnnModel, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	dm, ok := s.networks[name]
	return dm, ok
}

// LogReport summarizes one logging run.
type LogReport struct {
	Model         string
	Seconds       float64
	Intermediates int
	ColumnsStored int64
	ColumnsDedup  int64
	// ColumnsDelta counts column chunks stored as delta generations
	// against the parent version (LogDNN's Parent option).
	ColumnsDelta int64
	StoredBytes  int64
	LogicalBytes int64
	// WeightBytes is the logical size of this version's weight snapshot;
	// WeightNewBytes is how much of it was new to the content-addressed
	// chunk table (the cross-version dedup win is the difference).
	WeightBytes    int64
	WeightNewBytes int64
	// Skipped counts intermediates deferred by adaptive materialization.
	Skipped int
}

// colBufPool recycles the per-column float32 scratch of the ingest and
// read fan-out paths (at most one buffer per in-flight worker task; a
// pooled buffer is held only for the duration of one task).
var colBufPool sync.Pool

func grabColBuf() []float32 {
	if p, ok := colBufPool.Get().(*[]float32); ok {
		return (*p)[:0]
	}
	return nil
}

func releaseColBuf(b []float32) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	colBufPool.Put(&b)
}

// storeMatrix splits a matrix into RowBlock-sized column chunks and stores
// them under (model, interm). mkQuant supplies the value codec for each
// column (nil, or returning nil, means raw float32). Columns are fitted,
// encoded and dedup-hashed concurrently across the worker pool. Returns
// encoded bytes actually stored (after de-duplication).
//
// When the matrix has more rows than the configured reservoir cap, a
// sample is built alongside — over the *reconstructed* values (the codec
// applied and inverted), so approximate answers agree with what an exact
// READ of the stored chunks would return — and persisted for the
// approximate query path.
func (s *System) storeMatrix(model, interm string, m *tensor.Dense, cols []string, mkQuant func(col []float32) (*quant.Quantizer, error)) (int64, error) {
	blockRows := s.cfg.RowBlockRows
	capRows := s.cfg.Sample.Cap
	if capRows <= 0 {
		capRows = sample.DefaultCap
	}
	var mb *sample.MatrixBuilder
	if m.Rows > capRows {
		var labels []float32
		if sc := s.cfg.Sample.StratifyColumn; sc != "" {
			for j, c := range cols {
				if c == sc {
					labels = m.ColInto(nil, j)
					break
				}
			}
		}
		mb = sample.NewMatrixBuilder(cols, m.Rows, labels, s.cfg.Sample)
	}
	var stored int64
	err := parallel.ForEach(len(cols), s.workers(), func(j int) error {
		col := m.ColInto(grabColBuf(), j)
		defer releaseColBuf(col)
		var q *quant.Quantizer
		if mkQuant != nil {
			t0 := time.Now()
			var err error
			q, err = mkQuant(col)
			if err != nil {
				return err
			}
			s.metrics.ingestQuantizeSeconds.ObserveSince(t0)
		}
		if mb != nil {
			rec := col
			if q != nil {
				rec = q.Apply(col)
			}
			mb.SetColumn(j, rec)
		}
		for b := 0; b*blockRows < len(col); b++ {
			lo := b * blockRows
			hi := lo + blockRows
			if hi > len(col) {
				hi = len(col)
			}
			key := colstore.ColumnKey{Model: model, Intermediate: interm, Column: cols[j], Block: b}
			res, err := s.store.PutColumn(key, col[lo:hi], q)
			if err != nil {
				return fmt.Errorf("mistique: store %s: %w", key, err)
			}
			atomic.AddInt64(&stored, res.EncodedBytes)
		}
		return nil
	})
	if err == nil && mb != nil {
		smp := mb.Finish()
		s.metrics.sampleBuilds.Inc()
		// Best effort: a failed persist only costs later sessions the
		// sample (they fall back to exact reads); this one keeps it cached.
		s.samples.Save(model, interm, smp)
		s.cacheSample(model, interm, smp)
	}
	return atomic.LoadInt64(&stored), err
}

// cacheSample installs a sample snapshot in the in-memory cache.
func (s *System) cacheSample(model, interm string, smp *sample.Sample) {
	s.sampleMu.Lock()
	s.sampleCache[model+"\x00"+interm] = smp
	s.sampleMu.Unlock()
}

// invalidateSamples drops all cached samples of a model.
func (s *System) invalidateSamples(model string) {
	prefix := model + "\x00"
	s.sampleMu.Lock()
	for k := range s.sampleCache {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(s.sampleCache, k)
		}
	}
	s.sampleMu.Unlock()
}

// DropModel removes a model from the system: its catalog entries, its
// resident executor (pipeline or network), and its column mappings in the
// store. Chunks shared with other models survive; space held only by this
// model is reclaimed by CompactStore.
func (s *System) DropModel(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	interms := s.meta.IntermSnapshots(name)
	if !s.meta.DeleteModel(name) {
		return fmt.Errorf("mistique: %w %q", ErrUnknownModel, name)
	}
	delete(s.pipelines, name)
	delete(s.networks, name)
	s.store.DeleteModel(name)
	// Pipelines have no weight snapshot; dependents of a deleted version
	// are collapsed a level shallower by the store, never orphaned.
	if _, ok := s.weights.Info(name); ok {
		if err := s.weights.Delete(name); err != nil {
			return err
		}
	}
	if s.nidx != nil {
		s.nidx.InvalidateModel(name)
	}
	for _, it := range interms {
		s.samples.Remove(name, it.Name)
	}
	s.invalidateSamples(name)
	s.dropStreams(name)
	return nil
}

// CompactStore rewrites partitions to drop chunks no longer referenced by
// any model, returning the reclaimed encoded bytes. The weight snapshot
// store compacts alongside: over-deep delta chains collapse and its chunk
// table garbage-collects.
func (s *System) CompactStore() (int64, error) {
	_, reclaimed, err := s.store.Compact()
	if err != nil {
		return reclaimed, err
	}
	return reclaimed, s.weights.Compact(0)
}

// WeightStore exposes the content-addressed weight snapshot store (one
// object per logged DNN version; used by tools and tests).
func (s *System) WeightStore() *cas.Store { return s.weights }

// Calibrate measures the store's effective read rate (rho_d in Eq. 4) by
// timing cold reads of materialized intermediates, and updates the cost
// model in place. Call it after logging representative data; the paper
// folds read, decompression and reconstruction cost into this one
// constant, and so do we. Returns the measured bytes/second.
func (s *System) Calibrate() (float64, error) {
	if err := s.store.Flush(); err != nil {
		return 0, err
	}

	// Pick the largest materialized intermediate as the probe.
	var probeModel string
	var probe *metadata.Interm
	for _, name := range s.meta.Models() {
		for _, it := range s.meta.IntermSnapshots(name) {
			it := it
			if !it.Materialized || it.Rows == 0 || len(it.Columns) == 0 {
				continue
			}
			if probe == nil || int64(it.Rows)*int64(len(it.Columns)) > int64(probe.Rows)*int64(len(probe.Columns)) {
				probeModel, probe = name, &it
			}
		}
	}
	if probe == nil {
		return 0, fmt.Errorf("mistique: nothing materialized to calibrate against")
	}
	if err := s.store.DropCache(); err != nil {
		return 0, err
	}
	start := nowSeconds()
	m, err := s.readMatrix(context.Background(), probeModel, probe.Name, probe, probe.Columns, probe.Rows)
	if err != nil {
		return 0, err
	}
	elapsed := nowSeconds() - start
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	rate := float64(len(m.Data)) * 4 / elapsed
	s.mu.Lock()
	s.cfg.Cost.ReadBytesPerSec = rate
	s.mu.Unlock()
	return rate, nil
}

// CostParams returns the cost-model constants currently in effect.
func (s *System) CostParams() cost.Params {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cfg.Cost
}

// processStart anchors nowSeconds. time.Since reads Go's monotonic clock,
// so elapsed measurements (Calibrate's read-rate probe) cannot jump or go
// negative across wall-clock adjustments — which the previous
// time.Now().UnixNano() reading could.
var processStart = time.Now()

// nowSeconds returns a monotonic timestamp in seconds since process start.
func nowSeconds() float64 { return time.Since(processStart).Seconds() }
