package mistique

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"mistique/internal/cost"
	"mistique/internal/sample"
	"mistique/internal/tensor"
)

// Approximate queries: COL_DIST-style aggregates, top-k probes, confusion
// matrices and row samples answered from the per-intermediate reservoir
// (internal/sample) at interactive latency, each carrying a
// distribution-free error bound. Every entry point takes a maxError knob:
// when the bound the sample can deliver is wider than requested, the
// query transparently falls back to the exact path (READ or RERUN, per
// the cost model) and reports a zero bound — so callers always get an
// answer within their tolerance, just not always the fast one.
//
// maxError is a fraction: of the column's finite value range for means,
// of rank for top-k, of the row count for confusion cells. maxError <= 0
// accepts whatever bound the sample delivers (no fallback).
//
// For streaming intermediates the sample covers every acknowledged row —
// approximate answers can be *fresher* than exact reads, which only see
// rows drained into partitions.

// ColDist is an approximate column distribution: exact NaN/±Inf accounting
// and range (tracked at ingest), estimated mean/std/median with bounds.
type ColDist struct {
	Model        string
	Intermediate string
	Column       string
	// Rows is the population behind the estimate (every row the sampler
	// has seen); Finite/NaN/PosInf/NegInf partition it exactly.
	Rows   int64
	Finite int64
	NaN    int64
	PosInf int64
	NegInf int64
	// Min/Max are exact over the finite values.
	Min float32
	Max float32
	// Mean carries MeanBound (absolute, ≥ the true error with probability
	// 1-1e-4); both are exact (bound 0) on the fallback path.
	Mean      float64
	MeanBound float64
	Std       float64
	// P50 is the estimated median; P50RankBound bounds its true rank
	// fraction (DKW, 1-1e-3).
	P50          float32
	P50RankBound float64
	// SampleRows is the reservoir size behind the estimate (0 on the
	// exact path); Strategy is SAMPLE, or the exact strategy after a
	// fallback.
	SampleRows    int64
	Strategy      cost.Strategy
	EstSampleSecs float64
	EstReadSecs   float64
	FetchSeconds  float64
}

// ColDist estimates a column's distribution. See ColDistCtx.
func (s *System) ColDist(model, interm, column string, maxError float64) (*ColDist, error) {
	return s.ColDistCtx(context.Background(), model, interm, column, maxError)
}

// ColDistCtx estimates a column's distribution from the intermediate's
// reservoir sample when the sample's mean bound (as a fraction of the
// column's value range) is within maxError, and from an exact read
// otherwise.
func (s *System) ColDistCtx(ctx context.Context, model, interm, column string, maxError float64) (*ColDist, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := &ColDist{Model: model, Intermediate: interm, Column: column}
	if sm := s.sampleFor(model, interm); sm != nil {
		if j := sm.ColIndex(column); j >= 0 {
			st := sm.Stats[j]
			est := sm.MeanEstimate(j)
			if withinRangeFraction(est.Bound, float64(st.Max)-float64(st.Min), maxError) {
				start := time.Now()
				_, std, _ := sm.Moments(j)
				out.Rows, out.Finite, out.NaN, out.PosInf, out.NegInf = st.Rows(), st.Finite, st.NaN, st.PosInf, st.NegInf
				out.Min, out.Max = st.Min, st.Max
				out.Mean, out.MeanBound, out.Std = est.Value, est.Bound, std
				out.P50, out.P50RankBound = sm.Quantile(j, 0.5)
				out.SampleRows = int64(sm.Rows())
				out.Strategy = cost.Sample
				costP := s.CostParams()
				out.EstSampleSecs = cost.SampleReadSeconds(out.SampleRows, 4, costP)
				out.EstReadSecs = cost.ChainReadSeconds(4, int(out.Rows), s.store.MaxDeltaDepth(model, interm), costP)
				out.FetchSeconds = time.Since(start).Seconds()
				if _, err := s.meta.RecordQuery(model, interm); err != nil {
					return nil, err
				}
				s.metrics.observeSample(out.EstSampleSecs, out.FetchSeconds)
				s.noteSlowQuery(slowQueryRecord{
					Op: "col_dist", Model: model, Intermediate: interm,
					Strategy: out.Strategy.String(), Cols: 1, NEx: int(out.Rows),
					EstReadSecs: out.EstReadSecs, Seconds: out.FetchSeconds,
				})
				return out, nil
			}
		}
	}
	// Exact fallback: fetch the column through the normal cost-model path
	// and compute the same statistics exactly.
	s.metrics.sampleFallbacks.Inc()
	res, err := s.GetIntermediateCtx(ctx, model, interm, []string{column}, 0)
	if err != nil {
		return nil, err
	}
	exactColDist(out, res.Data.Col(0))
	out.Strategy = res.Strategy
	out.EstReadSecs = res.EstReadSecs
	out.FetchSeconds = res.FetchSeconds
	return out, nil
}

// withinRangeFraction reports whether an absolute bound over a value range
// satisfies the requested fractional tolerance. A zero-width range only
// passes with a zero bound (constant column: exact).
func withinRangeFraction(bound, width, maxError float64) bool {
	if maxError <= 0 {
		return true
	}
	if bound == 0 {
		return true
	}
	if width <= 0 || math.IsInf(bound, 1) {
		return false
	}
	return bound/width <= maxError
}

// exactColDist fills a ColDist from a fully materialized column.
func exactColDist(out *ColDist, col []float32) {
	out.Min = float32(math.Inf(1))
	out.Max = float32(math.Inf(-1))
	var sum float64
	fin := make([]float32, 0, len(col))
	for _, v := range col {
		switch {
		case v != v:
			out.NaN++
		case float64(v) == math.Inf(1):
			out.PosInf++
		case float64(v) == math.Inf(-1):
			out.NegInf++
		default:
			out.Finite++
			if v < out.Min {
				out.Min = v
			}
			if v > out.Max {
				out.Max = v
			}
			sum += float64(v)
			fin = append(fin, v)
		}
	}
	out.Rows = int64(len(col))
	if out.Finite == 0 {
		out.Mean = math.NaN()
		out.P50 = float32(math.NaN())
		return
	}
	out.Mean = sum / float64(out.Finite)
	var ss float64
	for _, v := range fin {
		d := float64(v) - out.Mean
		ss += d * d
	}
	if out.Finite > 1 {
		out.Std = math.Sqrt(ss / float64(out.Finite-1))
	}
	out.P50 = quickMedian(fin)
}

// quickMedian returns the lower median.
func quickMedian(v []float32) float32 {
	if len(v) == 0 {
		return float32(math.NaN())
	}
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v[(len(v)-1)/2]
}

// TopKApprox is an approximate TOPK answer.
type TopKApprox struct {
	Model        string
	Intermediate string
	Column       string
	// Entries are real (row id, value) pairs, best first. On the SAMPLE
	// path the values are true stored values of the sampled rows; only
	// their ranks are approximate.
	Entries []sample.RowValue
	// RankBound bounds every entry's true rank fraction (0 on the exact
	// path).
	RankBound    float64
	Rows         int64
	SampleRows   int64
	Strategy     cost.Strategy
	FetchSeconds float64
}

// ApproxTopK returns the k (approximately) largest values of a column.
// See ApproxTopKCtx.
func (s *System) ApproxTopK(model, interm, column string, k int, maxError float64) (*TopKApprox, error) {
	return s.ApproxTopKCtx(context.Background(), model, interm, column, k, maxError)
}

// ApproxTopKCtx answers TOPK from the reservoir sample when the rank bound
// is within maxError (a rank fraction), and from the exact index-backed
// TopK otherwise.
func (s *System) ApproxTopKCtx(ctx context.Context, model, interm, column string, k int, maxError float64) (*TopKApprox, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("mistique: approx topk needs k > 0")
	}
	out := &TopKApprox{Model: model, Intermediate: interm, Column: column}
	if sm := s.sampleFor(model, interm); sm != nil {
		if j := sm.ColIndex(column); j >= 0 {
			entries, bound := sm.TopK(j, k, true)
			if maxError <= 0 || bound <= maxError {
				start := time.Now()
				out.Entries = entries
				out.RankBound = bound
				out.Rows = sm.Stats[j].Rows()
				out.SampleRows = int64(sm.Rows())
				out.Strategy = cost.Sample
				out.FetchSeconds = time.Since(start).Seconds()
				if _, err := s.meta.RecordQuery(model, interm); err != nil {
					return nil, err
				}
				est := cost.SampleReadSeconds(out.SampleRows, 4, s.CostParams())
				s.metrics.observeSample(est, out.FetchSeconds)
				return out, nil
			}
		}
	}
	s.metrics.sampleFallbacks.Inc()
	start := time.Now()
	exact, err := s.TopKCtx(ctx, model, interm, column, k)
	if err != nil {
		return nil, err
	}
	out.Entries = make([]sample.RowValue, len(exact))
	for i, e := range exact {
		out.Entries[i] = sample.RowValue{Row: int64(e.Row), Value: e.Value}
	}
	if it, ok := s.meta.IntermSnapshot(model, interm); ok {
		out.Rows = int64(it.Rows)
	}
	out.Strategy = cost.Read
	out.FetchSeconds = time.Since(start).Seconds()
	return out, nil
}

// ConfusionMatrix is an approximate (label, prediction) contingency table.
type ConfusionMatrix struct {
	Model        string
	Intermediate string
	LabelCol     string
	PredCol      string
	// Cells are sorted by (label, pred); Count is in row units with a
	// per-cell absolute bound (0 on the exact path).
	Cells []sample.Cell
	Rows  int64
	// Stratified reports whether per-label sub-reservoirs answered.
	Stratified bool
	// MaxBound is the largest cell bound as a fraction of Rows.
	MaxBound     float64
	SampleRows   int64
	Strategy     cost.Strategy
	FetchSeconds float64
}

// ConfusionMatrixApprox estimates the confusion matrix of a label and a
// prediction column. See ConfusionMatrixCtx.
func (s *System) ConfusionMatrixApprox(model, interm, labelCol, predCol string, maxError float64) (*ConfusionMatrix, error) {
	return s.ConfusionMatrixCtx(context.Background(), model, interm, labelCol, predCol, maxError)
}

// ConfusionMatrixCtx estimates the (label, pred) contingency table from
// the sample — using the stratified per-label sub-reservoirs when the
// sample is stratified on labelCol — when the largest cell bound (as a
// fraction of the row count) is within maxError, and from an exact
// two-column read otherwise.
func (s *System) ConfusionMatrixCtx(ctx context.Context, model, interm, labelCol, predCol string, maxError float64) (*ConfusionMatrix, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := &ConfusionMatrix{Model: model, Intermediate: interm, LabelCol: labelCol, PredCol: predCol}
	if sm := s.sampleFor(model, interm); sm != nil {
		lj, pj := sm.ColIndex(labelCol), sm.ColIndex(predCol)
		if lj >= 0 && pj >= 0 {
			est, err := sm.Confusion(lj, pj)
			if err == nil && (maxError <= 0 || est.MaxBound <= maxError) {
				start := time.Now()
				out.Cells = est.Cells
				out.Rows = sm.Seen
				out.Stratified = est.Stratified
				out.MaxBound = est.MaxBound
				out.SampleRows = est.SampledRows
				out.Strategy = cost.Sample
				out.FetchSeconds = time.Since(start).Seconds()
				if _, err := s.meta.RecordQuery(model, interm); err != nil {
					return nil, err
				}
				estSecs := cost.SampleReadSeconds(est.SampledRows, 8, s.CostParams())
				s.metrics.observeSample(estSecs, out.FetchSeconds)
				s.noteSlowQuery(slowQueryRecord{
					Op: "confusion", Model: model, Intermediate: interm,
					Strategy: out.Strategy.String(), Cols: 2, NEx: int(out.Rows),
					Seconds: out.FetchSeconds,
				})
				return out, nil
			}
		}
	}
	s.metrics.sampleFallbacks.Inc()
	res, err := s.GetIntermediateCtx(ctx, model, interm, []string{labelCol, predCol}, 0)
	if err != nil {
		return nil, err
	}
	type cellKey struct{ l, p float32 }
	counts := map[cellKey]int64{}
	for r := 0; r < res.Data.Rows; r++ {
		l, p := res.Data.At(r, 0), res.Data.At(r, 1)
		if l != l || p != p {
			continue
		}
		counts[cellKey{l, p}]++
	}
	for k, c := range counts {
		out.Cells = append(out.Cells, sample.Cell{Label: k.l, Pred: k.p, Count: float64(c)})
	}
	sample.SortCells(out.Cells)
	out.Rows = int64(res.Data.Rows)
	out.Strategy = res.Strategy
	out.FetchSeconds = res.FetchSeconds
	return out, nil
}

// ApproxRows is a uniform row sample of an intermediate with real row ids
// — the approximate variant of GetIntermediate for "show me what this
// layer looks like" diagnosis at interactive latency.
type ApproxRows struct {
	Model        string
	Intermediate string
	Cols         []string
	// RowIDs are the sampled population row ids, ascending; Data is the
	// len(RowIDs) x len(Cols) matrix of their true stored values.
	RowIDs []int64
	Data   *tensor.Dense
	// Rows is the population the sample stands for.
	Rows         int64
	Strategy     cost.Strategy
	FetchSeconds float64
}

// GetIntermediateApprox returns up to maxRows uniformly sampled rows of an
// intermediate. See GetIntermediateApproxCtx.
func (s *System) GetIntermediateApprox(model, interm string, cols []string, maxRows int) (*ApproxRows, error) {
	return s.GetIntermediateApproxCtx(context.Background(), model, interm, cols, maxRows)
}

// GetIntermediateApproxCtx serves a uniform row sample from the reservoir
// (maxRows <= 0 returns the whole reservoir). Without a sample it falls
// back to an exact read of the first maxRows rows.
func (s *System) GetIntermediateApproxCtx(ctx context.Context, model, interm string, cols []string, maxRows int) (*ApproxRows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := &ApproxRows{Model: model, Intermediate: interm}
	if sm := s.sampleFor(model, interm); sm != nil {
		if len(cols) == 0 {
			cols = sm.Cols
		}
		idx := make([]int, len(cols))
		ok := true
		for i, c := range cols {
			if idx[i] = sm.ColIndex(c); idx[i] < 0 {
				ok = false
				break
			}
		}
		if ok {
			start := time.Now()
			n := sm.Rows()
			if maxRows > 0 && maxRows < n {
				n = maxRows
			}
			// Emit in ascending row-id order for stable presentation.
			order := make([]int, sm.Rows())
			for i := range order {
				order[i] = i
			}
			sortByRowID(order, sm.RowIDs)
			out.Cols = cols
			out.RowIDs = make([]int64, n)
			out.Data = tensor.NewDense(n, len(cols))
			for r := 0; r < n; r++ {
				sr := order[r]
				out.RowIDs[r] = sm.RowIDs[sr]
				for j, cj := range idx {
					out.Data.Set(r, j, sm.Value(sr, cj))
				}
			}
			out.Rows = sm.Seen
			out.Strategy = cost.Sample
			out.FetchSeconds = time.Since(start).Seconds()
			if _, err := s.meta.RecordQuery(model, interm); err != nil {
				return nil, err
			}
			est := cost.SampleReadSeconds(int64(n), int64(4*len(cols)), s.CostParams())
			s.metrics.observeSample(est, out.FetchSeconds)
			return out, nil
		}
	}
	s.metrics.sampleFallbacks.Inc()
	res, err := s.GetIntermediateCtx(ctx, model, interm, cols, maxRows)
	if err != nil {
		return nil, err
	}
	out.Cols = res.Cols
	out.Data = res.Data
	out.RowIDs = make([]int64, res.Data.Rows)
	for i := range out.RowIDs {
		out.RowIDs[i] = int64(i)
	}
	out.Rows = int64(res.Data.Rows)
	out.Strategy = res.Strategy
	out.FetchSeconds = res.FetchSeconds
	return out, nil
}

// sortByRowID sorts sample-slot indices by their population row id.
func sortByRowID(order []int, rowIDs []int64) {
	sort.Slice(order, func(a, b int) bool { return rowIDs[order[a]] < rowIDs[order[b]] })
}

// sampleFor returns the freshest sample for (model, interm): the live
// stream sampler's snapshot for streams, the cached or persisted MQSM
// snapshot otherwise. nil means no sample exists (callers fall back to
// the exact path).
func (s *System) sampleFor(model, interm string) *sample.Sample {
	if st := s.streamFor(model, interm); st != nil {
		return st.sampleSnapshot()
	}
	key := model + "\x00" + interm
	s.sampleMu.Lock()
	if sm, ok := s.sampleCache[key]; ok {
		s.sampleMu.Unlock()
		return sm
	}
	s.sampleMu.Unlock()
	sm, err := s.samples.Load(model, interm)
	if err != nil || sm == nil {
		return nil
	}
	s.cacheSample(model, interm, sm)
	return sm
}
