package mistique_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (Sec. 8). Each benchmark drives the corresponding experiment runner in
// internal/experiments at a reduced scale; `cmd/mistique-bench` runs the
// same runners at full scale and prints the paper-style tables recorded in
// EXPERIMENTS.md.
//
//	go test -bench=. -benchmem

import (
	"testing"

	"mistique/internal/experiments"
)

// benchOpts is the reduced scale used under `go test -bench`.
func benchOpts() experiments.Options {
	return experiments.Options{
		NProps:      150,
		NTrain:      768,
		Pipelines:   4,
		DNNExamples: 96,
		VGGWidth:    2,
		Epochs:      2,
		Seed:        1,
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	_, byID := experiments.Registry()
	run := byID[id]
	if run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig5a_TRADQueryTimes regenerates Fig. 5a: TRAD end-to-end query
// times, read vs re-run, for the eight Table 5 queries.
func BenchmarkFig5a_TRADQueryTimes(b *testing.B) { benchExperiment(b, "fig5a") }

// BenchmarkFig5bcd_DNNQueryTimes regenerates Figs. 5b-5d: DNN query times
// at the last, middle and first VGG16 layers.
func BenchmarkFig5bcd_DNNQueryTimes(b *testing.B) { benchExperiment(b, "fig5bcd") }

// BenchmarkFig6a_ZillowStorage regenerates Fig. 6a: STORE_ALL vs DEDUP
// footprint over the Zillow pipelines, plus the cumulative growth curve.
func BenchmarkFig6a_ZillowStorage(b *testing.B) { benchExperiment(b, "fig6a") }

// BenchmarkFig6b_DNNStorage regenerates Fig. 6b: DNN storage across
// quantization schemes for CIFAR10_CNN and CIFAR10_VGG16 checkpoints.
func BenchmarkFig6b_DNNStorage(b *testing.B) { benchExperiment(b, "fig6b") }

// BenchmarkFig7_CostModelComponents regenerates Fig. 7: per-layer re-run
// time and per-scheme read time.
func BenchmarkFig7_CostModelComponents(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8_CostModelValidation regenerates Fig. 8: measured vs
// predicted read/re-run trade-off across layers and n_ex.
func BenchmarkFig8_CostModelValidation(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9_VISFidelity regenerates Fig. 9: VIS heat-map fidelity
// under each quantization scheme.
func BenchmarkFig9_VISFidelity(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkTable2_SVCCAFidelity regenerates Table 2: SVCCA coefficients at
// full precision vs 8BIT_QT vs POOL_QT(2).
func BenchmarkTable2_SVCCAFidelity(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3_KNNFidelity regenerates Table 3: KNN neighbor overlap at
// full precision vs 8BIT_QT vs POOL_QT(2).
func BenchmarkTable3_KNNFidelity(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig10_AdaptiveMaterialization regenerates Fig. 10: storage and
// query-time behaviour of the 25-query adaptive workload.
func BenchmarkFig10_AdaptiveMaterialization(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11_LoggingOverhead regenerates Fig. 11: pipeline execution
// overhead under STORE_ALL / DEDUP / ADAPTIVE logging.
func BenchmarkFig11_LoggingOverhead(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig14_CompressionMicro regenerates Fig. 14: the column
// similarity / co-location compression microbenchmark.
func BenchmarkFig14_CompressionMicro(b *testing.B) { benchExperiment(b, "fig14") }

// Ablation benchmarks (design-choice studies called out in DESIGN.md).

func benchAblation(b *testing.B, id string) {
	b.Helper()
	_, byID := experiments.AblationRegistry()
	run := byID[id]
	if run == nil {
		b.Fatalf("unknown ablation %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblateDedupGranularity compares ColumnChunk-level vs
// whole-intermediate exact de-duplication.
func BenchmarkAblateDedupGranularity(b *testing.B) { benchAblation(b, "ablate-dedup") }

// BenchmarkAblateGamma sweeps the adaptive-materialization threshold.
func BenchmarkAblateGamma(b *testing.B) { benchAblation(b, "ablate-gamma") }

// BenchmarkAblatePool sweeps the POOL_QT sigma level.
func BenchmarkAblatePool(b *testing.B) { benchAblation(b, "ablate-pool") }
