package mistique_test

// Cross-version storage benchmarks: what a delta-linked checkpoint costs
// to ingest, and what reading back through a maximum-depth delta chain
// costs cold. Both ride the same simulated fine-tune as the differential
// oracle (internal/cas/oracletest), so the numbers describe exactly the
// workload the tests prove bit-exact.

import (
	"testing"

	"mistique"
	"mistique/internal/cas/oracletest"
	"mistique/internal/cost"
)

// BenchmarkVersionedIngest measures logging one fine-tuning checkpoint as
// a delta generation: exact dedup for the unchanged columns, delta
// encoding for the drifted ones, and a compressed weight-snapshot
// residual into the content-addressed store.
func BenchmarkVersionedIngest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sc := oracletest.NewScenario(3, 64)
		s, err := mistique.Open(b.TempDir(), mistique.Config{RowBlockRows: 64})
		if err != nil {
			b.Fatal(err)
		}
		sc.Advance(0)
		if _, err := oracletest.LogEpoch(s, sc.Snapshot(), sc.Input, "cnn", 0,
			mistique.SchemeFull, true, oracletest.FCLayers); err != nil {
			b.Fatal(err)
		}
		sc.Advance(1)
		net := sc.Snapshot()
		b.StartTimer()
		if _, err := oracletest.LogEpoch(s, net, sc.Input, "cnn", 1,
			mistique.SchemeFull, true, oracletest.FCLayers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaChainRead measures a cold READ of the deepest version of
// a delta chain: every generation down to the full root pages in, the
// residuals XOR back together, and the result must still beat re-running
// the model (the cost model charges depth+1 reads for exactly this).
func BenchmarkDeltaChainRead(b *testing.B) {
	sc := oracletest.NewScenario(5, 64)
	s, err := mistique.Open(b.TempDir(), mistique.Config{RowBlockRows: 64})
	if err != nil {
		b.Fatal(err)
	}
	const epochs = 5 // chain depth 4, the default DeltaMaxDepth
	if _, err := sc.RunEpochs(epochs, mistique.SchemeFull, oracletest.FCLayers,
		oracletest.Target{Sys: s, Prefix: "cnn", Linked: true}); err != nil {
		b.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	last := oracletest.VersionName("cnn", epochs-1)
	if d := s.Store().MaxDeltaDepth(last, "fc1"); d == 0 {
		b.Fatalf("expected %s/fc1 on a delta chain", last)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := s.Store().DropCache(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.Fetch(last, "fc1", nil, 0, cost.Read); err != nil {
			b.Fatal(err)
		}
	}
}
