package mistique

import (
	"fmt"
	"sync"
	"testing"

	"mistique/internal/cost"
	"mistique/internal/tensor"
)

// newBareSession builds a Session over a minimal System so the unexported
// cache internals (insertLocked, touchLocked, Invalidate accounting) can be
// exercised directly without logging real models.
func newBareSession(capBytes int64) *Session {
	return NewSession(&System{metrics: newSystemMetrics()}, capBytes)
}

// fakeResult builds a Result whose cached payload is exactly bytes (bytes
// must be a multiple of 4: the cache charges 4 bytes per float32).
func fakeResult(bytes int64) *Result {
	return &Result{Data: tensor.NewDense(int(bytes/4), 1)}
}

// TestCacheKeyNormalization asserts the satellite fix: the distinct
// spellings of the same query share one cache entry instead of caching
// three copies of identical data.
func TestCacheKeyNormalization(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)
	it := s.Metadata().Intermediate("demo", "model")
	if it == nil {
		t.Fatal("no catalog entry for demo.model")
	}
	allCols := append([]string(nil), it.Columns...)

	spellings := []struct {
		name string
		cols []string
		nEx  int
	}{
		{"nil cols, zero nEx", nil, 0},
		{"explicit cols, exact rows", allCols, it.Rows},
		{"nil cols, exact rows", nil, it.Rows},
		{"explicit cols, zero nEx", allCols, 0},
		{"nil cols, nEx past end", nil, it.Rows + 1000},
		{"negative nEx", nil, -5},
	}
	sess := NewSession(s, 1<<20)
	for _, sp := range spellings {
		res, err := sess.Get("demo", "model", sp.cols, sp.nEx)
		if err != nil {
			t.Fatalf("%s: %v", sp.name, err)
		}
		if res.Data.Rows != it.Rows || res.Data.Cols != len(it.Columns) {
			t.Fatalf("%s: got %dx%d, want %dx%d", sp.name, res.Data.Rows, res.Data.Cols, it.Rows, len(it.Columns))
		}
	}
	if sess.Len() != 1 {
		t.Fatalf("equivalent queries cached %d entries, want 1", sess.Len())
	}
	if hits, misses := sess.Stats(); misses != 1 || hits != int64(len(spellings)-1) {
		t.Fatalf("hits=%d misses=%d, want %d/1", hits, misses, len(spellings)-1)
	}
	// used must charge the payload once, not per spelling.
	wantBytes := int64(it.Rows*len(it.Columns)) * 4
	sess.mu.Lock()
	used := sess.used
	sess.mu.Unlock()
	if used != wantBytes {
		t.Fatalf("used=%d, want %d (payload charged once)", used, wantBytes)
	}
	// A genuinely different query is still a distinct entry.
	if _, err := sess.Get("demo", "model", allCols[:1], 0); err != nil {
		t.Fatal(err)
	}
	if sess.Len() != 2 {
		t.Fatalf("distinct query collapsed into existing entry; len=%d", sess.Len())
	}
}

// TestSessionEviction drives insertLocked directly: over-capacity inserts
// must evict in LRU order (least recent first) and keep byte accounting
// exact.
func TestSessionEviction(t *testing.T) {
	cases := []struct {
		name     string
		capBytes int64
		inserts  []int64 // payload bytes per entry, inserted in order
		touch    []int   // indices promoted (touchLocked) before the last insert
		wantKeys []int   // surviving entry indices after all inserts
	}{
		{
			name:     "fifo eviction without touches",
			capBytes: 1024,
			inserts:  []int64{400, 400, 400},
			wantKeys: []int{1, 2},
		},
		{
			name:     "touch promotes the oldest entry",
			capBytes: 1024,
			inserts:  []int64{400, 400, 400},
			touch:    []int{0},
			wantKeys: []int{0, 2},
		},
		{
			name:     "large insert evicts several",
			capBytes: 1000,
			inserts:  []int64{300, 300, 300, 900},
			wantKeys: []int{3},
		},
		{
			name:     "oversize entry is rejected, cache untouched",
			capBytes: 500,
			inserts:  []int64{400, 600},
			wantKeys: []int{0},
		},
		{
			name:     "exact fit evicts nothing",
			capBytes: 800,
			inserts:  []int64{400, 400},
			wantKeys: []int{0, 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sess := newBareSession(tc.capBytes)
			key := func(i int) string { return fmt.Sprintf("k%d", i) }
			sess.mu.Lock()
			for i, b := range tc.inserts {
				if i == len(tc.inserts)-1 {
					for _, ti := range tc.touch {
						sess.touchLocked(key(ti))
					}
				}
				sess.insertLocked(key(i), fakeResult(b))
			}
			defer sess.mu.Unlock()
			if len(sess.entries) != len(tc.wantKeys) {
				t.Fatalf("entries=%d want %d", len(sess.entries), len(tc.wantKeys))
			}
			var wantUsed int64
			for _, i := range tc.wantKeys {
				if _, ok := sess.entries[key(i)]; !ok {
					t.Fatalf("entry %s missing; order=%v", key(i), sess.order)
				}
				wantUsed += tc.inserts[i]
			}
			if sess.used != wantUsed {
				t.Fatalf("used=%d want %d", sess.used, wantUsed)
			}
			if len(sess.order) != len(sess.entries) {
				t.Fatalf("order has %d keys for %d entries", len(sess.order), len(sess.entries))
			}
		})
	}
}

// TestSessionInvalidate checks Invalidate's byte accounting and that only
// the named model's entries drop.
func TestSessionInvalidate(t *testing.T) {
	sess := newBareSession(1 << 20)
	sess.mu.Lock()
	sess.insertLocked(cacheKey("ma", "i1", nil, 10), fakeResult(400))
	sess.insertLocked(cacheKey("ma", "i2", nil, 10), fakeResult(800))
	sess.insertLocked(cacheKey("mb", "i1", nil, 10), fakeResult(1200))
	sess.mu.Unlock()

	sess.Invalidate("ma")
	sess.mu.Lock()
	if len(sess.entries) != 1 {
		t.Fatalf("entries=%d want 1", len(sess.entries))
	}
	if _, ok := sess.entries[cacheKey("mb", "i1", nil, 10)]; !ok {
		t.Fatal("unrelated model's entry was invalidated")
	}
	if sess.used != 1200 {
		t.Fatalf("used=%d want 1200", sess.used)
	}
	if len(sess.order) != 1 || sess.order[0] != cacheKey("mb", "i1", nil, 10) {
		t.Fatalf("order=%v", sess.order)
	}
	sess.mu.Unlock()

	// Invalidating a model with no entries is a no-op.
	sess.Invalidate("mc")
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.used != 1200 || len(sess.entries) != 1 {
		t.Fatalf("no-op invalidate changed state: used=%d entries=%d", sess.used, len(sess.entries))
	}
}

// TestSessionStatsRace reads Stats while goroutines hammer Get — the
// satellite regression test for the formerly-exported Hits/Misses fields
// (run under -race in CI).
func TestSessionStatsRace(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)
	sess := NewSession(s, 1<<20)

	stopRead := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
				sess.Stats()
				sess.Len()
			}
		}
	}()

	const workers, iters = 4, 25
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := sess.Get("demo", "model", nil, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stopRead)
	readers.Wait()

	hits, misses := sess.Stats()
	if hits+misses != workers*iters {
		t.Fatalf("hits+misses=%d want %d", hits+misses, workers*iters)
	}
	if misses < 1 {
		t.Fatalf("misses=%d want >=1", misses)
	}
}

// TestResultEstimatesAlwaysPopulated pins the documented Result contract:
// both cost estimates are populated even when only one strategy was
// available or the strategy was forced.
func TestResultEstimatesAlwaysPopulated(t *testing.T) {
	s := openSys(t, Config{Gamma: 1e30}) // adaptive on: nothing materialized
	logDemo(t, s)

	// Unmaterialized intermediate: RERUN is the only available strategy,
	// yet both estimates must be present.
	res, err := s.GetIntermediate("demo", "model", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.EstReadSecs <= 0 || res.EstRerunSecs <= 0 {
		t.Fatalf("estimates not populated on rerun-only query: read=%g rerun=%g", res.EstReadSecs, res.EstRerunSecs)
	}

	// Forced strategy via Fetch: estimates still populated.
	s2 := openSys(t, Config{})
	logDemo(t, s2)
	res2, err := s2.Fetch("demo", "model", nil, 0, cost.Read)
	if err != nil {
		t.Fatal(err)
	}
	if res2.EstReadSecs <= 0 || res2.EstRerunSecs <= 0 {
		t.Fatalf("Fetch estimates not populated: read=%g rerun=%g", res2.EstReadSecs, res2.EstRerunSecs)
	}
}
