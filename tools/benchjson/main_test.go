package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mistique
cpu: AMD EPYC 7763 64-Core Processor
BenchmarkFig5a_TRADQueryTimes-8   	       3	 450123456 ns/op	  123456 B/op	     789 allocs/op
BenchmarkFig6a_ZillowStorage-8    	       2	 650000000 ns/op
BenchmarkNoMeasurement
PASS
ok  	mistique	12.345s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "mistique" {
		t.Fatalf("header %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "Fig5a_TRADQueryTimes" || b.Procs != 8 || b.Iterations != 3 || b.NsPerOp != 450123456 {
		t.Fatalf("first benchmark %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 123456 || b.AllocsPerOp == nil || *b.AllocsPerOp != 789 {
		t.Fatalf("benchmem fields %+v", b)
	}
	if got := rep.Benchmarks[1]; got.BytesPerOp != nil || got.NsPerOp != 650000000 {
		t.Fatalf("second benchmark %+v", got)
	}
}

func TestParseEmpty(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader("PASS\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("benchmarks %+v", rep.Benchmarks)
	}
}
