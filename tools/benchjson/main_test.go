package main

import (
	"bufio"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mistique
cpu: AMD EPYC 7763 64-Core Processor
BenchmarkFig5a_TRADQueryTimes-8   	       3	 450123456 ns/op	  123456 B/op	     789 allocs/op
BenchmarkFig6a_ZillowStorage-8    	       2	 650000000 ns/op
BenchmarkNoMeasurement
PASS
ok  	mistique	12.345s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "mistique" {
		t.Fatalf("header %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "Fig5a_TRADQueryTimes" || b.Procs != 8 || b.Iterations != 3 || b.NsPerOp != 450123456 {
		t.Fatalf("first benchmark %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 123456 || b.AllocsPerOp == nil || *b.AllocsPerOp != 789 {
		t.Fatalf("benchmem fields %+v", b)
	}
	if got := rep.Benchmarks[1]; got.BytesPerOp != nil || got.NsPerOp != 650000000 {
		t.Fatalf("second benchmark %+v", got)
	}
}

func TestParseEmpty(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader("PASS\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("benchmarks %+v", rep.Benchmarks)
	}
}

func report(pairs ...any) *Report {
	rep := &Report{}
	for i := 0; i+1 < len(pairs); i += 2 {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return rep
}

func TestCompareReports(t *testing.T) {
	old := report("Stable", 100.0, "Slower", 100.0, "Faster", 100.0, "Removed", 100.0)
	new := report("Stable", 110.0, "Slower", 130.0, "Faster", 60.0, "Added", 50.0)
	deltas := compareReports(old, new, 0.15)
	if len(deltas) != 3 {
		t.Fatalf("compared %d benchmarks, want 3 (added/removed skipped): %+v", len(deltas), deltas)
	}
	// Sorted worst-first.
	if deltas[0].name != "Slower" || !deltas[0].regressd {
		t.Fatalf("worst delta %+v, want Slower flagged", deltas[0])
	}
	if deltas[1].name != "Stable" || deltas[1].regressd {
		t.Fatalf("delta %+v, want Stable within threshold", deltas[1])
	}
	if deltas[2].name != "Faster" || deltas[2].regressd {
		t.Fatalf("delta %+v, want Faster not flagged", deltas[2])
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *Report) string {
		t.Helper()
		path := dir + "/" + name
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", report("A", 100.0, "B", 100.0))

	var out strings.Builder
	code, err := runCompare(&out, oldPath, write("ok.json", report("A", 114.0, "B", 90.0)), 0.15)
	if err != nil || code != 0 {
		t.Fatalf("clean compare: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "no regression") {
		t.Fatalf("clean compare output:\n%s", out.String())
	}

	out.Reset()
	code, err = runCompare(&out, oldPath, write("bad.json", report("A", 200.0, "B", 90.0)), 0.15)
	if err != nil || code != 1 {
		t.Fatalf("regressed compare: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regressed compare output:\n%s", out.String())
	}

	if _, err := runCompare(&out, dir+"/missing.json", oldPath, 0.15); err == nil {
		t.Fatal("missing file: want error")
	}
}
