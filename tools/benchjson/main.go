// Command benchjson parses `go test -bench` text output from stdin into a
// stable JSON document, so CI can publish benchmark results as a machine-
// readable artifact (BENCH_pr.json) and the numbers can be diffed across
// commits:
//
//	go test -run '^$' -bench . -benchtime=500ms -benchmem . | benchjson > BENCH_pr.json
//
// With -compare it acts as the regression gate instead: it diffs two
// reports and exits non-zero when any benchmark present in both slowed
// down by more than -threshold (relative ns/op):
//
//	benchjson -compare BENCH_pr.json BENCH_new.json -threshold 0.15
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and the
	// -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported measurement.
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present with -benchmem (omitted otherwise).
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

// Report is the full document: environment header plus results.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two report files (old new) instead of parsing stdin")
	threshold := flag.Float64("threshold", 0.15, "relative ns/op slowdown that fails the -compare gate")
	flag.Parse()
	if *compare {
		// flag stops at the first positional argument, but the documented
		// invocation is `-compare old.json new.json -threshold 0.15`, so
		// re-parse anything after the two file operands.
		args := flag.Args()
		if len(args) > 2 {
			fs := flag.NewFlagSet("benchjson -compare", flag.ExitOnError)
			trailing := fs.Float64("threshold", *threshold, "relative ns/op slowdown that fails the gate")
			if err := fs.Parse(args[2:]); err != nil || fs.NArg() != 0 {
				fmt.Fprintln(os.Stderr, "benchjson: unexpected arguments after report files")
				os.Exit(2)
			}
			*threshold = *trailing
			args = args[:2]
		}
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two report files: old.json new.json")
			os.Exit(2)
		}
		code, err := runCompare(os.Stdout, args[0], args[1], *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		os.Exit(code)
	}
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// loadReport reads a JSON report previously produced by this tool.
func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &rep, nil
}

// delta is one benchmark's old-vs-new comparison.
type delta struct {
	name     string
	oldNs    float64
	newNs    float64
	ratio    float64 // newNs/oldNs - 1; positive = slower
	regressd bool
}

// compareReports matches benchmarks by name (benchmarks present in only
// one report are skipped: additions and removals are not regressions) and
// flags any whose ns/op grew by more than threshold.
func compareReports(old, new *Report, threshold float64) []delta {
	oldNs := make(map[string]float64, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldNs[b.Name] = b.NsPerOp
	}
	var out []delta
	for _, b := range new.Benchmarks {
		prev, ok := oldNs[b.Name]
		if !ok || prev <= 0 {
			continue
		}
		d := delta{name: b.Name, oldNs: prev, newNs: b.NsPerOp}
		d.ratio = b.NsPerOp/prev - 1
		d.regressd = d.ratio > threshold
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ratio > out[j].ratio })
	return out
}

// runCompare prints the comparison table and returns the process exit
// code: 0 when no benchmark regressed past threshold, 1 otherwise.
func runCompare(w io.Writer, oldPath, newPath string, threshold float64) (int, error) {
	old, err := loadReport(oldPath)
	if err != nil {
		return 0, err
	}
	new, err := loadReport(newPath)
	if err != nil {
		return 0, err
	}
	deltas := compareReports(old, new, threshold)
	fmt.Fprintf(w, "%-44s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	regressions := 0
	for _, d := range deltas {
		mark := ""
		if d.regressd {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %+8.1f%%%s\n", d.name, d.oldNs, d.newNs, d.ratio*100, mark)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed by more than %.0f%%\n", regressions, threshold*100)
		return 1, nil
	}
	fmt.Fprintf(w, "\nno regression beyond %.0f%% across %d compared benchmark(s)\n", threshold*100, len(deltas))
	return 0, nil
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	rep := &Report{Benchmarks: []Benchmark{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one result line, e.g.
//
//	BenchmarkFig5a_TRADQueryTimes-8  3  450123456 ns/op  123456 B/op  789 allocs/op
//
// Lines that start with "Benchmark" but carry no measurement (sub-benchmark
// headers) report ok=false.
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[2] != "ns/op" && !hasUnit(fields, "ns/op") {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Procs: 1}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			b.Procs = p
			name = name[:i]
		}
	}
	b.Name = name
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Benchmark{}, false, fmt.Errorf("bad ns/op in %q: %w", line, err)
			}
			b.NsPerOp = f
		case "B/op":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Benchmark{}, false, fmt.Errorf("bad B/op in %q: %w", line, err)
			}
			b.BytesPerOp = &n
		case "allocs/op":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Benchmark{}, false, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
			b.AllocsPerOp = &n
		}
	}
	return b, true, nil
}

func hasUnit(fields []string, unit string) bool {
	for _, f := range fields {
		if f == unit {
			return true
		}
	}
	return false
}
