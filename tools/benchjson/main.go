// Command benchjson parses `go test -bench` text output from stdin into a
// stable JSON document, so CI can publish benchmark results as a machine-
// readable artifact (BENCH_pr.json) and the numbers can be diffed across
// commits:
//
//	go test -run '^$' -bench . -benchtime=500ms -benchmem . | benchjson > BENCH_pr.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and the
	// -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported measurement.
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present with -benchmem (omitted otherwise).
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

// Report is the full document: environment header plus results.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	rep := &Report{Benchmarks: []Benchmark{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one result line, e.g.
//
//	BenchmarkFig5a_TRADQueryTimes-8  3  450123456 ns/op  123456 B/op  789 allocs/op
//
// Lines that start with "Benchmark" but carry no measurement (sub-benchmark
// headers) report ok=false.
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[2] != "ns/op" && !hasUnit(fields, "ns/op") {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Procs: 1}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			b.Procs = p
			name = name[:i]
		}
	}
	b.Name = name
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Benchmark{}, false, fmt.Errorf("bad ns/op in %q: %w", line, err)
			}
			b.NsPerOp = f
		case "B/op":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Benchmark{}, false, fmt.Errorf("bad B/op in %q: %w", line, err)
			}
			b.BytesPerOp = &n
		case "allocs/op":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Benchmark{}, false, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
			b.AllocsPerOp = &n
		}
	}
	return b, true, nil
}

func hasUnit(fields []string, unit string) bool {
	for _, f := range fields {
		if f == unit {
			return true
		}
	}
	return false
}
