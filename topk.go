package mistique

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"mistique/internal/colstore"
	"mistique/internal/diag"
	"mistique/internal/nindex"
	"mistique/internal/tensor"
)

// This file is the engine's neuron-centric query surface: TOPK ("which
// examples activate neuron j the most"), index-accelerated FilterRows, and
// block-pruned KNN, all backed by the lazily built per-column indexes of
// internal/nindex. Every path has a full-scan twin in internal/diag ranked
// by the same pinned comparators (diag.RankLess / diag.DistLess), and the
// differential harness in internal/nindex/oracletest plus the root
// TestIndexScanParity* tests hold the two byte-identical.

// ErrUnknownColumn marks a column-level query naming a column the
// intermediate does not have.
var ErrUnknownColumn = errors.New("unknown column")

// IndexConfig controls the neuron-centric diagnostic indexes. Zero values
// select defaults; the indexes are on unless Disable is set.
type IndexConfig struct {
	// Disable turns the index layer off entirely: TOPK, FilterRows and
	// KNN answer by full scans (the differential baseline).
	Disable bool
	// MemBudgetBytes caps resident index bytes before LRU eviction
	// (default 64 MiB). Evicted indexes reload from disk on next probe.
	MemBudgetBytes int64
	// SegmentEntries is the priority-list segment length (default 1024):
	// a TOPK(k) decodes ceil(k/SegmentEntries) segments.
	SegmentEntries int
	// HistogramBins is the per-column equi-depth histogram resolution
	// (default 64).
	HistogramBins int
}

// TopKEntry is one row of a TOPK answer, in rank order (value descending,
// NaN last, ascending row id on ties).
type TopKEntry struct {
	Row   int
	Value float32
}

// Neighbor is one row of a KNN answer, in rank order (distance ascending,
// NaN last, ascending row id on ties).
type Neighbor struct {
	Row  int
	Dist float64
}

// TopK returns the k rows with the highest values in a column of a
// materialized intermediate — "which inputs activate this neuron the most"
// (the DeepEverest query class). The first call against a column builds
// its index; later calls decode only the prefix segments covering k rows.
func (s *System) TopK(model, interm, column string, k int) ([]TopKEntry, error) {
	return s.TopKCtx(context.Background(), model, interm, column, k)
}

// TopKCtx is TopK under a context, honored at entry and inside the
// column fetch that backs an index build or scan fallback.
func (s *System) TopKCtx(ctx context.Context, model, interm, column string, k int) ([]TopKEntry, error) {
	it, err := s.columnQueryTarget(ctx, model, interm, column)
	if err != nil {
		return nil, err
	}
	defer s.metrics.queryTopKSeconds.Time()()
	fetch := s.columnFetcher(ctx, model, interm, column, it.Rows)
	if s.nidx != nil {
		if sig, serr := s.store.ColumnSignature(model, interm, column); serr == nil {
			entries, terr := s.nidx.TopK(indexKey(model, interm, column), sig, k, fetch)
			if terr == nil {
				out := make([]TopKEntry, len(entries))
				for i, e := range entries {
					out[i] = TopKEntry{Row: e.Row, Value: e.Value}
				}
				return out, nil
			}
			if errors.Is(terr, context.Canceled) || errors.Is(terr, context.DeadlineExceeded) {
				return nil, terr
			}
		}
	}
	// Full-scan twin: fetch the column and rank with the same comparator.
	col, _, err := fetch()
	if err != nil {
		return nil, err
	}
	ranked := diag.TopK(col, k)
	out := make([]TopKEntry, len(ranked))
	for i, r := range ranked {
		out[i] = TopKEntry{Row: r, Value: col[r]}
	}
	return out, nil
}

// TopKRangeCtx ranks only global rows [from, to) of a column, in the same
// pinned diag.RankLess order as TopKCtx, returning global row ids. This is
// the shard-local TOPK probe behind the cluster router's scatter-gather
// (internal/cluster): each shard ranks the row-blocks it owns, and because
// every path uses the one comparator, merging per-block candidate lists
// with RankLess again reproduces the single-node answer bit for bit.
// from <= 0 means row 0; to <= 0 or past the end means the row count. The
// full range delegates to TopKCtx, which is index-accelerated.
func (s *System) TopKRangeCtx(ctx context.Context, model, interm, column string, k, from, to int) ([]TopKEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	it, ok := s.meta.IntermSnapshot(model, interm)
	if !ok {
		return nil, fmt.Errorf("mistique: %w %s.%s", ErrUnknownIntermediate, model, interm)
	}
	if from < 0 {
		from = 0
	}
	if to <= 0 || to > it.Rows {
		to = it.Rows
	}
	if from > to {
		from = to
	}
	if from == 0 && to == it.Rows {
		return s.TopKCtx(ctx, model, interm, column, k)
	}
	if _, err := s.columnQueryTarget(ctx, model, interm, column); err != nil {
		return nil, err
	}
	defer s.metrics.queryTopKSeconds.Time()()
	m, err := s.readRowRange(ctx, model, interm, []string{column}, from, to)
	if err != nil {
		return nil, err
	}
	col := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		col[i] = m.Row(i)[0]
	}
	// diag.TopK breaks ties by ascending local offset; adding the constant
	// `from` preserves that order in global row ids.
	ranked := diag.TopK(col, k)
	out := make([]TopKEntry, len(ranked))
	for i, r := range ranked {
		out[i] = TopKEntry{Row: from + r, Value: col[r]}
	}
	return out, nil
}

// KNN returns the k rows of a materialized intermediate nearest to row
// queryRow by Euclidean distance over all columns, excluding the query row
// itself. Per-block zone bounds order the blocks by a sound lower bound on
// any member row's distance, so blocks that cannot contribute are never
// read; every returned distance is exact (re-verified on real values).
func (s *System) KNN(model, interm string, queryRow, k int) ([]Neighbor, error) {
	return s.KNNCtx(context.Background(), model, interm, queryRow, k)
}

// KNNCtx is KNN under a context; per-block reads check ctx.
func (s *System) KNNCtx(ctx context.Context, model, interm string, queryRow, k int) ([]Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	it, ok := s.meta.IntermSnapshot(model, interm)
	if !ok {
		return nil, fmt.Errorf("mistique: %w %s.%s", ErrUnknownIntermediate, model, interm)
	}
	if !it.Materialized {
		return nil, fmt.Errorf("mistique: %s.%s %w; KNN needs stored chunks", model, interm, ErrNotMaterialized)
	}
	if queryRow < 0 || queryRow >= it.Rows {
		return nil, fmt.Errorf("mistique: KNN query row %d outside [0, %d)", queryRow, it.Rows)
	}
	if _, err := s.meta.RecordQuery(model, interm); err != nil {
		return nil, err
	}
	defer s.metrics.queryKNNSeconds.Time()()
	cols := it.Columns
	qm, err := s.readRowRange(ctx, model, interm, cols, queryRow, queryRow+1)
	if err != nil {
		return nil, err
	}
	query := qm.Row(0)
	if s.nidx != nil {
		if out, kerr := s.knnPruned(ctx, model, interm, cols, query, queryRow, it.Rows, k); kerr == nil {
			return out, nil
		} else if errors.Is(kerr, context.Canceled) || errors.Is(kerr, context.DeadlineExceeded) {
			return nil, kerr
		}
	}
	// Full-scan twin.
	x, err := s.readRowRange(ctx, model, interm, cols, 0, it.Rows)
	if err != nil {
		return nil, err
	}
	ranked := diag.KNN(x, query, k, queryRow)
	out := make([]Neighbor, len(ranked))
	for i, r := range ranked {
		out[i] = Neighbor{Row: r, Dist: tensor.L2Dist(x.Row(r), query)}
	}
	return out, nil
}

// knnPruned answers KNN by scanning RowBlocks in ascending order of their
// zone-derived distance lower bound and stopping once the k-th candidate
// distance strictly beats every remaining block's bound. The bound obeys
// lb ≤ tensor.L2Dist for every row in the block (see nindex.PlanKNN), and
// pruning requires strict excess, so boundary ties survive and the result
// equals the full scan under diag.DistLess exactly.
func (s *System) knnPruned(ctx context.Context, model, interm string, cols []string, query []float32, queryRow, rows, k int) ([]Neighbor, error) {
	if k < 0 {
		k = 0
	}
	if k > rows-1 {
		k = rows - 1
	}
	if k <= 0 {
		return []Neighbor{}, nil
	}
	colZones := make([][]nindex.Zone, len(cols))
	for j, c := range cols {
		zs, err := s.store.ColumnZones(model, interm, c)
		if err != nil {
			return nil, err
		}
		nz := make([]nindex.Zone, len(zs))
		for i, z := range zs {
			nz[i] = nindex.Zone{Min: z.Min, Max: z.Max, Count: z.Count}
		}
		colZones[j] = nz
	}
	plan := nindex.PlanKNN(query, colZones)
	blockRows := s.cfg.RowBlockRows
	cands := make([]Neighbor, 0, k+blockRows)
	kth := math.NaN()
	for _, bb := range plan {
		if len(cands) >= k && bb.LB > kth {
			break // plan is LB-ascending: every later block prunes too
		}
		lo := bb.Block * blockRows
		if lo >= rows {
			continue
		}
		hi := lo + blockRows
		if hi > rows {
			hi = rows
		}
		m, err := s.readRowRange(ctx, model, interm, cols, lo, hi)
		if err != nil {
			return nil, err
		}
		for r := 0; r < m.Rows; r++ {
			row := lo + r
			if row == queryRow {
				continue
			}
			cands = append(cands, Neighbor{Row: row, Dist: tensor.L2Dist(m.Row(r), query)})
		}
		sort.Slice(cands, func(a, b int) bool {
			return diag.DistLess(cands[a].Dist, cands[b].Dist, cands[a].Row, cands[b].Row)
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		if len(cands) >= k {
			kth = cands[k-1].Dist
		}
	}
	return cands, nil
}

// columnQueryTarget validates a (model, intermediate, column) probe target
// and records the query.
func (s *System) columnQueryTarget(ctx context.Context, model, interm, column string) (*colQueryTarget, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	it, ok := s.meta.IntermSnapshot(model, interm)
	if !ok {
		return nil, fmt.Errorf("mistique: %w %s.%s", ErrUnknownIntermediate, model, interm)
	}
	found := false
	for _, c := range it.Columns {
		if c == column {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("mistique: %w %s.%s.%s", ErrUnknownColumn, model, interm, column)
	}
	if !it.Materialized {
		return nil, fmt.Errorf("mistique: %s.%s %w; column probes need stored chunks", model, interm, ErrNotMaterialized)
	}
	if _, err := s.meta.RecordQuery(model, interm); err != nil {
		return nil, err
	}
	return &colQueryTarget{Rows: it.Rows}, nil
}

type colQueryTarget struct {
	Rows int
}

func indexKey(model, interm, column string) nindex.Key {
	return nindex.Key{Model: model, Intermediate: interm, Column: column}
}

// columnFetcher loads a full column for an index build or scan fallback,
// healing lost chunks by re-materializing from a model re-run (once).
func (s *System) columnFetcher(ctx context.Context, model, interm, column string, rows int) nindex.Fetch {
	return func() ([]float32, int, error) {
		vals, err := s.store.GetColumnRange(model, interm, column, 0, rows)
		if err != nil && recoverableReadErr(err) {
			if cerr := ctx.Err(); cerr != nil {
				return nil, 0, cerr
			}
			if herr := s.healIntermediate(model, interm); herr != nil {
				return nil, 0, herr
			}
			vals, err = s.store.GetColumnRange(model, interm, column, 0, rows)
		}
		if err != nil {
			return nil, 0, err
		}
		return vals, s.cfg.RowBlockRows, nil
	}
}

// filterViaIndex answers a FilterRows predicate from the column's index.
// ok=false sends the caller to the zone-map scan path (index disabled,
// signature unavailable, or probe failed) — falling back is always safe
// because both paths rank identically.
func (s *System) filterViaIndex(ctx context.Context, model, interm, column string, op colstore.Op, bound float32, rows int) ([]int, bool, error) {
	if s.nidx == nil {
		return nil, false, nil
	}
	nop, ok := indexOp(op)
	if !ok {
		return nil, false, nil
	}
	sig, err := s.store.ColumnSignature(model, interm, column)
	if err != nil {
		return nil, false, nil
	}
	out, err := s.nidx.FilterRows(indexKey(model, interm, column), sig, nop, bound,
		s.columnFetcher(ctx, model, interm, column, rows))
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, false, err
		}
		return nil, false, nil
	}
	if out == nil {
		out = []int{}
	}
	return out, true, nil
}

// indexOp maps the store's zone-map predicate to the index's.
func indexOp(op colstore.Op) (nindex.Op, bool) {
	switch op {
	case colstore.Gt:
		return nindex.Gt, true
	case colstore.Ge:
		return nindex.Ge, true
	case colstore.Lt:
		return nindex.Lt, true
	case colstore.Le:
		return nindex.Le, true
	}
	return 0, false
}
