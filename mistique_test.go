package mistique

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mistique/internal/colstore"
	"mistique/internal/cost"
	"mistique/internal/data"
	"mistique/internal/nn"
	"mistique/internal/pipeline"
	"mistique/internal/quant"
	"mistique/internal/zillow"
)

const demoSpec = `
name: demo
stages:
  - name: props
    op: read_table
    params: {table: properties}
  - name: sales
    op: read_table
    params: {table: train}
  - name: joined
    op: join
    inputs: [sales, props]
    params: {on: parcelid}
  - name: filled
    op: fillna
    inputs: [joined]
  - name: splits
    op: split
    inputs: [filled]
    params: {frac: 0.8, seed: 1}
    outputs: [train_split, eval_split]
  - name: model
    op: train_xgb
    inputs: [train_split]
    params: {target: logerror, rounds: 4, max_depth: 3}
`

func openSys(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func logDemo(t *testing.T, s *System) {
	t.Helper()
	spec, err := pipeline.SpecFromYAML(demoSpec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	env := zillow.Env(200, 600, 1)
	rep, err := s.LogPipeline(p, env)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Intermediates != 7 {
		t.Fatalf("report %+v", rep)
	}
}

func TestLogPipelineAndRead(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)

	m := s.Metadata().Model("demo")
	if m == nil || len(m.Stages) != 6 {
		t.Fatalf("model metadata %+v", m)
	}
	it := s.Metadata().Intermediate("demo", "joined")
	if it == nil || !it.Materialized || it.Rows != 600 {
		t.Fatalf("intermediate %+v", it)
	}

	res, err := s.GetIntermediate("demo", "joined", []string{"logerror", "finishedsquarefeet"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data.Rows != 600 || res.Data.Cols != 2 {
		t.Fatalf("result shape %dx%d", res.Data.Rows, res.Data.Cols)
	}
	// Reading must agree with re-running the pipeline.
	rr, err := s.GetIntermediate("demo", "joined", []string{"logerror", "finishedsquarefeet"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Data.Data {
		if res.Data.Data[i] != rr.Data.Data[i] {
			t.Fatalf("read/reread mismatch at %d", i)
		}
	}
	// Partial fetch.
	part, err := s.GetIntermediate("demo", "joined", nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if part.Data.Rows != 100 {
		t.Fatalf("partial rows %d", part.Data.Rows)
	}
	if n, _ := s.Metadata().Intermediate("demo", "joined").QueryCount, 0; n != 3 {
		t.Fatalf("query count %d", n)
	}
}

func TestReadMatchesRerun(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)
	read, err := s.GetIntermediate("demo", "model", []string{"pred"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if read.Strategy != cost.Read {
		t.Fatalf("expected READ for TRAD, got %v", read.Strategy)
	}
	// Force a re-run through the internal path and compare.
	m := s.Metadata().Model("demo")
	it := s.Metadata().Intermediate("demo", "model")
	rerun, err := s.rerunMatrix(context.Background(), m, it, []string{"pred"}, it.Rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range read.Data.Data {
		if read.Data.Data[i] != rerun.Data[i] {
			t.Fatalf("read vs rerun differ at %d: %v vs %v", i, read.Data.Data[i], rerun.Data[i])
		}
	}
}

func TestDedupAcrossPipelines(t *testing.T) {
	s := openSys(t, Config{Store: colstore.Config{Mode: colstore.ModeSimilarity}})
	logDemo(t, s)
	// Log a second pipeline with identical prefix but different model
	// hyperparameters: early intermediates dedup.
	spec, err := pipeline.SpecFromYAML(demoSpec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Name = "demo2"
	spec.Stages[5].Params["rounds"] = 6
	p, err := pipeline.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.LogPipeline(p, zillow.Env(200, 600, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColumnsDedup == 0 {
		t.Fatalf("no dedup across identical prefixes: %+v", rep)
	}
	if rep.StoredBytes >= rep.LogicalBytes/2 {
		t.Fatalf("dedup saved too little: stored %d of %d", rep.StoredBytes, rep.LogicalBytes)
	}
}

func TestErrors(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)
	if _, err := s.GetIntermediate("ghost", "x", nil, 0); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := s.GetIntermediate("demo", "ghost", nil, 0); err == nil {
		t.Fatal("unknown intermediate accepted")
	}
	if _, err := s.GetIntermediate("demo", "joined", []string{"nope"}, 0); err == nil {
		t.Fatal("unknown column accepted")
	}
	spec, _ := pipeline.SpecFromYAML(demoSpec)
	p, _ := pipeline.New(spec)
	if _, err := s.LogPipeline(p, zillow.Env(50, 100, 1)); err == nil {
		t.Fatal("duplicate pipeline name accepted")
	}
}

func dnnSetup(t *testing.T, scheme Scheme, n int) (*System, *nn.Network) {
	t.Helper()
	s := openSys(t, Config{RowBlockRows: 64, Store: colstore.Config{Mode: colstore.ModeArrival}})
	net := nn.SimpleCNN("cnn", 4, 1)
	imgs, _ := data.Images(n, 4, 2)
	if _, err := s.LogDNN("cnn@e0", net, imgs, DNNLogOptions{Scheme: scheme}); err != nil {
		t.Fatal(err)
	}
	return s, net
}

func TestLogDNNFullReadBack(t *testing.T) {
	s, net := dnnSetup(t, SchemeFull, 96)
	imgs, _ := data.Images(96, 4, 2)
	want := net.Forward(imgs, net.NumLayers()-1)
	res, err := s.GetIntermediate("cnn@e0", "logits", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data.Rows != 96 || res.Data.Cols != 4 {
		t.Fatalf("logits shape %dx%d", res.Data.Rows, res.Data.Cols)
	}
	for i := range want.Data {
		if res.Data.Data[i] != want.Data[i] {
			t.Fatalf("stored logits differ at %d", i)
		}
	}
}

func TestLogDNNPool2Shrinks(t *testing.T) {
	s, _ := dnnSetup(t, SchemePool2, 96)
	full := s.Metadata().Intermediate("cnn@e0", "conv1_1")
	// conv1_1 output is 8x32x32 = 8192 raw units; pool(2) keeps 8x16x16.
	if got := len(full.Columns); got != 8*16*16 {
		t.Fatalf("pooled column count %d", got)
	}
	// Reads agree with re-running + pooling.
	read, err := s.GetIntermediate("cnn@e0", "conv1_1", []string{"u0", "u100"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if read.Data.Rows != 32 {
		t.Fatalf("rows %d", read.Data.Rows)
	}
	m := s.Metadata().Model("cnn@e0")
	it := s.Metadata().Intermediate("cnn@e0", "conv1_1")
	rerun, err := s.rerunMatrix(context.Background(), m, it, []string{"u0", "u100"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range read.Data.Data {
		if math.Abs(float64(read.Data.Data[i]-rerun.Data[i])) > 1e-6 {
			t.Fatalf("pooled read/rerun differ at %d", i)
		}
	}
}

func TestLogDNN8BitApproximates(t *testing.T) {
	s, net := dnnSetup(t, Scheme8Bit, 96)
	imgs, _ := data.Images(96, 4, 2)
	raw := net.Forward(imgs, 0) // conv1_1
	res, err := s.GetIntermediate("cnn@e0", "conv1_1", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != cost.Read {
		t.Fatalf("expected READ, got %v", res.Strategy)
	}
	flat := raw.Flatten()
	var sumErr, sumAbs float64
	for i := range flat.Data {
		sumErr += math.Abs(float64(res.Data.Data[i] - flat.Data[i]))
		sumAbs += math.Abs(float64(flat.Data[i]))
	}
	if rel := sumErr / sumAbs; rel > 0.05 {
		t.Fatalf("8-bit relative error %g too large", rel)
	}
	// Storage accounting: ~1 byte per value plus tables.
	it := s.Metadata().Intermediate("cnn@e0", "conv1_1")
	rawBytes := int64(len(it.Columns) * it.Rows)
	if it.StoredBytes < rawBytes/2 || it.StoredBytes > rawBytes*2 {
		t.Fatalf("8-bit stored %d bytes for %d values", it.StoredBytes, rawBytes)
	}
}

func TestDNNLayerSubset(t *testing.T) {
	s := openSys(t, Config{RowBlockRows: 64})
	net := nn.SimpleCNN("cnn", 4, 3)
	imgs, _ := data.Images(64, 4, 4)
	if _, err := s.LogDNN("cnn", net, imgs, DNNLogOptions{Scheme: SchemeFull, Layers: []int{0, 13}}); err != nil {
		t.Fatal(err)
	}
	if s.Metadata().Intermediate("cnn", "conv1_1") == nil {
		t.Fatal("requested layer missing")
	}
	if s.Metadata().Intermediate("cnn", "conv1_2") != nil {
		t.Fatal("unrequested layer logged")
	}
	if _, err := s.LogDNN("cnn2", net, imgs, DNNLogOptions{Layers: []int{99}}); err == nil {
		t.Fatal("bad layer index accepted")
	}
}

func TestDNNDedupAcrossEpochsFrozenLayers(t *testing.T) {
	s := openSys(t, Config{RowBlockRows: 64, Store: colstore.Config{Mode: colstore.ModeArrival}})
	imgs, labels := data.Images(64, 2, 5)
	net := nn.VGG16("vgg", 2, 1, 6)
	net.FreezeConv()
	// Epoch 0.
	rep0, err := s.LogDNN("vgg@e0", net, imgs, DNNLogOptions{Scheme: SchemePool2})
	if err != nil {
		t.Fatal(err)
	}
	// Train only the FC head, then log epoch 1.
	net.TrainEpochs(imgs, labels, 1, 16, 0.05, nil)
	rep1, err := s.LogDNN("vgg@e1", net, imgs, DNNLogOptions{Scheme: SchemePool2})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.ColumnsDedup == 0 {
		t.Fatal("frozen conv intermediates did not dedup across epochs")
	}
	if rep1.StoredBytes >= rep0.StoredBytes/2 {
		t.Fatalf("epoch-1 stored %d vs epoch-0 %d: dedup ineffective", rep1.StoredBytes, rep0.StoredBytes)
	}
}

func TestAdaptiveMaterialization(t *testing.T) {
	// With a generous cost model, any queried intermediate crosses gamma
	// after a couple of queries.
	s := openSys(t, Config{
		Gamma: 1e-9,
		Cost:  cost.Params{ReadBytesPerSec: 1e12, InputBytesPerSec: 1e12},
	})
	logDemo(t, s)
	it := s.Metadata().Intermediate("demo", "joined")
	if it.Materialized {
		t.Fatal("adaptive mode materialized at logging time")
	}
	res1, err := s.GetIntermediate("demo", "joined", []string{"logerror"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Strategy != cost.Rerun {
		t.Fatalf("first query should re-run, got %v", res1.Strategy)
	}
	if !res1.MaterializedNow {
		t.Fatal("gamma crossing did not materialize")
	}
	res2, err := s.GetIntermediate("demo", "joined", []string{"logerror"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Strategy != cost.Read {
		t.Fatalf("post-materialization query should read, got %v", res2.Strategy)
	}
	for i := range res1.Data.Data {
		if res1.Data.Data[i] != res2.Data.Data[i] {
			t.Fatalf("materialized data differs at %d", i)
		}
	}
}

func TestAdaptiveHighGammaNeverMaterializes(t *testing.T) {
	s := openSys(t, Config{Gamma: 1e12})
	logDemo(t, s)
	for i := 0; i < 3; i++ {
		res, err := s.GetIntermediate("demo", "filled", nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy != cost.Rerun || res.MaterializedNow {
			t.Fatalf("query %d: %v materialized=%v", i, res.Strategy, res.MaterializedNow)
		}
	}
	if st := s.Store().Stats(); st.ChunksStored != 0 {
		t.Fatalf("adaptive high-gamma stored %d chunks", st.ChunksStored)
	}
}

func TestFlushPersistsCatalog(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "metadata.json")); err != nil {
		t.Fatalf("catalog not persisted: %v", err)
	}
	n, err := s.DiskBytes()
	if err != nil || n == 0 {
		t.Fatalf("disk bytes %d %v", n, err)
	}
}

func TestRerunRawDNN(t *testing.T) {
	s, net := dnnSetup(t, SchemePool2, 64)
	imgs, _ := data.Images(64, 4, 2)
	want := net.Forward(imgs.SliceN(0, 32), 0)
	got, err := s.RerunRawDNN("cnn@e0", "conv1_1", 32)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 32 || got.H != 32 {
		t.Fatalf("raw shape %d %d", got.N, got.H)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("raw rerun differs at %d", i)
		}
	}
	if _, err := s.RerunRawDNN("cnn@e0", "nope", 1); err == nil {
		t.Fatal("unknown layer accepted")
	}
	if _, err := s.RerunRawDNN("nope", "conv1_1", 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestThresholdSchemeBinarizes(t *testing.T) {
	s, _ := dnnSetup(t, SchemeThreshold, 64)
	res, err := s.GetIntermediate("cnn@e0", "conv1_1", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, v := range res.Data.Data {
		switch v {
		case 0:
		case 1:
			ones++
		default:
			t.Fatalf("threshold value %v not binary", v)
		}
	}
	total := len(res.Data.Data)
	if ones == 0 || ones > total/50 {
		t.Fatalf("threshold ones %d of %d implausible for alpha=0.005", ones, total)
	}
}

func TestReopenServesMaterializedReads(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	want, err := s.GetIntermediate("demo", "model", []string{"pred"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// A fresh process over the same directory can read without re-logging.
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	it := s2.Metadata().Intermediate("demo", "model")
	if it == nil || !it.Materialized {
		t.Fatalf("catalog not restored: %+v", it)
	}
	got, err := s2.Fetch("demo", "model", []string{"pred"}, 0, cost.Read)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data.Data {
		if got.Data.Data[i] != want.Data.Data[i] {
			t.Fatalf("reopened read differs at %d", i)
		}
	}
	// RERUN is unavailable until the pipeline is re-logged.
	if _, err := s2.Fetch("demo", "model", []string{"pred"}, 0, cost.Rerun); err == nil {
		t.Fatal("rerun without resident pipeline should fail")
	}
}

func TestFilterRowsAndGetRows(t *testing.T) {
	s := openSys(t, Config{RowBlockRows: 64})
	logDemo(t, s)

	// Zone-map predicate scan over the stored yearbuilt column.
	rows, err := s.FilterRows("demo", "joined", "yearbuilt", colstore.Ge, 2015)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.GetIntermediate("demo", "joined", []string{"yearbuilt"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range full.Data.Col(0) {
		if v >= 2015 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("FilterRows found %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if full.Data.At(r, 0) < 2015 {
			t.Fatalf("row %d value %v below bound", r, full.Data.At(r, 0))
		}
	}

	// Primary-index range read agrees with a full read.
	rng, err := s.GetRows("demo", "joined", []string{"yearbuilt", "logerror"}, 100, 160)
	if err != nil {
		t.Fatal(err)
	}
	if rng.Rows != 60 || rng.Cols != 2 {
		t.Fatalf("range shape %dx%d", rng.Rows, rng.Cols)
	}
	for i := 0; i < 60; i++ {
		if rng.At(i, 0) != full.Data.At(100+i, 0) {
			t.Fatalf("range row %d mismatch", i)
		}
	}
	// Clamp and errors.
	if _, err := s.GetRows("demo", "joined", nil, -1, 10); err == nil {
		t.Fatal("negative from accepted")
	}
	if _, err := s.GetRows("demo", "ghost", nil, 0, 10); err == nil {
		t.Fatal("unknown intermediate accepted")
	}
	if _, err := s.FilterRows("demo", "ghost", "x", colstore.Gt, 0); err == nil {
		t.Fatal("unknown intermediate accepted")
	}
}

func TestFilterRowsRequiresMaterialization(t *testing.T) {
	s := openSys(t, Config{Gamma: 1e12}) // adaptive: nothing stored
	logDemo(t, s)
	if _, err := s.FilterRows("demo", "joined", "yearbuilt", colstore.Gt, 0); err == nil {
		t.Fatal("scan on unmaterialized intermediate accepted")
	}
}

func TestLogRNNIntermediates(t *testing.T) {
	s := openSys(t, Config{RowBlockRows: 64, Store: colstore.Config{Mode: colstore.ModeArrival}})
	seqs, _ := data.Sequences(64, 6, 2, 3, 1)
	net := nn.ElmanRNN("rnn", 6, 2, 8, 3, 2)
	rep, err := s.LogDNN("rnn", net, seqs, DNNLogOptions{Scheme: SchemeFull})
	if err != nil {
		t.Fatal(err)
	}
	// PadHidden + 6 steps + TakeHidden + Dense = 9 intermediates.
	if rep.Intermediates != 9 {
		t.Fatalf("intermediates %d", rep.Intermediates)
	}
	// The sequence region passes through every step unchanged, so those
	// columns dedup across step layers.
	if rep.ColumnsDedup == 0 {
		t.Fatal("pass-through sequence columns did not dedup across steps")
	}
	// Query the hidden state after step 3 (columns 12..19 are the tail).
	res, err := s.GetIntermediate("rnn", "step3", []string{"u12", "u13"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data.Rows != 64 || res.Data.Cols != 2 {
		t.Fatalf("rnn hidden query shape %dx%d", res.Data.Rows, res.Data.Cols)
	}
	// Stored values match a fresh forward pass.
	want := net.Forward(seqs, 4) // layer 4 = step3 (after PadHidden)
	for i := 0; i < 64; i++ {
		if res.Data.At(i, 0) != want.At(i, 12, 0, 0) {
			t.Fatalf("rnn stored hidden differs at row %d", i)
		}
	}
}

func TestSessionCache(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)
	sess := NewSession(s, 1<<20)

	r1, err := sess.Get("demo", "model", []string{"pred"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sess.Get("demo", "model", []string{"pred"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := sess.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if r1 != r2 {
		t.Fatal("cache did not return the same result object")
	}
	// Query counter only bumped once (the cached query never hit the engine).
	if n := s.Metadata().Intermediate("demo", "model").QueryCount; n != 1 {
		t.Fatalf("query count %d", n)
	}
	// Different column sets are distinct entries.
	if _, err := sess.Get("demo", "model", []string{"logerror"}, 0); err != nil {
		t.Fatal(err)
	}
	if sess.Len() != 2 {
		t.Fatalf("cache len %d", sess.Len())
	}
	// Invalidate drops the model's entries.
	sess.Invalidate("demo")
	if sess.Len() != 0 {
		t.Fatalf("after invalidate len %d", sess.Len())
	}
}

func TestSessionCacheEviction(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)
	// Tiny cache: a full "joined" result (600 rows x 14 cols x 4B = 33.6KB)
	// cannot coexist with another copy.
	sess := NewSession(s, 40<<10)
	if _, err := sess.Get("demo", "joined", nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Get("demo", "filled", nil, 0); err != nil {
		t.Fatal(err)
	}
	if sess.Len() != 1 {
		t.Fatalf("eviction failed: len %d", sess.Len())
	}
}

func TestPrefetch(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)
	if err := s.Store().DropCache(); err != nil {
		t.Fatal(err)
	}
	if err := s.Prefetch("demo", "model"); err != nil {
		t.Fatal(err)
	}
	// After prefetch the read hits warm partitions: no new disk reads.
	before := s.Store().Stats().DiskReads
	if _, err := s.Fetch("demo", "model", nil, 0, cost.Read); err != nil {
		t.Fatal(err)
	}
	if got := s.Store().Stats().DiskReads; got != before {
		t.Fatalf("read after prefetch hit disk (%d -> %d)", before, got)
	}
	if err := s.Prefetch("demo", "ghost"); err == nil {
		t.Fatal("prefetch of unknown intermediate accepted")
	}
}

func TestDropModelAndCompact(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)
	// A second identical pipeline shares almost all chunks.
	spec, _ := pipeline.SpecFromYAML(demoSpec)
	spec.Name = "demo2"
	p, _ := pipeline.New(spec)
	if _, err := s.LogPipeline(p, zillow.Env(200, 600, 1)); err != nil {
		t.Fatal(err)
	}

	if err := s.DropModel("demo2"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropModel("demo2"); err == nil {
		t.Fatal("double drop accepted")
	}
	if s.Metadata().Model("demo2") != nil {
		t.Fatal("catalog kept dropped model")
	}
	if _, err := s.GetIntermediate("demo2", "joined", nil, 0); err == nil {
		t.Fatal("query on dropped model accepted")
	}
	// demo still fully readable.
	if _, err := s.GetIntermediate("demo", "model", nil, 0); err != nil {
		t.Fatal(err)
	}
	// demo2 was nearly all dedup'd into demo's chunks, so compaction
	// reclaims little-to-nothing — but must not break demo.
	if _, err := s.CompactStore(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetIntermediate("demo", "joined", nil, 0); err != nil {
		t.Fatalf("demo unreadable after compact: %v", err)
	}

	// Dropping demo frees real bytes.
	if err := s.DropModel("demo"); err != nil {
		t.Fatal(err)
	}
	reclaimed, err := s.CompactStore()
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed == 0 {
		t.Fatal("dropping the last model reclaimed nothing")
	}
}

func TestReattachAfterReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	logDemo(t, s)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	storedBefore := s.Store().Stats().ChunksStored

	// New process: reopen and re-log the same pipeline. All chunks dedup
	// against the flushed data, and both READ and RERUN work again.
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := pipeline.SpecFromYAML(demoSpec)
	p, _ := pipeline.New(spec)
	rep, err := s2.LogPipeline(p, zillow.Env(200, 600, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColumnsStored != 0 {
		t.Fatalf("re-attach stored %d new chunks, want 0 (all dedup)", rep.ColumnsStored)
	}
	_ = storedBefore
	read, err := s2.Fetch("demo", "model", []string{"pred"}, 0, cost.Read)
	if err != nil {
		t.Fatal(err)
	}
	rerun, err := s2.Fetch("demo", "model", []string{"pred"}, 0, cost.Rerun)
	if err != nil {
		t.Fatal(err)
	}
	for i := range read.Data.Data {
		if read.Data.Data[i] != rerun.Data.Data[i] {
			t.Fatalf("re-attached read/rerun differ at %d", i)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			interms := []string{"joined", "filled", "model"}
			for i := 0; i < 4; i++ {
				name := interms[(g+i)%len(interms)]
				if _, err := s.GetIntermediate("demo", name, nil, 50+g*10); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := s.Metadata().Intermediate("demo", "joined").QueryCount; n == 0 {
		t.Fatal("no queries recorded")
	}
}

func TestCalibrate(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)
	rate, err := s.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatalf("calibrated rate %g", rate)
	}
	if got := s.CostParams().ReadBytesPerSec; got != rate {
		t.Fatalf("cost params not updated: %g vs %g", got, rate)
	}
	// An empty system has nothing to calibrate against.
	empty := openSys(t, Config{})
	if _, err := empty.Calibrate(); err == nil {
		t.Fatal("empty calibrate succeeded")
	}
}

func TestFilterRowsOnQuantizedDNN(t *testing.T) {
	s, _ := dnnSetup(t, Scheme8Bit, 96)
	rows, err := s.FilterRows("cnn@e0", "conv1_1", "u0", colstore.Gt, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against a read of the reconstructed column.
	res, err := s.Fetch("cnn@e0", "conv1_1", []string{"u0"}, 0, cost.Read)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range res.Data.Col(0) {
		if v > 0.5 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("quantized scan found %d, reconstruction has %d", len(rows), want)
	}
}

func TestGetRowsOnPooledDNN(t *testing.T) {
	s, _ := dnnSetup(t, SchemePool2, 96)
	rng, err := s.GetRows("cnn@e0", "conv1_1", []string{"u0", "u1"}, 70, 90)
	if err != nil {
		t.Fatal(err)
	}
	if rng.Rows != 20 || rng.Cols != 2 {
		t.Fatalf("range shape %dx%d", rng.Rows, rng.Cols)
	}
	full, err := s.Fetch("cnn@e0", "conv1_1", []string{"u0", "u1"}, 0, cost.Read)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if rng.At(i, 0) != full.Data.At(70+i, 0) {
			t.Fatalf("range row %d mismatch", i)
		}
	}
	// Clamp beyond the end.
	tail, err := s.GetRows("cnn@e0", "conv1_1", []string{"u0"}, 90, 500)
	if err != nil || tail.Rows != 6 {
		t.Fatalf("clamped tail: %v rows=%d", err, tail.Rows)
	}
}

func TestMaxPoolScheme(t *testing.T) {
	s := openSys(t, Config{RowBlockRows: 64})
	net := nn.SimpleCNN("cnn", 4, 1)
	imgs, _ := data.Images(64, 4, 2)
	if _, err := s.LogDNN("cnn", net, imgs, DNNLogOptions{Scheme: SchemePool2, PoolAgg: quant.Max}); err != nil {
		t.Fatal(err)
	}
	read, err := s.Fetch("cnn", "conv1_1", []string{"u0"}, 8, cost.Read)
	if err != nil {
		t.Fatal(err)
	}
	// Max pooling of the raw activation's top-left 2x2 window.
	raw, err := s.RerunRawDNN("cnn", "conv1_1", 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		want := raw.At(i, 0, 0, 0)
		for _, v := range []float32{raw.At(i, 0, 0, 1), raw.At(i, 0, 1, 0), raw.At(i, 0, 1, 1)} {
			if v > want {
				want = v
			}
		}
		if read.Data.At(i, 0) != want {
			t.Fatalf("max-pool stored %v, want %v at row %d", read.Data.At(i, 0), want, i)
		}
	}
}

// TestConcurrentEngine hammers one System from many goroutines mixing every
// public mutating and reading entry point: DNN logging, intermediate reads,
// flushes, cost-model calibration and model drops. Run under -race it is the
// engine-level half of the concurrency suite; the store-level half lives in
// internal/colstore. Reads of the long-lived base model must stay correct
// throughout; operations racing a concurrent DropModel of a scratch model
// may fail, but only with a clean error.
func TestConcurrentEngine(t *testing.T) {
	s := openSys(t, Config{RowBlockRows: 64, Store: colstore.Config{Mode: colstore.ModeArrival}})
	logDemo(t, s)

	want, err := s.GetIntermediate("demo", "joined", []string{"logerror"}, 0)
	if err != nil {
		t.Fatal(err)
	}

	imgs, _ := data.Images(32, 4, 2)
	const loggers, readers, iters = 2, 2, 3
	var wg sync.WaitGroup

	// Loggers: log a scratch DNN (first conv only, pooled to 8 columns so
	// the forward pass stays cheap under -race), read it back, drop it.
	for g := 0; g < loggers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			net := nn.SimpleCNN(fmt.Sprintf("cnn%d", g), 4, 1)
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("cnn@g%d-i%d", g, i)
				if _, err := s.LogDNN(name, net, imgs, DNNLogOptions{Scheme: SchemePool32, Layers: []int{0}}); err != nil {
					t.Errorf("LogDNN %s: %v", name, err)
					return
				}
				if _, err := s.GetIntermediate(name, "conv1_1", []string{"u0"}, 0); err != nil {
					t.Errorf("read %s: %v", name, err)
					return
				}
				if err := s.DropModel(name); err != nil {
					t.Errorf("drop %s: %v", name, err)
					return
				}
			}
		}(g)
	}

	// Readers: the base pipeline's data is never dropped; every read must
	// succeed and return the same values.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters*2; i++ {
				res, err := s.GetIntermediate("demo", "joined", []string{"logerror"}, 0)
				if err != nil {
					t.Errorf("base read: %v", err)
					return
				}
				for j := range want.Data.Data {
					if res.Data.Data[j] != want.Data.Data[j] {
						t.Errorf("base read changed at %d", j)
						return
					}
				}
			}
		}()
	}

	// Flusher + calibrator: walk every partition while puts and drops race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters*2; i++ {
			if err := s.Flush(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			// Calibrate may lose its probe to a concurrent DropModel; that
			// returns an error, never a crash.
			if _, err := s.Calibrate(); err != nil {
				t.Logf("calibrate (benign under races): %v", err)
			}
		}
	}()

	// Dropper/compactor: reclaim space while everyone else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := s.CompactStore(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()

	wg.Wait()

	// The store must still be internally consistent and the base model intact.
	rep, err := s.Store().Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) > 0 {
		t.Fatalf("store verify: %v", rep.Problems)
	}
	res, err := s.GetIntermediate("demo", "joined", []string{"logerror"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Data.Data {
		if res.Data.Data[j] != want.Data.Data[j] {
			t.Fatalf("base data corrupted at %d", j)
		}
	}
}

// TestConcurrentSessions drives one shared Session cache from several
// goroutines: the cache index must stay consistent and every answer must
// match the single-threaded result.
func TestConcurrentSessions(t *testing.T) {
	s := openSys(t, Config{})
	logDemo(t, s)
	want, err := s.GetIntermediate("demo", "model", []string{"pred"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(s, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := sess.Get("demo", "model", []string{"pred"}, 0)
				if err != nil {
					t.Errorf("session get: %v", err)
					return
				}
				for j := range want.Data.Data {
					if res.Data.Data[j] != want.Data.Data[j] {
						t.Errorf("session result differs at %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := sess.Stats()
	if hits+misses != 32 || sess.Len() != 1 {
		t.Fatalf("hits=%d misses=%d len=%d", hits, misses, sess.Len())
	}
}
