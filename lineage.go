package mistique

import (
	"fmt"
)

// LineageEntry describes one model version in a training-run lineage
// chain, newest first: the version itself, the parent it was logged as a
// delta against, and how the store is holding its intermediates.
type LineageEntry struct {
	// Model is this version's name; Parent is the version it was logged
	// against ("" for the root of the chain).
	Model  string
	Parent string
	Kind   string
	// Intermediates counts catalog entries; StoredBytes sums their
	// encoded (post-dedup, pre-compression) footprint.
	Intermediates int
	StoredBytes   int64
	// MaxDeltaDepth is the deepest delta chain any of this version's
	// columns sits on (0 = every chunk is full or exact-deduped). Cold
	// reads page in depth+1 generations; the cost model charges exactly
	// that amplification (cost.ChainReadSeconds).
	MaxDeltaDepth int
	// WeightBytes is the logical size of this version's weight snapshot
	// in the content-addressed store (0 when none — e.g. pipelines);
	// WeightNewBytes is how much of it was new to the chunk table;
	// WeightDepth is its delta-chain depth there.
	WeightBytes    int64
	WeightNewBytes int64
	WeightDepth    int
}

// Lineage walks the version chain of a model, newest first, following
// catalog Parent links (LogDNN's Parent option) until a root version or a
// parent that is no longer in the catalog (dropped versions end the walk;
// the last entry still names them as Parent). A cycle — possible only by
// hand-editing the catalog — terminates the walk instead of spinning.
func (s *System) Lineage(model string) ([]LineageEntry, error) {
	db := s.meta
	if db.Model(model) == nil {
		return nil, fmt.Errorf("mistique: %w %q", ErrUnknownModel, model)
	}
	var out []LineageEntry
	seen := make(map[string]bool)
	for name := model; name != "" && !seen[name]; {
		seen[name] = true
		m := db.Model(name)
		if m == nil {
			break
		}
		e := LineageEntry{Model: name, Parent: m.Parent, Kind: string(m.Kind)}
		for _, it := range db.IntermSnapshots(name) {
			e.Intermediates++
			e.StoredBytes += it.StoredBytes
			if d := s.store.MaxDeltaDepth(name, it.Name); d > e.MaxDeltaDepth {
				e.MaxDeltaDepth = d
			}
		}
		if wi, ok := s.weights.Info(name); ok {
			e.WeightBytes = wi.Size
			e.WeightNewBytes = wi.NewBytes
			e.WeightDepth = wi.Depth
		}
		out = append(out, e)
		name = m.Parent
	}
	return out, nil
}
