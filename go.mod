module mistique

go 1.22
