package mistique

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mistique/internal/colstore"
	"mistique/internal/metadata"
	"mistique/internal/sample"
	"mistique/internal/wal"
)

// Streaming ingest: a live training job pushes row batches into an
// intermediate without a resident model. Each (model, intermediate) stream
// owns a write-ahead log under <dir>/data/wal; a batch is acknowledged
// only after its WAL record is fsynced, then it feeds the reservoir
// sampler (so approximate queries see acknowledged rows immediately) and
// accumulates in an open RowBlock. Full blocks cut into the column store
// as they fill; the partial tail drains at Flush, after which the WAL
// shrinks back to its header record. Replay on Open re-offers every
// acknowledged batch idempotently — rows already durable in partitions or
// already counted by the sampler are skipped by row id.
//
// Stream models have metadata.Kind Stream: no stages, no RERUN strategy.
// Exact queries answer from drained rows; approximate queries answer from
// the sampler and may be fresher than exact ones.

// Stream WAL record types. The first record of every stream WAL is a
// header naming the stream (the file itself is hash-named); all later
// records are row batches.
const (
	streamRecHeader = 1
	streamRecBatch  = 2
)

func encodeStreamHeader(model, interm string, cols []string) []byte {
	buf := []byte{streamRecHeader}
	buf = appendUvarint(buf, uint64(len(model)))
	buf = append(buf, model...)
	buf = appendUvarint(buf, uint64(len(interm)))
	buf = append(buf, interm...)
	buf = appendUvarint(buf, uint64(len(cols)))
	for _, c := range cols {
		buf = appendUvarint(buf, uint64(len(c)))
		buf = append(buf, c...)
	}
	return buf
}

func decodeStreamHeader(rec []byte) (model, interm string, cols []string, err error) {
	d := streamDec{buf: rec}
	if d.u8() != streamRecHeader {
		return "", "", nil, errors.New("not a stream header record")
	}
	model = d.str()
	interm = d.str()
	n := d.uvarint(1 << 16)
	for i := uint64(0); i < n && d.err == nil; i++ {
		cols = append(cols, d.str())
	}
	if d.err != nil || len(d.buf) != d.off {
		return "", "", nil, errors.New("malformed stream header record")
	}
	return model, interm, cols, nil
}

func encodeStreamBatch(startRow int64, nCols int, rows [][]float32) []byte {
	buf := make([]byte, 0, 1+3*binary.MaxVarintLen64+4*len(rows)*nCols)
	buf = append(buf, streamRecBatch)
	buf = appendUvarint(buf, uint64(startRow))
	buf = appendUvarint(buf, uint64(len(rows)))
	buf = appendUvarint(buf, uint64(nCols))
	var w [4]byte
	for _, r := range rows {
		for _, v := range r {
			binary.LittleEndian.PutUint32(w[:], math.Float32bits(v))
			buf = append(buf, w[:]...)
		}
	}
	return buf
}

func decodeStreamBatch(rec []byte) (startRow int64, nRows, nCols int, vals []float32, err error) {
	d := streamDec{buf: rec}
	if d.u8() != streamRecBatch {
		return 0, 0, 0, nil, errors.New("not a stream batch record")
	}
	startRow = int64(d.uvarint(1 << 62))
	nRows = int(d.uvarint(1 << 32))
	nCols = int(d.uvarint(1 << 16))
	if d.err != nil || len(d.buf)-d.off != 4*nRows*nCols {
		return 0, 0, 0, nil, errors.New("malformed stream batch record")
	}
	vals = make([]float32, nRows*nCols)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(rec[d.off+4*i:]))
	}
	return startRow, nRows, nCols, vals, nil
}

func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(buf, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

// streamDec is a cursor with a sticky error over one WAL record.
type streamDec struct {
	buf []byte
	off int
	err error
}

func (d *streamDec) fail() {
	if d.err == nil {
		d.err = errors.New("short record")
	}
}

func (d *streamDec) u8() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *streamDec) uvarint(limit uint64) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 || v > limit {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *streamDec) str() string {
	n := d.uvarint(1 << 16)
	if d.err != nil || d.off+int(n) > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// streamState is one live (model, intermediate) ingest stream.
type streamState struct {
	mu     sync.Mutex
	model  string
	interm string
	cols   []string

	log       *wal.Log
	headerRec []byte
	sampler   *sample.Builder

	// rows counts acknowledged (WAL-durable) rows; drained counts rows
	// written into store partitions. blockStart is the first row of the
	// open block, whose values (from blockStart, including any rows a tail
	// drain already put) sit column-major in pend so a refilled block can
	// be re-put whole.
	rows       int64
	drained    int64
	blockStart int64
	pend       [][]float32

	// snap caches the last sampler snapshot for lock-free approximate
	// queries; refreshed whenever the row count moved.
	snap     *sample.Sample
	snapSeen int64
}

// IngestResult acknowledges one streaming batch.
type IngestResult struct {
	Model        string
	Intermediate string
	// Rows is the total acknowledged row count after this batch; every
	// acknowledged row survives any crash (it is in the WAL or in durable
	// partitions).
	Rows int64
	// FlushedRows is how many rows exact queries can currently see (rows
	// cut into partitions). Approximate queries see all Rows.
	FlushedRows int64
	// WALBytes is the stream's current WAL size.
	WALBytes int64
}

func streamKey(model, interm string) string { return model + "\x00" + interm }

func (s *System) walDir() string { return filepath.Join(s.dir, "data", "wal") }

func walPath(dir, model, interm string) string {
	h := fnv.New64a()
	h.Write([]byte(model))
	h.Write([]byte{0})
	h.Write([]byte(interm))
	return filepath.Join(dir, fmt.Sprintf("strm_%016x.wal", h.Sum64()))
}

// IngestRows appends a batch of rows to a streaming intermediate, creating
// the stream (and its catalog entries) on first use. Every row must have
// len(cols) values, and cols must match the stream's columns on every
// call. When IngestRows returns nil the batch is acknowledged: its WAL
// record is fsynced and the rows survive any crash.
func (s *System) IngestRows(model, interm string, cols []string, rows [][]float32) (*IngestResult, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("mistique: ingest %s.%s: no columns", model, interm)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("mistique: ingest %s.%s: empty batch", model, interm)
	}
	for i, r := range rows {
		if len(r) != len(cols) {
			return nil, fmt.Errorf("mistique: ingest %s.%s: row %d has %d values, want %d", model, interm, i, len(r), len(cols))
		}
	}
	st, err := s.ensureStream(model, interm, cols)
	if err != nil {
		return nil, err
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if !equalCols(st.cols, cols) {
		return nil, fmt.Errorf("mistique: ingest %s.%s: columns %v do not match stream columns %v", model, interm, cols, st.cols)
	}
	rec := encodeStreamBatch(st.rows, len(cols), rows)
	if err := st.log.Append(rec); err != nil {
		return nil, fmt.Errorf("mistique: ingest %s.%s: %w", model, interm, err)
	}
	s.metrics.streamBatches.Inc()
	s.metrics.streamRows.Add(int64(len(rows)))
	s.metrics.walAppendBytes.Add(int64(len(rec)) + 8)
	// Acknowledged: feed the sampler and the open block.
	for _, r := range rows {
		st.sampler.Add(r)
		for j, v := range r {
			st.pend[j] = append(st.pend[j], v)
		}
	}
	st.rows += int64(len(rows))
	if err := st.cutFullBlocksLocked(s); err != nil {
		return nil, err
	}
	return &IngestResult{
		Model:        model,
		Intermediate: interm,
		Rows:         st.rows,
		FlushedRows:  st.drained,
		WALBytes:     st.log.Size(),
	}, nil
}

func equalCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ensureStream returns the live state for (model, interm), creating the
// catalog entries, WAL and sampler on first use.
func (s *System) ensureStream(model, interm string, cols []string) (*streamState, error) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if st, ok := s.streams[streamKey(model, interm)]; ok {
		return st, nil
	}
	if m := s.meta.Model(model); m != nil {
		if m.Kind != metadata.Stream {
			return nil, fmt.Errorf("mistique: model %q is %s, not a stream", model, m.Kind)
		}
	} else {
		if err := s.meta.RegisterModel(&metadata.Model{Name: model, Kind: metadata.Stream}); err != nil {
			return nil, err
		}
	}
	if it, ok := s.meta.IntermSnapshot(model, interm); ok {
		if !equalCols(it.Columns, cols) {
			return nil, fmt.Errorf("mistique: stream %s.%s has columns %v, got %v", model, interm, it.Columns, cols)
		}
	} else {
		err := s.meta.AddIntermediate(model, &metadata.Interm{
			Name:        interm,
			StageIndex:  -1,
			Columns:     append([]string(nil), cols...),
			QuantScheme: string(SchemeFull),
		})
		if err != nil {
			return nil, err
		}
	}
	st, err := s.openStream(model, interm, cols)
	if err != nil {
		return nil, err
	}
	s.streams[streamKey(model, interm)] = st
	return st, nil
}

// openStream opens (or creates) the WAL and sampler for a stream and
// positions the open block after the catalog's durable rows.
func (s *System) openStream(model, interm string, cols []string) (*streamState, error) {
	if err := os.MkdirAll(s.walDir(), 0o755); err != nil {
		return nil, fmt.Errorf("mistique: %w", err)
	}
	path := walPath(s.walDir(), model, interm)
	l, res, err := wal.Open(path, s.cfg.Store.FS)
	if err != nil {
		return nil, fmt.Errorf("mistique: open stream wal: %w", err)
	}
	if res.TornBytes > 0 {
		s.metrics.walTruncatedTails.Inc()
	}
	st := &streamState{
		model:     model,
		interm:    interm,
		cols:      append([]string(nil), cols...),
		log:       l,
		headerRec: encodeStreamHeader(model, interm, cols),
		pend:      make([][]float32, len(cols)),
	}
	if len(res.Records) == 0 {
		if err := l.Append(st.headerRec); err != nil {
			l.Close()
			return nil, fmt.Errorf("mistique: stream wal header: %w", err)
		}
	}
	smp, err := s.samples.Load(model, interm)
	if err != nil {
		l.Close()
		return nil, err
	}
	if smp != nil && equalCols(smp.Cols, cols) {
		st.sampler = sample.Resume(smp)
	} else {
		st.sampler = sample.NewBuilder(cols, s.cfg.Sample)
	}
	// Resume behind the catalog's durable rows: reload the partial tail
	// block (if any) from the store so it can be re-put whole when it
	// fills.
	it, ok := s.meta.IntermSnapshot(model, interm)
	if ok && it.Rows > 0 {
		base := int64(it.Rows)
		blockRows := int64(s.cfg.RowBlockRows)
		st.rows, st.drained = base, base
		st.blockStart = base - base%blockRows
		if st.blockStart < base {
			for j, c := range cols {
				vals, err := s.store.GetColumnRange(model, interm, c, int(st.blockStart), int(base))
				if err != nil {
					if recoverableReadErr(err) {
						// The tail block's chunks are gone (quarantined or
						// lost). Fail soft: restart the open block empty;
						// new rows overwrite the lost tail's row ids.
						st.rows, st.drained = st.blockStart, st.blockStart
						for k := range st.pend {
							st.pend[k] = nil
						}
						break
					}
					l.Close()
					return nil, fmt.Errorf("mistique: reload stream tail %s.%s.%s: %w", model, interm, c, err)
				}
				st.pend[j] = vals
			}
		}
	}
	return st, nil
}

// cutFullBlocksLocked moves every full RowBlock from the open block into
// the column store and advances the catalog. Caller holds st.mu.
func (st *streamState) cutFullBlocksLocked(s *System) error {
	blockRows := int64(s.cfg.RowBlockRows)
	for int64(len(st.pend[0])) >= blockRows {
		if err := st.putOpenBlockLocked(s, int(blockRows)); err != nil {
			return err
		}
		st.blockStart += blockRows
		for j := range st.pend {
			st.pend[j] = append(st.pend[j][:0], st.pend[j][blockRows:]...)
		}
		st.drained = st.blockStart
	}
	return nil
}

// drainTailLocked puts the open block's partial tail (rows not yet in the
// store) so the flush that follows makes every acknowledged row durable in
// partitions. The tail rows stay in pend: the block is still open and will
// be re-put whole when it fills. Caller holds st.mu.
func (st *streamState) drainTailLocked(s *System) error {
	if st.drained >= st.rows {
		return nil
	}
	if err := st.putOpenBlockLocked(s, len(st.pend[0])); err != nil {
		return err
	}
	st.drained = st.rows
	return nil
}

// putOpenBlockLocked writes the first n pending rows of the open block to
// the store (replacing any previous shorter cut of the same block) and
// advances the catalog row count to cover them.
func (st *streamState) putOpenBlockLocked(s *System, n int) error {
	block := int(st.blockStart) / s.cfg.RowBlockRows
	var delta int64
	for j, c := range st.cols {
		key := colstore.ColumnKey{Model: st.model, Intermediate: st.interm, Column: c, Block: block}
		// Replace, not put: an earlier drain may have cut a shorter prefix
		// of this still-open block under the same key, and the swap must be
		// atomic so concurrent readers always resolve the key.
		res, err := s.store.PutColumnReplace(key, st.pend[j][:n], nil)
		if err != nil {
			return fmt.Errorf("mistique: stream store %s: %w", key, err)
		}
		delta += res.EncodedBytes
	}
	return s.meta.AddStreamRows(st.model, st.interm, int(st.blockStart)+n, block+1, delta)
}

// checkpointLocked persists the sampler snapshot and shrinks the WAL back
// to its header record. Called by Flush strictly after the store and the
// catalog are durable; a crash before the rewrite replays the records
// idempotently. Caller holds st.mu.
func (st *streamState) checkpointLocked(s *System) error {
	snap := st.sampler.Snapshot()
	if err := s.samples.Save(st.model, st.interm, snap); err != nil {
		return err
	}
	st.snap, st.snapSeen = snap, st.rows
	if err := st.log.Rewrite([][]byte{st.headerRec}); err != nil {
		return fmt.Errorf("mistique: stream wal checkpoint %s.%s: %w", st.model, st.interm, err)
	}
	s.metrics.walRewrites.Inc()
	return nil
}

// sampleSnapshot returns a point-in-time sample of the stream, covering
// every acknowledged row. Consecutive calls between batches share one
// snapshot.
func (st *streamState) sampleSnapshot() *sample.Sample {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.snap == nil || st.snapSeen != st.rows {
		st.snap = st.sampler.Snapshot()
		st.snapSeen = st.rows
	}
	return st.snap
}

// streamFor returns the live stream state, or nil.
func (s *System) streamFor(model, interm string) *streamState {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	return s.streams[streamKey(model, interm)]
}

// lockAllStreams locks every stream state in deterministic order (so Flush
// cannot deadlock against itself) and returns them.
func (s *System) lockAllStreams() []*streamState {
	s.streamMu.Lock()
	sts := make([]*streamState, 0, len(s.streams))
	for _, st := range s.streams {
		sts = append(sts, st)
	}
	s.streamMu.Unlock()
	sort.Slice(sts, func(i, j int) bool {
		if sts[i].model != sts[j].model {
			return sts[i].model < sts[j].model
		}
		return sts[i].interm < sts[j].interm
	})
	for _, st := range sts {
		st.mu.Lock()
	}
	return sts
}

func unlockStreams(sts []*streamState) {
	for _, st := range sts {
		st.mu.Unlock()
	}
}

// dropStreams removes every stream of a model: the live state, its WAL
// file and its persisted sample.
func (s *System) dropStreams(model string) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	for key, st := range s.streams {
		if st.model != model {
			continue
		}
		st.mu.Lock()
		st.log.Close()
		os.Remove(st.log.Path())
		st.mu.Unlock()
		s.samples.Remove(st.model, st.interm)
		delete(s.streams, key)
	}
}

// replayStreams scans <dir>/data/wal at Open and rebuilds every stream
// state from its log: acknowledged rows not yet durable in partitions are
// re-put (identical full blocks dedup away) and rows beyond the persisted
// sample's horizon are re-offered to the sampler — both keyed purely on
// row id, so replay is idempotent across repeated crashes. A log that is
// not a WAL, or whose records are inconsistent, is quarantined (renamed
// *.corrupt) rather than trusted: the durable partition prefix remains
// queryable.
func (s *System) replayStreams() error {
	dir := s.walDir()
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if err := s.replayOneStream(path); err != nil {
			if errors.Is(err, wal.ErrCorrupt) || errors.Is(err, errStreamReplay) {
				os.Rename(path, path+".corrupt")
				continue
			}
			return err
		}
	}
	return nil
}

// errStreamReplay marks a WAL whose records are internally inconsistent
// (bad header, column mismatch, row-id gap); the file is quarantined.
var errStreamReplay = errors.New("inconsistent stream wal")

func (s *System) replayOneStream(path string) error {
	l, res, err := wal.Open(path, s.cfg.Store.FS)
	if err != nil {
		return err
	}
	if res.TornBytes > 0 {
		s.metrics.walTruncatedTails.Inc()
	}
	if len(res.Records) == 0 {
		// Debris: a log created but crashed before its header record.
		l.Close()
		os.Remove(path)
		return nil
	}
	model, interm, cols, err := decodeStreamHeader(res.Records[0])
	if err != nil {
		l.Close()
		return fmt.Errorf("%w: %s: %v", errStreamReplay, path, err)
	}
	// The catalog may have been quarantined; re-register from the header.
	if m := s.meta.Model(model); m == nil {
		if err := s.meta.RegisterModel(&metadata.Model{Name: model, Kind: metadata.Stream}); err != nil {
			l.Close()
			return err
		}
	}
	if _, ok := s.meta.IntermSnapshot(model, interm); !ok {
		err := s.meta.AddIntermediate(model, &metadata.Interm{
			Name:        interm,
			StageIndex:  -1,
			Columns:     append([]string(nil), cols...),
			QuantScheme: string(SchemeFull),
		})
		if err != nil {
			l.Close()
			return err
		}
	}
	// Reuse the normal open path for sampler + tail reload, then replace
	// its fresh log handle with the one we already decoded.
	l.Close()
	st, err := s.openStream(model, interm, cols)
	if err != nil {
		return err
	}
	samplerSeen := st.sampler.Seen()
	for _, rec := range res.Records[1:] {
		startRow, nRows, nCols, vals, err := decodeStreamBatch(rec)
		if err != nil || nCols != len(cols) {
			st.log.Close()
			return fmt.Errorf("%w: %s", errStreamReplay, path)
		}
		for r := 0; r < nRows; r++ {
			rowID := startRow + int64(r)
			row := vals[r*nCols : (r+1)*nCols]
			if rowID == samplerSeen {
				st.sampler.Add(row)
				samplerSeen++
			}
			switch {
			case rowID < st.rows:
				// Already durable in partitions.
			case rowID == st.rows:
				for j := 0; j < nCols; j++ {
					st.pend[j] = append(st.pend[j], row[j])
				}
				st.rows++
			default:
				st.log.Close()
				return fmt.Errorf("%w: %s: row gap at %d", errStreamReplay, path, rowID)
			}
		}
		if err := st.cutFullBlocksLocked(s); err != nil {
			st.log.Close()
			return err
		}
		s.metrics.walReplayedRecords.Inc()
	}
	s.metrics.walReplays.Inc()
	s.streams[streamKey(model, interm)] = st
	return nil
}

// streamWALStats sums append/fsync counts and file sizes across live
// streams for the metrics fold.
func (s *System) streamWALStats() (appends, syncs, bytes int64, n int) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	for _, st := range s.streams {
		a, y := st.log.Stats()
		appends += a
		syncs += y
		bytes += st.log.Size()
		n++
	}
	return appends, syncs, bytes, n
}
