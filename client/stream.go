package client

// Streaming-ingest and approximate-query client methods. These pair with
// the server's /api/v1/ingest and /api/v1/approx endpoints: live rows go
// in through IngestRows (durably acknowledged batch by batch), and
// diagnosis queries come back at interactive latency through the sampled
// variants, each carrying its error bound and the strategy that answered.

import (
	"context"
	"fmt"
	"net/url"
)

// IngestRows appends one batch of rows to a streaming intermediate,
// creating the stream on first use. A nil error means the batch is
// durable on the server (fsynced WAL): it survives any server crash.
// Batches of the same stream must use the same column set.
func (c *Client) IngestRows(ctx context.Context, model, interm string, cols []string, rows [][]float32) (*IngestResponse, error) {
	if model == "" || interm == "" {
		return nil, fmt.Errorf("client: ingest needs model and intermediate")
	}
	req := IngestRequest{Columns: cols, Rows: make([][]F32, len(rows))}
	for i, r := range rows {
		req.Rows[i] = wireRowF32(r)
	}
	var resp IngestResponse
	path := "/api/v1/ingest/" + url.PathEscape(model) + "/" + url.PathEscape(interm)
	if err := c.do(ctx, "POST", path, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ColDist estimates a column's distribution. maxError is the acceptable
// mean error as a fraction of the value range; 0 takes whatever bound the
// sample delivers, and a tighter request than the sample can honor is
// answered exactly (Strategy reports which happened).
func (c *Client) ColDist(ctx context.Context, model, interm, column string, maxError float64) (*ColDistResponse, error) {
	var resp ColDistResponse
	err := c.do(ctx, "POST", "/api/v1/approx/coldist", ColDistRequest{
		Model: model, Intermediate: interm, Column: column, MaxError: maxError,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// ApproxTopK ranks a column's top k rows from the reservoir sample when
// the rank bound satisfies maxError, exactly otherwise.
func (c *Client) ApproxTopK(ctx context.Context, model, interm, column string, k int, maxError float64) (*ApproxTopKResponse, error) {
	var resp ApproxTopKResponse
	err := c.do(ctx, "POST", "/api/v1/approx/topk", ApproxTopKRequest{
		Model: model, Intermediate: interm, Column: column, K: k, MaxError: maxError,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Confusion builds a label-vs-prediction confusion matrix, sampled (with
// per-cell count bounds) when maxError admits it, exact otherwise.
func (c *Client) Confusion(ctx context.Context, model, interm, labelCol, predCol string, maxError float64) (*ConfusionResponse, error) {
	var resp ConfusionResponse
	err := c.do(ctx, "POST", "/api/v1/approx/confusion", ConfusionRequest{
		Model: model, Intermediate: interm, LabelCol: labelCol, PredCol: predCol, MaxError: maxError,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// SampleRows reads up to maxRows uniformly sampled rows with their real
// row ids (maxRows <= 0 returns the whole reservoir).
func (c *Client) SampleRows(ctx context.Context, model, interm string, cols []string, maxRows int) (*SampleRowsResponse, error) {
	var resp SampleRowsResponse
	err := c.do(ctx, "POST", "/api/v1/approx/rows", SampleRowsRequest{
		Model: model, Intermediate: interm, Cols: cols, MaxRows: maxRows,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

func wireRowF32(src []float32) []F32 {
	dst := make([]F32, len(src))
	for i, v := range src {
		dst[i] = F32(v)
	}
	return dst
}
