package client

import (
	"encoding/json"
	"math"
	"testing"
)

// TestF32RoundTrip covers the JSON forms of the wire float: finite
// values, NaN (null) and both infinities (strings).
func TestF32RoundTrip(t *testing.T) {
	cases := []struct {
		in   float64
		wire string
	}{
		{0, "0"},
		{1.5, "1.5"},
		{-3.25, "-3.25"},
		{math.NaN(), "null"},
		{math.Inf(1), `"+Inf"`},
		{math.Inf(-1), `"-Inf"`},
	}
	for _, tc := range cases {
		b, err := json.Marshal(F32(tc.in))
		if err != nil {
			t.Fatalf("marshal %v: %v", tc.in, err)
		}
		if string(b) != tc.wire {
			t.Errorf("F32(%v) encoded as %s, want %s", tc.in, b, tc.wire)
		}
		var back F32
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		got := float64(back)
		if math.IsNaN(tc.in) {
			if !math.IsNaN(got) {
				t.Errorf("NaN round-tripped to %v", got)
			}
		} else if got != tc.in {
			t.Errorf("%v round-tripped to %v", tc.in, got)
		}
	}

	// A whole row with mixed values survives, and garbage is rejected.
	row := []F32{1, F32(math.NaN()), F32(math.Inf(1))}
	b, err := json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `[1,null,"+Inf"]` {
		t.Fatalf("row encoded as %s", b)
	}
	var backRow []F32
	if err := json.Unmarshal(b, &backRow); err != nil {
		t.Fatal(err)
	}
	if len(backRow) != 3 || backRow[0] != 1 || !math.IsNaN(float64(backRow[1])) || !math.IsInf(float64(backRow[2]), 1) {
		t.Fatalf("row round-tripped to %v", backRow)
	}
	var bad F32
	if err := json.Unmarshal([]byte(`"wat"`), &bad); err == nil {
		t.Fatal("garbage string decoded into F32")
	}
}

func TestNewValidatesBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "127.0.0.1:7420", "/just/a/path"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted a base URL without scheme+host", bad)
		}
	}
	if _, err := New("http://127.0.0.1:7420/"); err != nil {
		t.Errorf("New rejected a good base URL: %v", err)
	}
}
