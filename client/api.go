// Package client is the typed Go client for the MISTIQUE query service
// (internal/server): a JSON-over-HTTP surface for the diagnostic query
// classes of Sec. 5 — intermediate fetches under the read-vs-rerun cost
// model, cost estimates, zone-map predicate scans and row-range reads —
// plus catalog listing, stats and compaction.
//
// This file defines the wire types. The server imports them too, so the
// two sides can never drift: what the server encodes is exactly what the
// client decodes. The package depends only on the standard library.
package client

import (
	"encoding/json"
	"fmt"
	"math"
)

// F32 is a float32 that survives JSON: encoding/json rejects non-finite
// values outright, but intermediates upstream of a fillna stage carry
// NaNs by design. NaN encodes as null and ±Inf as the strings "+Inf" /
// "-Inf"; both decode back to the originals.
type F32 float32

// MarshalJSON implements json.Marshaler.
func (f F32) MarshalJSON() ([]byte, error) {
	v := float64(float32(f))
	switch {
	case math.IsNaN(v):
		return []byte("null"), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *F32) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case "null":
		*f = F32(math.NaN())
		return nil
	case `"+Inf"`, `"Inf"`:
		*f = F32(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = F32(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return fmt.Errorf("F32: want a number, null or \"±Inf\": %w", err)
	}
	*f = F32(v)
	return nil
}

// Floats converts a decoded wire slice back to raw float32s.
func Floats(vs []F32) []float32 {
	out := make([]float32, len(vs))
	for i, v := range vs {
		out[i] = float32(v)
	}
	return out
}

// ErrorBody is the payload of every non-2xx response.
type ErrorBody struct {
	// Status echoes the HTTP status code.
	Status int `json:"status"`
	// Message is a human-readable description of the failure.
	Message string `json:"message"`
}

// ErrorEnvelope is the JSON error envelope: every error response, from a
// 400 on a malformed body to a 429 under backpressure to a 500 from a
// recovered panic, has exactly this shape.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// StageInfo describes one pipeline stage or network layer.
type StageInfo struct {
	Name        string  `json:"name"`
	Index       int     `json:"index"`
	ExecSeconds float64 `json:"exec_seconds"`
}

// IntermInfo is the catalog entry for one intermediate.
type IntermInfo struct {
	Name         string   `json:"name"`
	StageIndex   int      `json:"stage_index"`
	Columns      []string `json:"columns"`
	Rows         int      `json:"rows"`
	Materialized bool     `json:"materialized"`
	QuantScheme  string   `json:"quant_scheme"`
	StoredBytes  int64    `json:"stored_bytes"`
	QueryCount   int64    `json:"query_count"`
}

// ModelInfo is the catalog entry for one logged model.
type ModelInfo struct {
	Name          string       `json:"name"`
	Kind          string       `json:"kind"`
	TotalExamples int          `json:"total_examples"`
	ModelLoadSecs float64      `json:"model_load_secs"`
	Stages        []StageInfo  `json:"stages,omitempty"`
	Intermediates []IntermInfo `json:"intermediates,omitempty"`
}

// ModelsResponse lists the logged models (GET /api/v1/models).
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// LineageEntry is one model version in a training-run lineage chain
// (GET /api/v1/models/{model}/lineage), newest first.
type LineageEntry struct {
	Model string `json:"model"`
	// Parent is the version this one was logged as a delta against; ""
	// marks the root of the chain.
	Parent        string `json:"parent,omitempty"`
	Kind          string `json:"kind"`
	Intermediates int    `json:"intermediates"`
	StoredBytes   int64  `json:"stored_bytes"`
	// MaxDeltaDepth is the deepest delta chain any of this version's
	// columns sits on; cold reads page in depth+1 generations.
	MaxDeltaDepth int `json:"max_delta_depth"`
	// WeightBytes is the logical size of this version's weight snapshot
	// (0 when none); WeightNewBytes is how much of it was new to the
	// content-addressed chunk table; WeightDepth its delta-chain depth.
	WeightBytes    int64 `json:"weight_bytes,omitempty"`
	WeightNewBytes int64 `json:"weight_new_bytes,omitempty"`
	WeightDepth    int   `json:"weight_depth,omitempty"`
}

// LineageResponse is the version chain of one model, newest first: the
// queried version, its parent, the parent's parent, up to the root (or
// the first version no longer in the catalog).
type LineageResponse struct {
	Model    string         `json:"model"`
	Versions []LineageEntry `json:"versions"`
}

// QueryRequest asks for an intermediate (POST /api/v1/query). An empty
// Cols fetches every column; NEx <= 0 fetches all rows. Strategy "" lets
// the cost model choose; "READ" or "RERUN" forces one side (the server
// calls Fetch, counters still update).
type QueryRequest struct {
	Model        string   `json:"model"`
	Intermediate string   `json:"intermediate"`
	Cols         []string `json:"cols,omitempty"`
	NEx          int      `json:"n_ex,omitempty"`
	Strategy     string   `json:"strategy,omitempty"`
}

// QueryResponse carries the answer matrix plus everything mistique.Result
// exposes about how it was produced.
type QueryResponse struct {
	Model           string   `json:"model"`
	Intermediate    string   `json:"intermediate"`
	Cols            []string `json:"cols"`
	Rows            int      `json:"rows"`
	Data            [][]F32  `json:"data"`
	Strategy        string   `json:"strategy"`
	EstReadSecs     float64     `json:"est_read_secs"`
	EstRerunSecs    float64     `json:"est_rerun_secs"`
	FetchSeconds    float64     `json:"fetch_seconds"`
	Recovered       bool        `json:"recovered,omitempty"`
	MaterializedNow bool        `json:"materialized_now,omitempty"`
}

// ColumnResponse is one column of an intermediate
// (GET /api/v1/models/{model}/intermediates/{interm}/columns/{col}).
type ColumnResponse struct {
	Model        string `json:"model"`
	Intermediate string `json:"intermediate"`
	Column       string `json:"column"`
	Values       []F32  `json:"values"`
}

// EstimateResponse is the cost model's read-vs-rerun prediction for a
// query, without executing it (GET /api/v1/estimate). Chosen is the
// strategy the engine would pick: the paper's tie-break reads when
// t_rerun >= t_read, and an unmaterialized intermediate forces RERUN.
type EstimateResponse struct {
	Model        string  `json:"model"`
	Intermediate string  `json:"intermediate"`
	NEx          int     `json:"n_ex"`
	EstReadSecs  float64 `json:"est_read_secs"`
	EstRerunSecs float64 `json:"est_rerun_secs"`
	Chosen       string  `json:"chosen"`
}

// FilterRequest is a zone-map predicate scan (POST /api/v1/filter):
// matching row offsets of `column op bound`. Op is one of "gt", "ge",
// "lt", "le". From/To restrict the scan to global rows [From, To) — the
// shard-local sub-queries of the cluster router use this; both zero (the
// old wire shape) scans the whole intermediate.
type FilterRequest struct {
	Model        string  `json:"model"`
	Intermediate string  `json:"intermediate"`
	Column       string  `json:"column"`
	Op           string  `json:"op"`
	Bound        float64 `json:"bound"`
	From         int     `json:"from,omitempty"`
	To           int     `json:"to,omitempty"`
}

// FilterResponse lists the matching global row offsets in order.
type FilterResponse struct {
	Rows  []int `json:"rows"`
	Count int   `json:"count"`
}

// TopKRequest asks for the K rows with the highest values in one column
// of a materialized intermediate (POST /api/v1/topk) — "which inputs
// activate this neuron the most".
type TopKRequest struct {
	Model        string `json:"model"`
	Intermediate string `json:"intermediate"`
	Column       string `json:"column"`
	K            int    `json:"k"`
	// From/To restrict the ranking to global rows [From, To) — the
	// shard-local probes of the cluster router. Both zero ranks every row.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
}

// TopKEntry is one ranked row of a TOPK answer.
type TopKEntry struct {
	Row   int `json:"row"`
	Value F32 `json:"value"`
}

// TopKResponse lists the top-k rows in rank order: value descending, NaN
// last, ascending row id on ties.
type TopKResponse struct {
	Model        string      `json:"model"`
	Intermediate string      `json:"intermediate"`
	Column       string      `json:"column"`
	Entries      []TopKEntry `json:"entries"`
}

// RowsRequest reads rows [From, To) of the given columns from a
// materialized intermediate (POST /api/v1/rows). Empty Cols means all.
type RowsRequest struct {
	Model        string   `json:"model"`
	Intermediate string   `json:"intermediate"`
	Cols         []string `json:"cols,omitempty"`
	From         int      `json:"from"`
	To           int      `json:"to"`
}

// RowsResponse is the row-range answer matrix. To reflects clamping to
// the intermediate's row count.
type RowsResponse struct {
	Model        string   `json:"model"`
	Intermediate string   `json:"intermediate"`
	Cols         []string `json:"cols"`
	From         int      `json:"from"`
	To           int      `json:"to"`
	Data         [][]F32  `json:"data"`
}

// HistogramInfo mirrors the JSON surface of an obs histogram snapshot.
type HistogramInfo struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// StatsResponse is the full metrics snapshot (GET /api/v1/stats and
// /statsz): every counter, gauge and histogram in the system's registry,
// including the HTTP service's own series.
type StatsResponse struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]int64         `json:"gauges"`
	Histograms map[string]HistogramInfo `json:"histograms"`
}

// CompactResponse reports a compaction (POST /api/v1/compact).
type CompactResponse struct {
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
}

// HealthResponse is the liveness probe (GET /healthz): "is the process
// up". Readiness ("should this node take traffic") is /readyz.
type HealthResponse struct {
	Status string `json:"status"`
	Models int    `json:"models"`
}

// ReadyResponse is the readiness probe (GET /readyz). The server answers
// 200 with Status "ok" when the node should take traffic and 503 with
// Status "degraded" — same JSON shape — when it should be shed: load
// balancers key off the status code alone, while the cluster health
// checker reads the body to distinguish "shed me" (suspect) from "dead"
// (down).
type ReadyResponse struct {
	Status string `json:"status"` // "ok" or "degraded"
	// Shard is the node's configured shard name (serve -shard), if any.
	Shard  string `json:"shard,omitempty"`
	Models int    `json:"models"`
	// QuarantinedPartitions counts partition files the last recovery
	// sweep moved aside; ManifestQuarantined reports a corrupt manifest
	// (the store restarted from empty logical state).
	QuarantinedPartitions int  `json:"quarantined_partitions"`
	ManifestQuarantined   bool `json:"manifest_quarantined,omitempty"`
	// InFlight/MaxInFlight expose the admission semaphore; Saturated is
	// true when every slot is taken and new queries are being shed.
	InFlight    int  `json:"in_flight"`
	MaxInFlight int  `json:"max_in_flight"`
	Saturated   bool `json:"saturated,omitempty"`
	// Reasons lists, in prose, why Status is "degraded".
	Reasons []string `json:"reasons,omitempty"`
}

// IngestRequest carries one streaming-ingest batch
// (POST /api/v1/ingest/{model}/{interm}). Every row must have
// len(Columns) values, and Columns must match the stream's columns on
// every batch.
type IngestRequest struct {
	Columns []string `json:"columns"`
	Rows    [][]F32  `json:"rows"`
}

// IngestResponse acknowledges a batch: when it arrives, the rows are
// durable (fsynced WAL or flushed partitions) and survive any crash.
type IngestResponse struct {
	Model        string `json:"model"`
	Intermediate string `json:"intermediate"`
	Rows         int64  `json:"rows"`
	FlushedRows  int64  `json:"flushed_rows"`
	WALBytes     int64  `json:"wal_bytes"`
}

// ColDistRequest asks for a column's distribution
// (POST /api/v1/approx/coldist). MaxError is the acceptable mean error as
// a fraction of the column's value range; 0 accepts whatever bound the
// sample delivers, and a bound tighter than deliverable falls back to the
// exact read path server-side.
type ColDistRequest struct {
	Model        string  `json:"model"`
	Intermediate string  `json:"intermediate"`
	Column       string  `json:"column"`
	MaxError     float64 `json:"max_error,omitempty"`
}

// ColDistResponse mirrors mistique.ColDist: exact counts and extrema,
// estimated moments with their error bounds, and the strategy that
// answered (SAMPLE or an exact READ/RERUN fallback).
type ColDistResponse struct {
	Model        string `json:"model"`
	Intermediate string `json:"intermediate"`
	Column       string `json:"column"`

	Rows   int64 `json:"rows"`
	Finite int64 `json:"finite"`
	NaN    int64 `json:"nan"`
	PosInf int64 `json:"pos_inf"`
	NegInf int64 `json:"neg_inf"`

	Min F32 `json:"min"`
	Max F32 `json:"max"`

	Mean         float64 `json:"mean"`
	MeanBound    float64 `json:"mean_bound"`
	Std          float64 `json:"std"`
	P50          F32     `json:"p50"`
	P50RankBound float64 `json:"p50_rank_bound"`

	SampleRows   int64   `json:"sample_rows"`
	Strategy     string  `json:"strategy"`
	FetchSeconds float64 `json:"fetch_seconds"`
}

// ApproxTopKRequest ranks a column's top K rows
// (POST /api/v1/approx/topk). MaxError bounds the acceptable rank error
// as a fraction of the row count; tighter than deliverable runs the exact
// index-backed ranking instead.
type ApproxTopKRequest struct {
	Model        string  `json:"model"`
	Intermediate string  `json:"intermediate"`
	Column       string  `json:"column"`
	K            int     `json:"k"`
	MaxError     float64 `json:"max_error,omitempty"`
}

// ApproxTopKEntry is one ranked row with its real population row id.
type ApproxTopKEntry struct {
	Row   int64 `json:"row"`
	Value F32   `json:"value"`
}

// ApproxTopKResponse lists the ranked rows plus the rank-fraction bound
// (0 when the answer is exact).
type ApproxTopKResponse struct {
	Model        string            `json:"model"`
	Intermediate string            `json:"intermediate"`
	Column       string            `json:"column"`
	Entries      []ApproxTopKEntry `json:"entries"`
	RankBound    float64           `json:"rank_bound"`
	Rows         int64             `json:"rows"`
	SampleRows   int64             `json:"sample_rows"`
	Strategy     string            `json:"strategy"`
	FetchSeconds float64           `json:"fetch_seconds"`
}

// ConfusionRequest asks for a label-vs-prediction confusion matrix
// (POST /api/v1/approx/confusion). MaxError bounds each cell's count
// error as a fraction of the row count.
type ConfusionRequest struct {
	Model        string  `json:"model"`
	Intermediate string  `json:"intermediate"`
	LabelCol     string  `json:"label_col"`
	PredCol      string  `json:"pred_col"`
	MaxError     float64 `json:"max_error,omitempty"`
}

// ConfusionCell is one (label, predicted) cell with its estimated row
// count and count bound (both exact when Strategy is not SAMPLE).
type ConfusionCell struct {
	Label F32     `json:"label"`
	Pred  F32     `json:"pred"`
	Count float64 `json:"count"`
	Bound float64 `json:"bound"`
}

// ConfusionResponse is the (sparse) confusion matrix, populated cells
// only, labels ascending then predictions ascending.
type ConfusionResponse struct {
	Model        string          `json:"model"`
	Intermediate string          `json:"intermediate"`
	LabelCol     string          `json:"label_col"`
	PredCol      string          `json:"pred_col"`
	Cells        []ConfusionCell `json:"cells"`
	Rows         int64           `json:"rows"`
	Stratified   bool            `json:"stratified"`
	MaxBound     float64         `json:"max_bound"`
	SampleRows   int64           `json:"sample_rows"`
	Strategy     string          `json:"strategy"`
	FetchSeconds float64         `json:"fetch_seconds"`
}

// SampleRowsRequest reads up to MaxRows uniformly sampled rows
// (POST /api/v1/approx/rows). MaxRows <= 0 returns the whole reservoir.
type SampleRowsRequest struct {
	Model        string   `json:"model"`
	Intermediate string   `json:"intermediate"`
	Cols         []string `json:"cols,omitempty"`
	MaxRows      int      `json:"max_rows,omitempty"`
}

// SampleRowsResponse carries the sampled rows with their real population
// row ids, ascending.
type SampleRowsResponse struct {
	Model        string   `json:"model"`
	Intermediate string   `json:"intermediate"`
	Cols         []string `json:"cols"`
	RowIDs       []int64  `json:"row_ids"`
	Data         [][]F32  `json:"data"`
	Rows         int64    `json:"rows"`
	Strategy     string   `json:"strategy"`
	FetchSeconds float64  `json:"fetch_seconds"`
}
