package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// APIError is a non-2xx response decoded from the server's error
// envelope. It is returned for failures the client does not (or can no
// longer) retry.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's description of the failure.
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("mistique server: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// IsNotFound reports whether err is a 404 from the server (unknown model,
// intermediate or column).
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusNotFound
}

// IsOverCapacity reports whether err is a 429 — the server's admission
// semaphore was full and every retry was exhausted.
func IsOverCapacity(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests
}

// Client is a typed HTTP client for the MISTIQUE query service. A Client
// is safe for concurrent use.
//
// Transient failures are retried: connection errors and 5xx responses up
// to MaxRetries times with full-jitter backoff (the sleep is drawn
// uniformly from [0, cap] and the cap doubles per attempt), and 429
// over-capacity rejections by honoring the server's Retry-After hint
// until the request deadline expires — backpressure is transparent to
// callers, who either get an answer or a deadline error. 4xx responses
// other than 429 are never retried.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int
	backoff    time.Duration
	timeout    time.Duration
	tenant     string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries bounds retries of connection errors and 5xx responses
// (default 3; 0 disables retries).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the initial retry backoff cap, doubled per attempt;
// each sleep is drawn uniformly from [0, cap] (default cap 50ms).
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithTimeout sets the per-request deadline applied to every attempt's
// context (default 30s; 0 leaves only the caller's context bound).
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// WithTenant names the tenant sent as X-Mistique-Tenant on every request.
// The server's streaming-ingest admission quotas (in-flight and rows/sec)
// are accounted per tenant; empty shares the "default" bucket.
func WithTenant(name string) Option { return func(c *Client) { c.tenant = name } }

// New returns a Client for the service at baseURL (e.g.
// "http://127.0.0.1:7420").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs scheme and host", baseURL)
	}
	c := &Client{
		base:       strings.TrimRight(u.String(), "/"),
		hc:         &http.Client{},
		maxRetries: 3,
		backoff:    50 * time.Millisecond,
		timeout:    30 * time.Second,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// do issues one logical request with the retry policy. in == nil sends no
// body; out == nil discards the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	// The per-request deadline bounds the whole logical call — every
	// attempt, backoff and 429 wait — so a saturated or flapping server
	// turns into a deadline error, never an unbounded stall.
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}

	retriesLeft := c.maxRetries
	wait := c.backoff
	for {
		err := c.attempt(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		var delay time.Duration
		switch {
		case retryAfter(err) > 0:
			// Over capacity: not a failure budget matter — wait out the
			// server's hint and try again until the deadline says stop.
			delay = retryAfter(err)
		case retriable(err) && retriesLeft > 0:
			retriesLeft--
			delay = jitterDelay(wait)
			wait *= 2
		default:
			return err
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("client: %s %s: %w (last error: %v)", method, path, ctx.Err(), err)
		case <-t.C:
		}
	}
}

// jitterDelay draws one retry's sleep uniformly from [0, cap] — "full
// jitter". A deterministic backoff re-synchronizes every caller that
// failed together, so a saturated server takes the whole retry wave back
// at once; spreading each sleep over the full window decorrelates them.
// The cap still doubles per attempt and the per-request deadline still
// bounds the total wait, so worst-case semantics are unchanged.
func jitterDelay(cap time.Duration) time.Duration {
	if cap <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(cap) + 1))
}

// attempt issues one HTTP round trip.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set("X-Mistique-Tenant", c.tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return &connError{err: err}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// connError wraps a transport-level failure so the retry policy can
// distinguish it from a decoded server error.
type connError struct{ err error }

func (e *connError) Error() string { return "client: connection error: " + e.err.Error() }
func (e *connError) Unwrap() error { return e.err }

// overCapacityError is a 429 carrying the server's Retry-After hint.
type overCapacityError struct {
	APIError
	after time.Duration
}

func decodeError(resp *http.Response) error {
	ae := &APIError{Status: resp.StatusCode}
	var env ErrorEnvelope
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&env); err == nil && env.Error.Message != "" {
		ae.Message = env.Error.Message
	} else {
		ae.Message = "(no error envelope)"
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		after := time.Second
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v >= 0 {
			after = time.Duration(v) * time.Second
			if after == 0 {
				after = 100 * time.Millisecond
			}
		}
		return &overCapacityError{APIError: *ae, after: after}
	}
	return ae
}

func (e *overCapacityError) Error() string { return e.APIError.Error() }

// As exposes the embedded APIError to errors.As so IsOverCapacity works
// on deadline-wrapped failures too.
func (e *overCapacityError) As(target any) bool {
	if p, ok := target.(**APIError); ok {
		*p = &e.APIError
		return true
	}
	return false
}

// retriable reports whether one attempt's failure is transient.
func retriable(err error) bool {
	var ce *connError
	if errors.As(err, &ce) {
		return true
	}
	var ae *APIError
	return errors.As(err, &ae) && ae.Status >= 500
}

// retryAfter returns the wait hint of a 429, or 0.
func retryAfter(err error) time.Duration {
	var oe *overCapacityError
	if errors.As(err, &oe) {
		return oe.after
	}
	return 0
}

// Models lists every logged model with its full catalog entry.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	var out ModelsResponse
	if err := c.do(ctx, http.MethodGet, "/api/v1/models", nil, &out); err != nil {
		return nil, err
	}
	return out.Models, nil
}

// Model fetches one model's catalog entry, intermediates included.
func (c *Client) Model(ctx context.Context, name string) (*ModelInfo, error) {
	var out ModelInfo
	if err := c.do(ctx, http.MethodGet, "/api/v1/models/"+url.PathEscape(name), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Intermediate fetches one intermediate's catalog entry.
func (c *Client) Intermediate(ctx context.Context, model, interm string) (*IntermInfo, error) {
	var out IntermInfo
	path := "/api/v1/models/" + url.PathEscape(model) + "/intermediates/" + url.PathEscape(interm)
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Lineage fetches the version chain of a model, newest first: the model
// itself, the parent version it was logged as a delta against, and so on
// to the root of the training run.
func (c *Client) Lineage(ctx context.Context, model string) (*LineageResponse, error) {
	var out LineageResponse
	path := "/api/v1/models/" + url.PathEscape(model) + "/lineage"
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetIntermediate fetches cols x nEx of an intermediate, letting the
// server's cost model choose read vs. rerun. nil cols fetches every
// column; nEx <= 0 every row.
func (c *Client) GetIntermediate(ctx context.Context, model, interm string, cols []string, nEx int) (*QueryResponse, error) {
	return c.query(ctx, QueryRequest{Model: model, Intermediate: interm, Cols: cols, NEx: nEx})
}

// Fetch is GetIntermediate with a forced strategy ("READ" or "RERUN").
func (c *Client) Fetch(ctx context.Context, model, interm string, cols []string, nEx int, strategy string) (*QueryResponse, error) {
	return c.query(ctx, QueryRequest{Model: model, Intermediate: interm, Cols: cols, NEx: nEx, Strategy: strategy})
}

func (c *Client) query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.do(ctx, http.MethodPost, "/api/v1/query", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetColumn fetches the first nEx values of one column.
func (c *Client) GetColumn(ctx context.Context, model, interm, column string, nEx int) ([]float32, error) {
	var out ColumnResponse
	path := "/api/v1/models/" + url.PathEscape(model) + "/intermediates/" + url.PathEscape(interm) +
		"/columns/" + url.PathEscape(column) + "?n=" + strconv.Itoa(nEx)
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return Floats(out.Values), nil
}

// Estimate returns the cost model's read/rerun predictions and the
// strategy the engine would choose, without executing anything.
func (c *Client) Estimate(ctx context.Context, model, interm string, nEx int) (*EstimateResponse, error) {
	var out EstimateResponse
	path := "/api/v1/estimate?model=" + url.QueryEscape(model) + "&interm=" + url.QueryEscape(interm) + "&n=" + strconv.Itoa(nEx)
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FilterRows returns row offsets where `column op bound` holds; op is one
// of "gt", "ge", "lt", "le".
func (c *Client) FilterRows(ctx context.Context, model, interm, column, op string, bound float64) ([]int, error) {
	var out FilterResponse
	req := FilterRequest{Model: model, Intermediate: interm, Column: column, Op: op, Bound: bound}
	if err := c.do(ctx, http.MethodPost, "/api/v1/filter", req, &out); err != nil {
		return nil, err
	}
	return out.Rows, nil
}

// FilterRowsRange is FilterRows restricted to global rows [from, to);
// from <= 0 means row 0 and to <= 0 means the intermediate's row count.
// Returned offsets stay global, so per-block answers concatenate.
func (c *Client) FilterRowsRange(ctx context.Context, model, interm, column, op string, bound float64, from, to int) ([]int, error) {
	var out FilterResponse
	req := FilterRequest{Model: model, Intermediate: interm, Column: column, Op: op, Bound: bound, From: from, To: to}
	if err := c.do(ctx, http.MethodPost, "/api/v1/filter", req, &out); err != nil {
		return nil, err
	}
	return out.Rows, nil
}

// TopK returns the k rows with the highest values in one column, in rank
// order (value descending, NaN last, ascending row id on ties).
func (c *Client) TopK(ctx context.Context, model, interm, column string, k int) ([]TopKEntry, error) {
	return c.TopKRange(ctx, model, interm, column, k, 0, 0)
}

// TopKRange is TopK restricted to global rows [from, to) — the
// shard-local probe behind scatter-gather TOPK. Row ids stay global and
// the ranking order is the engine's pinned comparator, so merged
// per-block candidate lists reproduce the single-node answer exactly.
func (c *Client) TopKRange(ctx context.Context, model, interm, column string, k, from, to int) ([]TopKEntry, error) {
	var out TopKResponse
	req := TopKRequest{Model: model, Intermediate: interm, Column: column, K: k, From: from, To: to}
	if err := c.do(ctx, http.MethodPost, "/api/v1/topk", req, &out); err != nil {
		return nil, err
	}
	return out.Entries, nil
}

// GetRows reads rows [from, to) of the given columns.
func (c *Client) GetRows(ctx context.Context, model, interm string, cols []string, from, to int) (*RowsResponse, error) {
	var out RowsResponse
	req := RowsRequest{Model: model, Intermediate: interm, Cols: cols, From: from, To: to}
	if err := c.do(ctx, http.MethodPost, "/api/v1/rows", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats returns the server's full metrics snapshot.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/api/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Compact asks the store to reclaim garbage chunks, returning the
// reclaimed encoded bytes.
func (c *Client) Compact(ctx context.Context) (int64, error) {
	var out CompactResponse
	if err := c.do(ctx, http.MethodPost, "/api/v1/compact", nil, &out); err != nil {
		return 0, err
	}
	return out.ReclaimedBytes, nil
}

// Health probes liveness ("is the process up"). Readiness — "should this
// node take traffic" — is Ready.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready probes readiness. Unlike every other call, a 503 here is data,
// not a failure: the server answers 503 with the same JSON body when it
// is alive but degraded (quarantined partitions, admission saturation),
// and Ready returns that decoded body with ready == false so a health
// checker can distinguish "shed me traffic" from "dead". The probe is a
// single attempt with no retries — the checker supplies its own cadence,
// and retrying inside a probe would mask exactly the flakiness it exists
// to detect.
func (c *Client) Ready(ctx context.Context) (resp *ReadyResponse, ready bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return nil, false, fmt.Errorf("client: %w", err)
	}
	hr, err := c.hc.Do(req)
	if err != nil {
		return nil, false, &connError{err: err}
	}
	defer func() {
		io.Copy(io.Discard, hr.Body)
		hr.Body.Close()
	}()
	switch hr.StatusCode {
	case http.StatusOK, http.StatusServiceUnavailable:
		var out ReadyResponse
		if derr := json.NewDecoder(io.LimitReader(hr.Body, 1<<20)).Decode(&out); derr != nil {
			return nil, false, fmt.Errorf("client: decode /readyz response: %w", derr)
		}
		return &out, hr.StatusCode == http.StatusOK, nil
	default:
		return nil, false, decodeError(hr)
	}
}
