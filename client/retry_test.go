package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestJitterDelayBounds: every draw lands in [0, cap] and a non-positive
// cap short-circuits to zero — the deadline math in do() depends on the
// sleep never exceeding the cap.
func TestJitterDelayBounds(t *testing.T) {
	if d := jitterDelay(0); d != 0 {
		t.Fatalf("jitterDelay(0) = %v", d)
	}
	if d := jitterDelay(-time.Second); d != 0 {
		t.Fatalf("jitterDelay(-1s) = %v", d)
	}
	for _, cap := range []time.Duration{1, time.Millisecond, 50 * time.Millisecond, time.Hour} {
		for i := 0; i < 1000; i++ {
			if d := jitterDelay(cap); d < 0 || d > cap {
				t.Fatalf("jitterDelay(%v) = %v, out of [0, cap]", cap, d)
			}
		}
	}
}

// TestJitterDelaySpread: full jitter exists to decorrelate retry waves,
// so draws must actually spread over the window rather than cluster on
// one value.
func TestJitterDelaySpread(t *testing.T) {
	const draws = 200
	cap := 50 * time.Millisecond
	seen := make(map[time.Duration]struct{}, draws)
	var low, high int
	for i := 0; i < draws; i++ {
		d := jitterDelay(cap)
		seen[d] = struct{}{}
		if d < cap/2 {
			low++
		} else {
			high++
		}
	}
	if len(seen) < draws/2 {
		t.Fatalf("only %d distinct delays in %d draws: not jittering", len(seen), draws)
	}
	// Both halves of the window get traffic (p(miss) ~ 2^-200).
	if low == 0 || high == 0 {
		t.Fatalf("draws collapsed to one half: low=%d high=%d", low, high)
	}
}

// TestRetriesStayWithinDeadline: the backoff cap doubling never escapes
// the per-request deadline — a dead server turns into a deadline error in
// bounded time, jitter or not.
func TestRetriesStayWithinDeadline(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(503)
	}))
	defer down.Close()
	c, err := New(down.URL, WithMaxRetries(100), WithBackoff(40*time.Millisecond), WithTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Models(context.Background())
	if err == nil {
		t.Fatal("dead server produced no error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop escaped the deadline: %v", elapsed)
	}
}

// TestReady covers the one endpoint where a 503 is data, not an error.
func TestReady(t *testing.T) {
	var status int
	var body string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("ready probe hit %s", r.URL.Path)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write([]byte(body))
	}))
	defer srv.Close()
	c, err := New(srv.URL, WithMaxRetries(3))
	if err != nil {
		t.Fatal(err)
	}

	status, body = 200, `{"status":"ok","shard":"s0","models":2}`
	resp, ready, err := c.Ready(context.Background())
	if err != nil || !ready {
		t.Fatalf("ok probe: ready=%v err=%v", ready, err)
	}
	if resp.Status != "ok" || resp.Shard != "s0" || resp.Models != 2 {
		t.Fatalf("resp = %+v", resp)
	}

	// 503 decodes the same body and reports not-ready with a nil error.
	status, body = 503, `{"status":"degraded","reasons":["admission semaphore saturated, shedding queries"],"saturated":true}`
	resp, ready, err = c.Ready(context.Background())
	if err != nil {
		t.Fatalf("degraded probe must not error: %v", err)
	}
	if ready || resp.Status != "degraded" || !resp.Saturated || len(resp.Reasons) != 1 {
		t.Fatalf("degraded resp = %+v ready=%v", resp, ready)
	}

	// Any other status is a real error.
	status, body = 404, `{"error":{"status":404,"message":"nope"}}`
	_, ready, err = c.Ready(context.Background())
	var ae *APIError
	if ready || !errors.As(err, &ae) || ae.Status != 404 {
		t.Fatalf("404 probe: ready=%v err=%v", ready, err)
	}
}
