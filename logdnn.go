package mistique

import (
	"fmt"
	"time"

	"mistique/internal/colstore"
	"mistique/internal/metadata"
	"mistique/internal/nn"
	"mistique/internal/quant"
	"mistique/internal/tensor"
)

// DNNLogOptions controls how network activations are logged.
type DNNLogOptions struct {
	// Scheme is the storage scheme (default SchemePool2, the paper's
	// default trade-off).
	Scheme Scheme
	// BatchRows is the forward batch size (default RowBlockRows, so one
	// batch fills exactly one RowBlock).
	BatchRows int
	// CalibRows is the sample size used to fit KBIT/THRESHOLD quantile
	// tables (default 256).
	CalibRows int
	// Layers restricts logging to these layer indices (nil = all layers).
	Layers []int
	// PoolAgg selects the POOL_QT aggregation (quant.Avg, the paper's
	// default, or quant.Max).
	PoolAgg quant.Agg
}

func (o DNNLogOptions) withDefaults(blockRows int) DNNLogOptions {
	if o.Scheme == "" {
		o.Scheme = SchemePool2
	}
	if o.BatchRows <= 0 {
		o.BatchRows = blockRows
	}
	if o.CalibRows <= 0 {
		o.CalibRows = 256
	}
	return o
}

// LogDNN runs input through net layer by layer, applies the configured
// quantization/summarization scheme, and logs every layer's activations as
// a model intermediate named after the layer. The network and input are
// retained so queries can re-run the forward pass (the RERUN strategy).
//
// Log each training checkpoint under its own model name (e.g. "vgg@e3");
// frozen layers then produce byte-identical chunks across epochs, which
// exact de-duplication collapses (the paper's fine-tuned-VGG16 result).
func (s *System) LogDNN(name string, net *nn.Network, input *tensor.T4, opts DNNLogOptions) (*LogReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.networks[name]; dup {
		return nil, fmt.Errorf("mistique: DNN %q already logged", name)
	}
	s.meta.DeleteModel(name) // re-attach after reopen (see LogPipeline)
	opts = opts.withDefaults(s.cfg.RowBlockRows)
	if opts.BatchRows != s.cfg.RowBlockRows {
		// Keeping batch == RowBlock makes block boundaries align with
		// forward batches; other sizes are legal but would interleave.
		opts.BatchRows = s.cfg.RowBlockRows
	}
	before := s.store.Stats()
	start := time.Now()

	logSet := make(map[int]bool)
	for _, l := range opts.Layers {
		if l < 0 || l >= net.NumLayers() {
			return nil, fmt.Errorf("mistique: layer %d out of range", l)
		}
		logSet[l] = true
	}
	logAll := len(logSet) == 0

	// Calibration pass for distribution-fitted quantizers.
	quantizers := make([]*quant.Quantizer, net.NumLayers())
	if opts.Scheme == Scheme8Bit || opts.Scheme == SchemeThreshold {
		n := opts.CalibRows
		if n > input.N {
			n = input.N
		}
		sample := net.ForwardAll(input.SliceN(0, n))
		for li, act := range sample {
			if !logAll && !logSet[li] {
				continue
			}
			var err error
			switch opts.Scheme {
			case Scheme8Bit:
				quantizers[li], err = quant.FitKBit(act.Data, 8)
			case SchemeThreshold:
				quantizers[li], err = quant.FitThreshold(act.Data, 0.995)
			}
			if err != nil {
				return nil, fmt.Errorf("mistique: calibrate layer %d: %w", li, err)
			}
		}
	}

	dm := &dnnModel{net: net, input: input, opts: opts, layerOf: make(map[string]int)}
	model := &metadata.Model{Name: name, Kind: metadata.DNN, TotalExamples: input.N}
	interms := make([]*metadata.Interm, net.NumLayers())
	layerSecs := make([]float64, net.NumLayers())

	report := &LogReport{Model: name}
	names := net.LayerNames()
	for li, lname := range names {
		dm.layerOf[lname] = li
	}

	// Stream batches: forward layer by layer, transform, store per block.
	for block := 0; block*opts.BatchRows < input.N; block++ {
		lo := block * opts.BatchRows
		hi := lo + opts.BatchRows
		if hi > input.N {
			hi = input.N
		}
		cur := input.SliceN(lo, hi)
		for li := 0; li < net.NumLayers(); li++ {
			t0 := time.Now()
			cur = net.Layers[li].Forward(cur)
			layerSecs[li] += time.Since(t0).Seconds()
			if !logAll && !logSet[li] {
				continue
			}
			stored := s.transformActivation(cur, opts.Scheme, opts.PoolAgg)
			m := stored.Flatten()
			if interms[li] == nil {
				cols := make([]string, m.Cols)
				for j := range cols {
					cols[j] = fmt.Sprintf("u%d", j)
				}
				interms[li] = &metadata.Interm{
					Name:       names[li],
					StageIndex: li,
					Columns:    cols,
					Rows:       input.N,
					Blocks:     (input.N + opts.BatchRows - 1) / opts.BatchRows,
				}
			}
			it := interms[li]
			if s.adaptiveOn() {
				continue
			}
			q := quantizers[li]
			for j, cname := range it.Columns {
				key := colKey(name, it.Name, cname, block)
				res, err := s.store.PutColumn(key, m.Col(j), quantFor(opts.Scheme, q))
				if err != nil {
					return nil, fmt.Errorf("mistique: store %s: %w", key, err)
				}
				it.StoredBytes += res.EncodedBytes
			}
			it.Materialized = true
			it.QuantScheme = string(opts.Scheme)
		}
	}

	for li, lname := range names {
		st := metadata.Stage{Name: lname, Index: li, ExecSeconds: layerSecs[li]}
		if it := interms[li]; it != nil {
			st.OutputColumns = len(it.Columns)
			if it.Rows > 0 {
				bits := schemeBits(opts.Scheme)
				st.OutputBytesPerRow = int64(len(it.Columns)*bits+7) / 8
			}
			report.Intermediates++
			if s.adaptiveOn() {
				report.Skipped++
			}
		}
		model.Stages = append(model.Stages, st)
		if it := interms[li]; it != nil {
			model.Intermediates = append(model.Intermediates, it)
		}
	}
	if err := s.meta.RegisterModel(model); err != nil {
		return nil, err
	}
	s.networks[name] = dm

	report.Seconds = time.Since(start).Seconds()
	after := s.store.Stats()
	report.ColumnsStored = after.ChunksStored - before.ChunksStored
	report.ColumnsDedup = after.ChunksDeduped - before.ChunksDeduped
	report.StoredBytes = after.StoredBytes - before.StoredBytes
	report.LogicalBytes = after.LogicalBytes - before.LogicalBytes
	return report, nil
}

// transformActivation applies the scheme's summarization (pooling); value
// codecs are applied later at chunk encoding time.
func (s *System) transformActivation(act *tensor.T4, scheme Scheme, agg quant.Agg) *tensor.T4 {
	switch scheme {
	case SchemePool2:
		if act.H > 1 || act.W > 1 {
			return quant.Pool(act, 2, agg)
		}
	case SchemePool4:
		if act.H > 1 || act.W > 1 {
			return quant.Pool(act, 4, agg)
		}
	case SchemePool32:
		if act.H > 1 || act.W > 1 {
			return quant.Pool(act, maxInt(act.H, act.W), agg)
		}
	}
	return act
}

// quantFor returns the value codec for a scheme (fitted quantizers are
// passed through for the distribution-based schemes).
func quantFor(scheme Scheme, fitted *quant.Quantizer) *quant.Quantizer {
	switch scheme {
	case SchemeLP:
		return quant.NewLP()
	case Scheme8Bit, SchemeThreshold:
		return fitted
	default:
		return nil // FULL and POOL store raw float32 values
	}
}

func schemeBits(scheme Scheme) int {
	switch scheme {
	case SchemeLP:
		return 16
	case Scheme8Bit:
		return 8
	case SchemeThreshold:
		return 1
	default:
		return 32
	}
}

func colKey(model, interm, col string, block int) colstore.ColumnKey {
	return colstore.ColumnKey{Model: model, Intermediate: interm, Column: col, Block: block}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
