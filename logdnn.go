package mistique

import (
	"fmt"
	"sync/atomic"
	"time"

	"mistique/internal/cas"
	"mistique/internal/colstore"
	"mistique/internal/metadata"
	"mistique/internal/nn"
	"mistique/internal/parallel"
	"mistique/internal/quant"
	"mistique/internal/tensor"
)

// DNNLogOptions controls how network activations are logged.
type DNNLogOptions struct {
	// Scheme is the storage scheme (default SchemePool2, the paper's
	// default trade-off).
	Scheme Scheme
	// BatchRows is the forward batch size (default RowBlockRows, so one
	// batch fills exactly one RowBlock).
	BatchRows int
	// CalibRows is the sample size used to fit KBIT/THRESHOLD quantile
	// tables (default 256).
	CalibRows int
	// Parent names a previously logged model version (e.g. the prior
	// training epoch). Each stored column is then offered to the store as
	// a delta generation against the parent's column of the same layer,
	// name and block: byte-identical chunks dedup exactly, similar chunks
	// (MinHash-gated) store as XOR residuals against the parent, and
	// dissimilar ones fall back to full storage. The catalog records the
	// link, so Lineage can walk the version chain.
	Parent string
	// Layers restricts logging to these layer indices (nil = all layers).
	Layers []int
	// PoolAgg selects the POOL_QT aggregation (quant.Avg, the paper's
	// default, or quant.Max).
	PoolAgg quant.Agg
}

func (o DNNLogOptions) withDefaults(blockRows int) DNNLogOptions {
	if o.Scheme == "" {
		o.Scheme = SchemePool2
	}
	if o.BatchRows <= 0 {
		o.BatchRows = blockRows
	}
	if o.CalibRows <= 0 {
		o.CalibRows = 256
	}
	return o
}

// LogDNN runs input through net layer by layer, applies the configured
// quantization/summarization scheme, and logs every layer's activations as
// a model intermediate named after the layer. The network and input are
// retained so queries can re-run the forward pass (the RERUN strategy).
//
// Log each training checkpoint under its own model name (e.g. "vgg@e3");
// frozen layers then produce byte-identical chunks across epochs, which
// exact de-duplication collapses (the paper's fine-tuned-VGG16 result).
//
// Storage overlaps execution: the forward pass streams batch by batch on
// the calling goroutine while each (block, layer) activation is quantized,
// encoded and stored by the worker pool, so a slow disk no longer
// serializes with the GEMMs.
func (s *System) LogDNN(name string, net *nn.Network, input *tensor.T4, opts DNNLogOptions) (*LogReport, error) {
	if err := s.beginLogging(name, "DNN"); err != nil {
		return nil, err
	}
	var done *dnnModel
	defer func() { s.endLogging(name, nil, done) }()
	s.meta.DeleteModel(name) // re-attach after reopen (see LogPipeline)
	opts = opts.withDefaults(s.cfg.RowBlockRows)
	if opts.BatchRows != s.cfg.RowBlockRows {
		// Keeping batch == RowBlock makes block boundaries align with
		// forward batches; other sizes are legal but would interleave.
		opts.BatchRows = s.cfg.RowBlockRows
	}
	before := s.store.Stats()
	start := time.Now()

	logSet := make(map[int]bool)
	// maxLayer bounds the forward pass: layers past the deepest logged one
	// produce nothing we keep, so they are never executed.
	maxLayer := net.NumLayers() - 1
	for _, l := range opts.Layers {
		if l < 0 || l >= net.NumLayers() {
			return nil, fmt.Errorf("mistique: layer %d out of range", l)
		}
		logSet[l] = true
	}
	logAll := len(logSet) == 0
	if !logAll {
		maxLayer = 0
		for l := range logSet {
			if l > maxLayer {
				maxLayer = l
			}
		}
	}

	// Calibration pass for distribution-fitted quantizers.
	quantizers := make([]*quant.Quantizer, net.NumLayers())
	if opts.Scheme == Scheme8Bit || opts.Scheme == SchemeThreshold {
		n := opts.CalibRows
		if n > input.N {
			n = input.N
		}
		sample := net.ForwardAll(input.SliceN(0, n))
		for li, act := range sample {
			if !logAll && !logSet[li] {
				continue
			}
			var err error
			t0 := time.Now()
			switch opts.Scheme {
			case Scheme8Bit:
				quantizers[li], err = quant.FitKBit(act.Data, 8)
			case SchemeThreshold:
				quantizers[li], err = quant.FitThreshold(act.Data, 0.995)
			}
			if err != nil {
				return nil, fmt.Errorf("mistique: calibrate layer %d: %w", li, err)
			}
			s.metrics.ingestQuantizeSeconds.ObserveSince(t0)
		}
	}

	if opts.Parent == name {
		return nil, fmt.Errorf("mistique: model %q cannot be its own parent", name)
	}
	dm := &dnnModel{net: net, input: input, opts: opts, layerOf: make(map[string]int)}
	model := &metadata.Model{Name: name, Kind: metadata.DNN, Parent: opts.Parent, TotalExamples: input.N}
	interms := make([]*metadata.Interm, net.NumLayers())
	layerSecs := make([]float64, net.NumLayers())

	report := &LogReport{Model: name}
	names := net.LayerNames()
	for li, lname := range names {
		dm.layerOf[lname] = li
	}

	// Stream batches: the forward pass runs layer by layer on this
	// goroutine (Network is not reentrant); each logged activation block is
	// handed to the worker pool to summarize, encode and store while the
	// next batch computes. Layer outputs are freshly allocated and never
	// mutated, so workers read them without copies.
	g := parallel.NewGroup(s.workers())
	storedBytes := make([]int64, net.NumLayers())
	for block := 0; block*opts.BatchRows < input.N; block++ {
		if g.Err() != nil {
			break // storage already failed; stop producing work
		}
		lo := block * opts.BatchRows
		hi := lo + opts.BatchRows
		if hi > input.N {
			hi = input.N
		}
		cur := input.SliceN(lo, hi)
		for li := 0; li <= maxLayer; li++ {
			t0 := time.Now()
			cur = net.Layers[li].Forward(cur)
			fwd := time.Since(t0).Seconds()
			layerSecs[li] += fwd
			s.metrics.ingestForwardSeconds.Observe(fwd)
			if !logAll && !logSet[li] {
				continue
			}
			if interms[li] == nil {
				nCols := s.transformActivation(cur, opts.Scheme, opts.PoolAgg).Flatten().Cols
				cols := make([]string, nCols)
				for j := range cols {
					cols[j] = fmt.Sprintf("u%d", j)
				}
				interms[li] = &metadata.Interm{
					Name:       names[li],
					StageIndex: li,
					Columns:    cols,
					Rows:       input.N,
					Blocks:     (input.N + opts.BatchRows - 1) / opts.BatchRows,
				}
			}
			if s.adaptiveOn() {
				continue
			}
			it, act, q, li, block := interms[li], cur, quantizers[li], li, block
			g.Go(func() error {
				m := s.transformActivation(act, opts.Scheme, opts.PoolAgg).Flatten()
				for j, cname := range it.Columns {
					key := colKey(name, it.Name, cname, block)
					var res colstore.PutResult
					var err error
					if opts.Parent != "" {
						// Delta generation against the parent version's
						// matching column; the store degrades to exact dedup
						// or a full chunk when the parent column is missing
						// or dissimilar, so this path never loses data.
						res, err = s.store.PutColumnDelta(key, m.Col(j), quantFor(opts.Scheme, q),
							colKey(opts.Parent, it.Name, cname, block))
					} else {
						res, err = s.store.PutColumn(key, m.Col(j), quantFor(opts.Scheme, q))
					}
					if err != nil {
						return fmt.Errorf("mistique: store %s: %w", key, err)
					}
					atomic.AddInt64(&storedBytes[li], res.EncodedBytes)
				}
				return nil
			})
		}
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	if !s.adaptiveOn() {
		for li, it := range interms {
			if it == nil {
				continue
			}
			it.StoredBytes = storedBytes[li]
			it.Materialized = true
			it.QuantScheme = string(opts.Scheme)
		}
	}

	for li, lname := range names {
		st := metadata.Stage{Name: lname, Index: li, ExecSeconds: layerSecs[li]}
		if it := interms[li]; it != nil {
			st.OutputColumns = len(it.Columns)
			if it.Rows > 0 {
				bits := schemeBits(opts.Scheme)
				st.OutputBytesPerRow = int64(len(it.Columns)*bits+7) / 8
			}
			report.Intermediates++
			if s.adaptiveOn() {
				report.Skipped++
			}
		}
		model.Stages = append(model.Stages, st)
		if it := interms[li]; it != nil {
			model.Intermediates = append(model.Intermediates, it)
		}
	}
	if err := s.meta.RegisterModel(model); err != nil {
		return nil, err
	}
	// Snapshot the weights into the content-addressed store: identical
	// pages across versions dedup at CDC-chunk granularity, and a Parent
	// link stores this version as an XOR delta against the previous
	// checkpoint (falling back to full when the parent has no snapshot).
	wblob := net.SaveWeights()
	var winfo cas.ObjectInfo
	var werr error
	if opts.Parent != "" {
		winfo, werr = s.weights.PutDelta(name, opts.Parent, wblob)
	} else {
		winfo, werr = s.weights.Put(name, wblob)
	}
	if werr != nil {
		return nil, fmt.Errorf("mistique: snapshot weights for %s: %w", name, werr)
	}
	report.WeightBytes = winfo.Size
	report.WeightNewBytes = winfo.NewBytes
	done = dm // install in s.networks via the deferred endLogging

	report.Seconds = time.Since(start).Seconds()
	s.metrics.modelsLogged.Inc()
	s.metrics.ingestSeconds.Observe(report.Seconds)
	after := s.store.Stats()
	report.ColumnsStored = after.ChunksStored - before.ChunksStored
	report.ColumnsDedup = after.ChunksDeduped - before.ChunksDeduped
	report.ColumnsDelta = after.DeltaChunks - before.DeltaChunks
	report.StoredBytes = after.StoredBytes - before.StoredBytes
	report.LogicalBytes = after.LogicalBytes - before.LogicalBytes
	return report, nil
}

// transformActivation applies the scheme's summarization (pooling); value
// codecs are applied later at chunk encoding time.
func (s *System) transformActivation(act *tensor.T4, scheme Scheme, agg quant.Agg) *tensor.T4 {
	switch scheme {
	case SchemePool2:
		if act.H > 1 || act.W > 1 {
			return quant.Pool(act, 2, agg)
		}
	case SchemePool4:
		if act.H > 1 || act.W > 1 {
			return quant.Pool(act, 4, agg)
		}
	case SchemePool32:
		if act.H > 1 || act.W > 1 {
			return quant.Pool(act, maxInt(act.H, act.W), agg)
		}
	}
	return act
}

// quantFor returns the value codec for a scheme (fitted quantizers are
// passed through for the distribution-based schemes).
func quantFor(scheme Scheme, fitted *quant.Quantizer) *quant.Quantizer {
	switch scheme {
	case SchemeLP:
		return quant.NewLP()
	case Scheme8Bit, SchemeThreshold:
		return fitted
	default:
		return nil // FULL and POOL store raw float32 values
	}
}

func schemeBits(scheme Scheme) int {
	switch scheme {
	case SchemeLP:
		return 16
	case Scheme8Bit:
		return 8
	case SchemeThreshold:
		return 1
	default:
		return 32
	}
}

func colKey(model, interm, col string, block int) colstore.ColumnKey {
	return colstore.ColumnKey{Model: model, Intermediate: interm, Column: col, Block: block}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
