package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(0, 0, 1)
	d.Set(1, 2, 5)
	if d.At(0, 0) != 1 || d.At(1, 2) != 5 || d.At(0, 1) != 0 {
		t.Fatalf("At/Set broken: %+v", d)
	}
	if got := d.Row(1); got[2] != 5 {
		t.Fatalf("Row: %v", got)
	}
	if got := d.Col(2); got[0] != 0 || got[1] != 5 {
		t.Fatalf("Col: %v", got)
	}
}

func TestFromRowsAndClone(t *testing.T) {
	d := FromRows([][]float32{{1, 2}, {3, 4}})
	c := d.Clone()
	c.Set(0, 0, 99)
	if d.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	if !d.Equal(FromRows([][]float32{{1, 2}, {3, 4}})) {
		t.Fatal("Equal broken")
	}
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	got := a.MatMul(b)
	want := FromRows([][]float32{{19, 22}, {43, 50}})
	if !got.Equal(want) {
		t.Fatalf("got %v want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		a := NewDense(n, m)
		for i := range a.Data {
			a.Data[i] = rng.Float32()
		}
		id := NewDense(m, m)
		for i := 0; i < m; i++ {
			id.Set(i, i, 1)
		}
		return a.MatMul(id).Equal(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewDense(1+rng.Intn(10), 1+rng.Intn(10))
		for i := range a.Data {
			a.Data[i] = rng.Float32()
		}
		return a.Transpose().Transpose().Equal(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectRowsCols(t *testing.T) {
	d := FromRows([][]float32{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	r := d.SelectRows([]int{2, 0})
	if !r.Equal(FromRows([][]float32{{7, 8, 9}, {1, 2, 3}})) {
		t.Fatalf("SelectRows: %v", r.Data)
	}
	c := d.SelectCols([]int{1})
	if !c.Equal(FromRows([][]float32{{2}, {5}, {8}})) {
		t.Fatalf("SelectCols: %v", c.Data)
	}
	s := d.SliceRows(1, 3)
	if s.Rows != 2 || s.At(0, 0) != 4 {
		t.Fatalf("SliceRows: %v", s.Data)
	}
}

func TestColMeanAndAddRowVec(t *testing.T) {
	d := FromRows([][]float32{{1, 2}, {3, 4}})
	m := d.ColMean()
	if m[0] != 2 || m[1] != 3 {
		t.Fatalf("ColMean: %v", m)
	}
	d.AddRowVec([]float32{10, 20})
	if d.At(0, 0) != 11 || d.At(1, 1) != 24 {
		t.Fatalf("AddRowVec: %v", d.Data)
	}
}

func TestT4IndexingAndFlatten(t *testing.T) {
	x := NewT4(2, 3, 4, 5)
	x.Set(1, 2, 3, 4, 42)
	if x.At(1, 2, 3, 4) != 42 {
		t.Fatal("T4 At/Set broken")
	}
	f := x.Flatten()
	if f.Rows != 2 || f.Cols != 60 {
		t.Fatalf("Flatten shape %dx%d", f.Rows, f.Cols)
	}
	// element (1,2,3,4) lands at flat column 2*20+3*5+4 = 59
	if f.At(1, 59) != 42 {
		t.Fatal("Flatten layout mismatch")
	}
	back := Reshape4(f, 3, 4, 5)
	if back.At(1, 2, 3, 4) != 42 {
		t.Fatal("Reshape4 layout mismatch")
	}
}

func TestT4PlaneAliases(t *testing.T) {
	x := NewT4(1, 2, 2, 2)
	p := x.Plane(0, 1)
	p[3] = 7
	if x.At(0, 1, 1, 1) != 7 {
		t.Fatal("Plane does not alias storage")
	}
	if got := len(x.Example(0)); got != 8 {
		t.Fatalf("Example len %d", got)
	}
}

func TestL2Dist(t *testing.T) {
	d := L2Dist([]float32{0, 0}, []float32{3, 4})
	if math.Abs(d-5) > 1e-12 {
		t.Fatalf("L2Dist = %v", d)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	mustPanic("matmul shape", func() { a.MatMul(b) })
	mustPanic("ragged FromRows", func() { FromRows([][]float32{{1}, {1, 2}}) })
	mustPanic("SetCol len", func() { a.SetCol(0, []float32{1}) })
	mustPanic("reshape", func() { Reshape4(a, 2, 2, 2) })
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewDense(64, 64)
	c := NewDense(64, 64)
	for i := range a.Data {
		a.Data[i] = rng.Float32()
		c.Data[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MatMul(c)
	}
}
