// Package tensor provides the dense float32 containers used throughout the
// system: Dense (a 2-D row-major matrix holding intermediates as
// rows=examples, cols=features/neurons) and T4 (an NCHW 4-D tensor used by
// the convolutional layers of the DNN substrate).
package tensor

import (
	"fmt"
	"math"
)

// Dense is a dense row-major float32 matrix. The zero value is an empty
// matrix; use NewDense to allocate.
type Dense struct {
	Rows, Cols int
	Data       []float32 // len Rows*Cols, row-major
}

// NewDense allocates a zeroed rows x cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a Dense from a slice of equal-length rows.
func FromRows(rows [][]float32) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	d := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != d.Cols {
			panic(fmt.Sprintf("tensor: ragged row %d: %d != %d", i, len(r), d.Cols))
		}
		copy(d.Data[i*d.Cols:], r)
	}
	return d
}

// At returns the element at (i, j).
func (d *Dense) At(i, j int) float32 { return d.Data[i*d.Cols+j] }

// Set assigns the element at (i, j).
func (d *Dense) Set(i, j int, v float32) { d.Data[i*d.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (d *Dense) Row(i int) []float32 { return d.Data[i*d.Cols : (i+1)*d.Cols] }

// Col copies column j into a new slice.
func (d *Dense) Col(j int) []float32 {
	return d.ColInto(make([]float32, 0, d.Rows), j)
}

// ColInto appends column j to dst and returns it — the allocation-free
// form for callers that reuse a column buffer.
func (d *Dense) ColInto(dst []float32, j int) []float32 {
	if cap(dst)-len(dst) < d.Rows {
		dst = append(make([]float32, 0, len(dst)+d.Rows), dst...)
	}
	for i := 0; i < d.Rows; i++ {
		dst = append(dst, d.Data[i*d.Cols+j])
	}
	return dst
}

// SetCol overwrites column j with v.
func (d *Dense) SetCol(j int, v []float32) {
	if len(v) != d.Rows {
		panic("tensor: SetCol length mismatch")
	}
	for i := 0; i < d.Rows; i++ {
		d.Data[i*d.Cols+j] = v[i]
	}
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.Rows, d.Cols)
	copy(c.Data, d.Data)
	return c
}

// SliceRows returns a new matrix containing rows [from, to).
func (d *Dense) SliceRows(from, to int) *Dense {
	if from < 0 || to > d.Rows || from > to {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) of %d rows", from, to, d.Rows))
	}
	s := NewDense(to-from, d.Cols)
	copy(s.Data, d.Data[from*d.Cols:to*d.Cols])
	return s
}

// SelectRows gathers the given row indices into a new matrix.
func (d *Dense) SelectRows(idx []int) *Dense {
	s := NewDense(len(idx), d.Cols)
	for k, i := range idx {
		copy(s.Row(k), d.Row(i))
	}
	return s
}

// SelectCols gathers the given column indices into a new matrix.
func (d *Dense) SelectCols(idx []int) *Dense {
	s := NewDense(d.Rows, len(idx))
	for i := 0; i < d.Rows; i++ {
		src := d.Row(i)
		dst := s.Row(i)
		for k, j := range idx {
			dst[k] = src[j]
		}
	}
	return s
}

// MatMul computes d * o and returns the product.
func (d *Dense) MatMul(o *Dense) *Dense {
	if d.Cols != o.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d * %dx%d", d.Rows, d.Cols, o.Rows, o.Cols))
	}
	out := NewDense(d.Rows, o.Cols)
	// ikj loop order keeps the inner loop sequential over both operands.
	for i := 0; i < d.Rows; i++ {
		dRow := d.Row(i)
		oRow := out.Row(i)
		for k := 0; k < d.Cols; k++ {
			a := dRow[k]
			if a == 0 {
				continue
			}
			bRow := o.Data[k*o.Cols : (k+1)*o.Cols]
			for j, b := range bRow {
				oRow[j] += a * b
			}
		}
	}
	return out
}

// Transpose returns a new transposed matrix.
func (d *Dense) Transpose() *Dense {
	t := NewDense(d.Cols, d.Rows)
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// AddRowVec adds vector v to every row in place (broadcast add, e.g. bias).
func (d *Dense) AddRowVec(v []float32) {
	if len(v) != d.Cols {
		panic("tensor: AddRowVec length mismatch")
	}
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// Apply replaces every element x with f(x).
func (d *Dense) Apply(f func(float32) float32) {
	for i, v := range d.Data {
		d.Data[i] = f(v)
	}
}

// Equal reports whether the two matrices have identical shape and contents.
func (d *Dense) Equal(o *Dense) bool {
	if d.Rows != o.Rows || d.Cols != o.Cols {
		return false
	}
	for i, v := range d.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// ColMean returns the per-column mean of the matrix.
func (d *Dense) ColMean() []float32 {
	mean := make([]float32, d.Cols)
	if d.Rows == 0 {
		return mean
	}
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	inv := 1 / float32(d.Rows)
	for j := range mean {
		mean[j] *= inv
	}
	return mean
}

// T4 is a dense NCHW 4-D tensor: N examples, C channels, H x W spatial map.
type T4 struct {
	N, C, H, W int
	Data       []float32
}

// NewT4 allocates a zeroed NCHW tensor.
func NewT4(n, c, h, w int) *T4 {
	return &T4{N: n, C: c, H: h, W: w, Data: make([]float32, n*c*h*w)}
}

// At returns element (n, c, h, w).
func (t *T4) At(n, c, h, w int) float32 {
	return t.Data[((n*t.C+c)*t.H+h)*t.W+w]
}

// Set assigns element (n, c, h, w).
func (t *T4) Set(n, c, h, w int, v float32) {
	t.Data[((n*t.C+c)*t.H+h)*t.W+w] = v
}

// Plane returns the (n, c) spatial plane as a slice aliasing the tensor.
func (t *T4) Plane(n, c int) []float32 {
	base := (n*t.C + c) * t.H * t.W
	return t.Data[base : base+t.H*t.W]
}

// Example returns the full feature volume of example n as an aliasing slice.
func (t *T4) Example(n int) []float32 {
	sz := t.C * t.H * t.W
	return t.Data[n*sz : (n+1)*sz]
}

// Clone returns a deep copy.
func (t *T4) Clone() *T4 {
	c := NewT4(t.N, t.C, t.H, t.W)
	copy(c.Data, t.Data)
	return c
}

// Flatten reinterprets the tensor as an N x (C*H*W) matrix. This is how DNN
// intermediates enter the column store: one column per (channel, y, x) cell.
func (t *T4) Flatten() *Dense {
	return &Dense{Rows: t.N, Cols: t.C * t.H * t.W, Data: t.Data}
}

// Reshape4 reinterprets a matrix of shape N x (C*H*W) as an NCHW tensor.
func Reshape4(d *Dense, c, h, w int) *T4 {
	if d.Cols != c*h*w {
		panic(fmt.Sprintf("tensor: reshape %d cols into %dx%dx%d", d.Cols, c, h, w))
	}
	return &T4{N: d.Rows, C: c, H: h, W: w, Data: d.Data}
}

// SliceN returns examples [from, to) as a new tensor sharing no storage.
func (t *T4) SliceN(from, to int) *T4 {
	s := NewT4(to-from, t.C, t.H, t.W)
	sz := t.C * t.H * t.W
	copy(s.Data, t.Data[from*sz:to*sz])
	return s
}

// L2Dist returns the Euclidean distance between two equal-length vectors.
func L2Dist(a, b []float32) float64 {
	var sum float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return math.Sqrt(sum)
}
