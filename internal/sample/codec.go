package sample

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// MQSM on-disk format (all integers uvarint unless noted, floats and
// fixed ints little-endian):
//
//	"MQSM" 0x01
//	fileKey  string   model "\x00" intermediate — identity, verified on load
//	Cap, StratumCap, MaxStrata
//	Seed, RNGState   u64 LE
//	Seen
//	C; C × column name
//	C × { Finite, NaN, PosInf, NegInf; Min, Max f32 bits }
//	k; k × RowID; k·C × f32
//	StratifyCol string; overflow byte
//	numStrata; each { Key f32 bits; Count; kS; kS × RowID; kS·C × f32 }
//	CRC32-C  u32 LE over everything above
var magicMQSM = [5]byte{'M', 'Q', 'S', 'M', 1}

// ErrCorrupt marks an MQSM image that fails structural or checksum
// validation.
var ErrCorrupt = errors.New("sample: corrupt MQSM image")

// Structural ceilings so a corrupt length field cannot balloon
// allocation during decode.
const (
	maxCols      = 1 << 16
	maxSampleCap = 1 << 26
	maxStrataCap = 1 << 14
)

// Encode serializes the sample with its identity into an MQSM image.
func Encode(model, interm string, s *Sample) []byte {
	c := len(s.Cols)
	buf := make([]byte, 0, 64+len(s.Data)*4+len(s.RowIDs)*2)
	buf = append(buf, magicMQSM[:]...)
	buf = appendString(buf, model+"\x00"+interm)
	buf = binary.AppendUvarint(buf, uint64(s.Cap))
	buf = binary.AppendUvarint(buf, uint64(s.StratumCap))
	buf = binary.AppendUvarint(buf, uint64(s.MaxStrata))
	buf = binary.LittleEndian.AppendUint64(buf, s.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, s.RNGState)
	buf = binary.AppendUvarint(buf, uint64(s.Seen))
	buf = binary.AppendUvarint(buf, uint64(c))
	for _, name := range s.Cols {
		buf = appendString(buf, name)
	}
	for _, st := range s.Stats {
		buf = binary.AppendUvarint(buf, uint64(st.Finite))
		buf = binary.AppendUvarint(buf, uint64(st.NaN))
		buf = binary.AppendUvarint(buf, uint64(st.PosInf))
		buf = binary.AppendUvarint(buf, uint64(st.NegInf))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(st.Min))
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(st.Max))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.RowIDs)))
	for _, id := range s.RowIDs {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	buf = appendFloats(buf, s.Data)
	buf = appendString(buf, s.StratifyCol)
	if s.StrataOverflow {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Strata)))
	for _, str := range s.Strata {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(str.Key))
		buf = binary.AppendUvarint(buf, uint64(str.Count))
		buf = binary.AppendUvarint(buf, uint64(len(str.RowIDs)))
		for _, id := range str.RowIDs {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
		buf = appendFloats(buf, str.Data)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode parses and validates an MQSM image, returning the sample and the
// model/intermediate identity it was written for.
func Decode(data []byte) (model, interm string, s *Sample, err error) {
	if len(data) < len(magicMQSM)+4 {
		return "", "", nil, ErrCorrupt
	}
	for i, b := range magicMQSM {
		if data[i] != b {
			return "", "", nil, ErrCorrupt
		}
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return "", "", nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d := decoder{buf: body[len(magicMQSM):]}
	fileKey := d.str(maxCols * 2)
	s = &Sample{}
	s.Cap = int(d.uvarint(maxSampleCap))
	s.StratumCap = int(d.uvarint(maxSampleCap))
	s.MaxStrata = int(d.uvarint(maxStrataCap))
	s.Seed = d.u64()
	s.RNGState = d.u64()
	s.Seen = int64(d.uvarint(math.MaxInt64))
	c := int(d.uvarint(maxCols))
	if d.err == nil {
		s.Cols = make([]string, c)
		for i := range s.Cols {
			s.Cols[i] = d.str(1 << 12)
		}
		s.Stats = make([]ColStats, c)
		for i := range s.Stats {
			s.Stats[i] = ColStats{
				Finite: int64(d.uvarint(math.MaxInt64)),
				NaN:    int64(d.uvarint(math.MaxInt64)),
				PosInf: int64(d.uvarint(math.MaxInt64)),
				NegInf: int64(d.uvarint(math.MaxInt64)),
				Min:    math.Float32frombits(d.u32()),
				Max:    math.Float32frombits(d.u32()),
			}
		}
	}
	k := int(d.uvarint(maxSampleCap))
	if d.err == nil {
		s.RowIDs = make([]int64, k)
		for i := range s.RowIDs {
			s.RowIDs[i] = int64(d.uvarint(math.MaxInt64))
		}
		s.Data = d.floats(k * c)
	}
	s.StratifyCol = d.str(1 << 12)
	s.StrataOverflow = d.u8() != 0
	nStr := int(d.uvarint(maxStrataCap))
	if d.err == nil {
		s.Strata = make([]Stratum, nStr)
		for i := range s.Strata {
			str := &s.Strata[i]
			str.Key = math.Float32frombits(d.u32())
			str.Count = int64(d.uvarint(math.MaxInt64))
			kS := int(d.uvarint(maxSampleCap))
			if d.err != nil {
				break
			}
			str.RowIDs = make([]int64, kS)
			for r := range str.RowIDs {
				str.RowIDs[r] = int64(d.uvarint(math.MaxInt64))
			}
			str.Data = d.floats(kS * c)
		}
	}
	if d.err != nil {
		return "", "", nil, fmt.Errorf("%w: %v", ErrCorrupt, d.err)
	}
	if len(d.buf) != 0 {
		return "", "", nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf))
	}
	if int64(len(s.RowIDs)) > s.Seen || len(s.RowIDs) > s.Cap {
		return "", "", nil, fmt.Errorf("%w: sample larger than population or cap", ErrCorrupt)
	}
	model, interm, ok := splitKey(fileKey)
	if !ok {
		return "", "", nil, fmt.Errorf("%w: malformed file key", ErrCorrupt)
	}
	return model, interm, s, nil
}

func splitKey(key string) (model, interm string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[:i], key[i+1:], true
		}
	}
	return "", "", false
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFloats(buf []byte, vals []float32) []byte {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// decoder is a cursor with sticky error over one MQSM body.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated %s", what)
	}
}

func (d *decoder) uvarint(limit uint64) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	if v > limit {
		if d.err == nil {
			d.err = fmt.Errorf("value %d exceeds limit %d", v, limit)
		}
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 4 {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail("byte")
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) str(limit uint64) string {
	n := d.uvarint(limit)
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.fail("string")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) floats(n int) []float32 {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf) < n*4 {
		d.fail("float block")
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.buf[i*4:]))
	}
	d.buf = d.buf[n*4:]
	return out
}
