package sample

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func sampleForCodec(t *testing.T) *Sample {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	const n = 3000
	labels := make([]float32, n)
	vals := make([]float32, n)
	for i := range labels {
		labels[i] = float32(rng.Intn(3))
		switch i % 50 {
		case 0:
			vals[i] = float32(math.NaN())
		case 1:
			vals[i] = float32(math.Inf(-1))
		default:
			vals[i] = rng.Float32() * 100
		}
	}
	mb := NewMatrixBuilder([]string{"label", "act"}, n, labels,
		Config{Cap: 200, StratumCap: 32, Seed: 5, StratifyColumn: "label"})
	mb.SetColumn(0, labels)
	mb.SetColumn(1, vals)
	return mb.Finish()
}

func TestCodecRoundTrip(t *testing.T) {
	s := sampleForCodec(t)
	img := Encode("m1", "conv/act", s)
	model, interm, got, err := Decode(img)
	if err != nil {
		t.Fatal(err)
	}
	if model != "m1" || interm != "conv/act" {
		t.Fatalf("identity = %q/%q", model, interm)
	}
	// NaN fields defeat DeepEqual; compare the encodings instead, which
	// preserve exact bit patterns.
	if !reflect.DeepEqual(Encode("m1", "conv/act", got), img) {
		t.Fatal("re-encode of decode differs")
	}
	// And a resumed builder over the decoded sample keeps working.
	b := Resume(got)
	if err := b.Add([]float32{1, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecEmptySample(t *testing.T) {
	b := NewBuilder([]string{"a"}, Config{Cap: 4})
	img := Encode("m", "i", b.Snapshot())
	_, _, got, err := Decode(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seen != 0 || got.Rows() != 0 {
		t.Fatalf("empty sample decoded as seen=%d k=%d", got.Seen, got.Rows())
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	s := sampleForCodec(t)
	img := Encode("m1", "i1", s)
	cases := map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"empty":      func(b []byte) []byte { return nil },
		"bad magic":  func(b []byte) []byte { c := clone(b); c[0] = 'X'; return c },
		"bit flip":   func(b []byte) []byte { c := clone(b); c[len(c)/2] ^= 0x40; return c },
		"bad crc":    func(b []byte) []byte { c := clone(b); c[len(c)-1] ^= 0xff; return c },
		"trailing":   func(b []byte) []byte { return append(clone(b), 0xaa) },
		"short head": func(b []byte) []byte { return b[:4] },
	}
	for name, mut := range cases {
		if _, _, _, err := Decode(mut(img)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }
