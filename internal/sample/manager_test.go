package sample

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mistique/internal/faultfs"
)

func TestManagerSaveLoadRemove(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sample")
	m, err := NewManager(ManagerConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := sampleForCodec(t)
	if err := m.Save("m1", "i1", s); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load("m1", "i1")
	if err != nil || got == nil {
		t.Fatalf("Load: %v, %v", got, err)
	}
	if !reflect.DeepEqual(Encode("m1", "i1", got), Encode("m1", "i1", s)) {
		t.Fatal("loaded sample differs")
	}
	if got, err := m.Load("m1", "other"); err != nil || got != nil {
		t.Fatalf("absent sample: %v, %v", got, err)
	}
	m.Remove("m1", "i1")
	if got, err := m.Load("m1", "i1"); err != nil || got != nil {
		t.Fatalf("after Remove: %v, %v", got, err)
	}
}

func TestManagerQuarantinesCorruptFile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sample")
	m, err := NewManager(ManagerConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := sampleForCodec(t)
	if err := m.Save("m1", "i1", s); err != nil {
		t.Fatal(err)
	}
	path := m.path("m1", "i1")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load("m1", "i1")
	if err != nil || got != nil {
		t.Fatalf("corrupt load: %v, %v — want absent", got, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file not quarantined")
	}
}

func TestManagerSurvivesPublishFault(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sample")
	inj := faultfs.NewInjector(nil)
	m, err := NewManager(ManagerConfig{Dir: dir, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	s := sampleForCodec(t)
	if err := m.Save("m1", "i1", s); err != nil {
		t.Fatal(err)
	}
	// A failed re-save must leave the previous snapshot intact.
	inj.Arm(faultfs.Fault{Op: faultfs.OpRename})
	s2 := sampleForCodec(t)
	s2.Seen += 1000
	if err := m.Save("m1", "i1", s2); err == nil {
		t.Fatal("save through a rename fault succeeded")
	}
	inj.Disarm()
	got, err := m.Load("m1", "i1")
	if err != nil || got == nil {
		t.Fatalf("Load after failed save: %v, %v", got, err)
	}
	if got.Seen != s.Seen {
		t.Fatalf("previous snapshot clobbered: seen=%d, want %d", got.Seen, s.Seen)
	}
	// No temp debris.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".mqsm" {
			t.Fatalf("debris left behind: %s", e.Name())
		}
	}
}
