package sample

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"mistique/internal/faultfs"
	"mistique/internal/obs"
)

// ManagerConfig wires a Manager.
type ManagerConfig struct {
	// Dir holds the MQSM files (created if absent).
	Dir string
	// FS is the write-side filesystem (OS() when nil); reads stay plain.
	FS faultfs.FS
	// Obs receives the manager's instruments (nil disables metrics).
	Obs *obs.Registry
}

// Manager persists samples as checksummed MQSM files under the store's
// temp→fsync→rename→syncdir discipline, one file per (model,
// intermediate), hash-named with the real identity stored — and verified
// — inside the file.
type Manager struct {
	dir string
	fs  faultfs.FS
	mu  sync.Mutex // serializes writes per manager; reads are lock-free

	saves       *obs.Counter
	loads       *obs.Counter
	quarantines *obs.Counter
	publishErrs *obs.Counter
}

// NewManager creates the sample directory and wires the instruments.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("sample: %w", err)
	}
	fs := cfg.FS
	if fs == nil {
		fs = faultfs.OS()
	}
	r := cfg.Obs
	return &Manager{
		dir:         cfg.Dir,
		fs:          fs,
		saves:       r.Counter("mistique_sample_saves_total", "Sample snapshots persisted to disk."),
		loads:       r.Counter("mistique_sample_loads_total", "Sample snapshots loaded from disk."),
		quarantines: r.Counter("mistique_sample_quarantined_total", "Corrupt sample files removed."),
		publishErrs: r.Counter("mistique_sample_publish_errors_total", "Sample persists that failed."),
	}, nil
}

func (m *Manager) path(model, interm string) string {
	h := fnv.New64a()
	h.Write([]byte(model))
	h.Write([]byte{0})
	h.Write([]byte(interm))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], h.Sum64())
	return filepath.Join(m.dir, fmt.Sprintf("smpl_%016x.mqsm", b))
}

// Save persists a sample snapshot. An error means the previous on-disk
// snapshot (if any) is still intact — the publish is atomic.
func (m *Manager) Save(model, interm string, s *Sample) error {
	img := Encode(model, interm, s)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.writeFile(m.path(model, interm), img); err != nil {
		m.publishErrs.Inc()
		return fmt.Errorf("sample: persist %s/%s: %w", model, interm, err)
	}
	m.saves.Inc()
	return nil
}

// Load returns the persisted sample for (model, interm), or (nil, nil)
// when none exists. A corrupt or mismatched file is quarantined (removed)
// and reported as absent: the sample is an accelerator, not a source of
// truth, and the caller falls back to exact reads.
func (m *Manager) Load(model, interm string) (*Sample, error) {
	path := m.path(model, interm)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sample: read %s: %w", path, err)
	}
	gotModel, gotInterm, s, err := Decode(data)
	if err != nil || gotModel != model || gotInterm != interm {
		m.quarantines.Inc()
		m.mu.Lock()
		m.fs.Remove(path)
		m.mu.Unlock()
		return nil, nil
	}
	m.loads.Inc()
	return s, nil
}

// Remove deletes the persisted sample for (model, interm), if any.
func (m *Manager) Remove(model, interm string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fs.Remove(m.path(model, interm))
}

func (m *Manager) writeFile(path string, data []byte) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	f, err := m.fs.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() { m.fs.Remove(tmp) }
	if _, err := f.Write(data); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		cleanup()
		return err
	}
	if err := m.fs.Rename(tmp, path); err != nil {
		cleanup()
		return err
	}
	return m.fs.SyncDir(dir)
}
