// Package sample maintains per-intermediate row samples — a uniform
// reservoir plus an optional stratified variant keyed on a label column —
// and answers approximate aggregates from them with distribution-free
// error bounds.
//
// The contract the approximate query path builds on:
//
//   - Sampling is value-independent: which rows land in the reservoir
//     depends only on the seed and the row order, never on the data, so
//     the sample is uniform without replacement and the bounds below
//     apply.
//   - Per-column statistics that are cheap to track exactly (finite /
//     NaN / ±Inf counts, min, max) are tracked exactly at ingest. Bounds
//     use the exact value range, which keeps them honest on heavy-tailed
//     data where a sample-estimated range would lie.
//   - Every estimate carries a bound that holds with probability ≥ 1-δ
//     (δ = 1e-4 for means and proportions, 1e-3 for ranks). The bounds
//     are Hoeffding-Serfling and empirical-Bernstein forms — valid for
//     sampling without replacement — so the caller can compare them
//     against a requested maxError and fall back to the exact path when
//     the sample cannot deliver.
//   - A sample that holds every row it has seen answers exactly: bounds
//     collapse to zero.
//
// Builders live in builder.go, the MQSM on-disk format in codec.go, and
// the checksummed persistence manager in manager.go.
package sample

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// DefaultCap is the default reservoir size in rows. At this size a mean
// over 100k rows carries a bound under 1% of the column's value range.
const DefaultCap = 32768

// Config sizes a sample.
type Config struct {
	// Cap is the reservoir size in rows (default DefaultCap). Larger caps
	// give tighter bounds.
	Cap int
	// Seed drives the deterministic row selection (default 1).
	Seed uint64
	// StratifyColumn, when non-empty and present in the intermediate,
	// additionally maintains one sub-reservoir per distinct value of that
	// column — the stratified variant used by confusion-matrix estimates.
	StratifyColumn string
	// StratumCap is the per-stratum reservoir size (default 1024).
	StratumCap int
	// MaxStrata bounds the number of distinct strata tracked (default
	// 64). Exceeding it abandons stratification for the intermediate
	// (the uniform reservoir keeps working).
	MaxStrata int
}

func (c Config) withDefaults() Config {
	if c.Cap <= 0 {
		c.Cap = DefaultCap
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.StratumCap <= 0 {
		c.StratumCap = 1024
	}
	if c.MaxStrata <= 0 {
		c.MaxStrata = 64
	}
	return c
}

// ColStats are the exactly-tracked per-column statistics.
type ColStats struct {
	Finite int64
	NaN    int64
	PosInf int64
	NegInf int64
	// Min/Max cover the finite values only; when Finite is 0 they are
	// +Inf/-Inf respectively.
	Min float32
	Max float32
}

func newColStats() ColStats {
	return ColStats{Min: float32(math.Inf(1)), Max: float32(math.Inf(-1))}
}

func (st *ColStats) observe(v float32) {
	switch {
	case v != v:
		st.NaN++
	case float64(v) == math.Inf(1):
		st.PosInf++
	case float64(v) == math.Inf(-1):
		st.NegInf++
	default:
		st.Finite++
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
}

// Rows reports how many rows the column has seen in total.
func (st ColStats) Rows() int64 { return st.Finite + st.NaN + st.PosInf + st.NegInf }

// Stratum is one sub-reservoir of the stratified variant: all rows whose
// stratify-column value equals Key, with an exact Count and a uniform
// sample of the full rows.
type Stratum struct {
	Key    float32
	Count  int64   // exact population of the stratum
	RowIDs []int64 // sampled row ids, len ≤ StratumCap
	Data   []float32
}

// Sample is a point-in-time snapshot of one intermediate's reservoir. The
// exported fields are what the MQSM codec persists; treat them as
// read-only outside this package.
type Sample struct {
	Cols []string
	Seen int64 // rows offered to the reservoir so far
	Cap  int
	Seed uint64
	// RNGState lets a streaming builder resume exactly where the
	// persisted sample left off.
	RNGState uint64

	Stats  []ColStats
	RowIDs []int64   // len k ≤ Cap: which rows are sampled
	Data   []float32 // k×C row-major sampled values

	StratifyCol    string
	StratumCap     int
	MaxStrata      int
	StrataOverflow bool
	Strata         []Stratum

	// Rank memoization: snapshots are logically immutable, so the first
	// quantile/top-k probe per column pays one sort and every later call
	// reuses it — the difference between interactive (~µs) and a fresh
	// O(k log k) per query. Guarded by rankMu; clone() and the codec start
	// fresh. (The mutex also makes Sample non-copyable under vet, which is
	// what keeps the memo coherent.)
	rankMu   sync.Mutex
	rankVals [][]float32 // per column: finite sampled values, ascending
	rankIdx  [][]int32   // per column: matching sample-row order
	rankMom  []moments   // per column: memoized colMoments
}

// moments is one memoized colMoments result.
type moments struct {
	mean, std float64
	k         int64
	ok        bool
}

// Rows returns k, the number of sampled rows.
func (s *Sample) Rows() int { return len(s.RowIDs) }

// Complete reports whether the sample holds every row seen — estimates
// are then exact and bounds zero.
func (s *Sample) Complete() bool { return int64(len(s.RowIDs)) >= s.Seen }

// ColIndex returns the index of the named column, or -1.
func (s *Sample) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Value returns the sampled value at (row, col) in the sample's own
// coordinates (row < Rows()).
func (s *Sample) Value(row, col int) float32 {
	return s.Data[row*len(s.Cols)+col]
}

// Bound confidence parameters: ln(2/δ) for two-sided Hoeffding-Serfling
// and ln(3/δ) for the empirical-Bernstein form, both at δ = 1e-4; rank
// (DKW-style) bounds use δ = 1e-3.
const (
	ln2OverDeltaMean = 9.903487552536127  // ln(2/1e-4)
	ln3OverDeltaMean = 10.308952660644293 // ln(3/1e-4)
	ln2OverDeltaRank = 7.600902459542082  // ln(2/1e-3)
)

// serflingFactor is 1-(k-1)/n, the without-replacement sharpening of the
// Hoeffding bound (Serfling 1974). k ≥ n collapses it to ~0 — by then the
// sample is the population.
func serflingFactor(k, n int64) float64 {
	if n <= 0 || k >= n {
		return 0
	}
	return 1 - float64(k-1)/float64(n)
}

// MeanBound returns the absolute error bound for a sample mean of k draws
// (without replacement) from n values spanning `width`, with sample
// standard deviation std: the tighter of Hoeffding-Serfling (range-based)
// and empirical Bernstein (variance-adaptive), each valid at δ = 1e-4.
func MeanBound(k, n int64, std, width float64) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	if k >= n || width == 0 {
		return 0
	}
	hs := width * math.Sqrt(serflingFactor(k, n)*ln2OverDeltaMean/(2*float64(k)))
	eb := std*math.Sqrt(2*ln3OverDeltaMean/float64(k)) + 3*width*ln3OverDeltaMean/float64(k)
	return math.Min(hs, eb)
}

// ProportionBound returns the absolute error bound for an estimated
// proportion from k of n rows (Hoeffding-Serfling, δ = 1e-4).
func ProportionBound(k, n int64) float64 {
	if k <= 0 {
		return 1
	}
	if k >= n {
		return 0
	}
	return math.Sqrt(serflingFactor(k, n) * ln2OverDeltaMean / (2 * float64(k)))
}

// RankBound returns the uniform CDF deviation bound (DKW with the
// Serfling without-replacement factor, δ = 1e-3): every sample rank is
// within this fraction of its true population rank.
func RankBound(k, n int64) float64 {
	if k <= 0 {
		return 1
	}
	if k >= n {
		return 0
	}
	return math.Sqrt(serflingFactor(k, n) * ln2OverDeltaRank / (2 * float64(k)))
}

// Estimate is one approximate scalar with its error bound.
type Estimate struct {
	Value float64
	// Bound is the absolute error bound at the package's confidence
	// level; 0 means exact, +Inf means the sample cannot say anything.
	Bound float64
	// K is the number of sampled values behind the estimate, N the exact
	// population they stand for.
	K int64
	N int64
}

// colMoments computes mean and (Bessel-corrected) standard deviation over
// the finite sampled values of a column.
func (s *Sample) colMoments(col int) (mean, std float64, k int64) {
	c := len(s.Cols)
	var sum float64
	for r := 0; r < len(s.RowIDs); r++ {
		v := float64(s.Data[r*c+col])
		if !math.IsInf(v, 0) && v == v {
			sum += v
			k++
		}
	}
	if k == 0 {
		return math.NaN(), 0, 0
	}
	mean = sum / float64(k)
	var ss float64
	for r := 0; r < len(s.RowIDs); r++ {
		v := float64(s.Data[r*c+col])
		if !math.IsInf(v, 0) && v == v {
			d := v - mean
			ss += d * d
		}
	}
	if k > 1 {
		std = math.Sqrt(ss / float64(k-1))
	}
	return mean, std, k
}

// rank returns the column's finite sampled values in ascending order
// (ties by ascending row id) plus the matching sample-row order, built
// once per column and memoized.
func (s *Sample) rank(col int) (vals []float32, idx []int32) {
	s.rankMu.Lock()
	defer s.rankMu.Unlock()
	if s.rankVals == nil {
		s.rankVals = make([][]float32, len(s.Cols))
		s.rankIdx = make([][]int32, len(s.Cols))
	}
	if s.rankVals[col] == nil {
		c := len(s.Cols)
		idx := make([]int32, 0, len(s.RowIDs))
		for r := 0; r < len(s.RowIDs); r++ {
			v := s.Data[r*c+col]
			if v == v && !math.IsInf(float64(v), 0) {
				idx = append(idx, int32(r))
			}
		}
		sort.Slice(idx, func(a, b int) bool {
			va, vb := s.Data[int(idx[a])*c+col], s.Data[int(idx[b])*c+col]
			if va != vb {
				return va < vb
			}
			return s.RowIDs[idx[a]] < s.RowIDs[idx[b]]
		})
		vals := make([]float32, len(idx))
		for i, r := range idx {
			vals[i] = s.Data[int(r)*c+col]
		}
		s.rankVals[col], s.rankIdx[col] = vals, idx
	}
	return s.rankVals[col], s.rankIdx[col]
}

// Moments returns the sample mean and standard deviation over the finite
// values of a column (NaN mean when none are sampled), memoized like the
// rank structures.
func (s *Sample) Moments(col int) (mean, std float64, k int64) {
	s.rankMu.Lock()
	if s.rankMom == nil {
		s.rankMom = make([]moments, len(s.Cols))
	}
	if m := s.rankMom[col]; m.ok {
		s.rankMu.Unlock()
		return m.mean, m.std, m.k
	}
	s.rankMu.Unlock()
	mean, std, k = s.colMoments(col)
	s.rankMu.Lock()
	s.rankMom[col] = moments{mean: mean, std: std, k: k, ok: true}
	s.rankMu.Unlock()
	return mean, std, k
}

// MeanEstimate estimates the mean of a column's finite values. The bound
// is 0 when the estimate is exact (constant column, or the sample holds
// every row) and +Inf when the population has finite values but the
// sample caught none.
func (s *Sample) MeanEstimate(col int) Estimate {
	st := s.Stats[col]
	n := st.Finite
	if n == 0 {
		return Estimate{Value: math.NaN()}
	}
	mean, std, k := s.Moments(col)
	if k == 0 {
		return Estimate{Value: math.NaN(), Bound: math.Inf(1), N: n}
	}
	if s.Complete() {
		return Estimate{Value: mean, K: k, N: n}
	}
	width := float64(st.Max) - float64(st.Min)
	return Estimate{Value: mean, Bound: MeanBound(k, n, std, width), K: k, N: n}
}

// RowValue pairs a real population row id with its sampled value.
type RowValue struct {
	Row   int64
	Value float32
}

// TopK returns the k largest (or smallest) finite sampled values of a
// column as real (row, value) pairs, best first, plus the rank bound:
// each returned row's true rank fraction is within that bound of its
// sample rank fraction. Returns fewer than k entries when the sample has
// fewer finite values.
func (s *Sample) TopK(col, k int, largest bool) ([]RowValue, float64) {
	vals, idx := s.rank(col)
	kFin := int64(len(vals))
	n := k
	if n > len(vals) {
		n = len(vals)
	}
	out := make([]RowValue, 0, n)
	if largest {
		// Walk equal-value groups from the top of the ascending order;
		// each group is already row-ascending, which is the tie order the
		// comparator promises.
		for i := len(vals); i > 0 && len(out) < n; {
			j := i
			for j > 0 && vals[j-1] == vals[i-1] {
				j--
			}
			for t := j; t < i && len(out) < n; t++ {
				out = append(out, RowValue{Row: s.RowIDs[idx[t]], Value: vals[t]})
			}
			i = j
		}
	} else {
		for t := 0; t < n; t++ {
			out = append(out, RowValue{Row: s.RowIDs[idx[t]], Value: vals[t]})
		}
	}
	bound := RankBound(kFin, s.Stats[col].Finite)
	if s.Complete() {
		bound = 0
	}
	return out, bound
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a column's finite
// values, plus the rank bound on the estimate's true rank fraction.
func (s *Sample) Quantile(col int, q float64) (float32, float64) {
	vals, _ := s.rank(col)
	if len(vals) == 0 {
		return float32(math.NaN()), 1
	}
	idx := int(q * float64(len(vals)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	bound := RankBound(int64(len(vals)), s.Stats[col].Finite)
	if s.Complete() {
		bound = 0
	}
	return vals[idx], bound
}

// Cell is one confusion-matrix cell estimate, in row units.
type Cell struct {
	Label float32
	Pred  float32
	Count float64
	// Bound is the absolute error bound on Count (per-cell, δ = 1e-4).
	Bound float64
}

// ConfusionEstimate is an approximate confusion matrix.
type ConfusionEstimate struct {
	Cells []Cell
	// Stratified reports whether the per-label sub-reservoirs answered
	// (tighter per-class bounds) or the uniform reservoir did.
	Stratified bool
	// SampledRows is the total sample size behind the estimate.
	SampledRows int64
	// MaxBound is the largest cell bound as a fraction of the total row
	// count — the number to compare against a requested maxError.
	MaxBound float64
}

// Confusion estimates the (label, pred) contingency table. When the
// sample is stratified on the label column, each label's cells are
// estimated from that stratum's sub-reservoir against its exact count;
// otherwise the uniform reservoir answers. Rows with NaN label or pred
// are excluded from cells (their mass is never attributed elsewhere).
func (s *Sample) Confusion(labelCol, predCol int) (*ConfusionEstimate, error) {
	if labelCol < 0 || labelCol >= len(s.Cols) || predCol < 0 || predCol >= len(s.Cols) {
		return nil, fmt.Errorf("sample: confusion columns out of range")
	}
	if s.Seen == 0 {
		return &ConfusionEstimate{}, nil
	}
	c := len(s.Cols)
	if s.StratifyCol != "" && s.StratifyCol == s.Cols[labelCol] && !s.StrataOverflow && len(s.Strata) > 0 && !s.Complete() {
		est := &ConfusionEstimate{Stratified: true}
		for _, str := range s.Strata {
			kS := int64(len(str.RowIDs))
			est.SampledRows += kS
			counts := map[float32]int64{}
			for r := int64(0); r < kS; r++ {
				p := str.Data[r*int64(c)+int64(predCol)]
				if p != p {
					continue
				}
				counts[p]++
			}
			pb := ProportionBound(kS, str.Count)
			for p, cnt := range counts {
				est.Cells = append(est.Cells, Cell{
					Label: str.Key,
					Pred:  p,
					Count: float64(str.Count) * float64(cnt) / float64(kS),
					Bound: float64(str.Count) * pb,
				})
			}
		}
		sortCells(est.Cells)
		for _, cell := range est.Cells {
			if b := cell.Bound / float64(s.Seen); b > est.MaxBound {
				est.MaxBound = b
			}
		}
		return est, nil
	}

	// Uniform path: cell proportions over the whole reservoir.
	k := int64(len(s.RowIDs))
	est := &ConfusionEstimate{SampledRows: k}
	if k == 0 {
		est.MaxBound = 1
		return est, nil
	}
	type key struct{ l, p float32 }
	counts := map[key]int64{}
	for r := int64(0); r < k; r++ {
		l := s.Data[r*int64(c)+int64(labelCol)]
		p := s.Data[r*int64(c)+int64(predCol)]
		if l != l || p != p {
			continue
		}
		counts[key{l, p}]++
	}
	pb := ProportionBound(k, s.Seen)
	if s.Complete() {
		pb = 0
	}
	for kk, cnt := range counts {
		est.Cells = append(est.Cells, Cell{
			Label: kk.l,
			Pred:  kk.p,
			Count: float64(s.Seen) * float64(cnt) / float64(k),
			Bound: float64(s.Seen) * pb,
		})
	}
	sortCells(est.Cells)
	est.MaxBound = pb
	return est, nil
}

// SortCells orders cells by (label, pred) — the canonical presentation
// order shared by the approximate and exact confusion paths.
func SortCells(cells []Cell) { sortCells(cells) }

func sortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Label != cells[j].Label {
			return cells[i].Label < cells[j].Label
		}
		return cells[i].Pred < cells[j].Pred
	})
}
