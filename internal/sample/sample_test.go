package sample

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// population generates n values from a named adversarial distribution —
// the shapes ISSUE 10's differential harness demands.
func population(t testing.TB, dist string, n int, rng *rand.Rand) []float32 {
	t.Helper()
	out := make([]float32, n)
	switch dist {
	case "uniform":
		for i := range out {
			out[i] = rng.Float32()
		}
	case "constant":
		for i := range out {
			out[i] = 42.5
		}
	case "heavytail":
		// Pareto-ish: u^-2 spans several orders of magnitude.
		for i := range out {
			u := rng.Float64()
			if u < 1e-6 {
				u = 1e-6
			}
			out[i] = float32(math.Pow(u, -2))
		}
	case "bimodal":
		for i := range out {
			if rng.Intn(2) == 0 {
				out[i] = -1000 + rng.Float32()
			} else {
				out[i] = 1000 + rng.Float32()
			}
		}
	case "nonfinite":
		for i := range out {
			switch rng.Intn(10) {
			case 0:
				out[i] = float32(math.NaN())
			case 1:
				out[i] = float32(math.Inf(1))
			case 2:
				out[i] = float32(math.Inf(-1))
			default:
				out[i] = rng.Float32()*200 - 100
			}
		}
	default:
		t.Fatalf("unknown distribution %q", dist)
	}
	return out
}

func exactMoments(vals []float32) (mean float64, finite int64, min, max float32) {
	min, max = float32(math.Inf(1)), float32(math.Inf(-1))
	var sum float64
	for _, v := range vals {
		if v != v || math.IsInf(float64(v), 0) {
			continue
		}
		sum += float64(v)
		finite++
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if finite == 0 {
		return math.NaN(), 0, min, max
	}
	return sum / float64(finite), finite, min, max
}

func buildFromColumn(vals []float32, cfg Config) *Sample {
	mb := NewMatrixBuilder([]string{"c0"}, len(vals), nil, cfg)
	mb.SetColumn(0, vals)
	return mb.Finish()
}

// TestMeanBoundsHold is the core differential guarantee: across every
// adversarial distribution and a spread of seeds, the reported mean bound
// always contains the exact mean.
func TestMeanBoundsHold(t *testing.T) {
	dists := []string{"uniform", "constant", "heavytail", "bimodal", "nonfinite"}
	for _, dist := range dists {
		for seed := uint64(1); seed <= 20; seed++ {
			rng := rand.New(rand.NewSource(int64(seed) * 7919))
			vals := population(t, dist, 20000, rng)
			s := buildFromColumn(vals, Config{Cap: 2048, Seed: seed})
			est := s.MeanEstimate(0)
			exact, finite, _, _ := exactMoments(vals)
			if est.N != finite {
				t.Fatalf("%s/seed%d: N=%d, exact finite=%d", dist, seed, est.N, finite)
			}
			if math.IsInf(est.Bound, 1) {
				continue // sample caught no finite values: caller must fall back
			}
			if err := math.Abs(est.Value - exact); err > est.Bound {
				t.Errorf("%s/seed%d: |%g-%g|=%g exceeds bound %g (k=%d n=%d)",
					dist, seed, est.Value, exact, err, est.Bound, est.K, est.N)
			}
		}
	}
}

func TestConstantColumnIsExact(t *testing.T) {
	vals := make([]float32, 5000)
	for i := range vals {
		vals[i] = -7.25
	}
	s := buildFromColumn(vals, Config{Cap: 128})
	est := s.MeanEstimate(0)
	if est.Bound != 0 || est.Value != -7.25 {
		t.Fatalf("constant column: est=%+v, want exact -7.25 with bound 0", est)
	}
}

func TestCompleteSampleIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := population(t, "uniform", 500, rng)
	s := buildFromColumn(vals, Config{Cap: 1024}) // cap > n
	if !s.Complete() {
		t.Fatal("sample with cap>n not complete")
	}
	est := s.MeanEstimate(0)
	exact, _, _, _ := exactMoments(vals)
	if est.Bound != 0 || math.Abs(est.Value-exact) > 1e-9 {
		t.Fatalf("complete sample: est=%+v, exact=%g", est, exact)
	}
	if _, bound := s.TopK(0, 5, true); bound != 0 {
		t.Fatalf("complete sample TopK bound = %g, want 0", bound)
	}
	if _, bound := s.Quantile(0, 0.5); bound != 0 {
		t.Fatalf("complete sample Quantile bound = %g, want 0", bound)
	}
}

func TestAllNonFinitePopulation(t *testing.T) {
	vals := make([]float32, 1000)
	for i := range vals {
		if i%2 == 0 {
			vals[i] = float32(math.NaN())
		} else {
			vals[i] = float32(math.Inf(1))
		}
	}
	s := buildFromColumn(vals, Config{Cap: 64})
	st := s.Stats[0]
	if st.Finite != 0 || st.NaN != 500 || st.PosInf != 500 {
		t.Fatalf("stats = %+v", st)
	}
	est := s.MeanEstimate(0)
	if !math.IsNaN(est.Value) || est.Bound != 0 {
		t.Fatalf("no-finite mean: est=%+v, want NaN value (undefined both ways)", est)
	}
}

// TestTopKRankBound checks the DKW-style guarantee: each returned row's
// true rank fraction is within the reported bound of its sample rank
// fraction.
func TestTopKRankBound(t *testing.T) {
	for _, dist := range []string{"uniform", "heavytail", "bimodal", "nonfinite"} {
		for seed := uint64(1); seed <= 10; seed++ {
			rng := rand.New(rand.NewSource(int64(seed)))
			vals := population(t, dist, 20000, rng)
			s := buildFromColumn(vals, Config{Cap: 4096, Seed: seed})
			const kTop = 20
			got, bound := s.TopK(0, kTop, true)
			if len(got) == 0 {
				continue
			}
			// Exact descending order of the finite population.
			finite := make([]float32, 0, len(vals))
			for _, v := range vals {
				if v == v && !math.IsInf(float64(v), 0) {
					finite = append(finite, v)
				}
			}
			sort.Slice(finite, func(i, j int) bool { return finite[i] > finite[j] })
			n := float64(len(finite))
			kFin := 0
			for r := 0; r < s.Rows(); r++ {
				v := s.Value(r, 0)
				if v == v && !math.IsInf(float64(v), 0) {
					kFin++
				}
			}
			for i, rv := range got {
				if vals[rv.Row] != rv.Value {
					t.Fatalf("%s/seed%d: returned row %d does not hold value %g", dist, seed, rv.Row, rv.Value)
				}
				trueRank := float64(sort.Search(len(finite), func(j int) bool { return finite[j] <= rv.Value }))
				sampleFrac := float64(i) / float64(kFin)
				if d := math.Abs(trueRank/n - sampleFrac); d > bound {
					t.Errorf("%s/seed%d: entry %d rank fraction off by %g > bound %g", dist, seed, i, d, bound)
				}
			}
		}
	}
}

func TestQuantileBound(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) * 31))
		vals := population(t, "heavytail", 20000, rng)
		s := buildFromColumn(vals, Config{Cap: 4096, Seed: seed})
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
			v, bound := s.Quantile(0, q)
			// The returned value's true CDF position must be within bound of q.
			var below, n int
			for _, x := range vals {
				if x != x || math.IsInf(float64(x), 0) {
					continue
				}
				n++
				if x <= v {
					below++
				}
			}
			truePos := float64(below) / float64(n)
			// Allow one sample-grid step of slack on top of the bound.
			slack := 1.0/float64(s.Rows()) + bound
			if d := truePos - q; math.Abs(d) > slack {
				t.Errorf("seed%d q=%g: true CDF pos %g off by %g > %g", seed, q, truePos, math.Abs(d), slack)
			}
		}
	}
}

// TestConfusionBoundsHold checks every estimated cell against the exact
// contingency table, for both the stratified and uniform paths.
func TestConfusionBoundsHold(t *testing.T) {
	for _, stratified := range []bool{true, false} {
		for seed := uint64(1); seed <= 10; seed++ {
			rng := rand.New(rand.NewSource(int64(seed) * 131))
			n := 20000
			labels := make([]float32, n)
			preds := make([]float32, n)
			for i := range labels {
				labels[i] = float32(rng.Intn(5))
				if rng.Float64() < 0.8 {
					preds[i] = labels[i] // mostly correct classifier
				} else {
					preds[i] = float32(rng.Intn(5))
				}
			}
			cfg := Config{Cap: 2048, StratumCap: 512, Seed: seed}
			if stratified {
				cfg.StratifyColumn = "label"
			}
			mb := NewMatrixBuilder([]string{"label", "pred"}, n, labels, cfg)
			mb.SetColumn(0, labels)
			mb.SetColumn(1, preds)
			s := mb.Finish()

			est, err := s.Confusion(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if est.Stratified != stratified {
				t.Fatalf("stratified=%v, want %v", est.Stratified, stratified)
			}
			exact := map[[2]float32]int64{}
			for i := range labels {
				exact[[2]float32{labels[i], preds[i]}]++
			}
			for _, cell := range est.Cells {
				want := float64(exact[[2]float32{cell.Label, cell.Pred}])
				if d := math.Abs(cell.Count - want); d > cell.Bound {
					t.Errorf("strat=%v seed=%d cell (%g,%g): |%g-%g|=%g > bound %g",
						stratified, seed, cell.Label, cell.Pred, cell.Count, want, d, cell.Bound)
				}
			}
			if est.MaxBound <= 0 || est.MaxBound > 1 {
				t.Fatalf("MaxBound = %g out of (0,1]", est.MaxBound)
			}
			// Stratified bounds should beat uniform for the same budget on
			// the dominant diagonal cells — spot-check tightness ordering.
			if stratified && est.MaxBound >= 1 {
				t.Fatalf("stratified MaxBound = %g, useless", est.MaxBound)
			}
		}
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	s := buildFromColumn(nil, Config{Cap: 8})
	if _, err := s.Confusion(0, 3); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	est, err := s.Confusion(0, 0)
	if err != nil || len(est.Cells) != 0 {
		t.Fatalf("empty sample confusion: %+v, %v", est, err)
	}
	// NaN labels/preds are excluded from cells.
	mb := NewMatrixBuilder([]string{"label", "pred"}, 4, nil, Config{Cap: 8})
	nan := float32(math.NaN())
	mb.SetColumn(0, []float32{1, nan, 1, 1})
	mb.SetColumn(1, []float32{1, 1, nan, 1})
	s2 := mb.Finish()
	est2, err := s2.Confusion(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(est2.Cells) != 1 || est2.Cells[0].Count != 2 {
		t.Fatalf("NaN exclusion: cells=%+v", est2.Cells)
	}
}

func TestBoundFunctions(t *testing.T) {
	if b := MeanBound(0, 100, 1, 1); !math.IsInf(b, 1) {
		t.Fatalf("k=0 mean bound = %g, want +Inf", b)
	}
	if b := MeanBound(100, 100, 1, 1); b != 0 {
		t.Fatalf("k=n mean bound = %g, want 0", b)
	}
	if b := MeanBound(50, 100, 1, 0); b != 0 {
		t.Fatalf("zero-width mean bound = %g, want 0", b)
	}
	if b := ProportionBound(0, 100); b != 1 {
		t.Fatalf("k=0 proportion bound = %g, want 1", b)
	}
	if b := ProportionBound(100, 100); b != 0 {
		t.Fatalf("k=n proportion bound = %g, want 0", b)
	}
	if b := RankBound(0, 10); b != 1 {
		t.Fatalf("k=0 rank bound = %g, want 1", b)
	}
	if b := RankBound(10, 10); b != 0 {
		t.Fatalf("k=n rank bound = %g, want 0", b)
	}
	// More samples → tighter bounds, monotonically.
	if MeanBound(1000, 100000, 1, 10) >= MeanBound(100, 100000, 1, 10) {
		t.Fatal("mean bound not monotone in k")
	}
	if ProportionBound(1000, 100000) >= ProportionBound(100, 100000) {
		t.Fatal("proportion bound not monotone in k")
	}
}

// TestDefaultCapMeetsOnePercent pins the sizing claim the engine's
// SLA story rests on: at the default cap over a 100k-row uniform column,
// the mean bound lands under 1% of the value range.
func TestDefaultCapMeetsOnePercent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vals := population(t, "uniform", 100000, rng)
	s := buildFromColumn(vals, Config{})
	est := s.MeanEstimate(0)
	width := float64(s.Stats[0].Max - s.Stats[0].Min)
	if est.Bound >= 0.01*width {
		t.Fatalf("default-cap bound %g ≥ 1%% of range %g", est.Bound, width)
	}
	if _, bound := s.TopK(0, 10, true); bound >= 0.01 {
		t.Fatalf("default-cap rank bound %g ≥ 1%%", bound)
	}
}

func TestColStatsAndAccessors(t *testing.T) {
	vals := []float32{1, 2, float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), 3}
	s := buildFromColumn(vals, Config{Cap: 16})
	st := s.Stats[0]
	if st.Finite != 3 || st.NaN != 1 || st.PosInf != 1 || st.NegInf != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Min != 1 || st.Max != 3 {
		t.Fatalf("min/max = %g/%g", st.Min, st.Max)
	}
	if st.Rows() != 6 {
		t.Fatalf("Rows() = %d", st.Rows())
	}
	if s.ColIndex("c0") != 0 || s.ColIndex("nope") != -1 {
		t.Fatal("ColIndex broken")
	}
	if s.Rows() != 6 || s.Value(5, 0) != 3 {
		t.Fatalf("accessors: rows=%d", s.Rows())
	}
	mean, std, k := s.Moments(0)
	if k != 3 || mean != 2 || std != 1 {
		t.Fatalf("moments = %g/%g/%d", mean, std, k)
	}
}
