package sample

import (
	"fmt"
	"math"
	"sync"
)

// splitmix is the deterministic RNG behind row selection (splitmix64).
// Its single-word state is what Sample.RNGState persists, so a resumed
// builder continues the exact sequence.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform draw in [0, n). The modulo bias at 64-bit state
// is far below anything the bounds can feel.
func (r *splitmix) intn(n int64) int64 { return int64(r.next() % uint64(n)) }

// Builder maintains a Sample incrementally, one row at a time — the
// streaming ingest path's sampler. Safe for concurrent use.
type Builder struct {
	mu       sync.Mutex
	s        *Sample
	rng      splitmix
	stratIdx int             // index of StratifyColumn in Cols, -1 when off
	strata   map[uint32]int  // float32 bits of label → index into s.Strata
}

// NewBuilder starts an empty sample over the named columns.
func NewBuilder(cols []string, cfg Config) *Builder {
	cfg = cfg.withDefaults()
	s := &Sample{
		Cols:        append([]string(nil), cols...),
		Cap:         cfg.Cap,
		Seed:        cfg.Seed,
		RNGState:    cfg.Seed,
		Stats:       make([]ColStats, len(cols)),
		StratifyCol: cfg.StratifyColumn,
		StratumCap:  cfg.StratumCap,
		MaxStrata:   cfg.MaxStrata,
	}
	for i := range s.Stats {
		s.Stats[i] = newColStats()
	}
	return newBuilderFor(s)
}

// Resume continues a builder from a persisted sample (e.g. after a WAL
// replay); the row-selection sequence picks up exactly where the
// snapshot's RNGState left off. The builder owns s from here on.
func Resume(s *Sample) *Builder {
	return newBuilderFor(s)
}

func newBuilderFor(s *Sample) *Builder {
	b := &Builder{s: s, rng: splitmix{s.RNGState}, stratIdx: -1}
	if s.StratifyCol != "" && !s.StrataOverflow {
		b.stratIdx = s.ColIndex(s.StratifyCol)
	}
	if b.stratIdx >= 0 {
		b.strata = make(map[uint32]int, len(s.Strata))
		for i := range s.Strata {
			b.strata[math.Float32bits(s.Strata[i].Key)] = i
		}
	}
	return b
}

// Seen returns how many rows the builder has consumed.
func (b *Builder) Seen() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.s.Seen
}

// Add offers one row (len(vals) must equal the column count).
func (b *Builder) Add(vals []float32) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.s
	if len(vals) != len(s.Cols) {
		return fmt.Errorf("sample: row has %d values, want %d", len(vals), len(s.Cols))
	}
	row := s.Seen
	c := len(s.Cols)

	// Uniform reservoir (Algorithm R).
	if len(s.RowIDs) < s.Cap {
		s.RowIDs = append(s.RowIDs, row)
		s.Data = append(s.Data, vals...)
	} else if j := b.rng.intn(row + 1); j < int64(s.Cap) {
		s.RowIDs[j] = row
		copy(s.Data[j*int64(c):(j+1)*int64(c)], vals)
	}

	for i, v := range vals {
		s.Stats[i].observe(v)
	}

	if b.stratIdx >= 0 {
		b.addStratum(row, vals)
	}
	s.Seen++
	s.RNGState = b.rng.s
	return nil
}

func (b *Builder) addStratum(row int64, vals []float32) {
	s := b.s
	lab := vals[b.stratIdx]
	if lab != lab { // NaN labels belong to no stratum
		return
	}
	bits := math.Float32bits(lab)
	idx, ok := b.strata[bits]
	if !ok {
		if len(s.Strata) >= s.MaxStrata {
			// Too many classes: abandon the stratified variant (uniform
			// sampling keeps working; confusion falls back to it).
			s.StrataOverflow = true
			s.Strata = nil
			b.strata = nil
			b.stratIdx = -1
			return
		}
		idx = len(s.Strata)
		s.Strata = append(s.Strata, Stratum{Key: lab})
		b.strata[bits] = idx
	}
	str := &s.Strata[idx]
	c := len(s.Cols)
	if len(str.RowIDs) < s.StratumCap {
		str.RowIDs = append(str.RowIDs, row)
		str.Data = append(str.Data, vals...)
	} else if j := b.rng.intn(str.Count + 1); j < int64(s.StratumCap) {
		str.RowIDs[j] = row
		copy(str.Data[j*int64(c):(j+1)*int64(c)], vals)
	}
	str.Count++
}

// Snapshot returns a deep copy safe to persist or query while the builder
// keeps ingesting.
func (b *Builder) Snapshot() *Sample {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.s.clone()
}

func (s *Sample) clone() *Sample {
	// Field-by-field, not a struct copy: Sample carries a rank-memo mutex,
	// and a clone starts with a fresh (empty) memo anyway.
	cp := &Sample{
		Cols:           append([]string(nil), s.Cols...),
		Seen:           s.Seen,
		Cap:            s.Cap,
		Seed:           s.Seed,
		RNGState:       s.RNGState,
		Stats:          append([]ColStats(nil), s.Stats...),
		RowIDs:         append([]int64(nil), s.RowIDs...),
		Data:           append([]float32(nil), s.Data...),
		StratifyCol:    s.StratifyCol,
		StratumCap:     s.StratumCap,
		MaxStrata:      s.MaxStrata,
		StrataOverflow: s.StrataOverflow,
	}
	if s.Strata == nil {
		return cp
	}
	cp.Strata = make([]Stratum, len(s.Strata))
	for i, str := range s.Strata {
		cp.Strata[i] = Stratum{
			Key:    str.Key,
			Count:  str.Count,
			RowIDs: append([]int64(nil), str.RowIDs...),
			Data:   append([]float32(nil), str.Data...),
		}
	}
	return cp
}

// MatrixBuilder builds the same sample a Builder would, but from columnar
// input: the row-selection plan is computed up front (it is
// value-independent), after which SetColumn calls fill disjoint slices
// and may run concurrently — one call per column, e.g. under
// parallel.ForEach in the ingest path.
type MatrixBuilder struct {
	s *Sample
	// plan[row] is the row's final slot in the uniform reservoir, -1 when
	// not sampled; strIdx/strSlot likewise for the stratified variant.
	plan    []int32
	strIdx  []int32
	strSlot []int32
}

// NewMatrixBuilder plans a sample over n rows of the named columns.
// labels carries the stratify column's values (nil disables the
// stratified variant regardless of config). The plan replays the exact
// per-row decision sequence a streaming Builder makes, so batch and
// stream ingest of the same rows produce identical samples.
func NewMatrixBuilder(cols []string, n int, labels []float32, cfg Config) *MatrixBuilder {
	cfg = cfg.withDefaults()
	if labels != nil && len(labels) != n {
		labels = nil
	}
	s := &Sample{
		Cols:        append([]string(nil), cols...),
		Cap:         cfg.Cap,
		Seed:        cfg.Seed,
		RNGState:    cfg.Seed,
		Stats:       make([]ColStats, len(cols)),
		StratifyCol: cfg.StratifyColumn,
		StratumCap:  cfg.StratumCap,
		MaxStrata:   cfg.MaxStrata,
	}
	for i := range s.Stats {
		s.Stats[i] = newColStats()
	}
	stratOn := labels != nil && cfg.StratifyColumn != ""
	if !stratOn {
		s.StratifyCol = ""
	}

	mb := &MatrixBuilder{s: s, plan: make([]int32, n)}
	rng := splitmix{s.Seed}
	c := len(cols)

	// Simulate the uniform reservoir: slotOwner[slot] = final occupant.
	k := n
	if k > s.Cap {
		k = s.Cap
	}
	slotOwner := make([]int32, 0, k)
	type stratState struct {
		key    float32
		count  int64
		owners []int32
	}
	var strata []stratState
	strataByBits := map[uint32]int{}
	if stratOn {
		mb.strIdx = make([]int32, n)
		mb.strSlot = make([]int32, n)
	}
	for row := 0; row < n; row++ {
		if len(slotOwner) < s.Cap {
			slotOwner = append(slotOwner, int32(row))
		} else if j := rng.intn(int64(row) + 1); j < int64(s.Cap) {
			slotOwner[j] = int32(row)
		}
		if stratOn {
			lab := labels[row]
			if lab != lab {
				continue
			}
			bits := math.Float32bits(lab)
			idx, ok := strataByBits[bits]
			if !ok {
				if len(strata) >= cfg.MaxStrata {
					s.StrataOverflow = true
					strata, strataByBits = nil, nil
					stratOn = false
					mb.strIdx, mb.strSlot = nil, nil
					continue
				}
				idx = len(strata)
				strata = append(strata, stratState{key: lab})
				strataByBits[bits] = idx
			}
			st := &strata[idx]
			if len(st.owners) < cfg.StratumCap {
				st.owners = append(st.owners, int32(row))
			} else if j := rng.intn(st.count + 1); j < int64(cfg.StratumCap) {
				st.owners[j] = int32(row)
			}
			st.count++
		}
	}
	s.RNGState = rng.s
	s.Seen = int64(n)

	// Invert slot ownership into per-row plans and allocate the sample.
	for i := range mb.plan {
		mb.plan[i] = -1
	}
	s.RowIDs = make([]int64, len(slotOwner))
	s.Data = make([]float32, len(slotOwner)*c)
	for slot, row := range slotOwner {
		mb.plan[row] = int32(slot)
		s.RowIDs[slot] = int64(row)
	}
	if mb.strIdx != nil {
		for i := range mb.strIdx {
			mb.strIdx[i], mb.strSlot[i] = -1, -1
		}
		s.Strata = make([]Stratum, len(strata))
		for si, st := range strata {
			s.Strata[si] = Stratum{
				Key:    st.key,
				Count:  st.count,
				RowIDs: make([]int64, len(st.owners)),
				Data:   make([]float32, len(st.owners)*c),
			}
			for slot, row := range st.owners {
				mb.strIdx[row] = int32(si)
				mb.strSlot[row] = int32(slot)
				s.Strata[si].RowIDs[slot] = int64(row)
			}
		}
	}
	return mb
}

// SetColumn fills column j from its full n-row value slice. Each call
// touches only column-j slots of the sample (and its own Stats entry), so
// distinct columns may be set concurrently.
func (mb *MatrixBuilder) SetColumn(j int, vals []float32) {
	s := mb.s
	c := len(s.Cols)
	st := newColStats()
	for row, v := range vals {
		st.observe(v)
		if slot := mb.plan[row]; slot >= 0 {
			s.Data[int(slot)*c+j] = v
		}
		if mb.strIdx != nil {
			if si := mb.strIdx[row]; si >= 0 {
				s.Strata[si].Data[int(mb.strSlot[row])*c+j] = v
			}
		}
	}
	s.Stats[j] = st
}

// Finish returns the completed sample. The builder must not be used
// afterwards.
func (mb *MatrixBuilder) Finish() *Sample { return mb.s }
