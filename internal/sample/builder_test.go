package sample

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestStreamMatchesBatch(t *testing.T) {
	// The same rows through a streaming Builder and a MatrixBuilder must
	// produce byte-identical samples — the plan replays the same decision
	// sequence.
	rng := rand.New(rand.NewSource(5))
	const n, c = 7000, 3
	rows := make([][]float32, n)
	colA := make([]float32, n)
	colB := make([]float32, n)
	labels := make([]float32, n)
	for i := range rows {
		labels[i] = float32(rng.Intn(4))
		colA[i] = rng.Float32()
		colB[i] = float32(rng.NormFloat64())
		rows[i] = []float32{labels[i], colA[i], colB[i]}
	}
	cfg := Config{Cap: 512, StratumCap: 96, Seed: 42, StratifyColumn: "label"}

	b := NewBuilder([]string{"label", "a", "b"}, cfg)
	for _, r := range rows {
		if err := b.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	stream := b.Snapshot()

	mb := NewMatrixBuilder([]string{"label", "a", "b"}, n, labels, cfg)
	mb.SetColumn(0, labels)
	mb.SetColumn(1, colA)
	mb.SetColumn(2, colB)
	batch := mb.Finish()

	if !reflect.DeepEqual(stream, batch) {
		t.Fatalf("stream and batch samples diverge:\nstream: seen=%d k=%d strata=%d rng=%x\nbatch:  seen=%d k=%d strata=%d rng=%x",
			stream.Seen, stream.Rows(), len(stream.Strata), stream.RNGState,
			batch.Seen, batch.Rows(), len(batch.Strata), batch.RNGState)
	}
}

func TestResumeContinuesSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 5000
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = []float32{float32(rng.Intn(3)), rng.Float32()}
	}
	cfg := Config{Cap: 256, StratumCap: 64, Seed: 7, StratifyColumn: "y"}
	cols := []string{"y", "x"}

	whole := NewBuilder(cols, cfg)
	for _, r := range rows {
		whole.Add(r)
	}

	// Same stream, snapshotted and resumed mid-way (the crash/replay path).
	first := NewBuilder(cols, cfg)
	for _, r := range rows[:n/3] {
		first.Add(r)
	}
	resumed := Resume(first.Snapshot())
	if resumed.Seen() != int64(n/3) {
		t.Fatalf("resumed Seen = %d", resumed.Seen())
	}
	for _, r := range rows[n/3:] {
		resumed.Add(r)
	}
	if !reflect.DeepEqual(whole.Snapshot(), resumed.Snapshot()) {
		t.Fatal("resumed builder diverged from uninterrupted one")
	}
}

func TestBuilderRejectsBadRow(t *testing.T) {
	b := NewBuilder([]string{"a", "b"}, Config{Cap: 4})
	if err := b.Add([]float32{1}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := b.Add([]float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if b.Seen() != 1 {
		t.Fatalf("Seen = %d", b.Seen())
	}
}

func TestStrataOverflowFallsBack(t *testing.T) {
	cfg := Config{Cap: 128, StratumCap: 8, MaxStrata: 4, StratifyColumn: "y"}
	b := NewBuilder([]string{"y"}, cfg)
	for i := 0; i < 100; i++ {
		b.Add([]float32{float32(i % 10)}) // 10 classes > MaxStrata 4
	}
	s := b.Snapshot()
	if !s.StrataOverflow || len(s.Strata) != 0 {
		t.Fatalf("overflow=%v strata=%d, want overflow with no strata", s.StrataOverflow, len(s.Strata))
	}
	// Confusion still answers from the uniform reservoir.
	est, err := s.Confusion(0, 0)
	if err != nil || est.Stratified {
		t.Fatalf("overflowed confusion: %+v, %v", est, err)
	}

	// MatrixBuilder takes the same fallback.
	labels := make([]float32, 100)
	for i := range labels {
		labels[i] = float32(i % 10)
	}
	mb := NewMatrixBuilder([]string{"y"}, 100, labels, cfg)
	mb.SetColumn(0, labels)
	s2 := mb.Finish()
	if !reflect.DeepEqual(s, s2) {
		t.Fatal("overflow behavior differs between stream and batch")
	}
}

func TestNaNLabelSkipsStrata(t *testing.T) {
	cfg := Config{Cap: 32, StratumCap: 8, StratifyColumn: "y"}
	b := NewBuilder([]string{"y"}, cfg)
	nan := float32(math.NaN())
	b.Add([]float32{1})
	b.Add([]float32{nan})
	b.Add([]float32{1})
	s := b.Snapshot()
	if len(s.Strata) != 1 || s.Strata[0].Count != 2 {
		t.Fatalf("strata = %+v", s.Strata)
	}
}

func TestStratumReservoirStaysUniformish(t *testing.T) {
	// Sanity: per-stratum exact counts match the population and the
	// reservoirs respect StratumCap.
	rng := rand.New(rand.NewSource(3))
	cfg := Config{Cap: 64, StratumCap: 16, StratifyColumn: "y"}
	b := NewBuilder([]string{"y"}, cfg)
	want := map[float32]int64{}
	for i := 0; i < 3000; i++ {
		lab := float32(rng.Intn(3))
		want[lab]++
		b.Add([]float32{lab})
	}
	s := b.Snapshot()
	if len(s.Strata) != 3 {
		t.Fatalf("strata = %d", len(s.Strata))
	}
	for _, str := range s.Strata {
		if str.Count != want[str.Key] {
			t.Fatalf("stratum %g count %d, want %d", str.Key, str.Count, want[str.Key])
		}
		if len(str.RowIDs) != 16 {
			t.Fatalf("stratum %g sampled %d rows, want cap 16", str.Key, len(str.RowIDs))
		}
		// Sampled values really belong to the stratum.
		for r := range str.RowIDs {
			if str.Data[r] != str.Key {
				t.Fatalf("stratum %g holds foreign value %g", str.Key, str.Data[r])
			}
		}
	}
}

func TestReservoirIsUnbiased(t *testing.T) {
	// Over many seeds, each row's inclusion frequency should be close to
	// cap/n — a loose sanity check that Algorithm R is wired right.
	const n, cap, trials = 200, 50, 400
	hits := make([]int, n)
	for seed := uint64(1); seed <= trials; seed++ {
		vals := make([]float32, n)
		s := buildFromColumn(vals, Config{Cap: cap, Seed: seed})
		for _, id := range s.RowIDs {
			hits[id]++
		}
	}
	want := float64(cap) / float64(n) * trials // = 100
	for i, h := range hits {
		if float64(h) < want*0.6 || float64(h) > want*1.4 {
			t.Fatalf("row %d sampled %d times, want ≈%.0f", i, h, want)
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	b := NewBuilder([]string{"y", "x"}, Config{Cap: 8, StratumCap: 4, StratifyColumn: "y"})
	for i := 0; i < 20; i++ {
		b.Add([]float32{float32(i % 2), float32(i)})
	}
	snap := b.Snapshot()
	before := append([]float32(nil), snap.Data...)
	for i := 20; i < 200; i++ {
		b.Add([]float32{float32(i % 2), float32(i)})
	}
	if !reflect.DeepEqual(before, snap.Data) {
		t.Fatal("snapshot mutated by later Adds")
	}
}
