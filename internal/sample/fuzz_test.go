package sample

import (
	"testing"
)

// FuzzSampleDecode hammers the MQSM decoder: it must never panic, and any
// image it accepts must re-encode to an image that decodes identically.
func FuzzSampleDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(magicMQSM[:])
	b := NewBuilder([]string{"a", "b"}, Config{Cap: 8, StratumCap: 4, StratifyColumn: "a"})
	for i := 0; i < 30; i++ {
		b.Add([]float32{float32(i % 3), float32(i)})
	}
	f.Add(Encode("m", "i", b.Snapshot()))
	f.Add(Encode("", "", b.Snapshot()))

	f.Fuzz(func(t *testing.T, data []byte) {
		model, interm, s, err := Decode(data)
		if err != nil {
			return
		}
		img := Encode(model, interm, s)
		m2, i2, s2, err2 := Decode(img)
		if err2 != nil {
			t.Fatalf("re-encode of accepted image rejected: %v", err2)
		}
		if m2 != model || i2 != interm {
			t.Fatalf("identity changed: %q/%q vs %q/%q", m2, i2, model, interm)
		}
		if s2.Seen != s.Seen || s2.Rows() != s.Rows() || len(s2.Strata) != len(s.Strata) {
			t.Fatal("shape changed across re-encode")
		}
		// Accepted samples must also be safe to query.
		if len(s.Cols) > 0 && s.Rows() > 0 {
			s.MeanEstimate(0)
			s.TopK(0, 3, true)
		}
	})
}
