package pipeline

import (
	"fmt"
	"time"

	"mistique/internal/frame"
)

// StageSpec declares one pipeline stage.
type StageSpec struct {
	// Name uniquely identifies the stage within the pipeline.
	Name string
	// Op is the registered transformer type.
	Op string
	// Inputs are names of outputs of earlier stages.
	Inputs []string
	// Outputs names the frames this stage produces; defaults to [Name].
	Outputs []string
	// Params configure the op.
	Params map[string]any
}

// Spec declares a whole pipeline.
type Spec struct {
	Name   string
	Stages []StageSpec
}

type stage struct {
	spec StageSpec
	op   Op
}

// Pipeline is an instantiated, runnable pipeline. Fitted transformer state
// lives inside the stage ops, so a pipeline logged once can be re-run
// (transform-only) at query time.
type Pipeline struct {
	Name   string
	stages []*stage
	fitted bool
}

// New instantiates a pipeline from its spec, validating op names and
// dataflow (every input must be produced by an earlier stage).
func New(spec Spec) (*Pipeline, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("pipeline: spec needs a name")
	}
	p := &Pipeline{Name: spec.Name}
	produced := map[string]bool{}
	seen := map[string]bool{}
	for i, ss := range spec.Stages {
		if ss.Name == "" {
			return nil, fmt.Errorf("pipeline %s: stage %d has no name", spec.Name, i)
		}
		if seen[ss.Name] {
			return nil, fmt.Errorf("pipeline %s: duplicate stage %q", spec.Name, ss.Name)
		}
		seen[ss.Name] = true
		factory, ok := opRegistry[ss.Op]
		if !ok {
			return nil, fmt.Errorf("pipeline %s: stage %q: unknown op %q", spec.Name, ss.Name, ss.Op)
		}
		for _, in := range ss.Inputs {
			if !produced[in] {
				return nil, fmt.Errorf("pipeline %s: stage %q input %q not produced by an earlier stage", spec.Name, ss.Name, in)
			}
		}
		if len(ss.Outputs) == 0 {
			ss.Outputs = []string{ss.Name}
		}
		op, err := factory(ss.Params)
		if err != nil {
			return nil, fmt.Errorf("pipeline %s: stage %q: %w", spec.Name, ss.Name, err)
		}
		if po, ok := op.(*predictOp); ok {
			po.resolve = p.resolvePredictor
		}
		for _, out := range ss.Outputs {
			produced[out] = true
		}
		p.stages = append(p.stages, &stage{spec: ss, op: op})
	}
	if len(p.stages) == 0 {
		return nil, fmt.Errorf("pipeline %s: no stages", spec.Name)
	}
	return p, nil
}

func (p *Pipeline) resolvePredictor(stageName string) (predictor, error) {
	for _, s := range p.stages {
		if s.spec.Name == stageName {
			if pr, ok := s.op.(predictor); ok {
				return pr, nil
			}
			return nil, fmt.Errorf("pipeline %s: stage %q is not a model stage", p.Name, stageName)
		}
	}
	return nil, fmt.Errorf("pipeline %s: no stage %q", p.Name, stageName)
}

// NumStages returns the stage count.
func (p *Pipeline) NumStages() int { return len(p.stages) }

// StageNames returns stage names in execution order.
func (p *Pipeline) StageNames() []string {
	out := make([]string, len(p.stages))
	for i, s := range p.stages {
		out[i] = s.spec.Name
	}
	return out
}

// Bind attaches environment tables to the pipeline's read_table stages and
// optionally caps the rows they emit (limit <= 0 means all rows; caps are
// how scaled re-runs model n_ex < TOTAL_EXAMPLES).
func (p *Pipeline) Bind(env map[string]*frame.Frame, limit int) error {
	for _, s := range p.stages {
		rt, ok := s.op.(*readTable)
		if !ok {
			continue
		}
		f, ok := env[rt.table]
		if !ok {
			return fmt.Errorf("pipeline %s: stage %q: no table %q in environment", p.Name, s.spec.Name, rt.table)
		}
		rt.env = f
		rt.limit = limit
	}
	return nil
}

// StageResult records one executed stage.
type StageResult struct {
	Name    string
	Op      string
	Seconds float64
	// Outputs pairs each declared output name with the produced frame.
	Outputs []NamedFrame
}

// NamedFrame is an intermediate: a named dataframe.
type NamedFrame struct {
	Name  string
	Frame *frame.Frame
}

// RunResult is a full pipeline execution trace.
type RunResult struct {
	Pipeline string
	Stages   []StageResult
}

// Intermediate returns the named intermediate from the trace, or nil.
func (r *RunResult) Intermediate(name string) *frame.Frame {
	for _, s := range r.Stages {
		for _, o := range s.Outputs {
			if o.Name == name {
				return o.Frame
			}
		}
	}
	return nil
}

// IntermediateNames lists all produced intermediates in order.
func (r *RunResult) IntermediateNames() []string {
	var out []string
	for _, s := range r.Stages {
		for _, o := range s.Outputs {
			out = append(out, o.Name)
		}
	}
	return out
}

// Run executes the full pipeline. The first Run fits transformer state;
// subsequent runs are transform-only re-executions of the stored
// transformers (RERUN in the cost model).
func (p *Pipeline) Run() (*RunResult, error) {
	return p.RunTo(len(p.stages) - 1)
}

// RunTo executes stages [0, upTo] and returns their trace.
func (p *Pipeline) RunTo(upTo int) (*RunResult, error) {
	if upTo < 0 || upTo >= len(p.stages) {
		return nil, fmt.Errorf("pipeline %s: RunTo(%d) out of range", p.Name, upTo)
	}
	fit := !p.fitted
	res := &RunResult{Pipeline: p.Name}
	frames := map[string]*frame.Frame{}
	for i := 0; i <= upTo; i++ {
		s := p.stages[i]
		inputs := make([]*frame.Frame, len(s.spec.Inputs))
		for j, in := range s.spec.Inputs {
			f, ok := frames[in]
			if !ok {
				return nil, fmt.Errorf("pipeline %s: stage %q: input %q not available", p.Name, s.spec.Name, in)
			}
			inputs[j] = f
		}
		start := time.Now()
		outs, err := s.op.Apply(inputs, fit)
		if err != nil {
			return nil, fmt.Errorf("pipeline %s: stage %q: %w", p.Name, s.spec.Name, err)
		}
		elapsed := time.Since(start).Seconds()
		if len(outs) != len(s.spec.Outputs) {
			return nil, fmt.Errorf("pipeline %s: stage %q produced %d outputs, declared %d",
				p.Name, s.spec.Name, len(outs), len(s.spec.Outputs))
		}
		sr := StageResult{Name: s.spec.Name, Op: s.spec.Op, Seconds: elapsed}
		for j, f := range outs {
			name := s.spec.Outputs[j]
			frames[name] = f
			sr.Outputs = append(sr.Outputs, NamedFrame{Name: name, Frame: f})
		}
		res.Stages = append(res.Stages, sr)
	}
	if fit && upTo == len(p.stages)-1 {
		p.fitted = true
	}
	return res, nil
}
