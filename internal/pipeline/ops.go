// Package pipeline implements MISTIQUE's PipelineExecutor substrate for
// traditional (TRAD) ML pipelines: a library of scikit-learn-style
// transformer ops, a staged executor that records every intermediate it
// produces, and a YAML-subset specification format (modeled, like the
// paper's, after Airflow-style configs) for declaring pipelines.
//
// Each stage fits its transformer on the first (logging) run and stores the
// fitted state; later re-runs — the RERUN strategy of the cost model —
// execute the stored transformers without refitting, matching Eq. 2's
// "read transformer, read input, execute" decomposition.
package pipeline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"mistique/internal/frame"
)

// Op is a pipeline transformer. Apply consumes input frames and produces
// one or more output frames. fit is true on the logging run (the op may
// learn state, e.g. category vocabularies, means, model weights) and false
// on re-runs, which must reuse the stored state.
type Op interface {
	// Apply transforms inputs into outputs. The number of outputs must
	// match the stage's declared output names.
	Apply(inputs []*frame.Frame, fit bool) ([]*frame.Frame, error)
}

// predictor is implemented by train ops so predict stages can find them.
type predictor interface {
	predictFrame(f *frame.Frame) (*frame.Frame, error)
}

// opFactory builds an op from stage params.
type opFactory func(params map[string]any) (Op, error)

var opRegistry = map[string]opFactory{
	"read_table":           newReadTable,
	"join":                 newJoin,
	"select_columns":       newSelectColumns,
	"drop_columns":         newDropColumns,
	"onehot":               newOneHot,
	"fillna":               newFillNA,
	"scale":                newScale,
	"group_avg":            newGroupAvg,
	"construction_recency": newConstructionRecency,
	"neighborhood":         newNeighborhood,
	"is_residential":       newIsResidential,
	"split":                newSplit,
	"train_xgb":            newTrainXGB,
	"train_lgbm":           newTrainLGBM,
	"train_elastic":        newTrainElastic,
	"predict":              newPredict,
	"blend":                newBlend,
	"log_transform":        newLogTransform,
	"clip":                 newClip,
	"select_k_best":        newSelectKBest,
}

// Ops returns the registered op names (sorted), for diagnostics.
func Ops() []string {
	out := make([]string, 0, len(opRegistry))
	for k := range opRegistry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- param helpers ----

func pStr(params map[string]any, key string) (string, error) {
	v, ok := params[key]
	if !ok {
		return "", fmt.Errorf("pipeline: missing param %q", key)
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("pipeline: param %q is %T, want string", key, v)
	}
	return s, nil
}

func pStrDefault(params map[string]any, key, def string) string {
	if v, ok := params[key].(string); ok {
		return v
	}
	return def
}

func pFloatDefault(params map[string]any, key string, def float64) float64 {
	switch v := params[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	}
	return def
}

func pIntDefault(params map[string]any, key string, def int) int {
	switch v := params[key].(type) {
	case int:
		return v
	case int64:
		return int(v)
	case float64:
		return int(v)
	}
	return def
}

func pStrList(params map[string]any, key string) ([]string, error) {
	v, ok := params[key]
	if !ok {
		return nil, fmt.Errorf("pipeline: missing param %q", key)
	}
	switch list := v.(type) {
	case []any:
		out := make([]string, len(list))
		for i, e := range list {
			s, ok := e.(string)
			if !ok {
				return nil, fmt.Errorf("pipeline: param %q element %d is %T", key, i, e)
			}
			out[i] = s
		}
		return out, nil
	case []string:
		return list, nil
	case string:
		return []string{list}, nil
	}
	return nil, fmt.Errorf("pipeline: param %q is %T, want list", key, v)
}

func one(f *frame.Frame) []*frame.Frame { return []*frame.Frame{f} }

func needInputs(inputs []*frame.Frame, n int, op string) error {
	if len(inputs) != n {
		return fmt.Errorf("pipeline: %s needs %d inputs, got %d", op, n, len(inputs))
	}
	return nil
}

// ---- read_table ----

// readTable pulls a named table from the execution environment. The
// environment table is injected by the executor before Apply runs.
type readTable struct {
	table string
	env   *frame.Frame // set by the executor
	limit int          // optional row cap for scaled re-runs
}

func newReadTable(params map[string]any) (Op, error) {
	t, err := pStr(params, "table")
	if err != nil {
		return nil, err
	}
	return &readTable{table: t}, nil
}

func (o *readTable) Apply(_ []*frame.Frame, _ bool) ([]*frame.Frame, error) {
	if o.env == nil {
		return nil, fmt.Errorf("pipeline: table %q not bound", o.table)
	}
	if o.limit > 0 && o.limit < o.env.NumRows() {
		return one(o.env.Head(o.limit)), nil
	}
	return one(o.env), nil
}

// ---- join ----

type join struct{ on string }

func newJoin(params map[string]any) (Op, error) {
	on, err := pStr(params, "on")
	if err != nil {
		return nil, err
	}
	return &join{on: on}, nil
}

func (o *join) Apply(inputs []*frame.Frame, _ bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 2, "join"); err != nil {
		return nil, err
	}
	return one(inputs[0].JoinInner(inputs[1], o.on)), nil
}

// ---- select/drop ----

type selectColumns struct{ cols []string }

func newSelectColumns(params map[string]any) (Op, error) {
	cols, err := pStrList(params, "cols")
	if err != nil {
		return nil, err
	}
	return &selectColumns{cols: cols}, nil
}

func (o *selectColumns) Apply(inputs []*frame.Frame, _ bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "select_columns"); err != nil {
		return nil, err
	}
	for _, c := range o.cols {
		if !inputs[0].Has(c) {
			return nil, fmt.Errorf("pipeline: select_columns: no column %q", c)
		}
	}
	return one(inputs[0].Select(o.cols...)), nil
}

type dropColumns struct{ cols []string }

func newDropColumns(params map[string]any) (Op, error) {
	cols, err := pStrList(params, "cols")
	if err != nil {
		return nil, err
	}
	return &dropColumns{cols: cols}, nil
}

func (o *dropColumns) Apply(inputs []*frame.Frame, _ bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "drop_columns"); err != nil {
		return nil, err
	}
	return one(inputs[0].Drop(o.cols...)), nil
}

// ---- onehot ----

type oneHot struct {
	cols  []string
	vocab map[string][]string // fitted categories per column
}

func newOneHot(params map[string]any) (Op, error) {
	cols, err := pStrList(params, "cols")
	if err != nil {
		return nil, err
	}
	return &oneHot{cols: cols}, nil
}

func (o *oneHot) Apply(inputs []*frame.Frame, fit bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "onehot"); err != nil {
		return nil, err
	}
	in := inputs[0]
	if fit {
		o.vocab = make(map[string][]string, len(o.cols))
		for _, cname := range o.cols {
			c := in.Col(cname)
			if c == nil || c.Type != frame.String {
				return nil, fmt.Errorf("pipeline: onehot needs string column %q", cname)
			}
			seen := map[string]bool{}
			var cats []string
			for _, v := range c.S {
				if v != "" && !seen[v] {
					seen[v] = true
					cats = append(cats, v)
				}
			}
			sort.Strings(cats)
			o.vocab[cname] = cats
		}
	}
	out := in.Drop(o.cols...)
	for _, cname := range o.cols {
		c := in.Col(cname)
		if c == nil {
			return nil, fmt.Errorf("pipeline: onehot column %q missing at transform time", cname)
		}
		for _, cat := range o.vocab[cname] {
			ind := make([]float64, in.NumRows())
			for i, v := range c.S {
				if v == cat {
					ind[i] = 1
				}
			}
			out.AddFloats(cname+"="+cat, ind)
		}
	}
	return one(out), nil
}

// ---- fillna ----

type fillNA struct {
	strategy string
	means    map[string]float64
}

func newFillNA(params map[string]any) (Op, error) {
	s := pStrDefault(params, "strategy", "mean")
	if s != "mean" && s != "zero" {
		return nil, fmt.Errorf("pipeline: fillna strategy %q not supported", s)
	}
	return &fillNA{strategy: s}, nil
}

func (o *fillNA) Apply(inputs []*frame.Frame, fit bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "fillna"); err != nil {
		return nil, err
	}
	in := inputs[0].Clone()
	if fit {
		o.means = make(map[string]float64)
		for i := 0; i < in.NumCols(); i++ {
			c := in.ColAt(i)
			if c.Type != frame.Float {
				continue
			}
			var sum float64
			n := 0
			for _, v := range c.F {
				if !math.IsNaN(v) {
					sum += v
					n++
				}
			}
			if n > 0 {
				o.means[c.Name] = sum / float64(n)
			}
		}
	}
	for i := 0; i < in.NumCols(); i++ {
		c := in.ColAt(i)
		if c.Type != frame.Float {
			continue
		}
		fill := 0.0
		if o.strategy == "mean" {
			fill = o.means[c.Name]
		}
		for j, v := range c.F {
			if math.IsNaN(v) {
				c.F[j] = fill
			}
		}
	}
	return one(in), nil
}

// ---- scale ----

type scale struct {
	stats map[string][2]float64 // mean, std
}

func newScale(map[string]any) (Op, error) { return &scale{}, nil }

func (o *scale) Apply(inputs []*frame.Frame, fit bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "scale"); err != nil {
		return nil, err
	}
	in := inputs[0].Clone()
	if fit {
		o.stats = make(map[string][2]float64)
		for i := 0; i < in.NumCols(); i++ {
			c := in.ColAt(i)
			if c.Type != frame.Float {
				continue
			}
			var sum, sq float64
			n := 0
			for _, v := range c.F {
				if !math.IsNaN(v) {
					sum += v
					sq += v * v
					n++
				}
			}
			if n == 0 {
				continue
			}
			mean := sum / float64(n)
			std := math.Sqrt(sq/float64(n) - mean*mean)
			if std < 1e-12 {
				std = 1
			}
			o.stats[c.Name] = [2]float64{mean, std}
		}
	}
	for i := 0; i < in.NumCols(); i++ {
		c := in.ColAt(i)
		if c.Type != frame.Float {
			continue
		}
		st, ok := o.stats[c.Name]
		if !ok {
			continue
		}
		for j, v := range c.F {
			c.F[j] = (v - st[0]) / st[1]
		}
	}
	return one(in), nil
}

// ---- group_avg (the templates' "Avg" feature-engineering stage) ----

type groupAvg struct {
	group, col, name string
	avgs             map[string]float64
	global           float64
}

func newGroupAvg(params map[string]any) (Op, error) {
	g, err := pStr(params, "group")
	if err != nil {
		return nil, err
	}
	c, err := pStr(params, "col")
	if err != nil {
		return nil, err
	}
	name := pStrDefault(params, "name", "avg_"+c+"_by_"+g)
	return &groupAvg{group: g, col: c, name: name}, nil
}

func (o *groupAvg) Apply(inputs []*frame.Frame, fit bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "group_avg"); err != nil {
		return nil, err
	}
	in := inputs[0]
	gc := in.Col(o.group)
	vc := in.Col(o.col)
	if gc == nil || gc.Type != frame.String || vc == nil {
		return nil, fmt.Errorf("pipeline: group_avg needs string group %q and numeric col %q", o.group, o.col)
	}
	vals, ok := vc.AsFloats()
	if !ok {
		return nil, fmt.Errorf("pipeline: group_avg col %q not numeric", o.col)
	}
	if fit {
		sums := map[string]float64{}
		counts := map[string]int{}
		var gsum float64
		gn := 0
		for i, g := range gc.S {
			if math.IsNaN(vals[i]) {
				continue
			}
			sums[g] += vals[i]
			counts[g]++
			gsum += vals[i]
			gn++
		}
		o.avgs = make(map[string]float64, len(sums))
		for g, s := range sums {
			o.avgs[g] = s / float64(counts[g])
		}
		if gn > 0 {
			o.global = gsum / float64(gn)
		}
	}
	out := make([]float64, in.NumRows())
	for i, g := range gc.S {
		if v, ok := o.avgs[g]; ok {
			out[i] = v
		} else {
			out[i] = o.global
		}
	}
	res := in.Clone()
	res.AddFloats(o.name, out)
	return one(res), nil
}

// ---- feature engineering specific to the Zillow templates ----

type constructionRecency struct{ refYear float64 }

func newConstructionRecency(params map[string]any) (Op, error) {
	return &constructionRecency{refYear: pFloatDefault(params, "ref_year", 2017)}, nil
}

func (o *constructionRecency) Apply(inputs []*frame.Frame, _ bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "construction_recency"); err != nil {
		return nil, err
	}
	in := inputs[0]
	yc := in.Col("yearbuilt")
	if yc == nil {
		return nil, fmt.Errorf("pipeline: construction_recency needs yearbuilt")
	}
	years, _ := yc.AsFloats()
	rec := make([]float64, len(years))
	for i, y := range years {
		rec[i] = o.refYear - y
	}
	out := in.Clone()
	out.AddFloats("construction_recency", rec)
	return one(out), nil
}

type neighborhood struct {
	bins                           int
	latMin, latMax, lonMin, lonMax float64
}

func newNeighborhood(params map[string]any) (Op, error) {
	return &neighborhood{bins: pIntDefault(params, "bins", 8)}, nil
}

func (o *neighborhood) Apply(inputs []*frame.Frame, fit bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "neighborhood"); err != nil {
		return nil, err
	}
	in := inputs[0]
	latC, lonC := in.Col("latitude"), in.Col("longitude")
	if latC == nil || lonC == nil {
		return nil, fmt.Errorf("pipeline: neighborhood needs latitude/longitude")
	}
	lats, _ := latC.AsFloats()
	lons, _ := lonC.AsFloats()
	if fit {
		o.latMin, o.latMax = minMax(lats)
		o.lonMin, o.lonMax = minMax(lons)
	}
	ids := make([]float64, len(lats))
	for i := range lats {
		ids[i] = float64(bucket(lats[i], o.latMin, o.latMax, o.bins)*o.bins + bucket(lons[i], o.lonMin, o.lonMax, o.bins))
	}
	out := in.Clone()
	out.AddFloats("neighborhood", ids)
	return one(out), nil
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func bucket(v, lo, hi float64, bins int) int {
	if math.IsNaN(v) || hi <= lo {
		return 0
	}
	b := int((v - lo) / (hi - lo) * float64(bins))
	if b < 0 {
		b = 0
	}
	if b >= bins {
		b = bins - 1
	}
	return b
}

type isResidential struct{}

func newIsResidential(map[string]any) (Op, error) { return &isResidential{}, nil }

func (o *isResidential) Apply(inputs []*frame.Frame, _ bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "is_residential"); err != nil {
		return nil, err
	}
	in := inputs[0]
	tc := in.Col("propertytype")
	if tc == nil || tc.Type != frame.String {
		return nil, fmt.Errorf("pipeline: is_residential needs propertytype")
	}
	ind := make([]float64, in.NumRows())
	for i, v := range tc.S {
		switch strings.ToLower(v) {
		case "house", "victorian", "townhouse", "duplex":
			ind[i] = 1
		}
	}
	out := in.Clone()
	out.AddFloats("is_residential", ind)
	return one(out), nil
}

// ---- blend ----

// blend combines the "pred" columns of two prediction frames with the
// given weights (the P5 template's XGBoost+LightGBM ensemble).
type blend struct{ wa, wb float64 }

func newBlend(params map[string]any) (Op, error) {
	wa := pFloatDefault(params, "weight_a", 0.5)
	wb := pFloatDefault(params, "weight_b", 0.5)
	if wa+wb == 0 {
		return nil, fmt.Errorf("pipeline: blend weights sum to zero")
	}
	return &blend{wa: wa / (wa + wb), wb: wb / (wa + wb)}, nil
}

func (o *blend) Apply(inputs []*frame.Frame, _ bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 2, "blend"); err != nil {
		return nil, err
	}
	a, b := inputs[0].Col("pred"), inputs[1].Col("pred")
	if a == nil || b == nil {
		return nil, fmt.Errorf("pipeline: blend inputs need a pred column")
	}
	if len(a.F) != len(b.F) {
		return nil, fmt.Errorf("pipeline: blend length mismatch %d/%d", len(a.F), len(b.F))
	}
	out := make([]float64, len(a.F))
	for i := range out {
		out[i] = o.wa*a.F[i] + o.wb*b.F[i]
	}
	res := frame.WithRowIDs(inputs[0].RowIDs())
	res.AddFloats("pred", out)
	return one(res), nil
}

// ---- split ----

type split struct {
	frac float64
	seed int64
	perm []int // fitted permutation so re-runs reproduce the split
}

func newSplit(params map[string]any) (Op, error) {
	return &split{
		frac: pFloatDefault(params, "frac", 0.8),
		seed: int64(pIntDefault(params, "seed", 0)),
	}, nil
}

func (o *split) Apply(inputs []*frame.Frame, fit bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "split"); err != nil {
		return nil, err
	}
	in := inputs[0]
	if fit || len(o.perm) != in.NumRows() {
		rng := rand.New(rand.NewSource(o.seed))
		o.perm = rng.Perm(in.NumRows())
	}
	cut := int(o.frac * float64(in.NumRows()))
	return []*frame.Frame{in.Gather(o.perm[:cut]), in.Gather(o.perm[cut:])}, nil
}

// ---- value transforms ----

// logTransform applies log1p(|x|)*sign(x) to the given float columns, a
// standard skew-reducing step in the Kaggle scripts the templates mirror.
type logTransform struct{ cols []string }

func newLogTransform(params map[string]any) (Op, error) {
	cols, err := pStrList(params, "cols")
	if err != nil {
		return nil, err
	}
	return &logTransform{cols: cols}, nil
}

func (o *logTransform) Apply(inputs []*frame.Frame, _ bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "log_transform"); err != nil {
		return nil, err
	}
	out := inputs[0].Clone()
	for _, cname := range o.cols {
		c := out.Col(cname)
		if c == nil || c.Type != frame.Float {
			return nil, fmt.Errorf("pipeline: log_transform needs float column %q", cname)
		}
		for i, v := range c.F {
			s := 1.0
			if v < 0 {
				s = -1
			}
			c.F[i] = s * math.Log1p(math.Abs(v))
		}
	}
	return one(out), nil
}

// clip winsorizes float columns to [lo, hi].
type clip struct {
	lo, hi float64
	cols   []string
}

func newClip(params map[string]any) (Op, error) {
	lo := pFloatDefault(params, "lo", math.Inf(-1))
	hi := pFloatDefault(params, "hi", math.Inf(1))
	if lo > hi {
		return nil, fmt.Errorf("pipeline: clip lo %g > hi %g", lo, hi)
	}
	cols, err := pStrList(params, "cols")
	if err != nil {
		return nil, err
	}
	return &clip{lo: lo, hi: hi, cols: cols}, nil
}

func (o *clip) Apply(inputs []*frame.Frame, _ bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "clip"); err != nil {
		return nil, err
	}
	out := inputs[0].Clone()
	for _, cname := range o.cols {
		c := out.Col(cname)
		if c == nil || c.Type != frame.Float {
			return nil, fmt.Errorf("pipeline: clip needs float column %q", cname)
		}
		for i, v := range c.F {
			if v < o.lo {
				c.F[i] = o.lo
			} else if v > o.hi {
				c.F[i] = o.hi
			}
		}
	}
	return one(out), nil
}

// selectKBest keeps the k numeric features most correlated (absolute
// Pearson) with the target — the feature-selection stage of the paper's
// workflow description. The selection is fitted on the first run and
// reused on re-runs.
type selectKBest struct {
	target string
	k      int
	keep   []string
}

func newSelectKBest(params map[string]any) (Op, error) {
	target, err := pStr(params, "target")
	if err != nil {
		return nil, err
	}
	k := pIntDefault(params, "k", 10)
	if k < 1 {
		return nil, fmt.Errorf("pipeline: select_k_best k must be >= 1")
	}
	return &selectKBest{target: target, k: k}, nil
}

func (o *selectKBest) Apply(inputs []*frame.Frame, fit bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "select_k_best"); err != nil {
		return nil, err
	}
	in := inputs[0]
	if fit || o.keep == nil {
		tc := in.Col(o.target)
		if tc == nil {
			return nil, fmt.Errorf("pipeline: select_k_best: no target %q", o.target)
		}
		y, ok := tc.AsFloats()
		if !ok {
			return nil, fmt.Errorf("pipeline: select_k_best: target %q not numeric", o.target)
		}
		type scored struct {
			name string
			abs  float64
		}
		var cands []scored
		for i := 0; i < in.NumCols(); i++ {
			c := in.ColAt(i)
			if c.Name == o.target || c.Name == "parcelid" {
				continue
			}
			vals, ok := c.AsFloats()
			if !ok {
				continue
			}
			cands = append(cands, scored{name: c.Name, abs: math.Abs(safePearson(vals, y))})
		}
		sort.SliceStable(cands, func(a, b int) bool { return cands[a].abs > cands[b].abs })
		k := o.k
		if k > len(cands) {
			k = len(cands)
		}
		o.keep = nil
		for _, c := range cands[:k] {
			o.keep = append(o.keep, c.name)
		}
	}
	cols := append([]string{}, o.keep...)
	// Always carry the target through (and any string columns are dropped,
	// mirroring sklearn's SelectKBest operating on the numeric matrix).
	if in.Has(o.target) {
		cols = append(cols, o.target)
	}
	return one(in.Select(cols...)), nil
}

// safePearson is Pearson correlation that treats NaNs as zero and returns
// 0 for degenerate columns.
func safePearson(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	var ma, mb float64
	for i := 0; i < n; i++ {
		x, y := a[i], b[i]
		if math.IsNaN(x) {
			x = 0
		}
		if math.IsNaN(y) {
			y = 0
		}
		ma += x
		mb += y
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		x, y := a[i], b[i]
		if math.IsNaN(x) {
			x = 0
		}
		if math.IsNaN(y) {
			y = 0
		}
		cov += (x - ma) * (y - mb)
		va += (x - ma) * (x - ma)
		vb += (y - mb) * (y - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
