package pipeline

import (
	"fmt"
	"math"

	"mistique/internal/frame"
	"mistique/internal/ml"
	"mistique/internal/tensor"
)

// featureMatrix extracts the numeric feature matrix for model fitting,
// excluding the target and identifier columns.
func featureMatrix(f *frame.Frame, target string) (*tensor.Dense, []string) {
	drop := map[string]bool{target: true, "parcelid": true}
	numeric := f.Clone()
	var keep []string
	for _, n := range numeric.Names() {
		if !drop[n] {
			keep = append(keep, n)
		}
	}
	x, names := numeric.Select(keep...).FloatMatrix()
	// NaNs poison tree splits and coordinate descent; models expect a
	// fillna stage upstream, but guard anyway by zeroing stragglers.
	for i, v := range x.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			x.Data[i] = 0
		}
	}
	return x, names
}

// model is the common fitted-regressor interface of the train ops.
type model interface {
	Predict(x *tensor.Dense) []float64
}

// trainOp fits a regressor on its input frame and emits the training-set
// predictions as its intermediate. Downstream predict stages reference the
// fitted model through the executor.
type trainOp struct {
	target   string
	flavor   string
	fit      func(x *tensor.Dense, y []float64) model
	m        model
	features []string
}

func (o *trainOp) Apply(inputs []*frame.Frame, fit bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "train_"+o.flavor); err != nil {
		return nil, err
	}
	in := inputs[0]
	tc := in.Col(o.target)
	if tc == nil {
		return nil, fmt.Errorf("pipeline: train_%s: no target column %q", o.flavor, o.target)
	}
	y, ok := tc.AsFloats()
	if !ok {
		return nil, fmt.Errorf("pipeline: train_%s: target %q not numeric", o.flavor, o.target)
	}
	x, names := featureMatrix(in, o.target)
	if fit || o.m == nil {
		o.m = o.fit(x, y)
		o.features = names
	}
	pred := o.m.Predict(x)
	out := frame.WithRowIDs(in.RowIDs())
	out.AddFloats("pred", pred)
	out.AddFloats(o.target, y)
	return one(out), nil
}

// predictFrame applies the fitted model to an arbitrary frame, aligning
// feature columns by name (missing features are zero-filled).
func (o *trainOp) predictFrame(f *frame.Frame) (*frame.Frame, error) {
	if o.m == nil {
		return nil, fmt.Errorf("pipeline: predict before train_%s ran", o.flavor)
	}
	x := tensor.NewDense(f.NumRows(), len(o.features))
	for j, name := range o.features {
		c := f.Col(name)
		if c == nil {
			continue // zero-filled
		}
		vals, ok := c.AsFloats()
		if !ok {
			continue
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x.Set(i, j, float32(v))
		}
	}
	pred := o.m.Predict(x)
	out := frame.WithRowIDs(f.RowIDs())
	out.AddFloats("pred", pred)
	return out, nil
}

func newTrainXGB(params map[string]any) (Op, error) {
	target, err := pStr(params, "target")
	if err != nil {
		return nil, err
	}
	p := ml.GBMParams{
		Rounds:       pIntDefault(params, "rounds", 30),
		LearningRate: pFloatDefault(params, "eta", 0.1),
		Lambda:       pFloatDefault(params, "lambda", 1),
		Alpha:        pFloatDefault(params, "alpha", 0),
		MaxDepth:     pIntDefault(params, "max_depth", 4),
		Seed:         int64(pIntDefault(params, "seed", 1)),
	}
	return &trainOp{target: target, flavor: "xgb", fit: func(x *tensor.Dense, y []float64) model {
		return ml.TrainGBM(x, y, p)
	}}, nil
}

func newTrainLGBM(params map[string]any) (Op, error) {
	target, err := pStr(params, "target")
	if err != nil {
		return nil, err
	}
	p := ml.GBMParams{
		Rounds:          pIntDefault(params, "rounds", 30),
		LearningRate:    pFloatDefault(params, "learning_rate", 0.1),
		SubFeature:      pFloatDefault(params, "sub_feature", 1),
		MinSamples:      pIntDefault(params, "min_data", 20),
		BaggingFraction: pFloatDefault(params, "bagging_fraction", 1),
		MaxDepth:        pIntDefault(params, "max_depth", 5),
		Seed:            int64(pIntDefault(params, "seed", 2)),
	}
	return &trainOp{target: target, flavor: "lgbm", fit: func(x *tensor.Dense, y []float64) model {
		return ml.TrainGBM(x, y, p)
	}}, nil
}

func newTrainElastic(params map[string]any) (Op, error) {
	target, err := pStr(params, "target")
	if err != nil {
		return nil, err
	}
	p := ml.ElasticNetParams{
		Alpha:     pFloatDefault(params, "alpha", 0.001),
		L1Ratio:   pFloatDefault(params, "l1_ratio", 0.5),
		Tol:       pFloatDefault(params, "tol", 1e-4),
		Normalize: pIntDefault(params, "normalize", 0) != 0,
	}
	return &trainOp{target: target, flavor: "elastic", fit: func(x *tensor.Dense, y []float64) model {
		return ml.TrainElasticNet(x, y, p)
	}}, nil
}

// predictOp applies a previously trained stage's model to its input frame.
type predictOp struct {
	modelStage string
	resolve    func(stage string) (predictor, error) // wired by the executor
}

func newPredict(params map[string]any) (Op, error) {
	m, err := pStr(params, "model")
	if err != nil {
		return nil, err
	}
	return &predictOp{modelStage: m}, nil
}

func (o *predictOp) Apply(inputs []*frame.Frame, _ bool) ([]*frame.Frame, error) {
	if err := needInputs(inputs, 1, "predict"); err != nil {
		return nil, err
	}
	if o.resolve == nil {
		return nil, fmt.Errorf("pipeline: predict op not bound to an executor")
	}
	p, err := o.resolve(o.modelStage)
	if err != nil {
		return nil, err
	}
	out, err := p.predictFrame(inputs[0])
	if err != nil {
		return nil, err
	}
	return one(out), nil
}
