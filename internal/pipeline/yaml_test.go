package pipeline

import (
	"reflect"
	"testing"
)

func TestParseYAMLBasicMapping(t *testing.T) {
	doc, err := ParseYAML("name: hello\ncount: 3\nratio: 0.5\nflag: true\nnothing: null\n")
	if err != nil {
		t.Fatal(err)
	}
	m := doc.(map[string]any)
	if m["name"] != "hello" || m["count"] != 3 || m["ratio"] != 0.5 || m["flag"] != true || m["nothing"] != nil {
		t.Fatalf("parsed %#v", m)
	}
}

func TestParseYAMLNested(t *testing.T) {
	src := `
name: outer
params:
  alpha: 0.1
  inner:
    deep: yes_string
list:
  - a
  - 2
  - true
`
	doc, err := ParseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	m := doc.(map[string]any)
	params := m["params"].(map[string]any)
	if params["alpha"] != 0.1 {
		t.Fatalf("alpha %v", params["alpha"])
	}
	inner := params["inner"].(map[string]any)
	if inner["deep"] != "yes_string" {
		t.Fatalf("deep %v", inner["deep"])
	}
	if !reflect.DeepEqual(m["list"], []any{"a", 2, true}) {
		t.Fatalf("list %#v", m["list"])
	}
}

func TestParseYAMLSequenceOfMappings(t *testing.T) {
	src := `
stages:
  - name: s1
    op: read_table
    params:
      table: props
  - name: s2
    op: join
    inputs: [s1, s1]
`
	doc, err := ParseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	stages := doc.(map[string]any)["stages"].([]any)
	if len(stages) != 2 {
		t.Fatalf("stages %d", len(stages))
	}
	s1 := stages[0].(map[string]any)
	if s1["name"] != "s1" || s1["op"] != "read_table" {
		t.Fatalf("s1 %#v", s1)
	}
	if s1["params"].(map[string]any)["table"] != "props" {
		t.Fatalf("s1 params %#v", s1["params"])
	}
	s2 := stages[1].(map[string]any)
	if !reflect.DeepEqual(s2["inputs"], []any{"s1", "s1"}) {
		t.Fatalf("inputs %#v", s2["inputs"])
	}
}

func TestParseYAMLFlowStyles(t *testing.T) {
	doc, err := ParseYAML(`params: {on: parcelid, frac: 0.8, tags: [a, b]}`)
	if err != nil {
		t.Fatal(err)
	}
	params := doc.(map[string]any)["params"].(map[string]any)
	if params["on"] != "parcelid" || params["frac"] != 0.8 {
		t.Fatalf("flow map %#v", params)
	}
	if !reflect.DeepEqual(params["tags"], []any{"a", "b"}) {
		t.Fatalf("flow list %#v", params["tags"])
	}
	doc, err = ParseYAML(`empty_list: []
empty_map: {}`)
	if err != nil {
		t.Fatal(err)
	}
	m := doc.(map[string]any)
	if len(m["empty_list"].([]any)) != 0 || len(m["empty_map"].(map[string]any)) != 0 {
		t.Fatalf("empties %#v", m)
	}
}

func TestParseYAMLCommentsAndQuotes(t *testing.T) {
	src := `
# leading comment
name: "hello # not a comment"
other: plain # trailing comment
quoted: 'single'
`
	doc, err := ParseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	m := doc.(map[string]any)
	if m["name"] != "hello # not a comment" || m["other"] != "plain" || m["quoted"] != "single" {
		t.Fatalf("%#v", m)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	for name, src := range map[string]string{
		"empty":        "",
		"tabs":         "\tname: x",
		"dup-key":      "a: 1\na: 2",
		"bad-flow-seq": "x: [a, b",
		"bad-flow-map": "x: {a: 1",
		"unbalanced":   "x: [a]]",
	} {
		if _, err := ParseYAML(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

const sampleSpec = `
name: demo
stages:
  - name: props
    op: read_table
    params: {table: properties}
  - name: sales
    op: read_table
    params: {table: train}
  - name: joined
    op: join
    inputs: [sales, props]
    params: {on: parcelid}
  - name: filled
    op: fillna
    inputs: [joined]
    params: {strategy: mean}
  - name: splits
    op: split
    inputs: [filled]
    params: {frac: 0.75, seed: 3}
    outputs: [train_split, test_split]
  - name: model
    op: train_xgb
    inputs: [train_split]
    params: {target: logerror, rounds: 5, max_depth: 3, eta: 0.3}
  - name: pred_test
    op: predict
    inputs: [test_split]
    params: {model: model}
`

func TestSpecFromYAML(t *testing.T) {
	spec, err := SpecFromYAML(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "demo" || len(spec.Stages) != 7 {
		t.Fatalf("spec %+v", spec)
	}
	if !reflect.DeepEqual(spec.Stages[4].Outputs, []string{"train_split", "test_split"}) {
		t.Fatalf("outputs %v", spec.Stages[4].Outputs)
	}
	if spec.Stages[2].Params["on"] != "parcelid" {
		t.Fatalf("params %v", spec.Stages[2].Params)
	}
}

func TestSpecFromYAMLErrors(t *testing.T) {
	for name, src := range map[string]string{
		"no-name":   "stages:\n  - name: a\n    op: read_table",
		"no-stages": "name: x",
		"no-op":     "name: x\nstages:\n  - name: a",
		"bad-root":  "- a\n- b",
	} {
		if _, err := SpecFromYAML(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
