package pipeline

import "testing"

// FuzzParseYAML guards the spec parser against panics on arbitrary input;
// parse errors are fine, crashes are not.
func FuzzParseYAML(f *testing.F) {
	f.Add("name: x\nstages:\n  - name: a\n    op: read_table\n")
	f.Add("a: [1, {b: c}, 'd']")
	f.Add("k:\n  - - nested")
	f.Add("x: \"unterminated")
	f.Add("- 1\n- 2")
	f.Add("a:\n\tb: tab")
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseYAML(src)
		if err != nil {
			return
		}
		// A successful parse must also survive spec decoding attempts.
		_ = doc
		_, _ = SpecFromYAML(src)
	})
}
