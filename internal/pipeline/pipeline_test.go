package pipeline

import (
	"math"
	"testing"

	"mistique/internal/data"
	"mistique/internal/frame"
)

func env(t *testing.T) map[string]*frame.Frame {
	t.Helper()
	h := data.Housing(300, 900, 1)
	return map[string]*frame.Frame{
		"properties": h.Properties,
		"train":      h.Train,
		"test":       h.Test,
	}
}

func buildDemo(t *testing.T) *Pipeline {
	t.Helper()
	spec, err := SpecFromYAML(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineEndToEnd(t *testing.T) {
	p := buildDemo(t)
	if err := p.Bind(env(t), 0); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 7 {
		t.Fatalf("stages %d", len(res.Stages))
	}
	// Intermediates all present.
	names := res.IntermediateNames()
	want := []string{"props", "sales", "joined", "filled", "train_split", "test_split", "model", "pred_test"}
	if len(names) != len(want) {
		t.Fatalf("intermediates %v", names)
	}
	joined := res.Intermediate("joined")
	if joined == nil || joined.NumRows() != 900 {
		t.Fatalf("joined rows %v", joined)
	}
	// fillna removed all NaNs from float columns.
	filled := res.Intermediate("filled")
	for i := 0; i < filled.NumCols(); i++ {
		c := filled.ColAt(i)
		if c.Type != frame.Float {
			continue
		}
		for _, v := range c.F {
			if math.IsNaN(v) {
				t.Fatalf("NaN survived fillna in %s", c.Name)
			}
		}
	}
	// Split fractions.
	tr := res.Intermediate("train_split")
	te := res.Intermediate("test_split")
	if tr.NumRows() != 675 || te.NumRows() != 225 {
		t.Fatalf("split %d/%d", tr.NumRows(), te.NumRows())
	}
	// Model output has predictions; test predictions exist for every row.
	modelOut := res.Intermediate("model")
	if !modelOut.Has("pred") || !modelOut.Has("logerror") {
		t.Fatalf("model output cols %v", modelOut.Names())
	}
	pt := res.Intermediate("pred_test")
	if pt.NumRows() != 225 || !pt.Has("pred") {
		t.Fatalf("pred_test %v", pt.Names())
	}
}

func TestPipelineRerunIsDeterministicWithoutRefit(t *testing.T) {
	p := buildDemo(t)
	if err := p.Bind(env(t), 0); err != nil {
		t.Fatal(err)
	}
	first, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Run() // transform-only re-run
	if err != nil {
		t.Fatal(err)
	}
	a := first.Intermediate("pred_test").Col("pred").F
	b := second.Intermediate("pred_test").Col("pred").F
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("re-run diverged at %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestPipelineRunToPartial(t *testing.T) {
	p := buildDemo(t)
	if err := p.Bind(env(t), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := p.RunTo(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 3 || res.Intermediate("joined") == nil {
		t.Fatalf("partial run: %v", res.IntermediateNames())
	}
	if _, err := p.RunTo(99); err == nil {
		t.Fatal("out of range RunTo accepted")
	}
}

func TestPipelineBindLimit(t *testing.T) {
	p := buildDemo(t)
	if err := p.Bind(env(t), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil { // fit first
		t.Fatal(err)
	}
	if err := p.Bind(env(t), 100); err != nil {
		t.Fatal(err)
	}
	res, err := p.RunTo(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Intermediate("sales").NumRows(); got != 100 {
		t.Fatalf("limited read rows %d", got)
	}
}

func TestPipelineValidation(t *testing.T) {
	cases := map[string]Spec{
		"no-name":    {Stages: []StageSpec{{Name: "a", Op: "read_table", Params: map[string]any{"table": "t"}}}},
		"no-stages":  {Name: "x"},
		"unknown-op": {Name: "x", Stages: []StageSpec{{Name: "a", Op: "wat"}}},
		"dup-stage": {Name: "x", Stages: []StageSpec{
			{Name: "a", Op: "read_table", Params: map[string]any{"table": "t"}},
			{Name: "a", Op: "read_table", Params: map[string]any{"table": "t"}},
		}},
		"undefined-input": {Name: "x", Stages: []StageSpec{
			{Name: "a", Op: "join", Inputs: []string{"ghost", "ghost2"}, Params: map[string]any{"on": "k"}},
		}},
		"bad-params": {Name: "x", Stages: []StageSpec{{Name: "a", Op: "join"}}},
	}
	for name, spec := range cases {
		if _, err := New(spec); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPipelineMissingTable(t *testing.T) {
	p := buildDemo(t)
	if err := p.Bind(map[string]*frame.Frame{}, 0); err == nil {
		t.Fatal("bind with empty env accepted")
	}
}

func TestPredictBeforeTrainFails(t *testing.T) {
	spec := Spec{Name: "x", Stages: []StageSpec{
		{Name: "src", Op: "read_table", Params: map[string]any{"table": "train"}},
		{Name: "pred", Op: "predict", Inputs: []string{"src"}, Params: map[string]any{"model": "src"}},
	}}
	p, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(env(t), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err == nil {
		t.Fatal("predict against non-model stage accepted")
	}
}

func TestFeatureEngineeringOps(t *testing.T) {
	spec, err := SpecFromYAML(`
name: fe
stages:
  - name: props
    op: read_table
    params: {table: properties}
  - name: rec
    op: construction_recency
    inputs: [props]
  - name: hood
    op: neighborhood
    inputs: [rec]
    params: {bins: 4}
  - name: res
    op: is_residential
    inputs: [hood]
  - name: avg
    op: group_avg
    inputs: [res]
    params: {group: regionidzip, col: taxvaluedollarcnt, name: region_tax}
  - name: hot
    op: onehot
    inputs: [avg]
    params: {cols: [propertytype]}
  - name: scaled
    op: scale
    inputs: [hot]
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(env(t), 0); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := res.Intermediate("scaled")
	for _, col := range []string{"construction_recency", "neighborhood", "is_residential", "region_tax", "propertytype=house"} {
		if !out.Has(col) {
			t.Fatalf("missing engineered column %s (have %v)", col, out.Names())
		}
	}
	if out.Has("propertytype") {
		t.Fatal("onehot kept original column")
	}
	// recency = 2017 - yearbuilt before scaling; after scaling it's
	// standardized, so check the pre-scale intermediate.
	rec := res.Intermediate("rec")
	year, _ := rec.Col("yearbuilt").AsFloats()
	recv := rec.Col("construction_recency").F
	for i := range year {
		if recv[i] != 2017-year[i] {
			t.Fatalf("recency[%d] = %v, want %v", i, recv[i], 2017-year[i])
		}
	}
}

func TestOpsRegistryList(t *testing.T) {
	ops := Ops()
	if len(ops) < 15 {
		t.Fatalf("registry has only %d ops", len(ops))
	}
	found := false
	for _, o := range ops {
		if o == "train_lgbm" {
			found = true
		}
	}
	if !found {
		t.Fatal("train_lgbm missing from registry")
	}
}

func TestElasticPipelineVariant(t *testing.T) {
	spec, err := SpecFromYAML(`
name: elastic
stages:
  - name: props
    op: read_table
    params: {table: properties}
  - name: sales
    op: read_table
    params: {table: train}
  - name: joined
    op: join
    inputs: [sales, props]
    params: {on: parcelid}
  - name: hot
    op: onehot
    inputs: [joined]
    params: {cols: [propertytype, regionidzip]}
  - name: filled
    op: fillna
    inputs: [hot]
  - name: model
    op: train_elastic
    inputs: [filled]
    params: {target: logerror, alpha: 0.01, l1_ratio: 0.5, normalize: 1}
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bind(env(t), 0); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	preds := res.Intermediate("model").Col("pred").F
	for _, v := range preds {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("elastic predictions contain NaN/Inf")
		}
	}
}
