package pipeline

import (
	"testing"

	"mistique/internal/frame"
)

func mini() *frame.Frame {
	f := frame.New(4)
	f.AddFloats("a", []float64{1, 2, 3, 4})
	f.AddFloats("b", []float64{10, 20, 30, 40})
	f.AddStrings("s", []string{"x", "y", "x", "y"})
	return f
}

func apply1(t *testing.T, op Op, in *frame.Frame, fit bool) *frame.Frame {
	t.Helper()
	outs, err := op.Apply([]*frame.Frame{in}, fit)
	if err != nil {
		t.Fatal(err)
	}
	return outs[0]
}

func TestSelectColumnsOp(t *testing.T) {
	op, err := newSelectColumns(map[string]any{"cols": []any{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	out := apply1(t, op, mini(), true)
	if out.NumCols() != 1 || !out.Has("b") {
		t.Fatalf("select got %v", out.Names())
	}
	// Unknown column errors.
	op2, _ := newSelectColumns(map[string]any{"cols": "ghost"})
	if _, err := op2.Apply([]*frame.Frame{mini()}, true); err == nil {
		t.Fatal("select of unknown column accepted")
	}
	if _, err := newSelectColumns(map[string]any{}); err == nil {
		t.Fatal("missing cols accepted")
	}
}

func TestDropColumnsOp(t *testing.T) {
	op, err := newDropColumns(map[string]any{"cols": []any{"a", "ghost"}})
	if err != nil {
		t.Fatal(err)
	}
	out := apply1(t, op, mini(), true)
	if out.Has("a") || !out.Has("b") {
		t.Fatalf("drop got %v", out.Names())
	}
	if _, err := op.Apply(nil, true); err == nil {
		t.Fatal("wrong input count accepted")
	}
}

func TestBlendOp(t *testing.T) {
	mkPred := func(vals []float64) *frame.Frame {
		f := frame.New(len(vals))
		f.AddFloats("pred", vals)
		return f
	}
	op, err := newBlend(map[string]any{"weight_a": 1.0, "weight_b": 3.0})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := op.Apply([]*frame.Frame{mkPred([]float64{4, 8}), mkPred([]float64{0, 4})}, true)
	if err != nil {
		t.Fatal(err)
	}
	got := outs[0].Col("pred").F
	// Normalized weights 0.25/0.75: 0.25*4 = 1; 0.25*8 + 0.75*4 = 5.
	if got[0] != 1 || got[1] != 5 {
		t.Fatalf("blend %v", got)
	}
	if _, err := newBlend(map[string]any{"weight_a": 0.0, "weight_b": 0.0}); err == nil {
		t.Fatal("zero weights accepted")
	}
	if _, err := op.Apply([]*frame.Frame{mkPred([]float64{1}), mkPred([]float64{1, 2})}, true); err == nil {
		t.Fatal("length mismatch accepted")
	}
	noPred := frame.New(1)
	noPred.AddFloats("x", []float64{1})
	if _, err := op.Apply([]*frame.Frame{noPred, noPred}, true); err == nil {
		t.Fatal("missing pred column accepted")
	}
}

func TestTrainLGBMOpParams(t *testing.T) {
	op, err := newTrainLGBM(map[string]any{"target": "y", "rounds": 3, "learning_rate": 0.3, "min_data": 5})
	if err != nil {
		t.Fatal(err)
	}
	f := frame.New(60)
	xs := make([]float64, 60)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2 * float64(i)
	}
	f.AddFloats("x", xs)
	f.AddFloats("y", ys)
	outs, err := op.Apply([]*frame.Frame{f}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !outs[0].Has("pred") || !outs[0].Has("y") {
		t.Fatalf("lgbm output %v", outs[0].Names())
	}
	if _, err := newTrainLGBM(map[string]any{}); err == nil {
		t.Fatal("missing target accepted")
	}
}

func TestPipelineIntrospection(t *testing.T) {
	spec, _ := SpecFromYAML(sampleSpec)
	p, _ := New(spec)
	if p.NumStages() != 7 {
		t.Fatalf("stages %d", p.NumStages())
	}
	names := p.StageNames()
	if names[0] != "props" || names[6] != "pred_test" {
		t.Fatalf("names %v", names)
	}
}

func TestLogTransformOp(t *testing.T) {
	op, err := newLogTransform(map[string]any{"cols": []any{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	f := frame.New(3)
	f.AddFloats("a", []float64{0, 9, -9})
	out := apply1(t, op, f, true)
	got := out.Col("a").F
	if got[0] != 0 || got[1] < 2.3 || got[1] > 2.31 || got[2] != -got[1] {
		t.Fatalf("log transform %v", got)
	}
	// Source unchanged.
	if f.Col("a").F[1] != 9 {
		t.Fatal("log_transform mutated input")
	}
	if _, err := op.Apply([]*frame.Frame{mini()}, true); err != nil {
		t.Fatal(err)
	}
	bad, _ := newLogTransform(map[string]any{"cols": "s"})
	if _, err := bad.Apply([]*frame.Frame{mini()}, true); err == nil {
		t.Fatal("log of string column accepted")
	}
}

func TestClipOp(t *testing.T) {
	op, err := newClip(map[string]any{"cols": []any{"a"}, "lo": 1.5, "hi": 3.0})
	if err != nil {
		t.Fatal(err)
	}
	out := apply1(t, op, mini(), true)
	got := out.Col("a").F
	if got[0] != 1.5 || got[1] != 2 || got[3] != 3 {
		t.Fatalf("clip %v", got)
	}
	if _, err := newClip(map[string]any{"cols": "a", "lo": 5.0, "hi": 1.0}); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}

func TestSelectKBestOp(t *testing.T) {
	// y correlates perfectly with "good", not with "noise".
	f := frame.New(50)
	good := make([]float64, 50)
	noise := make([]float64, 50)
	y := make([]float64, 50)
	for i := range y {
		good[i] = float64(i)
		noise[i] = float64((i * 7919) % 13)
		y[i] = 3 * float64(i)
	}
	f.AddFloats("good", good)
	f.AddFloats("noise", noise)
	f.AddFloats("y", y)

	op, err := newSelectKBest(map[string]any{"target": "y", "k": 1})
	if err != nil {
		t.Fatal(err)
	}
	out := apply1(t, op, f, true)
	if !out.Has("good") || out.Has("noise") || !out.Has("y") {
		t.Fatalf("select_k_best kept %v", out.Names())
	}
	// Re-run (fit=false) keeps the fitted selection.
	out2 := apply1(t, op, f, false)
	if !out2.Has("good") || out2.Has("noise") {
		t.Fatal("selection not sticky across re-runs")
	}
	if _, err := newSelectKBest(map[string]any{"target": "y", "k": 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := newSelectKBest(map[string]any{}); err == nil {
		t.Fatal("missing target accepted")
	}
}

func TestSelectKBestInPipelineYAML(t *testing.T) {
	spec, err := SpecFromYAML(`
name: fs
stages:
  - name: sales
    op: read_table
    params: {table: train}
  - name: props
    op: read_table
    params: {table: properties}
  - name: joined
    op: join
    inputs: [sales, props]
    params: {on: parcelid}
  - name: logged
    op: log_transform
    inputs: [joined]
    params: {cols: [taxvaluedollarcnt]}
  - name: clipped
    op: clip
    inputs: [logged]
    params: {cols: [finishedsquarefeet], lo: 0, hi: 4000}
  - name: selected
    op: select_k_best
    inputs: [clipped]
    params: {target: logerror, k: 5}
  - name: model
    op: train_xgb
    inputs: [selected]
    params: {target: logerror, rounds: 3}
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	env := envTables(t)
	if err := p.Bind(env, 0); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	sel := res.Intermediate("selected")
	if sel.NumCols() != 6 { // 5 features + target
		t.Fatalf("selected %d cols: %v", sel.NumCols(), sel.Names())
	}
	if !res.Intermediate("model").Has("pred") {
		t.Fatal("model stage failed downstream of feature selection")
	}
}

func envTables(t *testing.T) map[string]*frame.Frame {
	t.Helper()
	return env(t)
}
