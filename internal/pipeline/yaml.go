package pipeline

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the YAML-subset parser for pipeline specifications.
// The paper defines a YAML format (modeled after Apache Airflow) to express
// scikit-learn pipelines; we support the subset those specs need: block
// mappings and sequences, flow lists [a, b] and maps {k: v}, quoted and
// bare scalars, comments, and int/float/bool typing.

type yamlLine struct {
	indent int
	text   string
	num    int
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// ParseYAML parses a YAML-subset document into map[string]any / []any /
// scalar values.
func ParseYAML(src string) (any, error) {
	p := &yamlParser{}
	for num, raw := range strings.Split(src, "\n") {
		text := stripComment(raw)
		trimmed := strings.TrimRight(text, " \t")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		if strings.ContainsRune(trimmed[:indent], '\t') || (indent < len(trimmed) && trimmed[indent] == '\t') {
			return nil, fmt.Errorf("yaml: line %d: tabs are not allowed for indentation", num+1)
		}
		p.lines = append(p.lines, yamlLine{indent: indent, text: trimmed[indent:], num: num + 1})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	v, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, fmt.Errorf("yaml: line %d: unexpected content %q", p.lines[p.pos].num, p.lines[p.pos].text)
	}
	return v, nil
}

func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("yaml: unexpected end of document")
	}
	line := p.lines[p.pos]
	if line.indent != indent {
		return nil, fmt.Errorf("yaml: line %d: bad indentation %d (expected %d)", line.num, line.indent, indent)
	}
	if line.text == "-" || strings.HasPrefix(line.text, "- ") {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	var out []any
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		if line.indent != indent || (line.text != "-" && !strings.HasPrefix(line.text, "- ")) {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line.text, "-"))
		if rest == "" {
			// Nested block on following deeper lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				out = append(out, nil)
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		if isMappingStart(rest) {
			// "- key: value" starts a mapping whose first entry shares the
			// dash line; re-home the rest at the item indent and parse.
			itemIndent := indent + (len(line.text) - len(rest))
			p.lines[p.pos] = yamlLine{indent: itemIndent, text: rest, num: line.num}
			v, err := p.parseMapping(itemIndent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		v, err := parseScalar(rest, line.num)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		p.pos++
	}
	return out, nil
}

func isMappingStart(s string) bool {
	// A mapping entry has an unquoted, un-bracketed "key:" prefix.
	depth := 0
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			inDouble = !inDouble
		case inSingle || inDouble:
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ':' && depth == 0:
			return i == len(s)-1 || s[i+1] == ' '
		}
	}
	return false
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	out := map[string]any{}
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		if line.indent != indent {
			break
		}
		if line.text == "-" || strings.HasPrefix(line.text, "- ") {
			break
		}
		key, rest, err := splitKey(line.text, line.num)
		if err != nil {
			return nil, err
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("yaml: line %d: duplicate key %q", line.num, key)
		}
		if rest == "" {
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				out[key] = nil
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out[key] = v
			continue
		}
		v, err := parseScalar(rest, line.num)
		if err != nil {
			return nil, err
		}
		out[key] = v
		p.pos++
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("yaml: line %d: expected a mapping", p.lines[min(p.pos, len(p.lines)-1)].num)
	}
	return out, nil
}

func splitKey(s string, num int) (key, rest string, err error) {
	if !isMappingStart(s) {
		return "", "", fmt.Errorf("yaml: line %d: expected \"key: value\", got %q", num, s)
	}
	i := strings.Index(s, ":")
	// isMappingStart guarantees a top-level colon; find the right one by
	// rescanning outside quotes/brackets.
	depth := 0
	inSingle, inDouble := false, false
	for j := 0; j < len(s); j++ {
		c := s[j]
		switch {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			inDouble = !inDouble
		case inSingle || inDouble:
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ':' && depth == 0 && (j == len(s)-1 || s[j+1] == ' '):
			i = j
			j = len(s)
		}
	}
	key = strings.TrimSpace(s[:i])
	key = unquote(key)
	rest = strings.TrimSpace(s[i+1:])
	if key == "" {
		return "", "", fmt.Errorf("yaml: line %d: empty key", num)
	}
	return key, rest, nil
}

func parseScalar(s string, num int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, nil
	case strings.HasPrefix(s, "["):
		return parseFlowSeq(s, num)
	case strings.HasPrefix(s, "{"):
		return parseFlowMap(s, num)
	}
	if (strings.HasPrefix(s, "\"") && strings.HasSuffix(s, "\"") && len(s) >= 2) ||
		(strings.HasPrefix(s, "'") && strings.HasSuffix(s, "'") && len(s) >= 2) {
		return s[1 : len(s)-1], nil
	}
	switch s {
	case "null", "~":
		return nil, nil
	case "true", "True":
		return true, nil
	case "false", "False":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return int(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

func unquote(s string) string {
	if len(s) >= 2 && ((s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'')) {
		return s[1 : len(s)-1]
	}
	return s
}

func parseFlowSeq(s string, num int) (any, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("yaml: line %d: unterminated flow sequence %q", num, s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return []any{}, nil
	}
	parts, err := splitFlow(inner, num)
	if err != nil {
		return nil, err
	}
	out := make([]any, len(parts))
	for i, part := range parts {
		v, err := parseScalar(part, num)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func parseFlowMap(s string, num int) (any, error) {
	if !strings.HasSuffix(s, "}") {
		return nil, fmt.Errorf("yaml: line %d: unterminated flow mapping %q", num, s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	out := map[string]any{}
	if inner == "" {
		return out, nil
	}
	parts, err := splitFlow(inner, num)
	if err != nil {
		return nil, err
	}
	for _, part := range parts {
		i := strings.Index(part, ":")
		if i < 0 {
			return nil, fmt.Errorf("yaml: line %d: flow mapping entry %q has no colon", num, part)
		}
		key := unquote(strings.TrimSpace(part[:i]))
		v, err := parseScalar(strings.TrimSpace(part[i+1:]), num)
		if err != nil {
			return nil, err
		}
		out[key] = v
	}
	return out, nil
}

// splitFlow splits a flow body on top-level commas.
func splitFlow(s string, num int) ([]string, error) {
	var parts []string
	depth := 0
	inSingle, inDouble := false, false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'' && !inDouble:
			inSingle = !inSingle
		case c == '"' && !inSingle:
			inDouble = !inDouble
		case inSingle || inDouble:
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("yaml: line %d: unbalanced brackets in %q", num, s)
			}
		case c == ',' && depth == 0:
			parts = append(parts, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if depth != 0 || inSingle || inDouble {
		return nil, fmt.Errorf("yaml: line %d: unbalanced flow syntax in %q", num, s)
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	return parts, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SpecFromYAML parses a pipeline specification document:
//
//	name: my_pipeline
//	stages:
//	  - name: read_props
//	    op: read_table
//	    params: {table: properties}
//	  - name: joined
//	    op: join
//	    inputs: [read_props, read_train]
//	    params: {on: parcelid}
func SpecFromYAML(src string) (Spec, error) {
	doc, err := ParseYAML(src)
	if err != nil {
		return Spec{}, err
	}
	root, ok := doc.(map[string]any)
	if !ok {
		return Spec{}, fmt.Errorf("pipeline: spec root must be a mapping")
	}
	var spec Spec
	if name, ok := root["name"].(string); ok {
		spec.Name = name
	} else {
		return Spec{}, fmt.Errorf("pipeline: spec needs a string name")
	}
	stages, ok := root["stages"].([]any)
	if !ok {
		return Spec{}, fmt.Errorf("pipeline: spec needs a stages list")
	}
	for i, raw := range stages {
		m, ok := raw.(map[string]any)
		if !ok {
			return Spec{}, fmt.Errorf("pipeline: stage %d is not a mapping", i)
		}
		var ss StageSpec
		if ss.Name, ok = m["name"].(string); !ok {
			return Spec{}, fmt.Errorf("pipeline: stage %d needs a name", i)
		}
		if ss.Op, ok = m["op"].(string); !ok {
			return Spec{}, fmt.Errorf("pipeline: stage %q needs an op", ss.Name)
		}
		if ins, ok := m["inputs"]; ok {
			ss.Inputs, err = toStrList(ins)
			if err != nil {
				return Spec{}, fmt.Errorf("pipeline: stage %q inputs: %w", ss.Name, err)
			}
		}
		if outs, ok := m["outputs"]; ok {
			ss.Outputs, err = toStrList(outs)
			if err != nil {
				return Spec{}, fmt.Errorf("pipeline: stage %q outputs: %w", ss.Name, err)
			}
		} else if out, ok := m["output"].(string); ok {
			ss.Outputs = []string{out}
		}
		if params, ok := m["params"]; ok {
			pm, ok := params.(map[string]any)
			if !ok {
				return Spec{}, fmt.Errorf("pipeline: stage %q params must be a mapping", ss.Name)
			}
			ss.Params = pm
		}
		spec.Stages = append(spec.Stages, ss)
	}
	return spec, nil
}

func toStrList(v any) ([]string, error) {
	switch list := v.(type) {
	case []any:
		out := make([]string, len(list))
		for i, e := range list {
			s, ok := e.(string)
			if !ok {
				return nil, fmt.Errorf("element %d is %T, want string", i, e)
			}
			out[i] = s
		}
		return out, nil
	case string:
		return []string{list}, nil
	}
	return nil, fmt.Errorf("want a list of strings, got %T", v)
}
