package colstore

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"mistique/internal/quant"
)

func key(model, interm, col string, block int) ColumnKey {
	return ColumnKey{Model: model, Intermediate: interm, Column: col, Block: block}
}

func randCol(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32() * 100
	}
	return out
}

func openTest(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, Config{})
	vals := randCol(1000, 1)
	res, err := s.PutColumn(key("m", "i0", "c0", 0), vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deduped || res.EncodedBytes != 4000 {
		t.Fatalf("unexpected put result %+v", res)
	}
	got, err := s.GetColumn(key("m", "i0", "c0", 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
	if !s.Has(key("m", "i0", "c0", 0)) || s.Has(key("m", "i0", "c1", 0)) {
		t.Fatal("Has broken")
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	s := openTest(t, Config{})
	k := key("m", "i", "c", 0)
	if _, err := s.PutColumn(k, randCol(10, 1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutColumn(k, randCol(10, 2), nil); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestExactDedup(t *testing.T) {
	s := openTest(t, Config{})
	vals := randCol(1000, 2)
	r1, err := s.PutColumn(key("m1", "i", "c", 0), vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.PutColumn(key("m2", "i", "c", 0), vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Deduped || r2.ID != r1.ID {
		t.Fatalf("identical chunk not deduped: %+v vs %+v", r1, r2)
	}
	st := s.Stats()
	if st.ChunksStored != 1 || st.ChunksDeduped != 1 || st.ChunksPut != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.StoredBytes != 4000 || st.LogicalBytes != 8000 {
		t.Fatalf("byte accounting %+v", st)
	}
	// Both keys readable.
	for _, m := range []string{"m1", "m2"} {
		got, err := s.GetColumn(key(m, "i", "c", 0))
		if err != nil || got[0] != vals[0] {
			t.Fatalf("read after dedup (%s): %v", m, err)
		}
	}
}

func TestExactDedupDistinguishesQuantizers(t *testing.T) {
	s := openTest(t, Config{})
	vals := []float32{0, 0, 0, 0} // encodes to zero bytes under any codec
	if _, err := s.PutColumn(key("m", "i", "a", 0), vals, quant.NewFull()); err != nil {
		t.Fatal(err)
	}
	r, err := s.PutColumn(key("m", "i", "b", 0), []float32{0, 0}, quant.NewFull())
	if err != nil {
		t.Fatal(err)
	}
	// Different lengths encode differently (8 vs 16 bytes), so no dedup.
	if r.Deduped {
		t.Fatal("chunks of different lengths deduped")
	}
}

func TestDisableExactDedup(t *testing.T) {
	s := openTest(t, Config{DisableExactDedup: true})
	vals := randCol(100, 3)
	s.PutColumn(key("m1", "i", "c", 0), vals, nil)
	r, _ := s.PutColumn(key("m2", "i", "c", 0), vals, nil)
	if r.Deduped {
		t.Fatal("dedup happened despite being disabled")
	}
	if st := s.Stats(); st.ChunksStored != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSimilarityCoLocation(t *testing.T) {
	s := openTest(t, Config{Mode: ModeSimilarity, SimilarityThreshold: 0.5})
	base := randCol(1000, 4)
	if _, err := s.PutColumn(key("m", "i0", "c", 0), base, nil); err != nil {
		t.Fatal(err)
	}
	// Near-duplicate: perturb 5% of values.
	near := append([]float32(nil), base...)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		near[rng.Intn(len(near))] += 1000
	}
	r, err := s.PutColumn(key("m", "i1", "c", 0), near, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Deduped {
		t.Fatal("near-duplicate exactly deduped?!")
	}
	if !r.CoLocated {
		t.Fatal("similar chunk was not co-located")
	}
	// A completely different column should open a new partition.
	other := randCol(1000, 6)
	for i := range other {
		other[i] += 1e6
	}
	r2, err := s.PutColumn(key("m", "i2", "c", 0), other, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CoLocated {
		t.Fatal("dissimilar chunk co-located")
	}
}

func TestFlushAndReadBack(t *testing.T) {
	s := openTest(t, Config{})
	keys := make([]ColumnKey, 20)
	vals := make([][]float32, 20)
	for i := range keys {
		keys[i] = key("m", "i", fmt.Sprintf("c%d", i), 0)
		vals[i] = randCol(500, int64(10+i))
		if _, err := s.PutColumn(keys[i], vals[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		got, err := s.GetColumn(k)
		if err != nil {
			t.Fatalf("read %v after drop: %v", k, err)
		}
		for j := range got {
			if got[j] != vals[i][j] {
				t.Fatalf("col %d value %d mismatch after disk round trip", i, j)
			}
		}
	}
	if st := s.Stats(); st.DiskReads == 0 || st.DiskWrites == 0 {
		t.Fatalf("expected disk IO, stats %+v", st)
	}
	n, err := s.DiskBytes()
	if err != nil || n == 0 {
		t.Fatalf("DiskBytes = %d, %v", n, err)
	}
}

func TestQuantizedColumnsRoundTripThroughDisk(t *testing.T) {
	s := openTest(t, Config{})
	vals := randCol(2000, 11)
	q8, err := quant.FitKBit(vals, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := q8.Apply(vals)
	if _, err := s.PutColumn(key("m", "i", "c", 0), vals, q8); err != nil {
		t.Fatal(err)
	}
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetColumn(key("m", "i", "c", 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quantized round trip mismatch at %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestEvictionUnderMemoryPressure(t *testing.T) {
	// Budget of ~40KB with 4KB chunks and 8KB partitions forces eviction.
	s := openTest(t, Config{MemBudgetBytes: 40 << 10, PartitionTargetBytes: 8 << 10})
	for i := 0; i < 50; i++ {
		k := key("m", "i", fmt.Sprintf("c%d", i), 0)
		if _, err := s.PutColumn(k, randCol(1024, int64(100+i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions, stats %+v", st)
	}
	// All columns still readable (evicted ones come back from disk).
	for i := 0; i < 50; i++ {
		if _, err := s.GetColumn(key("m", "i", fmt.Sprintf("c%d", i), 0)); err != nil {
			t.Fatalf("column %d unreadable after eviction: %v", i, err)
		}
	}
}

func TestScatterModeSpreadsChunks(t *testing.T) {
	s := openTest(t, Config{Mode: ModeScatter, ScatterWays: 4})
	for i := 0; i < 8; i++ {
		k := key("m", "i", fmt.Sprintf("c%d", i), 0)
		if _, err := s.PutColumn(k, randCol(100, int64(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Partitions < 4 {
		t.Fatalf("scatter used only %d partitions", st.Partitions)
	}
}

func TestGetMissingColumn(t *testing.T) {
	s := openTest(t, Config{})
	if _, err := s.GetColumn(key("no", "such", "col", 0)); err == nil {
		t.Fatal("expected error for missing column")
	}
	if _, err := s.GetChunk(ChunkID{Partition: 99, Index: 0}); err == nil {
		t.Fatal("expected error for missing partition")
	}
}

func TestLookupAndKeyString(t *testing.T) {
	s := openTest(t, Config{})
	k := key("m", "i", "c", 2)
	if _, ok := s.Lookup(k); ok {
		t.Fatal("Lookup hit before put")
	}
	s.PutColumn(k, randCol(10, 1), nil)
	if _, ok := s.Lookup(k); !ok {
		t.Fatal("Lookup miss after put")
	}
	if k.String() != "m.i.c[2]" {
		t.Fatalf("key string %q", k.String())
	}
}

// TestCompressionBenefitsFromCoLocation is the essence of Fig. 14: storing
// similar columns in the same partition compresses better than scattering
// them across partitions.
func TestCompressionBenefitsFromCoLocation(t *testing.T) {
	mkCols := func() [][]float32 {
		base := randCol(4096, 42)
		cols := make([][]float32, 16)
		for i := range cols {
			c := append([]float32(nil), base...)
			// 10% of entries perturbed per column.
			rng := rand.New(rand.NewSource(int64(i)))
			for j := 0; j < len(c)/10; j++ {
				c[rng.Intn(len(c))] = rng.Float32() * 100
			}
			cols[i] = c
		}
		return cols
	}

	measure := func(mode Mode) int64 {
		s, err := Open(t.TempDir(), Config{Mode: mode, SimilarityThreshold: 0.3, ScatterWays: 16})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range mkCols() {
			if _, err := s.PutColumn(key("m", "i", fmt.Sprintf("c%d", i), 0), c, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		n, err := s.DiskBytes()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	together := measure(ModeSimilarity)
	scattered := measure(ModeScatter)
	if together >= scattered {
		t.Fatalf("co-location did not help: together=%d scattered=%d", together, scattered)
	}
}

func BenchmarkPutColumn1K(b *testing.B) {
	s, err := Open(b.TempDir(), Config{})
	if err != nil {
		b.Fatal(err)
	}
	vals := randCol(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := key("m", "i", fmt.Sprintf("c%d", i), 0)
		if _, err := s.PutColumn(k, vals, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReopenReadsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][]float32{}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("c%d", i)
		vals[name] = randCol(300, int64(40+i))
		if _, err := s.PutColumn(key("m", "i", name, 0), vals[name], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// A brand-new Store over the same directory serves the old chunks.
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range vals {
		got, err := s2.GetColumn(key("m", "i", name, 0))
		if err != nil {
			t.Fatalf("reopened read %s: %v", name, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("reopened value mismatch %s[%d]", name, j)
			}
		}
	}
	// And accepts new writes that don't collide.
	if _, err := s2.PutColumn(key("m", "i", "fresh", 0), randCol(10, 1), nil); err != nil {
		t.Fatal(err)
	}
	// Old keys are still known, so re-puts are rejected.
	if _, err := s2.PutColumn(key("m", "i", "c0", 0), randCol(10, 2), nil); err == nil {
		t.Fatal("reopened store accepted duplicate key")
	}
}

func TestReopenWithoutFlushLosesNothingDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.PutColumn(key("m", "i", "c", 0), randCol(10, 1), nil)
	// No Flush: reopening sees an empty (but valid) store.
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Has(key("m", "i", "c", 0)) {
		t.Fatal("unflushed chunk visible after reopen")
	}
}

func TestCorruptPartitionFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	k := key("m", "i", "c", 0)
	if _, err := s.PutColumn(k, randCol(100, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Truncate the partition file, then force a disk read.
	matches, _ := filepath.Glob(filepath.Join(dir, "partition_*.bin.gz"))
	if len(matches) != 1 {
		t.Fatalf("partitions on disk: %v", matches)
	}
	if err := os.Truncate(matches[0], 5); err != nil {
		t.Fatal(err)
	}
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetColumn(k); err == nil {
		t.Fatal("corrupt partition read succeeded")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := openTest(t, Config{MemBudgetBytes: 64 << 10, PartitionTargetBytes: 16 << 10})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				k := key("m", fmt.Sprintf("i%d", g), fmt.Sprintf("c%d", i), 0)
				vals := randCol(512, int64(g*100+i))
				if _, err := s.PutColumn(k, vals, nil); err != nil {
					errs <- err
					return
				}
				got, err := s.GetColumn(k)
				if err != nil {
					errs <- err
					return
				}
				if got[0] != vals[0] {
					errs <- fmt.Errorf("goroutine %d col %d mismatch", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPutColumnQuickProperty(t *testing.T) {
	s := openTest(t, Config{})
	i := 0
	prop := func(raw []float32) bool {
		i++
		if len(raw) == 0 {
			return true
		}
		k := key("q", "i", fmt.Sprintf("c%d", i), 0)
		if _, err := s.PutColumn(k, raw, nil); err != nil {
			return false
		}
		got, err := s.GetColumn(k)
		if err != nil || len(got) != len(raw) {
			return false
		}
		for j := range raw {
			// NaNs must round-trip as NaNs (bit patterns may differ).
			if math.IsNaN(float64(raw[j])) {
				if !math.IsNaN(float64(got[j])) {
					return false
				}
				continue
			}
			if got[j] != raw[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
