package colstore

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"mistique/internal/codec"
)

// The manifest persists the store's logical state — the column→chunk map
// and per-partition bookkeeping — so a store directory can be reopened and
// served without re-logging. Partition payloads stay in their own files;
// the manifest is small and rewritten atomically and durably (unique temp
// file, fsync file + directory, rename) on every Flush. A monotonically
// increasing generation number stamps each write, so recovery and tests
// can tell which logical state survived a crash.

const (
	manifestName    = "MANIFEST.json.gz"
	manifestVersion = 2
)

// manifestBufPool recycles the scratch buffer the manifest is compressed
// into before the atomic file write.
var manifestBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// errCorruptManifest marks a manifest that exists but cannot be decoded.
// Open quarantines it and starts from an empty logical state instead of
// aborting; the partition files it referenced are quarantined by the
// recovery sweep and the data is rebuilt by re-logging or re-running.
var errCorruptManifest = errors.New("colstore: corrupt manifest")

type manifestColumn struct {
	Key   ColumnKey `json:"key"`
	Chunk ChunkID   `json:"chunk"`
}

type manifestZone struct {
	Chunk ChunkID `json:"chunk"`
	Min   float32 `json:"min"`
	Max   float32 `json:"max"`
	Count int     `json:"count"`
}

type manifestPartition struct {
	ID     int64 `json:"id"`
	Chunks int   `json:"chunks"`
	Bytes  int64 `json:"bytes"`
	Sealed bool  `json:"sealed"`
	// Raw is the uncompressed partition-image size, used to presize the
	// decode arena on page-in (omitted by older manifests; 0 = unknown).
	Raw int64 `json:"raw,omitempty"`
	// Gen is the partition's file generation (compaction bumps it).
	Gen int `json:"gen,omitempty"`
	// Lost records a quarantined partition so reopening keeps answering
	// ErrUnavailable (and the rerun fallback) for its chunks.
	Lost bool `json:"lost,omitempty"`
}

// manifestDelta records one delta-generation chunk's chain link. Persisted
// so a reopened store knows every chain's shape without paging partitions
// in: recovery propagates lost bases to their dependents, and the cost
// model charges chain reads their amplification, both from this registry.
type manifestDelta struct {
	Chunk ChunkID `json:"chunk"`
	Base  ChunkID `json:"base"`
	Depth int     `json:"depth"`
}

type manifest struct {
	Version    int                 `json:"version"`
	Generation int64               `json:"generation,omitempty"`
	NextPart   int64               `json:"next_partition"`
	Columns    []manifestColumn    `json:"columns"`
	Partitions []manifestPartition `json:"partitions"`
	Zones      []manifestZone      `json:"zones,omitempty"`
	Deltas     []manifestDelta     `json:"deltas,omitempty"`
	Stats      Stats               `json:"stats"`
}

// writeManifestLocked persists the logical state, atomically (unique temp
// + rename, so concurrent stores or a crash can never interleave or tear
// the published file) and durably (fsync file and directory). Caller
// holds s.mu.
func (s *Store) writeManifestLocked() error {
	s.generation++
	m := manifest{Version: manifestVersion, Generation: s.generation, NextPart: s.nextPart, Stats: s.stats}
	for k, id := range s.columns {
		m.Columns = append(m.Columns, manifestColumn{Key: k, Chunk: id})
	}
	for id, z := range s.zones {
		m.Zones = append(m.Zones, manifestZone{Chunk: id, Min: z.min, Max: z.max, Count: z.count})
	}
	for id, d := range s.deltas {
		m.Deltas = append(m.Deltas, manifestDelta{Chunk: id, Base: d.Base, Depth: d.Depth})
	}
	for _, p := range s.parts {
		m.Partitions = append(m.Partitions, manifestPartition{
			ID:     p.id,
			Chunks: len(p.chunks),
			Bytes:  p.bytes,
			Sealed: p.sealed,
			Raw:    p.raw,
			Gen:    p.gen,
			Lost:   p.lost,
		})
	}
	blob, err := json.Marshal(&m)
	if err != nil {
		return fmt.Errorf("colstore: marshal manifest: %w", err)
	}
	buf := manifestBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer manifestBufPool.Put(buf)
	// The manifest is small and rewritten on every flush: compress it at
	// BestSpeed through the shared pooled writers (the level only affects
	// the file on disk, readers are level-agnostic).
	zw, err := codec.GrabGzipWriter(buf, gzip.BestSpeed)
	if err != nil {
		return fmt.Errorf("colstore: compress manifest: %w", err)
	}
	_, werr := zw.Write(blob)
	cerr := zw.Close()
	codec.ReleaseGzipWriter(zw, gzip.BestSpeed)
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("colstore: compress manifest: %w", werr)
	}
	path := filepath.Join(s.dir, manifestName)
	f, err := s.fs.CreateTemp(s.dir, manifestName+".tmp*")
	if err != nil {
		return fmt.Errorf("colstore: create manifest temp: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(buf.Bytes())
	if err == nil {
		err = f.Sync()
		if err == nil {
			s.stats.FsyncCount++
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		s.fs.Remove(tmp) // best effort; a crashed process leaves the orphan
		return fmt.Errorf("colstore: write manifest: %w", err)
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("colstore: publish manifest: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("colstore: sync manifest dir: %w", err)
	}
	s.stats.FsyncCount++
	return nil
}

// loadManifest restores logical state from a previous session, if present.
// Partitions come back payload-free (sealed, on disk) and are paged in on
// first read. Dedup hash tables and LSH signatures are not persisted: new
// chunks simply will not dedup against pre-restart data, a deliberately
// conservative trade-off (correctness is unaffected).
//
// A manifest that exists but cannot be decoded returns errCorruptManifest
// (wrapped); real IO errors are returned as-is.
func (s *Store) loadManifest() error {
	raw, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("colstore: read manifest: %w", err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("%w: gunzip: %v", errCorruptManifest, err)
	}
	blob, err := io.ReadAll(zr)
	if err != nil {
		return fmt.Errorf("%w: gunzip: %v", errCorruptManifest, err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return fmt.Errorf("%w: parse: %v", errCorruptManifest, err)
	}
	if m.Version != 1 && m.Version != manifestVersion {
		return fmt.Errorf("%w: unsupported version %d", errCorruptManifest, m.Version)
	}
	s.generation = m.Generation
	s.nextPart = m.NextPart
	s.stats = m.Stats
	for _, mc := range m.Columns {
		s.columns[mc.Key] = mc.Chunk
	}
	for _, mz := range m.Zones {
		s.zones[mz.Chunk] = zone{min: mz.Min, max: mz.Max, count: mz.Count}
	}
	for _, md := range m.Deltas {
		s.deltas[md.Chunk] = deltaRef{Base: md.Base, Depth: md.Depth}
	}
	for _, mp := range m.Partitions {
		s.parts[mp.ID] = &partition{
			id:         mp.ID,
			bytes:      mp.Bytes,
			sealed:     true, // restored partitions never grow
			onDisk:     !mp.Lost,
			raw:        mp.Raw,
			gen:        mp.Gen,
			lost:       mp.Lost,
			chunks:     nil, // paged in on demand
			diskChunks: -1,  // unknown until the recovery sweep verifies
			wantChunks: mp.Chunks,
		}
	}
	return nil
}
