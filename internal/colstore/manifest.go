package colstore

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The manifest persists the store's logical state — the column→chunk map
// and per-partition bookkeeping — so a store directory can be reopened and
// served without re-logging. Partition payloads stay in their own files;
// the manifest is small and rewritten atomically on every Flush.

const manifestName = "MANIFEST.json.gz"

type manifestColumn struct {
	Key   ColumnKey `json:"key"`
	Chunk ChunkID   `json:"chunk"`
}

type manifestZone struct {
	Chunk ChunkID `json:"chunk"`
	Min   float32 `json:"min"`
	Max   float32 `json:"max"`
	Count int     `json:"count"`
}

type manifestPartition struct {
	ID     int64 `json:"id"`
	Chunks int   `json:"chunks"`
	Bytes  int64 `json:"bytes"`
	Sealed bool  `json:"sealed"`
}

type manifest struct {
	Version    int                 `json:"version"`
	NextPart   int64               `json:"next_partition"`
	Columns    []manifestColumn    `json:"columns"`
	Partitions []manifestPartition `json:"partitions"`
	Zones      []manifestZone      `json:"zones,omitempty"`
	Stats      Stats               `json:"stats"`
}

// writeManifestLocked persists the logical state. Caller holds s.mu.
func (s *Store) writeManifestLocked() error {
	m := manifest{Version: 1, NextPart: s.nextPart, Stats: s.stats}
	for k, id := range s.columns {
		m.Columns = append(m.Columns, manifestColumn{Key: k, Chunk: id})
	}
	for id, z := range s.zones {
		m.Zones = append(m.Zones, manifestZone{Chunk: id, Min: z.min, Max: z.max, Count: z.count})
	}
	for _, p := range s.parts {
		m.Partitions = append(m.Partitions, manifestPartition{
			ID:     p.id,
			Chunks: len(p.chunks),
			Bytes:  p.bytes,
			Sealed: p.sealed,
		})
	}
	blob, err := json.Marshal(&m)
	if err != nil {
		return fmt.Errorf("colstore: marshal manifest: %w", err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(blob); err != nil {
		return fmt.Errorf("colstore: compress manifest: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("colstore: compress manifest: %w", err)
	}
	path := filepath.Join(s.dir, manifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("colstore: write manifest: %w", err)
	}
	return os.Rename(tmp, path)
}

// loadManifest restores logical state from a previous session, if present.
// Partitions come back payload-free (sealed, on disk) and are paged in on
// first read. Dedup hash tables and LSH signatures are not persisted: new
// chunks simply will not dedup against pre-restart data, a deliberately
// conservative trade-off (correctness is unaffected).
func (s *Store) loadManifest() error {
	raw, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("colstore: read manifest: %w", err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("colstore: gunzip manifest: %w", err)
	}
	blob, err := io.ReadAll(zr)
	if err != nil {
		return fmt.Errorf("colstore: gunzip manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return fmt.Errorf("colstore: parse manifest: %w", err)
	}
	if m.Version != 1 {
		return fmt.Errorf("colstore: unsupported manifest version %d", m.Version)
	}
	s.nextPart = m.NextPart
	s.stats = m.Stats
	for _, mc := range m.Columns {
		s.columns[mc.Key] = mc.Chunk
	}
	for _, mz := range m.Zones {
		s.zones[mz.Chunk] = zone{min: mz.Min, max: mz.Max, count: mz.Count}
	}
	for _, mp := range m.Partitions {
		s.parts[mp.ID] = &partition{
			id:     mp.ID,
			bytes:  mp.Bytes,
			sealed: true, // restored partitions never grow
			onDisk: true,
			chunks: nil, // paged in on demand
		}
	}
	return nil
}
