package colstore

import (
	"bytes"
	"compress/gzip"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mistique/internal/codec"
	"mistique/internal/faultfs"
	"mistique/internal/quant"
)

// testChunks builds n small FULL-codec chunks with deterministic values.
func testChunks(t testing.TB, n int) []*chunk {
	t.Helper()
	q := quant.NewFull()
	chunks := make([]*chunk, n)
	for i := range chunks {
		vals := randCol(64, int64(100+i))
		chunks[i] = &chunk{enc: q.Encode(nil, vals), count: len(vals), q: q}
	}
	return chunks
}

// TestSerializePartitionHeadroom is the regression test for the pooled-
// buffer regrow bug: serializing a slightly larger snapshot of the same
// partition into the previously grown buffer must NOT reallocate, because
// the grow path reserves headroom beyond the exact need. Before the fix
// the buffer was grown to the exact image size, so every flush of a
// monotonically growing partition reallocated and the pool never
// converged.
func TestSerializePartitionHeadroom(t *testing.T) {
	chunks := testChunks(t, 32)
	img := serializePartition(nil, chunks)
	if cap(img) <= len(img) {
		t.Fatalf("grow reserved no headroom: len=%d cap=%d", len(img), cap(img))
	}
	// One more small chunk — the shape of the next flush of this partition.
	grown := append(chunks, testChunks(t, 1)...)
	img2 := serializePartition(img[:0], grown)
	if len(img2) <= len(img) {
		t.Fatalf("adding a chunk did not grow the image: %d -> %d", len(img), len(img2))
	}
	if &img[0] != &img2[0] {
		t.Fatalf("serializing %d extra bytes into a buffer with %d spare reallocated",
			len(img2)-len(img), cap(img)-len(img))
	}
}

// TestPartitionFileRoundTripCodecs writes and reads one partition file
// under every registered codec and checks the decoded chunks match
// bit-exact, plus the on-disk framing rules: gzip files keep the legacy
// bare-gzip framing (old binaries can read them), everything else gets
// the v3 container with its codec ID in the header.
func TestPartitionFileRoundTripCodecs(t *testing.T) {
	chunks := testChunks(t, 8)
	for _, name := range []string{"gzip", "store", "actz"} {
		t.Run(name, func(t *testing.T) {
			c, err := codec.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), partFileName(0, 0))
			size, raw, _, err := writePartitionFileAt(faultfs.OS(), path, chunks, c, gzip.BestSpeed)
			if err != nil {
				t.Fatal(err)
			}
			head, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(head)) != size {
				t.Fatalf("reported size %d, file has %d", size, len(head))
			}
			if name == "gzip" {
				if head[0] != 0x1f || head[1] != 0x8b {
					t.Fatalf("gzip file lost its legacy framing: % x", head[:4])
				}
			} else {
				if string(head[:4]) != contMagic || head[6] != c.ID() {
					t.Fatalf("v3 container header wrong: % x", head[:contHdrLen])
				}
			}
			got, _, fileBytes, err := readPartitionFile(path, raw)
			if err != nil {
				t.Fatal(err)
			}
			if fileBytes != size || len(got) != len(chunks) {
				t.Fatalf("read back %d chunks / %d bytes, want %d / %d", len(got), fileBytes, len(chunks), size)
			}
			for i := range chunks {
				if got[i].count != chunks[i].count || !bytesEqual(got[i].enc, chunks[i].enc) {
					t.Fatalf("chunk %d changed across the disk round trip", i)
				}
			}
		})
	}
}

// TestLegacyFilesReadableUnderAnyCodecConfig: a store that wrote its
// files with gzip must reopen and serve them even when the config now
// says actz (and vice versa) — the reader dispatches on each file's own
// framing, never on the config.
func TestLegacyFilesReadableUnderAnyCodecConfig(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{Codec: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	want := fillStore(t, s, "m", 4, 400)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{Codec: "actz"})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.LastRecovery().Clean() {
		t.Fatalf("recovery not clean: %+v", s2.LastRecovery())
	}
	mustReadExact(t, s2, want)
	// New data flushed by this config lands in actz files; both vintages
	// must then serve from a third store with the default config.
	more := fillStore(t, s2, "m2", 4, 900)
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustReadExact(t, s3, want)
	mustReadExact(t, s3, more)
}

// TestUnknownCodecIDUnsupported: a v3 container naming a codec this
// binary does not have must fail with ErrUnsupportedFormat.
func TestUnknownCodecIDUnsupported(t *testing.T) {
	chunks := testChunks(t, 2)
	path := filepath.Join(t.TempDir(), partFileName(0, 0))
	if _, _, _, err := writePartitionFileAt(faultfs.OS(), path, chunks, codec.MustByID(codec.IDActz), 0); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[6] = 0x7e // an ID nothing registers
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = readPartitionFile(path, 0)
	if !errors.Is(err, ErrUnsupportedFormat) {
		t.Fatalf("unknown codec ID: got %v, want ErrUnsupportedFormat", err)
	}
}

// TestFutureContainerVersionUnsupported: same for a bumped container
// version, even when the codec ID would be known.
func TestFutureContainerVersionUnsupported(t *testing.T) {
	chunks := testChunks(t, 2)
	path := filepath.Join(t.TempDir(), partFileName(0, 0))
	if _, _, _, err := writePartitionFileAt(faultfs.OS(), path, chunks, codec.MustByID(codec.IDStore), 0); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[4] = contVersion + 1
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = readPartitionFile(path, 0)
	if !errors.Is(err, ErrUnsupportedFormat) {
		t.Fatalf("future container version: got %v, want ErrUnsupportedFormat", err)
	}
}

// TestFutureImageVersionUnsupported: an inner image stamped with a
// version beyond partVersion is a forward-compat rejection too, not a
// CRC error.
func TestFutureImageVersionUnsupported(t *testing.T) {
	chunks := testChunks(t, 2)
	img := serializePartition(nil, chunks)
	img[4] = partVersionDelta + 1
	_, _, err := parsePartition(img)
	if !errors.Is(err, ErrUnsupportedFormat) {
		t.Fatalf("future image version: got %v, want ErrUnsupportedFormat", err)
	}
}

// evilCodec round-trips wrong: Decompress flips a byte in the middle of
// the image. It stands in for any codec bug — the chunk CRCs must catch
// the damage so no query ever sees wrong values.
type evilCodec struct{}

func (evilCodec) Name() string { return "evil-test" }
func (evilCodec) ID() byte     { return 0x80 }
func (evilCodec) Compress(dst, src []byte, _ int) ([]byte, error) {
	return append(dst, src...), nil
}
func (evilCodec) Decompress(dst, src []byte) ([]byte, error) {
	out := append(dst, src...)
	if n := len(out); n > 0 {
		out[n/2] ^= 0x01
	}
	return out, nil
}

// TestWrongCodecRoundTripCaughtByCRC: a codec that silently corrupts its
// payload must be caught by the image checksums — the read fails, it is
// NOT ErrUnsupportedFormat (the format was understood; the bytes are
// bad), and no chunks are returned.
func TestWrongCodecRoundTripCaughtByCRC(t *testing.T) {
	codec.Register(evilCodec{})
	chunks := testChunks(t, 4)
	path := filepath.Join(t.TempDir(), partFileName(0, 0))
	if _, _, _, err := writePartitionFileAt(faultfs.OS(), path, chunks, evilCodec{}, 0); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := readPartitionFile(path, 0)
	if err == nil {
		t.Fatal("corrupting decompress produced a clean read")
	}
	if errors.Is(err, ErrUnsupportedFormat) {
		t.Fatalf("CRC corruption misclassified as unsupported format: %v", err)
	}
	if got != nil {
		t.Fatal("corrupt read returned chunks alongside the error")
	}
}

// TestBareImageReadableViaSeam: readPartitionFrom's historical contract —
// an unframed image parses directly.
func TestBareImageReadableViaSeam(t *testing.T) {
	chunks := testChunks(t, 3)
	img := serializePartition(nil, chunks)
	got, _, err := readPartitionFrom(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(chunks) {
		t.Fatalf("bare image: %d chunks, want %d", len(got), len(chunks))
	}
}

// TestCompactMigratesCodec: a garbage-free store reopened under a
// different codec must have Compact rewrite every partition file into
// the configured codec (identity chunk remap), and a second Compact
// must leave the already-migrated files alone.
func TestCompactMigratesCodec(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{Codec: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	want := fillStore(t, s, "m", 4, 1300)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	codecOf := func(t *testing.T) map[string]byte {
		t.Helper()
		matches, err := filepath.Glob(filepath.Join(dir, "partition_*.bin.gz"))
		if err != nil || len(matches) == 0 {
			t.Fatalf("globbing partitions: %v (%d files)", err, len(matches))
		}
		ids := make(map[string]byte, len(matches))
		for _, m := range matches {
			id, err := fileCodecID(m)
			if err != nil {
				t.Fatalf("fileCodecID(%s): %v", m, err)
			}
			ids[m] = id
		}
		return ids
	}
	for p, id := range codecOf(t) {
		if id != codec.IDGzip {
			t.Fatalf("%s: codec %#x before migration, want gzip", p, id)
		}
	}

	s2, err := Open(dir, Config{Codec: "actz"})
	if err != nil {
		t.Fatal(err)
	}
	dropped, reclaimed, err := s2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || reclaimed != 0 {
		t.Fatalf("migration-only compact dropped %d chunks / %d bytes, want none", dropped, reclaimed)
	}
	after := codecOf(t)
	for p, id := range after {
		if id != codec.IDActz {
			t.Fatalf("%s: codec %#x after migration, want actz", p, id)
		}
	}
	mustReadExact(t, s2, want)

	// Same codec again: nothing to migrate, files must not be rewritten
	// (the generation-numbered file set stays identical).
	if _, _, err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	again := codecOf(t)
	if len(again) != len(after) {
		t.Fatalf("idempotent compact changed file count: %d -> %d", len(after), len(again))
	}
	for p := range after {
		if _, ok := again[p]; !ok {
			t.Fatalf("idempotent compact rewrote %s", p)
		}
	}

	// The migrated store must reopen cleanly under any config.
	s3, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !s3.LastRecovery().Clean() {
		t.Fatalf("recovery not clean after migration: %+v", s3.LastRecovery())
	}
	mustReadExact(t, s3, want)
}
