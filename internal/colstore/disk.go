package colstore

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mistique/internal/faultfs"
	"mistique/internal/quant"
)

// Partition file layout (after gzip):
//
//	magic   [4]byte "MQPT"
//	version uint16
//	nchunks uint32
//	per chunk:
//	  count   uint32 (number of values)
//	  qlen    uint32, quantizer blob
//	  elen    uint32, encoded payload
//	  crc32c  uint32 over the chunk's meta+quantizer+payload (v2)
//	crc32c  uint32 over every preceding byte (v2 whole-file footer)
//
// Version 2 adds the CRC32-C checksums; v1 files (no checksums) remain
// readable. Every read verifies both levels: a bit flip, truncation or
// torn write yields an error — never silently wrong values — and the
// store quarantines the file and falls back to re-running the model.
const (
	partMagic   = "MQPT"
	partVersion = 2
)

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64), shared by partition files and the metadata envelope.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Scratch pools for the flush and page-in hot paths. Ownership rule: a
// pooled object may be held only for the duration of one call; nothing
// returned to a caller may alias pooled memory. Partition images violate
// that deliberately in ONE place — parsePartition subslices its input
// arena into chunk payloads — so read-side arenas are never pooled (they
// become the partition's resident memory and die with it).
var (
	// imgBufPool recycles the uncompressed partition images the flush
	// pipeline serializes (capacity converges on PartitionTargetBytes) and
	// the compressed-file read buffers.
	imgBufPool sync.Pool
	// bwPool recycles the bufio.Writer between the gzip writer and the
	// partition file.
	bwPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, 64<<10) }}
	// gzwPools recycles gzip writers, one pool per compression level
	// (indexed level-gzip.HuffmanOnly); a gzip.Writer embeds its whole
	// deflate state (~1.3 MB), by far the largest per-flush allocation.
	gzwPools [gzip.BestCompression - gzip.HuffmanOnly + 1]sync.Pool
	// gzrPool recycles gzip readers (huffman tables + window).
	gzrPool sync.Pool
)

func grabBuf() []byte {
	if p, ok := imgBufPool.Get().(*[]byte); ok {
		return (*p)[:0]
	}
	return nil
}

func releaseBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	imgBufPool.Put(&b)
}

func grabGzipWriter(w io.Writer, level int) (*gzip.Writer, error) {
	if level < gzip.HuffmanOnly || level > gzip.BestCompression {
		return nil, fmt.Errorf("colstore: invalid compression level %d", level)
	}
	pool := &gzwPools[level-gzip.HuffmanOnly]
	if zw, ok := pool.Get().(*gzip.Writer); ok {
		zw.Reset(w)
		return zw, nil
	}
	return gzip.NewWriterLevel(w, level)
}

func releaseGzipWriter(zw *gzip.Writer, level int) {
	gzwPools[level-gzip.HuffmanOnly].Put(zw)
}

func grabGzipReader(r io.Reader) (*gzip.Reader, error) {
	if zr, ok := gzrPool.Get().(*gzip.Reader); ok {
		if err := zr.Reset(r); err != nil {
			gzrPool.Put(zr)
			return nil, err
		}
		return zr, nil
	}
	return gzip.NewReader(r)
}

func releaseGzipReader(zr *gzip.Reader) {
	gzrPool.Put(zr)
}

// partFileName is the on-disk name of one partition generation. Gen 0
// keeps the legacy name so pre-upgrade directories reopen unchanged;
// compaction bumps the generation and writes a new file, which makes the
// rewrite crash-safe (the manifest flips old→new atomically, and
// whichever file the surviving manifest names is intact).
func partFileName(pid int64, gen int) string {
	if gen == 0 {
		return fmt.Sprintf("partition_%08d.bin.gz", pid)
	}
	return fmt.Sprintf("partition_%08d.g%04d.bin.gz", pid, gen)
}

func (s *Store) partPathGen(pid int64, gen int) string {
	return filepath.Join(s.dir, partFileName(pid, gen))
}

// serializePartition appends the uncompressed partition image of chunks to
// dst in one pass: each chunk's meta+quantizer+payload lands contiguously,
// so its v2 CRC32-C is a single Checksum over that region, and the
// whole-file footer is one Checksum over the finished image. Cannot fail —
// every input is in memory.
func serializePartition(dst []byte, chunks []*chunk) []byte {
	need := 14 // header + file footer
	for _, c := range chunks {
		need += 16 + c.q.MarshaledSize() + len(c.enc)
	}
	if cap(dst)-len(dst) < need {
		dst = append(make([]byte, 0, len(dst)+need), dst...)
	}
	dst = append(dst, partMagic...)
	dst = binary.LittleEndian.AppendUint16(dst, partVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(chunks)))
	for _, c := range chunks {
		start := len(dst)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(c.count))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(c.q.MarshaledSize()))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.enc)))
		dst = c.q.AppendBinary(dst)
		dst = append(dst, c.enc...)
		chunkCRC := crc32.Checksum(dst[start:], castagnoli)
		dst = binary.LittleEndian.AppendUint32(dst, chunkCRC)
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst, castagnoli))
}

// writePartitionTo serializes chunks and writes the uncompressed image to
// w, returning the byte count (test seam for the partition-file fuzzer).
func writePartitionTo(w io.Writer, chunks []*chunk) (int64, error) {
	img := serializePartition(grabBuf(), chunks)
	n, err := w.Write(img)
	releaseBuf(img)
	return int64(n), err
}

// writeImageFileAt gzip-compresses a serialized partition image and writes
// it at path, atomically and durably: unique temp file, fsync the file,
// rename, fsync the parent directory — so a concurrent reader of the same
// path always sees a complete file and a crash at any point leaves either
// the old file or the new one, never a prefix. Returns the compressed file
// size and the number of fsyncs issued.
func writeImageFileAt(fs faultfs.FS, path string, img []byte, level int) (size, fsyncs int64, err error) {
	dir := filepath.Dir(path)
	f, err := fs.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, 0, fmt.Errorf("colstore: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	bw := bwPool.Get().(*bufio.Writer)
	bw.Reset(f)
	zw, err := grabGzipWriter(bw, level)
	if err == nil {
		_, err = zw.Write(img)
		if cerr := zw.Close(); err == nil {
			err = cerr
		}
		releaseGzipWriter(zw, level)
	}
	if err == nil {
		err = bw.Flush()
	}
	bwPool.Put(bw)
	if err == nil {
		// The write barrier: the data must be on the platter before the
		// rename publishes the name.
		err = f.Sync()
		if err == nil {
			fsyncs++
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fs.Remove(tmp) // best effort; a crashed process leaves the orphan
		return 0, fsyncs, fmt.Errorf("colstore: write partition file %s: %w", path, err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return 0, fsyncs, fmt.Errorf("colstore: rename %s: %w", tmp, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return 0, fsyncs, fmt.Errorf("colstore: sync dir %s: %w", dir, err)
	}
	fsyncs++
	st, err := os.Stat(path)
	if err != nil {
		return 0, fsyncs, err
	}
	return st.Size(), fsyncs, nil
}

// writePartitionFileAt serializes a chunk snapshot and writes it at path
// (see writeImageFileAt for the durability protocol). raw is the
// uncompressed image size, recorded in the manifest so a later page-in can
// size its decode arena exactly. Holds no Store locks: chunks are
// immutable, so the snapshot can be serialized concurrently with puts
// appending to the live partition.
func writePartitionFileAt(fs faultfs.FS, path string, chunks []*chunk, level int) (size, raw, fsyncs int64, err error) {
	img := serializePartition(grabBuf(), chunks)
	size, fsyncs, err = writeImageFileAt(fs, path, img, level)
	raw = int64(len(img))
	releaseBuf(img)
	return size, raw, fsyncs, err
}

// writePartitionLocked writes a partition's current chunks while the
// caller holds mu (eviction and DropCache stragglers use it; the parallel
// Flush path uses writeSnapshot instead).
func (s *Store) writePartitionLocked(p *partition) error {
	t0 := time.Now()
	size, raw, fsyncs, err := writePartitionFileAt(s.fs, s.partPathGen(p.id, p.gen), p.chunks, s.cfg.CompressionLevel)
	s.om.flushWriteSeconds.ObserveSince(t0)
	s.stats.FsyncCount += fsyncs
	if err != nil {
		return fmt.Errorf("colstore: write partition %d: %w", p.id, err)
	}
	p.dirty = false
	p.onDisk = true
	p.diskChunks = len(p.chunks)
	p.raw = raw
	s.stats.DiskWrites++
	s.stats.DiskWriteBytes += size
	return nil
}

// readPartitionFile opens, gunzips, decodes and checksum-verifies one
// partition file. rawHint, when positive, is the manifest's record of the
// uncompressed image size: the decode arena is allocated at exactly that
// size up front (a stale hint just costs a regrow). Holds no Store locks;
// safe to run concurrently with writers thanks to the atomic
// temp-and-rename write protocol.
func readPartitionFile(path string, rawHint int64) (chunks []*chunk, payload, fileBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	// Slurp the compressed file through a pooled buffer: partition files
	// are a few MB at most (PartitionTargetBytes before compression).
	comp := grabBuf()
	if cap(comp) < int(st.Size()) {
		comp = make([]byte, st.Size())
	} else {
		comp = comp[:st.Size()]
	}
	_, err = io.ReadFull(f, comp)
	f.Close()
	if err != nil {
		releaseBuf(comp)
		return nil, 0, 0, fmt.Errorf("read %s: %w", path, err)
	}
	zr, err := grabGzipReader(bytes.NewReader(comp))
	if err != nil {
		releaseBuf(comp)
		return nil, 0, 0, fmt.Errorf("gunzip: %w", err)
	}
	img, err := readAllSized(zr, int(rawHint))
	if cerr := zr.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("gunzip: %w", cerr)
	}
	releaseGzipReader(zr)
	releaseBuf(comp)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("gunzip: %w", err)
	}
	chunks, payload, err = parsePartition(img)
	if err != nil {
		return nil, 0, 0, err
	}
	return chunks, payload, st.Size(), nil
}

// readAllSized reads r to EOF into a fresh buffer with initial capacity
// hint (the arena parsePartition subslices — deliberately NOT pooled, see
// the pool ownership comment). An exact hint means zero regrows.
func readAllSized(r io.Reader, hint int) ([]byte, error) {
	if hint <= 0 {
		hint = 64 << 10
	}
	buf := make([]byte, 0, hint)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// readPartitionFrom reads an uncompressed partition image from r (test
// seam for the partition-file fuzzer; the production path is
// readPartitionFile).
func readPartitionFrom(r io.Reader) ([]*chunk, int64, error) {
	img, err := readAllSized(r, 0)
	if err != nil {
		return nil, 0, err
	}
	return parsePartition(img)
}

// loadPartitionLocked returns the resident partition, reading it from disk
// if its payload was evicted. The caller holds mu for the whole IO — this
// is the slow path kept for the lock-held walkers (Verify, Compact,
// GarbageBytes); the concurrent read path is Store.chunkRef.
func (s *Store) loadPartitionLocked(pid int64) (*partition, error) {
	p, ok := s.parts[pid]
	if !ok {
		return nil, fmt.Errorf("colstore: unknown partition %d", pid)
	}
	if p.lost {
		return nil, fmt.Errorf("colstore: partition %d: %w", pid, ErrUnavailable)
	}
	if p.chunks != nil {
		s.touchLocked(pid)
		return p, nil
	}
	chunks, payload, fileBytes, err := readPartitionFile(s.partPathGen(pid, p.gen), p.raw)
	if err != nil {
		s.quarantineLocked(p, err)
		return nil, fmt.Errorf("colstore: read partition %d: %v: %w", pid, err, ErrUnavailable)
	}
	p.chunks = chunks
	p.bytes = payload
	p.dirty = false
	s.memBytes += payload
	s.stats.DiskReads++
	s.stats.DiskReadBytes += fileBytes
	s.touchLocked(pid)
	if err := s.evictIfNeededLocked(); err != nil {
		return nil, err
	}
	if p.chunks == nil {
		// Pathological budget smaller than one partition: keep it resident
		// anyway for this read.
		p.chunks = chunks
		s.memBytes += payload
	}
	return p, nil
}

// Sanity bounds for partition decoding. A corrupt (or malicious) header
// must produce an error, not a multi-gigabyte allocation: length fields are
// validated before any buffer is sized from them.
const (
	maxChunkBlob  = 1 << 30 // quantizer table or encoded payload
	chunkPrealloc = 1 << 12 // initial chunk-slice capacity
)

// parsePartition decodes and checksum-verifies an uncompressed partition
// image. Chunk payloads are subslices of img (chunks are immutable and a
// partition's payloads live and die together, so one arena replaces a pair
// of allocations per chunk); img must therefore not be reused afterwards.
func parsePartition(img []byte) ([]*chunk, int64, error) {
	pos := 0
	// take returns the next n bytes of the image, or an io error shaped
	// like the streaming reader's (truncation maps to ErrUnexpectedEOF).
	take := func(n int) ([]byte, error) {
		if n > len(img)-pos {
			if pos == len(img) {
				return nil, io.EOF
			}
			return nil, io.ErrUnexpectedEOF
		}
		b := img[pos : pos+n]
		pos += n
		return b, nil
	}
	hdr, err := take(10)
	if err != nil {
		return nil, 0, err
	}
	if string(hdr[:4]) != partMagic {
		return nil, 0, fmt.Errorf("bad magic %q", hdr[:4])
	}
	version := binary.LittleEndian.Uint16(hdr[4:])
	if version != 1 && version != partVersion {
		return nil, 0, fmt.Errorf("unsupported version %d", version)
	}
	n := int(binary.LittleEndian.Uint32(hdr[6:]))
	prealloc := n
	if prealloc > chunkPrealloc {
		prealloc = chunkPrealloc // grow on demand; don't trust the header
	}
	chunks := make([]*chunk, 0, prealloc)
	// Chunk and quantizer structs come out of per-partition slabs (two
	// allocations instead of two per chunk). Pointers are taken only while
	// len < cap, so append never relocates a referenced element; past the
	// distrusted-header prealloc they fall back to singles.
	chunkSlab := make([]chunk, 0, prealloc)
	quantSlab := make([]quant.Quantizer, 0, prealloc)
	var payload int64
	for i := 0; i < n; i++ {
		metaStart := pos
		meta, err := take(12)
		if err != nil {
			return nil, 0, fmt.Errorf("chunk %d header: %w", i, err)
		}
		count := int(binary.LittleEndian.Uint32(meta))
		qlen := int(binary.LittleEndian.Uint32(meta[4:]))
		elen := int(binary.LittleEndian.Uint32(meta[8:]))
		if qlen > maxChunkBlob || elen > maxChunkBlob {
			return nil, 0, fmt.Errorf("chunk %d implausible sizes q=%d e=%d", i, qlen, elen)
		}
		qb, err := take(qlen)
		if err != nil {
			return nil, 0, fmt.Errorf("chunk %d quantizer: %w", i, err)
		}
		enc, err := take(elen)
		if err != nil {
			return nil, 0, fmt.Errorf("chunk %d payload: %w", i, err)
		}
		if version >= 2 {
			crcBuf, err := take(4)
			if err != nil {
				return nil, 0, fmt.Errorf("chunk %d checksum: %w", i, err)
			}
			want := binary.LittleEndian.Uint32(crcBuf)
			// meta, quantizer and payload are contiguous in the image: one
			// Checksum covers all three.
			if got := crc32.Checksum(img[metaStart:metaStart+12+qlen+elen], castagnoli); got != want {
				return nil, 0, fmt.Errorf("chunk %d checksum mismatch: file says %08x, data hashes to %08x", i, want, got)
			}
		}
		var q *quant.Quantizer
		if len(quantSlab) < cap(quantSlab) {
			quantSlab = append(quantSlab, quant.Quantizer{})
			q = &quantSlab[len(quantSlab)-1]
		} else {
			q = new(quant.Quantizer)
		}
		if err := q.UnmarshalBinary(qb); err != nil {
			return nil, 0, fmt.Errorf("chunk %d quantizer: %w", i, err)
		}
		var c *chunk
		if len(chunkSlab) < cap(chunkSlab) {
			chunkSlab = append(chunkSlab, chunk{enc: enc, count: count, q: q})
			c = &chunkSlab[len(chunkSlab)-1]
		} else {
			c = &chunk{enc: enc, count: count, q: q}
		}
		chunks = append(chunks, c)
		payload += int64(elen)
	}
	if version >= 2 {
		fileCRC := crc32.Checksum(img[:pos], castagnoli)
		foot, err := take(4)
		if err != nil {
			return nil, 0, fmt.Errorf("file footer: %w", err)
		}
		if want := binary.LittleEndian.Uint32(foot); want != fileCRC {
			return nil, 0, fmt.Errorf("file checksum mismatch: footer says %08x, contents hash to %08x", want, fileCRC)
		}
		if pos != len(img) {
			return nil, 0, fmt.Errorf("trailing bytes after footer")
		}
	}
	return chunks, payload, nil
}

func mkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func dirSize(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			// Temp files vanish mid-walk when a flush or compaction races
			// the scan; they are not part of the footprint.
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}
