package colstore

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mistique/internal/quant"
)

// Partition file layout (after gzip):
//
//	magic   [4]byte "MQPT"
//	version uint16
//	nchunks uint32
//	per chunk:
//	  count   uint32 (number of values)
//	  qlen    uint32, quantizer blob
//	  elen    uint32, encoded payload
const (
	partMagic   = "MQPT"
	partVersion = 1
)

func (s *Store) partPath(pid int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("partition_%08d.bin.gz", pid))
}

// writePartitionLocked gzip-compresses a partition and writes it to disk
// atomically (write temp, rename).
func (s *Store) writePartitionLocked(p *partition) error {
	path := s.partPath(p.id)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("colstore: create %s: %w", tmp, err)
	}
	bw := bufio.NewWriter(f)
	zw := gzip.NewWriter(bw)
	n, err := writePartitionTo(zw, p)
	if err == nil {
		err = zw.Close()
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("colstore: write partition %d: %w", p.id, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("colstore: rename %s: %w", tmp, err)
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	p.dirty = false
	p.onDisk = true
	s.stats.DiskWrites++
	s.stats.DiskWriteBytes += st.Size()
	_ = n
	return nil
}

func writePartitionTo(w io.Writer, p *partition) (int64, error) {
	var written int64
	put := func(b []byte) error {
		n, err := w.Write(b)
		written += int64(n)
		return err
	}
	hdr := make([]byte, 0, 10)
	hdr = append(hdr, partMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, partVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(p.chunks)))
	if err := put(hdr); err != nil {
		return written, err
	}
	for _, c := range p.chunks {
		qb, err := c.q.MarshalBinary()
		if err != nil {
			return written, err
		}
		meta := make([]byte, 0, 12)
		meta = binary.LittleEndian.AppendUint32(meta, uint32(c.count))
		meta = binary.LittleEndian.AppendUint32(meta, uint32(len(qb)))
		meta = binary.LittleEndian.AppendUint32(meta, uint32(len(c.enc)))
		if err := put(meta); err != nil {
			return written, err
		}
		if err := put(qb); err != nil {
			return written, err
		}
		if err := put(c.enc); err != nil {
			return written, err
		}
	}
	return written, nil
}

// loadPartitionLocked returns the resident partition, reading it from disk
// if its payload was evicted.
func (s *Store) loadPartitionLocked(pid int64) (*partition, error) {
	p, ok := s.parts[pid]
	if !ok {
		return nil, fmt.Errorf("colstore: unknown partition %d", pid)
	}
	if p.chunks != nil {
		s.touchLocked(pid)
		return p, nil
	}
	path := s.partPath(pid)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: open partition %d: %w", pid, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	zr, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("colstore: gunzip partition %d: %w", pid, err)
	}
	defer zr.Close()
	chunks, payload, err := readPartitionFrom(zr)
	if err != nil {
		return nil, fmt.Errorf("colstore: read partition %d: %w", pid, err)
	}
	p.chunks = chunks
	p.bytes = payload
	p.dirty = false
	s.memBytes += payload
	s.stats.DiskReads++
	s.stats.DiskReadBytes += st.Size()
	s.touchLocked(pid)
	if err := s.evictIfNeededLocked(); err != nil {
		return nil, err
	}
	if p.chunks == nil {
		// Pathological budget smaller than one partition: keep it resident
		// anyway for this read.
		p.chunks = chunks
		s.memBytes += payload
	}
	return p, nil
}

func readPartitionFrom(r io.Reader) ([]*chunk, int64, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 10)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, 0, err
	}
	if string(hdr[:4]) != partMagic {
		return nil, 0, fmt.Errorf("bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != partVersion {
		return nil, 0, fmt.Errorf("unsupported version %d", v)
	}
	n := int(binary.LittleEndian.Uint32(hdr[6:]))
	chunks := make([]*chunk, 0, n)
	var payload int64
	meta := make([]byte, 12)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, meta); err != nil {
			return nil, 0, fmt.Errorf("chunk %d header: %w", i, err)
		}
		count := int(binary.LittleEndian.Uint32(meta))
		qlen := int(binary.LittleEndian.Uint32(meta[4:]))
		elen := int(binary.LittleEndian.Uint32(meta[8:]))
		qb := make([]byte, qlen)
		if _, err := io.ReadFull(br, qb); err != nil {
			return nil, 0, fmt.Errorf("chunk %d quantizer: %w", i, err)
		}
		q := new(quant.Quantizer)
		if err := q.UnmarshalBinary(qb); err != nil {
			return nil, 0, fmt.Errorf("chunk %d quantizer: %w", i, err)
		}
		enc := make([]byte, elen)
		if _, err := io.ReadFull(br, enc); err != nil {
			return nil, 0, fmt.Errorf("chunk %d payload: %w", i, err)
		}
		chunks = append(chunks, &chunk{enc: enc, count: count, q: q})
		payload += int64(elen)
	}
	return chunks, payload, nil
}

func mkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func dirSize(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}
