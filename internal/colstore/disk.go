package colstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mistique/internal/codec"
	"mistique/internal/faultfs"
	"mistique/internal/quant"
)

// Partition image layout (inside the compressed payload):
//
//	magic   [4]byte "MQPT"
//	version uint16
//	nchunks uint32
//	per chunk:
//	  flags   byte (v3 only: 0 = full, 1 = delta generation)
//	  count   uint32 (number of values)
//	  qlen    uint32, quantizer blob
//	  elen    uint32, payload (encoded values; the XOR residual for deltas)
//	  delta extras (v3, flags==1 only):
//	    basePart int64, baseIdx uint32, depth uint16, fullCRC uint32
//	  crc32c  uint32 over the chunk's flags+meta+quantizer+payload (v2+)
//	crc32c  uint32 over every preceding byte (v2+ whole-file footer)
//
// Version 2 adds the CRC32-C checksums; v1 files (no checksums) remain
// readable. Every read verifies both levels: a bit flip, truncation or
// torn write yields an error — never silently wrong values — and the
// store quarantines the file and falls back to re-running the model.
//
// Version 3 adds delta-generation chunks: the payload is the XOR residual
// against an earlier chunk (named by basePart/baseIdx, always strictly
// earlier in partition order) and fullCRC checks the reconstruction. A
// partition containing no delta chunks is still written as v2, byte-
// identical to pre-delta stores; v3 appears only when needed, so old
// binaries reject exactly the files they cannot read (ErrUnsupportedFormat
// leaves them in place for a newer binary).
//
// On disk the image is wrapped by a codec. Two framings exist:
//
//	v1/v2: a bare gzip stream (no extra header). The gzip codec still
//	       writes this, so its files are byte-identical to pre-codec
//	       stores and readable by old binaries.
//	v3:    "MQPC" | version uint16 (=3) | codec ID byte | codec payload.
//	       Written for every non-gzip codec; the reader dispatches on the
//	       ID. The codec ID must sit OUTSIDE the compressed image —
//	       it is what tells the reader how to decompress.
//
// The reader sniffs the first bytes: gzip magic -> legacy framing, MQPC
// -> v3 container. A v3 container with an unknown codec ID or a future
// version fails with ErrUnsupportedFormat — typed, so recovery can keep
// the (perfectly intact) file for a newer binary instead of deleting it
// as corrupt.
const (
	partMagic = "MQPT"
	// partVersion is the format written for all-full partitions;
	// partVersionDelta is written only when a partition holds at least one
	// delta-generation chunk.
	partVersion      = 2
	partVersionDelta = 3

	contMagic   = "MQPC"
	contVersion = 3
	contHdrLen  = 7 // magic + version uint16 + codec ID byte
)

// ErrUnsupportedFormat marks a partition file written in a format (or by
// a codec) this binary does not understand — a forward-compatibility
// rejection, not corruption. The partition's chunks answer
// ErrUnavailable, but the file itself is left in place: a newer binary
// can still read it.
var ErrUnsupportedFormat = errors.New("colstore: unsupported partition file format")

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64), shared by partition files and the metadata envelope.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Scratch pools for the flush and page-in hot paths. Ownership rule: a
// pooled object may be held only for the duration of one call; nothing
// returned to a caller may alias pooled memory. Partition images violate
// that deliberately in ONE place — parsePartition subslices its input
// arena into chunk payloads — so read-side arenas are never pooled (they
// become the partition's resident memory and die with it).
var (
	// imgBufPool recycles the uncompressed partition images the flush
	// pipeline serializes (capacity converges on PartitionTargetBytes),
	// the compressed images produced by the codecs, and the
	// compressed-file read buffers. The gzip writer/reader pools — per
	// compression level, since Reset keeps a writer's level — live in
	// internal/codec, shared with the manifest writer.
	imgBufPool sync.Pool
)

func grabBuf() []byte {
	if p, ok := imgBufPool.Get().(*[]byte); ok {
		return (*p)[:0]
	}
	return nil
}

func releaseBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	imgBufPool.Put(&b)
}

// partFileName is the on-disk name of one partition generation. Gen 0
// keeps the legacy name so pre-upgrade directories reopen unchanged;
// compaction bumps the generation and writes a new file, which makes the
// rewrite crash-safe (the manifest flips old→new atomically, and
// whichever file the surviving manifest names is intact).
func partFileName(pid int64, gen int) string {
	if gen == 0 {
		return fmt.Sprintf("partition_%08d.bin.gz", pid)
	}
	return fmt.Sprintf("partition_%08d.g%04d.bin.gz", pid, gen)
}

func (s *Store) partPathGen(pid int64, gen int) string {
	return filepath.Join(s.dir, partFileName(pid, gen))
}

// serializePartition appends the uncompressed partition image of chunks to
// dst in one pass: each chunk's meta+quantizer+payload lands contiguously,
// so its v2 CRC32-C is a single Checksum over that region, and the
// whole-file footer is one Checksum over the finished image. Cannot fail —
// every input is in memory.
func serializePartition(dst []byte, chunks []*chunk) []byte {
	version := uint16(partVersion)
	need := 14 // header + file footer
	for _, c := range chunks {
		need += 16 + c.q.MarshaledSize() + len(c.enc)
		if c.isDelta() {
			version = partVersionDelta
			need += 1 + 18 // flags byte + delta extras (every chunk pays the flags byte)
		}
	}
	if version == partVersionDelta {
		need += len(chunks) // flags byte on full chunks too
	}
	if cap(dst)-len(dst) < need {
		// Grow with +25% headroom, not to the exact size: the flush path
		// feeds pooled buffers here, and partitions grow monotonically
		// until sealed — an exact-size grow would reallocate on every
		// flush of a slightly larger partition and the pool would never
		// converge.
		newCap := len(dst) + need
		newCap += newCap / 4
		dst = append(make([]byte, 0, newCap), dst...)
	}
	dst = append(dst, partMagic...)
	dst = binary.LittleEndian.AppendUint16(dst, version)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(chunks)))
	for _, c := range chunks {
		start := len(dst)
		payload := c.enc
		if version == partVersionDelta {
			if c.isDelta() {
				dst = append(dst, 1)
				payload = c.delta // the residual is what goes to disk
			} else {
				dst = append(dst, 0)
			}
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(c.count))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(c.q.MarshaledSize()))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
		if c.isDelta() {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(c.base.Partition))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(c.base.Index))
			dst = binary.LittleEndian.AppendUint16(dst, uint16(c.depth))
			dst = binary.LittleEndian.AppendUint32(dst, c.fullCRC)
		}
		dst = c.q.AppendBinary(dst)
		dst = append(dst, payload...)
		chunkCRC := crc32.Checksum(dst[start:], castagnoli)
		dst = binary.LittleEndian.AppendUint32(dst, chunkCRC)
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst, castagnoli))
}

// writePartitionTo serializes chunks and writes the uncompressed image to
// w, returning the byte count (test seam for the partition-file fuzzer).
func writePartitionTo(w io.Writer, chunks []*chunk) (int64, error) {
	img := serializePartition(grabBuf(), chunks)
	n, err := w.Write(img)
	releaseBuf(img)
	return int64(n), err
}

// encodePartitionImage appends the on-disk form of a serialized partition
// image to dst: the bare stream for gzip (legacy framing, byte-identical
// to pre-codec files), the v3 container for everything else.
func encodePartitionImage(dst, img []byte, c codec.Codec, level int) ([]byte, error) {
	if c.ID() != codec.IDGzip {
		dst = append(dst, contMagic...)
		dst = binary.LittleEndian.AppendUint16(dst, contVersion)
		dst = append(dst, c.ID())
	}
	return c.Compress(dst, img, level)
}

// decodePartitionImage decodes one on-disk partition blob (either
// framing) into a fresh arena sized by rawHint. The arena is deliberately
// NOT pooled — parsePartition subslices it into chunk payloads.
func decodePartitionImage(comp []byte, rawHint int) ([]byte, error) {
	hint := rawHint
	if hint <= 0 {
		hint = 64 << 10
	}
	switch {
	case len(comp) >= 2 && comp[0] == 0x1f && comp[1] == 0x8b:
		// Legacy framing: a bare gzip stream (v1/v2 files, and everything
		// the gzip codec writes today).
		return codec.MustByID(codec.IDGzip).Decompress(make([]byte, 0, hint), comp)
	case len(comp) >= contHdrLen && string(comp[:4]) == contMagic:
		version := binary.LittleEndian.Uint16(comp[4:])
		if version != contVersion {
			return nil, fmt.Errorf("%w: container version %d", ErrUnsupportedFormat, version)
		}
		c, err := codec.ByID(comp[6])
		if err != nil {
			return nil, fmt.Errorf("%w: codec id %d", ErrUnsupportedFormat, comp[6])
		}
		img, err := c.Decompress(make([]byte, 0, hint), comp[contHdrLen:])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name(), err)
		}
		return img, nil
	case len(comp) >= 4 && string(comp[:4]) == contMagic:
		return nil, fmt.Errorf("%w: truncated container header", ErrUnsupportedFormat)
	default:
		return nil, fmt.Errorf("not a partition file (bad leading bytes)")
	}
}

// writeImageFileAt codec-compresses a serialized partition image and
// writes it at path, atomically and durably: unique temp file, fsync the
// file, rename, fsync the parent directory — so a concurrent reader of
// the same path always sees a complete file and a crash at any point
// leaves either the old file or the new one, never a prefix. Returns the
// compressed file size and the number of fsyncs issued.
//
// Failures after the rename report success: the file is durably published
// (the data and the rename's dirent both hit the disk no later than the
// manifest write that follows, which fsyncs the same directory), and
// treating them as write failures left the partition dirty forever —
// re-flushed on every Flush with DiskWrites/FsyncCount double-counting
// the same bytes.
func writeImageFileAt(fs faultfs.FS, path string, img []byte, c codec.Codec, level int) (size, fsyncs int64, err error) {
	comp, err := encodePartitionImage(grabBuf(), img, c, level)
	if err != nil {
		releaseBuf(comp)
		return 0, 0, fmt.Errorf("colstore: compress partition %s: %w", path, err)
	}
	defer releaseBuf(comp)
	dir := filepath.Dir(path)
	f, err := fs.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, 0, fmt.Errorf("colstore: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	_, err = f.Write(comp)
	if err == nil {
		// The write barrier: the data must be on the platter before the
		// rename publishes the name.
		err = f.Sync()
		if err == nil {
			fsyncs++
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fs.Remove(tmp) // best effort; a crashed process leaves the orphan
		return 0, fsyncs, fmt.Errorf("colstore: write partition file %s: %w", path, err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return 0, fsyncs, fmt.Errorf("colstore: rename %s: %w", tmp, err)
	}
	if err := fs.SyncDir(dir); err == nil {
		fsyncs++
	}
	// Post-publish: the rename succeeded, so the write succeeded. A failed
	// directory fsync costs durability-until-the-manifest-write, not
	// correctness, and is not this partition's error to report.
	return int64(len(comp)), fsyncs, nil
}

// writePartitionFileAt serializes a chunk snapshot and writes it at path
// (see writeImageFileAt for the durability protocol). raw is the
// uncompressed image size, recorded in the manifest so a later page-in can
// size its decode arena exactly. Holds no Store locks: chunks are
// immutable, so the snapshot can be serialized concurrently with puts
// appending to the live partition.
func writePartitionFileAt(fs faultfs.FS, path string, chunks []*chunk, c codec.Codec, level int) (size, raw, fsyncs int64, err error) {
	img := serializePartition(grabBuf(), chunks)
	size, fsyncs, err = writeImageFileAt(fs, path, img, c, level)
	raw = int64(len(img))
	releaseBuf(img)
	return size, raw, fsyncs, err
}

// writePartitionLocked writes a partition's current chunks while the
// caller holds mu (eviction and DropCache stragglers use it; the parallel
// Flush path uses writeSnapshot instead).
func (s *Store) writePartitionLocked(p *partition) error {
	t0 := time.Now()
	size, raw, fsyncs, err := writePartitionFileAt(s.fs, s.partPathGen(p.id, p.gen), p.chunks, s.codec, s.cfg.CompressionLevel)
	s.om.flushWriteSeconds.ObserveSince(t0)
	s.stats.FsyncCount += fsyncs
	if err != nil {
		return fmt.Errorf("colstore: write partition %d: %w", p.id, err)
	}
	p.dirty = false
	p.onDisk = true
	p.diskChunks = len(p.chunks)
	p.raw = raw
	s.stats.DiskWrites++
	s.stats.DiskWriteBytes += size
	s.om.codecRawBytes.Add(raw)
	s.om.codecFileBytes.Add(size)
	return nil
}

// fileCodecID sniffs which codec wrote the partition file at path by
// reading only the framing header. Gzip magic — which covers v1/v2
// legacy files as well as everything the gzip codec writes today — maps
// to IDGzip; a v3 container names its codec directly. Unknown leading
// bytes are an error, never a guess.
func fileCodecID(path string) (byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [contHdrLen]byte
	n, err := io.ReadFull(f, hdr[:])
	if err != nil && err != io.ErrUnexpectedEOF {
		return 0, err
	}
	b := hdr[:n]
	switch {
	case len(b) >= 2 && b[0] == 0x1f && b[1] == 0x8b:
		return codec.IDGzip, nil
	case len(b) >= contHdrLen && string(b[:4]) == contMagic:
		return b[6], nil
	default:
		return 0, fmt.Errorf("not a partition file (bad leading bytes)")
	}
}

// readPartitionFile opens, decompresses, decodes and checksum-verifies
// one partition file. rawHint, when positive, is the manifest's record of
// the uncompressed image size: the decode arena is allocated at exactly
// that size up front (a stale hint just costs a regrow). Holds no Store
// locks; safe to run concurrently with writers thanks to the atomic
// temp-and-rename write protocol.
func readPartitionFile(path string, rawHint int64) (chunks []*chunk, payload, fileBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	// Slurp the compressed file through a pooled buffer: partition files
	// are a few MB at most (PartitionTargetBytes before compression).
	comp := grabBuf()
	if cap(comp) < int(st.Size()) {
		comp = make([]byte, st.Size())
	} else {
		comp = comp[:st.Size()]
	}
	_, err = io.ReadFull(f, comp)
	f.Close()
	if err != nil {
		releaseBuf(comp)
		return nil, 0, 0, fmt.Errorf("read %s: %w", path, err)
	}
	img, err := decodePartitionImage(comp, int(rawHint))
	releaseBuf(comp)
	if err != nil {
		return nil, 0, 0, err
	}
	chunks, payload, err = parsePartition(img)
	if err != nil {
		return nil, 0, 0, err
	}
	return chunks, payload, st.Size(), nil
}

// readAllSized reads r to EOF into a fresh buffer with initial capacity
// hint (the arena parsePartition subslices — deliberately NOT pooled, see
// the pool ownership comment). An exact hint means zero regrows.
func readAllSized(r io.Reader, hint int) ([]byte, error) {
	if hint <= 0 {
		hint = 64 << 10
	}
	buf := make([]byte, 0, hint)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// readPartitionFrom reads a partition from r (test seam for the
// partition-file fuzzer; the production path is readPartitionFile). A
// stream starting with a codec framing — gzip magic or the v3 container
// — is decompressed first; anything else is treated as a bare image, the
// historical contract of this seam. Unknown container versions or codec
// IDs fail with ErrUnsupportedFormat, exactly like the file path.
func readPartitionFrom(r io.Reader) ([]*chunk, int64, error) {
	img, err := readAllSized(r, 0)
	if err != nil {
		return nil, 0, err
	}
	framed := (len(img) >= 2 && img[0] == 0x1f && img[1] == 0x8b) ||
		(len(img) >= 4 && string(img[:4]) == contMagic)
	if framed {
		img, err = decodePartitionImage(img, 0)
		if err != nil {
			return nil, 0, err
		}
	}
	return parsePartition(img)
}

// loadPartitionLocked returns the resident partition, reading it from disk
// if its payload was evicted. The caller holds mu for the whole IO — this
// is the slow path kept for the lock-held walkers (Verify, Compact,
// GarbageBytes); the concurrent read path is Store.chunkRef.
func (s *Store) loadPartitionLocked(pid int64) (*partition, error) {
	p, ok := s.parts[pid]
	if !ok {
		// Unavailable, not corrupt — mirrors chunkRef: a vanished partition
		// (e.g. a dead tombstone Compact already dropped) must read as a
		// recoverable loss, so delta resolution marks dependents lost instead
		// of quarantining their intact files.
		return nil, fmt.Errorf("colstore: unknown partition %d: %w", pid, ErrUnavailable)
	}
	if p.lost {
		return nil, fmt.Errorf("colstore: partition %d: %w", pid, ErrUnavailable)
	}
	if p.chunks != nil {
		s.touchLocked(pid)
		return p, nil
	}
	chunks, payload, fileBytes, err := readPartitionFile(s.partPathGen(pid, p.gen), p.raw)
	if err != nil {
		s.quarantineLocked(p, err)
		return nil, fmt.Errorf("colstore: read partition %d: %v: %w", pid, err, ErrUnavailable)
	}
	// Resolve delta generations while still holding mu: bases live in
	// strictly earlier partitions, so the recursion terminates, and mu is
	// already held so the recursive load uses this same slow path.
	added, deltaLost, derr := resolveDeltaChunks(pid, chunks, func(bid ChunkID) (*chunk, error) {
		if _, bad := s.lostChunks[bid]; bad {
			return nil, fmt.Errorf("colstore: chunk %d/%d: %w", bid.Partition, bid.Index, ErrUnavailable)
		}
		bp, err := s.loadPartitionLocked(bid.Partition)
		if err != nil {
			return nil, err
		}
		return chunkAtLocked(bp, bid)
	})
	if derr != nil {
		s.quarantineLocked(p, derr)
		return nil, fmt.Errorf("colstore: read partition %d: %v: %w", pid, derr, ErrUnavailable)
	}
	payload += added
	if deltaLost {
		s.markUnresolvedLostLocked(pid, chunks)
	}
	p.chunks = chunks
	p.bytes = payload
	p.dirty = false
	s.memBytes += payload
	s.stats.DiskReads++
	s.stats.DiskReadBytes += fileBytes
	s.touchLocked(pid)
	if err := s.evictIfNeededLocked(); err != nil {
		return nil, err
	}
	if p.chunks == nil {
		// Pathological budget smaller than one partition: keep it resident
		// anyway for this read.
		p.chunks = chunks
		s.memBytes += payload
	}
	return p, nil
}

// Sanity bounds for partition decoding. A corrupt (or malicious) header
// must produce an error, not a multi-gigabyte allocation: length fields are
// validated before any buffer is sized from them.
const (
	maxChunkBlob  = 1 << 30 // quantizer table or encoded payload
	chunkPrealloc = 1 << 12 // initial chunk-slice capacity
)

// parsePartition decodes and checksum-verifies an uncompressed partition
// image. Chunk payloads are subslices of img (chunks are immutable and a
// partition's payloads live and die together, so one arena replaces a pair
// of allocations per chunk); img must therefore not be reused afterwards.
func parsePartition(img []byte) ([]*chunk, int64, error) {
	pos := 0
	// take returns the next n bytes of the image, or an io error shaped
	// like the streaming reader's (truncation maps to ErrUnexpectedEOF).
	take := func(n int) ([]byte, error) {
		if n > len(img)-pos {
			if pos == len(img) {
				return nil, io.EOF
			}
			return nil, io.ErrUnexpectedEOF
		}
		b := img[pos : pos+n]
		pos += n
		return b, nil
	}
	hdr, err := take(10)
	if err != nil {
		return nil, 0, err
	}
	if string(hdr[:4]) != partMagic {
		return nil, 0, fmt.Errorf("bad magic %q", hdr[:4])
	}
	version := binary.LittleEndian.Uint16(hdr[4:])
	if version != 1 && version != partVersion && version != partVersionDelta {
		// A future image version is a forward-compat rejection, not
		// corruption: the bytes are presumed intact, just unreadable here.
		return nil, 0, fmt.Errorf("%w: image version %d", ErrUnsupportedFormat, version)
	}
	n := int(binary.LittleEndian.Uint32(hdr[6:]))
	prealloc := n
	if prealloc > chunkPrealloc {
		prealloc = chunkPrealloc // grow on demand; don't trust the header
	}
	chunks := make([]*chunk, 0, prealloc)
	// Chunk and quantizer structs come out of per-partition slabs (two
	// allocations instead of two per chunk). Pointers are taken only while
	// len < cap, so append never relocates a referenced element; past the
	// distrusted-header prealloc they fall back to singles.
	chunkSlab := make([]chunk, 0, prealloc)
	quantSlab := make([]quant.Quantizer, 0, prealloc)
	var payload int64
	for i := 0; i < n; i++ {
		metaStart := pos
		isDelta := false
		if version >= partVersionDelta {
			fb, err := take(1)
			if err != nil {
				return nil, 0, fmt.Errorf("chunk %d flags: %w", i, err)
			}
			switch fb[0] {
			case 0:
			case 1:
				isDelta = true
			default:
				return nil, 0, fmt.Errorf("chunk %d unknown flags %#x", i, fb[0])
			}
		}
		meta, err := take(12)
		if err != nil {
			return nil, 0, fmt.Errorf("chunk %d header: %w", i, err)
		}
		count := int(binary.LittleEndian.Uint32(meta))
		qlen := int(binary.LittleEndian.Uint32(meta[4:]))
		elen := int(binary.LittleEndian.Uint32(meta[8:]))
		if qlen > maxChunkBlob || elen > maxChunkBlob {
			return nil, 0, fmt.Errorf("chunk %d implausible sizes q=%d e=%d", i, qlen, elen)
		}
		var base ChunkID
		var depth int
		var fullCRC uint32
		if isDelta {
			ext, err := take(18)
			if err != nil {
				return nil, 0, fmt.Errorf("chunk %d delta extras: %w", i, err)
			}
			base.Partition = int64(binary.LittleEndian.Uint64(ext))
			base.Index = int(binary.LittleEndian.Uint32(ext[8:]))
			depth = int(binary.LittleEndian.Uint16(ext[12:]))
			fullCRC = binary.LittleEndian.Uint32(ext[14:])
			if base.Partition < 0 || depth < 1 {
				return nil, 0, fmt.Errorf("chunk %d implausible delta base %d/%d depth %d", i, base.Partition, base.Index, depth)
			}
		}
		qb, err := take(qlen)
		if err != nil {
			return nil, 0, fmt.Errorf("chunk %d quantizer: %w", i, err)
		}
		enc, err := take(elen)
		if err != nil {
			return nil, 0, fmt.Errorf("chunk %d payload: %w", i, err)
		}
		if version >= 2 {
			// flags, meta, delta extras, quantizer and payload are
			// contiguous in the image: one Checksum covers them all.
			got := crc32.Checksum(img[metaStart:pos], castagnoli)
			crcBuf, err := take(4)
			if err != nil {
				return nil, 0, fmt.Errorf("chunk %d checksum: %w", i, err)
			}
			if want := binary.LittleEndian.Uint32(crcBuf); got != want {
				return nil, 0, fmt.Errorf("chunk %d checksum mismatch: file says %08x, data hashes to %08x", i, want, got)
			}
		}
		var q *quant.Quantizer
		if len(quantSlab) < cap(quantSlab) {
			quantSlab = append(quantSlab, quant.Quantizer{})
			q = &quantSlab[len(quantSlab)-1]
		} else {
			q = new(quant.Quantizer)
		}
		if err := q.UnmarshalBinary(qb); err != nil {
			return nil, 0, fmt.Errorf("chunk %d quantizer: %w", i, err)
		}
		nc := chunk{enc: enc, count: count, q: q}
		if isDelta {
			// The payload is the residual; enc stays nil until the caller
			// resolves the base chain (resolveDeltaChunks).
			nc = chunk{count: count, q: q, delta: enc, base: base, depth: depth, fullCRC: fullCRC}
		}
		var c *chunk
		if len(chunkSlab) < cap(chunkSlab) {
			chunkSlab = append(chunkSlab, nc)
			c = &chunkSlab[len(chunkSlab)-1]
		} else {
			c = &chunk{}
			*c = nc
		}
		chunks = append(chunks, c)
		payload += int64(elen)
	}
	if version >= 2 {
		fileCRC := crc32.Checksum(img[:pos], castagnoli)
		foot, err := take(4)
		if err != nil {
			return nil, 0, fmt.Errorf("file footer: %w", err)
		}
		if want := binary.LittleEndian.Uint32(foot); want != fileCRC {
			return nil, 0, fmt.Errorf("file checksum mismatch: footer says %08x, contents hash to %08x", want, fileCRC)
		}
		if pos != len(img) {
			return nil, 0, fmt.Errorf("trailing bytes after footer")
		}
	}
	return chunks, payload, nil
}

func mkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func dirSize(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			// Temp files vanish mid-walk when a flush or compaction races
			// the scan; they are not part of the footprint.
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}
