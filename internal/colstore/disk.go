package colstore

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"mistique/internal/faultfs"
	"mistique/internal/quant"
)

// Partition file layout (after gzip):
//
//	magic   [4]byte "MQPT"
//	version uint16
//	nchunks uint32
//	per chunk:
//	  count   uint32 (number of values)
//	  qlen    uint32, quantizer blob
//	  elen    uint32, encoded payload
//	  crc32c  uint32 over the chunk's meta+quantizer+payload (v2)
//	crc32c  uint32 over every preceding byte (v2 whole-file footer)
//
// Version 2 adds the CRC32-C checksums; v1 files (no checksums) remain
// readable. Every read verifies both levels: a bit flip, truncation or
// torn write yields an error — never silently wrong values — and the
// store quarantines the file and falls back to re-running the model.
const (
	partMagic   = "MQPT"
	partVersion = 2
)

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64), shared by partition files and the metadata envelope.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// partFileName is the on-disk name of one partition generation. Gen 0
// keeps the legacy name so pre-upgrade directories reopen unchanged;
// compaction bumps the generation and writes a new file, which makes the
// rewrite crash-safe (the manifest flips old→new atomically, and
// whichever file the surviving manifest names is intact).
func partFileName(pid int64, gen int) string {
	if gen == 0 {
		return fmt.Sprintf("partition_%08d.bin.gz", pid)
	}
	return fmt.Sprintf("partition_%08d.g%04d.bin.gz", pid, gen)
}

func (s *Store) partPathGen(pid int64, gen int) string {
	return filepath.Join(s.dir, partFileName(pid, gen))
}

// writePartitionFileAt gzip-compresses a chunk snapshot and writes it at
// path, atomically and durably: unique temp file, fsync the file, rename,
// fsync the parent directory — so a concurrent reader of the same path
// always sees a complete file and a crash at any point leaves either the
// old file or the new one, never a prefix. Returns the compressed file
// size and the number of fsyncs issued. Holds no Store locks: chunks are
// immutable, so the snapshot can be serialized concurrently with puts
// appending to the live partition.
func writePartitionFileAt(fs faultfs.FS, path string, chunks []*chunk) (size, fsyncs int64, err error) {
	dir := filepath.Dir(path)
	f, err := fs.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, 0, fmt.Errorf("colstore: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	bw := bufio.NewWriter(f)
	zw := gzip.NewWriter(bw)
	_, err = writePartitionTo(zw, chunks)
	if err == nil {
		err = zw.Close()
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		// The write barrier: the data must be on the platter before the
		// rename publishes the name.
		err = f.Sync()
		if err == nil {
			fsyncs++
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fs.Remove(tmp) // best effort; a crashed process leaves the orphan
		return 0, fsyncs, fmt.Errorf("colstore: write partition file %s: %w", path, err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return 0, fsyncs, fmt.Errorf("colstore: rename %s: %w", tmp, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return 0, fsyncs, fmt.Errorf("colstore: sync dir %s: %w", dir, err)
	}
	fsyncs++
	st, err := os.Stat(path)
	if err != nil {
		return 0, fsyncs, err
	}
	return st.Size(), fsyncs, nil
}

// writePartitionLocked writes a partition's current chunks while the
// caller holds mu (eviction and DropCache stragglers use it; the parallel
// Flush path uses writeSnapshot instead).
func (s *Store) writePartitionLocked(p *partition) error {
	t0 := time.Now()
	size, fsyncs, err := writePartitionFileAt(s.fs, s.partPathGen(p.id, p.gen), p.chunks)
	s.om.flushWriteSeconds.ObserveSince(t0)
	s.stats.FsyncCount += fsyncs
	if err != nil {
		return fmt.Errorf("colstore: write partition %d: %w", p.id, err)
	}
	p.dirty = false
	p.onDisk = true
	p.diskChunks = len(p.chunks)
	s.stats.DiskWrites++
	s.stats.DiskWriteBytes += size
	return nil
}

// crcWriter tees writes into a running CRC32-C.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	cw.n += int64(n)
	return n, err
}

func writePartitionTo(w io.Writer, chunks []*chunk) (int64, error) {
	cw := &crcWriter{w: w}
	hdr := make([]byte, 0, 10)
	hdr = append(hdr, partMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, partVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(chunks)))
	if _, err := cw.Write(hdr); err != nil {
		return cw.n, err
	}
	for _, c := range chunks {
		qb, err := c.q.MarshalBinary()
		if err != nil {
			return cw.n, err
		}
		meta := make([]byte, 0, 12)
		meta = binary.LittleEndian.AppendUint32(meta, uint32(c.count))
		meta = binary.LittleEndian.AppendUint32(meta, uint32(len(qb)))
		meta = binary.LittleEndian.AppendUint32(meta, uint32(len(c.enc)))
		chunkCRC := crc32.Update(0, castagnoli, meta)
		chunkCRC = crc32.Update(chunkCRC, castagnoli, qb)
		chunkCRC = crc32.Update(chunkCRC, castagnoli, c.enc)
		if _, err := cw.Write(meta); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(qb); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(c.enc); err != nil {
			return cw.n, err
		}
		var crcBuf [4]byte
		binary.LittleEndian.PutUint32(crcBuf[:], chunkCRC)
		if _, err := cw.Write(crcBuf[:]); err != nil {
			return cw.n, err
		}
	}
	// Whole-file footer: CRC over everything above, written outside the
	// running hash.
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], cw.crc)
	if _, err := w.Write(foot[:]); err != nil {
		return cw.n, err
	}
	return cw.n + 4, nil
}

// readPartitionFile opens, gunzips, decodes and checksum-verifies one
// partition file. Holds no Store locks; safe to run concurrently with
// writers thanks to the atomic temp-and-rename write protocol.
func readPartitionFile(path string) (chunks []*chunk, payload, fileBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, 0, err
	}
	zr, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("gunzip: %w", err)
	}
	defer zr.Close()
	chunks, payload, err = readPartitionFrom(zr)
	if err != nil {
		return nil, 0, 0, err
	}
	return chunks, payload, st.Size(), nil
}

// loadPartitionLocked returns the resident partition, reading it from disk
// if its payload was evicted. The caller holds mu for the whole IO — this
// is the slow path kept for the lock-held walkers (Verify, Compact,
// GarbageBytes); the concurrent read path is Store.chunkRef.
func (s *Store) loadPartitionLocked(pid int64) (*partition, error) {
	p, ok := s.parts[pid]
	if !ok {
		return nil, fmt.Errorf("colstore: unknown partition %d", pid)
	}
	if p.lost {
		return nil, fmt.Errorf("colstore: partition %d: %w", pid, ErrUnavailable)
	}
	if p.chunks != nil {
		s.touchLocked(pid)
		return p, nil
	}
	chunks, payload, fileBytes, err := readPartitionFile(s.partPathGen(pid, p.gen))
	if err != nil {
		s.quarantineLocked(p, err)
		return nil, fmt.Errorf("colstore: read partition %d: %v: %w", pid, err, ErrUnavailable)
	}
	p.chunks = chunks
	p.bytes = payload
	p.dirty = false
	s.memBytes += payload
	s.stats.DiskReads++
	s.stats.DiskReadBytes += fileBytes
	s.touchLocked(pid)
	if err := s.evictIfNeededLocked(); err != nil {
		return nil, err
	}
	if p.chunks == nil {
		// Pathological budget smaller than one partition: keep it resident
		// anyway for this read.
		p.chunks = chunks
		s.memBytes += payload
	}
	return p, nil
}

// Sanity bounds for partition decoding. A corrupt (or malicious) header
// must produce an error, not a multi-gigabyte allocation: length fields are
// validated before any buffer is sized from them.
const (
	maxChunkBlob  = 1 << 30 // quantizer table or encoded payload
	chunkPrealloc = 1 << 12 // initial chunk-slice capacity
)

func readPartitionFrom(r io.Reader) ([]*chunk, int64, error) {
	br := bufio.NewReader(r)
	fileCRC := uint32(0)
	// readFull pulls exactly len(buf) bytes and folds them into the
	// whole-file checksum (the footer itself is read outside it).
	readFull := func(buf []byte) error {
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
		fileCRC = crc32.Update(fileCRC, castagnoli, buf)
		return nil
	}
	hdr := make([]byte, 10)
	if err := readFull(hdr); err != nil {
		return nil, 0, err
	}
	if string(hdr[:4]) != partMagic {
		return nil, 0, fmt.Errorf("bad magic %q", hdr[:4])
	}
	version := binary.LittleEndian.Uint16(hdr[4:])
	if version != 1 && version != partVersion {
		return nil, 0, fmt.Errorf("unsupported version %d", version)
	}
	n := int(binary.LittleEndian.Uint32(hdr[6:]))
	prealloc := n
	if prealloc > chunkPrealloc {
		prealloc = chunkPrealloc // grow on demand; don't trust the header
	}
	chunks := make([]*chunk, 0, prealloc)
	var payload int64
	meta := make([]byte, 12)
	crcBuf := make([]byte, 4)
	for i := 0; i < n; i++ {
		if err := readFull(meta); err != nil {
			return nil, 0, fmt.Errorf("chunk %d header: %w", i, err)
		}
		count := int(binary.LittleEndian.Uint32(meta))
		qlen := int(binary.LittleEndian.Uint32(meta[4:]))
		elen := int(binary.LittleEndian.Uint32(meta[8:]))
		if qlen > maxChunkBlob || elen > maxChunkBlob {
			return nil, 0, fmt.Errorf("chunk %d implausible sizes q=%d e=%d", i, qlen, elen)
		}
		qb := make([]byte, qlen)
		if err := readFull(qb); err != nil {
			return nil, 0, fmt.Errorf("chunk %d quantizer: %w", i, err)
		}
		enc := make([]byte, elen)
		if err := readFull(enc); err != nil {
			return nil, 0, fmt.Errorf("chunk %d payload: %w", i, err)
		}
		if version >= 2 {
			if err := readFull(crcBuf); err != nil {
				return nil, 0, fmt.Errorf("chunk %d checksum: %w", i, err)
			}
			want := binary.LittleEndian.Uint32(crcBuf)
			got := crc32.Update(0, castagnoli, meta)
			got = crc32.Update(got, castagnoli, qb)
			got = crc32.Update(got, castagnoli, enc)
			if got != want {
				return nil, 0, fmt.Errorf("chunk %d checksum mismatch: file says %08x, data hashes to %08x", i, want, got)
			}
		}
		q := new(quant.Quantizer)
		if err := q.UnmarshalBinary(qb); err != nil {
			return nil, 0, fmt.Errorf("chunk %d quantizer: %w", i, err)
		}
		chunks = append(chunks, &chunk{enc: enc, count: count, q: q})
		payload += int64(elen)
	}
	if version >= 2 {
		foot := make([]byte, 4)
		if _, err := io.ReadFull(br, foot); err != nil {
			return nil, 0, fmt.Errorf("file footer: %w", err)
		}
		if want := binary.LittleEndian.Uint32(foot); want != fileCRC {
			return nil, 0, fmt.Errorf("file checksum mismatch: footer says %08x, contents hash to %08x", want, fileCRC)
		}
		if _, err := br.ReadByte(); err != io.EOF {
			return nil, 0, fmt.Errorf("trailing bytes after footer")
		}
	}
	return chunks, payload, nil
}

func mkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func dirSize(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			// Temp files vanish mid-walk when a flush or compaction races
			// the scan; they are not part of the footprint.
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}
