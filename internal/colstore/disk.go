package colstore

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mistique/internal/quant"
)

// Partition file layout (after gzip):
//
//	magic   [4]byte "MQPT"
//	version uint16
//	nchunks uint32
//	per chunk:
//	  count   uint32 (number of values)
//	  qlen    uint32, quantizer blob
//	  elen    uint32, encoded payload
const (
	partMagic   = "MQPT"
	partVersion = 1
)

func (s *Store) partPath(pid int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("partition_%08d.bin.gz", pid))
}

// writePartitionFile gzip-compresses a chunk snapshot and writes it as
// partition pid's file, atomically (unique temp file, then rename — so a
// concurrent reader of the same path always sees a complete file, and two
// concurrent writers cannot interleave). Returns the compressed file size.
// Holds no Store locks: chunks are immutable, so the snapshot can be
// serialized concurrently with puts appending to the live partition.
func writePartitionFileAt(path string, chunks []*chunk) (int64, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, fmt.Errorf("colstore: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	bw := bufio.NewWriter(f)
	zw := gzip.NewWriter(bw)
	_, err = writePartitionTo(zw, chunks)
	if err == nil {
		err = zw.Close()
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("colstore: write partition file %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("colstore: rename %s: %w", tmp, err)
	}
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (s *Store) writePartitionFile(pid int64, chunks []*chunk) (int64, error) {
	return writePartitionFileAt(s.partPath(pid), chunks)
}

// writePartitionLocked writes a partition's current chunks while the
// caller holds mu (eviction and DropCache stragglers use it; the parallel
// Flush path uses writeSnapshot instead).
func (s *Store) writePartitionLocked(p *partition) error {
	size, err := s.writePartitionFile(p.id, p.chunks)
	if err != nil {
		return fmt.Errorf("colstore: write partition %d: %w", p.id, err)
	}
	p.dirty = false
	p.onDisk = true
	s.stats.DiskWrites++
	s.stats.DiskWriteBytes += size
	return nil
}

func writePartitionTo(w io.Writer, chunks []*chunk) (int64, error) {
	var written int64
	put := func(b []byte) error {
		n, err := w.Write(b)
		written += int64(n)
		return err
	}
	hdr := make([]byte, 0, 10)
	hdr = append(hdr, partMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, partVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(chunks)))
	if err := put(hdr); err != nil {
		return written, err
	}
	for _, c := range chunks {
		qb, err := c.q.MarshalBinary()
		if err != nil {
			return written, err
		}
		meta := make([]byte, 0, 12)
		meta = binary.LittleEndian.AppendUint32(meta, uint32(c.count))
		meta = binary.LittleEndian.AppendUint32(meta, uint32(len(qb)))
		meta = binary.LittleEndian.AppendUint32(meta, uint32(len(c.enc)))
		if err := put(meta); err != nil {
			return written, err
		}
		if err := put(qb); err != nil {
			return written, err
		}
		if err := put(c.enc); err != nil {
			return written, err
		}
	}
	return written, nil
}

// readPartitionFile opens, gunzips and decodes one partition file. Holds no
// Store locks; safe to run concurrently with writers thanks to the atomic
// temp-and-rename write protocol.
func readPartitionFile(path string) (chunks []*chunk, payload, fileBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, 0, err
	}
	zr, err := gzip.NewReader(bufio.NewReader(f))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("gunzip: %w", err)
	}
	defer zr.Close()
	chunks, payload, err = readPartitionFrom(zr)
	if err != nil {
		return nil, 0, 0, err
	}
	return chunks, payload, st.Size(), nil
}

// loadPartitionLocked returns the resident partition, reading it from disk
// if its payload was evicted. The caller holds mu for the whole IO — this
// is the slow path kept for the lock-held walkers (Verify, Compact,
// GarbageBytes); the concurrent read path is Store.chunkRef.
func (s *Store) loadPartitionLocked(pid int64) (*partition, error) {
	p, ok := s.parts[pid]
	if !ok {
		return nil, fmt.Errorf("colstore: unknown partition %d", pid)
	}
	if p.chunks != nil {
		s.touchLocked(pid)
		return p, nil
	}
	chunks, payload, fileBytes, err := readPartitionFile(s.partPath(pid))
	if err != nil {
		return nil, fmt.Errorf("colstore: read partition %d: %w", pid, err)
	}
	p.chunks = chunks
	p.bytes = payload
	p.dirty = false
	s.memBytes += payload
	s.stats.DiskReads++
	s.stats.DiskReadBytes += fileBytes
	s.touchLocked(pid)
	if err := s.evictIfNeededLocked(); err != nil {
		return nil, err
	}
	if p.chunks == nil {
		// Pathological budget smaller than one partition: keep it resident
		// anyway for this read.
		p.chunks = chunks
		s.memBytes += payload
	}
	return p, nil
}

// Sanity bounds for partition decoding. A corrupt (or malicious) header
// must produce an error, not a multi-gigabyte allocation: length fields are
// validated before any buffer is sized from them.
const (
	maxChunkBlob  = 1 << 30 // quantizer table or encoded payload
	chunkPrealloc = 1 << 12 // initial chunk-slice capacity
)

func readPartitionFrom(r io.Reader) ([]*chunk, int64, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 10)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, 0, err
	}
	if string(hdr[:4]) != partMagic {
		return nil, 0, fmt.Errorf("bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != partVersion {
		return nil, 0, fmt.Errorf("unsupported version %d", v)
	}
	n := int(binary.LittleEndian.Uint32(hdr[6:]))
	prealloc := n
	if prealloc > chunkPrealloc {
		prealloc = chunkPrealloc // grow on demand; don't trust the header
	}
	chunks := make([]*chunk, 0, prealloc)
	var payload int64
	meta := make([]byte, 12)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, meta); err != nil {
			return nil, 0, fmt.Errorf("chunk %d header: %w", i, err)
		}
		count := int(binary.LittleEndian.Uint32(meta))
		qlen := int(binary.LittleEndian.Uint32(meta[4:]))
		elen := int(binary.LittleEndian.Uint32(meta[8:]))
		if qlen > maxChunkBlob || elen > maxChunkBlob {
			return nil, 0, fmt.Errorf("chunk %d implausible sizes q=%d e=%d", i, qlen, elen)
		}
		qb := make([]byte, qlen)
		if _, err := io.ReadFull(br, qb); err != nil {
			return nil, 0, fmt.Errorf("chunk %d quantizer: %w", i, err)
		}
		q := new(quant.Quantizer)
		if err := q.UnmarshalBinary(qb); err != nil {
			return nil, 0, fmt.Errorf("chunk %d quantizer: %w", i, err)
		}
		enc := make([]byte, elen)
		if _, err := io.ReadFull(br, enc); err != nil {
			return nil, 0, fmt.Errorf("chunk %d payload: %w", i, err)
		}
		chunks = append(chunks, &chunk{enc: enc, count: count, q: q})
		payload += int64(elen)
	}
	return chunks, payload, nil
}

func mkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func dirSize(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			// Temp files vanish mid-walk when a flush or compaction races
			// the scan; they are not part of the footprint.
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}
