package colstore

import (
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"mistique/internal/codec"
	"mistique/internal/faultfs"
)

// Fault-injected crash-safety suite. The pattern throughout: run a write
// path (flush, compaction, manifest write) with a faultfs.Injector armed
// to crash at one specific point, then reopen the directory with a clean
// FS and assert the recovery invariants — every column reads back exactly
// the stored values or answers ErrUnavailable/ErrNotStored; never wrong
// data, never a panic — and that re-putting the lost columns (what the
// engine's rerun fallback does) fully heals the store.

// fillStore puts nCols deterministic columns and returns key -> values.
// Distinct seedBases yield distinct data — identical ones would dedup and
// leave nothing for the flush under test to write.
func fillStore(t *testing.T, s *Store, model string, nCols int, seedBase int64) map[ColumnKey][]float32 {
	t.Helper()
	data := make(map[ColumnKey][]float32, nCols)
	for j := 0; j < nCols; j++ {
		k := key(model, "i", fmt.Sprintf("c%d", j), 0)
		vals := randCol(256, seedBase+int64(j))
		if _, err := s.PutColumn(k, vals, nil); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
		data[k] = vals
	}
	return data
}

// verifyNoWrongValues checks every column either reads back exactly or
// fails with a recoverable sentinel. Returns the lost keys.
func verifyNoWrongValues(t *testing.T, s *Store, data map[ColumnKey][]float32) []ColumnKey {
	t.Helper()
	var lost []ColumnKey
	for k, want := range data {
		got, err := s.GetColumn(k)
		if err != nil {
			if !errors.Is(err, ErrUnavailable) && !errors.Is(err, ErrNotStored) {
				t.Fatalf("column %s failed with non-recoverable error: %v", k, err)
			}
			lost = append(lost, k)
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("column %s length %d, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("column %s silently corrupted at %d", k, i)
			}
		}
	}
	return lost
}

// mustReadExact asserts every column reads back exactly.
func mustReadExact(t *testing.T, s *Store, data map[ColumnKey][]float32) {
	t.Helper()
	if lost := verifyNoWrongValues(t, s, data); len(lost) > 0 {
		t.Fatalf("columns unavailable, want all readable: %v", lost)
	}
}

// relog re-puts every column (the store-level equivalent of the engine's
// rerun-and-rematerialize fallback) and asserts everything reads after.
func relog(t *testing.T, s *Store, data map[ColumnKey][]float32) {
	t.Helper()
	for k, vals := range data {
		if _, err := s.PutColumn(k, vals, nil); err != nil {
			t.Fatalf("re-put %s after recovery: %v", k, err)
		}
	}
	mustReadExact(t, s, data)
}

type faultPoint struct {
	name  string
	fault faultfs.Fault
}

// crashPoints enumerates every injection point of the flush write path:
// partition file create/write/sync/close/rename, manifest file ditto, and
// the two directory fsyncs.
func crashPoints() []faultPoint {
	pts := []faultPoint{
		{"partition-create", faultfs.Fault{Op: faultfs.OpCreate, PathContains: "partition_", Crash: true}},
		{"partition-torn-write", faultfs.Fault{Op: faultfs.OpWrite, PathContains: "partition_", AfterBytes: 64, Crash: true}},
		{"partition-sync", faultfs.Fault{Op: faultfs.OpSync, PathContains: "partition_", Crash: true}},
		{"partition-close", faultfs.Fault{Op: faultfs.OpClose, PathContains: "partition_", Crash: true}},
		{"partition-rename", faultfs.Fault{Op: faultfs.OpRename, PathContains: "partition_", Crash: true}},
		{"manifest-create", faultfs.Fault{Op: faultfs.OpCreate, PathContains: manifestName, Crash: true}},
		{"manifest-torn-write", faultfs.Fault{Op: faultfs.OpWrite, PathContains: manifestName, AfterBytes: 32, Crash: true}},
		{"manifest-sync", faultfs.Fault{Op: faultfs.OpSync, PathContains: manifestName, Crash: true}},
		{"manifest-close", faultfs.Fault{Op: faultfs.OpClose, PathContains: manifestName, Crash: true}},
		{"manifest-rename", faultfs.Fault{Op: faultfs.OpRename, PathContains: manifestName, Crash: true}},
		// SyncDir sees only the directory path; the Countdown selects which
		// call dies (0 = after the partition rename, 1 = after the manifest
		// rename).
		{"partition-syncdir", faultfs.Fault{Op: faultfs.OpSyncDir, Countdown: 0, Crash: true}},
		{"manifest-syncdir", faultfs.Fault{Op: faultfs.OpSyncDir, Countdown: 1, Crash: true}},
	}
	return pts
}

// crashCodecs are the codec configs every crash matrix runs under: the
// recovery invariants must hold regardless of how partition bytes are
// framed on disk.
var crashCodecs = []string{"gzip", "store", "actz"}

// TestCrashMatrixFirstFlush kills the very first flush at every injection
// point, under every codec. The committed state is "nothing": reopening
// must yield a working (possibly empty) store with no wrong values, and
// re-logging the data must fully heal it.
func TestCrashMatrixFirstFlush(t *testing.T) {
	for _, cdc := range crashCodecs {
		for _, fp := range crashPoints() {
			cdc, fp := cdc, fp
			t.Run(cdc+"/"+fp.name, func(t *testing.T) {
				dir := t.TempDir()
				inj := faultfs.NewInjector(nil)
				s, err := Open(dir, Config{FS: inj, Workers: 1, Codec: cdc})
				if err != nil {
					t.Fatal(err)
				}
				data := fillStore(t, s, "m", 6, 1000)
				inj.Arm(fp.fault)
				if err := s.Flush(); err == nil {
					t.Fatalf("flush survived a crash at %s", fp.name)
				}
				if !inj.Fired() {
					t.Fatalf("fault %s never fired", fp.name)
				}

				// "Reboot": reopen the directory with a clean filesystem.
				s2, err := Open(dir, Config{Codec: cdc})
				if err != nil {
					t.Fatalf("reopen after crash at %s: %v", fp.name, err)
				}
				verifyNoWrongValues(t, s2, data)
				relog(t, s2, data)
				if err := s2.Flush(); err != nil {
					t.Fatalf("flush after recovery: %v", err)
				}

				// And the healed state survives another reopen.
				s3, err := Open(dir, Config{Codec: cdc})
				if err != nil {
					t.Fatal(err)
				}
				mustReadExact(t, s3, data)
			})
		}
	}
}

// TestCrashMatrixSecondFlush kills the second flush at every injection
// point. The first flush's data is committed: it must read back exactly
// after the crash, at every point — the durability half of the contract.
// The uncommitted second batch may read exactly or be gone, never wrong.
func TestCrashMatrixSecondFlush(t *testing.T) {
	for _, cdc := range crashCodecs {
		for _, fp := range crashPoints() {
			cdc, fp := cdc, fp
			t.Run(cdc+"/"+fp.name, func(t *testing.T) {
				dir := t.TempDir()
				inj := faultfs.NewInjector(nil)
				s, err := Open(dir, Config{FS: inj, Workers: 1, Codec: cdc})
				if err != nil {
					t.Fatal(err)
				}
				committed := fillStore(t, s, "old", 4, 1000)
				if err := s.Flush(); err != nil {
					t.Fatal(err)
				}
				fresh := fillStore(t, s, "new", 4, 5000)
				inj.Arm(fp.fault)
				if err := s.Flush(); err == nil {
					t.Fatalf("flush survived a crash at %s", fp.name)
				}
				if !inj.Fired() {
					t.Fatalf("fault %s never fired", fp.name)
				}

				s2, err := Open(dir, Config{Codec: cdc})
				if err != nil {
					t.Fatalf("reopen after crash at %s: %v", fp.name, err)
				}
				mustReadExact(t, s2, committed)
				verifyNoWrongValues(t, s2, fresh)
				relog(t, s2, fresh)
			})
		}
	}
}

// TestCrashMatrixCompact kills compaction at every injection point,
// including the post-manifest removal of old-generation files. The kept
// model's data must read back exactly at every point: the generation
// scheme guarantees that whichever manifest survived references intact
// files, never a remapped file under the old index.
func TestCrashMatrixCompact(t *testing.T) {
	pts := append(crashPoints(),
		faultPoint{"old-gen-remove", faultfs.Fault{Op: faultfs.OpRemove, PathContains: "partition_", Crash: true}},
	)
	for _, cdc := range crashCodecs {
		for _, fp := range pts {
			cdc, fp := cdc, fp
			t.Run(cdc+"/"+fp.name, func(t *testing.T) {
				dir := t.TempDir()
				inj := faultfs.NewInjector(nil)
				s, err := Open(dir, Config{FS: inj, Workers: 1, Codec: cdc})
				if err != nil {
					t.Fatal(err)
				}
				// Interleave keep/drop columns so every partition holds garbage
				// after the delete and compaction rewrites (not removes) it.
				keep := make(map[ColumnKey][]float32)
				for j := 0; j < 4; j++ {
					kk := key("keep", "i", fmt.Sprintf("c%d", j), 0)
					kv := randCol(256, int64(2000+j))
					if _, err := s.PutColumn(kk, kv, nil); err != nil {
						t.Fatal(err)
					}
					keep[kk] = kv
					dk := key("drop", "i", fmt.Sprintf("c%d", j), 0)
					if _, err := s.PutColumn(dk, randCol(256, int64(3000+j)), nil); err != nil {
						t.Fatal(err)
					}
				}
				if err := s.Flush(); err != nil {
					t.Fatal(err)
				}
				if n := s.DeleteModel("drop"); n != 4 {
					t.Fatalf("deleted %d columns, want 4", n)
				}

				inj.Arm(fp.fault)
				_, _, cerr := s.Compact()
				if !inj.Fired() {
					t.Skipf("fault %s not reached by this compaction", fp.name)
				}
				if cerr == nil && fp.fault.Op != faultfs.OpRemove {
					t.Fatalf("compact survived a crash at %s", fp.name)
				}

				s2, err := Open(dir, Config{})
				if err != nil {
					t.Fatalf("reopen after crash at %s: %v", fp.name, err)
				}
				mustReadExact(t, s2, keep)
				for j := 0; j < 4; j++ {
					if s2.Has(key("drop", "i", fmt.Sprintf("c%d", j), 0)) {
						// The old manifest may legitimately still hold the dropped
						// columns (the delete never committed); they must at least
						// read without error or answer a recoverable sentinel.
						if _, err := s2.GetColumn(key("drop", "i", fmt.Sprintf("c%d", j), 0)); err != nil &&
							!errors.Is(err, ErrUnavailable) && !errors.Is(err, ErrNotStored) {
							t.Fatalf("dropped column read failed hard: %v", err)
						}
					}
				}
				// A clean compaction must succeed now and keep the data intact.
				if n := s2.DeleteModel("drop"); n > 0 {
					// old manifest survived; redo the delete before compacting
					_ = n
				}
				if _, _, err := s2.Compact(); err != nil {
					t.Fatalf("compact after recovery: %v", err)
				}
				mustReadExact(t, s2, keep)
			})
		}
	}
}

// TestCompactGenerationOnDisk asserts the crash-safety mechanism itself:
// compaction writes a NEW file generation and removes the old one only
// after the manifest commits, so the directory never holds a remapped
// file under a name the live manifest maps to old indices.
func TestCompactGenerationOnDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	keep := fillStore(t, s, "keep", 2, 1000)
	drop := fillStore(t, s, "drop", 2, 5000)
	_ = drop
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, partFileName(0, 0))); err != nil {
		t.Fatalf("gen-0 file missing before compact: %v", err)
	}
	s.DeleteModel("drop")
	if _, _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, partFileName(0, 1))); err != nil {
		t.Fatalf("gen-1 file missing after compact: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, partFileName(0, 0))); !os.IsNotExist(err) {
		t.Fatalf("gen-0 file not removed after commit: %v", err)
	}
	mustReadExact(t, s, keep)

	// Reopen reads from the new generation.
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustReadExact(t, s2, keep)
	if rep := s2.LastRecovery(); !rep.Clean() {
		t.Fatalf("recovery not clean after committed compact: %+v", rep)
	}
}

// TestOrphanTempSweep plants crashed-write debris and checks Open removes
// it and reports it.
func TestOrphanTempSweep(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := fillStore(t, s, "m", 2, 1000)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"partition_00000099.bin.gz.tmp123", manifestName + ".tmp456"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := s2.LastRecovery()
	if len(rep.OrphanTempsRemoved) != 2 {
		t.Fatalf("swept %v, want 2 orphans", rep.OrphanTempsRemoved)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if !e.IsDir() && (filepath.Ext(e.Name()) == "" || e.Name() == "debris") {
			t.Fatalf("temp debris survived: %s", e.Name())
		}
	}
	mustReadExact(t, s2, data)
}

// corruptOneByte flips a byte in the middle of a file.
func corruptOneByte(t *testing.T, path string) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptPartitionQuarantinedOnOpen bit-flips a flushed partition file
// and checks the recovery sweep catches it: the partition is quarantined
// into corrupt/, its columns answer ErrUnavailable, and re-logging heals.
func TestCorruptPartitionQuarantinedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := fillStore(t, s, "m", 3, 1000)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	corruptOneByte(t, filepath.Join(dir, partFileName(0, 0)))

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("open aborted on corrupt partition: %v", err)
	}
	rep := s2.LastRecovery()
	if len(rep.CorruptPartitions) != 1 || rep.CorruptPartitions[0] != 0 {
		t.Fatalf("corrupt partitions %v, want [0]", rep.CorruptPartitions)
	}
	if len(rep.LostChunks) == 0 {
		t.Fatal("no lost chunks reported")
	}
	if st := s2.Stats(); st.CorruptPartitions != 1 {
		t.Fatalf("stats.CorruptPartitions = %d", st.CorruptPartitions)
	}
	if _, err := os.Stat(filepath.Join(dir, corruptDirName, partFileName(0, 0))); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	for k := range data {
		if _, err := s2.GetColumn(k); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("column %s: err %v, want ErrUnavailable", k, err)
		}
	}
	relog(t, s2, data)
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustReadExact(t, s3, data)
}

// TestCorruptPartitionQuarantinedOnColdRead corrupts the file after Open
// (SkipRecoveryScan defers verification), so the checksum failure surfaces
// on the first cold read — which must quarantine, not panic or mis-read.
func TestCorruptPartitionQuarantinedOnColdRead(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := fillStore(t, s, "m", 3, 1000)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	corruptOneByte(t, filepath.Join(dir, partFileName(0, 0)))

	s2, err := Open(dir, Config{SkipRecoveryScan: true})
	if err != nil {
		t.Fatal(err)
	}
	var k0 ColumnKey
	for k := range data {
		k0 = k
		break
	}
	if _, err := s2.GetColumn(k0); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("cold read of corrupt partition: %v, want ErrUnavailable", err)
	}
	if st := s2.Stats(); st.CorruptPartitions != 1 {
		t.Fatalf("stats.CorruptPartitions = %d", st.CorruptPartitions)
	}
	// Every other column of the same partition answers unavailable too.
	for k := range data {
		if _, err := s2.GetColumn(k); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("column %s after quarantine: %v", k, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, corruptDirName, partFileName(0, 0))); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	relog(t, s2, data)
}

// TestMissingPartitionFile deletes a flushed partition file outright.
func TestMissingPartitionFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := fillStore(t, s, "m", 2, 1000)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, partFileName(0, 0))); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := s2.LastRecovery()
	if len(rep.MissingPartitions) != 1 || rep.MissingPartitions[0] != 0 {
		t.Fatalf("missing partitions %v, want [0]", rep.MissingPartitions)
	}
	for k := range data {
		if _, err := s2.GetColumn(k); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("column %s: %v, want ErrUnavailable", k, err)
		}
	}
	relog(t, s2, data)
}

// TestTornTailPartition rewrites a two-chunk partition file with only its
// first chunk (a valid file that is shorter than the manifest promised —
// what a lost tail write looks like after an fsync-less filesystem crash).
// Only the tail chunk may be reported lost; the head stays readable.
func TestTornTailPartition(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	k0, k1 := key("m", "i", "head", 0), key("m", "i", "tail", 0)
	v0, v1 := randCol(128, 7), randCol(128, 8)
	if _, err := s.PutColumn(k0, v0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutColumn(k1, v1, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, partFileName(0, 0))
	chunks, _, _, err := readPartitionFile(path, 0)
	if err != nil || len(chunks) != 2 {
		t.Fatalf("expected 2 chunks in one partition, got %d (%v)", len(chunks), err)
	}
	if _, _, _, err := writePartitionFileAt(faultfs.OS(), path, chunks[:1], codec.MustByID(codec.IDGzip), gzip.BestSpeed); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := s2.LastRecovery()
	if len(rep.LostChunks) != 1 || rep.LostChunks[0] != (ChunkID{Partition: 0, Index: 1}) {
		t.Fatalf("lost chunks %v, want [{0 1}]", rep.LostChunks)
	}
	got, err := s2.GetColumn(k0)
	if err != nil {
		t.Fatalf("head chunk unreadable: %v", err)
	}
	for i := range v0 {
		if got[i] != v0[i] {
			t.Fatalf("head chunk corrupted at %d", i)
		}
	}
	if _, err := s2.GetColumn(k1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("tail chunk: %v, want ErrUnavailable", err)
	}
	// Healing the tail must not disturb the head.
	if _, err := s2.PutColumn(k1, v1, nil); err != nil {
		t.Fatal(err)
	}
	mustReadExact(t, s2, map[ColumnKey][]float32{k0: v0, k1: v1})
}

// TestManifestCorruptFailSoft scribbles over the manifest: Open must not
// abort — it quarantines the manifest and the now-unreferenced partition
// files and starts from an empty, fully usable logical state.
func TestManifestCorruptFailSoft(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := fillStore(t, s, "m", 2, 1000)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("open aborted on corrupt manifest: %v", err)
	}
	rep := s2.LastRecovery()
	if !rep.ManifestQuarantined {
		t.Fatalf("recovery report %+v, want ManifestQuarantined", rep)
	}
	if len(rep.ExtraFilesQuarantined) == 0 {
		t.Fatal("orphaned partition files not quarantined")
	}
	for k := range data {
		if _, err := s2.GetColumn(k); !errors.Is(err, ErrNotStored) {
			t.Fatalf("column %s on empty store: %v, want ErrNotStored", k, err)
		}
	}
	// The store is fully usable: relog, flush, reopen.
	relog(t, s2, data)
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustReadExact(t, s3, data)
	if rep := s3.LastRecovery(); !rep.Clean() {
		t.Fatalf("recovery after heal not clean: %+v", rep)
	}
}

// TestENOSPCFlushRecovers fails a partition write with ENOSPC (no crash):
// Flush must report it, the store must keep serving from memory, and a
// retry once space "frees up" must succeed durably.
func TestENOSPCFlushRecovers(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil)
	s, err := Open(dir, Config{FS: inj, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := fillStore(t, s, "m", 4, 1000)
	inj.Arm(faultfs.Fault{Op: faultfs.OpWrite, PathContains: "partition_", Err: syscall.ENOSPC})
	if err := s.Flush(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("flush error %v, want ENOSPC", err)
	}
	// Still fully readable from memory.
	mustReadExact(t, s, data)

	inj.Disarm()
	if err := s.Flush(); err != nil {
		t.Fatalf("flush after ENOSPC cleared: %v", err)
	}
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustReadExact(t, s2, data)
	if rep := s2.LastRecovery(); !rep.Clean() {
		t.Fatalf("recovery not clean: %+v", rep)
	}
}

// TestManifestGenerationAdvances checks the generation number is bumped
// by every manifest write and survives reopen — the breadcrumb the crash
// matrix uses to tell pre-flush from post-flush state.
func TestManifestGenerationAdvances(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, "m", 1, 1000)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	g1 := s.ManifestGeneration()
	if g1 == 0 {
		t.Fatal("generation not stamped")
	}
	fillStore(t, s, "m2", 1, 5000)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	g2 := s.ManifestGeneration()
	if g2 <= g1 {
		t.Fatalf("generation did not advance: %d -> %d", g1, g2)
	}
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.ManifestGeneration(); got != g2 {
		t.Fatalf("reopened generation %d, want %d", got, g2)
	}
}

// TestFsyncAccounting: the durability work is visible in Stats.
func TestFsyncAccounting(t *testing.T) {
	s := openTest(t, Config{})
	fillStore(t, s, "m", 2, 1000)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	// At least: partition file + its dir + manifest file + its dir.
	if st.FsyncCount < 4 {
		t.Fatalf("FsyncCount = %d, want >= 4", st.FsyncCount)
	}
}

// TestManifestRoundTripUnderEviction is the eviction round-trip check: a
// tiny memory budget forces payload eviction between flushes, and a fresh
// Store over the directory must serve identical values with zone maps
// restored (predicate scans skip, not just succeed).
func TestManifestRoundTripUnderEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{MemBudgetBytes: 8 << 10, PartitionTargetBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	data := make(map[ColumnKey][]float32)
	for j := 0; j < 16; j++ {
		k := key("m", "i", fmt.Sprintf("c%d", j), 0)
		// Shifted ranges give every chunk a distinct zone.
		vals := make([]float32, 256)
		for i := range vals {
			vals[i] = float32(j*1000 + i)
		}
		if _, err := s.PutColumn(k, vals, nil); err != nil {
			t.Fatal(err)
		}
		data[k] = vals
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("budget never forced an eviction; test misconfigured")
	}

	s2, err := Open(dir, Config{MemBudgetBytes: 8 << 10, PartitionTargetBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	mustReadExact(t, s2, data)
	// Zone maps restored: a scan bounded below c15's range must skip every
	// other chunk without reading it.
	matches, skipped, err := s2.ScanColumn("m", "i", "c15", Gt, 15000)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 255 { // 15000 excluded, 15001..15255 match
		t.Fatalf("scan found %d matches, want 255", len(matches))
	}
	if skipped != 0 {
		t.Fatalf("single-block column skipped %d", skipped)
	}
	// A scan that cannot match anything must skip via the zone map alone.
	zeroMatches, skippedAll, err := s2.ScanColumn("m", "i", "c0", Gt, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(zeroMatches) != 0 || skippedAll != 1 {
		t.Fatalf("zone skip after reopen: %d matches, %d skipped (want 0, 1)", len(zeroMatches), skippedAll)
	}
	// And the in-memory zone tables agree across the round trip.
	s.mu.Lock()
	z1 := len(s.zones)
	s.mu.Unlock()
	s2.mu.Lock()
	z2 := len(s2.zones)
	s2.mu.Unlock()
	if z1 != z2 {
		t.Fatalf("zone count %d after reopen, want %d", z2, z1)
	}
}

// TestQuarantineTombstoneLifecycle walks a quarantined partition through
// its full life: while columns still point into it, Verify flags the data
// loss and Compact keeps the tombstone; after every mapping heals via
// re-log, Verify is clean and Compact drops the tombstone from the index
// and manifest (the quarantined file stays in corrupt/ for post-mortem).
func TestQuarantineTombstoneLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := fillStore(t, s, "m", 3, 1000)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	corruptOneByte(t, filepath.Join(dir, partFileName(0, 0)))

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Lost and still referenced: Verify must complain, Compact must keep
	// the tombstone (the loss is not resolved yet).
	rep, err := s2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) == 0 {
		t.Fatal("Verify clean while quarantined columns are unhealed")
	}
	if _, _, err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	for k := range data {
		if _, err := s2.GetColumn(k); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("column %s: err %v, want ErrUnavailable after compact", k, err)
		}
	}

	// Heal every mapping, then compact: the tombstone is garbage now.
	relog(t, s2, data)
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err = s2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 0 {
		t.Fatalf("Verify problems after full heal: %v", rep.Problems)
	}
	before := rep.Partitions
	if _, _, err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	rep, err = s2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partitions != before-1 {
		t.Fatalf("compact kept the dead tombstone: %d partitions, want %d", rep.Partitions, before-1)
	}
	mustReadExact(t, s2, data)

	// The drop survives reopen, and the reopened directory is clean.
	s3, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !s3.LastRecovery().Clean() {
		t.Fatalf("reopen after tombstone drop not clean: %+v", s3.LastRecovery())
	}
	mustReadExact(t, s3, data)
}

// serializeV1Image hand-builds a version-1 partition image (no chunk
// CRCs, no footer) from decoded chunks — the format of pre-checksum
// stores, which must stay readable forever.
func serializeV1Image(chunks []*chunk) []byte {
	img := []byte(partMagic)
	img = binary.LittleEndian.AppendUint16(img, 1)
	img = binary.LittleEndian.AppendUint32(img, uint32(len(chunks)))
	for _, c := range chunks {
		img = binary.LittleEndian.AppendUint32(img, uint32(c.count))
		img = binary.LittleEndian.AppendUint32(img, uint32(c.q.MarshaledSize()))
		img = binary.LittleEndian.AppendUint32(img, uint32(len(c.enc)))
		img = c.q.AppendBinary(img)
		img = append(img, c.enc...)
	}
	return img
}

// TestMixedVersionDirectory builds a directory holding every on-disk
// vintage at once — a v1 gzip file (pre-checksum binary), a v2 gzip file
// (pre-codec binary), a v3 actz container (this binary), and a file
// stamped with a future container version (a NEWER binary) — then
// reopens it. The three readable vintages must serve bit-exact; the
// future file is marked lost with ErrUnsupportedFormat semantics: its
// columns answer ErrUnavailable, the file is NOT deleted or moved to
// corrupt/, and re-logging heals without touching it.
func TestMixedVersionDirectory(t *testing.T) {
	dir := t.TempDir()

	// Partition 0: gzip legacy framing (v2 image).
	s, err := Open(dir, Config{Codec: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	batchA := fillStore(t, s, "a", 2, 1000)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Partitions 1-3 under actz: v3 containers.
	s, err = Open(dir, Config{Codec: "actz"})
	if err != nil {
		t.Fatal(err)
	}
	batchB := fillStore(t, s, "b", 2, 2000)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	batchC := fillStore(t, s, "c", 2, 3000)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	batchD := fillStore(t, s, "d", 2, 4000)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Rewrite partition 2 as a v1 image under bare gzip — byte-for-byte
	// what a pre-checksum binary would have left behind.
	p2 := filepath.Join(dir, partFileName(2, 0))
	chunks, _, _, err := readPartitionFile(p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	v1blob, err := codec.MustByID(codec.IDGzip).Compress(nil, serializeV1Image(chunks), gzip.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p2, v1blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// Stamp partition 3's container with a future version.
	p3 := filepath.Join(dir, partFileName(3, 0))
	blob, err := os.ReadFile(p3)
	if err != nil {
		t.Fatal(err)
	}
	blob[4] = contVersion + 6
	if err := os.WriteFile(p3, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("open on mixed-version directory: %v", err)
	}
	rep := s2.LastRecovery()
	if len(rep.UnsupportedPartitions) != 1 || rep.UnsupportedPartitions[0] != 3 {
		t.Fatalf("unsupported partitions %v, want [3]", rep.UnsupportedPartitions)
	}
	if len(rep.CorruptPartitions) != 0 || len(rep.MissingPartitions) != 0 {
		t.Fatalf("mixed vintages misread as damage: %+v", rep)
	}
	if st := s2.Stats(); st.UnsupportedPartitions != 1 || st.CorruptPartitions != 0 {
		t.Fatalf("stats: unsupported=%d corrupt=%d, want 1/0", st.UnsupportedPartitions, st.CorruptPartitions)
	}
	mustReadExact(t, s2, batchA)
	mustReadExact(t, s2, batchB)
	mustReadExact(t, s2, batchC)
	for k := range batchD {
		if _, err := s2.GetColumn(k); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("future-format column %s: %v, want ErrUnavailable", k, err)
		}
	}
	// The future file must survive in place — not deleted, not moved.
	if _, err := os.Stat(p3); err != nil {
		t.Fatalf("future-format file was removed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, corruptDirName, partFileName(3, 0))); !os.IsNotExist(err) {
		t.Fatal("future-format file was quarantined into corrupt/")
	}
	// Healing via re-log leaves the file alone and serves everything.
	relog(t, s2, batchD)
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p3); err != nil {
		t.Fatalf("future-format file removed by heal: %v", err)
	}
	s3, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []map[ColumnKey][]float32{batchA, batchB, batchC, batchD} {
		mustReadExact(t, s3, batch)
	}
}

// TestPostPublishSyncDirReturnsSuccess is the regression test for the
// post-publish error-accounting bug: once the rename has published the
// partition file, a failing directory fsync must NOT fail the flush (the
// manifest write that follows fsyncs the same directory). Before the fix
// the partition stayed dirty forever and every later Flush rewrote and
// re-counted the same bytes.
func TestPostPublishSyncDirReturnsSuccess(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil)
	s, err := Open(dir, Config{FS: inj, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := fillStore(t, s, "m", 4, 1000)
	// One-shot fault: the first SyncDir — the one right after the
	// partition rename — fails; the manifest's SyncDir succeeds.
	inj.Arm(faultfs.Fault{Op: faultfs.OpSyncDir, Countdown: 0, Err: faultfs.ErrInjected})
	if err := s.Flush(); err != nil {
		t.Fatalf("flush failed on post-publish SyncDir error: %v", err)
	}
	if !inj.Fired() {
		t.Fatal("SyncDir fault never fired")
	}
	writes := s.Stats().DiskWrites
	// The partition is clean: an idle Flush must not rewrite it.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().DiskWrites; got != writes {
		t.Fatalf("clean partition re-flushed: DiskWrites %d -> %d", writes, got)
	}
	// And the published file is real: a clean reopen serves it from disk.
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.LastRecovery().Clean() {
		t.Fatalf("recovery not clean: %+v", s2.LastRecovery())
	}
	mustReadExact(t, s2, data)
}
