package colstore

import (
	"compress/gzip"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mistique/internal/codec"
	"mistique/internal/faultfs"
	"mistique/internal/quant"
)

// benchChunks builds a partition-sized snapshot: 64 LP chunks of 1024
// noisy values each (~128 KiB encoded), the shape a DNN log flush writes.
func benchChunks(b testing.TB) []*chunk {
	rng := rand.New(rand.NewSource(11))
	q := quant.NewLP()
	chunks := make([]*chunk, 64)
	for i := range chunks {
		vals := make([]float32, 1024)
		for j := range vals {
			vals[j] = float32(rng.NormFloat64())
		}
		chunks[i] = &chunk{enc: q.Encode(nil, vals), count: len(vals), q: q}
	}
	return chunks
}

// benchStreamChunks builds partition snapshots for each quantized stream
// shape the store writes: "lp" (f16 halves), "kbit" (8-bit quantile bins,
// near max entropy by construction), and "threshold" (1-bit activation
// bitmaps at the 99.5th percentile — runs of zeros).
func benchStreamChunks(b testing.TB, stream string) []*chunk {
	rng := rand.New(rand.NewSource(23))
	vals := make([]float32, 4096)
	chunks := make([]*chunk, 32)
	for i := range chunks {
		for j := range vals {
			vals[j] = float32(rng.NormFloat64())
		}
		var q *quant.Quantizer
		var err error
		switch stream {
		case "lp":
			q = quant.NewLP()
		case "kbit":
			q, err = quant.FitKBit(vals, 8)
		case "threshold":
			q, err = quant.FitThreshold(vals, 0.995)
		default:
			b.Fatalf("unknown stream %q", stream)
		}
		if err != nil {
			b.Fatal(err)
		}
		chunks[i] = &chunk{enc: q.Encode(nil, vals), count: len(vals), q: q}
	}
	return chunks
}

func benchmarkPartitionWrite(b *testing.B, level int) {
	chunks := benchChunks(b)
	dir := b.TempDir()
	path := filepath.Join(dir, partFileName(0, 0))
	gz, err := codec.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := writePartitionFileAt(faultfs.OS(), path, chunks, gz, level); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st, err := os.Stat(path); err == nil {
		b.ReportMetric(float64(st.Size()), "filebytes")
	}
}

func BenchmarkPartitionWrite(b *testing.B) {
	benchmarkPartitionWrite(b, defaultCompressionLevel)
}

// BenchmarkPartitionWriteLevels is the measurement behind the
// defaultCompressionLevel choice (see DESIGN.md "Performance").
func BenchmarkPartitionWriteLevels(b *testing.B) {
	for _, level := range []int{gzip.BestSpeed, gzip.DefaultCompression} {
		b.Run(fmt.Sprintf("level=%d", level), func(b *testing.B) {
			benchmarkPartitionWrite(b, level)
		})
	}
}

// BenchmarkPartitionWriteCodecs measures flush cost (serialize + compress
// + write + fsync) per codec per stream shape, with the resulting file
// size as the "filebytes" metric — the measurement behind Config.Codec
// guidance in DESIGN.md. The acceptance bar for this PR: actz beats
// gzip(BestSpeed) on both axes for the kbit and threshold streams.
func BenchmarkPartitionWriteCodecs(b *testing.B) {
	for _, stream := range []string{"lp", "kbit", "threshold"} {
		chunks := benchStreamChunks(b, stream)
		for _, name := range []string{"gzip", "store", "actz"} {
			c, err := codec.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("stream=%s/codec=%s", stream, name), func(b *testing.B) {
				dir := b.TempDir()
				path := filepath.Join(dir, partFileName(0, 0))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, _, err := writePartitionFileAt(faultfs.OS(), path, chunks, c, defaultCompressionLevel); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if st, err := os.Stat(path); err == nil {
					b.ReportMetric(float64(st.Size()), "filebytes")
				}
			})
		}
	}
}

// BenchmarkPartitionReadCodecs measures the cold read (open + decompress
// + checksum-verify + parse) per codec per stream shape.
func BenchmarkPartitionReadCodecs(b *testing.B) {
	for _, stream := range []string{"lp", "kbit", "threshold"} {
		chunks := benchStreamChunks(b, stream)
		for _, name := range []string{"gzip", "store", "actz"} {
			c, err := codec.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("stream=%s/codec=%s", stream, name), func(b *testing.B) {
				dir := b.TempDir()
				path := filepath.Join(dir, partFileName(0, 0))
				_, raw, _, err := writePartitionFileAt(faultfs.OS(), path, chunks, c, defaultCompressionLevel)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					got, _, _, err := readPartitionFile(path, raw)
					if err != nil {
						b.Fatal(err)
					}
					if len(got) != len(chunks) {
						b.Fatalf("read %d chunks, want %d", len(got), len(chunks))
					}
				}
			})
		}
	}
}

func BenchmarkPartitionRead(b *testing.B) {
	chunks := benchChunks(b)
	dir := b.TempDir()
	path := filepath.Join(dir, partFileName(0, 0))
	gz, err := codec.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	_, raw, _, err := writePartitionFileAt(faultfs.OS(), path, chunks, gz, defaultCompressionLevel)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, _, err := readPartitionFile(path, raw)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(chunks) {
			b.Fatalf("read %d chunks, want %d", len(got), len(chunks))
		}
	}
}
