package colstore

import (
	"compress/gzip"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mistique/internal/faultfs"
	"mistique/internal/quant"
)

// benchChunks builds a partition-sized snapshot: 64 LP chunks of 1024
// noisy values each (~128 KiB encoded), the shape a DNN log flush writes.
func benchChunks(b *testing.B) []*chunk {
	rng := rand.New(rand.NewSource(11))
	q := quant.NewLP()
	chunks := make([]*chunk, 64)
	for i := range chunks {
		vals := make([]float32, 1024)
		for j := range vals {
			vals[j] = float32(rng.NormFloat64())
		}
		chunks[i] = &chunk{enc: q.Encode(nil, vals), count: len(vals), q: q}
	}
	return chunks
}

func benchmarkPartitionWrite(b *testing.B, level int) {
	chunks := benchChunks(b)
	dir := b.TempDir()
	path := filepath.Join(dir, partFileName(0, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := writePartitionFileAt(faultfs.OS(), path, chunks, level); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st, err := os.Stat(path); err == nil {
		b.ReportMetric(float64(st.Size()), "filebytes")
	}
}

func BenchmarkPartitionWrite(b *testing.B) {
	benchmarkPartitionWrite(b, defaultCompressionLevel)
}

// BenchmarkPartitionWriteLevels is the measurement behind the
// defaultCompressionLevel choice (see DESIGN.md "Performance").
func BenchmarkPartitionWriteLevels(b *testing.B) {
	for _, level := range []int{gzip.BestSpeed, gzip.DefaultCompression} {
		b.Run(fmt.Sprintf("level=%d", level), func(b *testing.B) {
			benchmarkPartitionWrite(b, level)
		})
	}
}

func BenchmarkPartitionRead(b *testing.B) {
	chunks := benchChunks(b)
	dir := b.TempDir()
	path := filepath.Join(dir, partFileName(0, 0))
	_, raw, _, err := writePartitionFileAt(faultfs.OS(), path, chunks, defaultCompressionLevel)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, _, err := readPartitionFile(path, raw)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(chunks) {
			b.Fatalf("read %d chunks, want %d", len(got), len(chunks))
		}
	}
}
