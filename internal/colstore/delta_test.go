package colstore

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"mistique/internal/faultfs"
)

// Delta-generation suite: PutColumnDelta stores cross-version chunks as
// XOR residuals against the parent version's chunk. Every test here holds
// the package's one invariant above all: reads are bit-exact or answer a
// recoverable sentinel — a delta chain must never change what a query
// sees, only how many bytes back it.

// perturbCol returns a copy of base with a contiguous window of values
// nudged — the shape of one fine-tuning epoch, where most activations
// move slightly or not at all. fraction controls the window size; seed
// picks its position and magnitude so distinct versions differ.
func perturbCol(base []float32, seed int64, fraction float64) []float32 {
	out := append([]float32(nil), base...)
	n := int(float64(len(out)) * fraction)
	if n < 1 {
		n = 1
	}
	start := int(uint64(seed*7919) % uint64(len(out)-n+1))
	for i := start; i < start+n; i++ {
		out[i] += float32(seed%13+1) * 0.5
	}
	return out
}

// vkey names one column of one model version.
func vkey(version string) ColumnKey {
	return key(version, "act", "c0", 0)
}

func TestDeltaPutRoundTrip(t *testing.T) {
	s := openTest(t, Config{})
	base := randCol(512, 1)
	child := perturbCol(base, 2, 0.1)

	r0, err := s.PutColumn(vkey("v0"), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Delta {
		t.Fatalf("plain put reported delta: %+v", r0)
	}
	r1, err := s.PutColumnDelta(vkey("v1"), child, nil, vkey("v0"))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Delta || r1.Depth != 1 || r1.Deduped {
		t.Fatalf("similar child not delta-encoded: %+v", r1)
	}
	mustReadExact(t, s, map[ColumnKey][]float32{vkey("v0"): base, vkey("v1"): child})
	if d := s.DeltaDepth(vkey("v1")); d != 1 {
		t.Fatalf("DeltaDepth(v1) = %d, want 1", d)
	}
	if d := s.DeltaDepth(vkey("v0")); d != 0 {
		t.Fatalf("DeltaDepth(v0) = %d, want 0", d)
	}
	if d := s.MaxDeltaDepth("v1", "act"); d != 1 {
		t.Fatalf("MaxDeltaDepth(v1) = %d, want 1", d)
	}
	st := s.Stats()
	if st.DeltaChunks != 1 || st.DeltaBytes <= 0 {
		t.Fatalf("delta accounting %+v", st)
	}
}

// TestDeltaChainColdReads builds a 4-deep chain with every generation in
// its own partition (tiny partition target), then forces the cold read
// paths: DropCache + read resolves via chunkRef's recursive page-in, and
// a fresh Open over the directory resolves the whole chain from the
// manifest's delta registry — newest version first, so the deepest
// recursion runs before any base is warm.
func TestDeltaChainColdReads(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{PartitionTargetBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[ColumnKey][]float32{vkey("v0"): randCol(512, 1)}
	if _, err := s.PutColumn(vkey("v0"), vals[vkey("v0")], nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		parent, child := vkey(fmt.Sprintf("v%d", i-1)), vkey(fmt.Sprintf("v%d", i))
		vals[child] = perturbCol(vals[parent], int64(i), 0.1)
		r, err := s.PutColumnDelta(child, vals[child], nil, parent)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Delta || r.Depth != i {
			t.Fatalf("v%d: %+v, want delta at depth %d", i, r, i)
		}
		if r.ID.Partition != int64(i) {
			t.Fatalf("v%d landed in partition %d, want its own partition %d", i, r.ID.Partition, i)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	mustReadExact(t, s, vals)

	s2, err := Open(dir, Config{PartitionTargetBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.LastRecovery().Clean() {
		t.Fatalf("recovery not clean: %+v", s2.LastRecovery())
	}
	// Chain metadata restored from the manifest, before any page-in.
	for i := 0; i <= 4; i++ {
		if d := s2.DeltaDepth(vkey(fmt.Sprintf("v%d", i))); d != i {
			t.Fatalf("reopened DeltaDepth(v%d) = %d, want %d", i, d, i)
		}
	}
	// Deepest first: GetColumn(v4) must recursively page in v3..v0.
	got, err := s2.GetColumn(vkey("v4"))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range vals[vkey("v4")] {
		if got[i] != w {
			t.Fatalf("v4 value %d wrong after cold chain resolution", i)
		}
	}
	mustReadExact(t, s2, vals)
}

// TestDeltaFallbacksStoreFull: every precondition failure degrades to a
// plain full store — never an error, never wrong bytes.
func TestDeltaFallbacksStoreFull(t *testing.T) {
	base := randCol(512, 1)
	similar := perturbCol(base, 3, 0.1)

	check := func(t *testing.T, s *Store, k ColumnKey, vals []float32, r PutResult) {
		t.Helper()
		if r.Delta || r.Depth != 0 {
			t.Fatalf("fallback still delta-encoded: %+v", r)
		}
		mustReadExact(t, s, map[ColumnKey][]float32{k: vals})
	}

	t.Run("missing-parent", func(t *testing.T) {
		s := openTest(t, Config{})
		r, err := s.PutColumnDelta(vkey("v1"), similar, nil, vkey("nope"))
		if err != nil {
			t.Fatal(err)
		}
		check(t, s, vkey("v1"), similar, r)
	})
	t.Run("self-parent", func(t *testing.T) {
		s := openTest(t, Config{})
		r, err := s.PutColumnDelta(vkey("v1"), similar, nil, vkey("v1"))
		if err != nil {
			t.Fatal(err)
		}
		check(t, s, vkey("v1"), similar, r)
	})
	t.Run("dissimilar", func(t *testing.T) {
		s := openTest(t, Config{})
		if _, err := s.PutColumn(vkey("v0"), base, nil); err != nil {
			t.Fatal(err)
		}
		other := randCol(512, 999) // disjoint value set: Jaccard ~ 0
		r, err := s.PutColumnDelta(vkey("v1"), other, nil, vkey("v0"))
		if err != nil {
			t.Fatal(err)
		}
		check(t, s, vkey("v1"), other, r)
	})
	t.Run("disabled", func(t *testing.T) {
		s := openTest(t, Config{DeltaMaxDepth: -1})
		if _, err := s.PutColumn(vkey("v0"), base, nil); err != nil {
			t.Fatal(err)
		}
		r, err := s.PutColumnDelta(vkey("v1"), similar, nil, vkey("v0"))
		if err != nil {
			t.Fatal(err)
		}
		check(t, s, vkey("v1"), similar, r)
	})
	t.Run("identical-dedups", func(t *testing.T) {
		// An unchanged generation is exact-dedup's job, not delta's.
		s := openTest(t, Config{})
		r0, err := s.PutColumn(vkey("v0"), base, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.PutColumnDelta(vkey("v1"), base, nil, vkey("v0"))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Deduped || r.Delta || r.ID != r0.ID {
			t.Fatalf("identical generation not deduped: %+v", r)
		}
	})
}

// TestDeltaChainDepthBound: with DeltaMaxDepth 2 the chain restarts full
// every third generation — depths 0,1,2,0,1 — bounding read amplification.
func TestDeltaChainDepthBound(t *testing.T) {
	s := openTest(t, Config{DeltaMaxDepth: 2})
	vals := randCol(512, 1)
	if _, err := s.PutColumn(vkey("v0"), vals, nil); err != nil {
		t.Fatal(err)
	}
	wantDepths := []int{1, 2, 0, 1}
	store := map[ColumnKey][]float32{vkey("v0"): vals}
	for i, want := range wantDepths {
		parent, child := vkey(fmt.Sprintf("v%d", i)), vkey(fmt.Sprintf("v%d", i+1))
		vals = perturbCol(vals, int64(i+1), 0.1)
		store[child] = vals
		r, err := s.PutColumnDelta(child, vals, nil, parent)
		if err != nil {
			t.Fatal(err)
		}
		if r.Depth != want || r.Delta != (want > 0) {
			t.Fatalf("%s: depth %d delta=%v, want depth %d", child, r.Depth, r.Delta, want)
		}
	}
	mustReadExact(t, s, store)
}

// TestCompactCollapsesDeltaChains: reopening a 4-deep chain under a
// tighter DeltaMaxDepth and compacting must rewrite the over-deep tail
// chunks to full — depths drop, reads stay bit-exact, and the collapse
// is durable across DropCache and reopen.
func TestCompactCollapsesDeltaChains(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[ColumnKey][]float32{vkey("v0"): randCol(512, 1)}
	if _, err := s.PutColumn(vkey("v0"), vals[vkey("v0")], nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		parent, child := vkey(fmt.Sprintf("v%d", i-1)), vkey(fmt.Sprintf("v%d", i))
		vals[child] = perturbCol(vals[parent], int64(i), 0.1)
		r, err := s.PutColumnDelta(child, vals[child], nil, parent)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Delta || r.Depth != i {
			t.Fatalf("v%d: %+v, want delta depth %d", i, r, i)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{DeltaMaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	// v3 (depth 3) and v4 (depth 4) exceed the new bound: collapsed to
	// full. v1 and v2 stay deltas.
	for i, want := range []int{0, 1, 2, 0, 0} {
		if d := s2.DeltaDepth(vkey(fmt.Sprintf("v%d", i))); d != want {
			t.Fatalf("post-collapse DeltaDepth(v%d) = %d, want %d", i, d, want)
		}
	}
	if st := s2.Stats(); st.DeltaCollapsed != 2 || st.DeltaChunks != 2 {
		t.Fatalf("collapse stats: collapsed=%d chunks=%d, want 2/2", st.DeltaCollapsed, st.DeltaChunks)
	}
	mustReadExact(t, s2, vals)
	if err := s2.DropCache(); err != nil {
		t.Fatal(err)
	}
	mustReadExact(t, s2, vals)

	// The collapse reached disk: a fresh Open sees the shortened chains.
	s3, err := Open(dir, Config{DeltaMaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !s3.LastRecovery().Clean() {
		t.Fatalf("recovery not clean after collapse: %+v", s3.LastRecovery())
	}
	for i, want := range []int{0, 1, 2, 0, 0} {
		if d := s3.DeltaDepth(vkey(fmt.Sprintf("v%d", i))); d != want {
			t.Fatalf("reopened DeltaDepth(v%d) = %d, want %d", i, d, want)
		}
	}
	mustReadExact(t, s3, vals)
}

// TestDeltaLostBasePropagation: deleting the base generation's partition
// file takes the whole chain down together at the next Open — dependents
// answer ErrUnavailable (lost-but-healable: their own files stay in
// place, NOT quarantined) and re-logging heals everything.
func TestDeltaLostBasePropagation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{PartitionTargetBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[ColumnKey][]float32{vkey("v0"): randCol(512, 1)}
	if _, err := s.PutColumn(vkey("v0"), vals[vkey("v0")], nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		parent, child := vkey(fmt.Sprintf("v%d", i-1)), vkey(fmt.Sprintf("v%d", i))
		vals[child] = perturbCol(vals[parent], int64(i), 0.1)
		r, err := s.PutColumnDelta(child, vals[child], nil, parent)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Delta {
			t.Fatalf("v%d stored full; test needs a chain", i)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, partFileName(0, 0))); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{PartitionTargetBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	rep := s2.LastRecovery()
	if len(rep.MissingPartitions) != 1 || rep.MissingPartitions[0] != 0 {
		t.Fatalf("missing partitions %v, want [0]", rep.MissingPartitions)
	}
	// The base chunk and both dependent generations are lost together.
	if len(rep.LostChunks) != 3 {
		t.Fatalf("lost chunks %v, want the whole 3-chunk chain", rep.LostChunks)
	}
	for k := range vals {
		if _, err := s2.GetColumn(k); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("column %s: %v, want ErrUnavailable", k, err)
		}
	}
	// The dependents' files are intact and must stay where they are.
	for pid := int64(1); pid <= 2; pid++ {
		if _, err := os.Stat(filepath.Join(dir, partFileName(pid, 0))); err != nil {
			t.Fatalf("dependent partition %d file gone: %v", pid, err)
		}
		if _, err := os.Stat(filepath.Join(dir, corruptDirName, partFileName(pid, 0))); !os.IsNotExist(err) {
			t.Fatalf("dependent partition %d quarantined for a lost base", pid)
		}
	}
	// Heal by re-logging (the engine's rerun fallback), then compact the
	// dead chain away and check it all survives a reopen.
	relog(t, s2, vals)
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	mustReadExact(t, s2, vals)
	s3, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustReadExact(t, s3, vals)
}

// TestCompactPinsDeltaBasePartition: a partition hosting a chunk that a
// cold dependent references as its delta base must not be remapped by
// Compact, even when it holds garbage — the dependent's on-disk base id
// would dangle. The garbage is retained and the dependent still
// reconstructs bit-exact from disk.
func TestCompactPinsDeltaBasePartition(t *testing.T) {
	dir := t.TempDir()
	// Two 2 KiB chunks fit one partition; the second append seals it.
	s, err := Open(dir, Config{PartitionTargetBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	junk := key("junk", "act", "c0", 0)
	if _, err := s.PutColumn(junk, randCol(512, 50), nil); err != nil {
		t.Fatal(err)
	}
	base := randCol(512, 1)
	r0, err := s.PutColumn(vkey("v0"), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r0.ID != (ChunkID{Partition: 0, Index: 1}) {
		t.Fatalf("base chunk at %+v, want partition 0 index 1", r0.ID)
	}
	child := perturbCol(base, 2, 0.1)
	r1, err := s.PutColumnDelta(vkey("v1"), child, nil, vkey("v0"))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Delta || r1.ID.Partition == 0 {
		t.Fatalf("child not a cross-partition delta: %+v", r1)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := s.DeleteModel("junk"); n != 1 {
		t.Fatalf("deleted %d columns, want 1", n)
	}
	// Cold dependent: its on-disk image holds the base's pre-compact id.
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	dropped, _, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("compact dropped %d chunks out of a pinned partition", dropped)
	}
	mustReadExact(t, s, map[ColumnKey][]float32{vkey("v0"): base, vkey("v1"): child})

	// And from a fresh process: the cold chain must still resolve.
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustReadExact(t, s2, map[ColumnKey][]float32{vkey("v0"): base, vkey("v1"): child})
}

// TestSerializeDeltaImageV3 pins the on-disk format split: partitions
// holding any delta chunk serialize as image v3 and parse back with the
// chain metadata intact (payload unreconstructed); all-full partitions
// keep emitting the v2 image so old binaries read them unchanged.
func TestSerializeDeltaImageV3(t *testing.T) {
	full := testChunks(t, 2)
	img2 := serializePartition(nil, full)
	if v := int(img2[4]) | int(img2[5])<<8; v != partVersion {
		t.Fatalf("all-full image stamped version %d, want %d", v, partVersion)
	}

	base := full[0]
	residual := xorEnc(full[1].enc, base.enc)
	d := &chunk{
		count:   full[1].count,
		q:       full[1].q,
		delta:   residual,
		base:    ChunkID{Partition: 0, Index: 0},
		depth:   1,
		fullCRC: crc32.Checksum(full[1].enc, castagnoli),
	}
	img3 := serializePartition(nil, []*chunk{base, d})
	if v := int(img3[4]) | int(img3[5])<<8; v != partVersionDelta {
		t.Fatalf("delta image stamped version %d, want %d", v, partVersionDelta)
	}
	parsed, _, err := parsePartition(img3)
	if err != nil {
		t.Fatal(err)
	}
	got := parsed[1]
	if !got.isDelta() || got.enc != nil || got.base != d.base || got.depth != 1 || got.fullCRC != d.fullCRC {
		t.Fatalf("delta chunk metadata lost across the round trip: %+v", got)
	}
	if !bytes.Equal(got.delta, residual) {
		t.Fatal("residual bytes changed across the round trip")
	}
	// Resolution restores the original payload bit-exact.
	if _, _, err := resolveDeltaChunks(0, parsed, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parsed[1].enc, full[1].enc) {
		t.Fatal("reconstructed payload differs from the original")
	}
}

// TestDeltaReconstructionCRCCatchesWrongBase: resolving a residual
// against the wrong base generation must fail the chunk CRC — a hard
// error, never silently wrong values.
func TestDeltaReconstructionCRCCatchesWrongBase(t *testing.T) {
	full := testChunks(t, 3)
	residual := xorEnc(full[1].enc, full[0].enc)
	d := &chunk{
		count:   full[1].count,
		q:       full[1].q,
		delta:   residual,
		base:    ChunkID{Partition: 0, Index: 2}, // wrong base
		depth:   1,
		fullCRC: crc32.Checksum(full[1].enc, castagnoli),
	}
	_, _, err := resolveDeltaChunks(0, []*chunk{full[0], d, full[2]}, nil)
	if err == nil {
		t.Fatal("wrong-base reconstruction passed the CRC")
	}
}

// TestCrashMatrixDeltaFlush kills the flush that publishes a delta
// partition at every injection point. The parent generation is committed
// and must read back exactly; the delta children may read exactly or be
// gone, never wrong, and re-logging heals.
func TestCrashMatrixDeltaFlush(t *testing.T) {
	for _, fp := range crashPoints() {
		fp := fp
		t.Run(fp.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewInjector(nil)
			s, err := Open(dir, Config{FS: inj, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			committed := fillStore(t, s, "v0", 4, 1000)
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			fresh := make(map[ColumnKey][]float32, len(committed))
			for pk, pv := range committed {
				ck := key("v1", pk.Intermediate, pk.Column, pk.Block)
				cv := perturbCol(pv, int64(len(ck.Column)), 0.1)
				r, err := s.PutColumnDelta(ck, cv, nil, pk)
				if err != nil {
					t.Fatal(err)
				}
				if !r.Delta {
					t.Fatalf("child %s stored full; crash test needs delta chunks in flight", ck)
				}
				fresh[ck] = cv
			}
			inj.Arm(fp.fault)
			if err := s.Flush(); err == nil {
				t.Fatalf("flush survived a crash at %s", fp.name)
			}
			if !inj.Fired() {
				t.Fatalf("fault %s never fired", fp.name)
			}

			s2, err := Open(dir, Config{})
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", fp.name, err)
			}
			mustReadExact(t, s2, committed)
			verifyNoWrongValues(t, s2, fresh)
			relog(t, s2, fresh)
			if err := s2.Flush(); err != nil {
				t.Fatalf("flush after recovery: %v", err)
			}
			s3, err := Open(dir, Config{})
			if err != nil {
				t.Fatal(err)
			}
			mustReadExact(t, s3, committed)
			mustReadExact(t, s3, fresh)
		})
	}
}
