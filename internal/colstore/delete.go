package colstore

import (
	"fmt"
	"os"
	"sort"

	"mistique/internal/parallel"
)

// Deletion and compaction. Chunks are shared between logical columns by
// de-duplication, so deletes are logical (drop the column→chunk mapping)
// and space is reclaimed by Compact, which rewrites partitions without
// their unreferenced chunks. This is the lifecycle piece a real deployment
// needs once old model versions age out.

// refCount returns how many references each chunk has: logical columns
// plus delta generations using the chunk as their base. Computed on
// demand: deletes are rare relative to puts and the columns and delta
// maps are the single sources of truth. Counting base references keeps
// Compact from dropping a chunk some later generation still reconstructs
// through, even after every column naming the base itself was deleted.
func (s *Store) refCountLocked() map[ChunkID]int {
	refs := make(map[ChunkID]int, len(s.columns))
	for _, id := range s.columns {
		refs[id]++
	}
	for _, d := range s.deltas {
		refs[d.Base]++
	}
	return refs
}

// baseGoneLocked reports whether a delta base chunk is unreadable: lost,
// in a quarantined or vanished partition, or past a torn file's tail.
func (s *Store) baseGoneLocked(id ChunkID) bool {
	if _, bad := s.lostChunks[id]; bad {
		return true
	}
	p, ok := s.parts[id.Partition]
	if !ok || p.lost {
		return true
	}
	return p.chunks == nil && p.diskChunks >= 0 && id.Index >= p.diskChunks
}

// collapseChainsLocked rewrites delta chunks back to full form when their
// recorded chain depth exceeds the configured bound (possible after a
// DeltaMaxDepth change) or their base chunk is gone. Collapse needs the
// reconstructed payload, which is already resident or restored by page-in;
// a chunk whose base vanished before it was ever reconstructed stays lost
// until the version is re-logged. Caller holds flushMu and mu.
func (s *Store) collapseChainsLocked() {
	if len(s.deltas) == 0 {
		return
	}
	var ids []ChunkID
	for id, d := range s.deltas {
		if d.Depth > s.cfg.DeltaMaxDepth || s.baseGoneLocked(d.Base) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Partition != ids[j].Partition {
			return ids[i].Partition < ids[j].Partition
		}
		return ids[i].Index < ids[j].Index
	})
	for _, id := range ids {
		if _, bad := s.lostChunks[id]; bad {
			continue // unreconstructable until healed by re-logging
		}
		p, ok := s.parts[id.Partition]
		if !ok || p.lost {
			continue
		}
		chunks, err := s.partitionChunksLocked(id.Partition, p)
		if err != nil {
			continue // quarantined by the failed load; chunks now lost
		}
		if id.Index < 0 || id.Index >= len(chunks) {
			continue
		}
		c := chunks[id.Index]
		if !c.isDelta() {
			delete(s.deltas, id)
			continue
		}
		if c.enc == nil {
			continue // base gone before reconstruction: marked lost by the load
		}
		freed := int64(len(c.delta))
		// Clearing only the delta fields is safe for concurrent readers:
		// they touch enc/count/q, which stay untouched (see chunk docs).
		// Dependents of this chunk keep reconstructing: their residuals
		// apply against enc, which is byte-identical before and after.
		c.delta, c.base, c.depth, c.fullCRC = nil, ChunkID{}, 0, 0
		delete(s.deltas, id)
		p.dirty = true
		p.bytes -= freed
		if p.chunks != nil {
			s.memBytes -= freed
		}
		s.stats.DeltaChunks--
		s.stats.DeltaBytes -= freed
		s.stats.DeltaCollapsed++
	}
}

// DeleteModel drops every column mapping belonging to a model. Returns the
// number of logical columns removed. Physical bytes are reclaimed by the
// next Compact.
func (s *Store) DeleteModel(model string) int {
	return s.deleteWhere(func(k ColumnKey) bool { return k.Model == model })
}

// DeleteColumns drops the column mappings of one intermediate. The
// engine's recovery path uses it before re-materializing an intermediate
// whose chunks were quarantined, so the fresh puts are stored instead of
// colliding with dead mappings.
func (s *Store) DeleteColumns(model, interm string) int {
	return s.deleteWhere(func(k ColumnKey) bool {
		return k.Model == model && k.Intermediate == interm
	})
}

func (s *Store) deleteWhere(match func(ColumnKey) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for k := range s.columns {
		if match(k) {
			delete(s.columns, k)
			removed++
		}
	}
	if removed > 0 {
		// Unreferenced chunks must not satisfy future dedup hits: a revived
		// mapping would point at data Compact is free to drop.
		refs := s.refCountLocked()
		for h, id := range s.hashes {
			if refs[id] == 0 {
				delete(s.hashes, h)
			}
		}
		for id := range s.zones {
			if refs[id] == 0 {
				delete(s.zones, id)
			}
		}
		for id := range s.lostChunks {
			if refs[id] == 0 {
				delete(s.lostChunks, id)
			}
		}
	}
	return removed
}

// GarbageBytes reports the encoded bytes held by unreferenced chunks
// (reclaimable by Compact).
func (s *Store) GarbageBytes() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	refs := s.refCountLocked()
	var garbage int64
	for pid, p := range s.parts {
		if p.lost {
			continue // quarantined: no readable bytes to reclaim
		}
		chunks, err := s.partitionChunksLocked(pid, p)
		if err != nil {
			return 0, err
		}
		for i, c := range chunks {
			if refs[ChunkID{Partition: pid, Index: i}] == 0 {
				garbage += int64(len(c.enc))
			}
		}
	}
	return garbage, nil
}

// partitionChunksLocked returns a partition's chunks, paging them in from
// disk if evicted.
func (s *Store) partitionChunksLocked(pid int64, p *partition) ([]*chunk, error) {
	if p.chunks != nil {
		return p.chunks, nil
	}
	loaded, err := s.loadPartitionLocked(pid)
	if err != nil {
		return nil, err
	}
	return loaded.chunks, nil
}

// Compact rewrites every partition containing unreferenced chunks,
// dropping them and remapping the surviving chunks' ids, and every
// partition whose on-disk file was written by a different codec than the
// store is configured with — so compaction doubles as the codec
// migration tool. Returns the number of chunks dropped and encoded bytes
// reclaimed. Partitions that become empty are deleted outright. The
// manifest is rewritten, so the store stays reopenable. The index
// surgery happens under the index lock; the rewritten partition files
// are then codec-compressed and written concurrently (bounded by
// Config.Workers), like Flush.
//
// Compaction is crash-safe: a rewrite remaps chunk indices, so it goes to
// a NEW file generation, and the manifest write flips old→new atomically.
// Old-generation files are removed only after the manifest is durable; a
// crash at any point leaves a manifest whose referenced files are intact
// (stale leftovers are quarantined by the next Open's recovery sweep).
//
// Compact is also the delta-chain maintenance pass: chains deeper than
// DeltaMaxDepth (possible after a config change) or whose base is gone are
// collapsed back to full chunks first, and partitions hosting chunks that
// other partitions' deltas reconstruct through are pinned — no index
// remap — so cold dependents' on-disk base references stay valid.
func (s *Store) Compact() (droppedChunks int, reclaimed int64, err error) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.om.compactions.Inc()
	s.mu.Lock()
	// Collapse over-deep and orphaned delta chains first: collapsing frees
	// base references, so chunks kept alive only by a now-collapsed chain
	// become garbage this same pass can reclaim.
	s.collapseChainsLocked()
	refs := s.refCountLocked()
	var rewrites []flushTask
	// removals collects files to delete after the manifest commits: old
	// generations of rewritten partitions and files of emptied ones.
	var removals []string

	// Reverse index: partition -> column keys referencing it.
	byPart := make(map[int64][]ColumnKey)
	for k, id := range s.columns {
		byPart[id.Partition] = append(byPart[id.Partition], k)
	}

	// Partitions hosting a chunk that some OTHER partition's delta
	// reconstructs through are pinned: dropping any chunk there would shift
	// the indices the dependents' on-disk base references name, and those
	// dependents may be cold (their files cannot be fixed up without
	// rewriting them too). Pinned partitions keep all their chunks this
	// round; the garbage is reclaimed once the dependent chains collapse or
	// age out. Same-partition references are not pinning — chunk and base
	// remap through the same table below.
	pinned := make(map[int64]bool)
	for id, d := range s.deltas {
		if d.Base.Partition != id.Partition {
			pinned[d.Base.Partition] = true
		}
	}

	for pid, p := range s.parts {
		if p.lost {
			// Quarantined: nothing readable to rewrite. Once no column
			// references it (every mapping healed, re-logged or deleted),
			// the tombstone itself is garbage — drop it so the manifest
			// forgets it. The quarantined file stays in corrupt/ for
			// post-mortem.
			if len(byPart[pid]) == 0 {
				for id := range s.lostChunks {
					if id.Partition == pid {
						delete(s.lostChunks, id)
					}
				}
				for id := range s.zones {
					if id.Partition == pid {
						delete(s.zones, id)
					}
				}
				for id := range s.deltas {
					if id.Partition == pid {
						delete(s.deltas, id)
					}
				}
				delete(s.parts, pid)
				s.stats.Partitions--
			}
			continue
		}
		chunks, err := s.partitionChunksLocked(pid, p)
		if err != nil {
			s.mu.Unlock()
			return droppedChunks, reclaimed, err
		}
		hasGarbage := false
		if !pinned[pid] {
			for i := range chunks {
				if refs[ChunkID{Partition: pid, Index: i}] == 0 {
					hasGarbage = true
					break
				}
			}
		}
		if !hasGarbage {
			// Fully live (or pinned) — but still rewrite, identity-remapped,
			// when the on-disk file was written by a different codec than
			// the store is configured with (compaction doubles as the codec
			// migration tool) or when a chain collapse above dirtied it (the
			// collapse must reach disk before the manifest forgets the
			// chain). Unsniffable files are recovery's problem, not
			// compaction's — leave them alone.
			if !p.onDisk {
				continue
			}
			if !p.dirty {
				if id, err := fileCodecID(s.partPathGen(pid, p.gen)); err != nil || id == s.codec.ID() {
					continue
				}
			}
		}

		// Build the surviving chunk list and the old->new index map.
		remap := make(map[int]int, len(chunks))
		var live []*chunk
		var liveBytes int64
		for i, c := range chunks {
			id := ChunkID{Partition: pid, Index: i}
			if refs[id] == 0 && !pinned[pid] {
				droppedChunks++
				reclaimed += int64(len(c.enc))
				if c.isDelta() {
					s.stats.DeltaChunks--
					s.stats.DeltaBytes -= int64(len(c.delta))
					delete(s.deltas, id)
				}
				continue
			}
			remap[i] = len(live)
			live = append(live, c)
			liveBytes += int64(len(c.enc) + len(c.delta))
		}

		// Remap every referencing structure.
		for _, k := range byPart[pid] {
			old := s.columns[k]
			s.columns[k] = ChunkID{Partition: pid, Index: remap[old.Index]}
		}
		remapIDs := func(m map[ChunkID]zone) map[ChunkID]zone {
			out := make(map[ChunkID]zone, len(m))
			for id, z := range m {
				if id.Partition == pid {
					ni, ok := remap[id.Index]
					if !ok {
						continue
					}
					id = ChunkID{Partition: pid, Index: ni}
				}
				out[id] = z
			}
			return out
		}
		s.zones = remapIDs(s.zones)
		for h, id := range s.hashes {
			if id.Partition == pid {
				ni, ok := remap[id.Index]
				if !ok {
					delete(s.hashes, h)
					continue
				}
				s.hashes[h] = ChunkID{Partition: pid, Index: ni}
			}
		}
		// Remap the delta registry: entries keyed in this partition move to
		// their new index (dropped chunks' entries were deleted above), and
		// same-partition base links follow the same table. Cross-partition
		// base links into pid cannot exist off the identity — pinning keeps
		// every externally-referenced partition unremapped. Collect first,
		// then apply: inserting while ranging a map is undefined-order.
		type deltaEdit struct {
			old, new ChunkID
			d        deltaRef
		}
		var deltaEdits []deltaEdit
		for id, d := range s.deltas {
			nid, nd, touched := id, d, false
			if id.Partition == pid {
				nid = ChunkID{Partition: pid, Index: remap[id.Index]}
				touched = touched || nid != id
			}
			if d.Base.Partition == pid {
				// Base chunks carry a reference, so the remap kept them.
				nd.Base = ChunkID{Partition: pid, Index: remap[d.Base.Index]}
				touched = touched || nd.Base != d.Base
			}
			if touched {
				deltaEdits = append(deltaEdits, deltaEdit{old: id, new: nid, d: nd})
			}
		}
		for _, e := range deltaEdits {
			delete(s.deltas, e.old)
		}
		for _, e := range deltaEdits {
			s.deltas[e.new] = e.d
		}
		for _, c := range live {
			if c.isDelta() && c.base.Partition == pid {
				c.base = ChunkID{Partition: pid, Index: remap[c.base.Index]}
			}
		}

		if resident := p.chunks != nil; resident {
			s.memBytes += liveBytes - p.bytes
		}
		p.chunks = live
		p.bytes = liveBytes
		p.dirty = true

		if len(live) == 0 {
			// Empty partition: drop it from the index now, remove its file
			// only after the manifest no longer references it.
			if p.onDisk {
				removals = append(removals, s.partPathGen(pid, p.gen))
			}
			delete(s.parts, pid)
			s.stats.Partitions--
			continue
		}
		if p.onDisk {
			// The partition is resident after the remap and on-disk files
			// never receive appends, so the snapshot is stable; mark it
			// flushing to fence off the evictor and rewrite concurrently —
			// under a bumped file generation, since the chunk indices moved.
			removals = append(removals, s.partPathGen(pid, p.gen))
			p.gen++
			p.flushing = true
			rewrites = append(rewrites, flushTask{p: p, chunks: live, path: s.partPathGen(pid, p.gen)})
		}
	}
	s.stats.StoredBytes -= reclaimed
	workers := s.cfg.Workers
	s.mu.Unlock()

	werr := parallel.ForEach(len(rewrites), workers, func(i int) error {
		return s.writeSnapshot(rewrites[i])
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range rewrites {
		t.p.flushing = false
	}
	if werr != nil {
		return droppedChunks, reclaimed, werr
	}
	if err := s.writeManifestLocked(); err != nil {
		return droppedChunks, reclaimed, err
	}
	// The manifest is durable; the old generations are now garbage. Best
	// effort: a failed (or crashed) removal leaves files the next Open
	// quarantines.
	for _, path := range removals {
		if err := s.fs.Remove(path); err != nil && !os.IsNotExist(err) {
			break // crashed/failing fs: recovery sweeps the rest later
		}
	}
	return droppedChunks, reclaimed, nil
}

// VerifyReport summarizes a store integrity check.
type VerifyReport struct {
	Partitions    int
	Chunks        int
	Columns       int
	GarbageChunks int
	// Problems lists human-readable integrity violations (empty = healthy).
	Problems []string
}

// Verify walks every partition, decodes every chunk, and cross-checks the
// column map and zone maps — the fsck of the store. It reads all data, so
// it is O(store size).
func (s *Store) Verify() (*VerifyReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := &VerifyReport{Columns: len(s.columns)}
	refs := s.refCountLocked()

	// A quarantined partition is only a problem while columns still point
	// into it — that data is unavailable until healed. Once every mapping
	// has been healed or deleted, the tombstone is just garbage awaiting
	// Compact.
	lostRefs := make(map[int64]int)
	for _, id := range s.columns {
		if _, bad := s.lostChunks[id]; bad {
			lostRefs[id.Partition]++
			continue
		}
		if p, ok := s.parts[id.Partition]; ok && p.lost {
			lostRefs[id.Partition]++
		}
	}

	for pid, p := range s.parts {
		rep.Partitions++
		if p.lost {
			if n := lostRefs[pid]; n > 0 {
				rep.Problems = append(rep.Problems,
					fmt.Sprintf("partition %d quarantined: %d columns unavailable (rerun or re-log to heal)", pid, n))
			}
			continue
		}
		chunks, err := s.partitionChunksLocked(pid, p)
		if err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("partition %d unreadable: %v", pid, err))
			continue
		}
		for i, c := range chunks {
			rep.Chunks++
			id := ChunkID{Partition: pid, Index: i}
			if _, bad := s.lostChunks[id]; bad {
				rep.Problems = append(rep.Problems,
					fmt.Sprintf("chunk %v unavailable (lost base or torn tail): heal by re-logging or re-run", id))
				continue
			}
			vals, err := c.q.Decode(make([]float32, 0, c.count), c.enc, c.count)
			if err != nil {
				rep.Problems = append(rep.Problems, fmt.Sprintf("chunk %v undecodable: %v", id, err))
				continue
			}
			if len(vals) != c.count {
				rep.Problems = append(rep.Problems, fmt.Sprintf("chunk %v decoded %d values, header says %d", id, len(vals), c.count))
			}
			if refs[id] == 0 {
				rep.GarbageChunks++
			}
			if z, ok := s.zones[id]; ok {
				got := zoneOf(vals)
				if got.count > 0 && (got.min < z.min || got.max > z.max) {
					rep.Problems = append(rep.Problems,
						fmt.Sprintf("chunk %v zone [%g,%g] does not cover data [%g,%g]", id, z.min, z.max, got.min, got.max))
				}
			}
		}
	}
	// Every column mapping must point at an existing chunk.
	for k, id := range s.columns {
		p, ok := s.parts[id.Partition]
		if !ok {
			rep.Problems = append(rep.Problems, fmt.Sprintf("column %s points at missing partition %d", k, id.Partition))
			continue
		}
		chunks, err := s.partitionChunksLocked(id.Partition, p)
		if err != nil {
			continue // already reported above
		}
		if id.Index < 0 || id.Index >= len(chunks) {
			rep.Problems = append(rep.Problems, fmt.Sprintf("column %s points at missing chunk %v", k, id))
		}
	}
	return rep, nil
}
