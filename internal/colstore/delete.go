package colstore

import (
	"fmt"
	"os"

	"mistique/internal/parallel"
)

// Deletion and compaction. Chunks are shared between logical columns by
// de-duplication, so deletes are logical (drop the column→chunk mapping)
// and space is reclaimed by Compact, which rewrites partitions without
// their unreferenced chunks. This is the lifecycle piece a real deployment
// needs once old model versions age out.

// refCount returns how many logical columns reference each chunk.
// Computed on demand: deletes are rare relative to puts and the columns
// map is the single source of truth.
func (s *Store) refCountLocked() map[ChunkID]int {
	refs := make(map[ChunkID]int, len(s.columns))
	for _, id := range s.columns {
		refs[id]++
	}
	return refs
}

// DeleteModel drops every column mapping belonging to a model. Returns the
// number of logical columns removed. Physical bytes are reclaimed by the
// next Compact.
func (s *Store) DeleteModel(model string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for k := range s.columns {
		if k.Model == model {
			delete(s.columns, k)
			removed++
		}
	}
	if removed > 0 {
		// Unreferenced chunks must not satisfy future dedup hits: a revived
		// mapping would point at data Compact is free to drop.
		refs := s.refCountLocked()
		for h, id := range s.hashes {
			if refs[id] == 0 {
				delete(s.hashes, h)
			}
		}
		for id := range s.zones {
			if refs[id] == 0 {
				delete(s.zones, id)
			}
		}
	}
	return removed
}

// GarbageBytes reports the encoded bytes held by unreferenced chunks
// (reclaimable by Compact).
func (s *Store) GarbageBytes() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	refs := s.refCountLocked()
	var garbage int64
	for pid, p := range s.parts {
		chunks, err := s.partitionChunksLocked(pid, p)
		if err != nil {
			return 0, err
		}
		for i, c := range chunks {
			if refs[ChunkID{Partition: pid, Index: i}] == 0 {
				garbage += int64(len(c.enc))
			}
		}
	}
	return garbage, nil
}

// partitionChunksLocked returns a partition's chunks, paging them in from
// disk if evicted.
func (s *Store) partitionChunksLocked(pid int64, p *partition) ([]*chunk, error) {
	if p.chunks != nil {
		return p.chunks, nil
	}
	loaded, err := s.loadPartitionLocked(pid)
	if err != nil {
		return nil, err
	}
	return loaded.chunks, nil
}

// Compact rewrites every partition containing unreferenced chunks,
// dropping them and remapping the surviving chunks' ids. Returns the
// number of chunks dropped and encoded bytes reclaimed. Partitions that
// become empty are deleted outright. The manifest is rewritten, so the
// store stays reopenable. The index surgery happens under the index lock;
// the rewritten partition files are then gzip-compressed and written
// concurrently (bounded by Config.Workers), like Flush.
func (s *Store) Compact() (droppedChunks int, reclaimed int64, err error) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	refs := s.refCountLocked()
	var rewrites []flushTask

	// Reverse index: partition -> column keys referencing it.
	byPart := make(map[int64][]ColumnKey)
	for k, id := range s.columns {
		byPart[id.Partition] = append(byPart[id.Partition], k)
	}

	for pid, p := range s.parts {
		chunks, err := s.partitionChunksLocked(pid, p)
		if err != nil {
			s.mu.Unlock()
			return droppedChunks, reclaimed, err
		}
		hasGarbage := false
		for i := range chunks {
			if refs[ChunkID{Partition: pid, Index: i}] == 0 {
				hasGarbage = true
				break
			}
		}
		if !hasGarbage {
			continue
		}

		// Build the surviving chunk list and the old->new index map.
		remap := make(map[int]int, len(chunks))
		var live []*chunk
		var liveBytes int64
		for i, c := range chunks {
			id := ChunkID{Partition: pid, Index: i}
			if refs[id] == 0 {
				droppedChunks++
				reclaimed += int64(len(c.enc))
				continue
			}
			remap[i] = len(live)
			live = append(live, c)
			liveBytes += int64(len(c.enc))
		}

		// Remap every referencing structure.
		for _, k := range byPart[pid] {
			old := s.columns[k]
			s.columns[k] = ChunkID{Partition: pid, Index: remap[old.Index]}
		}
		remapIDs := func(m map[ChunkID]zone) map[ChunkID]zone {
			out := make(map[ChunkID]zone, len(m))
			for id, z := range m {
				if id.Partition == pid {
					ni, ok := remap[id.Index]
					if !ok {
						continue
					}
					id = ChunkID{Partition: pid, Index: ni}
				}
				out[id] = z
			}
			return out
		}
		s.zones = remapIDs(s.zones)
		for h, id := range s.hashes {
			if id.Partition == pid {
				ni, ok := remap[id.Index]
				if !ok {
					delete(s.hashes, h)
					continue
				}
				s.hashes[h] = ChunkID{Partition: pid, Index: ni}
			}
		}

		if resident := p.chunks != nil; resident {
			s.memBytes += liveBytes - p.bytes
		}
		p.chunks = live
		p.bytes = liveBytes
		p.dirty = true

		if len(live) == 0 {
			// Empty partition: remove entirely.
			if p.onDisk {
				if rmErr := os.Remove(s.partPath(pid)); rmErr != nil && !os.IsNotExist(rmErr) {
					s.mu.Unlock()
					return droppedChunks, reclaimed, fmt.Errorf("colstore: compact remove partition %d: %w", pid, rmErr)
				}
			}
			delete(s.parts, pid)
			s.stats.Partitions--
			continue
		}
		if p.onDisk {
			// The partition is resident after the remap and on-disk files
			// never receive appends, so the snapshot is stable; mark it
			// flushing to fence off the evictor and rewrite concurrently.
			p.flushing = true
			rewrites = append(rewrites, flushTask{p: p, chunks: live})
		}
	}
	s.stats.StoredBytes -= reclaimed
	workers := s.cfg.Workers
	s.mu.Unlock()

	werr := parallel.ForEach(len(rewrites), workers, func(i int) error {
		return s.writeSnapshot(rewrites[i])
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range rewrites {
		t.p.flushing = false
	}
	if werr != nil {
		return droppedChunks, reclaimed, werr
	}
	return droppedChunks, reclaimed, s.writeManifestLocked()
}

// VerifyReport summarizes a store integrity check.
type VerifyReport struct {
	Partitions    int
	Chunks        int
	Columns       int
	GarbageChunks int
	// Problems lists human-readable integrity violations (empty = healthy).
	Problems []string
}

// Verify walks every partition, decodes every chunk, and cross-checks the
// column map and zone maps — the fsck of the store. It reads all data, so
// it is O(store size).
func (s *Store) Verify() (*VerifyReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := &VerifyReport{Columns: len(s.columns)}
	refs := s.refCountLocked()

	for pid, p := range s.parts {
		rep.Partitions++
		chunks, err := s.partitionChunksLocked(pid, p)
		if err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("partition %d unreadable: %v", pid, err))
			continue
		}
		for i, c := range chunks {
			rep.Chunks++
			id := ChunkID{Partition: pid, Index: i}
			vals, err := c.q.Decode(make([]float32, 0, c.count), c.enc, c.count)
			if err != nil {
				rep.Problems = append(rep.Problems, fmt.Sprintf("chunk %v undecodable: %v", id, err))
				continue
			}
			if len(vals) != c.count {
				rep.Problems = append(rep.Problems, fmt.Sprintf("chunk %v decoded %d values, header says %d", id, len(vals), c.count))
			}
			if refs[id] == 0 {
				rep.GarbageChunks++
			}
			if z, ok := s.zones[id]; ok {
				got := zoneOf(vals)
				if got.count > 0 && (got.min < z.min || got.max > z.max) {
					rep.Problems = append(rep.Problems,
						fmt.Sprintf("chunk %v zone [%g,%g] does not cover data [%g,%g]", id, z.min, z.max, got.min, got.max))
				}
			}
		}
	}
	// Every column mapping must point at an existing chunk.
	for k, id := range s.columns {
		p, ok := s.parts[id.Partition]
		if !ok {
			rep.Problems = append(rep.Problems, fmt.Sprintf("column %s points at missing partition %d", k, id.Partition))
			continue
		}
		chunks, err := s.partitionChunksLocked(id.Partition, p)
		if err != nil {
			continue // already reported above
		}
		if id.Index < 0 || id.Index >= len(chunks) {
			rep.Problems = append(rep.Problems, fmt.Sprintf("column %s points at missing chunk %v", k, id))
		}
	}
	return rep, nil
}
