package colstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mistique/internal/parallel"
)

// Startup recovery (run by Open, before the store serves any request):
//
//  1. Sweep orphan *.tmp* files left by a crashed flush — the atomic
//     write protocol never publishes them, so they are pure garbage.
//  2. Reconcile the manifest against the directory: partition files the
//     manifest does not reference (stale compaction generations, flushes
//     that never reached a manifest write, or the leftovers of a corrupt
//     manifest) are quarantined into corrupt/.
//  3. Verify the checksum of every referenced partition file (unless
//     Config.SkipRecoveryScan). Missing files mark the partition lost;
//     corrupt files are quarantined and marked lost; a file holding fewer
//     chunks than the manifest promised marks just the tail chunks lost.
//
// Nothing aborts: a lost chunk answers ErrUnavailable and the engine
// falls back to re-running the model — "the model is the backup".

// corruptDirName is the quarantine subdirectory for bad files.
const corruptDirName = "corrupt"

// RecoveryReport describes what the last Open had to repair.
type RecoveryReport struct {
	// ManifestQuarantined is true when the manifest itself was corrupt and
	// the store restarted from an empty logical state.
	ManifestQuarantined bool
	// OrphanTempsRemoved lists swept *.tmp* files (crashed writes).
	OrphanTempsRemoved []string
	// ExtraFilesQuarantined lists partition files the manifest did not
	// reference, moved to corrupt/.
	ExtraFilesQuarantined []string
	// MissingPartitions lists manifest partitions whose file is gone.
	MissingPartitions []int64
	// CorruptPartitions lists partitions whose file failed verification
	// and was quarantined.
	CorruptPartitions []int64
	// UnsupportedPartitions lists partitions whose file uses a format or
	// codec from a newer binary. They are marked lost for this session but
	// their files are left in place — NOT moved to corrupt/ — so a binary
	// that understands the format can still read them.
	UnsupportedPartitions []int64
	// LostChunks lists every referenced chunk that is no longer readable
	// (its columns recover via the engine's rerun fallback).
	LostChunks []ChunkID
}

// Clean reports whether recovery found nothing to repair.
func (r *RecoveryReport) Clean() bool {
	return r != nil && !r.ManifestQuarantined &&
		len(r.OrphanTempsRemoved) == 0 && len(r.ExtraFilesQuarantined) == 0 &&
		len(r.MissingPartitions) == 0 && len(r.CorruptPartitions) == 0 &&
		len(r.UnsupportedPartitions) == 0 && len(r.LostChunks) == 0
}

// LastRecovery returns the report of the Open-time recovery sweep.
func (s *Store) LastRecovery() *RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// moveToCorrupt quarantines one file (named relative to the store dir)
// into the corrupt/ subdirectory. Best effort: quarantine runs on paths
// that may already be half-gone, and a failed move leaves the file where
// a later sweep retries.
func (s *Store) moveToCorrupt(name string) {
	src := filepath.Join(s.dir, name)
	if _, err := os.Stat(src); err != nil {
		return
	}
	dst := filepath.Join(s.dir, corruptDirName, name)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return
	}
	os.Rename(src, dst)
}

// quarantineLocked marks a partition lost after a failed read: its file
// moves to corrupt/, and the dedup hash entries pointing into it are
// dropped so no future put maps a fresh column to dead data. Zone maps
// stay — they still describe the (rerun-recoverable) values, which keeps
// predicate skipping sound. Caller holds s.mu.
//
// A cause of ErrUnsupportedFormat is the exception: the file is intact,
// just written by a newer binary, so it stays where it is (deleting or
// quarantining it would destroy data a future binary could serve) and is
// counted separately from corruption.
func (s *Store) quarantineLocked(p *partition, cause error) {
	if p.lost {
		return
	}
	if _, still := s.parts[p.id]; !still {
		return // deleted concurrently; nothing to quarantine
	}
	p.lost = true
	if p.chunks != nil {
		s.memBytes -= p.bytes
		p.chunks = nil
	}
	p.dirty = false
	if errors.Is(cause, ErrUnsupportedFormat) {
		s.stats.UnsupportedPartitions++
	} else {
		s.stats.CorruptPartitions++
		s.moveToCorrupt(partFileName(p.id, p.gen))
	}
	s.om.quarantines.Inc()
	for h, id := range s.hashes {
		if id.Partition == p.id {
			delete(s.hashes, h)
		}
	}
}

// recoverOnOpen runs the three-step sweep above. It executes before the
// store is shared, so it reads fields without holding mu (the parallel
// verification workers touch only their own slot).
func (s *Store) recoverOnOpen(manifestCorrupt bool) error {
	rep := &RecoveryReport{ManifestQuarantined: manifestCorrupt}

	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("colstore: recovery scan %s: %w", s.dir, err)
	}
	known := make(map[string]int64, len(s.parts))
	for pid, p := range s.parts {
		known[partFileName(pid, p.gen)] = pid
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || name == manifestName {
			continue
		}
		if strings.Contains(name, ".tmp") {
			if err := os.Remove(filepath.Join(s.dir, name)); err == nil || os.IsNotExist(err) {
				rep.OrphanTempsRemoved = append(rep.OrphanTempsRemoved, name)
			}
			continue
		}
		if _, ok := known[name]; !ok && strings.HasPrefix(name, "partition_") {
			s.moveToCorrupt(name)
			rep.ExtraFilesQuarantined = append(rep.ExtraFilesQuarantined, name)
		}
	}

	// Verify every referenced partition file. Partitions already marked
	// lost by the manifest stay lost; everything else gets its checksums
	// checked so silent corruption is caught before any query trusts it.
	pids := make([]int64, 0, len(s.parts))
	for pid, p := range s.parts {
		if !p.lost {
			pids = append(pids, pid)
		}
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	type verdict struct {
		missing     bool
		corrupt     bool
		unsupported bool
		chunks      int
	}
	verdicts := make([]verdict, len(pids))
	if !s.cfg.SkipRecoveryScan {
		parallel.ForEach(len(pids), s.cfg.Workers, func(i int) error {
			p := s.parts[pids[i]]
			path := s.partPathGen(p.id, p.gen)
			if _, err := os.Stat(path); os.IsNotExist(err) {
				verdicts[i].missing = true
				return nil
			}
			chunks, _, _, err := readPartitionFile(path, p.raw)
			switch {
			case errors.Is(err, ErrUnsupportedFormat):
				verdicts[i].unsupported = true
			case err != nil:
				verdicts[i].corrupt = true
			default:
				verdicts[i].chunks = len(chunks)
			}
			return nil
		})
		for i, pid := range pids {
			p := s.parts[pid]
			v := verdicts[i]
			switch {
			case v.missing:
				p.lost = true
				p.onDisk = false
				rep.MissingPartitions = append(rep.MissingPartitions, pid)
				s.stats.CorruptPartitions++
				s.om.quarantines.Inc()
			case v.corrupt:
				p.lost = true
				s.stats.CorruptPartitions++
				s.om.quarantines.Inc()
				s.moveToCorrupt(partFileName(pid, p.gen))
				rep.CorruptPartitions = append(rep.CorruptPartitions, pid)
			case v.unsupported:
				// Forward-compat: the file is from a newer binary. Mark the
				// partition lost (reads answer ErrUnavailable, the engine
				// reruns) but leave the file untouched for a binary that can
				// read it.
				p.lost = true
				s.stats.UnsupportedPartitions++
				rep.UnsupportedPartitions = append(rep.UnsupportedPartitions, pid)
			default:
				p.diskChunks = v.chunks
			}
		}
	}

	// Cross-check the column map: every mapping into a lost partition, an
	// unknown partition, or past the end of a short (torn-tail) file is a
	// lost chunk. Queries for them answer ErrUnavailable and the engine
	// recovers by re-run, then re-materializes.
	for _, id := range s.columns {
		p, ok := s.parts[id.Partition]
		switch {
		case !ok || p.lost:
			s.lostChunks[id] = struct{}{}
		case p.diskChunks >= 0 && id.Index >= p.diskChunks:
			s.lostChunks[id] = struct{}{}
		}
	}
	// Delta chunks depend on their base chunk: a lost base makes every
	// dependent generation unreconstructable too (lost-but-healable — the
	// dependents' own files are intact, re-logging the lost version heals
	// the chain). Propagate to a fixpoint so whole chains go down together,
	// however deep.
	chunkGone := func(id ChunkID) bool {
		if _, bad := s.lostChunks[id]; bad {
			return true
		}
		p, ok := s.parts[id.Partition]
		if !ok || p.lost {
			return true
		}
		return p.diskChunks >= 0 && id.Index >= p.diskChunks
	}
	for changed := true; changed; {
		changed = false
		for id, d := range s.deltas {
			if _, bad := s.lostChunks[id]; bad {
				continue
			}
			if chunkGone(d.Base) {
				s.lostChunks[id] = struct{}{}
				changed = true
			}
		}
	}
	for id := range s.lostChunks {
		rep.LostChunks = append(rep.LostChunks, id)
	}
	sort.Slice(rep.LostChunks, func(i, j int) bool {
		a, b := rep.LostChunks[i], rep.LostChunks[j]
		if a.Partition != b.Partition {
			return a.Partition < b.Partition
		}
		return a.Index < b.Index
	})

	s.recovery = rep
	return nil
}
