// Package colstore implements MISTIQUE's DataStore (Sec. 3-4): a
// column-oriented store for model intermediates.
//
// Every intermediate is a dataframe; its rows are split into RowBlocks
// (default 1K rows) and each column of each RowBlock becomes a ColumnChunk —
// the unit of storage, de-duplication and compression. ColumnChunks are
// clustered into Partitions. A Partition lives uncompressed in the
// InMemoryStore (a byte-budgeted buffer pool) until it is evicted or
// flushed, at which point it is gzip-compressed and written to disk as one
// file. Reading any chunk of an on-disk Partition loads (and caches) the
// whole Partition — exactly the co-location trade-off the paper describes.
//
// De-duplication (Sec. 4.2):
//   - exact: a content hash over the encoded chunk; an identical chunk is
//     never stored twice, the new column simply references the old chunk.
//   - approximate: a MinHash signature per chunk and an LSH index over
//     partitions; a new chunk joins the partition holding its most similar
//     existing chunk (Jaccard >= tau), so the partition compressor can
//     exploit cross-chunk redundancy.
//
// Concurrency model. The store is safe for fully concurrent PutColumn,
// GetColumn, Flush, Compact, DeleteModel and scan calls. Three locks with a
// strict acquisition order keep it so:
//
//   - flushMu serializes the writers that walk every partition (Flush,
//     Compact, DropCache) against each other. It is always taken first and
//     never while holding any other lock.
//   - partition.loadMu serializes cold page-ins of one partition. It is
//     taken only when mu is NOT held (mu may be taken underneath it).
//   - mu is the index lock guarding every map, the LRU, stats, and all
//     partition metadata (chunks slice header, dirty/sealed/onDisk/flushing
//     flags). It is always the innermost lock.
//
// The expensive work — chunk encoding, content hashing, MinHash signing,
// gzip (de)compression and value decoding — happens outside mu. That is
// sound because chunk payloads are immutable once created and a partition's
// chunks slice is append-only (elements [0, len) never change); writers
// snapshot the slice header under mu and serialize the snapshot without the
// lock. Partition files are written to a unique temp file and renamed, so a
// concurrent file reader always sees a complete old or new file; the
// per-partition flushing flag keeps the evictor from writing (or dropping)
// a partition whose file a Flush/Compact worker currently owns.
package colstore

import (
	"compress/gzip"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"mistique/internal/codec"
	"mistique/internal/faultfs"
	"mistique/internal/minhash"
	"mistique/internal/obs"
	"mistique/internal/parallel"
	"mistique/internal/quant"
)

// ErrUnavailable marks a chunk whose backing partition is missing,
// corrupt, or quarantined. The data is not gone — MISTIQUE can always
// re-run the model (the paper's RERUN strategy) — so callers holding a
// model treat this error as "recover via re-run", never as fatal.
var ErrUnavailable = errors.New("colstore: chunk unavailable (missing or quarantined partition)")

// ErrNotStored marks a lookup of a column the store has no mapping for.
// The engine treats it like ErrUnavailable when the catalog says the
// intermediate was materialized (a catalog/store mismatch after partial
// recovery), and as a caller bug otherwise.
var ErrNotStored = errors.New("colstore: column not stored")

// Mode selects how ColumnChunks are assigned to Partitions.
type Mode int

const (
	// ModeSimilarity co-locates chunks by MinHash/LSH similarity (the
	// paper's strategy for TRAD pipelines).
	ModeSimilarity Mode = iota
	// ModeArrival fills the current partition in arrival order (the
	// paper's DNN simplification: columns of one intermediate are written
	// consecutively and therefore co-located).
	ModeArrival
	// ModeScatter assigns chunks round-robin across partitions. Only used
	// by the Fig. 14 ablation to show what co-location buys.
	ModeScatter
)

// Config controls store behaviour. Zero values select defaults.
type Config struct {
	// RowBlockRows is the number of rows per RowBlock (default 1024; the
	// paper uses 1K). Exposed for tests and ablations; the store itself
	// only sees per-block chunks, callers do the splitting.
	RowBlockRows int
	// MemBudgetBytes bounds the InMemoryStore (default 256 MiB).
	MemBudgetBytes int64
	// PartitionTargetBytes seals a partition once its encoded payload
	// reaches this size (default 4 MiB).
	PartitionTargetBytes int64
	// Mode is the chunk-to-partition assignment policy.
	Mode Mode
	// SimilarityThreshold tau for approximate dedup (default 0.6).
	SimilarityThreshold float64
	// DisableExactDedup turns off content hashing (STORE_ALL baseline).
	DisableExactDedup bool
	// DisableApproxDedup turns off LSH co-location while keeping exact
	// dedup (the paper's DNN configuration).
	DisableApproxDedup bool
	// ScatterWays is the number of round-robin partitions for ModeScatter
	// (default 8).
	ScatterWays int
	// MinHashBucket is the discretization width for similarity hashing
	// (default 0.01).
	MinHashBucket float64
	// DeltaMaxDepth bounds the delta-generation chain length accepted by
	// PutColumnDelta: a chunk at this depth becomes the base of no further
	// deltas (the next generation restarts full), so a cold read never
	// chases more than DeltaMaxDepth bases. Default 4; negative disables
	// delta storage entirely (every versioned put stores full).
	DeltaMaxDepth int
	// Workers bounds the goroutines used by Flush and Compact to compress
	// and write partitions (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// CompressionLevel is the gzip level for partition files, in
	// [gzip.HuffmanOnly, gzip.BestCompression] = [-2, 9]. 0 selects the
	// measured default (gzip.BestSpeed: BenchmarkPartitionWriteLevels
	// showed it compresses LP-encoded partition images ~2.2x faster than
	// gzip.DefaultCompression for under 1% of file size — see DESIGN.md
	// "Performance"). Note that 0 therefore cannot select
	// gzip.NoCompression. Only the gzip codec uses it.
	CompressionLevel int
	// Codec names the partition-file compressor: "gzip" (default; files
	// byte-compatible with pre-codec stores), "store" (raw bytes, for
	// incompressible data), or "actz" (the activation-tuned
	// shuffle+LZ+Huffman codec — see DESIGN.md "Performance"). The choice
	// only affects new writes: reads dispatch on each file's own header,
	// so a store written under one codec reopens cleanly under another.
	Codec string
	// FS overrides the filesystem used for durable writes (nil = real OS).
	// Fault-injection tests substitute a faultfs.Injector to tear writes,
	// fail fsyncs and simulate crashes at arbitrary points.
	FS faultfs.FS
	// SkipRecoveryScan disables the checksum verification of every
	// partition file during Open. Orphan sweeping and manifest
	// reconciliation still run; corrupt files are then caught (and
	// quarantined) lazily on first read instead.
	SkipRecoveryScan bool
	// Obs receives the store's operational metrics: per-phase put timings
	// (encode/hash/append), chunk-read and partition page-in latencies,
	// per-partition flush/compaction write timings, and quarantine counts.
	// Nil disables instrumentation (the instruments are nil-safe no-ops);
	// the engine passes its metrics registry here.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.RowBlockRows <= 0 {
		c.RowBlockRows = 1024
	}
	if c.MemBudgetBytes <= 0 {
		c.MemBudgetBytes = 256 << 20
	}
	if c.PartitionTargetBytes <= 0 {
		c.PartitionTargetBytes = 4 << 20
	}
	if c.SimilarityThreshold <= 0 {
		c.SimilarityThreshold = 0.6
	}
	if c.ScatterWays <= 0 {
		c.ScatterWays = 8
	}
	if c.MinHashBucket <= 0 {
		c.MinHashBucket = 0.01
	}
	if c.DeltaMaxDepth == 0 {
		c.DeltaMaxDepth = 4
	}
	if c.DeltaMaxDepth < 0 {
		c.DeltaMaxDepth = 0 // disabled: PutColumnDelta always stores full
	}
	if c.CompressionLevel == 0 {
		c.CompressionLevel = defaultCompressionLevel
	}
	if c.Codec == "" {
		c.Codec = "gzip"
	}
	return c
}

// defaultCompressionLevel is the measured flush-throughput winner for
// partition-sized images (see Config.CompressionLevel).
const defaultCompressionLevel = gzip.BestSpeed

// ChunkID names a stored chunk: partition plus position within it.
type ChunkID struct {
	Partition int64
	Index     int
}

// ColumnKey identifies one ColumnChunk logically: a column of one RowBlock
// of one intermediate of one model.
type ColumnKey struct {
	Model        string
	Intermediate string
	Column       string
	Block        int
}

func (k ColumnKey) String() string {
	return fmt.Sprintf("%s.%s.%s[%d]", k.Model, k.Intermediate, k.Column, k.Block)
}

// chunk is the in-memory form of a ColumnChunk: encoded payload plus the
// codec needed to reconstruct values. Immutable once created, with one
// exception: Compact's chain-collapse (under flushMu+mu) clears the delta
// fields — never enc/count/q, which readers touch without locks.
type chunk struct {
	enc   []byte
	count int
	q     *quant.Quantizer
	// Delta-generation fields (zero for a full chunk). A delta chunk is
	// stored on disk as the XOR residual against an earlier generation's
	// chunk; in memory enc always holds the fully reconstructed payload, so
	// the read path is identical for both kinds. delta keeps the residual so
	// re-serialization (eviction, compaction rewrite) needs no base access.
	delta   []byte  // XOR residual, len(delta) == len(enc)
	base    ChunkID // the chunk the residual applies against
	depth   int     // chain length: base.depth + 1
	fullCRC uint32  // CRC32-C of the reconstructed enc, verified on page-in
}

// isDelta reports whether the chunk is stored as a delta generation.
func (c *chunk) isDelta() bool { return c.delta != nil }

// deltaRef is the resident registry entry for one delta chunk: enough to
// know chain shape (for cost estimates and lost-base propagation) without
// paging the partition in. Persisted in the manifest.
type deltaRef struct {
	Base  ChunkID
	Depth int
}

// partition is a cluster of chunks; the unit of compression and disk IO.
type partition struct {
	id     int64
	chunks []*chunk
	bytes  int64 // encoded payload bytes
	sealed bool
	dirty  bool // has content not yet on disk
	onDisk bool
	// gen is the file generation: compaction rewrites a partition under a
	// new generation and the manifest flips old→new atomically, so a crash
	// mid-compact can never leave the manifest pointing at remapped data.
	gen int
	// raw is the uncompressed size of the last written partition image,
	// persisted in the manifest so a page-in can size its decode arena
	// exactly (0 = unknown; the reader falls back to growing).
	raw int64
	// lost marks a partition whose file is missing or quarantined; every
	// chunk read returns ErrUnavailable and the engine recovers by re-run.
	lost bool
	// diskChunks is the number of chunks known to be in the on-disk file
	// (-1 = not yet verified). wantChunks is the count the manifest
	// promised; a shortfall marks the tail chunks unavailable.
	diskChunks int
	wantChunks int
	// flushing marks a partition whose file a Flush/Compact worker is
	// writing; the evictor leaves it alone (see package comment).
	flushing bool
	// loadMu serializes cold page-ins so concurrent readers decompress a
	// partition once. Taken only when Store.mu is not held.
	loadMu sync.Mutex
}

// PutResult reports what PutColumn did.
type PutResult struct {
	ID ChunkID
	// Deduped is true when an identical chunk already existed and no new
	// data was stored.
	Deduped bool
	// CoLocated is true when approximate dedup placed the chunk next to a
	// similar one.
	CoLocated bool
	// EncodedBytes is the encoded payload size (0 when Deduped).
	EncodedBytes int64
	// Delta is true when the chunk was stored as an XOR residual against a
	// parent generation; Depth is its chain depth (0 for full chunks).
	Delta bool
	Depth int
}

// Stats summarizes store contents and activity.
type Stats struct {
	ChunksPut      int64
	ChunksDeduped  int64
	ChunksStored   int64
	LogicalBytes   int64 // encoded bytes before dedup (what STORE_ALL would keep)
	StoredBytes    int64 // encoded bytes actually kept (before compression)
	Partitions     int64
	Evictions      int64
	DiskReads      int64
	DiskWrites     int64
	DiskReadBytes  int64
	DiskWriteBytes int64
	// RecoveredReads counts queries that hit a missing/corrupt chunk and
	// were transparently answered by re-running the model.
	RecoveredReads int64
	// CorruptPartitions counts partitions quarantined after failing a
	// checksum or going missing (at Open or on a cold read).
	CorruptPartitions int64
	// FsyncCount counts fsyncs issued on partition/manifest files and
	// their directory — the price of the durability guarantees.
	FsyncCount int64
	// UnsupportedPartitions counts partitions whose file uses a format or
	// codec this binary cannot read (written by a newer version). Unlike
	// corrupt files they are NOT quarantined — the file stays in place for
	// a binary that understands it; its chunks answer ErrUnavailable.
	UnsupportedPartitions int64
	// DeltaChunks counts chunks currently stored as delta generations;
	// DeltaBytes is the residual bytes they hold in place of full payloads
	// (the cross-version dedup win, before compression). DeltaCollapsed
	// counts chunks Compact rewrote back to full form (depth bound exceeded
	// after a config change, or the base was lost).
	DeltaChunks    int64
	DeltaBytes     int64
	DeltaCollapsed int64
}

// storeObs holds the store's instruments. All fields are nil (no-op) when
// Config.Obs is nil, so the hot paths are instrumented unconditionally.
type storeObs struct {
	putEncodeSeconds  *obs.Histogram
	putHashSeconds    *obs.Histogram
	putAppendSeconds  *obs.Histogram
	chunkReadSeconds  *obs.Histogram
	pageInSeconds     *obs.Histogram
	flushWriteSeconds *obs.Histogram
	flushes           *obs.Counter
	compactions       *obs.Counter
	quarantines       *obs.Counter
	// codecRawBytes/codecFileBytes accumulate uncompressed-image and
	// on-disk bytes written under the configured codec; the ratio of the
	// two counters is the codec's achieved compression ratio. The codec
	// name is embedded in the metric name (the registry has no labels).
	codecRawBytes  *obs.Counter
	codecFileBytes *obs.Counter
}

func newStoreObs(reg *obs.Registry, codecName string) storeObs {
	return storeObs{
		putEncodeSeconds:  reg.Histogram("mistique_store_put_encode_seconds", "PutColumn value-codec encode time per chunk"),
		putHashSeconds:    reg.Histogram("mistique_store_put_hash_seconds", "PutColumn content-hash and MinHash signing time per chunk"),
		putAppendSeconds:  reg.Histogram("mistique_store_put_append_seconds", "PutColumn index/partition append time per chunk (under the index lock)"),
		chunkReadSeconds:  reg.Histogram("mistique_store_chunk_read_seconds", "chunk fetch+decode time per read"),
		pageInSeconds:     reg.Histogram("mistique_store_pagein_seconds", "cold partition page-in time (open+decompress+verify)"),
		flushWriteSeconds: reg.Histogram("mistique_flush_partition_write_seconds", "per-partition compress+write+fsync time during flush/compaction"),
		flushes:           reg.Counter("mistique_store_flushes_total", "Flush calls"),
		compactions:       reg.Counter("mistique_store_compactions_total", "Compact calls"),
		quarantines:       reg.Counter("mistique_store_quarantines_total", "partitions quarantined after a failed read or verification"),
		codecRawBytes: reg.Counter("mistique_store_codec_"+codecName+"_raw_bytes_total",
			"uncompressed partition-image bytes handed to the "+codecName+" codec"),
		codecFileBytes: reg.Counter("mistique_store_codec_"+codecName+"_file_bytes_total",
			"partition-file bytes written by the "+codecName+" codec (file/raw = compression ratio)"),
	}
}

// Store is the DataStore. It is safe for concurrent use.
type Store struct {
	// flushMu serializes Flush/Compact/DropCache; see package comment for
	// the full lock order.
	flushMu sync.Mutex
	// mu is the index lock (innermost).
	mu  sync.Mutex
	cfg Config
	dir string
	// codec is the resolved Config.Codec, used for every partition write
	// (reads dispatch on each file's own header).
	codec codec.Codec
	// fs is the injectable write-side filesystem (faultfs.OS in prod).
	fs faultfs.FS
	// generation is the manifest generation, bumped on every write; a
	// reopened store continues the sequence.
	generation int64
	// lostChunks records chunk ids the recovery sweep found unreachable
	// (partial files, vanished partitions); reads return ErrUnavailable.
	lostChunks map[ChunkID]struct{}
	// recovery is the report of the last Open's recovery sweep.
	recovery *RecoveryReport

	parts    map[int64]*partition
	nextPart int64
	// lru tracks resident partitions, least-recently-used first.
	lru      []int64
	memBytes int64

	// open partitions by assignment policy.
	current    int64   // ModeArrival current partition (-1 none)
	scatter    []int64 // ModeScatter round-robin ring
	scatterPos int

	// exact dedup: content hash -> chunk id.
	hashes map[[32]byte]ChunkID
	// approximate dedup.
	hasher *minhash.Hasher
	lsh    *minhash.Index
	// chunk id -> partition of the chunk that owned the signature (LSH
	// stores int ids; we map them back).
	sigPart map[int]int64
	nextSig int

	// columns maps logical keys to physical chunks.
	columns map[ColumnKey]ChunkID
	// zones holds per-chunk min/max summaries for predicate scans.
	zones map[ChunkID]zone
	// deltas registers every delta-generation chunk (id -> base + depth).
	// Always resident — manifest-persisted — so chain depth is known for
	// cost estimates and lost-base propagation without paging anything in.
	deltas map[ChunkID]deltaRef

	stats Stats
	om    storeObs
}

// Open creates or reopens a store rooted at dir. If the directory holds a
// manifest from a previous Flush, the column map and partition index are
// restored and all flushed chunks are readable; dedup state is rebuilt
// lazily (new chunks do not dedup against pre-restart data).
//
// Open is also the recovery point: orphan temp files from a crashed flush
// are swept, the manifest is reconciled against the directory, and
// missing or checksum-failing partition files are quarantined into a
// corrupt/ subdirectory instead of aborting — their chunks answer
// ErrUnavailable and the engine recovers them by re-running the model.
func Open(dir string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.CompressionLevel < gzip.HuffmanOnly || cfg.CompressionLevel > gzip.BestCompression {
		return nil, fmt.Errorf("colstore: compression level %d out of range [%d, %d]",
			cfg.CompressionLevel, gzip.HuffmanOnly, gzip.BestCompression)
	}
	cdc, err := codec.ByName(cfg.Codec)
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	if err := mkdirAll(dir); err != nil {
		return nil, fmt.Errorf("colstore: open %s: %w", dir, err)
	}
	const sigBits = 64
	fs := cfg.FS
	if fs == nil {
		fs = faultfs.OS()
	}
	s := &Store{
		cfg:        cfg,
		dir:        dir,
		codec:      cdc,
		fs:         fs,
		parts:      make(map[int64]*partition),
		current:    -1,
		hashes:     make(map[[32]byte]ChunkID),
		hasher:     minhash.NewHasher(sigBits, 0x5155454e), // deterministic
		lsh:        minhash.NewIndex(16, 4),                // candidate threshold ~(1/16)^(1/4) = 0.5
		sigPart:    make(map[int]int64),
		columns:    make(map[ColumnKey]ChunkID),
		zones:      make(map[ChunkID]zone),
		deltas:     make(map[ChunkID]deltaRef),
		lostChunks: make(map[ChunkID]struct{}),
		om:         newStoreObs(cfg.Obs, cfg.Codec),
	}
	manifestCorrupt := false
	if err := s.loadManifest(); err != nil {
		if !errors.Is(err, errCorruptManifest) {
			return nil, err
		}
		// A corrupt manifest survives only literal disk corruption (the
		// write protocol is atomic); quarantine it and start from an empty
		// logical state — the sweep below quarantines the now-unreferenced
		// partition files, and re-logging/re-running rebuilds the data.
		manifestCorrupt = true
		s.moveToCorrupt(manifestName)
	}
	if err := s.recoverOnOpen(manifestCorrupt); err != nil {
		return nil, err
	}
	return s, nil
}

// RowBlockRows returns the configured RowBlock height.
func (s *Store) RowBlockRows() int { return s.cfg.RowBlockRows }

// PutColumn stores one ColumnChunk: vals encoded with q under key. If an
// identical chunk exists it is deduplicated; if a similar chunk exists (in
// ModeSimilarity) the new chunk joins its partition.
func (s *Store) PutColumn(key ColumnKey, vals []float32, q *quant.Quantizer) (PutResult, error) {
	return s.putColumn(key, vals, q, nil, false)
}

// PutColumnReplace stores vals under key even when the key already maps to
// a different payload: the old mapping is swapped for the new chunk inside
// the same critical section, so concurrent readers always resolve the key.
// The streaming engine grows an open row block this way — each drain cuts
// a longer prefix of the same block under the same key. The displaced
// chunk becomes unreferenced and is reclaimed by the next Compact.
func (s *Store) PutColumnReplace(key ColumnKey, vals []float32, q *quant.Quantizer) (PutResult, error) {
	return s.putColumn(key, vals, q, nil, true)
}

// PutColumnDelta stores one ColumnChunk of a new model version, trying to
// encode it as a delta generation against the parent version's chunk: if
// the parent column exists, its chain is shorter than DeltaMaxDepth, and
// the two columns' MinHash signatures estimate Jaccard similarity at or
// above SimilarityThreshold, only the XOR residual is kept (sparse for
// fine-tune-style updates, so the partition compressor collapses it).
// Every fallback condition — missing or lost parent, depth bound, low
// similarity, a parent stored after this chunk's partition — degrades to a
// plain full store, never to an error: delta encoding is an optimization,
// not a correctness requirement.
func (s *Store) PutColumnDelta(key ColumnKey, vals []float32, q *quant.Quantizer, parent ColumnKey) (PutResult, error) {
	return s.putColumn(key, vals, q, &parent, false)
}

// deltaSpec carries a prepared (pre-lock) delta encoding into the put's
// critical section, where it is re-validated before use.
type deltaSpec struct {
	parent   ColumnKey
	base     ChunkID
	depth    int
	residual []byte
	fullCRC  uint32
}

func (s *Store) putColumn(key ColumnKey, vals []float32, q *quant.Quantizer, parent *ColumnKey, replace bool) (PutResult, error) {
	if q == nil {
		q = quant.NewFull()
	}
	// Encoding, content hashing and MinHash signing are the CPU-heavy part
	// of a put; all three happen before the index lock so concurrent puts
	// overlap them.
	t0 := time.Now()
	enc := q.Encode(nil, vals)
	// Zone maps describe the values a reader observes, i.e. the
	// reconstruction. Full reconstructs to the input itself; for lossy
	// codecs decode enc (already in hand — no re-encode) into a pooled
	// scratch buffer.
	var zn zone
	if q.Kind == quant.Full {
		zn = zoneOf(vals)
	} else {
		scratch := grabF32(len(vals))
		dec, derr := q.Decode(scratch[:0], enc, len(vals))
		if derr != nil {
			panic(derr) // cannot happen: we just produced enc
		}
		zn = zoneOf(dec)
		releaseF32(dec)
	}
	s.om.putEncodeSeconds.ObserveSince(t0)
	t0 = time.Now()
	var h [32]byte
	if !s.cfg.DisableExactDedup {
		h = contentHash(enc, q)
	}
	var sig []uint64
	if s.cfg.Mode == ModeSimilarity && !s.cfg.DisableApproxDedup {
		sig = s.hasher.SignFloats(vals, s.cfg.MinHashBucket)
	}
	s.om.putHashSeconds.ObserveSince(t0)

	// Delta preparation — base lookup, similarity probe, residual XOR —
	// also runs outside mu; the spec is re-validated under the lock (a
	// concurrent Compact may have remapped the base chunk's id meanwhile).
	var spec *deltaSpec
	if parent != nil && *parent != key {
		spec = s.prepareDelta(*parent, vals, enc, sig)
	}

	appendDone := s.om.putAppendSeconds.Time()
	defer appendDone()
	s.mu.Lock()
	defer s.mu.Unlock()

	s.stats.ChunksPut++
	s.stats.LogicalBytes += int64(len(enc))

	if existing, dup := s.columns[key]; dup {
		// Idempotent re-put: logging the same model into a reopened store
		// re-presents identical chunks; accept them as dedup hits. A
		// different payload under an existing key is a caller bug.
		if !s.cfg.DisableExactDedup {
			if id, ok := s.hashes[h]; ok && id == existing {
				s.stats.ChunksDeduped++
				return PutResult{ID: id, Deduped: true}, nil
			}
		}
		same, err := s.chunkMatchesLocked(existing, enc)
		switch {
		case err == nil && same:
			s.stats.ChunksDeduped++
			return PutResult{ID: existing, Deduped: true}, nil
		case err != nil && errors.Is(err, ErrUnavailable):
			// The mapped chunk was lost to corruption. Re-logging the model
			// is the natural repair, so accept the re-put: drop the dead
			// mapping and fall through to store a fresh chunk.
			delete(s.columns, key)
		case err != nil:
			return PutResult{}, err
		case replace:
			// Caller asked to supersede the old payload (a grown open
			// block): drop the mapping and store the new chunk below.
			delete(s.columns, key)
		default:
			return PutResult{}, fmt.Errorf("colstore: column %s already stored with different content", key)
		}
	}
	if !s.cfg.DisableExactDedup {
		if id, ok := s.hashes[h]; ok {
			s.columns[key] = id
			s.stats.ChunksDeduped++
			return PutResult{ID: id, Deduped: true}, nil
		}
	}

	// Re-validate the prepared delta now that the index is locked: the
	// parent mapping must still name the same chunk (Compact remaps ids)
	// and the base must still be readable.
	if spec != nil {
		if id, ok := s.columns[spec.parent]; !ok || id != spec.base {
			spec = nil
		} else if _, bad := s.lostChunks[spec.base]; bad {
			spec = nil
		} else if bp, ok := s.parts[spec.base.Partition]; !ok || bp.lost {
			spec = nil
		}
	}

	p, coLocated := s.pickPartition(sig)
	// A delta chunk's base must live strictly earlier in partition order
	// (earlier partition, or earlier index of the same one — appends
	// guarantee the latter), so recursive page-in resolves bases by walking
	// ids downward and can never cycle or deadlock. A parent logged into a
	// later partition is rare; store full rather than reorder partitions.
	if spec != nil && p.id < spec.base.Partition {
		spec = nil
	}
	c := &chunk{enc: enc, count: len(vals), q: q}
	residentBytes := int64(len(enc))
	if spec != nil {
		c.delta = spec.residual
		c.base = spec.base
		c.depth = spec.depth
		c.fullCRC = spec.fullCRC
		residentBytes += int64(len(spec.residual))
	}
	p.chunks = append(p.chunks, c)
	p.bytes += residentBytes
	p.dirty = true
	s.memBytes += residentBytes
	if p.bytes >= s.cfg.PartitionTargetBytes {
		p.sealed = true
		if s.current == p.id {
			s.current = -1
		}
	}
	id := ChunkID{Partition: p.id, Index: len(p.chunks) - 1}
	s.columns[key] = id
	s.zones[id] = zn
	if !s.cfg.DisableExactDedup {
		s.hashes[h] = id
	}
	if sig != nil {
		s.lsh.Insert(s.nextSig, sig)
		s.sigPart[s.nextSig] = p.id
		s.nextSig++
	}
	s.stats.ChunksStored++
	s.stats.StoredBytes += int64(len(enc))
	res := PutResult{ID: id, CoLocated: coLocated, EncodedBytes: int64(len(enc))}
	if spec != nil {
		s.deltas[id] = deltaRef{Base: spec.base, Depth: spec.depth}
		s.stats.DeltaChunks++
		s.stats.DeltaBytes += int64(len(spec.residual))
		res.Delta = true
		res.Depth = spec.depth
	}
	s.touchLocked(p.id)
	if err := s.evictIfNeededLocked(); err != nil {
		return PutResult{}, err
	}
	return res, nil
}

// prepareDelta builds a deltaSpec for storing key's chunk as a residual
// against the parent column's chunk, or nil when any precondition fails
// (the caller then stores full). Runs without locks held: the base chunk
// is paged in via the concurrent read path, decoded, and similarity-probed
// here so the index lock only pays for a map re-check. sig is the new
// chunk's MinHash signature when the put path already computed one.
func (s *Store) prepareDelta(parent ColumnKey, vals []float32, enc []byte, sig []uint64) *deltaSpec {
	if s.cfg.DeltaMaxDepth <= 0 {
		return nil
	}
	s.mu.Lock()
	baseID, ok := s.columns[parent]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	bc, err := s.chunkRef(baseID)
	if err != nil || len(bc.enc) == 0 {
		return nil
	}
	if bc.depth+1 > s.cfg.DeltaMaxDepth {
		return nil // chain bound: this generation restarts full
	}
	// Similarity gate: delta-encode only when the two generations' value
	// distributions actually overlap (MinHash estimate of Jaccard >= tau),
	// otherwise the residual is as large and as incompressible as the
	// payload itself and the chain read amplification buys nothing.
	baseVals, err := bc.q.Decode(grabF32(bc.count), bc.enc, bc.count)
	if err != nil {
		return nil
	}
	baseSig := s.hasher.SignFloats(baseVals, s.cfg.MinHashBucket)
	releaseF32(baseVals)
	if sig == nil {
		sig = s.hasher.SignFloats(vals, s.cfg.MinHashBucket)
	}
	if minhash.EstimateJaccard(sig, baseSig) < s.cfg.SimilarityThreshold {
		return nil
	}
	return &deltaSpec{
		parent:   parent,
		base:     baseID,
		depth:    bc.depth + 1,
		residual: xorEnc(enc, bc.enc),
		fullCRC:  crc32.Checksum(enc, castagnoli),
	}
}

// xorEnc XORs the common prefix of a and b and copies a's tail verbatim —
// the self-inverse residual transform: xorEnc(xorEnc(a, b), b) == a for
// any lengths. The result always has len(a).
func xorEnc(a, b []byte) []byte {
	out := make([]byte, len(a))
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		out[i] = a[i] ^ b[i]
	}
	copy(out[n:], a[n:])
	return out
}

// resolveDeltaChunks reconstructs the full payload of every delta chunk in
// a freshly parsed partition. Same-partition bases are served from the
// already-resolved prefix (the put path guarantees base index < chunk
// index); cross-partition bases — always in a strictly earlier partition —
// go through lookup, which the two page-in paths bind to their respective
// locking discipline. Returns the reconstructed bytes added (for memory
// accounting) and whether any chunk stayed unresolved because its base is
// unavailable (lost-but-healable; the caller marks those chunks lost and
// installs the rest). Reconstruction is verified against the chunk's
// stored CRC32-C, so a wrong base version or corrupt residual surfaces as
// a hard error, never as silently wrong values.
func resolveDeltaChunks(pid int64, chunks []*chunk, lookup func(ChunkID) (*chunk, error)) (added int64, lost bool, err error) {
	for i, c := range chunks {
		if !c.isDelta() || c.enc != nil {
			continue
		}
		var bc *chunk
		switch {
		case c.base.Partition == pid:
			if c.base.Index < 0 || c.base.Index >= i {
				return added, lost, fmt.Errorf("chunk %d delta base %d/%d not earlier in partition", i, c.base.Partition, c.base.Index)
			}
			bc = chunks[c.base.Index]
			if bc.enc == nil {
				lost = true // base itself unresolved: the chain is down together
				continue
			}
		case c.base.Partition > pid:
			return added, lost, fmt.Errorf("chunk %d delta base %d/%d in later partition", i, c.base.Partition, c.base.Index)
		default:
			var lerr error
			bc, lerr = lookup(c.base)
			if errors.Is(lerr, ErrUnavailable) {
				lost = true
				continue
			}
			if lerr != nil {
				return added, lost, fmt.Errorf("chunk %d delta base %d/%d: %w", i, c.base.Partition, c.base.Index, lerr)
			}
			if bc.enc == nil {
				lost = true // base resident but itself unreconstructed
				continue
			}
		}
		enc := xorEnc(c.delta, bc.enc)
		if got := crc32.Checksum(enc, castagnoli); got != c.fullCRC {
			return added, lost, fmt.Errorf("chunk %d delta reconstruction checksum mismatch: want %08x, got %08x", i, c.fullCRC, got)
		}
		c.enc = enc
		added += int64(len(enc))
	}
	return added, lost, nil
}

// markUnresolvedLostLocked registers every still-unresolved delta chunk of
// a partition as lost (base missing or quarantined — lost-but-healable,
// not corrupt: the partition file itself is intact and its resolved chunks
// stay readable). Caller holds mu.
func (s *Store) markUnresolvedLostLocked(pid int64, chunks []*chunk) {
	for i, c := range chunks {
		if c.isDelta() && c.enc == nil {
			s.lostChunks[ChunkID{Partition: pid, Index: i}] = struct{}{}
		}
	}
}

// DeltaDepth returns the delta-chain depth of a stored column (0 = stored
// full or not stored). Resident metadata only — no page-in.
func (s *Store) DeltaDepth(key ColumnKey) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.columns[key]
	if !ok {
		return 0
	}
	return s.deltas[id].Depth
}

// MaxDeltaDepth returns the deepest delta chain backing any column of one
// intermediate — the read-amplification factor the cost model charges a
// cold READ of it. Resident metadata only — no page-in.
func (s *Store) MaxDeltaDepth(model, interm string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	maxDepth := 0
	for k, id := range s.columns {
		if k.Model != model || k.Intermediate != interm {
			continue
		}
		if d, ok := s.deltas[id]; ok && d.Depth > maxDepth {
			maxDepth = d.Depth
		}
	}
	return maxDepth
}

// chunkMatchesLocked reports whether the stored chunk's encoded payload
// equals enc (used for idempotent re-puts when exact dedup is disabled or
// the hash table was not restored after reopen).
func (s *Store) chunkMatchesLocked(id ChunkID, enc []byte) (bool, error) {
	if _, bad := s.lostChunks[id]; bad {
		return false, fmt.Errorf("colstore: chunk %d/%d: %w", id.Partition, id.Index, ErrUnavailable)
	}
	p, err := s.loadPartitionLocked(id.Partition)
	if err != nil {
		return false, err
	}
	if id.Index < 0 || id.Index >= len(p.chunks) {
		return false, fmt.Errorf("colstore: chunk %d/%d out of range", id.Partition, id.Index)
	}
	return bytesEqual(p.chunks[id.Index].enc, enc), nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func contentHash(enc []byte, q *quant.Quantizer) [32]byte {
	hsh := sha256.New()
	meta, _ := q.MarshalBinary()
	hsh.Write(meta)
	hsh.Write(enc)
	var out [32]byte
	copy(out[:], hsh.Sum(nil))
	return out
}

// pickPartition chooses (or creates) the partition a new chunk joins. sig
// is the chunk's MinHash signature, pre-computed outside the lock (nil when
// approximate dedup is off).
func (s *Store) pickPartition(sig []uint64) (p *partition, coLocated bool) {
	switch s.cfg.Mode {
	case ModeSimilarity:
		if sig != nil {
			if sigID, _, ok := s.lsh.QueryBest(sig, s.cfg.SimilarityThreshold); ok {
				pid := s.sigPart[sigID]
				if cand, resident := s.parts[pid]; resident && !cand.sealed && !cand.onDisk && cand.chunks != nil {
					return cand, true
				}
			}
		}
		return s.openArrivalPartition(), false
	case ModeScatter:
		if len(s.scatter) < s.cfg.ScatterWays {
			p := s.newPartition()
			s.scatter = append(s.scatter, p.id)
			return p, false
		}
		for range s.scatter {
			pid := s.scatter[s.scatterPos%len(s.scatter)]
			s.scatterPos++
			if cand, ok := s.parts[pid]; ok && !cand.sealed && !cand.onDisk {
				return cand, false
			}
			// Replace a sealed/evicted ring slot with a fresh partition.
			np := s.newPartition()
			s.scatter[(s.scatterPos-1)%len(s.scatter)] = np.id
			return np, false
		}
		return s.newPartition(), false
	default: // ModeArrival
		return s.openArrivalPartition(), false
	}
}

func (s *Store) openArrivalPartition() *partition {
	if s.current >= 0 {
		if p, ok := s.parts[s.current]; ok && !p.sealed && !p.onDisk {
			return p
		}
	}
	p := s.newPartition()
	s.current = p.id
	return p
}

func (s *Store) newPartition() *partition {
	p := &partition{id: s.nextPart, dirty: true}
	s.nextPart++
	s.parts[p.id] = p
	s.stats.Partitions++
	s.lru = append(s.lru, p.id)
	return p
}

// f32Pool recycles float32 scratch slices (zone reconstruction, callers of
// the *Into read APIs). Same ownership rule as the byte pools: hold only
// for the duration of one call.
var f32Pool sync.Pool

func grabF32(n int) []float32 {
	if p, ok := f32Pool.Get().(*[]float32); ok && cap(*p) >= n {
		return (*p)[:0]
	}
	return make([]float32, 0, n)
}

func releaseF32(b []float32) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	f32Pool.Put(&b)
}

// GetColumn reads back the reconstructed values of a stored column chunk.
func (s *Store) GetColumn(key ColumnKey) ([]float32, error) {
	return s.GetColumnInto(nil, key)
}

// GetColumnInto is GetColumn appending into dst — the allocation-free form
// for callers that reuse a decode buffer across chunks.
func (s *Store) GetColumnInto(dst []float32, key ColumnKey) ([]float32, error) {
	s.mu.Lock()
	id, ok := s.columns[key]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("colstore: column %s: %w", key, ErrNotStored)
	}
	return s.readChunkInto(dst, id)
}

// Has reports whether the column chunk is stored.
func (s *Store) Has(key ColumnKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.columns[key]
	return ok
}

// Lookup returns the chunk id for a stored column.
func (s *Store) Lookup(key ColumnKey) (ChunkID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.columns[key]
	return id, ok
}

// GetChunk reads a chunk by physical id.
func (s *Store) GetChunk(id ChunkID) ([]float32, error) {
	return s.readChunkInto(nil, id)
}

// GetChunkInto is GetChunk appending into dst (see GetColumnInto).
func (s *Store) GetChunkInto(dst []float32, id ChunkID) ([]float32, error) {
	return s.readChunkInto(dst, id)
}

// readChunkInto fetches the (immutable) chunk for id — paging its
// partition in from disk if evicted — and decodes it into dst outside the
// index lock, so concurrent readers of different chunks decode in
// parallel. Decode presizes dst from the chunk's value count, so a fresh
// or pooled dst costs at most one allocation.
func (s *Store) readChunkInto(dst []float32, id ChunkID) ([]float32, error) {
	t0 := time.Now()
	c, err := s.chunkRef(id)
	if err != nil {
		return nil, err
	}
	out, err := c.q.Decode(dst, c.enc, c.count)
	if err != nil {
		return nil, fmt.Errorf("colstore: decode chunk %d/%d: %w", id.Partition, id.Index, err)
	}
	s.om.chunkReadSeconds.ObserveSince(t0)
	return out, nil
}

// chunkRef resolves id to its in-memory chunk, loading the partition from
// disk if needed. The returned chunk is immutable.
func (s *Store) chunkRef(id ChunkID) (*chunk, error) {
	s.mu.Lock()
	p, ok := s.parts[id.Partition]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("colstore: unknown partition %d: %w", id.Partition, ErrUnavailable)
	}
	if p.lost {
		s.mu.Unlock()
		return nil, fmt.Errorf("colstore: partition %d: %w", id.Partition, ErrUnavailable)
	}
	if _, bad := s.lostChunks[id]; bad {
		s.mu.Unlock()
		return nil, fmt.Errorf("colstore: chunk %d/%d: %w", id.Partition, id.Index, ErrUnavailable)
	}
	if p.chunks != nil {
		c, err := chunkAtLocked(p, id)
		s.touchLocked(id.Partition)
		s.mu.Unlock()
		return c, err
	}
	s.mu.Unlock()

	// Cold partition: page it in under its load lock so N concurrent
	// readers decompress it once. mu is re-acquired underneath loadMu
	// (the allowed order); the state is re-checked after each acquisition.
	p.loadMu.Lock()
	defer p.loadMu.Unlock()
	s.mu.Lock()
	if _, still := s.parts[id.Partition]; !still {
		s.mu.Unlock()
		return nil, fmt.Errorf("colstore: unknown partition %d: %w", id.Partition, ErrUnavailable)
	}
	if p.lost {
		s.mu.Unlock()
		return nil, fmt.Errorf("colstore: partition %d: %w", id.Partition, ErrUnavailable)
	}
	if p.chunks != nil {
		c, err := chunkAtLocked(p, id)
		s.touchLocked(id.Partition)
		s.mu.Unlock()
		return c, err
	}
	path := s.partPathGen(id.Partition, p.gen)
	rawHint := p.raw
	s.mu.Unlock()

	tLoad := time.Now()
	chunks, payload, fileBytes, err := readPartitionFile(path, rawHint)
	s.om.pageInSeconds.ObserveSince(tLoad)
	if err != nil {
		// The file failed its checksum (or vanished): quarantine it so no
		// later read trusts it, and tell the caller the chunk is
		// recoverable-by-rerun rather than fatally gone.
		s.mu.Lock()
		s.quarantineLocked(p, err)
		s.mu.Unlock()
		return nil, fmt.Errorf("colstore: read partition %d: %v: %w", id.Partition, err, ErrUnavailable)
	}

	// Reconstruct delta generations before the partition becomes visible.
	// Bases live strictly earlier in partition order, so the recursive
	// page-in acquires loadMu locks in strictly decreasing id order — no
	// deadlock, no cycle — while this partition's loadMu is held.
	added, deltaLost, derr := resolveDeltaChunks(id.Partition, chunks, func(bid ChunkID) (*chunk, error) {
		return s.chunkRef(bid)
	})
	if derr != nil {
		// A failed reconstruction (wrong base generation, corrupt residual)
		// is indistinguishable from file corruption: quarantine.
		s.mu.Lock()
		s.quarantineLocked(p, derr)
		s.mu.Unlock()
		return nil, fmt.Errorf("colstore: read partition %d: %v: %w", id.Partition, derr, ErrUnavailable)
	}
	payload += added

	s.mu.Lock()
	defer s.mu.Unlock()
	if deltaLost {
		// One or more bases are gone but this partition's file is intact:
		// keep it, install the resolved chunks, and mark the unresolved
		// ones lost-but-healable (re-logging the version repairs them).
		s.markUnresolvedLostLocked(id.Partition, chunks)
	}
	if p.chunks == nil {
		p.chunks = chunks
		p.bytes = payload
		p.dirty = false
		s.memBytes += payload
		s.stats.DiskReads++
		s.stats.DiskReadBytes += fileBytes
		s.touchLocked(id.Partition)
		if err := s.evictIfNeededLocked(); err != nil {
			return nil, err
		}
		if p.chunks == nil {
			// Pathological budget smaller than one partition: keep it
			// resident anyway for this read.
			p.chunks = chunks
			s.memBytes += payload
		}
	}
	if _, bad := s.lostChunks[id]; bad {
		return nil, fmt.Errorf("colstore: chunk %d/%d: %w", id.Partition, id.Index, ErrUnavailable)
	}
	return chunkAtLocked(p, id)
}

func chunkAtLocked(p *partition, id ChunkID) (*chunk, error) {
	if id.Index < 0 || id.Index >= len(p.chunks) {
		return nil, fmt.Errorf("colstore: chunk %d/%d out of range", id.Partition, id.Index)
	}
	return p.chunks[id.Index], nil
}

// readChunkLocked decodes a chunk while the caller holds mu (used by the
// lock-held walkers: Verify, scans). Prefer readChunk on hot paths.
func (s *Store) readChunkLocked(id ChunkID) ([]float32, error) {
	p, err := s.loadPartitionLocked(id.Partition)
	if err != nil {
		return nil, err
	}
	c, err := chunkAtLocked(p, id)
	if err != nil {
		return nil, err
	}
	out, err := c.q.Decode(make([]float32, 0, c.count), c.enc, c.count)
	if err != nil {
		return nil, fmt.Errorf("colstore: decode chunk %d/%d: %w", id.Partition, id.Index, err)
	}
	return out, nil
}

// flushTask pairs a partition with the chunk snapshot a worker serializes
// and the destination path (resolved under mu, since compaction can bump
// the partition's file generation).
type flushTask struct {
	p      *partition
	chunks []*chunk
	path   string
}

// Flush writes every dirty partition to disk and persists the manifest
// (the store's durability point: a flushed store can be reopened and read
// without re-logging). Partitions are gzip-compressed and written
// concurrently, bounded by Config.Workers. Partitions stay resident until
// evicted by memory pressure. Puts racing a Flush are safe: the worker
// serializes a snapshot, and a partition that grew meanwhile simply stays
// dirty for the next Flush.
func (s *Store) Flush() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.om.flushes.Inc()
	return s.flushDirty()
}

// flushDirty does the Flush work; the caller holds flushMu.
func (s *Store) flushDirty() error {
	s.mu.Lock()
	var tasks []flushTask
	for _, p := range s.parts {
		if p.dirty && len(p.chunks) > 0 && !p.lost {
			p.flushing = true
			tasks = append(tasks, flushTask{p: p, chunks: p.chunks, path: s.partPathGen(p.id, p.gen)})
		}
	}
	workers := s.cfg.Workers
	s.mu.Unlock()

	// Pipeline the flush: partition images are serialized in order on this
	// goroutine (cheap memory writes) while workers gzip-compress and write
	// them, so compressing partition N overlaps serializing partition N+1.
	werr := parallel.Pipeline(len(tasks), workers,
		func(i int) ([]byte, error) {
			return serializePartition(grabBuf(), tasks[i].chunks), nil
		},
		func(i int, img []byte) error {
			err := s.writeSnapshotImage(tasks[i], img)
			releaseBuf(img)
			return err
		})

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range tasks {
		t.p.flushing = false
	}
	if werr != nil {
		return werr
	}
	return s.writeManifestLocked()
}

// writeSnapshot serializes, compresses and writes one partition snapshot,
// then updates the partition's state under mu. Used by the parallel
// Compact workers (Flush pipelines the serialize step separately); the
// caller must have set p.flushing under mu.
func (s *Store) writeSnapshot(t flushTask) error {
	img := serializePartition(grabBuf(), t.chunks)
	err := s.writeSnapshotImage(t, img)
	releaseBuf(img)
	return err
}

// writeSnapshotImage compresses and writes one pre-serialized partition
// image, then updates the partition's state under mu.
func (s *Store) writeSnapshotImage(t flushTask, img []byte) error {
	t0 := time.Now()
	size, fsyncs, err := writeImageFileAt(s.fs, t.path, img, s.codec, s.cfg.CompressionLevel)
	s.om.flushWriteSeconds.ObserveSince(t0)
	s.om.codecRawBytes.Add(int64(len(img)))
	s.om.codecFileBytes.Add(size)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.FsyncCount += fsyncs
	if err != nil {
		return err
	}
	t.p.onDisk = true
	t.p.diskChunks = len(t.chunks)
	t.p.raw = int64(len(img))
	// Only mark clean if no chunks were appended since the snapshot;
	// otherwise the file is a prefix and the next flush rewrites it.
	if len(t.p.chunks) == len(t.chunks) {
		t.p.dirty = false
	}
	s.stats.DiskWrites++
	s.stats.DiskWriteBytes += size
	return nil
}

// DropCache flushes and then releases all in-memory partition payloads,
// forcing subsequent reads to hit disk. Used by read benchmarks.
func (s *Store) DropCache() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	if err := s.flushDirty(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.parts {
		if p.dirty && len(p.chunks) > 0 {
			// A put raced the flush above; write the straggler serially.
			if err := s.writePartitionLocked(p); err != nil {
				return err
			}
		}
		if p.onDisk && p.chunks != nil {
			s.memBytes -= p.bytes
			p.chunks = nil
		}
	}
	s.lru = s.lru[:0]
	return nil
}

// Stats returns a snapshot of activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// NoteRecoveredRead records that a query hit an unavailable chunk and was
// transparently answered by re-running the model (the engine calls this
// from its rerun-fallback path).
func (s *Store) NoteRecoveredRead() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.RecoveredReads++
}

// ManifestGeneration returns the generation number of the last manifest
// written (or restored). Zero means no manifest has ever been written.
func (s *Store) ManifestGeneration() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.generation
}

// DiskBytes returns the total size of partition files on disk. Call Flush
// first for a complete figure.
func (s *Store) DiskBytes() (int64, error) {
	return dirSize(s.dir)
}

// touchLocked moves pid to the most-recently-used end of the LRU list.
func (s *Store) touchLocked(pid int64) {
	for i, id := range s.lru {
		if id == pid {
			copy(s.lru[i:], s.lru[i+1:])
			s.lru[len(s.lru)-1] = pid
			return
		}
	}
	s.lru = append(s.lru, pid)
}

// evictIfNeededLocked writes out and drops LRU partitions until the memory
// budget is met. The partition currently being filled is never evicted,
// and neither is one whose file a Flush/Compact worker owns (flushing).
func (s *Store) evictIfNeededLocked() error {
	skipped := 0
	for s.memBytes > s.cfg.MemBudgetBytes && len(s.lru) > 1 && skipped < len(s.lru) {
		pid := s.lru[0]
		s.lru = s.lru[1:]
		p, ok := s.parts[pid]
		if !ok || p.chunks == nil {
			continue
		}
		if pid == s.current || p.flushing {
			// Keep the open / being-flushed partition resident; re-queue.
			s.lru = append(s.lru, pid)
			skipped++
			if len(s.lru) == 1 {
				break
			}
			continue
		}
		if p.dirty {
			if err := s.writePartitionLocked(p); err != nil {
				return err
			}
		}
		p.sealed = true // evicted partitions never grow again
		s.memBytes -= p.bytes
		p.chunks = nil
		s.stats.Evictions++
	}
	return nil
}
