package colstore

import (
	"bytes"
	"compress/gzip"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"mistique/internal/codec"
	"mistique/internal/quant"
)

// gzipped compresses a raw partition image the way flush does.
func gzipped(t testing.TB, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// validPartitionImage serializes a small two-chunk partition (one FULL, one
// KBIT chunk) exactly as the flush path would.
func validPartitionImage(t testing.TB) []byte {
	t.Helper()
	full := quant.NewFull()
	vals := []float32{0, 1.5, -2.25, 3, 4, 5.5, -6, 7}
	kq, err := quant.FitKBit(vals, 4)
	if err != nil {
		t.Fatal(err)
	}
	chunks := []*chunk{
		{enc: full.Encode(nil, vals), count: len(vals), q: full},
		{enc: kq.Encode(nil, vals), count: len(vals), q: kq},
	}
	var raw bytes.Buffer
	if _, err := writePartitionTo(&raw, chunks); err != nil {
		t.Fatal(err)
	}
	return raw.Bytes()
}

// containerFramed wraps a raw partition image in the v3 on-disk container
// under the given codec (what encodePartitionImage writes for non-gzip
// codecs).
func containerFramed(t testing.TB, c codec.Codec, raw []byte) []byte {
	t.Helper()
	framed, err := encodePartitionImage(nil, raw, c, gzip.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() == codec.IDGzip {
		// encodePartitionImage keeps gzip on the legacy bare framing; force
		// the container so the fuzzer also sees gzip-in-container... except
		// readers never produce it, so frame it by hand like a future binary
		// that containerized gzip would.
		hdr := append([]byte(contMagic), 3, 0, c.ID())
		framed = append(hdr, framed...)
	}
	return framed
}

// validDeltaImage serializes a partition holding a delta-generation chunk
// (image v3): a full base plus a chunk stored as XOR residual against it.
func validDeltaImage(t testing.TB) []byte {
	t.Helper()
	full := quant.NewFull()
	base := []float32{0, 1.5, -2.25, 3, 4, 5.5, -6, 7}
	child := []float32{0, 1.5, -2.25, 3.5, 4, 5.5, -6, 7.25}
	baseEnc := full.Encode(nil, base)
	childEnc := full.Encode(nil, child)
	chunks := []*chunk{
		{enc: baseEnc, count: len(base), q: full},
		{
			count:   len(child),
			q:       full,
			delta:   xorEnc(childEnc, baseEnc),
			base:    ChunkID{Partition: 0, Index: 0},
			depth:   1,
			fullCRC: crc32.Checksum(childEnc, castagnoli),
		},
	}
	var raw bytes.Buffer
	if _, err := writePartitionTo(&raw, chunks); err != nil {
		t.Fatal(err)
	}
	return raw.Bytes()
}

// FuzzPartitionFile feeds arbitrary bytes through the partition read path
// (decompress -> header parse -> chunk decode). A corrupt or truncated file
// must produce an error — never a panic, never a runaway allocation — and
// anything that parses must survive a re-serialize/re-read round trip and
// decode every chunk cleanly.
func FuzzPartitionFile(f *testing.F) {
	raw := validPartitionImage(f)
	valid := gzipped(f, raw)
	f.Add(valid)
	// Truncated gzip stream: the classic crash-mid-flush file.
	f.Add(valid[:len(valid)/2])
	// Truncated partition body under intact compression.
	f.Add(gzipped(f, raw[:len(raw)-3]))
	// Corrupted magic and version.
	badMagic := append([]byte(nil), raw...)
	badMagic[0] = 'X'
	f.Add(gzipped(f, badMagic))
	badVersion := append([]byte(nil), raw...)
	badVersion[4] = 0xff
	f.Add(gzipped(f, badVersion))
	// Header promising a absurd chunk count / blob length.
	lies := append([]byte(nil), raw...)
	lies[6], lies[7], lies[8], lies[9] = 0xff, 0xff, 0xff, 0xff
	f.Add(gzipped(f, lies))
	f.Add([]byte{})
	// v3 container framings: every registered codec, truncated payloads,
	// an unknown codec ID, and a future container version.
	for _, name := range []string{"gzip", "store", "actz"} {
		c, err := codec.ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		framed := containerFramed(f, c, raw)
		f.Add(framed)
		f.Add(framed[:len(framed)/2])
		f.Add(framed[:contHdrLen+1])
	}
	// Image v3 (delta generations): intact, truncated mid-extras, bad
	// flags byte, and a lying base-partition field.
	raw3 := validDeltaImage(f)
	f.Add(gzipped(f, raw3))
	f.Add(gzipped(f, raw3[:len(raw3)-7]))
	badFlags := append([]byte(nil), raw3...)
	badFlags[10] = 0x40 // first chunk's flags byte: neither full nor delta
	f.Add(gzipped(f, badFlags))
	f.Add(containerFramed(f, codec.MustByID(codec.IDActz), raw3))
	unknownID := containerFramed(f, codec.MustByID(codec.IDStore), raw)
	unknownID[6] = 0x7f
	f.Add(unknownID)
	futureVersion := containerFramed(f, codec.MustByID(codec.IDActz), raw)
	futureVersion[4] = 0x09
	f.Add(futureVersion)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "partition_00000000.bin.gz")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		chunks, payload, _, err := readPartitionFile(path, 0)
		if err != nil {
			return // rejected cleanly: that's the contract
		}
		// Whatever parsed must be fully usable: decodable chunks and a
		// stable round trip through the writer.
		var sum int64
		for i, c := range chunks {
			if c.count < 0 || c.count > 1<<20 {
				t.Fatalf("chunk %d parsed with absurd count %d", i, c.count)
			}
			if _, derr := c.q.Decode(make([]float32, 0, c.count), c.enc, c.count); derr != nil {
				continue // short payload for the claimed count: error, not panic
			}
			sum += int64(len(c.enc))
		}
		var raw bytes.Buffer
		if _, werr := writePartitionTo(&raw, chunks); werr != nil {
			t.Fatalf("re-serialize parsed partition: %v", werr)
		}
		again, payload2, rerr := readPartitionFrom(bytes.NewReader(raw.Bytes()))
		if rerr != nil {
			t.Fatalf("re-read serialized partition: %v", rerr)
		}
		if len(again) != len(chunks) || payload2 != payload {
			t.Fatalf("round trip changed shape: %d/%d chunks, %d/%d payload",
				len(again), len(chunks), payload2, payload)
		}
		for i := range again {
			if again[i].count != chunks[i].count || !bytesEqual(again[i].enc, chunks[i].enc) {
				t.Fatalf("round trip changed chunk %d", i)
			}
		}
	})
}

// FuzzColumnRoundTrip drives PutColumn/GetColumn with fuzz-chosen values
// and block shapes: whatever the store accepts it must read back exactly
// (FULL codec), flushed or not.
func FuzzColumnRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2))
	f.Add([]byte{0xff, 0xfe, 0, 0, 1, 1, 1, 1, 9, 9, 9, 9}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, blocks uint8) {
		if len(raw) == 0 || len(raw) > 1<<12 {
			return
		}
		vals := make([]float32, len(raw))
		for i, b := range raw {
			vals[i] = (float32(b) - 127) / 3
		}
		dir := t.TempDir()
		s, err := Open(dir, Config{RowBlockRows: 8})
		if err != nil {
			t.Fatal(err)
		}
		nBlocks := int(blocks%4) + 1
		per := len(vals) / nBlocks
		if per == 0 {
			return
		}
		for b := 0; b < nBlocks; b++ {
			part := vals[b*per : (b+1)*per]
			if _, err := s.PutColumn(key("m", "x", "c", b), part, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := s.DropCache(); err != nil {
			t.Fatal(err)
		}
		for b := 0; b < nBlocks; b++ {
			got, err := s.GetColumn(key("m", "x", "c", b))
			if err != nil {
				t.Fatal(err)
			}
			want := vals[b*per : (b+1)*per]
			if len(got) != len(want) {
				t.Fatalf("block %d: %d values, want %d", b, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("block %d value %d: got %v want %v", b, i, got[i], want[i])
				}
			}
		}
	})
}
