package colstore

import (
	"testing"

	"mistique/internal/quant"
)

// putBlocks stores a column split into blocks of the store's RowBlock size.
func putBlocks(t *testing.T, s *Store, model, interm, col string, vals []float32, q *quant.Quantizer) {
	t.Helper()
	br := s.RowBlockRows()
	for b := 0; b*br < len(vals); b++ {
		lo, hi := b*br, (b+1)*br
		if hi > len(vals) {
			hi = len(vals)
		}
		if _, err := s.PutColumn(key(model, interm, col, b), vals[lo:hi], q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScanColumnFindsMatches(t *testing.T) {
	s := openTest(t, Config{RowBlockRows: 100})
	vals := make([]float32, 350)
	for i := range vals {
		vals[i] = float32(i)
	}
	putBlocks(t, s, "m", "i", "c", vals, nil)

	matches, skipped, err := s.ScanColumn("m", "i", "c", Gt, 340)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 9 {
		t.Fatalf("matches %d, want 9 (341..349)", len(matches))
	}
	if matches[0].Row != 341 || matches[0].Value != 341 {
		t.Fatalf("first match %+v", matches[0])
	}
	// Blocks 0..2 (max 99, 199, 299) cannot match > 340: all skipped.
	if skipped != 3 {
		t.Fatalf("skipped %d blocks, want 3", skipped)
	}
}

func TestScanColumnOps(t *testing.T) {
	s := openTest(t, Config{RowBlockRows: 10})
	vals := []float32{5, 10, 15, 20}
	putBlocks(t, s, "m", "i", "c", vals, nil)
	cases := []struct {
		op    Op
		bound float32
		want  int
	}{
		{Gt, 10, 2},
		{Ge, 10, 3},
		{Lt, 10, 1},
		{Le, 10, 2},
	}
	for _, c := range cases {
		m, _, err := s.ScanColumn("m", "i", "c", c.op, c.bound)
		if err != nil {
			t.Fatal(err)
		}
		if len(m) != c.want {
			t.Errorf("%v %v: %d matches, want %d", c.op, c.bound, len(m), c.want)
		}
	}
	if Gt.String() != ">" || Le.String() != "<=" {
		t.Error("Op strings")
	}
}

func TestScanColumnZoneSoundUnderQuantization(t *testing.T) {
	// Zone maps must describe reconstructed values: a KBIT chunk whose raw
	// max is above the bound but whose reconstruction is below must still
	// be scanned consistently with what GetColumn returns.
	s := openTest(t, Config{RowBlockRows: 64})
	vals := make([]float32, 64)
	for i := range vals {
		vals[i] = float32(i)
	}
	q, err := quant.FitKBit(vals, 3) // coarse: 8 bins
	if err != nil {
		t.Fatal(err)
	}
	putBlocks(t, s, "m", "i", "c", vals, q)
	recon, err := s.GetColumn(key("m", "i", "c", 0))
	if err != nil {
		t.Fatal(err)
	}
	bound := float32(30)
	want := 0
	for _, v := range recon {
		if v > bound {
			want++
		}
	}
	matches, _, err := s.ScanColumn("m", "i", "c", Gt, bound)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != want {
		t.Fatalf("scan found %d, reconstruction has %d above %v", len(matches), want, bound)
	}
}

func TestScanColumnMissing(t *testing.T) {
	s := openTest(t, Config{})
	if _, _, err := s.ScanColumn("m", "i", "nope", Gt, 0); err == nil {
		t.Fatal("missing column scan accepted")
	}
}

func TestScanSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{RowBlockRows: 50})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, 200)
	for i := range vals {
		vals[i] = float32(i)
	}
	putBlocks(t, s, "m", "i", "c", vals, nil)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Config{RowBlockRows: 50})
	if err != nil {
		t.Fatal(err)
	}
	matches, skipped, err := s2.ScanColumn("m", "i", "c", Ge, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 50 || skipped != 3 {
		t.Fatalf("reopened scan: %d matches, %d skipped", len(matches), skipped)
	}
}

func TestGetColumnRange(t *testing.T) {
	s := openTest(t, Config{RowBlockRows: 100})
	vals := make([]float32, 250)
	for i := range vals {
		vals[i] = float32(i)
	}
	putBlocks(t, s, "m", "i", "c", vals, nil)

	got, err := s.GetColumnRange("m", "i", "c", 150, 220)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 70 || got[0] != 150 || got[69] != 219 {
		t.Fatalf("range read: len %d first %v last %v", len(got), got[0], got[len(got)-1])
	}
	// Only blocks 1 and 2 should be touched; block 0 stays cold. Verify by
	// flushing, dropping cache and counting disk reads.
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().DiskReads
	if _, err := s.GetColumnRange("m", "i", "c", 150, 220); err != nil {
		t.Fatal(err)
	}
	reads := s.Stats().DiskReads - before
	if reads > 2 {
		t.Fatalf("range read touched %d partitions, want <= 2", reads)
	}

	// Errors.
	if _, err := s.GetColumnRange("m", "i", "c", -1, 10); err == nil {
		t.Fatal("negative from accepted")
	}
	if _, err := s.GetColumnRange("m", "i", "c", 10, 5); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := s.GetColumnRange("m", "i", "c", 200, 400); err == nil {
		t.Fatal("out-of-bounds range accepted")
	}
	if _, err := s.GetColumnRange("m", "i", "ghost", 0, 10); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestZoneMapsDedupShareZones(t *testing.T) {
	s := openTest(t, Config{RowBlockRows: 100})
	vals := randCol(100, 1)
	putBlocks(t, s, "m1", "i", "c", vals, nil)
	putBlocks(t, s, "m2", "i", "c", vals, nil) // dedups to the same chunk
	// Scans on the deduped logical column still work.
	m1, _, err := s.ScanColumn("m1", "i", "c", Ge, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := s.ScanColumn("m2", "i", "c", Ge, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != len(m2) || len(m1) != 100 {
		t.Fatalf("dedup scan: %d vs %d", len(m1), len(m2))
	}
}

func BenchmarkScanColumnWithZoneSkips(b *testing.B) {
	s, err := Open(b.TempDir(), Config{RowBlockRows: 1024})
	if err != nil {
		b.Fatal(err)
	}
	for blk := 0; blk < 32; blk++ {
		vals := make([]float32, 1024)
		for i := range vals {
			vals[i] = float32(blk*1024 + i)
		}
		if _, err := s.PutColumn(key("m", "i", "c", blk), vals, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.ScanColumn("m", "i", "c", Gt, 31*1024); err != nil {
			b.Fatal(err)
		}
	}
}
