package colstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestDeleteModelAndCompact(t *testing.T) {
	s := openTest(t, Config{})
	// Two models; m2 shares one column's data with m1 (dedup).
	shared := randCol(500, 1)
	own1 := randCol(500, 2)
	own2 := randCol(500, 3)
	s.PutColumn(key("m1", "i", "shared", 0), shared, nil)
	s.PutColumn(key("m1", "i", "own", 0), own1, nil)
	s.PutColumn(key("m2", "i", "shared", 0), shared, nil) // dedups to m1's chunk
	s.PutColumn(key("m2", "i", "own", 0), own2, nil)

	if removed := s.DeleteModel("m1"); removed != 2 {
		t.Fatalf("removed %d, want 2", removed)
	}
	if s.DeleteModel("ghost") != 0 {
		t.Fatal("phantom delete")
	}
	// m1's columns are gone; m2's remain readable, including the shared one.
	if s.Has(key("m1", "i", "own", 0)) {
		t.Fatal("deleted column still present")
	}
	got, err := s.GetColumn(key("m2", "i", "shared", 0))
	if err != nil || got[0] != shared[0] {
		t.Fatalf("shared column unreadable after delete: %v", err)
	}

	// Only m1's exclusive chunk is garbage (2000 bytes).
	garbage, err := s.GarbageBytes()
	if err != nil {
		t.Fatal(err)
	}
	if garbage != 2000 {
		t.Fatalf("garbage %d bytes, want 2000", garbage)
	}

	dropped, reclaimed, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 || reclaimed != 2000 {
		t.Fatalf("compact dropped %d / %d bytes", dropped, reclaimed)
	}
	// Everything still readable after remapping.
	for _, k := range []ColumnKey{key("m2", "i", "shared", 0), key("m2", "i", "own", 0)} {
		if _, err := s.GetColumn(k); err != nil {
			t.Fatalf("post-compact read %v: %v", k, err)
		}
	}
	// Idempotent: nothing left to reclaim.
	if d2, r2, err := s.Compact(); err != nil || d2 != 0 || r2 != 0 {
		t.Fatalf("second compact: %d/%d/%v", d2, r2, err)
	}
}

func TestCompactOnDiskPartitions(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{PartitionTargetBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.PutColumn(key("m1", "i", fmt.Sprintf("c%d", i), 0), randCol(512, int64(i)), nil)
		s.PutColumn(key("m2", "i", fmt.Sprintf("c%d", i), 0), randCol(512, int64(100+i)), nil)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before, _ := s.DiskBytes()
	s.DeleteModel("m1")
	if _, _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	after, _ := s.DiskBytes()
	if after >= before {
		t.Fatalf("compaction did not shrink disk: %d -> %d", before, after)
	}
	// Survives reopen.
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s2.GetColumn(key("m2", "i", fmt.Sprintf("c%d", i), 0)); err != nil {
			t.Fatalf("reopened read after compact: %v", err)
		}
		if s2.Has(key("m1", "i", fmt.Sprintf("c%d", i), 0)) {
			t.Fatal("deleted column visible after reopen")
		}
	}
}

func TestDeletePreventsDedupResurrection(t *testing.T) {
	s := openTest(t, Config{})
	vals := randCol(100, 9)
	s.PutColumn(key("m1", "i", "c", 0), vals, nil)
	s.DeleteModel("m1")
	// Re-putting identical data must NOT dedup against the garbage chunk.
	res, err := s.PutColumn(key("m2", "i", "c", 0), vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deduped {
		t.Fatal("dedup resurrected a garbage chunk")
	}
	if got, err := s.GetColumn(key("m2", "i", "c", 0)); err != nil || got[0] != vals[0] {
		t.Fatalf("re-put read: %v", err)
	}
}

func TestCompactEmptyPartitionRemoved(t *testing.T) {
	s := openTest(t, Config{PartitionTargetBytes: 1 << 10})
	s.PutColumn(key("m1", "i", "c", 0), randCol(512, 1), nil) // fills one partition
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.DeleteModel("m1")
	dropped, _, err := s.Compact()
	if err != nil || dropped != 1 {
		t.Fatalf("compact: %d, %v", dropped, err)
	}
	if st := s.Stats(); st.Partitions != 0 {
		t.Fatalf("empty partition survived: %+v", st.Partitions)
	}
}

func TestVerifyHealthyStore(t *testing.T) {
	s := openTest(t, Config{})
	for i := 0; i < 5; i++ {
		s.PutColumn(key("m", "i", fmt.Sprintf("c%d", i), 0), randCol(200, int64(i)), nil)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 0 {
		t.Fatalf("healthy store reported problems: %v", rep.Problems)
	}
	if rep.Chunks != 5 || rep.Columns != 5 || rep.GarbageChunks != 0 {
		t.Fatalf("report %+v", rep)
	}
}

func TestVerifyFindsGarbageAndCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{PartitionTargetBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	s.PutColumn(key("m1", "i", "a", 0), randCol(400, 1), nil)
	s.PutColumn(key("m2", "i", "b", 0), randCol(400, 2), nil)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.DeleteModel("m1")
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.GarbageChunks != 1 {
		t.Fatalf("garbage %d, want 1", rep.GarbageChunks)
	}

	// Corrupt one partition file on disk and drop caches: Verify reports it.
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "partition_*.bin.gz"))
	if len(matches) == 0 {
		t.Fatal("no partitions on disk")
	}
	if err := os.Truncate(matches[0], 3); err != nil {
		t.Fatal(err)
	}
	rep, err = s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) == 0 {
		t.Fatal("corruption not reported")
	}
}

// TestPutColumnReplaceGrowsOpenBlock covers the streaming engine's
// open-block lifecycle: the same key is re-put with ever longer prefixes
// of a filling row block, each swap replacing the previous chunk without
// the key ever going unresolvable, and the displaced chunks are reclaimed
// by Compact.
func TestPutColumnReplaceGrowsOpenBlock(t *testing.T) {
	s := openTest(t, Config{})
	k := key("live", "acts", "v", 0)
	full := randCol(512, 7)

	for _, n := range []int{100, 100, 256, 512} {
		if _, err := s.PutColumnReplace(k, full[:n], nil); err != nil {
			t.Fatalf("replace with %d rows: %v", n, err)
		}
		got, err := s.GetColumn(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("read %d rows after replace, want %d", len(got), n)
		}
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("row %d = %v, want %v", i, got[i], full[i])
			}
		}
	}

	// Plain PutColumn still rejects a conflicting re-put.
	if _, err := s.PutColumn(k, full[:8], nil); err == nil {
		t.Fatal("conflicting PutColumn accepted")
	}

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetColumn(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(full) {
		t.Fatalf("post-compact read %d rows, want %d", len(got), len(full))
	}
}
