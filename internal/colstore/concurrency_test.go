package colstore

import (
	"fmt"
	"sync"
	"testing"
)

// The store-level half of the concurrency suite (the engine-level half is
// mistique's TestConcurrentEngine): hammer one Store from many goroutines
// mixing puts, reads, flushes, compactions and model deletes, under a
// memory budget small enough that eviction and cold page-ins race the
// writers too. Run with -race.

// stressVal is the deterministic value generator: every (goroutine, iter,
// row) triple maps to a distinct value so chunks never dedup by accident
// and read-back mismatches are attributable.
func stressVal(g, i, r int) float32 {
	return float32(g*100000+i*1000+r) / 16
}

func stressCol(g, i, n int) []float32 {
	out := make([]float32, n)
	for r := range out {
		out[r] = stressVal(g, i, r)
	}
	return out
}

func TestConcurrentStore(t *testing.T) {
	const (
		writers = 4
		iters   = 24
		rows    = 64
	)
	s := openTest(t, Config{
		RowBlockRows: rows,
		// Tiny pool and partitions: force seals, evictions and page-ins
		// while puts, flushes and compactions are in flight.
		MemBudgetBytes:       16 << 10,
		PartitionTargetBytes: 4 << 10,
		Mode:                 ModeSimilarity,
		Workers:              4,
	})

	var wg sync.WaitGroup
	// Writers: put a distinct column, then immediately read it back.
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := key(fmt.Sprintf("m%d", g), "x", fmt.Sprintf("c%d", i), 0)
				vals := stressCol(g, i, rows)
				if _, err := s.PutColumn(k, vals, nil); err != nil {
					t.Errorf("put %s: %v", k, err)
					return
				}
				got, err := s.GetColumn(k)
				if err != nil {
					t.Errorf("get %s: %v", k, err)
					return
				}
				for r := range vals {
					if got[r] != vals[r] {
						t.Errorf("%s row %d: got %v want %v", k, r, got[r], vals[r])
						return
					}
				}
			}
		}(g)
	}
	// Re-readers: walk everything already written by writer 0.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters*2; i++ {
			k := key("m0", "x", fmt.Sprintf("c%d", i%iters), 0)
			got, err := s.GetColumn(k)
			if err != nil {
				continue // not written yet
			}
			want := stressCol(0, i%iters, rows)
			for r := range want {
				if got[r] != want[r] {
					t.Errorf("reread %s row %d: got %v want %v", k, r, got[r], want[r])
					return
				}
			}
		}
	}()
	// Dedup prober: presents the same payload under many keys; the
	// check-and-insert must stay atomic so exactly one copy is stored.
	wg.Add(1)
	go func() {
		defer wg.Done()
		shared := stressCol(99, 0, rows)
		for i := 0; i < iters; i++ {
			k := key("dedup", "x", fmt.Sprintf("c%d", i), 0)
			if _, err := s.PutColumn(k, shared, nil); err != nil {
				t.Errorf("dedup put: %v", err)
				return
			}
		}
	}()
	// Flusher and compactor: walk every partition while writers append.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			if err := s.Flush(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
		}
	}()
	// Deleter: churn a scratch model and reclaim its space.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			k := key("scratch", "x", fmt.Sprintf("c%d", i), 0)
			if _, err := s.PutColumn(k, stressCol(50, i, rows), nil); err != nil {
				t.Errorf("scratch put: %v", err)
				return
			}
			s.DeleteModel("scratch")
			if _, _, err := s.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Everything the writers stored must still read back exactly, the
	// dedup probe must have stored one physical chunk, and the store must
	// pass its own fsck.
	for g := 0; g < writers; g++ {
		for i := 0; i < iters; i++ {
			k := key(fmt.Sprintf("m%d", g), "x", fmt.Sprintf("c%d", i), 0)
			got, err := s.GetColumn(k)
			if err != nil {
				t.Fatalf("final get %s: %v", k, err)
			}
			for r := range got {
				if got[r] != stressVal(g, i, r) {
					t.Fatalf("final %s row %d: got %v want %v", k, r, got[r], stressVal(g, i, r))
				}
			}
		}
	}
	ids := make(map[ChunkID]bool)
	for i := 0; i < iters; i++ {
		id, ok := s.Lookup(key("dedup", "x", fmt.Sprintf("c%d", i), 0))
		if !ok {
			t.Fatalf("dedup key %d missing", i)
		}
		ids[id] = true
	}
	if len(ids) != 1 {
		t.Fatalf("dedup stored %d physical chunks, want 1", len(ids))
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) > 0 {
		t.Fatalf("verify: %v", rep.Problems)
	}
}

// TestConcurrentFlushCompact has Flush, Compact and DropCache contend for
// the same partitions while a writer keeps dirtying them: the flushMu
// serialization plus snapshot writes must never lose data.
func TestConcurrentFlushCompact(t *testing.T) {
	const rows = 64
	s := openTest(t, Config{
		RowBlockRows:         rows,
		PartitionTargetBytes: 2 << 10,
		Mode:                 ModeArrival,
		Workers:              4,
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := key("m", "x", fmt.Sprintf("c%d", i), 0)
			if _, err := s.PutColumn(k, stressCol(7, i, rows), nil); err != nil {
				t.Errorf("put: %v", err)
				return
			}
			if i%8 == 7 {
				s.DeleteModel("nothing") // no-op delete in the mix
			}
		}
	}()
	for i := 0; i < 6; i++ {
		if err := s.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if _, _, err := s.Compact(); err != nil {
			t.Fatalf("compact: %v", err)
		}
		if err := s.DropCache(); err != nil {
			t.Fatalf("drop cache: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) > 0 {
		t.Fatalf("verify: %v", rep.Problems)
	}
}
