package colstore

import (
	"fmt"
	"math"
)

// This file implements the store's index support (Sec. 6 / Sec. 8.3 of the
// paper): a primary index by row position (RowBlocks are row-aligned, so a
// row range maps directly to a block range) and per-chunk zone maps
// (min/max of the reconstructed values) that let predicate scans skip
// chunks — "find examples with neuron-50 activation > 0.5" without reading
// every partition.

// zone is the min/max summary of one chunk's reconstructed values.
type zone struct {
	min, max float32
	count    int
}

// zoneOf computes the zone map for a chunk's raw values.
func zoneOf(vals []float32) zone {
	z := zone{min: float32(math.Inf(1)), max: float32(math.Inf(-1)), count: len(vals)}
	for _, v := range vals {
		if v < z.min {
			z.min = v
		}
		if v > z.max {
			z.max = v
		}
	}
	return z
}

// Op is a comparison predicate for zone-map scans.
type Op int

const (
	// Gt selects values strictly greater than the bound.
	Gt Op = iota
	// Ge selects values greater than or equal to the bound.
	Ge
	// Lt selects values strictly less than the bound.
	Lt
	// Le selects values less than or equal to the bound.
	Le
)

func (o Op) String() string {
	switch o {
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Lt:
		return "<"
	}
	return "<="
}

func (o Op) matches(v, bound float32) bool {
	switch o {
	case Gt:
		return v > bound
	case Ge:
		return v >= bound
	case Lt:
		return v < bound
	default:
		return v <= bound
	}
}

// canSkip reports whether no value in the zone can match the predicate.
func (z zone) canSkip(op Op, bound float32) bool {
	switch op {
	case Gt:
		return z.max <= bound
	case Ge:
		return z.max < bound
	case Lt:
		return z.min >= bound
	default:
		return z.min > bound
	}
}

// ScanMatch is one matching value from a predicate scan.
type ScanMatch struct {
	// Row is the global row offset (block * RowBlockRows + offset in block).
	Row int
	// Value is the reconstructed value at that row.
	Value float32
}

// ScanColumn evaluates `value op bound` over all blocks of a logical
// column, using zone maps to skip chunks that cannot match. Returns the
// matches in row order and the number of chunks skipped (for tests and
// EXPLAIN-style diagnostics).
func (s *Store) ScanColumn(model, interm, column string, op Op, bound float32) (matches []ScanMatch, skipped int, err error) {
	blockRows := s.cfg.RowBlockRows
	// Resolve the block chain and apply zone pruning under the index lock;
	// chunk reads and value comparisons run outside it.
	type blockRef struct {
		block int
		id    ChunkID
	}
	var refs []blockRef
	s.mu.Lock()
	for b := 0; ; b++ {
		key := ColumnKey{Model: model, Intermediate: interm, Column: column, Block: b}
		id, ok := s.columns[key]
		if !ok {
			if b == 0 {
				s.mu.Unlock()
				return nil, 0, fmt.Errorf("colstore: column %s: %w", key, ErrNotStored)
			}
			break
		}
		if z, ok := s.zones[id]; ok && z.canSkip(op, bound) {
			skipped++
			continue
		}
		refs = append(refs, blockRef{block: b, id: id})
	}
	s.mu.Unlock()

	for _, ref := range refs {
		vals, err := s.readChunkInto(nil, ref.id)
		if err != nil {
			return nil, skipped, err
		}
		base := ref.block * blockRows
		for i, v := range vals {
			if op.matches(v, bound) {
				matches = append(matches, ScanMatch{Row: base + i, Value: v})
			}
		}
	}
	return matches, skipped, nil
}

// GetColumnRange reads rows [from, to) of a logical column, touching only
// the covering RowBlocks (the primary index: blocks are row-aligned).
func (s *Store) GetColumnRange(model, interm, column string, from, to int) ([]float32, error) {
	if from < 0 || to < from {
		return nil, fmt.Errorf("colstore: bad row range [%d, %d)", from, to)
	}
	blockRows := s.cfg.RowBlockRows
	firstBlock := from / blockRows
	// Resolve the covering block ids under the index lock, then decode
	// outside it.
	var ids []ChunkID
	s.mu.Lock()
	for b := firstBlock; b*blockRows < to; b++ {
		key := ColumnKey{Model: model, Intermediate: interm, Column: column, Block: b}
		id, ok := s.columns[key]
		if !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("colstore: column %s (range [%d,%d)): %w", key, from, to, ErrNotStored)
		}
		ids = append(ids, id)
	}
	s.mu.Unlock()
	out := make([]float32, 0, to-from)
	for bi, id := range ids {
		b := firstBlock + bi
		vals, err := s.readChunkInto(nil, id)
		if err != nil {
			return nil, err
		}
		base := b * blockRows
		lo := maxI(from-base, 0)
		hi := minI(to-base, len(vals))
		if lo > len(vals) {
			return nil, fmt.Errorf("colstore: row range [%d,%d) beyond column %s.%s.%s", from, to, model, interm, column)
		}
		out = append(out, vals[lo:hi]...)
		if len(vals) < blockRows {
			break
		}
	}
	if len(out) < to-from {
		return nil, fmt.Errorf("colstore: column %s.%s.%s has too few rows for [%d,%d)", model, interm, column, from, to)
	}
	return out, nil
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
