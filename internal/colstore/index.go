package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// This file implements the store's index support (Sec. 6 / Sec. 8.3 of the
// paper): a primary index by row position (RowBlocks are row-aligned, so a
// row range maps directly to a block range) and per-chunk zone maps
// (min/max of the reconstructed values) that let predicate scans skip
// chunks — "find examples with neuron-50 activation > 0.5" without reading
// every partition.

// zone is the min/max summary of one chunk's reconstructed values.
type zone struct {
	min, max float32
	count    int
}

// zoneOf computes the zone map for a chunk's raw values.
func zoneOf(vals []float32) zone {
	z := zone{min: float32(math.Inf(1)), max: float32(math.Inf(-1)), count: len(vals)}
	for _, v := range vals {
		if v < z.min {
			z.min = v
		}
		if v > z.max {
			z.max = v
		}
	}
	return z
}

// Op is a comparison predicate for zone-map scans.
type Op int

const (
	// Gt selects values strictly greater than the bound.
	Gt Op = iota
	// Ge selects values greater than or equal to the bound.
	Ge
	// Lt selects values strictly less than the bound.
	Lt
	// Le selects values less than or equal to the bound.
	Le
)

func (o Op) String() string {
	switch o {
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Lt:
		return "<"
	}
	return "<="
}

func (o Op) matches(v, bound float32) bool {
	switch o {
	case Gt:
		return v > bound
	case Ge:
		return v >= bound
	case Lt:
		return v < bound
	default:
		return v <= bound
	}
}

// canSkip reports whether no value in the zone can match the predicate.
func (z zone) canSkip(op Op, bound float32) bool {
	switch op {
	case Gt:
		return z.max <= bound
	case Ge:
		return z.max < bound
	case Lt:
		return z.min >= bound
	default:
		return z.min > bound
	}
}

// ScanMatch is one matching value from a predicate scan.
type ScanMatch struct {
	// Row is the global row offset (block * RowBlockRows + offset in block).
	Row int
	// Value is the reconstructed value at that row.
	Value float32
}

// ScanColumn evaluates `value op bound` over all blocks of a logical
// column, using zone maps to skip chunks that cannot match. Returns the
// matches in row order and the number of chunks skipped (for tests and
// EXPLAIN-style diagnostics).
func (s *Store) ScanColumn(model, interm, column string, op Op, bound float32) (matches []ScanMatch, skipped int, err error) {
	blockRows := s.cfg.RowBlockRows
	// Resolve the block chain and apply zone pruning under the index lock;
	// chunk reads and value comparisons run outside it.
	type blockRef struct {
		block int
		id    ChunkID
	}
	var refs []blockRef
	s.mu.Lock()
	for b := 0; ; b++ {
		key := ColumnKey{Model: model, Intermediate: interm, Column: column, Block: b}
		id, ok := s.columns[key]
		if !ok {
			if b == 0 {
				s.mu.Unlock()
				return nil, 0, fmt.Errorf("colstore: column %s: %w", key, ErrNotStored)
			}
			break
		}
		if z, ok := s.zones[id]; ok && z.canSkip(op, bound) {
			skipped++
			continue
		}
		refs = append(refs, blockRef{block: b, id: id})
	}
	s.mu.Unlock()

	for _, ref := range refs {
		vals, err := s.readChunkInto(nil, ref.id)
		if err != nil {
			return nil, skipped, err
		}
		base := ref.block * blockRows
		for i, v := range vals {
			if op.matches(v, bound) {
				matches = append(matches, ScanMatch{Row: base + i, Value: v})
			}
		}
	}
	return matches, skipped, nil
}

// ZoneInfo is the exported per-RowBlock summary of one column chunk. An
// inverted range (Min > Max) means the block's bounds are unknown or every
// value in it is NaN; consumers must treat such a block as unprunable.
type ZoneInfo struct {
	Min, Max float32
	Count    int
}

// ColumnZones returns the per-RowBlock zone summaries of a logical column
// in block order — the same min/max bounds the scan path prunes with,
// exposed so the neuron-centric index (internal/nindex) and the KNN block
// pruner can reason about blocks without reading them.
func (s *Store) ColumnZones(model, interm, column string) ([]ZoneInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ZoneInfo
	for b := 0; ; b++ {
		key := ColumnKey{Model: model, Intermediate: interm, Column: column, Block: b}
		id, ok := s.columns[key]
		if !ok {
			if b == 0 {
				return nil, fmt.Errorf("colstore: column %s: %w", key, ErrNotStored)
			}
			break
		}
		z, ok := s.zones[id]
		if !ok {
			// No summary recorded (shouldn't happen for a put chunk, but a
			// reconciled manifest may lack one): report unprunable bounds.
			z = zone{min: float32(math.Inf(1)), max: float32(math.Inf(-1))}
		}
		out = append(out, ZoneInfo{Min: z.min, Max: z.max, Count: z.count})
	}
	return out, nil
}

// ColumnSignature returns a CRC32-C fingerprint of a logical column's
// physical identity: every block's chunk id plus the owning partition's
// file generation. Any re-materialization (heal, re-log) maps the column
// to fresh chunk ids and any compaction bumps a generation, so a stored
// secondary index stamped with this signature can detect that its source
// moved and rebuild instead of trusting stale data.
func (s *Store) ColumnSignature(model, interm, column string) (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := crc32.New(castagnoli)
	var buf [24]byte
	for b := 0; ; b++ {
		key := ColumnKey{Model: model, Intermediate: interm, Column: column, Block: b}
		id, ok := s.columns[key]
		if !ok {
			if b == 0 {
				return 0, fmt.Errorf("colstore: column %s: %w", key, ErrNotStored)
			}
			break
		}
		var gen, count int64
		if p, ok := s.parts[id.Partition]; ok {
			gen = int64(p.gen)
		}
		if z, ok := s.zones[id]; ok {
			count = int64(z.count)
		}
		binary.LittleEndian.PutUint64(buf[0:], uint64(id.Partition))
		binary.LittleEndian.PutUint32(buf[8:], uint32(id.Index))
		binary.LittleEndian.PutUint32(buf[12:], uint32(gen))
		binary.LittleEndian.PutUint64(buf[16:], uint64(count))
		h.Write(buf[:])
	}
	return h.Sum32(), nil
}

// GetColumnRange reads rows [from, to) of a logical column, touching only
// the covering RowBlocks (the primary index: blocks are row-aligned).
func (s *Store) GetColumnRange(model, interm, column string, from, to int) ([]float32, error) {
	if from < 0 || to < from {
		return nil, fmt.Errorf("colstore: bad row range [%d, %d)", from, to)
	}
	blockRows := s.cfg.RowBlockRows
	firstBlock := from / blockRows
	// Resolve the covering block ids under the index lock, then decode
	// outside it.
	var ids []ChunkID
	s.mu.Lock()
	for b := firstBlock; b*blockRows < to; b++ {
		key := ColumnKey{Model: model, Intermediate: interm, Column: column, Block: b}
		id, ok := s.columns[key]
		if !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("colstore: column %s (range [%d,%d)): %w", key, from, to, ErrNotStored)
		}
		ids = append(ids, id)
	}
	s.mu.Unlock()
	out := make([]float32, 0, to-from)
	for bi, id := range ids {
		b := firstBlock + bi
		vals, err := s.readChunkInto(nil, id)
		if err != nil {
			return nil, err
		}
		base := b * blockRows
		lo := maxI(from-base, 0)
		hi := minI(to-base, len(vals))
		if lo > len(vals) {
			return nil, fmt.Errorf("colstore: row range [%d,%d) beyond column %s.%s.%s", from, to, model, interm, column)
		}
		out = append(out, vals[lo:hi]...)
		if len(vals) < blockRows {
			break
		}
	}
	if len(out) < to-from {
		return nil, fmt.Errorf("colstore: column %s.%s.%s has too few rows for [%d,%d)", model, interm, column, from, to)
	}
	return out, nil
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
