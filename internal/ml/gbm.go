package ml

import (
	"math/rand"

	"mistique/internal/tensor"
)

// GBMParams configures gradient-boosted regression trees. The two pipeline
// flavors map onto it as:
//
//	XGBoost:  eta -> LearningRate, lambda -> Lambda, alpha -> Alpha,
//	          max_depth -> MaxDepth
//	LightGBM: learning_rate -> LearningRate, sub_feature -> SubFeature,
//	          min_data -> MinSamples, bagging_fraction -> BaggingFraction
type GBMParams struct {
	Rounds          int
	LearningRate    float64
	MaxDepth        int
	MinSamples      int
	SubFeature      float64
	Lambda          float64
	Alpha           float64
	BaggingFraction float64
	Seed            int64
}

func (p GBMParams) withDefaults() GBMParams {
	if p.Rounds <= 0 {
		p.Rounds = 30
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.1
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 4
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 20
	}
	if p.SubFeature <= 0 || p.SubFeature > 1 {
		p.SubFeature = 1
	}
	if p.BaggingFraction <= 0 || p.BaggingFraction > 1 {
		p.BaggingFraction = 1
	}
	return p
}

// GBM is a fitted gradient-boosted tree ensemble for regression.
type GBM struct {
	base  float64
	lr    float64
	trees []*Tree
}

// TrainGBM fits an ensemble minimizing squared loss: each round fits a
// tree to the current residuals on a bagged row sample.
func TrainGBM(x *tensor.Dense, y []float64, p GBMParams) *GBM {
	p = p.withDefaults()
	if x.Rows != len(y) {
		panic("ml: TrainGBM row mismatch")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := &GBM{lr: p.LearningRate}
	var sum float64
	for _, v := range y {
		sum += v
	}
	if len(y) > 0 {
		g.base = sum / float64(len(y))
	}
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = g.base
	}
	resid := make([]float64, len(y))
	tp := TreeParams{
		MaxDepth:   p.MaxDepth,
		MinSamples: p.MinSamples,
		SubFeature: p.SubFeature,
		Lambda:     p.Lambda,
		Alpha:      p.Alpha,
	}
	for round := 0; round < p.Rounds; round++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		rows := bagRows(len(y), p.BaggingFraction, rng)
		tp.Seed = rng.Int63()
		tr := fitTree(x, resid, rows, tp)
		g.trees = append(g.trees, tr)
		for i := 0; i < x.Rows; i++ {
			pred[i] += p.LearningRate * tr.PredictRow(x.Row(i))
		}
	}
	return g
}

func bagRows(n int, frac float64, rng *rand.Rand) []int {
	if frac >= 1 {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		return rows
	}
	k := int(frac * float64(n))
	if k < 1 {
		k = 1
	}
	return rng.Perm(n)[:k]
}

// Predict evaluates the ensemble for every row of x.
func (g *GBM) Predict(x *tensor.Dense) []float64 {
	out := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		v := g.base
		for _, t := range g.trees {
			v += g.lr * t.PredictRow(row)
		}
		out[i] = v
	}
	return out
}

// NumTrees returns the ensemble size.
func (g *GBM) NumTrees() int { return len(g.trees) }
