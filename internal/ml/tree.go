// Package ml implements the model-fitting stages the Zillow pipelines use:
// ordinary least squares, coordinate-descent ElasticNet, and
// gradient-boosted regression trees in two flavors whose hyperparameters
// mirror the XGBoost (eta, lambda, alpha, max_depth) and LightGBM
// (learning_rate, sub_feature, min_data, bagging_fraction) knobs the
// paper's pipeline templates vary (Table 4).
package ml

import (
	"math"
	"math/rand"

	"mistique/internal/tensor"
)

// TreeParams controls a single regression tree fit.
type TreeParams struct {
	// MaxDepth bounds tree depth (root = depth 0).
	MaxDepth int
	// MinSamples is the minimum number of examples to split a node
	// (LightGBM's min_data).
	MinSamples int
	// SubFeature is the fraction of features considered per split in
	// (0, 1]; 1 means all (LightGBM's sub_feature).
	SubFeature float64
	// Lambda is the L2 leaf regularization (XGBoost's lambda).
	Lambda float64
	// Alpha is the L1 leaf regularization (XGBoost's alpha).
	Alpha float64
	// Seed drives feature subsampling.
	Seed int64
}

func (p TreeParams) withDefaults() TreeParams {
	if p.MaxDepth <= 0 {
		p.MaxDepth = 4
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 20
	}
	if p.SubFeature <= 0 || p.SubFeature > 1 {
		p.SubFeature = 1
	}
	if p.Lambda < 0 {
		p.Lambda = 0
	}
	if p.Alpha < 0 {
		p.Alpha = 0
	}
	return p
}

// treeNode is one node of a fitted regression tree. Leaves have
// feature == -1.
type treeNode struct {
	feature     int
	threshold   float32
	left, right int32 // child indices; -1 for none
	value       float64
}

// Tree is a fitted regression tree predicting a residual target.
type Tree struct {
	nodes []treeNode
}

// fitTree fits a tree to targets using squared loss with XGBoost-style
// regularized leaf weights: w = -soft(G, alpha) / (H + lambda) where
// G = -sum(target), H = n.
func fitTree(x *tensor.Dense, target []float64, rows []int, p TreeParams) *Tree {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	t := &Tree{}
	t.build(x, target, rows, 0, p, rng)
	return t
}

func leafWeight(sum float64, n int, p TreeParams) float64 {
	g := -sum // gradient of 1/2(pred-y)^2 at pred=0 summed over node
	var soft float64
	switch {
	case g > p.Alpha:
		soft = g - p.Alpha
	case g < -p.Alpha:
		soft = g + p.Alpha
	}
	return -soft / (float64(n) + p.Lambda)
}

// gain is the split score improvement for sums/counts of a candidate
// split, following the XGBoost structure score -G^2/(H+lambda) (up to the
// constant complexity term, which we fold into MinSamples/MaxDepth).
func gain(sumL float64, nL int, sumR float64, nR int, p TreeParams) float64 {
	score := func(sum float64, n int) float64 {
		g := -sum
		return g * g / (float64(n) + p.Lambda)
	}
	return score(sumL, nL) + score(sumR, nR) - score(sumL+sumR, nL+nR)
}

func (t *Tree) build(x *tensor.Dense, target []float64, rows []int, depth int, p TreeParams, rng *rand.Rand) int32 {
	var sum float64
	for _, r := range rows {
		sum += target[r]
	}
	nodeIdx := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: -1, left: -1, right: -1, value: leafWeight(sum, len(rows), p)})
	if depth >= p.MaxDepth || len(rows) < p.MinSamples {
		return nodeIdx
	}

	feats := sampleFeatures(x.Cols, p.SubFeature, rng)
	bestGain := 1e-12
	bestFeat := -1
	var bestThresh float32
	pairs := make([]pair, len(rows))
	for _, f := range feats {
		for i, r := range rows {
			pairs[i] = pair{v: x.At(r, f), t: target[r]}
		}
		sortPairs(pairs)
		var sumL float64
		for i := 0; i < len(pairs)-1; i++ {
			sumL += pairs[i].t
			if pairs[i].v == pairs[i+1].v {
				continue // cannot split between equal values
			}
			nL := i + 1
			nR := len(pairs) - nL
			if nL < p.MinSamples/2 || nR < p.MinSamples/2 {
				continue
			}
			if g := gain(sumL, nL, sum-sumL, nR, p); g > bestGain {
				bestGain = g
				bestFeat = f
				bestThresh = (pairs[i].v + pairs[i+1].v) / 2
			}
		}
	}
	if bestFeat < 0 {
		return nodeIdx
	}

	var lRows, rRows []int
	for _, r := range rows {
		if x.At(r, bestFeat) <= bestThresh {
			lRows = append(lRows, r)
		} else {
			rRows = append(rRows, r)
		}
	}
	if len(lRows) == 0 || len(rRows) == 0 {
		return nodeIdx
	}
	left := t.build(x, target, lRows, depth+1, p, rng)
	right := t.build(x, target, rRows, depth+1, p, rng)
	t.nodes[nodeIdx].feature = bestFeat
	t.nodes[nodeIdx].threshold = bestThresh
	t.nodes[nodeIdx].left = left
	t.nodes[nodeIdx].right = right
	return nodeIdx
}

func sampleFeatures(total int, frac float64, rng *rand.Rand) []int {
	k := int(math.Ceil(frac * float64(total)))
	if k >= total {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(total)
	return perm[:k]
}

// pair couples a feature value with its boosting target during split search.
type pair struct {
	v float32
	t float64
}

// sortPairs sorts by value ascending. Shell sort keeps the hot split-search
// path allocation-free (sort.Slice would allocate a closure per node).
func sortPairs(p []pair) {
	if len(p) < 2 {
		return
	}
	// Shell sort: in-place, allocation-free, fine for node sizes here.
	for gap := len(p) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(p); i++ {
			tmp := p[i]
			j := i
			for ; j >= gap && p[j-gap].v > tmp.v; j -= gap {
				p[j] = p[j-gap]
			}
			p[j] = tmp
		}
	}
}

// PredictRow evaluates the tree on one feature row.
func (t *Tree) PredictRow(row []float32) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if row[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumNodes returns the node count (for tests and model stats).
func (t *Tree) NumNodes() int { return len(t.nodes) }
