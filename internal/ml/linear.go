package ml

import (
	"math"

	"mistique/internal/tensor"
)

// ElasticNetParams mirrors scikit-learn's ElasticNet knobs used by the
// Zillow templates: l1_ratio, tol and normalize.
type ElasticNetParams struct {
	// Alpha is the overall penalty strength (sklearn alpha, default 1.0).
	Alpha float64
	// L1Ratio in [0,1] blends L1 (1) and L2 (0) penalties.
	L1Ratio float64
	// Tol is the coordinate-descent convergence tolerance on the max
	// coefficient update.
	Tol float64
	// Normalize standardizes features to unit variance before fitting.
	Normalize bool
	// MaxIter bounds coordinate-descent sweeps.
	MaxIter int
}

func (p ElasticNetParams) withDefaults() ElasticNetParams {
	if p.Alpha <= 0 {
		p.Alpha = 1.0
	}
	if p.L1Ratio < 0 {
		p.L1Ratio = 0
	}
	if p.L1Ratio > 1 {
		p.L1Ratio = 1
	}
	if p.Tol <= 0 {
		p.Tol = 1e-4
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 1000
	}
	return p
}

// ElasticNet is a fitted linear model with intercept.
type ElasticNet struct {
	Coef      []float64
	Intercept float64
	// feature standardization recorded at fit time
	means, scales []float64
	normalize     bool
}

// TrainElasticNet fits by cyclic coordinate descent on the standard
// elastic-net objective 1/(2n)||y - Xw||^2 + alpha*l1_ratio*||w||_1 +
// alpha*(1-l1_ratio)/2*||w||_2^2.
func TrainElasticNet(x *tensor.Dense, y []float64, p ElasticNetParams) *ElasticNet {
	p = p.withDefaults()
	n, d := x.Rows, x.Cols
	if n != len(y) {
		panic("ml: TrainElasticNet row mismatch")
	}
	m := &ElasticNet{Coef: make([]float64, d), normalize: p.Normalize}

	// Center y and (optionally standardized) X; intercept recovered after.
	xf := make([][]float64, d)
	m.means = make([]float64, d)
	m.scales = make([]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, n)
		var mean float64
		for i := 0; i < n; i++ {
			col[i] = float64(x.At(i, j))
			mean += col[i]
		}
		mean /= float64(max(n, 1))
		m.means[j] = mean
		var varsum float64
		for i := range col {
			col[i] -= mean
			varsum += col[i] * col[i]
		}
		scale := 1.0
		if p.Normalize {
			if sd := math.Sqrt(varsum / float64(max(n, 1))); sd > 1e-12 {
				scale = sd
			}
			for i := range col {
				col[i] /= scale
			}
		}
		m.scales[j] = scale
		xf[j] = col
	}
	var yMean float64
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(max(n, 1))
	resid := make([]float64, n)
	for i := range resid {
		resid[i] = y[i] - yMean
	}

	// Per-feature squared norms.
	norms := make([]float64, d)
	for j := range xf {
		for _, v := range xf[j] {
			norms[j] += v * v
		}
	}
	l1 := p.Alpha * p.L1Ratio * float64(n)
	l2 := p.Alpha * (1 - p.L1Ratio) * float64(n)

	for iter := 0; iter < p.MaxIter; iter++ {
		var maxDelta float64
		for j := 0; j < d; j++ {
			if norms[j] == 0 {
				continue
			}
			col := xf[j]
			old := m.Coef[j]
			// rho = X_j . (resid + X_j * w_j)
			var rho float64
			for i := range col {
				rho += col[i] * resid[i]
			}
			rho += old * norms[j]
			var w float64
			switch {
			case rho > l1:
				w = (rho - l1) / (norms[j] + l2)
			case rho < -l1:
				w = (rho + l1) / (norms[j] + l2)
			}
			if w != old {
				diff := w - old
				for i := range col {
					resid[i] -= diff * col[i]
				}
				m.Coef[j] = w
				if ad := math.Abs(diff); ad > maxDelta {
					maxDelta = ad
				}
			}
		}
		if maxDelta < p.Tol {
			break
		}
	}
	// Fold standardization back: w_orig = w/scale, intercept = yMean - sum(w_orig*mean).
	m.Intercept = yMean
	for j := 0; j < d; j++ {
		m.Coef[j] /= m.scales[j]
		m.Intercept -= m.Coef[j] * m.means[j]
	}
	m.means, m.scales = nil, nil
	return m
}

// Predict evaluates the linear model for every row of x.
func (m *ElasticNet) Predict(x *tensor.Dense) []float64 {
	out := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		v := m.Intercept
		for j, w := range m.Coef {
			if w != 0 {
				v += w * float64(row[j])
			}
		}
		out[i] = v
	}
	return out
}

// OLS fits ordinary least squares with a tiny ridge term for stability by
// coordinate descent (exact enough for pipeline use and dependency-free).
func OLS(x *tensor.Dense, y []float64) *ElasticNet {
	return TrainElasticNet(x, y, ElasticNetParams{Alpha: 1e-8, L1Ratio: 0, Tol: 1e-8, MaxIter: 5000})
}

// MSE returns the mean squared error between predictions and targets.
func MSE(pred, y []float64) float64 {
	if len(pred) != len(y) || len(pred) == 0 {
		return math.NaN()
	}
	var sum float64
	for i := range pred {
		d := pred[i] - y[i]
		sum += d * d
	}
	return sum / float64(len(pred))
}

// MAE returns the mean absolute error between predictions and targets.
func MAE(pred, y []float64) float64 {
	if len(pred) != len(y) || len(pred) == 0 {
		return math.NaN()
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - y[i])
	}
	return sum / float64(len(pred))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
