package ml

import (
	"math"
	"math/rand"
	"testing"

	"mistique/internal/tensor"
)

// synthData builds y = 3*x0 - 2*x1 + noise plus irrelevant features.
func synthData(n, d int, noise float64, seed int64) (*tensor.Dense, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.NewDense(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, float32(rng.NormFloat64()))
		}
		y[i] = 3*float64(x.At(i, 0)) - 2*float64(x.At(i, 1)) + noise*rng.NormFloat64()
	}
	return x, y
}

// stepData builds a nonlinear target trees can fit but lines cannot.
func stepData(n int, seed int64) (*tensor.Dense, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.NewDense(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, float32(rng.Float64()*10))
		}
		y[i] = 1
		if x.At(i, 0) > 5 {
			y[i] = 10
		}
		if x.At(i, 1) > 7 {
			y[i] += 5
		}
		y[i] += 0.1 * rng.NormFloat64()
	}
	return x, y
}

func TestTreeFitsStepFunction(t *testing.T) {
	x, y := stepData(2000, 1)
	rows := make([]int, x.Rows)
	for i := range rows {
		rows[i] = i
	}
	tr := fitTree(x, y, rows, TreeParams{MaxDepth: 3, MinSamples: 10})
	if tr.NumNodes() < 3 {
		t.Fatalf("tree did not split: %d nodes", tr.NumNodes())
	}
	pred := make([]float64, x.Rows)
	for i := range pred {
		pred[i] = tr.PredictRow(x.Row(i))
	}
	if mse := MSE(pred, y); mse > 1.0 {
		t.Fatalf("tree MSE %g too high", mse)
	}
}

func TestTreeRespectsMaxDepthAndMinSamples(t *testing.T) {
	x, y := stepData(500, 2)
	rows := make([]int, x.Rows)
	for i := range rows {
		rows[i] = i
	}
	stump := fitTree(x, y, rows, TreeParams{MaxDepth: 1, MinSamples: 10})
	if stump.NumNodes() > 3 {
		t.Fatalf("depth-1 tree has %d nodes", stump.NumNodes())
	}
	// Huge MinSamples forbids any split.
	leaf := fitTree(x, y, rows, TreeParams{MaxDepth: 5, MinSamples: 10000})
	if leaf.NumNodes() != 1 {
		t.Fatalf("no-split tree has %d nodes", leaf.NumNodes())
	}
}

func TestGBMBeatsMeanBaseline(t *testing.T) {
	x, y := stepData(3000, 3)
	g := TrainGBM(x, y, GBMParams{Rounds: 40, LearningRate: 0.2, MaxDepth: 3, Seed: 7})
	pred := g.Predict(x)
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	base := make([]float64, len(y))
	for i := range base {
		base[i] = mean
	}
	if MSE(pred, y) > MSE(base, y)/10 {
		t.Fatalf("GBM MSE %g vs baseline %g: not learning", MSE(pred, y), MSE(base, y))
	}
	if g.NumTrees() != 40 {
		t.Fatalf("trees %d", g.NumTrees())
	}
}

func TestGBMDeterministicWithSeed(t *testing.T) {
	x, y := stepData(500, 4)
	p := GBMParams{Rounds: 10, MaxDepth: 3, BaggingFraction: 0.8, SubFeature: 0.7, Seed: 42}
	a := TrainGBM(x, y, p).Predict(x)
	b := TrainGBM(x, y, p).Predict(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GBM not deterministic for fixed seed")
		}
	}
}

func TestGBMHyperparametersChangeModel(t *testing.T) {
	x, y := stepData(800, 5)
	a := TrainGBM(x, y, GBMParams{Rounds: 10, MaxDepth: 2, Seed: 1}).Predict(x)
	b := TrainGBM(x, y, GBMParams{Rounds: 10, MaxDepth: 5, Seed: 1}).Predict(x)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("changing max_depth produced identical predictions")
	}
}

func TestElasticNetRecoversCoefficients(t *testing.T) {
	x, y := synthData(2000, 5, 0.01, 6)
	m := TrainElasticNet(x, y, ElasticNetParams{Alpha: 0.001, L1Ratio: 0.5, Tol: 1e-6})
	if math.Abs(m.Coef[0]-3) > 0.1 || math.Abs(m.Coef[1]+2) > 0.1 {
		t.Fatalf("coef %v", m.Coef)
	}
	for j := 2; j < 5; j++ {
		if math.Abs(m.Coef[j]) > 0.1 {
			t.Fatalf("irrelevant coef %d = %g", j, m.Coef[j])
		}
	}
}

func TestElasticNetL1Sparsifies(t *testing.T) {
	x, y := synthData(500, 10, 0.5, 8)
	dense := TrainElasticNet(x, y, ElasticNetParams{Alpha: 0.0001, L1Ratio: 0})
	sparse := TrainElasticNet(x, y, ElasticNetParams{Alpha: 0.5, L1Ratio: 1})
	nz := func(m *ElasticNet) int {
		c := 0
		for _, w := range m.Coef {
			if w != 0 {
				c++
			}
		}
		return c
	}
	if nz(sparse) >= nz(dense) {
		t.Fatalf("L1 did not sparsify: %d vs %d nonzeros", nz(sparse), nz(dense))
	}
}

func TestElasticNetNormalize(t *testing.T) {
	// One feature on a very different scale; Normalize should still fit.
	rng := rand.New(rand.NewSource(9))
	n := 1000
	x := tensor.NewDense(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float32(rng.NormFloat64()*1e4))
		x.Set(i, 1, float32(rng.NormFloat64()))
		y[i] = 0.001*float64(x.At(i, 0)) + 2*float64(x.At(i, 1))
	}
	m := TrainElasticNet(x, y, ElasticNetParams{Alpha: 1e-5, L1Ratio: 0.5, Normalize: true})
	pred := m.Predict(x)
	if mse := MSE(pred, y); mse > 0.05 {
		t.Fatalf("normalized fit MSE %g", mse)
	}
}

func TestOLSExactOnNoiselessData(t *testing.T) {
	x, y := synthData(300, 3, 0, 10)
	m := OLS(x, y)
	pred := m.Predict(x)
	if mse := MSE(pred, y); mse > 1e-6 {
		t.Fatalf("OLS MSE %g on noiseless data", mse)
	}
}

func TestMetrics(t *testing.T) {
	if MSE([]float64{1, 2}, []float64{1, 4}) != 2 {
		t.Fatal("MSE")
	}
	if MAE([]float64{1, 2}, []float64{2, 4}) != 1.5 {
		t.Fatal("MAE")
	}
	if !math.IsNaN(MSE(nil, nil)) || !math.IsNaN(MAE([]float64{1}, nil)) {
		t.Fatal("empty metrics should be NaN")
	}
}

func TestPredictRowDeepTree(t *testing.T) {
	// Property: predictions are constant within a leaf region.
	x, y := stepData(1000, 11)
	rows := make([]int, x.Rows)
	for i := range rows {
		rows[i] = i
	}
	tr := fitTree(x, y, rows, TreeParams{MaxDepth: 6, MinSamples: 4})
	a := tr.PredictRow([]float32{1, 1, 1})
	b := tr.PredictRow([]float32{1, 1, 1})
	if a != b {
		t.Fatal("prediction not deterministic")
	}
}

func BenchmarkTrainGBM(b *testing.B) {
	x, y := stepData(2000, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainGBM(x, y, GBMParams{Rounds: 10, MaxDepth: 3, Seed: 1})
	}
}
