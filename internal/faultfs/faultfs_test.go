package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := OS()
	f, err := fs.CreateTemp(dir, "x.tmp*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	final := filepath.Join(dir, "final")
	if err := fs.Rename(f.Name(), final); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(final)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := fs.Remove(final); err != nil {
		t.Fatal(err)
	}
}

func TestTornWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm(Fault{Op: OpWrite, AfterBytes: 5})
	f, err := in.CreateTemp(dir, "torn*")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	f.Close()
	got, _ := os.ReadFile(f.Name())
	if string(got) != "01234" {
		t.Fatalf("file holds %q, want torn prefix", got)
	}
	if !in.Fired() {
		t.Fatal("fault did not report fired")
	}
}

func TestTornWriteAcrossCalls(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm(Fault{Op: OpWrite, AfterBytes: 6})
	f, err := in.CreateTemp(dir, "torn*")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("abcd")); n != 4 || err != nil {
		t.Fatalf("first write under the limit: n=%d err=%v", n, err)
	}
	if n, err := f.Write([]byte("efgh")); n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: n=%d err=%v", n, err)
	}
	f.Close()
	got, _ := os.ReadFile(f.Name())
	if string(got) != "abcdef" {
		t.Fatalf("file holds %q, want 6-byte prefix", got)
	}
}

func TestENOSPCAndFsyncFaults(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)

	in.Arm(Fault{Op: OpWrite, Err: syscall.ENOSPC})
	f, err := in.CreateTemp(dir, "full*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	f.Close()

	in.Arm(Fault{Op: OpSync})
	g, err := in.CreateTemp(dir, "sync*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected sync failure, got %v", err)
	}
	g.Close()
}

func TestCrashAbandonsEverything(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm(Fault{Op: OpRename, PathContains: "final", Crash: true})

	f, err := in.CreateTemp(dir, "work*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	tmp := f.Name()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in.Rename(tmp, filepath.Join(dir, "final")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash at rename, got %v", err)
	}
	// The dead process cannot clean up: removal of the temp file fails
	// too, leaving the orphan a recovery sweep must handle.
	if err := in.Remove(tmp); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want post-crash remove failure, got %v", err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("orphan temp should survive the crash: %v", err)
	}
	if !in.Crashed() {
		t.Fatal("injector should report crashed")
	}
	in.Disarm()
	if err := in.Remove(tmp); err != nil {
		t.Fatalf("disarmed injector should work again: %v", err)
	}
}

func TestCountdownSkipsMatches(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm(Fault{Op: OpCreate, Countdown: 2})
	for i := 0; i < 2; i++ {
		f, err := in.CreateTemp(dir, "ok*")
		if err != nil {
			t.Fatalf("call %d should pass: %v", i, err)
		}
		f.Close()
	}
	if _, err := in.CreateTemp(dir, "boom*"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third create should fail, got %v", err)
	}
}
