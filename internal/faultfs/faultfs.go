// Package faultfs wraps the handful of os calls the store's write paths
// use behind an injectable interface, so crash-safety tests can tear a
// write after N bytes, fail an fsync, report ENOSPC, or "crash" the
// process at an arbitrary point (every subsequent call fails, leaving
// whatever debris a real kill would — partial temp files, un-renamed
// manifests, un-synced directories).
//
// Production code uses OS(), a thin pass-through. Tests build an
// Injector around it, arm one Fault, run the operation under test, and
// then reopen the store with a clean FS to assert the recovery
// invariants.
//
// Reads deliberately stay on plain os calls: torn and lost writes are
// what produce corrupt files, and the read path's checksums detect them
// regardless of how the bytes went bad.
package faultfs

import (
	"errors"
	"io"
	"os"
	"strings"
	"sync"
)

// ErrInjected is the default error returned by a fired fault.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every call after a Crash fault fires: the
// simulated process is dead, so even error-path cleanup (removing temp
// files) fails, exactly as a real kill would leave it.
var ErrCrashed = errors.New("faultfs: process crashed (simulated)")

// File is the writable-file surface the store needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS is the write-side filesystem surface the store needs.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	// OpenAppend opens (creating if absent) a file for appending — the
	// write-ahead log's durability handle. Faults gate it under OpCreate;
	// writes and syncs through the returned File fire OpWrite/OpSync like
	// any other.
	OpenAppend(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory, making a preceding rename durable.
	SyncDir(dir string) error
}

type osFS struct{}

// OS returns the pass-through FS used in production.
func OS() FS { return osFS{} }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Op names one interceptable filesystem call.
type Op int

const (
	OpCreate Op = iota
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpSyncDir
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpClose:
		return "close"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	}
	return "syncdir"
}

// Fault describes one injected failure.
type Fault struct {
	// Op is the call the fault intercepts.
	Op Op
	// PathContains restricts the fault to calls whose path contains the
	// substring (empty matches every path).
	PathContains string
	// Countdown skips that many matching calls before firing (0 fires on
	// the first match).
	Countdown int
	// AfterBytes applies to OpWrite: the matching file accepts this many
	// bytes in total, then the write that crosses the limit is torn — the
	// prefix reaches the file, the rest is lost.
	AfterBytes int64
	// Err is returned by the fired call (ErrInjected when nil). Use
	// syscall.ENOSPC for disk-full scenarios.
	Err error
	// Crash abandons the process at the fault point: the fired call and
	// every later call return ErrCrashed, so no cleanup runs.
	Crash bool
}

func (f Fault) errOr() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// Injector is an FS that fails exactly one armed Fault, then (optionally)
// plays dead. Safe for concurrent use.
type Injector struct {
	inner FS

	mu        sync.Mutex
	fault     *Fault
	remaining int
	seenBytes int64 // bytes accepted by matching writes (AfterBytes faults)
	fired     bool
	crashed   bool
}

// NewInjector wraps inner (OS() when nil).
func NewInjector(inner FS) *Injector {
	if inner == nil {
		inner = OS()
	}
	return &Injector{inner: inner}
}

// Arm installs the fault and resets the trigger state.
func (in *Injector) Arm(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fault = &f
	in.remaining = f.Countdown
	in.seenBytes = 0
	in.fired = false
	in.crashed = false
}

// Disarm clears any armed fault and revives a crashed injector.
func (in *Injector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fault = nil
	in.fired = false
	in.crashed = false
}

// Fired reports whether the armed fault has triggered.
func (in *Injector) Fired() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Crashed reports whether the injector is in the post-crash state.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// check gates one non-write call. It returns a non-nil error when the
// call must fail instead of reaching the inner FS.
func (in *Injector) check(op Op, path string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	f := in.fault
	if f == nil || in.fired || f.Op != op || !strings.Contains(path, f.PathContains) {
		return nil
	}
	if in.remaining > 0 {
		in.remaining--
		return nil
	}
	in.fired = true
	if f.Crash {
		in.crashed = true
		return ErrCrashed
	}
	return f.errOr()
}

// checkWrite gates one Write of n bytes against path, returning how many
// bytes may pass through and the error to report (nil = full write).
func (in *Injector) checkWrite(path string, n int) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return 0, ErrCrashed
	}
	f := in.fault
	if f == nil || in.fired || f.Op != OpWrite || !strings.Contains(path, f.PathContains) {
		return n, nil
	}
	if f.AfterBytes > 0 {
		if in.seenBytes+int64(n) <= f.AfterBytes {
			in.seenBytes += int64(n)
			return n, nil
		}
		allowed := int(f.AfterBytes - in.seenBytes)
		in.seenBytes = f.AfterBytes
		in.fired = true
		if f.Crash {
			in.crashed = true
			return allowed, ErrCrashed
		}
		return allowed, f.errOr()
	}
	if in.remaining > 0 {
		in.remaining--
		return n, nil
	}
	in.fired = true
	if f.Crash {
		in.crashed = true
		return 0, ErrCrashed
	}
	return 0, f.errOr()
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.check(OpCreate, dir+"/"+pattern); err != nil {
		return nil, err
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectedFile{in: in, f: f}, nil
}

func (in *Injector) OpenAppend(name string) (File, error) {
	if err := in.check(OpCreate, name); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &injectedFile{in: in, f: f}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.check(OpRename, newpath); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err := in.check(OpRemove, name); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

func (in *Injector) SyncDir(dir string) error {
	if err := in.check(OpSyncDir, dir); err != nil {
		return err
	}
	return in.inner.SyncDir(dir)
}

// injectedFile threads Write/Sync/Close through the injector. The torn
// prefix of a failed write still reaches the inner file — that is the
// point: the bytes a real crash would leave behind.
type injectedFile struct {
	in *Injector
	f  File
}

func (jf *injectedFile) Name() string { return jf.f.Name() }

func (jf *injectedFile) Write(p []byte) (int, error) {
	allowed, ferr := jf.in.checkWrite(jf.f.Name(), len(p))
	if allowed > 0 {
		n, werr := jf.f.Write(p[:allowed])
		if werr != nil {
			return n, werr
		}
		if ferr != nil {
			return n, ferr
		}
		return n, nil
	}
	if ferr != nil {
		return 0, ferr
	}
	return jf.f.Write(p)
}

func (jf *injectedFile) Sync() error {
	if err := jf.in.check(OpSync, jf.f.Name()); err != nil {
		return err
	}
	return jf.f.Sync()
}

func (jf *injectedFile) Close() error {
	// A crashed process never runs Close; still close the inner file so
	// tests don't leak descriptors, but report the crash to the caller.
	if err := jf.in.check(OpClose, jf.f.Name()); err != nil {
		jf.f.Close()
		return err
	}
	if jf.in.Crashed() {
		jf.f.Close()
		return ErrCrashed
	}
	return jf.f.Close()
}
