// Package zillow builds the paper's TRAD evaluation workload: the ten
// pipeline templates of Table 4 (P1..P10), each instantiated with five
// hyperparameter settings, for fifty pipelines total. Pipelines are
// declared in the YAML specification format and share long prefixes
// (identical reads, joins and feature stages), which is precisely the
// redundancy MISTIQUE's de-duplication exploits in Fig. 6a.
package zillow

import (
	"fmt"
	"strings"

	"mistique/internal/data"
	"mistique/internal/frame"
	"mistique/internal/pipeline"
)

// Env builds the synthetic Zillow tables shared by every pipeline.
func Env(nProps, nTrain int, seed int64) map[string]*frame.Frame {
	h := data.Housing(nProps, nTrain, seed)
	return map[string]*frame.Frame{
		"properties": h.Properties,
		"train":      h.Train,
		"test":       h.Test,
	}
}

// header emits the shared read stages.
func header() string {
	return `
  - name: props_raw
    op: read_table
    params: {table: properties}
  - name: sales
    op: read_table
    params: {table: train}
  - name: holdout
    op: read_table
    params: {table: test}
`
}

// propStages chains property-table feature stages (each applied pre-join,
// as in the Table 4 templates) and returns the YAML plus the name of the
// final property frame.
func propStages(stages ...string) (string, string) {
	var sb strings.Builder
	last := "props_raw"
	for i, s := range stages {
		name := fmt.Sprintf("props_fe%d", i+1)
		sb.WriteString(strings.ReplaceAll(strings.ReplaceAll(s, "$IN", last), "$NAME", name))
		last = name
	}
	return sb.String(), last
}

// tail emits the join/drop/split/train/predict stages shared by the
// single-model templates.
func tail(props, trainOp, trainParams string) string {
	return fmt.Sprintf(`
  - name: joined
    op: join
    inputs: [sales, %[1]s]
    params: {on: parcelid}
  - name: joined_test
    op: join
    inputs: [holdout, %[1]s]
    params: {on: parcelid}
  - name: dropped
    op: drop_columns
    inputs: [joined]
    params: {cols: [regionidzip, propertytype]}
  - name: dropped_test
    op: drop_columns
    inputs: [joined_test]
    params: {cols: [regionidzip, propertytype]}
  - name: splits
    op: split
    inputs: [dropped]
    params: {frac: 0.8, seed: 17}
    outputs: [train_split, eval_split]
  - name: model
    op: %[2]s
    inputs: [train_split]
    params: {target: logerror%[3]s}
  - name: pred_eval
    op: predict
    inputs: [eval_split]
    params: {model: model}
  - name: pred_holdout
    op: predict
    inputs: [dropped_test]
    params: {model: model}
`, props, trainOp, trainParams)
}

const feFillNA = `
  - name: $NAME
    op: fillna
    inputs: [$IN]
    params: {strategy: mean}
`

const feOneHot = `
  - name: $NAME
    op: onehot
    inputs: [$IN]
    params: {cols: [propertytype]}
`

const feGroupAvg = `
  - name: $NAME
    op: group_avg
    inputs: [$IN]
    params: {group: regionidzip, col: taxvaluedollarcnt, name: region_avg_tax}
`

const feRecency = `
  - name: $NAME
    op: construction_recency
    inputs: [$IN]
`

const feNeighborhood = `
  - name: $NAME
    op: neighborhood
    inputs: [$IN]
    params: {bins: $BINS}
`

const feResidential = `
  - name: $NAME
    op: is_residential
    inputs: [$IN]
`

// Variant is one hyperparameter setting of a template.
type Variant map[string]float64

// rounds is kept small so the full 50-pipeline workload runs in seconds on
// one core; the storage/dedup behaviour is unaffected by ensemble size.
const rounds = 12

func lgbmParams(v Variant) string {
	return fmt.Sprintf(", rounds: %d, learning_rate: %g, sub_feature: %g, min_data: %d, max_depth: 4, seed: 1",
		rounds, v["learning_rate"], v["sub_feature"], int(v["min_data"]))
}

func xgbParams(v Variant) string {
	return fmt.Sprintf(", rounds: %d, eta: %g, lambda: %g, alpha: %g, max_depth: %d, seed: 2",
		rounds, v["eta"], v["lambda"], v["alpha"], int(v["max_depth"]))
}

func elasticParams(v Variant) string {
	s := fmt.Sprintf(", alpha: 0.001, l1_ratio: %g, tol: %g", v["l1_ratio"], v["tol"])
	if v["normalize"] != 0 {
		s += ", normalize: 1"
	}
	return s
}

// template builds one pipeline YAML.
type template struct {
	id       string
	variants []Variant
	build    func(name string, v Variant) string
}

func simpleTemplate(trainOp string, paramFn func(Variant) string, fe ...string) func(string, Variant) string {
	return func(name string, v Variant) string {
		feYAML, last := propStages(fe...)
		return "name: " + name + "\nstages:" + header() + feYAML + tail(last, trainOp, paramFn(v))
	}
}

// p5Build is the two-model ensemble template.
func p5Build(name string, v Variant) string {
	feYAML, last := propStages()
	base := "name: " + name + "\nstages:" + header() + feYAML + fmt.Sprintf(`
  - name: joined
    op: join
    inputs: [sales, %[1]s]
    params: {on: parcelid}
  - name: joined_test
    op: join
    inputs: [holdout, %[1]s]
    params: {on: parcelid}
  - name: dropped
    op: drop_columns
    inputs: [joined]
    params: {cols: [regionidzip, propertytype]}
  - name: dropped_test
    op: drop_columns
    inputs: [joined_test]
    params: {cols: [regionidzip, propertytype]}
  - name: splits
    op: split
    inputs: [dropped]
    params: {frac: 0.8, seed: 17}
    outputs: [train_split, eval_split]
  - name: model_xgb
    op: train_xgb
    inputs: [train_split]
    params: {target: logerror%[2]s}
  - name: model_lgbm
    op: train_lgbm
    inputs: [train_split]
    params: {target: logerror, rounds: %[3]d, learning_rate: 0.1, max_depth: 4, seed: 3}
  - name: pred_xgb
    op: predict
    inputs: [dropped_test]
    params: {model: model_xgb}
  - name: pred_lgbm
    op: predict
    inputs: [dropped_test]
    params: {model: model_lgbm}
  - name: pred_holdout
    op: blend
    inputs: [pred_xgb, pred_lgbm]
    params: {weight_a: %[4]g, weight_b: %[5]g}
`, last, xgbParams(v), rounds, v["xgb_weight"], v["lgbm_weight"])
	return base
}

func templates() []template {
	lgbmVars := []Variant{
		{"learning_rate": 0.05, "sub_feature": 0.5, "min_data": 20},
		{"learning_rate": 0.1, "sub_feature": 0.5, "min_data": 20},
		{"learning_rate": 0.1, "sub_feature": 0.8, "min_data": 40},
		{"learning_rate": 0.2, "sub_feature": 0.8, "min_data": 20},
		{"learning_rate": 0.2, "sub_feature": 1.0, "min_data": 60},
	}
	xgbVars := []Variant{
		{"eta": 0.05, "lambda": 1, "alpha": 0, "max_depth": 3},
		{"eta": 0.1, "lambda": 1, "alpha": 0, "max_depth": 4},
		{"eta": 0.1, "lambda": 5, "alpha": 0.1, "max_depth": 4},
		{"eta": 0.2, "lambda": 1, "alpha": 0.5, "max_depth": 5},
		{"eta": 0.3, "lambda": 10, "alpha": 0, "max_depth": 3},
	}
	elasticVars := []Variant{
		{"l1_ratio": 0.1, "tol": 1e-4},
		{"l1_ratio": 0.3, "tol": 1e-4},
		{"l1_ratio": 0.5, "tol": 1e-5},
		{"l1_ratio": 0.7, "tol": 1e-4},
		{"l1_ratio": 0.9, "tol": 1e-5},
	}
	elasticNormVars := []Variant{
		{"l1_ratio": 0.1, "tol": 1e-4, "normalize": 1},
		{"l1_ratio": 0.3, "tol": 1e-4, "normalize": 1},
		{"l1_ratio": 0.5, "tol": 1e-5, "normalize": 0},
		{"l1_ratio": 0.7, "tol": 1e-4, "normalize": 1},
		{"l1_ratio": 0.9, "tol": 1e-5, "normalize": 0},
	}
	ensembleVars := []Variant{
		{"eta": 0.1, "lambda": 1, "alpha": 0, "max_depth": 4, "xgb_weight": 0.5, "lgbm_weight": 0.5},
		{"eta": 0.1, "lambda": 1, "alpha": 0, "max_depth": 4, "xgb_weight": 0.7, "lgbm_weight": 0.3},
		{"eta": 0.2, "lambda": 5, "alpha": 0.1, "max_depth": 3, "xgb_weight": 0.3, "lgbm_weight": 0.7},
		{"eta": 0.1, "lambda": 1, "alpha": 0.5, "max_depth": 5, "xgb_weight": 0.6, "lgbm_weight": 0.4},
		{"eta": 0.05, "lambda": 1, "alpha": 0, "max_depth": 4, "xgb_weight": 0.4, "lgbm_weight": 0.6},
	}

	neighborhoodFE := strings.ReplaceAll(feNeighborhood, "$BINS", "8")

	return []template{
		{id: "p1", variants: lgbmVars, build: simpleTemplate("train_lgbm", lgbmParams)},
		{id: "p2", variants: xgbVars, build: simpleTemplate("train_xgb", xgbParams)},
		{id: "p3", variants: elasticVars, build: simpleTemplate("train_elastic", elasticParams, feOneHot, feFillNA)},
		{id: "p4", variants: elasticNormVars, build: simpleTemplate("train_elastic", elasticParams, feGroupAvg, feOneHot, feFillNA)},
		{id: "p5", variants: ensembleVars, build: p5Build},
		{id: "p6", variants: lgbmVars, build: simpleTemplate("train_lgbm", lgbmParams, feGroupAvg)},
		{id: "p7", variants: elasticVars, build: simpleTemplate("train_elastic", elasticParams, feGroupAvg, feFillNA)},
		{id: "p8", variants: elasticNormVars, build: simpleTemplate("train_elastic", elasticParams, feGroupAvg, feRecency, feOneHot, feFillNA)},
		{id: "p9", variants: elasticNormVars, build: simpleTemplate("train_elastic", elasticParams, feGroupAvg, feRecency, neighborhoodFE, feOneHot, feFillNA)},
		{id: "p10", variants: elasticNormVars, build: simpleTemplate("train_elastic", elasticParams, feGroupAvg, feRecency, feResidential, feOneHot, feFillNA)},
	}
}

// YAMLs returns all fifty pipeline specifications keyed by pipeline name
// (p1_v0 .. p10_v4) in deterministic order.
func YAMLs() (names []string, byName map[string]string) {
	byName = make(map[string]string, 50)
	for _, t := range templates() {
		for vi, v := range t.variants {
			name := fmt.Sprintf("%s_v%d", t.id, vi)
			names = append(names, name)
			byName[name] = t.build(name, v)
		}
	}
	return names, byName
}

// Specs parses all fifty pipeline YAMLs into specs.
func Specs() ([]pipeline.Spec, error) {
	names, byName := YAMLs()
	out := make([]pipeline.Spec, 0, len(names))
	for _, n := range names {
		spec, err := pipeline.SpecFromYAML(byName[n])
		if err != nil {
			return nil, fmt.Errorf("zillow: template %s: %w", n, err)
		}
		out = append(out, spec)
	}
	return out, nil
}

// Build instantiates every pipeline, bound to the given environment.
func Build(env map[string]*frame.Frame) ([]*pipeline.Pipeline, error) {
	specs, err := Specs()
	if err != nil {
		return nil, err
	}
	out := make([]*pipeline.Pipeline, 0, len(specs))
	for _, spec := range specs {
		p, err := pipeline.New(spec)
		if err != nil {
			return nil, fmt.Errorf("zillow: build %s: %w", spec.Name, err)
		}
		if err := p.Bind(env, 0); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
