package zillow

import (
	"strings"
	"testing"
)

func TestFiftyPipelines(t *testing.T) {
	names, byName := YAMLs()
	if len(names) != 50 || len(byName) != 50 {
		t.Fatalf("got %d pipelines, want 50", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate pipeline name %s", n)
		}
		seen[n] = true
		if byName[n] == "" {
			t.Fatalf("empty yaml for %s", n)
		}
	}
}

func TestSpecsParse(t *testing.T) {
	specs, err := Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 50 {
		t.Fatalf("%d specs", len(specs))
	}
	// Stage counts per template are in the paper's 9-19 range.
	for _, s := range specs {
		if len(s.Stages) < 9 || len(s.Stages) > 19 {
			t.Errorf("pipeline %s has %d stages, outside 9-19", s.Name, len(s.Stages))
		}
	}
}

func TestVariantsDiffer(t *testing.T) {
	_, byName := YAMLs()
	if byName["p1_v0"] == byName["p1_v1"] {
		t.Fatal("variants of the same template are identical")
	}
	if !strings.Contains(byName["p5_v0"], "blend") {
		t.Fatal("p5 lacks the ensemble blend stage")
	}
	if !strings.Contains(byName["p9_v0"], "neighborhood") {
		t.Fatal("p9 lacks the neighborhood stage")
	}
	if !strings.Contains(byName["p10_v0"], "is_residential") {
		t.Fatal("p10 lacks the is_residential stage")
	}
}

func TestBuildAndRunSubset(t *testing.T) {
	env := Env(200, 600, 1)
	pipes, err := Build(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(pipes) != 50 {
		t.Fatalf("%d pipelines", len(pipes))
	}
	// Run one variant per template end-to-end.
	for i := 0; i < 50; i += 5 {
		res, err := pipes[i].Run()
		if err != nil {
			t.Fatalf("pipeline %s: %v", pipes[i].Name, err)
		}
		pred := res.Intermediate("pred_holdout")
		if pred == nil || !pred.Has("pred") {
			t.Fatalf("pipeline %s produced no holdout predictions", pipes[i].Name)
		}
		if pred.NumRows() == 0 {
			t.Fatalf("pipeline %s predictions empty", pipes[i].Name)
		}
	}
}

func TestSharedPrefixAcrossPipelines(t *testing.T) {
	// The dedup story: early intermediates are identical across pipelines.
	env := Env(150, 400, 2)
	pipes, err := Build(env)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := pipes[0].Run() // p1_v0
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pipes[1].Run() // p1_v1
	if err != nil {
		t.Fatal(err)
	}
	a := r1.Intermediate("joined")
	b := r2.Intermediate("joined")
	if a.NumRows() != b.NumRows() {
		t.Fatal("joined shapes differ across variants")
	}
	ac, _ := a.Col("finishedsquarefeet").AsFloats()
	bc, _ := b.Col("finishedsquarefeet").AsFloats()
	for i := range ac {
		if ac[i] != bc[i] {
			t.Fatal("shared prefix intermediates differ — dedup would never fire")
		}
	}
	// But their predictions differ (different hyperparameters).
	ap := r1.Intermediate("pred_holdout").Col("pred").F
	bp := r2.Intermediate("pred_holdout").Col("pred").F
	same := true
	for i := range ap {
		if ap[i] != bp[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("hyperparameter variants produced identical predictions")
	}
}
