package cas

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mistique/internal/faultfs"
)

// Key is the SHA-256 of a chunk's payload: the chunk's identity and
// its address in the table.
type Key [32]byte

// KeyOf hashes a payload into its content address.
func KeyOf(data []byte) Key { return sha256.Sum256(data) }

func (k Key) String() string { return hex.EncodeToString(k[:8]) }

var (
	// ErrCorrupt marks structural damage: a CRC mismatch, a truncated
	// index, an offset pointing past a segment. Callers must treat the
	// payload as unavailable, never as approximately right.
	ErrCorrupt = errors.New("cas: corrupt")
	// ErrNotFound is returned for keys the table has never stored or
	// has garbage-collected.
	ErrNotFound = errors.New("cas: chunk not found")
	// ErrUnsupported is returned for index/object files written by a
	// future format version; the file is left in place.
	ErrUnsupported = errors.New("cas: unsupported format version")
)

const (
	idxMagic   = "MQCI"
	idxVersion = 1
	indexName  = "INDEX.bin"

	maxIndexSegs   = 1 << 20
	maxIndexChunks = 1 << 24
	maxChunkSize   = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// entry is one chunk's row in the table. Until the first Flush the
// payload lives in data; afterwards it lives at (seg, off, size) in an
// immutable segment file, guarded by crc.
type entry struct {
	seg  int // -1 while pending in memory
	off  int64
	size int
	crc  uint32
	refs int
	data []byte
}

// TableStats is a point-in-time snapshot of table counters.
type TableStats struct {
	Chunks        int   // live entries, pending included
	PendingChunks int   // entries not yet flushed to a segment
	LiveBytes     int64 // logical bytes across live entries
	DiskBytes     int64 // bytes across published segment files
	Segments      int
	DedupHits     int64 // Put calls answered by an existing entry
	DedupBytes    int64 // payload bytes those hits avoided storing
	Flushes       int64
	GCChunks      int64 // entries dropped by GC over the table lifetime
	GCBytes       int64
}

// Table is a refcounted content-addressed chunk store backed by
// immutable segment files plus a CRC-enveloped index. Refcounts are
// in-memory only: the object layer re-derives them on open from its
// own manifest, which keeps the two files crash-consistent without a
// cross-file transaction.
type Table struct {
	dir string
	fs  faultfs.FS

	mu      sync.Mutex
	entries map[Key]*entry
	segs    map[int]int64 // segment id -> file size
	nextSeg int
	pending []Key // insertion order of unflushed entries
	dirty   bool  // membership changed since the last index publish
	stats   TableStats
}

// OpenTable opens (or creates) a chunk table in dir. A missing index
// means an empty table; a corrupt index fails with ErrCorrupt rather
// than silently dropping chunks. Orphan temp files and segments the
// index does not reference — both produced only by crashes between
// publishes — are swept.
func OpenTable(dir string, fs faultfs.FS) (*Table, error) {
	if fs == nil {
		fs = faultfs.OS()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	t := &Table{
		dir:     dir,
		fs:      fs,
		entries: map[Key]*entry{},
		segs:    map[int]int64{},
	}
	raw, err := os.ReadFile(filepath.Join(dir, indexName))
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return nil, err
	default:
		next, segs, entries, perr := parseIndex(raw)
		if perr != nil {
			return nil, fmt.Errorf("cas: index %s: %w", indexName, perr)
		}
		t.nextSeg, t.segs, t.entries = next, segs, entries
	}
	t.sweep()
	return t, nil
}

// sweep removes crash leftovers: temp files and segment files the
// index does not know about.
func (t *Table) sweep() {
	names, err := os.ReadDir(t.dir)
	if err != nil {
		return
	}
	for _, de := range names {
		name := de.Name()
		if strings.HasSuffix(name, ".tmp") {
			t.fs.Remove(filepath.Join(t.dir, name))
			continue
		}
		var id int
		if n, _ := fmt.Sscanf(name, "seg_%08d.dat", &id); n == 1 {
			if _, ok := t.segs[id]; !ok {
				t.fs.Remove(filepath.Join(t.dir, name))
			}
		}
	}
}

func segName(id int) string { return fmt.Sprintf("seg_%08d.dat", id) }

// Put stores the payload (or bumps the refcount of the identical chunk
// already present) and returns its key. The payload is buffered in
// memory until Flush publishes a segment.
func (t *Table) Put(data []byte) Key {
	k := KeyOf(data)
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[k]; ok {
		e.refs++
		t.stats.DedupHits++
		t.stats.DedupBytes += int64(e.size)
		return k
	}
	t.entries[k] = &entry{seg: -1, size: len(data), crc: crc32.Checksum(data, castagnoli), refs: 1, data: append([]byte(nil), data...)}
	t.pending = append(t.pending, k)
	t.dirty = true
	return k
}

// Has reports whether the key is present (pending or flushed).
func (t *Table) Has(k Key) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.entries[k]
	return ok
}

// Refs returns the current reference count of the key (0 if absent).
func (t *Table) Refs(k Key) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[k]; ok {
		return e.refs
	}
	return 0
}

// AddRef bumps the refcount of an existing chunk; the object layer
// uses it to re-derive counts from its manifest on open.
func (t *Table) AddRef(k Key) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[k]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	e.refs++
	return nil
}

// Release drops one reference. Entries at zero references stay
// readable until the next GC pass reclaims them.
func (t *Table) Release(k Key) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[k]; ok && e.refs > 0 {
		e.refs--
	}
}

// Get returns the chunk payload. Flushed chunks are read back from
// their segment and CRC-verified: a bit flip yields ErrCorrupt, never
// wrong bytes.
func (t *Table) Get(k Key) ([]byte, error) {
	t.mu.Lock()
	e, ok := t.entries[k]
	if !ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	if e.data != nil {
		out := append([]byte(nil), e.data...)
		t.mu.Unlock()
		return out, nil
	}
	seg, off, size, crc := e.seg, e.off, e.size, e.crc
	t.mu.Unlock()

	f, err := os.Open(filepath.Join(t.dir, segName(seg)))
	if err != nil {
		return nil, fmt.Errorf("%w: chunk %s: %v", ErrCorrupt, k, err)
	}
	defer f.Close()
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("%w: chunk %s: %v", ErrCorrupt, k, err)
	}
	if crc32.Checksum(buf, castagnoli) != crc {
		return nil, fmt.Errorf("%w: chunk %s: crc mismatch", ErrCorrupt, k)
	}
	return buf, nil
}

// Flush publishes pending chunks into a new immutable segment and then
// rewrites the index, each with temp → write → fsync → rename →
// fsync-dir. A crash at any syscall leaves either the previous
// durable state or the new one.
func (t *Table) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Table) flushLocked() error {
	if len(t.pending) > 0 {
		id := t.nextSeg
		var segSize int64
		offs := make(map[Key]int64, len(t.pending))
		err := t.publishLocked("seg-*.tmp", segName(id), func(f faultfs.File) error {
			for _, k := range t.pending {
				e := t.entries[k]
				offs[k] = segSize
				if _, err := f.Write(e.data); err != nil {
					return err
				}
				segSize += int64(e.size)
			}
			return nil
		})
		if err != nil {
			return err
		}
		for _, k := range t.pending {
			e := t.entries[k]
			e.seg, e.off, e.data = id, offs[k], nil
		}
		t.pending = t.pending[:0]
		t.segs[id] = segSize
		t.nextSeg = id + 1
		t.stats.Flushes++
	}
	if !t.dirty {
		return nil
	}
	if err := t.writeIndexLocked(); err != nil {
		return err
	}
	t.dirty = false
	return nil
}

// publishLocked writes a file through the crash-safe temp → fsync →
// rename → fsync-dir sequence shared by segments and the index.
func (t *Table) publishLocked(pattern, final string, write func(faultfs.File) error) error {
	f, err := t.fs.CreateTemp(t.dir, pattern)
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		t.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		t.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		t.fs.Remove(tmp)
		return err
	}
	if err := t.fs.Rename(tmp, filepath.Join(t.dir, final)); err != nil {
		t.fs.Remove(tmp)
		return err
	}
	// Post-publish directory sync failures are reported: the caller
	// retries the whole publish, which is idempotent.
	return t.fs.SyncDir(t.dir)
}

func (t *Table) writeIndexLocked() error {
	return t.publishLocked("index-*.tmp", indexName, func(f faultfs.File) error {
		_, err := f.Write(t.marshalIndexLocked())
		return err
	})
}

func (t *Table) marshalIndexLocked() []byte {
	var flushed []Key
	for k, e := range t.entries {
		if e.seg >= 0 {
			flushed = append(flushed, k)
		}
	}
	sort.Slice(flushed, func(i, j int) bool {
		a, b := t.entries[flushed[i]], t.entries[flushed[j]]
		if a.seg != b.seg {
			return a.seg < b.seg
		}
		return a.off < b.off
	})
	segIDs := make([]int, 0, len(t.segs))
	for id := range t.segs {
		segIDs = append(segIDs, id)
	}
	sort.Ints(segIDs)

	buf := make([]byte, 0, 16+12*len(segIDs)+52*len(flushed))
	buf = append(buf, idxMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, idxVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.nextSeg))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(segIDs)))
	for _, id := range segIDs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.segs[id]))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(flushed)))
	for _, k := range flushed {
		e := t.entries[k]
		buf = append(buf, k[:]...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.seg))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.off))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.size))
		buf = binary.LittleEndian.AppendUint32(buf, e.crc)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// parseIndex decodes an index image. It is a pure function so hostile
// inputs can be fuzzed directly; every malformation returns ErrCorrupt
// (or ErrUnsupported for future versions), never a panic and never a
// partially-believed table.
func parseIndex(raw []byte) (nextSeg int, segs map[int]int64, entries map[Key]*entry, err error) {
	fail := func(msg string) (int, map[int]int64, map[Key]*entry, error) {
		return 0, nil, nil, fmt.Errorf("%w: %s", ErrCorrupt, msg)
	}
	if len(raw) < 4+2+4+4+4+4 {
		return fail("short index")
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return fail("index crc mismatch")
	}
	if string(body[:4]) != idxMagic {
		return fail("bad magic")
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != idxVersion {
		return 0, nil, nil, fmt.Errorf("%w: index version %d", ErrUnsupported, v)
	}
	p := 6
	need := func(n int) bool { return len(body)-p >= n }
	if !need(8) {
		return fail("truncated header")
	}
	nextSeg = int(binary.LittleEndian.Uint32(body[p:]))
	nSegs := int(binary.LittleEndian.Uint32(body[p+4:]))
	p += 8
	if nSegs > maxIndexSegs || !need(nSegs*12) {
		return fail("bad segment count")
	}
	segs = make(map[int]int64, nSegs)
	for i := 0; i < nSegs; i++ {
		id := int(binary.LittleEndian.Uint32(body[p:]))
		size := int64(binary.LittleEndian.Uint64(body[p+4:]))
		p += 12
		if id >= nextSeg || size < 0 {
			return fail("segment out of range")
		}
		if _, dup := segs[id]; dup {
			return fail("duplicate segment")
		}
		segs[id] = size
	}
	if !need(4) {
		return fail("truncated chunk count")
	}
	nChunks := int(binary.LittleEndian.Uint32(body[p:]))
	p += 4
	if nChunks > maxIndexChunks || !need(nChunks*52) {
		return fail("bad chunk count")
	}
	entries = make(map[Key]*entry, nChunks)
	for i := 0; i < nChunks; i++ {
		var k Key
		copy(k[:], body[p:])
		seg := int(binary.LittleEndian.Uint32(body[p+32:]))
		off := int64(binary.LittleEndian.Uint64(body[p+36:]))
		size := int(binary.LittleEndian.Uint32(body[p+44:]))
		crc := binary.LittleEndian.Uint32(body[p+48:])
		p += 52
		segSize, ok := segs[seg]
		if !ok || off < 0 || size > maxChunkSize || off+int64(size) > segSize {
			return fail("chunk outside segment")
		}
		if _, dup := entries[k]; dup {
			return fail("duplicate chunk key")
		}
		entries[k] = &entry{seg: seg, off: off, size: size, crc: crc}
	}
	if p != len(body) {
		return fail("trailing bytes")
	}
	return nextSeg, segs, entries, nil
}

// GC reclaims zero-reference entries and compacts segments whose live
// fraction fell below half: live chunks are rewritten into a fresh
// segment, the index is republished, and only then are dead segment
// files removed — a crash mid-GC leaves every referenced chunk intact.
func (t *Table) GC() (droppedChunks int, reclaimedBytes int64, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()

	for k, e := range t.entries {
		if e.refs == 0 {
			droppedChunks++
			reclaimedBytes += int64(e.size)
			if e.seg < 0 {
				// Still pending: drop it from the unflushed queue too.
				for i, pk := range t.pending {
					if pk == k {
						t.pending = append(t.pending[:i], t.pending[i+1:]...)
						break
					}
				}
			}
			delete(t.entries, k)
			t.dirty = true
		}
	}
	t.stats.GCChunks += int64(droppedChunks)
	t.stats.GCBytes += reclaimedBytes

	live := map[int]int64{}
	for _, e := range t.entries {
		if e.seg >= 0 {
			live[e.seg] += int64(e.size)
		}
	}
	var dead []int
	for id, size := range t.segs {
		switch {
		case live[id] == 0:
			dead = append(dead, id)
		case live[id]*2 < size:
			// Mostly-dead segment: migrate its live chunks back to the
			// pending queue so the flush below rewrites them compactly.
			for k, e := range t.entries {
				if e.seg != id {
					continue
				}
				data, gerr := t.getPayloadLocked(e)
				if gerr != nil {
					return droppedChunks, reclaimedBytes, gerr
				}
				e.seg, e.off, e.data = -1, 0, data
				t.pending = append(t.pending, k)
			}
			dead = append(dead, id)
		}
	}
	if len(dead) == 0 && !t.dirty {
		return droppedChunks, reclaimedBytes, nil
	}
	for _, id := range dead {
		delete(t.segs, id)
	}
	t.dirty = true
	if err := t.flushLocked(); err != nil {
		return droppedChunks, reclaimedBytes, err
	}
	for _, id := range dead {
		t.fs.Remove(filepath.Join(t.dir, segName(id)))
	}
	return droppedChunks, reclaimedBytes, nil
}

func (t *Table) getPayloadLocked(e *entry) ([]byte, error) {
	if e.data != nil {
		return append([]byte(nil), e.data...), nil
	}
	f, err := os.Open(filepath.Join(t.dir, segName(e.seg)))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	defer f.Close()
	buf := make([]byte, e.size)
	if _, err := f.ReadAt(buf, e.off); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if crc32.Checksum(buf, castagnoli) != e.crc {
		return nil, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	return buf, nil
}

// Stats returns a snapshot of the table counters.
func (t *Table) Stats() TableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.Chunks = len(t.entries)
	s.PendingChunks = len(t.pending)
	s.Segments = len(t.segs)
	for _, e := range t.entries {
		s.LiveBytes += int64(e.size)
	}
	for _, size := range t.segs {
		s.DiskBytes += size
	}
	return s
}
