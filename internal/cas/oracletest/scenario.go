// Package oracletest holds the differential lineage-testing harness for
// cross-version storage: a simulated fine-tuning run whose epochs are
// logged twice — into a plain full-copy store and into a versioned
// CAS+delta store — so tests (and examples/epochs) can assert that every
// read over the delta-encoded store is bit-exact against the baseline.
//
// The scenario is deterministic: a SimpleCNN whose convolutional stack is
// effectively frozen (only a few rows of the fc1 weight matrix drift per
// epoch), exactly the paper's fine-tuned-VGG16 shape. Frozen layers
// produce byte-identical activation columns across epochs (exact dedup);
// the drifting fc rows produce near-identical columns (delta encoding);
// the untouched fc rows stay identical (exact dedup again).
package oracletest

import (
	"fmt"

	"mistique"
	"mistique/internal/data"
	"mistique/internal/nn"
	"mistique/internal/tensor"
)

// FCLayers are the layer indices of SimpleCNN's fine-tuning head
// (fc1, relu_fc1, logits) — the layers whose activations drift across
// epochs. Restricting logging to these keeps oracle runs fast while
// still exercising full, deduped and delta-encoded columns.
var FCLayers = []int{11, 12, 13}

// Network aliases nn.Network so examples need not import internal/nn.
type Network = nn.Network

// Scenario is one simulated fine-tuning run.
type Scenario struct {
	// Input is the fixed evaluation batch every epoch is logged against.
	Input *tensor.T4
	// master accumulates the weight drift; each epoch's snapshot is an
	// independent clone so RERUN stays correct for every version.
	master *nn.Network
	seed   int64
	// PerturbRows is how many fc1 output rows drift per epoch (their
	// columns delta-encode; the rest dedup exactly).
	PerturbRows int
	// Eps scales the drift. Small enough that drifted activation values
	// land in the same MinHash bucket, so the similarity gate accepts
	// the delta; large enough that columns are not byte-identical.
	Eps float32
}

// NewScenario builds a deterministic run: nImages synthetic images and a
// SimpleCNN seeded from seed.
func NewScenario(seed int64, nImages int) *Scenario {
	imgs, _ := data.Images(nImages, 4, seed)
	return &Scenario{
		Input:       imgs,
		master:      nn.SimpleCNN("cnn", 4, seed),
		seed:        seed,
		PerturbRows: 6,
		Eps:         2e-5,
	}
}

// Advance applies epoch's weight drift to the master network: a rotating
// window of fc1 rows gets a tiny deterministic nudge, simulating a
// fine-tuning step that touches part of the head. Epoch 0 is the
// pre-training checkpoint and changes nothing.
func (sc *Scenario) Advance(epoch int) {
	if epoch == 0 {
		return
	}
	fc1 := sc.master.Layers[11].(*nn.Dense)
	for k := 0; k < sc.PerturbRows; k++ {
		row := (epoch*3 + k) % fc1.Out
		w := fc1.Weight.W[row*fc1.In : (row+1)*fc1.In]
		for i := range w {
			// Sign-alternating drift that depends on epoch, so consecutive
			// generations differ from each other, not just from the root.
			w[i] += sc.Eps * float32((i+epoch)%5-2)
		}
	}
}

// Snapshot clones the master network at its current weights. Each logged
// version keeps its own clone (LogDNN retains the network for RERUN), so
// re-running any epoch reproduces that epoch's activations even after the
// master drifts on.
func (sc *Scenario) Snapshot() *nn.Network {
	clone := nn.SimpleCNN("cnn", 4, sc.seed)
	if err := clone.LoadWeights(sc.master.SaveWeights()); err != nil {
		panic(fmt.Sprintf("oracletest: clone weights: %v", err))
	}
	return clone
}

// VersionName names one epoch's model version.
func VersionName(prefix string, epoch int) string {
	return fmt.Sprintf("%s@e%d", prefix, epoch)
}

// LogEpoch logs net as epoch's version of prefix into sys. linked chains
// the version to the previous epoch (delta storage + lineage link);
// unlinked logs an independent full copy. layers restricts which layers
// are logged (nil = all).
func LogEpoch(sys *mistique.System, net *nn.Network, in *tensor.T4, prefix string, epoch int, scheme mistique.Scheme, linked bool, layers []int) (*mistique.LogReport, error) {
	opts := mistique.DNNLogOptions{Scheme: scheme, Layers: layers}
	if linked && epoch > 0 {
		opts.Parent = VersionName(prefix, epoch-1)
	}
	return sys.LogDNN(VersionName(prefix, epoch), net, in, opts)
}

// RunEpochs drives the whole scenario: for each epoch it advances the
// master, snapshots it, and logs the snapshot into every supplied system
// under that system's linkage mode. It returns the per-epoch snapshots so
// callers can re-log them later (the heal-by-rerun leg of the oracle).
func (sc *Scenario) RunEpochs(epochs int, scheme mistique.Scheme, layers []int, systems ...Target) ([]*nn.Network, error) {
	nets := make([]*nn.Network, 0, epochs)
	for e := 0; e < epochs; e++ {
		sc.Advance(e)
		net := sc.Snapshot()
		nets = append(nets, net)
		for _, t := range systems {
			if _, err := LogEpoch(t.Sys, net, sc.Input, t.Prefix, e, scheme, t.Linked, layers); err != nil {
				return nil, fmt.Errorf("log epoch %d into %s: %w", e, t.Prefix, err)
			}
		}
	}
	return nets, nil
}

// Target is one destination store for RunEpochs.
type Target struct {
	Sys    *mistique.System
	Prefix string
	// Linked stores each epoch as a delta generation against the previous
	// one; false stores every epoch as an independent full copy.
	Linked bool
}
