package oracletest

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"mistique"
	"mistique/internal/colstore"
	"mistique/internal/cost"
	"mistique/internal/tensor"
)

// The differential oracle: the same fine-tuning run is logged into a
// plain store (full copies, every dedup path disabled) and a versioned
// store (exact dedup + delta generations + CAS weight snapshots), and
// every diagnostic query must answer bit-exactly on both — per version,
// per scheme, after Compact chain-collapse, and after healing a destroyed
// partition by re-logging.

const (
	oracleEpochs = 4
	oracleImages = 32
)

// fcInterms are the layer (= intermediate) names behind FCLayers.
var fcInterms = []string{"fc1", "relu_fc1", "logits"}

func openPlain(t *testing.T, dir string) *mistique.System {
	t.Helper()
	sys, err := mistique.Open(dir, mistique.Config{
		Store: colstore.Config{
			Mode:               colstore.ModeArrival,
			DisableExactDedup:  true,
			DisableApproxDedup: true,
		},
	})
	if err != nil {
		t.Fatalf("open plain system: %v", err)
	}
	return sys
}

func openVersioned(t *testing.T, dir string, deltaMaxDepth int) *mistique.System {
	t.Helper()
	sys, err := mistique.Open(dir, mistique.Config{
		Store: colstore.Config{DeltaMaxDepth: deltaMaxDepth},
	})
	if err != nil {
		t.Fatalf("open versioned system: %v", err)
	}
	return sys
}

// fetchRead forces the READ strategy so the assertion exercises the
// stored (possibly delta-encoded) bytes, never a model re-run.
func fetchRead(t *testing.T, sys *mistique.System, model, interm string) *tensor.Dense {
	t.Helper()
	res, err := sys.Fetch(model, interm, nil, 0, cost.Read)
	if err != nil {
		t.Fatalf("read %s/%s: %v", model, interm, err)
	}
	return res.Data
}

func sameMatrix(t *testing.T, ctx string, want, got *tensor.Dense) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", ctx, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		// Bit-level comparison: NaN payloads and signed zeros must match too.
		if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
			t.Fatalf("%s: element %d: %v != %v", ctx, i, got.Data[i], want.Data[i])
		}
	}
}

func sameInts(t *testing.T, ctx string, want, got []int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d rows != %d rows", ctx, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: row %d: %d != %d", ctx, i, got[i], want[i])
		}
	}
}

func sameTopK(t *testing.T, ctx string, want, got []mistique.TopKEntry) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d entries != %d", ctx, len(got), len(want))
	}
	for i := range want {
		if want[i].Row != got[i].Row ||
			math.Float32bits(want[i].Value) != math.Float32bits(got[i].Value) {
			t.Fatalf("%s: rank %d: %+v != %+v", ctx, i, got[i], want[i])
		}
	}
}

// expected is the plain-store answer set the versioned store must match.
type expected struct {
	matrices map[string]*tensor.Dense
	filter   map[string][]int
	topk     map[string][]mistique.TopKEntry
	rows     map[string]*tensor.Dense
}

// collect runs every oracle query class against sys's prefix-named
// versions and records the answers.
func collect(t *testing.T, sys *mistique.System, prefix string) *expected {
	t.Helper()
	e := &expected{
		matrices: make(map[string]*tensor.Dense),
		filter:   make(map[string][]int),
		topk:     make(map[string][]mistique.TopKEntry),
		rows:     make(map[string]*tensor.Dense),
	}
	for epoch := 0; epoch < oracleEpochs; epoch++ {
		model := VersionName(prefix, epoch)
		for _, interm := range fcInterms {
			e.matrices[model+"/"+interm] = fetchRead(t, sys, model, interm)
		}
		rows, err := sys.FilterRows(model, "fc1", "u3", colstore.Gt, 0)
		if err != nil {
			t.Fatalf("filter %s: %v", model, err)
		}
		e.filter[model] = rows
		top, err := sys.TopK(model, "fc1", "u7", 5)
		if err != nil {
			t.Fatalf("topk %s: %v", model, err)
		}
		e.topk[model] = top
		rr, err := sys.GetRows(model, "relu_fc1", nil, 1, oracleImages/2)
		if err != nil {
			t.Fatalf("rows %s: %v", model, err)
		}
		e.rows[model] = rr
	}
	return e
}

// compare re-runs every oracle query against sys and asserts bit-exact
// agreement with the recorded answers.
func compare(t *testing.T, leg string, sys *mistique.System, prefix string, want *expected) {
	t.Helper()
	for epoch := 0; epoch < oracleEpochs; epoch++ {
		model := VersionName(prefix, epoch)
		for _, interm := range fcInterms {
			got := fetchRead(t, sys, model, interm)
			sameMatrix(t, leg+": "+model+"/"+interm, want.matrices[VersionName("plain", epoch)+"/"+interm], got)
		}
		rows, err := sys.FilterRows(model, "fc1", "u3", colstore.Gt, 0)
		if err != nil {
			t.Fatalf("%s: filter %s: %v", leg, model, err)
		}
		sameInts(t, leg+": filter "+model, want.filter[VersionName("plain", epoch)], rows)
		top, err := sys.TopK(model, "fc1", "u7", 5)
		if err != nil {
			t.Fatalf("%s: topk %s: %v", leg, model, err)
		}
		sameTopK(t, leg+": topk "+model, want.topk[VersionName("plain", epoch)], top)
		rr, err := sys.GetRows(model, "relu_fc1", nil, 1, oracleImages/2)
		if err != nil {
			t.Fatalf("%s: rows %s: %v", leg, model, err)
		}
		sameMatrix(t, leg+": rows "+model, want.rows[VersionName("plain", epoch)], rr)
	}
}

// TestOracleDifferential is the tentpole proof: for every quantization
// scheme, a perturbed fine-tuning run logged as full copies and as delta
// generations answers identically — including after collapsing chains
// with Compact under a tighter depth bound, and after destroying a
// partition file and healing the store by re-logging the retained
// checkpoints.
func TestOracleDifferential(t *testing.T) {
	schemes := []mistique.Scheme{
		mistique.SchemeFull, mistique.SchemeLP, mistique.Scheme8Bit, mistique.SchemeThreshold,
	}
	for _, scheme := range schemes {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			t.Parallel()
			sc := NewScenario(7, oracleImages)
			plainDir, versDir := t.TempDir(), t.TempDir()
			plain := openPlain(t, plainDir)
			vers := openVersioned(t, versDir, 0)

			nets, err := sc.RunEpochs(oracleEpochs, scheme, FCLayers,
				Target{Sys: plain, Prefix: "plain", Linked: false},
				Target{Sys: vers, Prefix: "vers", Linked: true},
			)
			if err != nil {
				t.Fatal(err)
			}

			want := collect(t, plain, "plain")
			compare(t, "live", vers, "vers", want)

			// The lineage chain must link every epoch back to the root.
			chain, err := vers.Lineage(VersionName("vers", oracleEpochs-1))
			if err != nil {
				t.Fatalf("lineage: %v", err)
			}
			if len(chain) != oracleEpochs {
				t.Fatalf("lineage: %d entries, want %d", len(chain), oracleEpochs)
			}
			for i, e := range chain {
				wantName := VersionName("vers", oracleEpochs-1-i)
				if e.Model != wantName {
					t.Fatalf("lineage[%d] = %s, want %s", i, e.Model, wantName)
				}
			}
			if scheme == mistique.SchemeFull {
				// FULL keeps raw float bits, so perturbed columns cannot
				// exact-dedup: some chain must actually be delta-encoded.
				if chain[0].MaxDeltaDepth == 0 {
					t.Fatalf("lineage head has no delta chain: %+v", chain[0])
				}
				if chain[0].WeightBytes == 0 || chain[0].WeightDepth == 0 {
					t.Fatalf("lineage head has no delta-stored weight snapshot: %+v", chain[0])
				}
			}

			// Leg 2: flush, reopen under a tighter chain bound, Compact —
			// chains deeper than 1 collapse in place — and re-verify reads.
			if err := vers.Flush(); err != nil {
				t.Fatalf("flush versioned: %v", err)
			}
			if err := vers.Close(); err != nil {
				t.Fatalf("close versioned: %v", err)
			}
			vers = openVersioned(t, versDir, 1)
			if _, err := vers.CompactStore(); err != nil {
				t.Fatalf("compact: %v", err)
			}
			compare(t, "post-compact", vers, "vers", want)

			// Leg 3: destroy one partition file, reopen, heal by re-logging
			// every retained checkpoint, and re-verify.
			if err := vers.Flush(); err != nil {
				t.Fatalf("flush before corruption: %v", err)
			}
			if err := vers.Close(); err != nil {
				t.Fatalf("close before corruption: %v", err)
			}
			parts, err := filepath.Glob(filepath.Join(versDir, "data", "partition_*"))
			if err != nil || len(parts) == 0 {
				t.Fatalf("find partitions: %v (%d found)", err, len(parts))
			}
			if err := os.Remove(parts[0]); err != nil {
				t.Fatalf("remove partition: %v", err)
			}
			vers = openVersioned(t, versDir, 0)
			for epoch, net := range nets {
				if _, err := LogEpoch(vers, net, sc.Input, "vers", epoch, scheme, true, FCLayers); err != nil {
					t.Fatalf("heal re-log epoch %d: %v", epoch, err)
				}
			}
			compare(t, "post-heal", vers, "vers", want)
			if err := vers.Close(); err != nil {
				t.Fatalf("close healed: %v", err)
			}
			if err := plain.Close(); err != nil {
				t.Fatalf("close plain: %v", err)
			}
		})
	}
}

// TestVersionedStoreDedupRatio pins the acceptance bar: a 10-epoch
// fine-tune (frozen conv stack, drifting fc head) must store at least 3x
// smaller under exact dedup + delta generations + CAS weight snapshots
// than as full per-epoch copies, measured in on-disk bytes.
func TestVersionedStoreDedupRatio(t *testing.T) {
	const epochs = 10
	sc := NewScenario(11, 64)
	plainDir, versDir := t.TempDir(), t.TempDir()
	plain := openPlain(t, plainDir)
	vers := openVersioned(t, versDir, 0)
	// pool2 (frozen conv output, dedups exactly) plus the drifting head.
	layers := append([]int{9}, FCLayers...)

	if _, err := sc.RunEpochs(epochs, mistique.SchemeFull, layers,
		Target{Sys: plain, Prefix: "plain", Linked: false},
		Target{Sys: vers, Prefix: "vers", Linked: true},
	); err != nil {
		t.Fatal(err)
	}
	// Measure right after flush, before any query builds diagnostic
	// indexes under the same data dir.
	if err := plain.Flush(); err != nil {
		t.Fatalf("flush plain: %v", err)
	}
	if err := vers.Flush(); err != nil {
		t.Fatalf("flush versioned: %v", err)
	}
	pb, err := plain.DiskBytes()
	if err != nil {
		t.Fatalf("plain disk bytes: %v", err)
	}
	vb, err := vers.DiskBytes()
	if err != nil {
		t.Fatalf("versioned disk bytes: %v", err)
	}
	if vb <= 0 || pb <= 0 {
		t.Fatalf("degenerate sizes: plain=%d versioned=%d", pb, vb)
	}
	ratio := float64(pb) / float64(vb)
	t.Logf("plain=%d B versioned=%d B ratio=%.2fx", pb, vb, ratio)
	if ratio < 3 {
		t.Fatalf("dedup ratio %.2fx < 3x (plain=%d B, versioned=%d B)", ratio, pb, vb)
	}
}

// TestChainReadRecordsCostError asserts the cost-model feedback loop
// covers delta chains: a cold READ of a version sitting on a delta chain
// must record a mistique_cost_read_rel_error sample, so the calibrated
// read constants keep tracking chain amplification.
func TestChainReadRecordsCostError(t *testing.T) {
	sc := NewScenario(13, oracleImages)
	vers := openVersioned(t, t.TempDir(), 0)
	if _, err := sc.RunEpochs(oracleEpochs, mistique.SchemeFull, FCLayers,
		Target{Sys: vers, Prefix: "vers", Linked: true},
	); err != nil {
		t.Fatal(err)
	}
	last := VersionName("vers", oracleEpochs-1)
	if d := vers.Store().MaxDeltaDepth(last, "logits"); d == 0 {
		t.Fatalf("expected %s/logits on a delta chain", last)
	}
	if err := vers.Store().DropCache(); err != nil {
		t.Fatalf("drop cache: %v", err)
	}
	before := vers.Metrics().Histograms["mistique_cost_read_rel_error"].Count
	if _, err := vers.Fetch(last, "logits", nil, 0, cost.Read); err != nil {
		t.Fatalf("cold chain read: %v", err)
	}
	after := vers.Metrics().Histograms["mistique_cost_read_rel_error"].Count
	if after <= before {
		t.Fatalf("chain read recorded no cost rel-error sample (count %d -> %d)", before, after)
	}
}
