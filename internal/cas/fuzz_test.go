package cas

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"
)

// FuzzCDCBoundaries hammers the chunker with hostile data and config:
// it must never panic, must be deterministic, must respect the
// min/max bounds, and splitting must be lossless.
func FuzzCDCBoundaries(f *testing.F) {
	f.Add([]byte("hello world"), 64, 128, 256)
	f.Add(bytes.Repeat([]byte{0}, 1<<16), 256, 1024, 4096)
	f.Add(bytes.Repeat([]byte{0xff}, 5000), 0, 0, 0)
	f.Add([]byte{}, -1, -1, -1)
	f.Add([]byte("x"), 1<<30, 1, 2)
	f.Fuzz(func(t *testing.T, data []byte, min, avg, max int) {
		cfg := ChunkerConfig{Min: min, Avg: avg, Max: max}
		cuts := Boundaries(data, cfg)
		again := Boundaries(data, cfg)
		if len(cuts) != len(again) {
			t.Fatal("non-deterministic boundaries")
		}
		eff := cfg.withDefaults()
		if eff.validate() != nil {
			eff = ChunkerConfig{}.withDefaults()
		}
		prev := 0
		for i, c := range cuts {
			if c != again[i] {
				t.Fatal("non-deterministic boundary value")
			}
			size := c - prev
			if size <= 0 || size > eff.Max {
				t.Fatalf("chunk size %d outside (0, %d]", size, eff.Max)
			}
			if i < len(cuts)-1 && size < eff.Min {
				t.Fatalf("interior chunk %d below min %d", size, eff.Min)
			}
			prev = c
		}
		if len(data) > 0 && (len(cuts) == 0 || cuts[len(cuts)-1] != len(data)) {
			t.Fatal("boundaries do not cover the input")
		}
		var joined []byte
		for _, chunk := range Split(data, cfg) {
			joined = append(joined, chunk...)
		}
		if !bytes.Equal(joined, data) {
			t.Fatal("split is not lossless")
		}
	})
}

// FuzzChunkTableFile feeds hostile bytes to the index and
// object-manifest parsers: corrupt, truncated, or adversarial input
// must yield a typed error (ErrCorrupt/ErrUnsupported), never a panic
// and never a silently-wrong table.
func FuzzChunkTableFile(f *testing.F) {
	// Seed with valid images so the fuzzer mutates real structure.
	t := &Table{entries: map[Key]*entry{}, segs: map[int]int64{}}
	k := KeyOf([]byte("payload"))
	t.segs[0] = 1024
	t.nextSeg = 1
	t.entries[k] = &entry{seg: 0, off: 0, size: 7, crc: crc32.Checksum([]byte("payload"), castagnoli)}
	f.Add(t.marshalIndexLocked())
	f.Add(marshalObjects(map[string]*object{
		"v0": {chunks: []Key{k}, size: 7, crc: 1},
		"v1": {chunks: []Key{k}, size: 7, crc: 2, depth: 1, base: "v0"},
	}))
	f.Add([]byte(idxMagic))
	f.Add([]byte(objMagic))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if _, _, entries, err := parseIndex(raw); err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrUnsupported) {
				t.Fatalf("untyped index parse error: %v", err)
			}
		} else {
			for _, e := range entries {
				if e.size < 0 || e.off < 0 {
					t.Fatal("parser accepted negative geometry")
				}
			}
		}
		if objs, err := parseObjects(raw); err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrUnsupported) {
				t.Fatalf("untyped object parse error: %v", err)
			}
		} else {
			for name, o := range objs {
				if name == "" || o.size < 0 || (o.depth == 0) != (o.base == "") {
					t.Fatal("parser accepted inconsistent object")
				}
			}
		}
	})
}

// FuzzDeltaDecode attacks the delta reconstruction path: arbitrary
// base/delta corruption must either be caught by the whole-object CRC
// or reconstruct the exact original — wrong bytes must never escape.
func FuzzDeltaDecode(f *testing.F) {
	f.Add([]byte("base bytes here"), []byte("new version bytes"), uint16(4), false)
	f.Add(bytes.Repeat([]byte{7}, 3000), bytes.Repeat([]byte{7}, 3010), uint16(100), true)
	f.Add([]byte{}, []byte{}, uint16(0), false)
	f.Fuzz(func(t *testing.T, base, data []byte, flipPos uint16, flipBase bool) {
		want := crc32.Checksum(data, castagnoli)
		residual := xorBytes(data, base)
		if len(residual) != len(data) {
			t.Fatal("residual length drifted")
		}

		// Honest reconstruction is exact.
		got, err := verifyPayload(xorBytes(residual, base), want, "fuzz")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("honest delta round-trip failed: %v", err)
		}

		// Corrupt one byte of the base or of the residual. The
		// reconstruction must either error (typed) or still equal the
		// original — a CRC collision on a single flipped byte cannot
		// happen, so in practice it always errors.
		cb := append([]byte(nil), base...)
		cr := append([]byte(nil), residual...)
		flipped := false
		if flipBase && len(cb) > 0 {
			cb[int(flipPos)%len(cb)] ^= 0x40
			flipped = true
		} else if !flipBase && len(cr) > 0 {
			cr[int(flipPos)%len(cr)] ^= 0x40
			flipped = true
		}
		got, err = verifyPayload(xorBytes(cr, cb), want, "fuzz")
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped delta decode error: %v", err)
			}
			return
		}
		if !bytes.Equal(got, data) {
			t.Fatal("corrupted delta reconstructed to wrong bytes")
		}
		// Flipping a byte in the common prefix must change the output
		// and therefore fail the CRC; reaching here is only legitimate
		// when the flip landed in a region that cancels out (base tail
		// beyond the payload) or nothing was flipped.
		if flipped && flipBase && int(flipPos)%maxLen(cb) < len(data) {
			t.Fatal("base bit flip escaped the CRC")
		}
		if flipped && !flipBase {
			t.Fatal("residual bit flip escaped the CRC")
		}
	})
}

func maxLen(b []byte) int {
	if len(b) == 0 {
		return 1
	}
	return len(b)
}
