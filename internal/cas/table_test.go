package cas

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mistique/internal/faultfs"
)

func openTable(t *testing.T, dir string) *Table {
	t.Helper()
	tab, err := OpenTable(dir, nil)
	if err != nil {
		t.Fatalf("OpenTable: %v", err)
	}
	return tab
}

func TestTablePutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tab := openTable(t, dir)
	a := randBytes(t, 5000, 1)
	b := randBytes(t, 100, 2)
	ka, kb := tab.Put(a), tab.Put(b)
	for _, tc := range []struct {
		k    Key
		want []byte
	}{{ka, a}, {kb, b}} {
		got, err := tab.Get(tc.k)
		if err != nil {
			t.Fatalf("Get pending: %v", err)
		}
		if !bytes.Equal(got, tc.want) {
			t.Fatal("pending payload mismatch")
		}
	}
	if err := tab.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := tab.Get(ka)
	if err != nil || !bytes.Equal(got, a) {
		t.Fatalf("Get flushed: %v", err)
	}

	// Reopen: refcounts are not persisted, membership is.
	tab2 := openTable(t, dir)
	got, err = tab2.Get(kb)
	if err != nil || !bytes.Equal(got, b) {
		t.Fatalf("Get after reopen: %v", err)
	}
	if tab2.Refs(kb) != 0 {
		t.Fatalf("refs persisted unexpectedly: %d", tab2.Refs(kb))
	}
	if err := tab2.AddRef(kb); err != nil || tab2.Refs(kb) != 1 {
		t.Fatalf("AddRef: %v refs=%d", err, tab2.Refs(kb))
	}
	if err := tab2.AddRef(KeyOf([]byte("missing"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("AddRef missing: %v", err)
	}
}

func TestTableDedup(t *testing.T) {
	tab := openTable(t, t.TempDir())
	data := randBytes(t, 3000, 3)
	k1 := tab.Put(data)
	k2 := tab.Put(append([]byte(nil), data...))
	if k1 != k2 {
		t.Fatal("identical payloads got different keys")
	}
	st := tab.Stats()
	if st.Chunks != 1 || st.DedupHits != 1 || st.DedupBytes != 3000 {
		t.Fatalf("stats = %+v", st)
	}
	if tab.Refs(k1) != 2 {
		t.Fatalf("refs = %d, want 2", tab.Refs(k1))
	}
}

func TestTableGCDropsUnreferenced(t *testing.T) {
	dir := t.TempDir()
	tab := openTable(t, dir)
	keep := tab.Put(randBytes(t, 4096, 4))
	drop := tab.Put(randBytes(t, 4096, 5))
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	tab.Release(drop)
	n, bytesFreed, err := tab.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if n != 1 || bytesFreed != 4096 {
		t.Fatalf("GC dropped %d/%d bytes", n, bytesFreed)
	}
	if _, err := tab.Get(drop); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped chunk still readable: %v", err)
	}
	if _, err := tab.Get(keep); err != nil {
		t.Fatalf("referenced chunk lost by GC: %v", err)
	}
	// The mostly-dead segment was rewritten; reopen must still serve it.
	tab2 := openTable(t, dir)
	if _, err := tab2.Get(keep); err != nil {
		t.Fatalf("referenced chunk lost across reopen: %v", err)
	}
	if _, err := tab2.Get(drop); !errors.Is(err, ErrNotFound) {
		t.Fatal("GC'd chunk resurrected on reopen")
	}
}

func TestTableGCPendingChunk(t *testing.T) {
	tab := openTable(t, t.TempDir())
	k := tab.Put(randBytes(t, 100, 6))
	tab.Release(k)
	if n, _, err := tab.GC(); err != nil || n != 1 {
		t.Fatalf("GC pending: n=%d err=%v", n, err)
	}
	if tab.Stats().PendingChunks != 0 {
		t.Fatal("pending queue not cleaned")
	}
}

func TestTableCorruptChunkDetected(t *testing.T) {
	dir := t.TempDir()
	tab := openTable(t, dir)
	k := tab.Put(randBytes(t, 8192, 7))
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the segment payload.
	seg := filepath.Join(dir, segName(0))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[4000] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Get(k); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip not caught: %v", err)
	}
}

func TestTableCorruptIndexRejected(t *testing.T) {
	dir := t.TempDir()
	tab := openTable(t, dir)
	tab.Put(randBytes(t, 1000, 8))
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	idx := filepath.Join(dir, indexName)
	raw, _ := os.ReadFile(idx)
	raw[len(raw)/2] ^= 0x01
	os.WriteFile(idx, raw, 0o644)
	if _, err := OpenTable(dir, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt index accepted: %v", err)
	}
}

func TestTableSweepRemovesOrphans(t *testing.T) {
	dir := t.TempDir()
	tab := openTable(t, dir)
	tab.Put(randBytes(t, 1000, 9))
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	// Fake crash leftovers: a temp file and a segment the index does
	// not reference.
	os.WriteFile(filepath.Join(dir, "seg-12345.tmp"), []byte("junk"), 0o644)
	os.WriteFile(filepath.Join(dir, segName(99)), []byte("junk"), 0o644)
	openTable(t, dir)
	for _, name := range []string{"seg-12345.tmp", segName(99)} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived sweep", name)
		}
	}
}

func TestTableFlushFailureIsRetryable(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS())
	tab, err := OpenTable(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	data := randBytes(t, 2048, 10)
	k := tab.Put(data)
	inj.Arm(faultfs.Fault{Op: faultfs.OpSync, PathContains: "seg-"})
	if err := tab.Flush(); err == nil {
		t.Fatal("injected sync fault did not surface")
	}
	inj.Disarm()
	if err := tab.Flush(); err != nil {
		t.Fatalf("retry after fault: %v", err)
	}
	got, err := tab.Get(k)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("payload lost across failed flush: %v", err)
	}
}
