package cas

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openStore(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	s, err := OpenStore(dir, cfg)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

// perturb rewrites one contiguous window covering the given fraction
// of the blob — a stand-in for one epoch of fine-tuning touching a
// subset of the layers while the rest of the weights stay put.
func perturb(base []byte, seed int64, fraction float64) []byte {
	out := append([]byte(nil), base...)
	n := int(float64(len(out)) * fraction)
	if n < 1 {
		n = 1
	}
	start := int(uint64(seed*7919) % uint64(len(out)-n+1))
	for i := 0; i < n; i++ {
		out[start+i] ^= byte(seed) | 1
	}
	return out
}

func TestStoreFullRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Config{})
	data := randBytes(t, 200_000, 11)
	info, err := s.Put("v0", data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Depth != 0 || info.Base != "" || info.Size != 200_000 || info.Chunks == 0 {
		t.Fatalf("info = %+v", info)
	}
	got, err := s.Get("v0")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get: %v", err)
	}
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Config{})
	got, err = s2.Get("v0")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after reopen: %v", err)
	}
}

func TestStoreDeltaChainRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Config{MaxDepth: 3})
	versions := [][]byte{randBytes(t, 150_000, 12)}
	if _, err := s.Put("v0", versions[0]); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		versions = append(versions, perturb(versions[i-1], int64(i), 0.01))
		info, err := s.PutDelta(fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i-1), versions[i])
		if err != nil {
			t.Fatal(err)
		}
		wantDepth := i
		if wantDepth > 3 {
			// Chain bound: v4 restarts at a full object.
			wantDepth = (i - 1) % 4
			_ = wantDepth
		}
		if info.Depth > 3 {
			t.Fatalf("v%d depth %d exceeds MaxDepth", i, info.Depth)
		}
		if i <= 3 && (info.Depth != i || info.Base == "") {
			t.Fatalf("v%d info = %+v", i, info)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Bit-exact reconstruction for every version, before and after
	// reopen.
	for _, st := range []*Store{s, openStore(t, dir, Config{MaxDepth: 3})} {
		for i, want := range versions {
			got, err := st.Get(fmt.Sprintf("v%d", i))
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("v%d: %v", i, err)
			}
		}
	}
}

func TestStoreDeltaDedupsSparseResiduals(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{})
	base := randBytes(t, 500_000, 13)
	if _, err := s.Put("v0", base); err != nil {
		t.Fatal(err)
	}
	info, err := s.PutDelta("v1", "v0", perturb(base, 14, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	if info.NewBytes > int64(len(base))/2 {
		t.Fatalf("sparse residual stored %d new bytes of %d — no dedup win", info.NewBytes, len(base))
	}
}

func TestStorePutDeltaFallsBackToFull(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{MaxDepth: 1})
	if _, err := s.PutDelta("v1", "missing-base", randBytes(t, 1000, 15)); err != nil {
		t.Fatal(err)
	}
	if info, _ := s.Info("v1"); info.Depth != 0 || info.Base != "" {
		t.Fatalf("missing base should store full: %+v", info)
	}
	if _, err := s.PutDelta("v2", "v1", randBytes(t, 1000, 16)); err != nil {
		t.Fatal(err)
	}
	if info, _ := s.Info("v2"); info.Depth != 1 {
		t.Fatalf("v2 info: %+v", info)
	}
	// v2 is at MaxDepth: the next generation restarts full.
	if _, err := s.PutDelta("v3", "v2", randBytes(t, 1000, 17)); err != nil {
		t.Fatal(err)
	}
	if info, _ := s.Info("v3"); info.Depth != 0 {
		t.Fatalf("depth bound not enforced: %+v", info)
	}
	// Self-referential delta degrades to full, never loops.
	if _, err := s.PutDelta("v1", "v1", randBytes(t, 1000, 18)); err != nil {
		t.Fatal(err)
	}
	if info, _ := s.Info("v1"); info.Depth != 0 {
		t.Fatalf("self-delta: %+v", info)
	}
}

func TestStoreCompactCollapsesDeepChains(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Config{MaxDepth: 4})
	data := randBytes(t, 100_000, 19)
	if _, err := s.Put("v0", data); err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{"v0": data}
	prev := data
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("v%d", i)
		prev = perturb(prev, int64(20+i), 0.01)
		want[name] = prev
		if _, err := s.PutDelta(name, fmt.Sprintf("v%d", i-1), prev); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(2); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for name, o := range s.objects {
		if o.depth > 2 {
			t.Fatalf("%s still at depth %d after collapse", name, o.depth)
		}
	}
	for name, w := range want {
		got, err := s.Get(name)
		if err != nil || !bytes.Equal(got, w) {
			t.Fatalf("%s after compact: %v", name, err)
		}
	}
	// Compact persisted: a reopen serves the collapsed state.
	s2 := openStore(t, dir, Config{MaxDepth: 4})
	for name, w := range want {
		got, err := s2.Get(name)
		if err != nil || !bytes.Equal(got, w) {
			t.Fatalf("%s after compact+reopen: %v", name, err)
		}
	}
}

func TestStoreDeleteCollapsesDependents(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{})
	base := randBytes(t, 80_000, 22)
	next := perturb(base, 23, 0.01)
	if _, err := s.Put("v0", base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutDelta("v1", "v0", next); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("v0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("v0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted base still present: %v", err)
	}
	got, err := s.Get("v1")
	if err != nil || !bytes.Equal(got, next) {
		t.Fatalf("dependent lost its data when base deleted: %v", err)
	}
	if info, _ := s.Info("v1"); info.Depth != 0 {
		t.Fatalf("dependent not collapsed: %+v", info)
	}
	if err := s.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing: %v", err)
	}
}

func TestStoreDeleteReleasesChunksForGC(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{})
	if _, err := s.Put("v0", randBytes(t, 64_000, 24)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("v0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(0); err != nil {
		t.Fatal(err)
	}
	if st := s.Table().Stats(); st.Chunks != 0 || st.DiskBytes != 0 {
		t.Fatalf("deleted object's chunks not reclaimed: %+v", st)
	}
}

func TestStoreCorruptReconstructionCaught(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Config{})
	base := randBytes(t, 120_000, 25)
	if _, err := s.Put("v0", base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutDelta("v1", "v0", perturb(base, 26, 0.01)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the segment holding base + residual chunks: the
	// whole-object CRC must refuse both the base and the delta read.
	seg := filepath.Join(dir, segName(0))
	raw, _ := os.ReadFile(seg)
	raw[len(raw)/3] ^= 0x80
	os.WriteFile(seg, raw, 0o644)
	s2 := openStore(t, dir, Config{})
	sawCorrupt := false
	for _, name := range []string{"v0", "v1"} {
		if _, err := s2.Get(name); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: error not typed: %v", name, err)
			}
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("bit flip in segment went unnoticed")
	}
}

func TestStoreObjectsListingAndNames(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{})
	if _, err := s.Put("", []byte("x")); err == nil {
		t.Fatal("empty name accepted")
	}
	s.Put("b", []byte("bb"))
	s.Put("a", []byte("aa"))
	objs := s.Objects()
	if len(objs) != 2 || objs[0].Name != "a" || objs[1].Name != "b" {
		t.Fatalf("Objects() = %+v", objs)
	}
	if _, ok := s.Info("b"); !ok {
		t.Fatal("Info(b) missing")
	}
	if _, ok := s.Info("zzz"); ok {
		t.Fatal("Info on missing object claims presence")
	}
}

func TestStoreReplaceReleasesOldChunks(t *testing.T) {
	s := openStore(t, t.TempDir(), Config{})
	old := randBytes(t, 50_000, 27)
	s.Put("v", old)
	s.Put("v", randBytes(t, 50_000, 28))
	if err := s.Compact(0); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("v")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, old) {
		t.Fatal("replacement did not take")
	}
	// All of old's unique chunks must be gone after GC.
	for _, c := range Split(old, ChunkerConfig{}) {
		if s.Table().Refs(KeyOf(c)) > 0 && !bytes.Contains(got, c) {
			t.Fatal("old chunk leaked a reference")
		}
	}
}

// TestStoreCompressedResidualPersists pins the residual-compression win:
// a sparse XOR residual must cost a small fraction of the payload (the
// zero runs deflate away instead of defeating chunk-boundary resync),
// and the compressed flag must survive flush + reopen so reconstruction
// still inflates before applying the XOR.
func TestStoreCompressedResidualPersists(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Config{})
	base := randBytes(t, 400_000, 21)
	if _, err := s.Put("v0", base); err != nil {
		t.Fatal(err)
	}
	data := perturb(base, 22, 0.01)
	info, err := s.PutDelta("v1", "v0", data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Depth != 1 {
		t.Fatalf("v1 not delta-encoded: %+v", info)
	}
	// 1% of the bytes changed; the deflated residual must land well
	// under 10% of the payload, far below what raw mostly-zero chunks
	// would re-store.
	if info.NewBytes > int64(len(data))/10 {
		t.Fatalf("residual stored %d new bytes of %d — compression not applied", info.NewBytes, len(data))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, st := range []*Store{s, openStore(t, dir, Config{})} {
		got, err := st.Get("v1")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("reconstruct v1: %v", err)
		}
	}
	// Collapsing the chain re-stores v1 full and must round-trip too.
	s2 := openStore(t, dir, Config{})
	if err := s2.Delete("v0"); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("v1")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("reconstruct collapsed v1: %v", err)
	}
	if info, _ := s2.Info("v1"); info.Depth != 0 || info.Base != "" {
		t.Fatalf("v1 not collapsed: %+v", info)
	}
}
