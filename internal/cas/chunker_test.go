package cas

import (
	"bytes"
	"math/rand"
	"testing"
)

func randBytes(t testing.TB, n int, seed int64) []byte {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestBoundariesInvariants(t *testing.T) {
	cfg := ChunkerConfig{Min: 256, Avg: 1024, Max: 4096}
	for _, n := range []int{0, 1, 100, 255, 256, 257, 5000, 1 << 17} {
		data := randBytes(t, n, int64(n))
		cuts := Boundaries(data, cfg)
		if n == 0 {
			if len(cuts) != 0 {
				t.Fatalf("empty input produced %d cuts", len(cuts))
			}
			continue
		}
		if cuts[len(cuts)-1] != n {
			t.Fatalf("n=%d: final boundary %d != len", n, cuts[len(cuts)-1])
		}
		prev := 0
		for i, c := range cuts {
			size := c - prev
			if size <= 0 {
				t.Fatalf("n=%d: non-increasing boundary at %d", n, i)
			}
			if size > cfg.Max {
				t.Fatalf("n=%d: chunk %d bytes exceeds max %d", n, size, cfg.Max)
			}
			if i < len(cuts)-1 && size < cfg.Min {
				t.Fatalf("n=%d: interior chunk %d below min %d", n, size, cfg.Min)
			}
			prev = c
		}
	}
}

func TestBoundariesDeterministic(t *testing.T) {
	data := randBytes(t, 1<<16, 7)
	a := Boundaries(data, ChunkerConfig{})
	b := Boundaries(data, ChunkerConfig{})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic cut count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cut %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSplitConcatenationInvariance(t *testing.T) {
	data := randBytes(t, 100_000, 42)
	chunks := Split(data, ChunkerConfig{Min: 128, Avg: 512, Max: 2048})
	var joined []byte
	for _, c := range chunks {
		joined = append(joined, c...)
	}
	if !bytes.Equal(joined, data) {
		t.Fatal("concatenated chunks differ from input")
	}
}

// A local edit must not move boundaries far downstream: after the
// cutter resynchronises, the suffix chunks of the edited blob are
// byte-identical to the original's — that is the property cross-version
// dedup depends on.
func TestBoundariesLocality(t *testing.T) {
	cfg := ChunkerConfig{Min: 256, Avg: 1024, Max: 4096}
	orig := randBytes(t, 1<<17, 3)
	edited := append([]byte(nil), orig...)
	for i := 1000; i < 1100; i++ {
		edited[i] ^= 0xff
	}
	origSet := map[[32]byte]struct{}{}
	for _, c := range Split(orig, cfg) {
		origSet[KeyOf(c)] = struct{}{}
	}
	shared := 0
	chunks := Split(edited, cfg)
	for _, c := range chunks {
		if _, ok := origSet[KeyOf(c)]; ok {
			shared++
		}
	}
	if shared < len(chunks)*3/4 {
		t.Fatalf("local edit destroyed chunk sharing: %d/%d chunks shared", shared, len(chunks))
	}
}

func TestChunkerBadConfigFallsBack(t *testing.T) {
	data := randBytes(t, 40_000, 9)
	bad := Boundaries(data, ChunkerConfig{Min: 1 << 20, Avg: 10, Max: 1})
	def := Boundaries(data, ChunkerConfig{})
	if len(bad) != len(def) {
		t.Fatalf("invalid config did not fall back to defaults: %d vs %d cuts", len(bad), len(def))
	}
}

func TestChunkerConfigValidate(t *testing.T) {
	if err := (ChunkerConfig{Min: 1, Avg: 2, Max: 3}).validate(); err == nil {
		t.Fatal("tiny min accepted")
	}
	if err := (ChunkerConfig{Min: 128, Avg: 64, Max: 256}).validate(); err == nil {
		t.Fatal("avg < min accepted")
	}
	if err := (ChunkerConfig{}).withDefaults().validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}
