package cas

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mistique/internal/faultfs"
)

// Crash-matrix suite for the chunk table and delta publish: every write
// path (segment publish, index publish, object-manifest publish, GC
// rewrite) is killed at every syscall, then the directory is reopened
// with a clean FS. Invariants: state is exact-or-recoverable — every
// object durable before the crash reconstructs bit-exactly, a
// half-published generation either fully exists or is absent, a re-put
// of the in-flight object heals the store, and GC after recovery never
// reclaims a chunk a surviving object references.

type casPoint struct {
	name  string
	fault faultfs.Fault
}

func casCrashPoints() []casPoint {
	return []casPoint{
		{"segment-create", faultfs.Fault{Op: faultfs.OpCreate, PathContains: "seg-", Crash: true}},
		{"segment-torn-write", faultfs.Fault{Op: faultfs.OpWrite, PathContains: "seg-", AfterBytes: 100, Crash: true}},
		{"segment-sync", faultfs.Fault{Op: faultfs.OpSync, PathContains: "seg-", Crash: true}},
		{"segment-close", faultfs.Fault{Op: faultfs.OpClose, PathContains: "seg-", Crash: true}},
		// Rename faults match the destination path, not the temp name.
		{"segment-rename", faultfs.Fault{Op: faultfs.OpRename, PathContains: "seg_", Crash: true}},
		{"segment-syncdir", faultfs.Fault{Op: faultfs.OpSyncDir, Countdown: 0, Crash: true}},
		{"index-create", faultfs.Fault{Op: faultfs.OpCreate, PathContains: "index-", Crash: true}},
		{"index-torn-write", faultfs.Fault{Op: faultfs.OpWrite, PathContains: "index-", AfterBytes: 40, Crash: true}},
		{"index-sync", faultfs.Fault{Op: faultfs.OpSync, PathContains: "index-", Crash: true}},
		{"index-close", faultfs.Fault{Op: faultfs.OpClose, PathContains: "index-", Crash: true}},
		{"index-rename", faultfs.Fault{Op: faultfs.OpRename, PathContains: indexName, Crash: true}},
		{"index-syncdir", faultfs.Fault{Op: faultfs.OpSyncDir, Countdown: 1, Crash: true}},
		{"objects-create", faultfs.Fault{Op: faultfs.OpCreate, PathContains: "objects-", Crash: true}},
		{"objects-torn-write", faultfs.Fault{Op: faultfs.OpWrite, PathContains: "objects-", AfterBytes: 20, Crash: true}},
		{"objects-sync", faultfs.Fault{Op: faultfs.OpSync, PathContains: "objects-", Crash: true}},
		{"objects-close", faultfs.Fault{Op: faultfs.OpClose, PathContains: "objects-", Crash: true}},
		{"objects-rename", faultfs.Fault{Op: faultfs.OpRename, PathContains: objName, Crash: true}},
		{"objects-syncdir", faultfs.Fault{Op: faultfs.OpSyncDir, Countdown: 2, Crash: true}},
	}
}

// TestCrashMatrixCASAppend kills a chunk-table append (the flush that
// publishes new chunks of a delta generation) at every syscall.
func TestCrashMatrixCASAppend(t *testing.T) {
	baseData := randBytes(t, 150_000, 31)
	nextData := perturb(baseData, 32, 0.02)
	for _, pt := range casCrashPoints() {
		t.Run(pt.name, func(t *testing.T) {
			dir := t.TempDir()
			// Establish a durable baseline generation.
			s := openStore(t, dir, Config{})
			if _, err := s.Put("v0", baseData); err != nil {
				t.Fatal(err)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}

			// Publish the delta generation under an armed crash.
			inj := faultfs.NewInjector(faultfs.OS())
			s2, err := OpenStore(dir, Config{FS: inj})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s2.PutDelta("v1", "v0", nextData); err != nil {
				t.Fatal(err)
			}
			inj.Arm(pt.fault)
			if err := s2.Flush(); err == nil {
				t.Fatalf("crash point %s did not fire", pt.name)
			}
			if !inj.Crashed() {
				t.Fatalf("fault %s fired without crashing", pt.name)
			}

			// Reboot. The baseline must be intact; v1 is either fully
			// there or fully absent — never wrong bytes.
			s3 := openStore(t, dir, Config{})
			got, err := s3.Get("v0")
			if err != nil || !bytes.Equal(got, baseData) {
				t.Fatalf("durable v0 damaged by crash: %v", err)
			}
			if got, err := s3.Get("v1"); err == nil {
				if !bytes.Equal(got, nextData) {
					t.Fatal("v1 survived the crash with wrong bytes")
				}
			} else if !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("v1 failed with untyped error: %v", err)
			}

			// Heal: re-log the lost generation and GC. No referenced
			// chunk may be reclaimed.
			if _, err := s3.PutDelta("v1", "v0", nextData); err != nil {
				t.Fatalf("heal re-put: %v", err)
			}
			if err := s3.Compact(0); err != nil {
				t.Fatalf("compact after heal: %v", err)
			}
			for _, tc := range []struct {
				name string
				want []byte
			}{{"v0", baseData}, {"v1", nextData}} {
				got, err := s3.Get(tc.name)
				if err != nil || !bytes.Equal(got, tc.want) {
					t.Fatalf("%s after heal+GC: %v", tc.name, err)
				}
			}
		})
	}
}

// TestCrashMatrixCASCompact kills the Compact chain-collapse +
// GC-rewrite path at every syscall: the pre-compact state is durable,
// so every object must reconstruct after reboot no matter where the
// compaction died.
func TestCrashMatrixCASCompact(t *testing.T) {
	v0 := randBytes(t, 120_000, 33)
	versions := map[string][]byte{"v0": v0}
	prev := v0
	for i := 1; i <= 3; i++ {
		prev = perturb(prev, int64(33+i), 0.02)
		versions[fmt.Sprintf("v%d", i)] = prev
	}
	for _, pt := range casCrashPoints() {
		t.Run(pt.name, func(t *testing.T) {
			dir := t.TempDir()
			s := openStore(t, dir, Config{MaxDepth: 3})
			if _, err := s.Put("v0", versions["v0"]); err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 3; i++ {
				if _, err := s.PutDelta(fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i-1), versions[fmt.Sprintf("v%d", i)]); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			// Collapse chains down to depth 1 under an armed crash; the
			// collapse releases the old residual chunks, so the GC half
			// of Compact has segments to rewrite too.
			inj := faultfs.NewInjector(faultfs.OS())
			s2, err := OpenStore(dir, Config{FS: inj, MaxDepth: 3})
			if err != nil {
				t.Fatal(err)
			}
			inj.Arm(pt.fault)
			err = s2.Compact(1)
			if err == nil {
				t.Skipf("compact finished before crash point %s", pt.name)
			}
			if !inj.Crashed() {
				t.Fatalf("fault %s fired without crashing", pt.name)
			}

			s3 := openStore(t, dir, Config{MaxDepth: 3})
			for name, want := range versions {
				got, err := s3.Get(name)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("%s lost by crashed compact: %v", name, err)
				}
			}
			// A clean compact afterwards converges.
			if err := s3.Compact(1); err != nil {
				t.Fatalf("compact after reboot: %v", err)
			}
			for name, want := range versions {
				got, err := s3.Get(name)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("%s lost by post-reboot compact: %v", name, err)
				}
			}
		})
	}
}

// TestCASRefcountsSurviveReopen re-derives refcounts from the object
// manifest and asserts GC cannot leak a chunk any object references.
func TestCASRefcountsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Config{})
	shared := randBytes(t, 90_000, 40)
	if _, err := s.Put("a", shared); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", shared); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Config{})
	if err := s2.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Compact(0); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("b")
	if err != nil || !bytes.Equal(got, shared) {
		t.Fatalf("GC leaked chunks still referenced by b: %v", err)
	}
	if st := s2.Table().Stats(); st.Chunks == 0 {
		t.Fatal("all chunks reclaimed despite live object")
	}
}
