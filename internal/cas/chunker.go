// Package cas implements a content-addressed chunk store with
// content-defined chunking and delta-encoded objects. It deduplicates
// large blobs — model weight snapshots above all — across model
// versions: unchanged regions hash to chunks already in the table, and
// a fine-tuned checkpoint can be stored as an XOR residual against its
// parent, whose mostly-zero chunks collapse onto a handful of shared
// entries.
//
// Durability follows the colstore manifest discipline: immutable
// segment files and a CRC-enveloped index are published with
// temp-file → write → fsync → rename → fsync-dir, so every crash point
// leaves either the old state or the new state, never a torn one.
package cas

import "fmt"

// Default chunk-size knobs. Weight tensors for the models this repo
// trains are hundreds of KiB to a few MiB, so chunks in the 2–64 KiB
// range give enough boundary resolution for partial-update dedup
// without drowning the index in entries.
const (
	DefaultMinChunk = 2 << 10
	DefaultAvgChunk = 8 << 10
	DefaultMaxChunk = 64 << 10
)

// ChunkerConfig holds the content-defined-chunking knobs. Zero values
// take the package defaults.
type ChunkerConfig struct {
	// Min is the smallest chunk the cutter will emit (except a final
	// short tail). Boundary checks are suppressed below it.
	Min int
	// Avg is the target average chunk size; it is rounded up to a power
	// of two to derive the boundary mask.
	Avg int
	// Max force-cuts a chunk regardless of content.
	Max int
}

func (c ChunkerConfig) withDefaults() ChunkerConfig {
	if c.Min == 0 {
		c.Min = DefaultMinChunk
	}
	if c.Avg == 0 {
		c.Avg = DefaultAvgChunk
	}
	if c.Max == 0 {
		c.Max = DefaultMaxChunk
	}
	return c
}

func (c ChunkerConfig) validate() error {
	if c.Min < 64 {
		return fmt.Errorf("cas: min chunk %d below 64 bytes", c.Min)
	}
	if c.Avg < c.Min || c.Max < c.Avg {
		return fmt.Errorf("cas: chunk sizes must satisfy min <= avg <= max, got %d/%d/%d", c.Min, c.Avg, c.Max)
	}
	return nil
}

// gearTable is the byte-indexed noise table for the Gear rolling hash.
// It is generated from a fixed seed so boundaries are deterministic
// across processes and releases — a requirement for cross-version
// dedup, since two runs chunking the same bytes must agree.
var gearTable = buildGearTable(0x4d49535451554521) // "MISTQUE!"

func buildGearTable(seed uint64) [256]uint64 {
	var t [256]uint64
	s := seed
	for i := range t {
		// splitmix64: cheap, well-distributed, and fully determined by
		// the seed.
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Boundaries returns the end offset of every chunk in data under the
// Gear content-defined chunker: a cut happens at the first position at
// least Min bytes into the chunk where the rolling hash ANDed with the
// average-size mask is zero, or at Max bytes regardless. The final
// boundary is always len(data). Boundaries(nil) is empty.
//
// The hash is reset at each cut, so a chunk's boundary depends only on
// the bytes of that chunk — inserting data in one region of a blob
// shifts boundaries locally and leaves later chunks (and their hashes)
// intact once the cutter resynchronises.
func Boundaries(data []byte, cfg ChunkerConfig) []int {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		// Invalid explicit knobs fall back to defaults rather than
		// panicking: chunking must never fail on hostile config.
		cfg = ChunkerConfig{}.withDefaults()
	}
	mask := uint64(nextPow2(cfg.Avg) - 1)
	var cuts []int
	start := 0
	var h uint64
	for i := 0; i < len(data); i++ {
		h = (h << 1) + gearTable[data[i]]
		n := i + 1 - start
		if n < cfg.Min {
			continue
		}
		if h&mask == 0 || n >= cfg.Max {
			cuts = append(cuts, i+1)
			start = i + 1
			h = 0
		}
	}
	if start < len(data) {
		cuts = append(cuts, len(data))
	}
	return cuts
}

// Split cuts data at Boundaries and returns the chunks as subslices of
// data (no copying). Concatenating the returned chunks yields data.
func Split(data []byte, cfg ChunkerConfig) [][]byte {
	cuts := Boundaries(data, cfg)
	chunks := make([][]byte, 0, len(cuts))
	start := 0
	for _, end := range cuts {
		chunks = append(chunks, data[start:end:end])
		start = end
	}
	return chunks
}
