package cas

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mistique/internal/faultfs"
)

const (
	objMagic   = "MQCO"
	objVersion = 1
	objName    = "OBJECTS.bin"

	maxObjects     = 1 << 20
	maxObjectName  = 1 << 12
	maxObjectChunk = 1 << 22

	// objFlagCompressed marks a delta object whose stored residual is
	// deflate-compressed (see object.comp).
	objFlagCompressed uint16 = 1 << 0
)

// Config holds the object-store knobs.
type Config struct {
	// Chunker sets the content-defined-chunking window; zero fields
	// take the package defaults.
	Chunker ChunkerConfig
	// MaxDepth bounds delta chains: an object at depth MaxDepth is
	// stored full even if PutDelta is asked for a delta. Zero means
	// DefaultMaxDepth.
	MaxDepth int
	// FS is the write-side filesystem, swappable for fault injection.
	FS faultfs.FS
}

// DefaultMaxDepth bounds delta chains when Config.MaxDepth is zero.
// Reading a depth-d object touches d+1 generations, so this is a read
// amplification bound as much as a durability one.
const DefaultMaxDepth = 4

// ObjectInfo describes one stored object (typically one model
// version's weight snapshot).
type ObjectInfo struct {
	Name     string
	Size     int64  // logical payload size
	Chunks   int    // chunks in this object's recipe
	Depth    int    // delta-chain depth; 0 = stored full
	Base     string // parent object when delta-encoded
	CRC      uint32 // crc32c of the fully reconstructed payload
	NewBytes int64  // payload bytes not already present in the table at Put time
}

type object struct {
	chunks   []Key
	size     int64
	depth    int
	base     string
	crc      uint32
	newBytes int64
	// comp marks a delta whose stored residual is deflate-compressed.
	// An XOR residual between adjacent checkpoints is zero everywhere
	// the versions agree, and a zero run defeats content-defined
	// chunking (no content, no cut points, no boundary resync across
	// epochs). Deflating the residual first collapses those runs so the
	// table stores kilobytes per generation instead of re-storing
	// misaligned mostly-zero chunks.
	comp bool
}

// Store layers named, optionally delta-encoded objects over a chunk
// Table. A delta object's chunks encode the XOR residual against its
// base; reconstruction walks the chain down to a full object and is
// verified against a whole-object CRC, so a flipped bit in any
// generation surfaces as ErrCorrupt rather than wrong bytes.
type Store struct {
	dir string
	cfg Config
	t   *Table

	mu      sync.Mutex
	objects map[string]*object
	deps    map[string]int // base name -> number of direct dependents
	dirty   bool
}

// OpenStore opens (or creates) an object store in dir. Chunk refcounts
// are re-derived from the object manifest, so the manifest and index
// never need to agree transactionally: chunks published without a
// referencing object are unreachable and reclaimed by the next GC.
func OpenStore(dir string, cfg Config) (*Store, error) {
	if cfg.FS == nil {
		cfg.FS = faultfs.OS()
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = DefaultMaxDepth
	}
	t, err := OpenTable(dir, cfg.FS)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, cfg: cfg, t: t, objects: map[string]*object{}, deps: map[string]int{}}
	raw, rerr := os.ReadFile(filepath.Join(dir, objName))
	if rerr == nil {
		objs, perr := parseObjects(raw)
		if perr != nil {
			return nil, fmt.Errorf("cas: %s: %w", objName, perr)
		}
		for name, o := range objs {
			for _, k := range o.chunks {
				if aerr := s.t.AddRef(k); aerr != nil {
					// An object referencing an unpublished chunk means the
					// manifest outran the index, which the publish order
					// forbids — treat as corruption.
					return nil, fmt.Errorf("cas: object %q references missing chunk: %w", name, ErrCorrupt)
				}
			}
		}
		s.objects = objs
		for _, o := range objs {
			if o.base != "" {
				s.deps[o.base]++
			}
		}
	} else if !os.IsNotExist(rerr) {
		return nil, rerr
	}
	return s, nil
}

// Table exposes the underlying chunk table (read-mostly: stats and
// direct chunk access for tests).
func (s *Store) Table() *Table { return s.t }

// Put stores data as a full (non-delta) object named name, replacing
// any previous version of the name.
func (s *Store) Put(name string, data []byte) (ObjectInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := checkName(name); err != nil {
		return ObjectInfo{}, err
	}
	o := s.ingestLocked(data, 0, "", crc32.Checksum(data, castagnoli))
	s.replaceLocked(name, o)
	return s.infoLocked(name), nil
}

// PutDelta stores data as an XOR residual against the named base
// object. It falls back to a full store when the base is missing or
// its chain is already MaxDepth deep, so callers can use it
// unconditionally for "this version descends from that one".
func (s *Store) PutDelta(name, base string, data []byte) (ObjectInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := checkName(name); err != nil {
		return ObjectInfo{}, err
	}
	crc := crc32.Checksum(data, castagnoli)
	bo, ok := s.objects[base]
	if name == base {
		ok = false
	}
	if !ok || bo.depth+1 > s.cfg.MaxDepth {
		o := s.ingestLocked(data, 0, "", crc)
		s.replaceLocked(name, o)
		return s.infoLocked(name), nil
	}
	baseData, err := s.getLocked(base, 0)
	if err != nil {
		return ObjectInfo{}, err
	}
	residual := xorBytes(data, baseData)
	stored, comp := residual, false
	if packed := deflateBytes(residual); len(packed) < len(residual) {
		stored, comp = packed, true
	}
	o := s.ingestLocked(stored, bo.depth+1, base, crc)
	o.size = int64(len(data))
	o.comp = comp
	s.replaceLocked(name, o)
	return s.infoLocked(name), nil
}

// deflateBytes compresses b at the fastest deflate level. Residuals are
// dominated by zero runs, where any level wins by orders of magnitude.
func deflateBytes(b []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return b
	}
	if _, err := w.Write(b); err != nil || w.Close() != nil {
		return b
	}
	return buf.Bytes()
}

// inflateBytes decompresses a deflate stream that must expand to exactly
// want bytes (the residual is as long as the payload it encodes).
func inflateBytes(b []byte, want int64) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(b))
	defer r.Close()
	out := make([]byte, 0, want)
	buf := make([]byte, 32*1024)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if int64(len(out)) > want {
			return nil, fmt.Errorf("%w: residual inflates past its object size", ErrCorrupt)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: residual inflate: %v", ErrCorrupt, err)
		}
	}
	if int64(len(out)) != want {
		return nil, fmt.Errorf("%w: residual inflates to %d bytes, want %d", ErrCorrupt, len(out), want)
	}
	return out, nil
}

// ingestLocked chunks a payload into the table and builds the recipe.
func (s *Store) ingestLocked(payload []byte, depth int, base string, crc uint32) *object {
	o := &object{size: int64(len(payload)), depth: depth, base: base, crc: crc}
	for _, c := range Split(payload, s.cfg.Chunker) {
		if !s.t.Has(KeyOf(c)) {
			o.newBytes += int64(len(c))
		}
		o.chunks = append(o.chunks, s.t.Put(c))
	}
	return o
}

func (s *Store) replaceLocked(name string, o *object) {
	s.dropLocked(name)
	s.objects[name] = o
	if o.base != "" {
		s.deps[o.base]++
	}
	s.dirty = true
}

func (s *Store) dropLocked(name string) {
	old, ok := s.objects[name]
	if !ok {
		return
	}
	for _, k := range old.chunks {
		s.t.Release(k)
	}
	if old.base != "" {
		if s.deps[old.base]--; s.deps[old.base] <= 0 {
			delete(s.deps, old.base)
		}
	}
	delete(s.objects, name)
	s.dirty = true
}

// Delete removes an object. Objects that other deltas depend on are
// collapsed out of the chain first (dependents are rewritten one level
// shallower), so no dependent ever loses its base.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[name]; !ok {
		return fmt.Errorf("%w: object %q", ErrNotFound, name)
	}
	if s.deps[name] > 0 {
		for dep, o := range s.objects {
			if o.base == name {
				if err := s.collapseLocked(dep); err != nil {
					return err
				}
			}
		}
	}
	s.dropLocked(name)
	return nil
}

// Get reconstructs the object's payload, walking the delta chain and
// verifying the whole-object CRC.
func (s *Store) Get(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(name, 0)
}

func (s *Store) getLocked(name string, hop int) ([]byte, error) {
	o, ok := s.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: object %q", ErrNotFound, name)
	}
	if hop > s.cfg.MaxDepth+1 {
		return nil, fmt.Errorf("%w: delta chain at %q exceeds max depth", ErrCorrupt, name)
	}
	payload := make([]byte, 0, o.size)
	for _, k := range o.chunks {
		c, err := s.t.Get(k)
		if err != nil {
			return nil, fmt.Errorf("object %q: %w", name, err)
		}
		payload = append(payload, c...)
	}
	if o.base != "" {
		if o.comp {
			raw, err := inflateBytes(payload, o.size)
			if err != nil {
				return nil, fmt.Errorf("object %q: %w", name, err)
			}
			payload = raw
		}
		baseData, err := s.getLocked(o.base, hop+1)
		if err != nil {
			return nil, err
		}
		payload = xorBytes(payload, baseData)
	}
	return verifyPayload(payload, o.crc, name)
}

func verifyPayload(payload []byte, want uint32, name string) ([]byte, error) {
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, fmt.Errorf("%w: object %q reconstruction crc mismatch", ErrCorrupt, name)
	}
	return payload, nil
}

// xorBytes returns a XOR b over the common prefix with a's tail kept
// raw: applying it twice with the same b is the identity, so the same
// function both creates and applies residuals.
func xorBytes(a, b []byte) []byte {
	out := make([]byte, len(a))
	copy(out, a)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		out[i] ^= b[i]
	}
	return out
}

// Info returns the descriptor of one object.
func (s *Store) Info(name string) (ObjectInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[name]; !ok {
		return ObjectInfo{}, false
	}
	return s.infoLocked(name), true
}

func (s *Store) infoLocked(name string) ObjectInfo {
	o := s.objects[name]
	return ObjectInfo{Name: name, Size: o.size, Chunks: len(o.chunks), Depth: o.depth, Base: o.base, CRC: o.crc, NewBytes: o.newBytes}
}

// Objects lists every stored object, sorted by name.
func (s *Store) Objects() []ObjectInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ObjectInfo, 0, len(s.objects))
	for name := range s.objects {
		out = append(out, s.infoLocked(name))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// collapseLocked rewrites a delta object as a full object.
func (s *Store) collapseLocked(name string) error {
	payload, err := s.getLocked(name, 0)
	if err != nil {
		return err
	}
	o := s.ingestLocked(payload, 0, "", crc32.Checksum(payload, castagnoli))
	s.replaceLocked(name, o)
	return nil
}

// Compact collapses delta chains deeper than maxDepth (0 keeps the
// configured bound) and garbage-collects the chunk table. It persists
// the result, so a crash afterwards reopens in the compacted state.
func (s *Store) Compact(maxDepth int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if maxDepth <= 0 {
		maxDepth = s.cfg.MaxDepth
	}
	var deep []string
	for name, o := range s.objects {
		if o.depth > maxDepth {
			deep = append(deep, name)
		}
	}
	sort.Strings(deep)
	for _, name := range deep {
		if err := s.collapseLocked(name); err != nil {
			return err
		}
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	_, _, err := s.t.GC()
	if err != nil {
		return err
	}
	// GC may have republished the index; keep the manifest fresh too.
	return s.flushLocked()
}

// Flush persists the chunk table (segments + index) and then the
// object manifest. Publish order matters: the manifest must only ever
// reference chunks that are already durable.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if err := s.t.Flush(); err != nil {
		return err
	}
	if !s.dirty {
		return nil
	}
	if err := s.t.publishLocked("objects-*.tmp", objName, func(f faultfs.File) error {
		_, err := f.Write(marshalObjects(s.objects))
		return err
	}); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

func checkName(name string) error {
	if name == "" || len(name) > maxObjectName {
		return fmt.Errorf("cas: invalid object name %q", name)
	}
	return nil
}

func marshalObjects(objs map[string]*object) []byte {
	names := make([]string, 0, len(objs))
	for n := range objs {
		names = append(names, n)
	}
	sort.Strings(names)
	buf := []byte(objMagic)
	buf = binary.LittleEndian.AppendUint16(buf, objVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(names)))
	for _, n := range names {
		o := objs[n]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(n)))
		buf = append(buf, n...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o.size))
		buf = binary.LittleEndian.AppendUint32(buf, o.crc)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(o.depth))
		var flags uint16
		if o.comp {
			flags |= objFlagCompressed
		}
		buf = binary.LittleEndian.AppendUint16(buf, flags)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(o.base)))
		buf = append(buf, o.base...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o.newBytes))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(o.chunks)))
		for _, k := range o.chunks {
			buf = append(buf, k[:]...)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// parseObjects decodes an object manifest. Pure and fuzz-friendly:
// hostile bytes yield ErrCorrupt/ErrUnsupported, never a panic.
func parseObjects(raw []byte) (map[string]*object, error) {
	fail := func(msg string) (map[string]*object, error) {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, msg)
	}
	if len(raw) < 4+2+4+4 {
		return fail("short object manifest")
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return fail("object manifest crc mismatch")
	}
	if string(body[:4]) != objMagic {
		return fail("bad magic")
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != objVersion {
		return nil, fmt.Errorf("%w: object manifest version %d", ErrUnsupported, v)
	}
	p := 6
	need := func(n int) bool { return len(body)-p >= n }
	if !need(4) {
		return fail("truncated object count")
	}
	n := int(binary.LittleEndian.Uint32(body[p:]))
	p += 4
	if n > maxObjects {
		return fail("object count too large")
	}
	objs := make(map[string]*object, n)
	for i := 0; i < n; i++ {
		if !need(2) {
			return fail("truncated name length")
		}
		nameLen := int(binary.LittleEndian.Uint16(body[p:]))
		p += 2
		if nameLen == 0 || nameLen > maxObjectName || !need(nameLen) {
			return fail("bad name length")
		}
		name := string(body[p : p+nameLen])
		p += nameLen
		if !need(8 + 4 + 2 + 2 + 2) {
			return fail("truncated object header")
		}
		o := &object{
			size:  int64(binary.LittleEndian.Uint64(body[p:])),
			crc:   binary.LittleEndian.Uint32(body[p+8:]),
			depth: int(binary.LittleEndian.Uint16(body[p+12:])),
		}
		flags := binary.LittleEndian.Uint16(body[p+14:])
		baseLen := int(binary.LittleEndian.Uint16(body[p+16:]))
		p += 18
		if flags&^objFlagCompressed != 0 {
			return fail("unknown object flags")
		}
		o.comp = flags&objFlagCompressed != 0
		if baseLen > maxObjectName || !need(baseLen) {
			return fail("bad base length")
		}
		o.base = string(body[p : p+baseLen])
		p += baseLen
		if o.size < 0 || (o.depth == 0) != (o.base == "") {
			return fail("inconsistent depth/base")
		}
		if o.comp && o.base == "" {
			return fail("compressed residual without a base")
		}
		if !need(12) {
			return fail("truncated chunk list header")
		}
		o.newBytes = int64(binary.LittleEndian.Uint64(body[p:]))
		nChunks := int(binary.LittleEndian.Uint32(body[p+8:]))
		p += 12
		if nChunks > maxObjectChunk || !need(nChunks*32) {
			return fail("bad chunk count")
		}
		o.chunks = make([]Key, nChunks)
		for j := range o.chunks {
			copy(o.chunks[j][:], body[p:])
			p += 32
		}
		if _, dup := objs[name]; dup {
			return fail("duplicate object name")
		}
		objs[name] = o
	}
	if p != len(body) {
		return fail("trailing bytes")
	}
	return objs, nil
}
