package f16

import "math"

// This file retains the original branchy codec as the reference
// implementation the table-driven production codec is differentially tested
// against (TestDecodeLUTExhaustive, TestEncodeBoundaryNeighborhoods,
// FuzzF16Parity). It is compiled into tests only and must never change
// independently of a format decision: it *defines* the codec's semantics.

// encodeRef is the pre-LUT FromFloat32: explicit per-class branches with
// round-to-nearest-even.
func encodeRef(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	mant := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if mant != 0 {
			nanMant := uint16(mant >> 13)
			if nanMant == 0 {
				nanMant = 1
			}
			return sign | 0x7c00 | nanMant
		}
		return sign | 0x7c00
	case exp == 0 && mant == 0: // signed zero
		return sign
	}

	// Unbias float32 exponent, rebias for float16 (bias 15).
	e := exp - 127 + 15
	if e >= 0x1f {
		return sign | 0x7c00 // overflow to infinity
	}
	if e <= 0 {
		// Subnormal half (or underflow to zero).
		if e < -10 {
			return sign
		}
		m := mant | 0x800000
		shift := uint32(14 - e)
		half := uint32(1) << (shift - 1)
		rounded := m + half - 1 + ((m >> shift) & 1)
		return sign | uint16(rounded>>shift)
	}

	const roundBit = 0x1000
	v := (uint32(e) << 10) | uint32(mant>>13)
	if mant&roundBit != 0 {
		if mant&(roundBit-1) != 0 || v&1 != 0 {
			v++
		}
	}
	return sign | uint16(v)
}

// decodeRef is the pre-LUT ToFloat32.
func decodeRef(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)

	switch {
	case exp == 0x1f: // Inf or NaN
		return math.Float32frombits(sign | 0x7f800000 | mant<<13)
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	}
	return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
}
