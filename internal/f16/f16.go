// Package f16 implements the IEEE 754 binary16 ("half precision") codec used
// by the LP_QT quantization scheme. The paper stores activations as numpy
// float16; Go has no native float16, so we convert to and from uint16 bit
// patterns. The codec handles normals, subnormals, ±Inf and NaN, and rounds
// to nearest-even, matching numpy's astype(float16) behaviour.
package f16

import "math"

const (
	// MaxValue is the largest finite float16 value (65504).
	MaxValue = 65504.0
	// SmallestNormal is the smallest positive normal float16 (2^-14).
	SmallestNormal = 6.103515625e-05
	// SmallestSubnormal is the smallest positive subnormal float16 (2^-24).
	SmallestSubnormal = 5.960464477539063e-08
)

// FromFloat32 converts a float32 to its nearest binary16 bit pattern using
// round-to-nearest-even. Values beyond ±65504 (after rounding) become ±Inf.
func FromFloat32(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	mant := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if mant != 0 {
			// Preserve a quiet NaN; keep the top mantissa bits so payload
			// information survives a round trip when possible.
			nanMant := uint16(mant >> 13)
			if nanMant == 0 {
				nanMant = 1
			}
			return sign | 0x7c00 | nanMant
		}
		return sign | 0x7c00
	case exp == 0 && mant == 0: // signed zero
		return sign
	}

	// Unbias float32 exponent, rebias for float16 (bias 15).
	e := exp - 127 + 15
	if e >= 0x1f {
		// Overflow to infinity.
		return sign | 0x7c00
	}
	if e <= 0 {
		// Subnormal half (or underflow to zero). The implicit leading 1 of
		// the float32 mantissa becomes explicit and is shifted right.
		if e < -10 {
			return sign // underflows to zero even after rounding
		}
		m := mant | 0x800000                         // make leading 1 explicit
		shift := uint32(14 - e)                      // 14..24
		half := uint32(1) << (shift - 1)             // rounding increment
		rounded := m + half - 1 + ((m >> shift) & 1) // round-to-nearest-even
		return sign | uint16(rounded>>shift)
	}

	// Normal half: keep top 10 mantissa bits, round-to-nearest-even on the
	// 13 discarded bits.
	const roundBit = 0x1000 // bit 12: highest discarded bit
	v := (uint32(e) << 10) | uint32(mant>>13)
	if mant&roundBit != 0 {
		if mant&(roundBit-1) != 0 || v&1 != 0 {
			v++ // may carry into the exponent, correctly producing Inf
		}
	}
	return sign | uint16(v)
}

// ToFloat32 converts a binary16 bit pattern to float32 exactly (every
// float16 value is representable as a float32).
func ToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)

	switch {
	case exp == 0x1f: // Inf or NaN
		return math.Float32frombits(sign | 0x7f800000 | mant<<13)
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal half: normalize into a float32 normal.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	}
	return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
}

// Round returns f rounded to the nearest representable float16, as a
// float32. It is the value a reader of an LP_QT intermediate observes.
func Round(f float32) float32 { return ToFloat32(FromFloat32(f)) }

// EncodeSlice converts src to binary16 bit patterns, appending to dst.
func EncodeSlice(dst []uint16, src []float32) []uint16 {
	for _, f := range src {
		dst = append(dst, FromFloat32(f))
	}
	return dst
}

// DecodeSlice converts binary16 bit patterns to float32s, appending to dst.
func DecodeSlice(dst []float32, src []uint16) []float32 {
	for _, h := range src {
		dst = append(dst, ToFloat32(h))
	}
	return dst
}
