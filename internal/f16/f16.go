// Package f16 implements the IEEE 754 binary16 ("half precision") codec used
// by the LP_QT quantization scheme. The paper stores activations as numpy
// float16; Go has no native float16, so we convert to and from uint16 bit
// patterns. The codec handles normals, subnormals, ±Inf and NaN, and rounds
// to nearest-even, matching numpy's astype(float16) behaviour.
//
// Both directions are table-driven. Decoding is a single load from a
// 65536-entry float32 table (every half value, precomputed at init).
// Encoding classifies a float32 by its 8-bit biased exponent through four
// 256-entry tables (base, shift, rounding increment, implicit-bit mask) and
// reduces every case — normal, subnormal, underflow-to-zero, overflow-to-Inf
// — to one shift/add round-to-nearest-even expression; the only branch left
// is the NaN payload path. The tables are bit-for-bit equivalent to the
// branchy reference implementation retained in ref_test.go, verified by an
// exhaustive decode sweep, a boundary-neighborhood encode sweep, and the
// FuzzF16Parity differential fuzzer.
package f16

import "math"

const (
	// MaxValue is the largest finite float16 value (65504).
	MaxValue = 65504.0
	// SmallestNormal is the smallest positive normal float16 (2^-14).
	SmallestNormal = 6.103515625e-05
	// SmallestSubnormal is the smallest positive subnormal float16 (2^-24).
	SmallestSubnormal = 5.960464477539063e-08
)

// decodeLUT maps every binary16 bit pattern to its exact float32 value
// (every half is representable as a float32, so decode is a pure lookup).
// 65536 entries x 4 bytes = 256 KiB, built once at init.
var decodeLUT [1 << 16]float32

// Encode tables, indexed by the float32's 8-bit biased exponent. For a
// float32 with sign s, exponent e and mantissa m, the half encoding is
//
//	s | (encBase[e] + ((m|encImplied[e]) + encRound[e] + lsb) >> encShift[e])
//
// where lsb is bit encShift[e] of the (implied-extended) mantissa — the
// round-to-nearest-even tie-break. The per-exponent cases:
//
//   - e in [113,142] (half normals): base = halfExp<<10, shift = 13; a
//     mantissa that rounds up to 0x400 carries into the exponent, which is
//     exactly right (including the 65504 -> Inf overflow at halfExp = 30).
//   - e in [102,112] (half subnormals): base = 0, the implicit leading 1
//     becomes explicit (encImplied = 0x800000), shift = 126-e in [14,24].
//   - e < 102 or e == 0 (underflow, incl. float32 subnormals): shift = 25
//     makes the rounded mantissa term 0 for every possible mantissa, so the
//     expression collapses to the signed zero.
//   - e in [143,254] (overflow): base = 0x7c00 (Inf), shift = 25 zeroes the
//     mantissa term.
//   - e == 255 with mantissa 0 (±Inf): base = 0x7c00 works unchanged; NaN
//     (mantissa != 0) takes the payload-preserving branch in FromFloat32.
var (
	encBase    [256]uint16
	encShift   [256]uint8
	encRound   [256]uint32
	encImplied [256]uint32
)

func init() {
	buildEncodeTables()
	buildDecodeLUT()
}

func buildEncodeTables() {
	for e := 0; e < 256; e++ {
		// Shift 25 zeroes the mantissa term: the largest possible operand is
		// (0x7fffff|0x800000) + encRound + 1 < 1<<25.
		const zeroShift = 25
		eh := e - 127 + 15 // rebias for float16
		switch {
		case e == 255: // Inf (NaN branches before the tables)
			encBase[e], encShift[e] = 0x7c00, zeroShift
		case eh >= 0x1f: // overflow to Inf
			encBase[e], encShift[e] = 0x7c00, zeroShift
		case eh >= 1: // normal half
			encBase[e], encShift[e] = uint16(eh)<<10, 13
		case eh >= -10 && e != 0: // subnormal half
			encBase[e], encShift[e] = 0, uint8(14-eh)
			encImplied[e] = 0x800000
		default: // underflow to zero (incl. every float32 subnormal)
			encBase[e], encShift[e] = 0, zeroShift
			if e != 0 {
				encImplied[e] = 0x800000 // harmless: still shifts to 0
			}
		}
		encRound[e] = 1<<(encShift[e]-1) - 1
	}
}

// buildDecodeLUT expands every half bit pattern arithmetically (same
// construction the reference decoder uses; decodeRef in ref_test.go proves
// the parity exhaustively).
func buildDecodeLUT() {
	for i := range decodeLUT {
		h := uint16(i)
		sign := uint32(h&0x8000) << 16
		exp := uint32(h>>10) & 0x1f
		mant := uint32(h & 0x3ff)
		switch {
		case exp == 0x1f: // Inf or NaN
			decodeLUT[i] = math.Float32frombits(sign | 0x7f800000 | mant<<13)
		case exp == 0:
			if mant == 0 {
				decodeLUT[i] = math.Float32frombits(sign) // signed zero
				continue
			}
			// Subnormal half: normalize into a float32 normal.
			e := uint32(127 - 15 + 1)
			for mant&0x400 == 0 {
				mant <<= 1
				e--
			}
			mant &= 0x3ff
			decodeLUT[i] = math.Float32frombits(sign | e<<23 | mant<<13)
		default:
			decodeLUT[i] = math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
		}
	}
}

// FromFloat32 converts a float32 to its nearest binary16 bit pattern using
// round-to-nearest-even. Values beyond ±65504 (after rounding) become ±Inf.
func FromFloat32(f float32) uint16 {
	b := math.Float32bits(f)
	if b&0x7fffffff > 0x7f800000 {
		// NaN: preserve a quiet NaN; keep the top mantissa bits so payload
		// information survives a round trip when possible.
		nanMant := uint16(b>>13) & 0x3ff
		if nanMant == 0 {
			nanMant = 1
		}
		return uint16(b>>16)&0x8000 | 0x7c00 | nanMant
	}
	e := (b >> 23) & 0xff
	m := b&0x7fffff | encImplied[e]
	s := encShift[e]
	return uint16(b>>16)&0x8000 | (encBase[e] + uint16((m+encRound[e]+(m>>s)&1)>>s))
}

// ToFloat32 converts a binary16 bit pattern to float32 exactly (every
// float16 value is representable as a float32).
func ToFloat32(h uint16) float32 { return decodeLUT[h] }

// Round returns f rounded to the nearest representable float16, as a
// float32. It is the value a reader of an LP_QT intermediate observes.
func Round(f float32) float32 { return ToFloat32(FromFloat32(f)) }

// EncodeSlice converts src to binary16 bit patterns, appending to dst. The
// destination is grown once up front, so a zero-capacity dst costs exactly
// one allocation.
func EncodeSlice(dst []uint16, src []float32) []uint16 {
	dst = growU16(dst, len(src))
	for _, f := range src {
		dst = append(dst, FromFloat32(f))
	}
	return dst
}

// DecodeSlice converts binary16 bit patterns to float32s, appending to dst.
// Each value is one table load; dst is grown once up front.
func DecodeSlice(dst []float32, src []uint16) []float32 {
	dst = growF32(dst, len(src))
	for _, h := range src {
		dst = append(dst, decodeLUT[h])
	}
	return dst
}

// AppendBytes appends the little-endian binary16 encoding of src to dst —
// the byte-path form of EncodeSlice used by the LP_QT column codec.
func AppendBytes(dst []byte, src []float32) []byte {
	if need := 2 * len(src); cap(dst)-len(dst) < need {
		dst = append(make([]byte, 0, len(dst)+need), dst...)
	}
	for _, f := range src {
		h := FromFloat32(f)
		dst = append(dst, byte(h), byte(h>>8))
	}
	return dst
}

// DecodeBytes appends n float32s decoded from little-endian binary16 data
// to dst. The caller guarantees len(data) >= 2*n.
func DecodeBytes(dst []float32, data []byte, n int) []float32 {
	dst = growF32(dst, n)
	for i := 0; i < n; i++ {
		dst = append(dst, decodeLUT[uint16(data[2*i])|uint16(data[2*i+1])<<8])
	}
	return dst
}

func growF32(dst []float32, n int) []float32 {
	if cap(dst)-len(dst) < n {
		dst = append(make([]float32, 0, len(dst)+n), dst...)
	}
	return dst
}

func growU16(dst []uint16, n int) []uint16 {
	if cap(dst)-len(dst) < n {
		dst = append(make([]uint16, 0, len(dst)+n), dst...)
	}
	return dst
}
