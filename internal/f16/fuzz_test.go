package f16

import (
	"math"
	"testing"
)

// FuzzRoundTrip checks that conversion never panics and that Round is
// idempotent for every float32 bit pattern the fuzzer finds.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint32(0))
	f.Add(math.Float32bits(1.5))
	f.Add(math.Float32bits(65504))
	f.Add(math.Float32bits(float32(math.Inf(-1))))
	f.Add(uint32(0x7fc00001)) // NaN payload
	f.Fuzz(func(t *testing.T, bits uint32) {
		v := math.Float32frombits(bits)
		r := Round(v)
		if math.IsNaN(float64(v)) {
			if !math.IsNaN(float64(r)) {
				t.Fatalf("NaN became %v", r)
			}
			return
		}
		if Round(r) != r {
			t.Fatalf("Round not idempotent: %v -> %v -> %v", v, r, Round(r))
		}
	})
}
