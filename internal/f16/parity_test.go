package f16

import (
	"math"
	"os"
	"testing"
)

// TestDecodeLUTExhaustive sweeps every one of the 2^16 half bit patterns
// and demands the decode table match the reference decoder bit for bit
// (bitwise comparison, so NaN payloads and signed zeros count too).
func TestDecodeLUTExhaustive(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := uint16(i)
		got := math.Float32bits(ToFloat32(h))
		want := math.Float32bits(decodeRef(h))
		if got != want {
			t.Fatalf("decode %#04x: LUT %#08x, reference %#08x", h, got, want)
		}
	}
}

// TestEncodeExhaustiveOverHalves encodes the exact value of every half bit
// pattern plus its float32 neighbors one ulp either side — the
// neighborhoods where rounding direction, tie-breaking, overflow-to-Inf and
// underflow-to-zero all flip — and checks the table codec against the
// reference on each.
func TestEncodeExhaustiveOverHalves(t *testing.T) {
	check := func(f float32) {
		got, want := FromFloat32(f), encodeRef(f)
		if got != want {
			t.Fatalf("encode %v (bits %#08x): LUT %#04x, reference %#04x",
				f, math.Float32bits(f), got, want)
		}
	}
	for i := 0; i < 1<<16; i++ {
		f := decodeRef(uint16(i))
		check(f)
		if !math.IsNaN(float64(f)) {
			check(math.Nextafter32(f, float32(math.Inf(1))))
			check(math.Nextafter32(f, float32(math.Inf(-1))))
			// Midpoints between adjacent halves are where nearest-even ties
			// break; perturb from the midpoint too.
			up := decodeRef(uint16(i) + 1)
			if !math.IsNaN(float64(up)) && !math.IsInf(float64(up), 0) {
				mid := float32((float64(f) + float64(up)) / 2)
				check(mid)
				check(math.Nextafter32(mid, float32(math.Inf(1))))
				check(math.Nextafter32(mid, float32(math.Inf(-1))))
			}
		}
	}
}

// TestEncodeExhaustiveAllFloat32 proves the parity claim over the entire
// float32 domain (all 2^32 bit patterns). It takes a couple of minutes, so
// it only runs when MISTIQUE_EXHAUSTIVE=1; the committed evidence is the
// boundary sweep above plus FuzzF16Parity.
func TestEncodeExhaustiveAllFloat32(t *testing.T) {
	if os.Getenv("MISTIQUE_EXHAUSTIVE") == "" {
		t.Skip("set MISTIQUE_EXHAUSTIVE=1 to sweep all 2^32 float32 inputs")
	}
	for b := uint64(0); b < 1<<32; b++ {
		f := math.Float32frombits(uint32(b))
		if got, want := FromFloat32(f), encodeRef(f); got != want {
			t.Fatalf("encode bits %#08x: LUT %#04x, reference %#04x", uint32(b), got, want)
		}
	}
}

// TestSliceHelpers pins the append-style batch helpers to the scalar codec.
func TestSliceHelpers(t *testing.T) {
	src := []float32{0, -0, 1.5, -2.25, 65504, 65520, 1e-8, -1e-8,
		float32(math.Inf(1)), float32(math.Inf(-1)), SmallestSubnormal, SmallestNormal}
	enc := EncodeSlice(nil, src)
	if len(enc) != len(src) {
		t.Fatalf("EncodeSlice length %d, want %d", len(enc), len(src))
	}
	for i, f := range src {
		if enc[i] != FromFloat32(f) {
			t.Fatalf("EncodeSlice[%d] = %#04x, want %#04x", i, enc[i], FromFloat32(f))
		}
	}
	dec := DecodeSlice(nil, enc)
	for i, h := range enc {
		if math.Float32bits(dec[i]) != math.Float32bits(ToFloat32(h)) {
			t.Fatalf("DecodeSlice[%d] = %v, want %v", i, dec[i], ToFloat32(h))
		}
	}
	// Byte-path forms agree with the u16 forms.
	raw := AppendBytes(nil, src)
	if len(raw) != 2*len(src) {
		t.Fatalf("AppendBytes length %d, want %d", len(raw), 2*len(src))
	}
	for i, h := range enc {
		if got := uint16(raw[2*i]) | uint16(raw[2*i+1])<<8; got != h {
			t.Fatalf("AppendBytes[%d] = %#04x, want %#04x", i, got, h)
		}
	}
	back := DecodeBytes(nil, raw, len(src))
	for i := range dec {
		if math.Float32bits(back[i]) != math.Float32bits(dec[i]) {
			t.Fatalf("DecodeBytes[%d] = %v, want %v", i, back[i], dec[i])
		}
	}
	// Appending into an existing slice preserves the prefix.
	pre := []float32{42}
	out := DecodeSlice(pre, enc[:2])
	if out[0] != 42 || len(out) != 3 {
		t.Fatalf("DecodeSlice clobbered prefix: %v", out)
	}
}

// FuzzF16Parity is the differential fuzzer of the satellite spec: any
// float32 must encode identically under the table codec and the retained
// reference, and both halves of the input interpreted as binary16 must
// decode identically (bitwise).
func FuzzF16Parity(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0x80000000))        // -0
	f.Add(math.Float32bits(1.5))     // normal
	f.Add(math.Float32bits(65504))   // MaxValue
	f.Add(math.Float32bits(65520))   // rounds to Inf
	f.Add(math.Float32bits(6.1e-5))  // near subnormal boundary
	f.Add(math.Float32bits(5.96e-8)) // smallest subnormal
	f.Add(math.Float32bits(2.9e-8))  // underflow tie
	f.Add(uint32(0x7f800000))        // +Inf
	f.Add(uint32(0x7fc00001))        // quiet NaN with payload
	f.Add(uint32(0x7f800001))        // signaling NaN, payload shifts to 0
	f.Add(uint32(0x00000001))        // float32 subnormal
	f.Add(uint32(0x38ffffff))        // rounding carry chain
	f.Fuzz(func(t *testing.T, bits uint32) {
		v := math.Float32frombits(bits)
		if got, want := FromFloat32(v), encodeRef(v); got != want {
			t.Fatalf("encode %v (bits %#08x): LUT %#04x, reference %#04x", v, bits, got, want)
		}
		for _, h := range []uint16{uint16(bits), uint16(bits >> 16)} {
			got := math.Float32bits(ToFloat32(h))
			want := math.Float32bits(decodeRef(h))
			if got != want {
				t.Fatalf("decode %#04x: LUT %#08x, reference %#08x", h, got, want)
			}
		}
	})
}
