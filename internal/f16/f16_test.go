package f16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},
		{-65504, 0xfbff},
		{SmallestNormal, 0x0400},
		{SmallestSubnormal, 0x0001},
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
		{0.333251953125, 0x3555}, // nearest half to 1/3
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if back := ToFloat32(c.bits); back != c.f {
			t.Errorf("ToFloat32(%#04x) = %v, want %v", c.bits, back, c.f)
		}
	}
}

func TestNaN(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if h&0x7c00 != 0x7c00 || h&0x3ff == 0 {
		t.Fatalf("NaN encoded as %#04x, not a float16 NaN", h)
	}
	f := ToFloat32(h)
	if !math.IsNaN(float64(f)) {
		t.Fatalf("round-tripped NaN is %v", f)
	}
}

func TestOverflowToInf(t *testing.T) {
	for _, f := range []float32{65520, 1e6, 3.4e38} {
		if got := FromFloat32(f); got != 0x7c00 {
			t.Errorf("FromFloat32(%v) = %#04x, want +Inf (0x7c00)", f, got)
		}
		if got := FromFloat32(-f); got != 0xfc00 {
			t.Errorf("FromFloat32(%v) = %#04x, want -Inf (0xfc00)", -f, got)
		}
	}
	// 65519.996 is below the midpoint between 65504 and 65536: rounds down.
	if got := FromFloat32(65519.0); got != 0x7bff {
		t.Errorf("FromFloat32(65519) = %#04x, want 0x7bff", got)
	}
}

func TestUnderflowToZero(t *testing.T) {
	tiny := float32(1e-10)
	if got := FromFloat32(tiny); got != 0 {
		t.Errorf("FromFloat32(1e-10) = %#04x, want 0", got)
	}
	if got := FromFloat32(-tiny); got != 0x8000 {
		t.Errorf("FromFloat32(-1e-10) = %#04x, want -0", got)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 (0x3c00) and the next half
	// (0x3c01); nearest-even picks 0x3c00.
	f := float32(1.0 + 1.0/2048.0)
	if got := FromFloat32(f); got != 0x3c00 {
		t.Errorf("halfway rounding: got %#04x, want 0x3c00", got)
	}
	// 1 + 3*2^-11 is halfway between 0x3c01 and 0x3c02; even is 0x3c02.
	f = float32(1.0 + 3.0/2048.0)
	if got := FromFloat32(f); got != 0x3c02 {
		t.Errorf("halfway rounding: got %#04x, want 0x3c02", got)
	}
}

// TestExhaustiveRoundTrip checks that every one of the 65536 bit patterns
// survives half -> float32 -> half unchanged (modulo NaN payload class).
func TestExhaustiveRoundTrip(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := uint16(i)
		f := ToFloat32(h)
		back := FromFloat32(f)
		if math.IsNaN(float64(f)) {
			if back&0x7c00 != 0x7c00 || back&0x3ff == 0 {
				t.Fatalf("NaN pattern %#04x did not stay NaN (%#04x)", h, back)
			}
			continue
		}
		if back != h {
			t.Fatalf("round trip %#04x -> %v -> %#04x", h, f, back)
		}
	}
}

func TestQuickRoundedIsNearest(t *testing.T) {
	// Property: Round(f) differs from f by at most half a ULP of the
	// float16 grid around f, for f within the finite float16 range.
	prop := func(v float64) bool {
		f := float32(math.Mod(v, 60000))
		r := Round(f)
		diff := math.Abs(float64(r) - float64(f))
		// ULP at |f|: 2^(floor(log2|f|) - 10), bounded below by the
		// subnormal spacing.
		af := math.Abs(float64(f))
		ulp := SmallestSubnormal
		if af >= SmallestNormal {
			e := math.Floor(math.Log2(af))
			ulp = math.Pow(2, e-10)
		}
		return diff <= ulp/2+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceCodecs(t *testing.T) {
	src := []float32{0, 1, -2.5, 1000, 1e-5}
	enc := EncodeSlice(nil, src)
	dec := DecodeSlice(nil, enc)
	if len(dec) != len(src) {
		t.Fatalf("len %d != %d", len(dec), len(src))
	}
	for i := range src {
		if dec[i] != Round(src[i]) {
			t.Errorf("slice codec [%d]: %v != %v", i, dec[i], Round(src[i]))
		}
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	var s uint16
	for i := 0; i < b.N; i++ {
		s ^= FromFloat32(float32(i) * 0.001)
	}
	_ = s
}
