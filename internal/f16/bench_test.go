package f16

import (
	"math/rand"
	"testing"
)

// benchValues mixes the regimes a real activation column hits: normals of
// varying magnitude, exact zeros, values that land in the half-subnormal
// range, and a few overflow/underflow outliers.
func benchValues(n int) []float32 {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float32, n)
	for i := range vals {
		switch i % 8 {
		case 0:
			vals[i] = 0
		case 1:
			vals[i] = float32(rng.NormFloat64()) * 1e-6 // subnormal half range
		case 2:
			vals[i] = float32(rng.NormFloat64()) * 1e5 // overflow candidates
		default:
			vals[i] = float32(rng.NormFloat64())
		}
	}
	return vals
}

func BenchmarkF16EncodeSlice(b *testing.B) {
	src := benchValues(4096)
	dst := make([]uint16, 0, len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = EncodeSlice(dst[:0], src)
	}
	_ = dst
}

func BenchmarkF16DecodeSlice(b *testing.B) {
	src := EncodeSlice(nil, benchValues(4096))
	dst := make([]float32, 0, len(src))
	b.SetBytes(int64(2 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = DecodeSlice(dst[:0], src)
	}
	_ = dst
}

// BenchmarkF16EncodeRef/DecodeRef measure the retained reference codec so
// the LUT speedup ratio is visible in one bench run.
func BenchmarkF16EncodeRef(b *testing.B) {
	src := benchValues(4096)
	dst := make([]uint16, 0, len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		for _, f := range src {
			dst = append(dst, encodeRef(f))
		}
	}
	_ = dst
}

func BenchmarkF16DecodeRef(b *testing.B) {
	src := EncodeSlice(nil, benchValues(4096))
	dst := make([]float32, 0, len(src))
	b.SetBytes(int64(2 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		for _, h := range src {
			dst = append(dst, decodeRef(h))
		}
	}
	_ = dst
}
