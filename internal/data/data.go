// Package data provides deterministic synthetic stand-ins for the paper's
// two workloads (see DESIGN.md "Substitutions"):
//
//   - Housing: a Zillow/Zestimate-shaped dataset — a properties table with
//     numeric, categorical and missing-valued attributes, and a training
//     table of (parcel, sale month, logerror) rows whose target follows a
//     noisy latent model over the property attributes.
//   - Images: CIFAR10-shaped 3x32x32 images with class-dependent
//     low-frequency structure plus noise, so convolutional features carry
//     class signal and activation statistics are heavy-tailed like real
//     post-ReLU activations.
package data

import (
	"math"
	"math/rand"

	"mistique/internal/frame"
	"mistique/internal/tensor"
)

// HousingTables bundles the synthetic Zillow-style input files.
type HousingTables struct {
	// Properties has one row per parcel with home attributes.
	Properties *frame.Frame
	// Train has (parcelid, month, logerror) sale records.
	Train *frame.Frame
	// Test has (parcelid, month) rows to predict.
	Test *frame.Frame
}

// propertyTypes are the categorical home types.
var propertyTypes = []string{"house", "condo", "townhouse", "victorian", "duplex"}

// regions are the categorical zip-like region codes.
var regions = []string{"90001", "90210", "94103", "98101", "02139", "60601", "73301", "33109"}

// Housing generates nProps parcels and nTrain sale records. The same seed
// always yields identical tables.
func Housing(nProps, nTrain int, seed int64) HousingTables {
	rng := rand.New(rand.NewSource(seed))

	ids := make([]int64, nProps)
	bath := make([]float64, nProps)
	bed := make([]float64, nProps)
	sqft := make([]float64, nProps)
	lot := make([]float64, nProps)
	year := make([]float64, nProps)
	taxValue := make([]float64, nProps)
	taxAmount := make([]float64, nProps)
	lat := make([]float64, nProps)
	lon := make([]float64, nProps)
	pool := make([]float64, nProps)
	garage := make([]float64, nProps)
	region := make([]string, nProps)
	ptype := make([]string, nProps)

	for i := 0; i < nProps; i++ {
		ids[i] = int64(10000 + i)
		bed[i] = float64(1 + rng.Intn(6))
		bath[i] = math.Max(1, bed[i]-float64(rng.Intn(3)))
		sqft[i] = 400*bed[i] + 300*rng.NormFloat64() + 500
		if sqft[i] < 300 {
			sqft[i] = 300
		}
		lot[i] = sqft[i] * (1.5 + 2*rng.Float64())
		year[i] = float64(1900 + rng.Intn(120))
		region[i] = regions[rng.Intn(len(regions))]
		ptype[i] = propertyTypes[rng.Intn(len(propertyTypes))]
		base := 150*sqft[i] + 30000*bath[i] + 500*(year[i]-1900)
		taxValue[i] = base * (0.8 + 0.4*rng.Float64())
		taxAmount[i] = taxValue[i] * 0.012
		lat[i] = 34 + 8*rng.Float64()
		lon[i] = -122 + 10*rng.Float64()
		// ~70% of homes have no pool value recorded (missing, like Zillow).
		if rng.Float64() < 0.3 {
			pool[i] = 1
		} else {
			pool[i] = math.NaN()
		}
		if rng.Float64() < 0.6 {
			garage[i] = float64(rng.Intn(4))
		} else {
			garage[i] = math.NaN()
		}
	}

	props := frame.New(nProps)
	props.AddInts("parcelid", ids)
	props.AddFloats("bathroomcnt", bath)
	props.AddFloats("bedroomcnt", bed)
	props.AddFloats("finishedsquarefeet", sqft)
	props.AddFloats("lotsizesquarefeet", lot)
	props.AddFloats("yearbuilt", year)
	props.AddFloats("taxvaluedollarcnt", taxValue)
	props.AddFloats("taxamount", taxAmount)
	props.AddFloats("latitude", lat)
	props.AddFloats("longitude", lon)
	props.AddFloats("poolcnt", pool)
	props.AddFloats("garagecarcnt", garage)
	props.AddStrings("regionidzip", region)
	props.AddStrings("propertytype", ptype)

	// Sale records: the Zestimate residual (logerror) depends weakly on
	// home attributes plus month seasonality plus noise — enough signal
	// for models to differ meaningfully.
	trainIDs := make([]int64, nTrain)
	months := make([]float64, nTrain)
	logerr := make([]float64, nTrain)
	for i := 0; i < nTrain; i++ {
		p := rng.Intn(nProps)
		trainIDs[i] = ids[p]
		months[i] = float64(1 + rng.Intn(12))
		age := 2017 - year[p]
		logerr[i] = 0.02*math.Sin(months[i]/12*2*math.Pi) +
			0.0002*(age-50) +
			0.00001*(sqft[p]-2000)/10 +
			0.01*rng.NormFloat64()
		if ptype[p] == "victorian" && age > 80 {
			logerr[i] += 0.05 // the "old Victorian homes" failure mode
		}
	}
	train := frame.New(nTrain)
	train.AddInts("parcelid", trainIDs)
	train.AddFloats("month", months)
	train.AddFloats("logerror", logerr)

	nTest := nTrain / 4
	if nTest < 1 {
		nTest = 1
	}
	testIDs := make([]int64, nTest)
	testMonths := make([]float64, nTest)
	for i := 0; i < nTest; i++ {
		testIDs[i] = ids[rng.Intn(nProps)]
		testMonths[i] = float64(10 + rng.Intn(3))
	}
	test := frame.New(nTest)
	test.AddInts("parcelid", testIDs)
	test.AddFloats("month", testMonths)

	return HousingTables{Properties: props, Train: train, Test: test}
}

// Images generates n synthetic 3x32x32 images across `classes` classes.
// Each class has a distinct spatial frequency and color phase; per-image
// jitter and pixel noise keep the task non-trivial. Pixel values are
// roughly in [0, 1]. Returns the image tensor and per-image labels.
func Images(n, classes int, seed int64) (*tensor.T4, []int) {
	if classes < 1 {
		classes = 1
	}
	rng := rand.New(rand.NewSource(seed))
	const hw = 32
	x := tensor.NewT4(n, 3, hw, hw)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % classes
		labels[i] = cls
		freq := 1 + float64(cls)*0.5
		phase := float64(cls) * 0.7
		jx := rng.Float64() * 2 * math.Pi
		jy := rng.Float64() * 2 * math.Pi
		for c := 0; c < 3; c++ {
			plane := x.Plane(i, c)
			chPhase := phase + float64(c)*2.1
			for y := 0; y < hw; y++ {
				for xx := 0; xx < hw; xx++ {
					v := 0.5 +
						0.25*math.Sin(freq*float64(xx)/hw*2*math.Pi+chPhase+jx) +
						0.25*math.Cos(freq*float64(y)/hw*2*math.Pi+chPhase+jy) +
						0.08*rng.NormFloat64()
					plane[y*hw+xx] = float32(v)
				}
			}
		}
	}
	return x, labels
}

// Sequences generates n synthetic sequences of length seqLen with inputDim
// features per step, across `classes` classes. Each class has a distinct
// temporal frequency, so recurrent models can separate them. The tensor
// layout matches nn.ElmanRNN's input: (N, seqLen*inputDim, 1, 1).
func Sequences(n, seqLen, inputDim, classes int, seed int64) (*tensor.T4, []int) {
	if classes < 1 {
		classes = 1
	}
	rng := rand.New(rand.NewSource(seed))
	x := tensor.NewT4(n, seqLen*inputDim, 1, 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % classes
		labels[i] = cls
		freq := 0.5 + float64(cls)*0.9
		phase := rng.Float64() * 2 * math.Pi
		ex := x.Example(i)
		for t := 0; t < seqLen; t++ {
			base := math.Sin(freq*float64(t)/2 + phase)
			for d := 0; d < inputDim; d++ {
				ex[t*inputDim+d] = float32(base + 0.3*float64(d) + 0.05*rng.NormFloat64())
			}
		}
	}
	return x, labels
}

// ConceptMasks builds per-pixel binary concept masks for the first n
// images — a synthetic stand-in for NetDissect's Broden concept labels.
// The concept is "brighter than the image's mean luminance", which real
// early-layer filters tend to track, so concept-aligned units score a
// meaningful IoU. The mask tensor is (n, 1, H, W) with values in {0, 1}.
func ConceptMasks(imgs *tensor.T4, n int) *tensor.T4 {
	if n > imgs.N {
		n = imgs.N
	}
	out := tensor.NewT4(n, 1, imgs.H, imgs.W)
	for i := 0; i < n; i++ {
		dst := out.Plane(i, 0)
		var mean float32
		planes := make([][]float32, imgs.C)
		for c := range planes {
			planes[c] = imgs.Plane(i, c)
		}
		for j := range dst {
			var lum float32
			for _, p := range planes {
				lum += p[j]
			}
			dst[j] = lum / float32(imgs.C)
			mean += dst[j]
		}
		mean /= float32(len(dst))
		for j := range dst {
			if dst[j] > mean {
				dst[j] = 1
			} else {
				dst[j] = 0
			}
		}
	}
	return out
}
