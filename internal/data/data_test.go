package data

import (
	"math"
	"testing"
)

func TestHousingShapes(t *testing.T) {
	h := Housing(100, 400, 1)
	if h.Properties.NumRows() != 100 || h.Train.NumRows() != 400 || h.Test.NumRows() != 100 {
		t.Fatalf("shapes: %d %d %d", h.Properties.NumRows(), h.Train.NumRows(), h.Test.NumRows())
	}
	for _, col := range []string{"parcelid", "bathroomcnt", "finishedsquarefeet", "regionidzip", "propertytype", "poolcnt"} {
		if !h.Properties.Has(col) {
			t.Fatalf("missing property column %s", col)
		}
	}
	for _, col := range []string{"parcelid", "month", "logerror"} {
		if !h.Train.Has(col) {
			t.Fatalf("missing train column %s", col)
		}
	}
}

func TestHousingDeterministic(t *testing.T) {
	a := Housing(50, 100, 7)
	b := Housing(50, 100, 7)
	av := a.Train.Col("logerror").F
	bv := b.Train.Col("logerror").F
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := Housing(50, 100, 8)
	diff := false
	for i := range av {
		if av[i] != c.Train.Col("logerror").F[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical data")
	}
}

func TestHousingHasMissingValues(t *testing.T) {
	h := Housing(500, 100, 2)
	nan := 0
	for _, v := range h.Properties.Col("poolcnt").F {
		if math.IsNaN(v) {
			nan++
		}
	}
	if nan < 200 || nan == 500 {
		t.Fatalf("poolcnt NaN count %d not in expected band", nan)
	}
}

func TestHousingJoinable(t *testing.T) {
	h := Housing(200, 300, 3)
	j := h.Train.JoinInner(h.Properties, "parcelid")
	if j.NumRows() != 300 {
		t.Fatalf("join produced %d rows, want 300 (every sale has a parcel)", j.NumRows())
	}
	if !j.Has("finishedsquarefeet") || !j.Has("logerror") {
		t.Fatal("join lost columns")
	}
}

func TestImagesShapesAndRange(t *testing.T) {
	x, labels := Images(20, 10, 1)
	if x.N != 20 || x.C != 3 || x.H != 32 || x.W != 32 {
		t.Fatalf("image tensor %dx%dx%dx%d", x.N, x.C, x.H, x.W)
	}
	if len(labels) != 20 || labels[0] != 0 || labels[11] != 1 {
		t.Fatalf("labels %v", labels)
	}
	lo, hi := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, v := range x.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < -1 || hi > 2 {
		t.Fatalf("pixel range [%g, %g] implausible", lo, hi)
	}
}

func TestImagesClassesDiffer(t *testing.T) {
	x, labels := Images(40, 2, 5)
	// Mean image of class 0 vs class 1 should differ substantially.
	var m0, m1 [3 * 32 * 32]float64
	n0, n1 := 0, 0
	for i := 0; i < x.N; i++ {
		ex := x.Example(i)
		if labels[i] == 0 {
			for j, v := range ex {
				m0[j] += float64(v)
			}
			n0++
		} else {
			for j, v := range ex {
				m1[j] += float64(v)
			}
			n1++
		}
	}
	var dist float64
	for j := range m0 {
		d := m0[j]/float64(n0) - m1[j]/float64(n1)
		dist += d * d
	}
	if math.Sqrt(dist) < 1 {
		t.Fatalf("class means too close: %g", math.Sqrt(dist))
	}
}

func TestImagesDeterministic(t *testing.T) {
	a, _ := Images(5, 3, 9)
	b, _ := Images(5, 3, 9)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("images not deterministic")
		}
	}
}

func TestSequences(t *testing.T) {
	x, labels := Sequences(30, 8, 2, 3, 1)
	if x.N != 30 || x.C != 16 || x.H != 1 || x.W != 1 {
		t.Fatalf("shape %d %d %d %d", x.N, x.C, x.H, x.W)
	}
	if labels[4] != 1 || labels[5] != 2 {
		t.Fatalf("labels %v", labels[:6])
	}
	a, _ := Sequences(5, 4, 1, 2, 9)
	b, _ := Sequences(5, 4, 1, 2, 9)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("sequences not deterministic")
		}
	}
	// Different classes produce different trajectories on average.
	var d float64
	for i := 0; i < 16; i++ {
		d += math.Abs(float64(x.Example(0)[i] - x.Example(1)[i]))
	}
	if d < 0.5 {
		t.Fatalf("classes too similar: %g", d)
	}
}

func TestConceptMasks(t *testing.T) {
	imgs, _ := Images(10, 2, 1)
	masks := ConceptMasks(imgs, 4)
	if masks.N != 4 || masks.C != 1 || masks.H != 32 || masks.W != 32 {
		t.Fatalf("mask shape %d %d %d %d", masks.N, masks.C, masks.H, masks.W)
	}
	ones := 0
	for _, v := range masks.Data {
		switch v {
		case 0:
		case 1:
			ones++
		default:
			t.Fatalf("mask value %v not binary", v)
		}
	}
	// Roughly half the pixels are above the mean for smooth images.
	total := len(masks.Data)
	if ones < total/4 || ones > 3*total/4 {
		t.Fatalf("mask density %d/%d implausible", ones, total)
	}
	// Clamps n.
	if ConceptMasks(imgs, 99).N != 10 {
		t.Fatal("n not clamped")
	}
}
