package server

// Streaming ingest and approximate-query endpoints. Ingest batches pass
// two admission layers: the global query semaphore (shared with every
// query-class request) and a per-tenant quota — an in-flight bound plus a
// rows/sec token bucket keyed on the X-Mistique-Tenant header — so one
// chatty producer cannot starve other tenants' ingest or the query path's
// fsync budget. The approx endpoints surface the engine's sampled query
// variants; the requested max_error travels through and the engine
// decides sample-vs-exact, so the handlers stay thin.

import (
	"fmt"
	"math"
	"net/http"
	"time"

	"mistique/client"
)

// tenantName extracts the request's tenant bucket key.
func tenantName(r *http.Request) string {
	if t := r.Header.Get("X-Mistique-Tenant"); t != "" {
		return t
	}
	return "default"
}

// admitTenant charges one ingest batch of n rows to the tenant's quota.
// It returns a release func on success, or a non-nil *apiError carrying
// 429 and a Retry-After hint on rejection.
func (s *Server) admitTenant(tenant string, n int) (release func(), err error) {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	ts, ok := s.tenants[tenant]
	if !ok {
		ts = &tenantState{tokens: float64(s.cfg.TenantRowsPerSec), last: time.Now()}
		s.tenants[tenant] = ts
	}
	if ts.inFlight >= s.cfg.TenantMaxInFlight {
		s.tenantShed.Inc()
		return nil, &apiError{status: http.StatusTooManyRequests, retryAfter: s.cfg.RetryAfter,
			msg: fmt.Sprintf("tenant %q over capacity: %d ingests in flight", tenant, ts.inFlight)}
	}
	if rate := float64(s.cfg.TenantRowsPerSec); rate > 0 {
		now := time.Now()
		ts.tokens = math.Min(rate, ts.tokens+now.Sub(ts.last).Seconds()*rate)
		ts.last = now
		if float64(n) > ts.tokens {
			s.tenantShed.Inc()
			return nil, &apiError{status: http.StatusTooManyRequests, retryAfter: s.tenantRetryAfter(n),
				msg: fmt.Sprintf("tenant %q over rate: %d rows asked, %.0f available at %d rows/sec", tenant, n, ts.tokens, s.cfg.TenantRowsPerSec)}
		}
		ts.tokens -= float64(n)
	}
	ts.inFlight++
	return func() {
		s.tenantMu.Lock()
		ts.inFlight--
		s.tenantMu.Unlock()
	}, nil
}

// tenantRetryAfter estimates how long the tenant should wait before the
// bucket can admit n rows again.
func (s *Server) tenantRetryAfter(n int) time.Duration {
	if s.cfg.TenantRowsPerSec <= 0 {
		return s.cfg.RetryAfter
	}
	d := time.Duration(float64(n) / float64(s.cfg.TenantRowsPerSec) * float64(time.Second))
	if d < s.cfg.RetryAfter {
		return s.cfg.RetryAfter
	}
	return d
}

func (s *Server) handleIngest(r *http.Request) (any, error) {
	model, interm := r.PathValue("model"), r.PathValue("interm")
	var req client.IngestRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if len(req.Columns) == 0 || len(req.Rows) == 0 {
		return nil, badRequest("ingest %s.%s needs columns and rows", model, interm)
	}
	release, err := s.admitTenant(tenantName(r), len(req.Rows))
	if err != nil {
		return nil, err
	}
	defer release()

	rows := make([][]float32, len(req.Rows))
	for i, wr := range req.Rows {
		rows[i] = client.Floats(wr)
	}
	res, err := s.sys.IngestRows(model, interm, req.Columns, rows)
	if err != nil {
		return nil, err
	}
	return client.IngestResponse{
		Model:        res.Model,
		Intermediate: res.Intermediate,
		Rows:         res.Rows,
		FlushedRows:  res.FlushedRows,
		WALBytes:     res.WALBytes,
	}, nil
}

func (s *Server) handleColDist(r *http.Request) (any, error) {
	var req client.ColDistRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if req.Model == "" || req.Intermediate == "" || req.Column == "" {
		return nil, badRequest("coldist needs model, intermediate and column")
	}
	d, err := s.sys.ColDistCtx(r.Context(), req.Model, req.Intermediate, req.Column, req.MaxError)
	if err != nil {
		return nil, err
	}
	return client.ColDistResponse{
		Model: d.Model, Intermediate: d.Intermediate, Column: d.Column,
		Rows: d.Rows, Finite: d.Finite, NaN: d.NaN, PosInf: d.PosInf, NegInf: d.NegInf,
		Min: client.F32(d.Min), Max: client.F32(d.Max),
		Mean: d.Mean, MeanBound: d.MeanBound, Std: d.Std,
		P50: client.F32(d.P50), P50RankBound: d.P50RankBound,
		SampleRows: d.SampleRows, Strategy: d.Strategy.String(), FetchSeconds: d.FetchSeconds,
	}, nil
}

func (s *Server) handleApproxTopK(r *http.Request) (any, error) {
	var req client.ApproxTopKRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if req.Model == "" || req.Intermediate == "" || req.Column == "" {
		return nil, badRequest("approx topk needs model, intermediate and column")
	}
	if req.K <= 0 {
		return nil, badRequest("approx topk needs k > 0, got %d", req.K)
	}
	a, err := s.sys.ApproxTopKCtx(r.Context(), req.Model, req.Intermediate, req.Column, req.K, req.MaxError)
	if err != nil {
		return nil, err
	}
	entries := make([]client.ApproxTopKEntry, len(a.Entries))
	for i, e := range a.Entries {
		entries[i] = client.ApproxTopKEntry{Row: e.Row, Value: client.F32(e.Value)}
	}
	return client.ApproxTopKResponse{
		Model: a.Model, Intermediate: a.Intermediate, Column: a.Column,
		Entries: entries, RankBound: a.RankBound,
		Rows: a.Rows, SampleRows: a.SampleRows,
		Strategy: a.Strategy.String(), FetchSeconds: a.FetchSeconds,
	}, nil
}

func (s *Server) handleConfusion(r *http.Request) (any, error) {
	var req client.ConfusionRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if req.Model == "" || req.Intermediate == "" || req.LabelCol == "" || req.PredCol == "" {
		return nil, badRequest("confusion needs model, intermediate, label_col and pred_col")
	}
	cm, err := s.sys.ConfusionMatrixCtx(r.Context(), req.Model, req.Intermediate, req.LabelCol, req.PredCol, req.MaxError)
	if err != nil {
		return nil, err
	}
	cells := make([]client.ConfusionCell, len(cm.Cells))
	for i, c := range cm.Cells {
		cells[i] = client.ConfusionCell{Label: client.F32(c.Label), Pred: client.F32(c.Pred), Count: c.Count, Bound: c.Bound}
	}
	return client.ConfusionResponse{
		Model: cm.Model, Intermediate: cm.Intermediate,
		LabelCol: cm.LabelCol, PredCol: cm.PredCol,
		Cells: cells, Rows: cm.Rows, Stratified: cm.Stratified,
		MaxBound: cm.MaxBound, SampleRows: cm.SampleRows,
		Strategy: cm.Strategy.String(), FetchSeconds: cm.FetchSeconds,
	}, nil
}

func (s *Server) handleSampleRows(r *http.Request) (any, error) {
	var req client.SampleRowsRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if req.Model == "" || req.Intermediate == "" {
		return nil, badRequest("approx rows needs model and intermediate")
	}
	res, err := s.sys.GetIntermediateApproxCtx(r.Context(), req.Model, req.Intermediate, req.Cols, req.MaxRows)
	if err != nil {
		return nil, err
	}
	return client.SampleRowsResponse{
		Model: res.Model, Intermediate: res.Intermediate,
		Cols: res.Cols, RowIDs: res.RowIDs, Data: matrixRows(res.Data),
		Rows: res.Rows, Strategy: res.Strategy.String(), FetchSeconds: res.FetchSeconds,
	}, nil
}
