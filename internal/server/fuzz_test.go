package server

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"sync"
	"testing"

	"mistique"
	"mistique/client"
	"mistique/internal/pipeline"
	"mistique/internal/zillow"
)

var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

// fuzzHandler lazily builds one shared System + Server reused across
// fuzz executions — building a store per input would drown the fuzzer in
// setup. The store lives in its own temp dir (not t.TempDir, which is
// torn down per subtest while the shared Server still references it).
func fuzzHandler(t testing.TB) *Server {
	fuzzOnce.Do(func() {
		dir, err := os.MkdirTemp("", "mistique-fuzz-*")
		if err != nil {
			t.Fatal(err)
		}
		sys, err := mistique.Open(dir, mistique.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ps, err := pipeline.SpecFromYAML(demoSpec)
		if err != nil {
			t.Fatal(err)
		}
		p, err := pipeline.New(ps)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.LogPipeline(p, zillow.Env(50, 120, 1)); err != nil {
			t.Fatal(err)
		}
		fuzzSrv = New(sys, Config{})
	})
	return fuzzSrv
}

// validToken reports whether s is a non-empty RFC 7230 token — the set
// net/http itself accepts as a method; anything else never reaches a
// handler.
func validToken(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case strings.ContainsRune("!#$%&'*+-.^_`|~", r):
		default:
			return false
		}
	}
	return true
}

// FuzzRouting throws arbitrary methods, paths and bodies at the full
// handler chain. The contract under test: the server never panics, and
// every non-2xx response is the JSON error envelope with a status field
// matching the HTTP status — no plain-text net/http error pages, no
// truncated bodies.
func FuzzRouting(f *testing.F) {
	seeds := []struct {
		method, path, body string
	}{
		{"GET", "/api/v1/models", ""},
		{"GET", "/api/v1/models/demo", ""},
		{"GET", "/api/v1/models/demo/intermediates/joined", ""},
		{"GET", "/api/v1/models/demo/intermediates/joined/columns/logerror?n=5", ""},
		{"POST", "/api/v1/query", `{"model":"demo","intermediate":"joined","n_ex":4}`},
		{"POST", "/api/v1/query", `{"model":"demo",`},
		{"POST", "/api/v1/query", `{"model":"demo"} trailing`},
		{"POST", "/api/v1/query", `{"unknown_field":1}`},
		{"POST", "/api/v1/filter", `{"model":"m","intermediate":"i","column":"c","op":"between","bound":0}`},
		{"POST", "/api/v1/rows", `{"model":"m","intermediate":"i","from":-5,"to":2}`},
		{"GET", "/api/v1/estimate?model=&interm=", ""},
		{"GET", "/api/v1/estimate?model=demo&interm=joined&n=NaN", ""},
		{"DELETE", "/api/v1/query", ""},
		{"GET", "/", ""},
		{"GET", "/metrics", ""},
		{"GET", "/statsz", ""},
		{"PATCH", "/api/v1/unknown/../../etc/passwd", ""},
		{"POST", "/api/v1/compact", ""},
	}
	for _, s := range seeds {
		f.Add(s.method, s.path, s.body)
	}

	f.Fuzz(func(t *testing.T, method, path, body string) {
		// Constrain inputs to what a real HTTP layer could deliver;
		// everything else is the transport's problem, not the router's.
		if !validToken(method) {
			t.Skip()
		}
		if !strings.HasPrefix(path, "/") {
			path = "/" + path
		}
		for _, r := range path {
			// A request target with spaces or control bytes never parses
			// as an HTTP/1.x request line.
			if r <= ' ' || r == 0x7f {
				t.Skip()
			}
		}
		if _, err := url.ParseRequestURI(path); err != nil {
			t.Skip()
		}

		srv := fuzzHandler(t)
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req) // must not panic

		if rec.Code < 400 {
			return
		}
		var env client.ErrorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("%s %s -> %d with non-envelope body %q: %v", method, path, rec.Code, rec.Body.String(), err)
		}
		if env.Error.Status != rec.Code {
			t.Fatalf("%s %s -> %d but envelope says %d", method, path, rec.Code, env.Error.Status)
		}
		if env.Error.Message == "" {
			t.Fatalf("%s %s -> %d with empty error message", method, path, rec.Code)
		}
	})
}
