package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mistique"
	"mistique/client"
	"mistique/internal/colstore"
	"mistique/internal/data"
	"mistique/internal/nn"
	"mistique/internal/pipeline"
	"mistique/internal/zillow"
)

// eq compares a wire value against an engine value, treating NaN as
// equal to NaN (pre-fillna intermediates carry NaNs by design).
func eq(a client.F32, b float32) bool {
	fa := float32(a)
	if math.IsNaN(float64(fa)) && math.IsNaN(float64(b)) {
		return true
	}
	return fa == b
}

// demoSpec mirrors the engine test fixture: a 6-stage Zillow pipeline
// whose "joined" intermediate is materialized and whose "model" stage
// yields predictions.
const demoSpec = `
name: demo
stages:
  - name: props
    op: read_table
    params: {table: properties}
  - name: sales
    op: read_table
    params: {table: train}
  - name: joined
    op: join
    inputs: [sales, props]
    params: {on: parcelid}
  - name: filled
    op: fillna
    inputs: [joined]
  - name: splits
    op: split
    inputs: [filled]
    params: {frac: 0.8, seed: 1}
    outputs: [train_split, eval_split]
  - name: model
    op: train_xgb
    inputs: [train_split]
    params: {target: logerror, rounds: 4, max_depth: 3}
`

// newSys opens a System in a temp dir and logs the demo pipeline.
func newSys(t *testing.T, cfg mistique.Config) *mistique.System {
	t.Helper()
	sys, err := mistique.Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	logPipeline(t, sys, demoSpec)
	return sys
}

func logPipeline(t *testing.T, sys *mistique.System, spec string) {
	t.Helper()
	ps, err := pipeline.SpecFromYAML(spec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(ps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.LogPipeline(p, zillow.Env(200, 600, 1)); err != nil {
		t.Fatal(err)
	}
}

// newService stands up a System + Server + httptest listener + client.
func newService(t *testing.T, mcfg mistique.Config, scfg Config) (*mistique.System, *client.Client) {
	t.Helper()
	sys := newSys(t, mcfg)
	srv := New(sys, scfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	return sys, c
}

func TestCatalogEndpoints(t *testing.T) {
	sys, c := newService(t, mistique.Config{}, Config{})
	ctx := context.Background()

	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Name != "demo" {
		t.Fatalf("models = %+v", models)
	}
	if len(models[0].Intermediates) == 0 || len(models[0].Stages) != 6 {
		t.Fatalf("model entry missing detail: %+v", models[0])
	}

	m, err := c.Model(ctx, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalExamples != sys.Metadata().Model("demo").TotalExamples {
		t.Fatalf("total examples %d", m.TotalExamples)
	}

	it, err := c.Intermediate(ctx, "demo", "joined")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sys.Metadata().IntermSnapshot("demo", "joined")
	if !it.Materialized || it.Rows != want.Rows || len(it.Columns) != len(want.Columns) {
		t.Fatalf("intermediate = %+v, catalog = %+v", it, want)
	}
}

// TestQueryParity checks that every data-bearing endpoint returns exactly
// what direct System calls on the same store return.
func TestQueryParity(t *testing.T) {
	sys, c := newService(t, mistique.Config{}, Config{})
	ctx := context.Background()
	cols := []string{"logerror", "finishedsquarefeet"}

	qr, err := c.GetIntermediate(ctx, "demo", "joined", cols, 100)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sys.GetIntermediate("demo", "joined", cols, 100)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Rows != direct.Data.Rows || len(qr.Data) != direct.Data.Rows {
		t.Fatalf("rows %d vs %d", qr.Rows, direct.Data.Rows)
	}
	for i := range qr.Data {
		for j := range qr.Data[i] {
			if !eq(qr.Data[i][j], direct.Data.Row(i)[j]) {
				t.Fatalf("data mismatch at (%d,%d): %v vs %v", i, j, qr.Data[i][j], direct.Data.Row(i)[j])
			}
		}
	}
	if qr.EstReadSecs <= 0 || qr.EstRerunSecs <= 0 {
		t.Fatalf("estimates not populated: %+v", qr)
	}

	// Forced strategies agree with each other (deterministic pipeline).
	read, err := c.Fetch(ctx, "demo", "joined", cols, 50, "READ")
	if err != nil {
		t.Fatal(err)
	}
	if read.Strategy != "READ" {
		t.Fatalf("forced READ answered by %s", read.Strategy)
	}
	rerun, err := c.Fetch(ctx, "demo", "joined", cols, 50, "RERUN")
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Strategy != "RERUN" {
		t.Fatalf("forced RERUN answered by %s", rerun.Strategy)
	}
	for i := range read.Data {
		for j := range read.Data[i] {
			if !eq(read.Data[i][j], float32(rerun.Data[i][j])) {
				t.Fatalf("READ/RERUN disagree at (%d,%d)", i, j)
			}
		}
	}

	// Column endpoint.
	vals, err := c.GetColumn(ctx, "demo", "joined", "logerror", 64)
	if err != nil {
		t.Fatal(err)
	}
	dvals, err := sys.GetColumn("demo", "joined", "logerror", 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(dvals) {
		t.Fatalf("column lengths %d vs %d", len(vals), len(dvals))
	}
	for i := range vals {
		if !eq(client.F32(vals[i]), dvals[i]) {
			t.Fatalf("column mismatch at %d", i)
		}
	}

	// Estimate parity, including the engine's choice.
	est, err := c.Estimate(ctx, "demo", "joined", 100)
	if err != nil {
		t.Fatal(err)
	}
	dr, drr, err := sys.Estimate("demo", "joined", 100)
	if err != nil {
		t.Fatal(err)
	}
	if est.EstReadSecs != dr || est.EstRerunSecs != drr {
		t.Fatalf("estimate parity: %+v vs (%g, %g)", est, dr, drr)
	}
	if est.Chosen != "READ" && est.Chosen != "RERUN" {
		t.Fatalf("bad chosen %q", est.Chosen)
	}

	// Filter parity.
	rows, err := c.FilterRows(ctx, "demo", "joined", "logerror", "gt", 0)
	if err != nil {
		t.Fatal(err)
	}
	drows, err := sys.FilterRows("demo", "joined", "logerror", parseOpMust(t, "gt"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(drows) {
		t.Fatalf("filter rows %d vs %d", len(rows), len(drows))
	}
	for i := range rows {
		if rows[i] != drows[i] {
			t.Fatalf("filter mismatch at %d", i)
		}
	}

	// Row-range parity.
	rr, err := c.GetRows(ctx, "demo", "joined", cols, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	drm, err := sys.GetRows("demo", "joined", cols, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Data) != drm.Rows || rr.From != 10 || rr.To != 40 {
		t.Fatalf("rows shape %+v vs %d", rr, drm.Rows)
	}
	for i := range rr.Data {
		for j := range rr.Data[i] {
			if !eq(rr.Data[i][j], drm.Row(i)[j]) {
				t.Fatalf("rows mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func parseOpMust(t *testing.T, op string) colstore.Op {
	t.Helper()
	o, err := parseOp(op)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOpsEndpoints(t *testing.T) {
	sys, c := newService(t, mistique.Config{}, Config{})
	ctx := context.Background()

	if _, err := c.GetIntermediate(ctx, "demo", "joined", nil, 10); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters["mistique_http_requests_total"] == 0 {
		t.Fatalf("http series missing from stats: %v", stats.Counters)
	}
	if stats.Counters["mistique_queries_total"] == 0 {
		t.Fatal("engine series missing from stats")
	}
	if stats.Gauges["mistique_disk_bytes"] < 0 {
		t.Fatal("disk bytes missing")
	}
	if _, ok := stats.Histograms["mistique_http_request_seconds"]; !ok {
		t.Fatal("request latency histogram missing")
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Models != 1 {
		t.Fatalf("health = %+v", h)
	}

	if _, err := c.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	_ = sys
}

// TestMetricsExposition hits /metrics and /statsz raw.
func TestMetricsExposition(t *testing.T) {
	sys := newSys(t, mistique.Config{})
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("metrics: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{
		"# TYPE mistique_http_requests_total counter",
		"# TYPE mistique_http_in_flight gauge",
		"# TYPE mistique_http_request_seconds histogram",
		"mistique_models_logged_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("statsz not JSON: %v", err)
	}
}

// errorShape asserts a raw response is status + well-formed envelope.
func errorShape(t *testing.T, resp *http.Response, status int) client.ErrorEnvelope {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != status {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, status, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("error response Content-Type = %q", ct)
	}
	var env client.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body not an envelope: %v", err)
	}
	if env.Error.Status != status || env.Error.Message == "" {
		t.Fatalf("malformed envelope %+v for status %d", env, status)
	}
	return env
}

func TestErrorEnvelopes(t *testing.T) {
	sys := newSys(t, mistique.Config{})
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Unknown model / intermediate / column → 404, surfaced as APIError.
	if _, err := c.Model(ctx, "nope"); !client.IsNotFound(err) {
		t.Fatalf("unknown model err = %v", err)
	}
	if _, err := c.GetIntermediate(ctx, "nope", "joined", nil, 1); !client.IsNotFound(err) {
		t.Fatalf("unknown model query err = %v", err)
	}
	if _, err := c.GetIntermediate(ctx, "demo", "nope", nil, 1); !client.IsNotFound(err) {
		t.Fatalf("unknown intermediate err = %v", err)
	}
	if _, err := c.GetColumn(ctx, "demo", "joined", "no_such_col", 1); !client.IsNotFound(err) {
		t.Fatalf("unknown column err = %v", err)
	}
	if _, err := c.FilterRows(ctx, "demo", "nope", "logerror", "gt", 0); !client.IsNotFound(err) {
		t.Fatalf("filter unknown intermediate err = %v", err)
	}

	// Bad params → 400.
	var ae *client.APIError
	if _, err := c.FilterRows(ctx, "demo", "joined", "logerror", "between", 0); !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("bad op err = %v", err)
	}
	if _, err := c.GetRows(ctx, "demo", "joined", nil, -1, 5); !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("bad range err = %v", err)
	}
	if _, err := c.Fetch(ctx, "demo", "joined", nil, 5, "MAYBE"); !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("bad strategy err = %v", err)
	}

	// Raw shapes: malformed body, unknown field, bad query param, wrong
	// method, unknown route.
	resp, err := http.Post(ts.URL+"/api/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	errorShape(t, resp, 400)

	resp, err = http.Post(ts.URL+"/api/v1/query", "application/json", strings.NewReader(`{"model":"demo","intermediate":"joined","surprise":1}`))
	if err != nil {
		t.Fatal(err)
	}
	errorShape(t, resp, 400)

	resp, err = http.Get(ts.URL + "/api/v1/models/demo/intermediates/joined/columns/logerror?n=many")
	if err != nil {
		t.Fatal(err)
	}
	errorShape(t, resp, 400)

	resp, err = http.Get(ts.URL + "/api/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	errorShape(t, resp, 405)

	resp, err = http.Get(ts.URL + "/api/v1/unknown")
	if err != nil {
		t.Fatal(err)
	}
	errorShape(t, resp, 404)

	resp, err = http.Get(ts.URL + "/api/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	errorShape(t, resp, 400)
}

// TestForceReadUnmaterialized maps ErrNotMaterialized to 409.
func TestForceReadUnmaterialized(t *testing.T) {
	// A huge gamma keeps everything unmaterialized at logging time.
	sys := newSys(t, mistique.Config{Gamma: 1e12})
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, _ := client.New(ts.URL, client.WithMaxRetries(0))

	var ae *client.APIError
	_, err := c.Fetch(context.Background(), "demo", "joined", nil, 5, "READ")
	if !errors.As(err, &ae) || ae.Status != 409 {
		t.Fatalf("force READ on unmaterialized = %v, want 409", err)
	}
}

// TestAdmissionControl proves over-capacity requests are rejected with
// 429 + Retry-After while an admitted request is still executing.
func TestAdmissionControl(t *testing.T) {
	sys := newSys(t, mistique.Config{})
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv := New(sys, Config{
		MaxInFlight: 1,
		RetryAfter:  2 * time.Second,
		queryGate: func() {
			entered <- struct{}{}
			<-gate
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only slot.
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/api/v1/query", "application/json",
			strings.NewReader(`{"model":"demo","intermediate":"joined","n_ex":4}`))
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				body, _ := io.ReadAll(resp.Body)
				err = errors.New(string(body))
			}
		}
		done <- err
	}()
	<-entered

	// Second query-class request: immediate 429 with the hint.
	resp, err := http.Post(ts.URL+"/api/v1/query", "application/json",
		strings.NewReader(`{"model":"demo","intermediate":"joined","n_ex":4}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	errorShape(t, resp, 429)

	// Catalog endpoints are never shed.
	resp, err = http.Get(ts.URL + "/api/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("catalog read shed under load: %d", resp.StatusCode)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
	if got := sys.Obs().Counter("mistique_http_rejected_total", "").Value(); got == 0 {
		t.Fatal("rejected counter did not move")
	}
}

// TestRequestTimeout maps an expired per-request deadline to 504.
func TestRequestTimeout(t *testing.T) {
	sys := newSys(t, mistique.Config{})
	srv := New(sys, Config{
		RequestTimeout: 50 * time.Millisecond,
		queryGate:      func() { time.Sleep(120 * time.Millisecond) },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/v1/query", "application/json",
		strings.NewReader(`{"model":"demo","intermediate":"joined","n_ex":4}`))
	if err != nil {
		t.Fatal(err)
	}
	errorShape(t, resp, 504)
}

// TestClientRetries5xx checks the retry policy against a flaky backend:
// two 503s then success; and that 400s are never retried.
func TestClientRetries5xx(t *testing.T) {
	var calls int
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(503)
			json.NewEncoder(w).Encode(client.ErrorEnvelope{Error: client.ErrorBody{Status: 503, Message: "warming up"}})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(client.ModelsResponse{Models: []client.ModelInfo{{Name: "m"}}})
	}))
	defer flaky.Close()

	c, err := client.New(flaky.URL, client.WithMaxRetries(3), client.WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	models, err := c.Models(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || calls != 3 {
		t.Fatalf("models %v after %d calls", models, calls)
	}

	// 4xx: one attempt, typed error.
	calls = 0
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(400)
		json.NewEncoder(w).Encode(client.ErrorEnvelope{Error: client.ErrorBody{Status: 400, Message: "nope"}})
	}))
	defer bad.Close()
	c2, _ := client.New(bad.URL, client.WithMaxRetries(3), client.WithBackoff(time.Millisecond))
	var ae *client.APIError
	if _, err := c2.Models(context.Background()); !errors.As(err, &ae) || ae.Status != 400 || calls != 1 {
		t.Fatalf("err = %v after %d calls", err, calls)
	}

	// Exhausted retries surface the 5xx.
	calls = 0
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(503)
	}))
	defer down.Close()
	c3, _ := client.New(down.URL, client.WithMaxRetries(2), client.WithBackoff(time.Millisecond))
	if _, err := c3.Models(context.Background()); !errors.As(err, &ae) || ae.Status != 503 || calls != 3 {
		t.Fatalf("err = %v after %d calls", err, calls)
	}
}

// TestClientRetries429 checks backpressure transparency: a saturated
// window resolves through Retry-After waits, not an error.
func TestClientRetries429(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 3 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(429)
			json.NewEncoder(w).Encode(client.ErrorEnvelope{Error: client.ErrorBody{Status: 429, Message: "over capacity"}})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(client.HealthResponse{Status: "ok"})
	}))
	defer srv.Close()

	c, _ := client.New(srv.URL, client.WithMaxRetries(0), client.WithTimeout(5*time.Second))
	h, err := c.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v (calls %d)", h, err, calls)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}

	// A deadline bounds the 429 loop and surfaces IsOverCapacity.
	calls = 0
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(429)
	}))
	defer always.Close()
	c2, _ := client.New(always.URL, client.WithTimeout(300*time.Millisecond))
	_, err = c2.Health(context.Background())
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("saturated server err = %v", err)
	}
}

// TestLineageEndpoint walks a two-version DNN chain over the wire: the
// response must list newest-first with Parent links and surface the
// weight-snapshot accounting; an unknown model must 404.
func TestLineageEndpoint(t *testing.T) {
	sys, c := newService(t, mistique.Config{}, Config{})
	ctx := context.Background()

	net := nn.SimpleCNN("cnn", 4, 1)
	imgs, _ := data.Images(8, 4, 1)
	opts := mistique.DNNLogOptions{Scheme: mistique.SchemeFull, Layers: []int{11, 13}}
	if _, err := sys.LogDNN("cnn@e0", net, imgs, opts); err != nil {
		t.Fatal(err)
	}
	opts.Parent = "cnn@e0"
	if _, err := sys.LogDNN("cnn@e1", net, imgs, opts); err != nil {
		t.Fatal(err)
	}

	resp, err := c.Lineage(ctx, "cnn@e1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != "cnn@e1" || len(resp.Versions) != 2 {
		t.Fatalf("lineage = %+v", resp)
	}
	head, root := resp.Versions[0], resp.Versions[1]
	if head.Model != "cnn@e1" || head.Parent != "cnn@e0" || head.Kind != "dnn" {
		t.Fatalf("head = %+v", head)
	}
	if root.Model != "cnn@e0" || root.Parent != "" {
		t.Fatalf("root = %+v", root)
	}
	// e1 logged the same activations as e0, so every column exact-dedups
	// and its post-dedup footprint is legitimately zero; the root paid.
	if head.Intermediates != 2 || root.StoredBytes <= 0 {
		t.Fatalf("accounting: head=%+v root=%+v", head, root)
	}
	if head.WeightBytes <= 0 || root.WeightBytes <= 0 {
		t.Fatalf("weight snapshots missing: head=%+v root=%+v", head, root)
	}

	if _, err := c.Lineage(ctx, "nope"); !client.IsNotFound(err) {
		t.Fatalf("unknown model: %v", err)
	}
}
