package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mistique"
	"mistique/client"
)

// auxSpec is a second pipeline a logger ingests while the query storm
// runs, proving reads and writes coexist.
const auxSpec = `
name: aux
stages:
  - name: props
    op: read_table
    params: {table: properties}
  - name: sales
    op: read_table
    params: {table: train}
  - name: joined
    op: join
    inputs: [sales, props]
    params: {on: parcelid}
  - name: filled
    op: fillna
    inputs: [joined]
  - name: model
    op: train_xgb
    inputs: [filled]
    params: {target: logerror, rounds: 2, max_depth: 2}
`

// TestStressConcurrentClients hammers the service with 64 concurrent
// clients issuing mixed query classes against a deliberately tiny
// admission window while a logger ingests a new model through the same
// System. Every request must succeed (the client rides out 429s via
// Retry-After), results must be consistent, and the admission semaphore
// must actually have shed load. Run with -race.
func TestStressConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	sys := newSys(t, mistique.Config{})
	srv := New(sys, Config{
		MaxInFlight: 4,
		RetryAfter:  0, // default 1s; clients floor a 0-hint at 100ms anyway
		// Widen each request's in-flight window so 64 clients reliably
		// overrun a 4-slot semaphore.
		queryGate: func() { time.Sleep(500 * time.Microsecond) },
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	c, err := client.New("http://"+ln.Addr().String(), client.WithTimeout(2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Ground truth from direct System calls before the storm.
	wantFilter, err := sys.FilterRows("demo", "joined", "logerror", parseOpMust(t, "gt"), 0)
	if err != nil {
		t.Fatal(err)
	}
	wantCol, err := sys.GetColumn("demo", "joined", "logerror", 32)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 64
	const iters = 5
	var failed atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, clients)

	// The concurrent logger: a new model lands mid-storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		logPipeline(t, sys, auxSpec)
	}()

	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				var err error
				switch (id + it) % 6 {
				case 0:
					var qr *client.QueryResponse
					qr, err = c.GetIntermediate(ctx, "demo", "joined", []string{"logerror"}, 64)
					if err == nil && qr.Rows != 64 {
						err = fmt.Errorf("got %d rows, want 64", qr.Rows)
					}
				case 1:
					var qr *client.QueryResponse
					qr, err = c.Fetch(ctx, "demo", "joined", []string{"logerror", "finishedsquarefeet"}, 32, "RERUN")
					if err == nil && qr.Strategy != "RERUN" {
						err = fmt.Errorf("forced RERUN answered by %s", qr.Strategy)
					}
				case 2:
					var rows []int
					rows, err = c.FilterRows(ctx, "demo", "joined", "logerror", "gt", 0)
					if err == nil && len(rows) != len(wantFilter) {
						err = fmt.Errorf("filter returned %d rows, want %d", len(rows), len(wantFilter))
					}
				case 3:
					var rr *client.RowsResponse
					rr, err = c.GetRows(ctx, "demo", "joined", []string{"logerror"}, 10, 20)
					if err == nil && len(rr.Data) != 10 {
						err = fmt.Errorf("row range returned %d rows, want 10", len(rr.Data))
					}
				case 4:
					var vals []float32
					vals, err = c.GetColumn(ctx, "demo", "joined", "logerror", 32)
					if err == nil {
						if len(vals) != len(wantCol) {
							err = fmt.Errorf("column returned %d values, want %d", len(vals), len(wantCol))
						} else {
							for i := range vals {
								if !eq(client.F32(vals[i]), wantCol[i]) {
									err = fmt.Errorf("column value %d drifted under load", i)
									break
								}
							}
						}
					}
				case 5:
					var est *client.EstimateResponse
					est, err = c.Estimate(ctx, "demo", "joined", 100)
					if err == nil && (est.EstReadSecs <= 0 || est.EstRerunSecs <= 0) {
						err = fmt.Errorf("degenerate estimate %+v", est)
					}
				}
				if err != nil {
					failed.Add(1)
					select {
					case errc <- fmt.Errorf("client %d iter %d: %w", id, it, err):
					default:
					}
				}
			}
		}(id)
	}
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Errorf("%d requests failed under load; first: %v", n, <-errc)
	}
	if got := sys.Obs().Counter("mistique_http_rejected_total", "").Value(); got == 0 {
		t.Error("admission control never engaged: rejected counter is 0")
	}

	// The model logged mid-storm is fully queryable.
	qr, err := c.GetIntermediate(ctx, "aux", "filled", nil, 16)
	if err != nil {
		t.Fatalf("model logged during the storm is not queryable: %v", err)
	}
	if qr.Rows != 16 {
		t.Fatalf("aux query returned %d rows", qr.Rows)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestGracefulShutdown proves the drain contract: Shutdown lets in-flight
// queries finish and flushes the store, so a fresh System over the same
// directory sees everything that was logged.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	sys, err := mistique.Open(dir, mistique.Config{})
	if err != nil {
		t.Fatal(err)
	}
	logPipeline(t, sys, demoSpec)

	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	srv := New(sys, Config{
		RequestTimeout: time.Minute,
		queryGate: func() {
			entered <- struct{}{}
			<-gate
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Put two queries in flight and hold them at the gate.
	type result struct {
		status int
		err    error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(base+"/api/v1/query", "application/json",
				strings.NewReader(`{"model":"demo","intermediate":"joined","n_ex":8}`))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			results <- result{status: resp.StatusCode}
		}()
	}
	<-entered
	<-entered

	// Begin the drain while both are still executing.
	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()

	// The drain must wait for them, not kill them.
	select {
	case err := <-shutDone:
		t.Fatalf("shutdown returned (%v) while queries were still gated", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(gate)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("in-flight request got %d during drain, want 200", r.status)
		}
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// No data loss: a fresh System over the same directory has the model
	// and answers the same queries.
	sys2, err := mistique.Open(dir, mistique.Config{})
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	res, err := sys2.GetIntermediate("demo", "joined", []string{"logerror"}, 32)
	if err != nil {
		t.Fatalf("query after reopen: %v", err)
	}
	if res.Data.Rows != 32 {
		t.Fatalf("reopened store returned %d rows", res.Data.Rows)
	}
}
