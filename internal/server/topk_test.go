package server

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mistique"
	"mistique/client"
)

// TestTopKEndpoint holds POST /api/v1/topk to exact parity with direct
// System.TopK calls and checks the endpoint's whole error surface.
func TestTopKEndpoint(t *testing.T) {
	sys := newSys(t, mistique.Config{})
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, k := range []int{0, 1, 10, 600, 601} {
		got, err := c.TopK(ctx, "demo", "joined", "yearbuilt", k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want, err := sys.TopK("demo", "joined", "yearbuilt", k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d entries over HTTP, %d direct", k, len(got), len(want))
		}
		for i := range want {
			if got[i].Row != want[i].Row ||
				math.Float32bits(float32(got[i].Value)) != math.Float32bits(want[i].Value) {
				t.Fatalf("k=%d entry %d: {%d %v} over HTTP, {%d %v} direct",
					k, i, got[i].Row, got[i].Value, want[i].Row, want[i].Value)
			}
		}
	}

	// Unknown model / intermediate / column → 404.
	if _, err := c.TopK(ctx, "nope", "joined", "yearbuilt", 3); !client.IsNotFound(err) {
		t.Fatalf("unknown model err = %v", err)
	}
	if _, err := c.TopK(ctx, "demo", "nope", "yearbuilt", 3); !client.IsNotFound(err) {
		t.Fatalf("unknown intermediate err = %v", err)
	}
	if _, err := c.TopK(ctx, "demo", "joined", "no_such_col", 3); !client.IsNotFound(err) {
		t.Fatalf("unknown column err = %v", err)
	}

	// Bad params → 400.
	var ae *client.APIError
	if _, err := c.TopK(ctx, "demo", "joined", "yearbuilt", -1); !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("negative k err = %v", err)
	}
	if _, err := c.TopK(ctx, "demo", "joined", "", 3); !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("empty column err = %v", err)
	}

	// Raw shapes: malformed body and wrong method.
	resp, err := http.Post(ts.URL+"/api/v1/topk", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	errorShape(t, resp, 400)
	resp, err = http.Get(ts.URL + "/api/v1/topk")
	if err != nil {
		t.Fatal(err)
	}
	errorShape(t, resp, 405)
}
