package server

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mistique"
	"mistique/client"
	"mistique/internal/sample"
)

func streamCell(row int64, col int) float32 { return float32(row%353) + float32(col)*0.5 }

// newStreamService stands up a service tuned for streaming tests.
func newStreamService(t *testing.T, scfg Config) (*mistique.System, *Server, *httptest.Server) {
	t.Helper()
	sys, err := mistique.Open(t.TempDir(), mistique.Config{
		RowBlockRows: 128,
		Sample:       sample.Config{Cap: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sys, scfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return sys, srv, ts
}

func TestIngestAndApproxEndpoints(t *testing.T) {
	sys, _, ts := newStreamService(t, Config{})
	c, err := client.New(ts.URL, client.WithTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const n = 1000
	cols := []string{"v", "w"}
	var last *client.IngestResponse
	for off := int64(0); off < n; off += 200 {
		rows := make([][]float32, 200)
		for i := range rows {
			row := off + int64(i)
			rows[i] = []float32{streamCell(row, 0), streamCell(row, 1)}
		}
		if last, err = c.IngestRows(ctx, "live", "acts", cols, rows); err != nil {
			t.Fatal(err)
		}
	}
	if last.Rows != n || last.FlushedRows != 896 {
		t.Fatalf("ingest ack %+v", last)
	}

	// ColDist: sampled, bound holds against the exact mean.
	d, err := c.ColDist(ctx, "live", "acts", "v", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy != "SAMPLE" || d.Rows != n || d.SampleRows != 128 {
		t.Fatalf("coldist %+v", d)
	}
	var exactMean float64
	for row := int64(0); row < n; row++ {
		exactMean += float64(streamCell(row, 0))
	}
	exactMean /= n
	if diff := math.Abs(d.Mean - exactMean); diff > d.MeanBound+1e-9 {
		t.Fatalf("mean %v vs exact %v exceeds bound %v", d.Mean, exactMean, d.MeanBound)
	}
	// Engine parity: the endpoint answers from the same sample.
	direct, err := sys.ColDist("live", "acts", "v", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean != direct.Mean || d.SampleRows != direct.SampleRows {
		t.Fatalf("wire %+v vs direct %+v", d, direct)
	}

	// ApproxTopK: every entry carries its true population value.
	tk, err := c.ApproxTopK(ctx, "live", "acts", "v", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Strategy != "SAMPLE" || len(tk.Entries) != 5 || tk.RankBound <= 0 {
		t.Fatalf("approx topk %+v", tk)
	}
	for _, e := range tk.Entries {
		if float32(e.Value) != streamCell(e.Row, 0) {
			t.Fatalf("entry row %d = %v, population has %v", e.Row, e.Value, streamCell(e.Row, 0))
		}
	}

	// SampleRows: real row ids, ascending, true values.
	sr, err := c.SampleRows(ctx, "live", "acts", nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Strategy != "SAMPLE" || len(sr.RowIDs) != 50 || sr.Rows != n {
		t.Fatalf("sample rows %+v", sr)
	}
	for i, id := range sr.RowIDs {
		if i > 0 && id <= sr.RowIDs[i-1] {
			t.Fatalf("row ids not ascending: %v", sr.RowIDs[i-1:i+1])
		}
		for j := range cols {
			if float32(sr.Data[i][j]) != streamCell(id, j) {
				t.Fatalf("sampled row %d col %d = %v, want %v", id, j, sr.Data[i][j], streamCell(id, j))
			}
		}
	}

	// Confusion over a second stream with label/pred columns.
	exact := map[[2]float32]float64{}
	rows := make([][]float32, n)
	for i := range rows {
		l := float32(i % 4)
		p := l
		if i%9 == 0 {
			p = float32((i + 1) % 4)
		}
		rows[i] = []float32{l, p}
		exact[[2]float32{l, p}]++
	}
	if _, err := c.IngestRows(ctx, "live", "preds", []string{"label", "pred"}, rows); err != nil {
		t.Fatal(err)
	}
	cm, err := c.Confusion(ctx, "live", "preds", "label", "pred", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Strategy != "SAMPLE" || cm.Rows != n {
		t.Fatalf("confusion %+v", cm)
	}
	for _, cell := range cm.Cells {
		want := exact[[2]float32{float32(cell.Label), float32(cell.Pred)}]
		if diff := math.Abs(cell.Count - want); diff > cell.Bound+1e-6 {
			t.Fatalf("cell (%v,%v): %v vs exact %v exceeds bound %v", cell.Label, cell.Pred, cell.Count, want, cell.Bound)
		}
	}
}

func TestIngestValidation(t *testing.T) {
	_, _, ts := newStreamService(t, Config{})
	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/api/v1/ingest/live/acts", `{`); code != http.StatusBadRequest {
		t.Fatalf("bad JSON got %d", code)
	}
	if code := post("/api/v1/ingest/live/acts", `{"columns":[],"rows":[[1]]}`); code != http.StatusBadRequest {
		t.Fatalf("no columns got %d", code)
	}
	if code := post("/api/v1/ingest/live/acts", `{"columns":["a"],"rows":[]}`); code != http.StatusBadRequest {
		t.Fatalf("no rows got %d", code)
	}
	if code := post("/api/v1/ingest/live/acts", `{"columns":["a"],"rows":[[1],[2]]}`); code != http.StatusOK {
		t.Fatalf("valid batch got %d", code)
	}
	if code := post("/api/v1/ingest/live/acts", `{"columns":["b"],"rows":[[1]]}`); code < 400 {
		t.Fatalf("column mismatch got %d", code)
	}
	if code := post("/api/v1/approx/coldist", `{"model":"live"}`); code != http.StatusBadRequest {
		t.Fatalf("incomplete coldist got %d", code)
	}
	if code := post("/api/v1/approx/topk", `{"model":"live","intermediate":"acts","column":"a","k":0}`); code != http.StatusBadRequest {
		t.Fatalf("k=0 got %d", code)
	}
}

// TestTenantRateQuota exercises the per-tenant token bucket over the wire:
// a tenant that exhausts its rows/sec gets 429 + Retry-After while other
// tenants keep flowing.
func TestTenantRateQuota(t *testing.T) {
	_, srv, ts := newStreamService(t, Config{TenantRowsPerSec: 100, RetryAfter: time.Second})

	post := func(tenant string, nRows int) *http.Response {
		t.Helper()
		body := []byte(`{"columns":["v"],"rows":[`)
		for i := 0; i < nRows; i++ {
			if i > 0 {
				body = append(body, ',')
			}
			body = append(body, []byte(`[1.5]`)...)
		}
		body = append(body, []byte(`]}`)...)
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/ingest/live/acts", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Mistique-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// The bucket starts full: 100 rows pass, the next batch is over rate.
	if resp := post("noisy", 100); resp.StatusCode != http.StatusOK {
		t.Fatalf("first batch got %d", resp.StatusCode)
	}
	resp := post("noisy", 100)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate batch got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	// Another tenant has its own bucket.
	if resp := post("quiet", 100); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant got %d", resp.StatusCode)
	}
	// The anonymous bucket is separate too.
	if resp := post("", 100); resp.StatusCode != http.StatusOK {
		t.Fatalf("default tenant got %d", resp.StatusCode)
	}
	if got := srv.sys.Metrics().Counters["mistique_http_tenant_rejected_total"]; got < 1 {
		t.Fatalf("tenant rejected counter = %v", got)
	}
}

// TestTenantInFlightQuota unit-tests the in-flight half of the admission
// bucket.
func TestTenantInFlightQuota(t *testing.T) {
	_, srv, _ := newStreamService(t, Config{TenantMaxInFlight: 2})

	rel1, err := srv.admitTenant("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := srv.admitTenant("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.admitTenant("t", 1); err == nil {
		t.Fatal("third in-flight ingest admitted past the bound")
	}
	// Other tenants are unaffected.
	relOther, err := srv.admitTenant("other", 1)
	if err != nil {
		t.Fatal(err)
	}
	relOther()
	rel1()
	if rel3, err := srv.admitTenant("t", 1); err != nil {
		t.Fatal(err)
	} else {
		rel3()
	}
	rel2()
}
