package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"mistique"
	"mistique/client"
	"mistique/internal/colstore"
	"mistique/internal/cost"
	"mistique/internal/metadata"
	"mistique/internal/tensor"
)

// maxBodyBytes bounds request bodies; query descriptions are tiny, so a
// megabyte of headroom is generous and keeps a hostile body from growing
// the heap.
const maxBodyBytes = 1 << 20

// decodeBody strictly decodes the JSON request body into dst: unknown
// fields, trailing garbage and oversized bodies are all 400s.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("bad request body: %v", err)
	}
	if dec.More() {
		return badRequest("bad request body: trailing data after JSON value")
	}
	return nil
}

// modelInfo converts a catalog model to its wire form.
func modelInfo(m *metadata.Model, interms []metadata.Interm) client.ModelInfo {
	info := client.ModelInfo{
		Name:          m.Name,
		Kind:          string(m.Kind),
		TotalExamples: m.TotalExamples,
		ModelLoadSecs: m.ModelLoadSecs,
	}
	for _, st := range m.Stages {
		info.Stages = append(info.Stages, client.StageInfo{Name: st.Name, Index: st.Index, ExecSeconds: st.ExecSeconds})
	}
	for i := range interms {
		info.Intermediates = append(info.Intermediates, intermInfo(&interms[i]))
	}
	return info
}

func intermInfo(it *metadata.Interm) client.IntermInfo {
	return client.IntermInfo{
		Name:         it.Name,
		StageIndex:   it.StageIndex,
		Columns:      it.Columns,
		Rows:         it.Rows,
		Materialized: it.Materialized,
		QuantScheme:  it.QuantScheme,
		StoredBytes:  it.StoredBytes,
		QueryCount:   it.QueryCount,
	}
}

// matrixRows converts a Dense matrix to the row-major wire form. The
// copy through client.F32 also keeps the encoder off the matrix's
// backing array.
func matrixRows(m *tensor.Dense) [][]client.F32 {
	rows := make([][]client.F32, m.Rows)
	for i := range rows {
		rows[i] = wireRow(m.Row(i))
	}
	return rows
}

func wireRow(src []float32) []client.F32 {
	row := make([]client.F32, len(src))
	for j, v := range src {
		row[j] = client.F32(v)
	}
	return row
}

func (s *Server) handleModels(r *http.Request) (any, error) {
	db := s.sys.Metadata()
	resp := client.ModelsResponse{Models: []client.ModelInfo{}}
	for _, name := range db.Models() {
		m := db.Model(name)
		if m == nil {
			continue
		}
		resp.Models = append(resp.Models, modelInfo(m, db.IntermSnapshots(name)))
	}
	return resp, nil
}

func (s *Server) handleModel(r *http.Request) (any, error) {
	name := r.PathValue("model")
	db := s.sys.Metadata()
	m := db.Model(name)
	if m == nil {
		return nil, notFound("unknown model %q", name)
	}
	return modelInfo(m, db.IntermSnapshots(name)), nil
}

func (s *Server) handleLineage(r *http.Request) (any, error) {
	name := r.PathValue("model")
	chain, err := s.sys.Lineage(name)
	if err != nil {
		return nil, err
	}
	resp := client.LineageResponse{Model: name, Versions: []client.LineageEntry{}}
	for _, e := range chain {
		resp.Versions = append(resp.Versions, client.LineageEntry{
			Model:          e.Model,
			Parent:         e.Parent,
			Kind:           e.Kind,
			Intermediates:  e.Intermediates,
			StoredBytes:    e.StoredBytes,
			MaxDeltaDepth:  e.MaxDeltaDepth,
			WeightBytes:    e.WeightBytes,
			WeightNewBytes: e.WeightNewBytes,
			WeightDepth:    e.WeightDepth,
		})
	}
	return resp, nil
}

func (s *Server) handleIntermediate(r *http.Request) (any, error) {
	model, interm := r.PathValue("model"), r.PathValue("interm")
	db := s.sys.Metadata()
	if db.Model(model) == nil {
		return nil, notFound("unknown model %q", model)
	}
	it, ok := db.IntermSnapshot(model, interm)
	if !ok {
		return nil, notFound("unknown intermediate %s.%s", model, interm)
	}
	return intermInfo(&it), nil
}

func (s *Server) handleQuery(r *http.Request) (any, error) {
	var req client.QueryRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if req.Model == "" || req.Intermediate == "" {
		return nil, badRequest("query needs model and intermediate")
	}
	var res *mistique.Result
	var err error
	switch req.Strategy {
	case "":
		res, err = s.sys.GetIntermediateCtx(r.Context(), req.Model, req.Intermediate, req.Cols, req.NEx)
	case cost.Read.String():
		res, err = s.sys.FetchCtx(r.Context(), req.Model, req.Intermediate, req.Cols, req.NEx, cost.Read)
	case cost.Rerun.String():
		res, err = s.sys.FetchCtx(r.Context(), req.Model, req.Intermediate, req.Cols, req.NEx, cost.Rerun)
	default:
		return nil, badRequest("unknown strategy %q (want READ, RERUN or empty)", req.Strategy)
	}
	if err != nil {
		return nil, err
	}
	return client.QueryResponse{
		Model:           res.Model,
		Intermediate:    res.Intermediate,
		Cols:            res.Cols,
		Rows:            res.Data.Rows,
		Data:            matrixRows(res.Data),
		Strategy:        res.Strategy.String(),
		EstReadSecs:     res.EstReadSecs,
		EstRerunSecs:    res.EstRerunSecs,
		FetchSeconds:    res.FetchSeconds,
		Recovered:       res.Recovered,
		MaterializedNow: res.MaterializedNow,
	}, nil
}

func (s *Server) handleColumn(r *http.Request) (any, error) {
	model, interm, col := r.PathValue("model"), r.PathValue("interm"), r.PathValue("col")
	nEx, err := intParam(r, "n", 0)
	if err != nil {
		return nil, err
	}
	// Validate the column against the catalog up front: the engine's
	// read path would otherwise degrade an unknown column into a rerun
	// recovery attempt before failing.
	it, ok := s.sys.Metadata().IntermSnapshot(model, interm)
	if ok && !hasColumn(it.Columns, col) {
		return nil, notFound("intermediate %s.%s has no column %q", model, interm, col)
	}
	vals, err := s.sys.GetColumnCtx(r.Context(), model, interm, col, nEx)
	if err != nil {
		return nil, err
	}
	return client.ColumnResponse{Model: model, Intermediate: interm, Column: col, Values: wireRow(vals)}, nil
}

func hasColumn(cols []string, want string) bool {
	for _, c := range cols {
		if c == want {
			return true
		}
	}
	return false
}

func (s *Server) handleEstimate(r *http.Request) (any, error) {
	q := r.URL.Query()
	model, interm := q.Get("model"), q.Get("interm")
	if model == "" || interm == "" {
		return nil, badRequest("estimate needs model and interm query params")
	}
	nEx, err := intParam(r, "n", 0)
	if err != nil {
		return nil, err
	}
	readSecs, rerunSecs, err := s.sys.Estimate(model, interm, nEx)
	if err != nil {
		return nil, err
	}
	// Expose the engine's actual choice, tie-break included (the paper
	// reads when t_rerun >= t_read), gated on materialization exactly as
	// GetIntermediate gates it.
	chosen := cost.Rerun
	if it, ok := s.sys.Metadata().IntermSnapshot(model, interm); ok && it.Materialized && cost.Choose(rerunSecs, readSecs) == cost.Read {
		chosen = cost.Read
	}
	return client.EstimateResponse{
		Model:        model,
		Intermediate: interm,
		NEx:          nEx,
		EstReadSecs:  readSecs,
		EstRerunSecs: rerunSecs,
		Chosen:       chosen.String(),
	}, nil
}

func (s *Server) handleFilter(r *http.Request) (any, error) {
	var req client.FilterRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if req.Model == "" || req.Intermediate == "" || req.Column == "" {
		return nil, badRequest("filter needs model, intermediate and column")
	}
	op, err := parseOp(req.Op)
	if err != nil {
		return nil, err
	}
	if req.From < 0 || (req.To != 0 && req.To < req.From) {
		return nil, badRequest("bad row range [%d, %d)", req.From, req.To)
	}
	rows, err := s.sys.FilterRowsRangeCtx(r.Context(), req.Model, req.Intermediate, req.Column, op, float32(req.Bound), req.From, req.To)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		rows = []int{}
	}
	return client.FilterResponse{Rows: rows, Count: len(rows)}, nil
}

func (s *Server) handleTopK(r *http.Request) (any, error) {
	var req client.TopKRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if req.Model == "" || req.Intermediate == "" || req.Column == "" {
		return nil, badRequest("topk needs model, intermediate and column")
	}
	if req.K < 0 {
		return nil, badRequest("topk needs k >= 0, got %d", req.K)
	}
	if req.From < 0 || (req.To != 0 && req.To < req.From) {
		return nil, badRequest("bad row range [%d, %d)", req.From, req.To)
	}
	entries, err := s.sys.TopKRangeCtx(r.Context(), req.Model, req.Intermediate, req.Column, req.K, req.From, req.To)
	if err != nil {
		return nil, err
	}
	out := make([]client.TopKEntry, len(entries))
	for i, e := range entries {
		out[i] = client.TopKEntry{Row: e.Row, Value: client.F32(e.Value)}
	}
	return client.TopKResponse{
		Model:        req.Model,
		Intermediate: req.Intermediate,
		Column:       req.Column,
		Entries:      out,
	}, nil
}

func parseOp(op string) (colstore.Op, error) {
	switch op {
	case "gt":
		return colstore.Gt, nil
	case "ge":
		return colstore.Ge, nil
	case "lt":
		return colstore.Lt, nil
	case "le":
		return colstore.Le, nil
	}
	return 0, badRequest("unknown op %q (want gt, ge, lt or le)", op)
}

func (s *Server) handleRows(r *http.Request) (any, error) {
	var req client.RowsRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	if req.Model == "" || req.Intermediate == "" {
		return nil, badRequest("rows needs model and intermediate")
	}
	if req.From < 0 || req.From > req.To {
		return nil, badRequest("bad row range [%d, %d)", req.From, req.To)
	}
	m, err := s.sys.GetRowsCtx(r.Context(), req.Model, req.Intermediate, req.Cols, req.From, req.To)
	if err != nil {
		return nil, err
	}
	cols := req.Cols
	if len(cols) == 0 {
		if it, ok := s.sys.Metadata().IntermSnapshot(req.Model, req.Intermediate); ok {
			cols = it.Columns
		}
	}
	return client.RowsResponse{
		Model:        req.Model,
		Intermediate: req.Intermediate,
		Cols:         cols,
		From:         req.From,
		To:           req.From + m.Rows,
		Data:         matrixRows(m),
	}, nil
}

func (s *Server) handleStats(r *http.Request) (any, error) {
	snap := s.sys.Metrics()
	if disk, err := s.sys.DiskBytes(); err == nil {
		snap.Gauges["mistique_disk_bytes"] = disk
		snap.Help["mistique_disk_bytes"] = "on-disk footprint of stored intermediates"
	}
	return snap, nil
}

// handleMetrics is the one non-JSON endpoint: Prometheus text exposition
// of the same snapshot /statsz serves.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	defer s.recoverPanic(w)
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "%s needs GET, got %s", r.URL.Path, r.Method)
		return
	}
	snap := s.sys.Metrics()
	if disk, err := s.sys.DiskBytes(); err == nil {
		snap.Gauges["mistique_disk_bytes"] = disk
		snap.Help["mistique_disk_bytes"] = "on-disk footprint of stored intermediates"
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap.WritePrometheus(w)
}

func (s *Server) handleHealth(r *http.Request) (any, error) {
	return client.HealthResponse{Status: "ok", Models: len(s.sys.Metadata().Models())}, nil
}

// readiness assembles the /readyz body: degraded when the last recovery
// sweep quarantined data or the admission semaphore is saturated.
func (s *Server) readiness() client.ReadyResponse {
	resp := client.ReadyResponse{
		Status:      "ok",
		Shard:       s.cfg.ShardName,
		Models:      len(s.sys.Metadata().Models()),
		InFlight:    len(s.sem),
		MaxInFlight: s.cfg.MaxInFlight,
	}
	var reasons []string
	if rep := s.sys.RecoveryReport(); rep != nil {
		resp.QuarantinedPartitions = len(rep.ExtraFilesQuarantined) + len(rep.CorruptPartitions)
		resp.ManifestQuarantined = rep.ManifestQuarantined
		if rep.ManifestQuarantined {
			reasons = append(reasons, "manifest quarantined on last open (store restarted empty)")
		}
		if resp.QuarantinedPartitions > 0 {
			reasons = append(reasons, fmt.Sprintf("%d partition(s) quarantined by recovery", resp.QuarantinedPartitions))
		}
		if n := len(rep.LostChunks); n > 0 {
			reasons = append(reasons, fmt.Sprintf("%d chunk(s) lost, serving via rerun recovery", n))
		}
	}
	if resp.InFlight >= resp.MaxInFlight {
		resp.Saturated = true
		reasons = append(reasons, "admission semaphore saturated, shedding queries")
	}
	if len(reasons) > 0 {
		resp.Status = "degraded"
		resp.Reasons = reasons
	}
	return resp
}

// handleReady is raw (not wrapped in plain) because a degraded node must
// answer 503 with the ReadyResponse body, not the error envelope: the
// body is the answer, the status code is for load balancers.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	defer s.recoverPanic(w)
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "%s needs GET, got %s", r.URL.Path, r.Method)
		return
	}
	resp := s.readiness()
	body, err := json.Marshal(resp)
	if err != nil {
		s.errors5x.Inc()
		writeError(w, http.StatusInternalServerError, "encode response: %v", err)
		return
	}
	status := http.StatusOK
	if resp.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

func (s *Server) handleCompact(r *http.Request) (any, error) {
	reclaimed, err := s.sys.CompactStore()
	if err != nil {
		return nil, err
	}
	return client.CompactResponse{ReclaimedBytes: reclaimed}, nil
}

// intParam parses an optional integer query parameter.
func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("bad %s=%q: want an integer", name, raw)
	}
	return v, nil
}
