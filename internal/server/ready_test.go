package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mistique"
	"mistique/client"
)

// TestReadinessEndpoint: /healthz stays pure liveness while /readyz
// reports the richer readiness contract — 200 + "ok" on a clean node,
// 503 + "degraded" with reasons when the admission window is saturated.
func TestReadinessEndpoint(t *testing.T) {
	sys := newSys(t, mistique.Config{})
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv := New(sys, Config{
		ShardName:   "shard-a",
		MaxInFlight: 1,
		queryGate: func() {
			entered <- struct{}{}
			<-gate
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Clean node: ready, shard name in the body.
	resp, ready, err := c.Ready(ctx)
	if err != nil || !ready {
		t.Fatalf("ready = %v, err = %v", ready, err)
	}
	if resp.Status != "ok" || resp.Shard != "shard-a" || resp.Models != 1 || resp.Saturated {
		t.Fatalf("resp = %+v", resp)
	}

	// Liveness is untouched: /healthz still answers its own shape.
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}

	// Saturate the admission window: readiness flips to degraded/503
	// while liveness stays 200 — "shed me" is not "dead".
	done := make(chan error, 1)
	go func() {
		_, qerr := c.GetIntermediate(ctx, "demo", "joined", nil, 4)
		done <- qerr
	}()
	<-entered
	resp, ready, err = c.Ready(ctx)
	if err != nil {
		t.Fatalf("degraded probe errored: %v", err)
	}
	if ready || resp.Status != "degraded" || !resp.Saturated || len(resp.Reasons) == 0 {
		t.Fatalf("saturated resp = %+v ready=%v", resp, ready)
	}
	if resp.InFlight != 1 || resp.MaxInFlight != 1 {
		t.Fatalf("window = %d/%d", resp.InFlight, resp.MaxInFlight)
	}
	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("liveness flipped with readiness: %+v, %v", h, err)
	}

	// Raw shape: 503 carries the JSON body, not the error envelope.
	raw, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(raw.Body)
	raw.Body.Close()
	if raw.StatusCode != 503 || !strings.Contains(string(body), `"status":"degraded"`) {
		t.Fatalf("raw /readyz: %d %s", raw.StatusCode, body)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("admitted query failed: %v", err)
	}

	// Drained: ready again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ready, _ = c.Ready(ctx); ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node never became ready after draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRangeQueries: the from/to window on filter and topk answers with
// global row offsets that splice exactly into the full answer — the
// property scatter-gather correctness rests on.
func TestRangeQueries(t *testing.T) {
	sys, c := newService(t, mistique.Config{}, Config{})
	ctx := context.Background()

	full, err := c.FilterRows(ctx, "demo", "joined", "logerror", "gt", 0)
	if err != nil {
		t.Fatal(err)
	}
	it, err := c.Intermediate(ctx, "demo", "joined")
	if err != nil {
		t.Fatal(err)
	}
	mid := it.Rows / 2

	lo, err := c.FilterRowsRange(ctx, "demo", "joined", "logerror", "gt", 0, 0, mid)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := c.FilterRowsRange(ctx, "demo", "joined", "logerror", "gt", 0, mid, it.Rows)
	if err != nil {
		t.Fatal(err)
	}
	spliced := append(append([]int{}, lo...), hi...)
	if len(spliced) != len(full) {
		t.Fatalf("spliced %d rows, full %d", len(spliced), len(full))
	}
	for i := range full {
		if spliced[i] != full[i] {
			t.Fatalf("splice mismatch at %d: %d vs %d", i, spliced[i], full[i])
		}
	}

	// TopK over a window returns global ids within that window, ranked.
	wk, err := c.TopKRange(ctx, "demo", "joined", "logerror", 5, mid, it.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(wk) != 5 {
		t.Fatalf("window topk %d entries", len(wk))
	}
	for i, e := range wk {
		if e.Row < mid || e.Row >= it.Rows {
			t.Fatalf("entry %d row %d outside window [%d, %d)", i, e.Row, mid, it.Rows)
		}
	}
	dwk, err := sys.TopKRangeCtx(ctx, "demo", "joined", "logerror", 5, mid, it.Rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wk {
		if wk[i].Row != dwk[i].Row || !eq(wk[i].Value, dwk[i].Value) {
			t.Fatalf("window topk mismatch at %d: %+v vs %+v", i, wk[i], dwk[i])
		}
	}

	// A full-range TopKRange equals plain TopK (the index-accelerated
	// path answers both).
	allK, err := c.TopKRange(ctx, "demo", "joined", "logerror", 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.TopK(ctx, "demo", "joined", "logerror", 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range allK {
		if allK[i] != plain[i] {
			t.Fatalf("full-range topk diverged at %d", i)
		}
	}

	// Bad windows are 400s.
	var ae *client.APIError
	if _, err := c.FilterRowsRange(ctx, "demo", "joined", "logerror", "gt", 0, 10, 5); !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("inverted filter range err = %v", err)
	}
	if _, err := c.TopKRange(ctx, "demo", "joined", "logerror", 5, -1, 4); !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("negative topk range err = %v", err)
	}
}
