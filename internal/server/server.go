// Package server turns a *mistique.System into a network query service:
// a JSON-over-HTTP surface for the diagnostic query classes of Sec. 5
// (intermediate fetches under the read-vs-rerun cost model, cost
// estimates, zone-map predicate scans, row-range reads), the metadata
// catalog, stats and compaction. mistique/client is the typed Go client;
// the wire types live there and are shared by both sides.
//
// The service is built for sustained concurrent load in front of a store
// whose queries can be expensive (a RERUN may execute a whole model):
//
//   - Admission control: an in-flight semaphore bounds concurrently
//     executing queries. Requests beyond the bound are rejected
//     immediately with 429 and a Retry-After hint instead of queueing —
//     under overload the server sheds load at the door rather than
//     collapsing into a pile of blocked goroutines all holding store
//     resources.
//   - Deadlines: every request runs under a context deadline
//     (Config.RequestTimeout); the engine's *Ctx query variants observe
//     it between chunk reads and before queueing on a model's execution
//     mutex. An expired deadline maps to 504.
//   - Error envelopes: every non-2xx response, including recovered
//     handler panics, is the same JSON ErrorEnvelope shape, so clients
//     never parse prose.
//   - Graceful drain: Shutdown stops accepting, lets in-flight requests
//     finish, then flushes the System (partitions + catalog) so nothing
//     logged is lost.
//
// Observability threads through the System's own obs registry: request
// latency, in-flight, rejected and error counters surface in the same
// /metrics and /statsz expositions as the engine's series.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"mistique"
	"mistique/client"
	"mistique/internal/obs"
)

// Config controls a Server. Zero values select defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing query-class requests
	// (query, column, filter, rows, compact). Excess requests get 429 +
	// Retry-After. Default 64.
	MaxInFlight int
	// RequestTimeout is the per-request context deadline. Default 30s.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with 429 rejections. Default 1s.
	RetryAfter time.Duration
	// ShardName labels this node in /readyz responses when it serves as
	// one shard of a cluster (mistique serve -shard). Empty is fine for a
	// single-node service.
	ShardName string

	// TenantMaxInFlight bounds concurrently executing streaming-ingest
	// requests per tenant (X-Mistique-Tenant header; empty shares the
	// "default" bucket). Ingest holds a WAL fsync per batch, so one noisy
	// tenant could otherwise monopolize the global semaphore. Default 8.
	TenantMaxInFlight int
	// TenantRowsPerSec bounds each tenant's acknowledged streaming rows
	// per second with a token bucket (burst of one second's quota).
	// Excess batches get 429 + Retry-After sized to the deficit. Zero
	// disables rate accounting.
	TenantRowsPerSec int

	// queryGate, when non-nil, is called at the start of every admitted
	// query-class request. Tests use it to hold requests in flight while
	// they probe admission control and graceful drain.
	queryGate func()
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.TenantMaxInFlight <= 0 {
		c.TenantMaxInFlight = 8
	}
	return c
}

// Server serves MISTIQUE queries over HTTP. Create with New, expose with
// Handler (tests) or Serve (production), stop with Shutdown.
type Server struct {
	sys *mistique.System
	cfg Config
	mux *http.ServeMux
	sem chan struct{}

	mu      sync.Mutex
	httpSrv *http.Server

	tenantMu sync.Mutex
	tenants  map[string]*tenantState

	requests   *obs.Counter
	rejected   *obs.Counter
	errors5x   *obs.Counter
	tenantShed *obs.Counter
	inFlight   *obs.Gauge
	latency    *obs.Histogram
}

// tenantState is one tenant's ingest admission bucket: an in-flight count
// and a rows/sec token bucket refilled on demand.
type tenantState struct {
	inFlight int
	tokens   float64
	last     time.Time
}

// New wraps sys in a query service. The server registers its instruments
// in sys's obs registry, so its series appear in the system's own
// /metrics and /statsz expositions.
func New(sys *mistique.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := sys.Obs()
	s := &Server{
		sys: sys,
		cfg: cfg,
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		tenants: make(map[string]*tenantState),

		requests:   reg.Counter("mistique_http_requests_total", "HTTP requests received (all endpoints)"),
		rejected:   reg.Counter("mistique_http_rejected_total", "requests rejected with 429 by the admission semaphore"),
		errors5x:   reg.Counter("mistique_http_errors_total", "requests answered with a 5xx status"),
		tenantShed: reg.Counter("mistique_http_tenant_rejected_total", "ingest batches rejected with 429 by a per-tenant quota"),
		inFlight:   reg.Gauge("mistique_http_in_flight", "query-class requests currently executing"),
		latency:    reg.Histogram("mistique_http_request_seconds", "wall time of one HTTP request, admission wait included"),
	}
	s.routes()
	return s
}

// routes wires the endpoint table. Patterns carry no method — each
// handler checks its own, so method mismatches get the JSON 405 envelope
// instead of net/http's plain-text one.
func (s *Server) routes() {
	// Query class: admission-controlled, deadline-bound.
	s.mux.HandleFunc("/api/v1/query", s.admitted(http.MethodPost, s.handleQuery))
	s.mux.HandleFunc("/api/v1/models/{model}/intermediates/{interm}/columns/{col}", s.admitted(http.MethodGet, s.handleColumn))
	s.mux.HandleFunc("/api/v1/filter", s.admitted(http.MethodPost, s.handleFilter))
	s.mux.HandleFunc("/api/v1/topk", s.admitted(http.MethodPost, s.handleTopK))
	s.mux.HandleFunc("/api/v1/rows", s.admitted(http.MethodPost, s.handleRows))
	s.mux.HandleFunc("/api/v1/compact", s.admitted(http.MethodPost, s.handleCompact))

	// Streaming ingest: admission-controlled globally AND per tenant.
	s.mux.HandleFunc("/api/v1/ingest/{model}/{interm}", s.admitted(http.MethodPost, s.handleIngest))

	// Approximate diagnosis: sampled answers with error bounds; exact
	// fallback happens inside the engine, so these stay query-class.
	s.mux.HandleFunc("/api/v1/approx/coldist", s.admitted(http.MethodPost, s.handleColDist))
	s.mux.HandleFunc("/api/v1/approx/topk", s.admitted(http.MethodPost, s.handleApproxTopK))
	s.mux.HandleFunc("/api/v1/approx/confusion", s.admitted(http.MethodPost, s.handleConfusion))
	s.mux.HandleFunc("/api/v1/approx/rows", s.admitted(http.MethodPost, s.handleSampleRows))

	// Catalog + estimates: cheap in-memory reads, never shed.
	s.mux.HandleFunc("/api/v1/models", s.plain(http.MethodGet, s.handleModels))
	s.mux.HandleFunc("/api/v1/models/{model}", s.plain(http.MethodGet, s.handleModel))
	s.mux.HandleFunc("/api/v1/models/{model}/intermediates/{interm}", s.plain(http.MethodGet, s.handleIntermediate))
	s.mux.HandleFunc("/api/v1/models/{model}/lineage", s.plain(http.MethodGet, s.handleLineage))
	s.mux.HandleFunc("/api/v1/estimate", s.plain(http.MethodGet, s.handleEstimate))

	// Ops surface.
	s.mux.HandleFunc("/api/v1/stats", s.plain(http.MethodGet, s.handleStats))
	s.mux.HandleFunc("/statsz", s.plain(http.MethodGet, s.handleStats))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	// Liveness vs readiness: /healthz answers "is the process up" and
	// stays 200 as long as the server can serve at all; /readyz answers
	// "should this node take traffic" and flips to 503 (same JSON body)
	// when degraded, so load balancers and the cluster health checker can
	// tell "dead" from "shed me".
	s.mux.HandleFunc("/healthz", s.plain(http.MethodGet, s.handleHealth))
	s.mux.HandleFunc("/readyz", s.handleReady)

	// Everything else: JSON 404, not net/http's text page.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		writeError(w, http.StatusNotFound, "no route for %s %s", r.Method, r.URL.Path)
	})
}

// Handler returns the service's root handler (httptest entry point).
func (s *Server) Handler() http.Handler { return s.mux }

// handlerFunc is an endpoint body: it returns the response payload or an
// error (an *apiError for a chosen status, anything else mapping via
// errorStatus).
type handlerFunc func(r *http.Request) (any, error)

// plain wraps an endpoint with method check, panic recovery, metrics and
// the JSON envelope — no admission control or deadline (for cheap
// catalog/ops reads).
func (s *Server) plain(method string, fn handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		t0 := time.Now()
		defer s.latency.ObserveSince(t0)
		defer s.recoverPanic(w)
		if r.Method != method {
			writeError(w, http.StatusMethodNotAllowed, "%s needs %s, got %s", r.URL.Path, method, r.Method)
			return
		}
		payload, err := fn(r)
		s.respond(w, payload, err)
	}
}

// admitted wraps a query-class endpoint: method check, panic recovery,
// admission semaphore (non-blocking — full means 429 + Retry-After), and
// the per-request deadline.
func (s *Server) admitted(method string, fn handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		t0 := time.Now()
		defer s.latency.ObserveSince(t0)
		defer s.recoverPanic(w)
		if r.Method != method {
			writeError(w, http.StatusMethodNotAllowed, "%s needs %s, got %s", r.URL.Path, method, r.Method)
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			// Full house: shed at the door. The store never sees the
			// request, so overload degrades into fast 429s, not a convoy
			// of goroutines queued on the chunk reader.
			s.rejected.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			writeError(w, http.StatusTooManyRequests, "over capacity: %d queries in flight", s.cfg.MaxInFlight)
			return
		}
		s.inFlight.Add(1)
		defer func() {
			s.inFlight.Add(-1)
			<-s.sem
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		// The gate runs inside the deadline so tests can also exercise
		// expiry by stalling here.
		if s.cfg.queryGate != nil {
			s.cfg.queryGate()
		}
		payload, err := fn(r.WithContext(ctx))
		s.respond(w, payload, err)
	}
}

// recoverPanic converts a handler panic into a 500 envelope — the routing
// and decoding layer must never take the process down or leak a
// half-written non-JSON body on a fresh response.
func (s *Server) recoverPanic(w http.ResponseWriter) {
	if p := recover(); p != nil {
		s.errors5x.Inc()
		debug.PrintStack()
		writeError(w, http.StatusInternalServerError, "internal panic: %v", p)
	}
}

// respond writes the payload or the error envelope.
func (s *Server) respond(w http.ResponseWriter, payload any, err error) {
	if err != nil {
		var ae *apiError
		if errors.As(err, &ae) && ae.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int((ae.retryAfter+time.Second-1)/time.Second)))
		}
		status := errorStatus(err)
		if status >= 500 {
			s.errors5x.Inc()
		}
		writeError(w, status, "%s", err.Error())
		return
	}
	// Marshal before touching the ResponseWriter: an encode failure this
	// way becomes a clean 500 envelope, never a truncated 200 body.
	body, merr := json.Marshal(payload)
	if merr != nil {
		s.errors5x.Inc()
		writeError(w, http.StatusInternalServerError, "encode response: %v", merr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	w.Write([]byte("\n"))
}

// apiError carries an explicit status chosen at the decode/validate
// layer, plus an optional Retry-After hint for 429s.
type apiError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &apiError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// errorStatus maps an engine error to an HTTP status via the typed
// sentinels the query entry points wrap.
func errorStatus(err error) int {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae.status
	case errors.Is(err, mistique.ErrUnknownModel), errors.Is(err, mistique.ErrUnknownIntermediate),
		errors.Is(err, mistique.ErrUnknownColumn):
		return http.StatusNotFound
	case errors.Is(err, mistique.ErrNotMaterialized):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; the status is for the log, not the peer.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// writeError emits the JSON error envelope shared with mistique/client.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(client.ErrorEnvelope{Error: client.ErrorBody{
		Status:  status,
		Message: fmt.Sprintf(format, args...),
	}})
}

// Serve accepts connections on ln until Shutdown (or a listener error).
// Returns nil after a graceful Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.httpSrv == nil {
		s.httpSrv = &http.Server{
			Handler:           s.mux,
			ReadHeaderTimeout: 10 * time.Second,
		}
	}
	srv := s.httpSrv
	s.mu.Unlock()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains the service: it stops accepting new connections, waits
// for in-flight requests to complete (bounded by ctx), then closes the
// System — flushing every dirty partition and the catalog — so no logged
// intermediate is lost. The first error wins but the flush always runs.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	if cerr := s.sys.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
