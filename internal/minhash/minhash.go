// Package minhash implements MinHash signatures and a banded
// locality-sensitive-hash (LSH) index over them. MISTIQUE's approximate
// de-duplication discretizes each ColumnChunk's values, MinHashes the
// resulting set, and queries the LSH index for existing Partitions whose
// chunks have Jaccard similarity above a threshold tau; similar chunks are
// then co-located so the downstream compressor can exploit their redundancy.
package minhash

import (
	"math"
	"math/rand"
)

// mersenne61 is a Mersenne prime used for universal hashing.
const mersenne61 = (1 << 61) - 1

// Signature is a MinHash signature: element i is the minimum of hash
// function i over the input set.
type Signature []uint64

// Hasher computes MinHash signatures with a fixed family of k universal
// hash functions. A Hasher is immutable after construction and safe for
// concurrent use.
type Hasher struct {
	a, b []uint64
}

// NewHasher creates a Hasher with k hash functions seeded deterministically.
func NewHasher(k int, seed int64) *Hasher {
	rng := rand.New(rand.NewSource(seed))
	h := &Hasher{a: make([]uint64, k), b: make([]uint64, k)}
	for i := 0; i < k; i++ {
		h.a[i] = uint64(rng.Int63n(mersenne61-1)) + 1 // a in [1, p-1]
		h.b[i] = uint64(rng.Int63n(mersenne61))       // b in [0, p-1]
	}
	return h
}

// K returns the signature length.
func (h *Hasher) K() int { return len(h.a) }

// hash61 computes (a*x + b) mod 2^61-1 without overflow using 128-bit
// intermediate arithmetic via math/bits-free splitting.
func hash61(a, b, x uint64) uint64 {
	// Split a*x into high and low 64-bit halves manually.
	hi, lo := mul64(a, x)
	// Reduce modulo 2^61-1: (hi*2^64 + lo) mod p. 2^64 mod p = 8, so
	// value ≡ hi*8 + lo (mod p) after folding lo's top bits.
	r := (lo & mersenne61) + (lo >> 61) + hi*8 + b
	for r >= mersenne61 {
		r -= mersenne61
	}
	return r
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	carry := t >> 32
	t = aHi*bLo + carry
	mid1 := t & mask
	carry = t >> 32
	t = aLo*bHi + mid1
	lo |= (t & mask) << 32
	hi = aHi*bHi + carry + (t >> 32)
	return hi, lo
}

// Sign computes the MinHash signature of a set of uint64 elements.
func (h *Hasher) Sign(set map[uint64]struct{}) Signature {
	sig := make(Signature, len(h.a))
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	for x := range set {
		h.fold(sig, x)
	}
	return sig
}

// fold mins element x into sig under every hash function.
func (h *Hasher) fold(sig Signature, x uint64) {
	for i := range h.a {
		if v := hash61(h.a[i], h.b[i], x); v < sig[i] {
			sig[i] = v
		}
	}
}

// maxSignElements caps how many distinct elements feed a signature. A
// MinHash over a deterministic sample of the column estimates Jaccard
// similarity nearly as well as one over every value, and keeps the
// signature cost per ColumnChunk constant — logging overhead must not be
// dominated by similarity hashing (Sec. 8.6).
const maxSignElements = 128

// SignFloats discretizes a float32 column into buckets of the given width
// and MinHashes the resulting value set. Discretization makes "similar"
// numeric columns (same values modulo noise or quantization) collide.
func (h *Hasher) SignFloats(vals []float32, bucket float64) Signature {
	stride := 1
	if len(vals) > maxSignElements {
		stride = len(vals) / maxSignElements
	}
	// Deduplicate through a fixed-size open-addressing table that lives on
	// the stack. Strided sampling admits at most 2*maxSignElements-1 keys
	// (worst case stride 1 at len = 2*maxSignElements-1), so a 4x-sized
	// table keeps the load factor under 1/2 and linear probing short. Only
	// the Signature itself escapes to the heap — this runs once per logged
	// ColumnChunk (Sec. 8.6: logging overhead must not be dominated by
	// similarity hashing).
	var (
		keys [4 * maxSignElements]uint64
		used [4 * maxSignElements]bool
	)
	sig := make(Signature, len(h.a))
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	for i := 0; i < len(vals); i += stride {
		f := float64(vals[i])
		var key uint64
		switch {
		case math.IsNaN(f):
			key = 1<<63 + 1
		case bucket > 0:
			key = uint64(int64(math.Floor(f/bucket))) * 2654435761
		default:
			key = math.Float64bits(f)
		}
		slot := int(key % uint64(len(keys)))
		for used[slot] && keys[slot] != key {
			slot = (slot + 1) % len(keys)
		}
		if used[slot] {
			continue // duplicate
		}
		used[slot], keys[slot] = true, key
		h.fold(sig, key)
	}
	return sig
}

// EstimateJaccard estimates the Jaccard similarity of the underlying sets
// from two signatures produced by the same Hasher.
func EstimateJaccard(a, b Signature) float64 {
	if len(a) != len(b) || len(a) == 0 {
		panic("minhash: signature length mismatch")
	}
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

// Index is a banded LSH index: signatures are split into bands of rows
// hashes each; two signatures become candidates if any band matches
// exactly. With b bands of r rows, the threshold is roughly (1/b)^(1/r).
//
// Band buckets are keyed by a 64-bit mix of the band's rows rather than the
// rows' raw bytes. A mixed-key collision can only produce a spurious
// *candidate*, and every candidate is re-scored against the full signature
// (EstimateJaccard in QueryBest), so correctness is unaffected — while
// inserts and queries stay allocation-free per band.
type Index struct {
	bands, rows int
	tables      []map[uint64][]int
	sigs        map[int]Signature
}

// NewIndex creates an LSH index for signatures of length bands*rows.
func NewIndex(bands, rows int) *Index {
	t := make([]map[uint64][]int, bands)
	for i := range t {
		t[i] = make(map[uint64][]int)
	}
	return &Index{bands: bands, rows: rows, tables: t, sigs: make(map[int]Signature)}
}

// Threshold returns the approximate Jaccard similarity at which the
// probability of becoming a candidate pair is 50%.
func (ix *Index) Threshold() float64 {
	return math.Pow(1/float64(ix.bands), 1/float64(ix.rows))
}

// bandKey mixes the band's rows into one uint64 with an FNV-1a-style fold
// (64-bit prime multiply per row). Equal bands always produce equal keys;
// unequal bands collide with probability ~2^-64 per pair, and collisions are
// harmless (see the type comment).
func (ix *Index) bandKey(sig Signature, band int) uint64 {
	start := band * ix.rows
	h := uint64(14695981039346656037)
	for _, v := range sig[start : start+ix.rows] {
		h = (h ^ v) * 1099511628211
	}
	return h
}

// Insert adds a signature under the given id.
func (ix *Index) Insert(id int, sig Signature) {
	if len(sig) < ix.bands*ix.rows {
		panic("minhash: signature too short for index")
	}
	ix.sigs[id] = sig
	for b := 0; b < ix.bands; b++ {
		k := ix.bandKey(sig, b)
		ix.tables[b][k] = append(ix.tables[b][k], id)
	}
}

// Query returns the ids of all candidate signatures sharing at least one
// band with sig, excluding duplicates.
func (ix *Index) Query(sig Signature) []int {
	if len(sig) < ix.bands*ix.rows {
		panic("minhash: signature too short for index")
	}
	var seen map[int]bool
	var out []int
	for b := 0; b < ix.bands; b++ {
		for _, id := range ix.tables[b][ix.bandKey(sig, b)] {
			if seen == nil {
				seen = make(map[int]bool)
			}
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// QueryBest returns the candidate with the highest estimated Jaccard
// similarity to sig, provided it is at least minSim. ok is false when no
// candidate qualifies.
func (ix *Index) QueryBest(sig Signature, minSim float64) (id int, sim float64, ok bool) {
	best := -1
	bestSim := -1.0
	for _, cand := range ix.Query(sig) {
		if s := EstimateJaccard(sig, ix.sigs[cand]); s > bestSim {
			best, bestSim = cand, s
		}
	}
	if best < 0 || bestSim < minSim {
		return 0, 0, false
	}
	return best, bestSim, true
}

// Len returns the number of indexed signatures.
func (ix *Index) Len() int { return len(ix.sigs) }
