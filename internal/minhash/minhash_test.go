package minhash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func setOf(xs ...uint64) map[uint64]struct{} {
	s := make(map[uint64]struct{}, len(xs))
	for _, x := range xs {
		s[x] = struct{}{}
	}
	return s
}

func TestIdenticalSetsIdenticalSignatures(t *testing.T) {
	h := NewHasher(64, 1)
	a := h.Sign(setOf(1, 2, 3, 4, 5))
	b := h.Sign(setOf(5, 4, 3, 2, 1))
	if EstimateJaccard(a, b) != 1 {
		t.Fatal("identical sets must produce identical signatures")
	}
}

func TestDisjointSetsLowSimilarity(t *testing.T) {
	h := NewHasher(256, 2)
	a := h.Sign(setOf(1, 2, 3, 4, 5, 6, 7, 8))
	b := h.Sign(setOf(100, 200, 300, 400, 500, 600, 700, 800))
	if sim := EstimateJaccard(a, b); sim > 0.1 {
		t.Fatalf("disjoint sets estimated at %g", sim)
	}
}

func TestJaccardEstimateAccuracy(t *testing.T) {
	// Overlap 50 of 150 distinct total: true Jaccard = 50/150 = 1/3.
	h := NewHasher(512, 3)
	a := make(map[uint64]struct{})
	b := make(map[uint64]struct{})
	for i := uint64(0); i < 100; i++ {
		a[i] = struct{}{}
	}
	for i := uint64(50); i < 150; i++ {
		b[i] = struct{}{}
	}
	got := EstimateJaccard(h.Sign(a), h.Sign(b))
	if math.Abs(got-1.0/3.0) > 0.08 {
		t.Fatalf("Jaccard estimate %g, want ~0.333", got)
	}
}

func TestJaccardEstimateProperty(t *testing.T) {
	h := NewHasher(256, 4)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(100)
		overlap := rng.Intn(n)
		a := make(map[uint64]struct{})
		b := make(map[uint64]struct{})
		for i := 0; i < n; i++ {
			a[uint64(i)] = struct{}{}
		}
		for i := n - overlap; i < 2*n-overlap; i++ {
			b[uint64(i)] = struct{}{}
		}
		truth := float64(overlap) / float64(2*n-overlap)
		got := EstimateJaccard(h.Sign(a), h.Sign(b))
		return math.Abs(got-truth) < 0.15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSignFloatsDiscretization(t *testing.T) {
	h := NewHasher(128, 5)
	a := []float32{1.0, 2.0, 3.0}
	b := []float32{1.004, 2.004, 2.996} // same buckets at width 0.01? no: different
	c := []float32{1.0001, 2.0001, 3.0001}
	sigA := h.SignFloats(a, 0.01)
	sigC := h.SignFloats(c, 0.01)
	if EstimateJaccard(sigA, sigC) != 1 {
		t.Fatal("values in the same buckets should hash identically")
	}
	_ = b
	// NaNs are mapped to a dedicated bucket and don't panic.
	sigN := h.SignFloats([]float32{float32(math.NaN())}, 0.01)
	if len(sigN) != 128 {
		t.Fatal("NaN signature length")
	}
	// bucket <= 0 means exact bit-pattern matching.
	exact := h.SignFloats(a, 0)
	if EstimateJaccard(exact, h.SignFloats(a, 0)) != 1 {
		t.Fatal("exact mode not deterministic")
	}
}

func TestIndexFindsSimilar(t *testing.T) {
	h := NewHasher(128, 6)
	ix := NewIndex(32, 4) // threshold ~ (1/32)^(1/4) ≈ 0.42
	base := make(map[uint64]struct{})
	for i := uint64(0); i < 200; i++ {
		base[i] = struct{}{}
	}
	ix.Insert(1, h.Sign(base))

	// 90% overlapping set: must be found.
	near := make(map[uint64]struct{})
	for i := uint64(20); i < 220; i++ {
		near[i] = struct{}{}
	}
	id, sim, ok := ix.QueryBest(h.Sign(near), 0.4)
	if !ok || id != 1 {
		t.Fatalf("near-duplicate not found: ok=%v id=%d sim=%g", ok, id, sim)
	}

	// Disjoint set: must not match at minSim 0.4.
	far := make(map[uint64]struct{})
	for i := uint64(10000); i < 10200; i++ {
		far[i] = struct{}{}
	}
	if _, _, ok := ix.QueryBest(h.Sign(far), 0.4); ok {
		t.Fatal("disjoint set matched")
	}
}

func TestIndexMultipleCandidatesPicksBest(t *testing.T) {
	h := NewHasher(128, 7)
	ix := NewIndex(32, 4)
	mk := func(lo, hi uint64) Signature {
		s := make(map[uint64]struct{})
		for i := lo; i < hi; i++ {
			s[i] = struct{}{}
		}
		return h.Sign(s)
	}
	ix.Insert(1, mk(0, 100)) // ~67% similar to query
	ix.Insert(2, mk(0, 80))  // 80% similar to query (subset)
	query := mk(0, 80)
	id, sim, ok := ix.QueryBest(query, 0.5)
	if !ok || id != 2 || sim != 1 {
		t.Fatalf("best candidate: ok=%v id=%d sim=%g, want id=2 sim=1", ok, id, sim)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len=%d", ix.Len())
	}
}

func TestThreshold(t *testing.T) {
	ix := NewIndex(32, 4)
	want := math.Pow(1.0/32.0, 0.25)
	if math.Abs(ix.Threshold()-want) > 1e-12 {
		t.Fatalf("threshold %g want %g", ix.Threshold(), want)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestHash61InRange(t *testing.T) {
	prop := func(a, b, x uint64) bool {
		return hash61(a%mersenne61, b%mersenne61, x) < mersenne61
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSignFloats1K(b *testing.B) {
	h := NewHasher(128, 9)
	vals := make([]float32, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Float32() * 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SignFloats(vals, 0.01)
	}
}
