package diag

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mistique/internal/quant"
	"mistique/internal/tensor"
)

func TestPointQuery(t *testing.T) {
	col := []float32{1, 2, 3}
	if v, err := PointQuery(col, 1); err != nil || v != 2 {
		t.Fatalf("PointQuery: %v %v", v, err)
	}
	if _, err := PointQuery(col, 5); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestTopK(t *testing.T) {
	col := []float32{5, 1, 9, 3, 9}
	got := TopK(col, 3)
	if !reflect.DeepEqual(got, []int{2, 4, 0}) {
		t.Fatalf("TopK %v", got)
	}
	if len(TopK(col, 100)) != 5 {
		t.Fatal("TopK over-length")
	}
}

func TestColDiff(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{2, 2, 4, 4}
	groups := []string{"x", "x", "y", "y"}
	got, err := ColDiff(a, b, groups)
	if err != nil {
		t.Fatal(err)
	}
	if got["x"] != [2]float64{1.5, 2} || got["y"] != [2]float64{3.5, 4} {
		t.Fatalf("ColDiff %v", got)
	}
	if _, err := ColDiff(a, b[:2], groups); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestColDist(t *testing.T) {
	col := []float32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := ColDist(col, 5)
	if h.Min != 0 || h.Max != 9 {
		t.Fatalf("range [%g,%g]", h.Min, h.Max)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("counts %v", h.Counts)
	}
	// NaNs skipped; all-NaN degenerate.
	h2 := ColDist([]float32{float32(math.NaN())}, 3)
	if h2.Counts[0] != 0 {
		t.Fatalf("NaN counted: %v", h2.Counts)
	}
}

func TestKNNFindsNeighbors(t *testing.T) {
	x := tensor.FromRows([][]float32{
		{0, 0}, {1, 0}, {10, 10}, {0.5, 0}, {11, 10},
	})
	got := KNN(x, x.Row(0), 2, 0)
	if !reflect.DeepEqual(got, []int{3, 1}) {
		t.Fatalf("KNN %v", got)
	}
	// Without self-exclusion the query point itself wins.
	got = KNN(x, x.Row(0), 1, -1)
	if got[0] != 0 {
		t.Fatalf("KNN self %v", got)
	}
}

func TestOverlap(t *testing.T) {
	if Overlap([]int{1, 2, 3, 4}, []int{3, 4, 5, 6}) != 0.5 {
		t.Fatal("overlap")
	}
	if Overlap(nil, []int{1}) != 0 {
		t.Fatal("empty overlap")
	}
}

func TestRowDiffAndVIS(t *testing.T) {
	d, err := RowDiff([]float32{3, 5}, []float32{1, 10})
	if err != nil || d[0] != 2 || d[1] != -5 {
		t.Fatalf("RowDiff %v %v", d, err)
	}
	if _, err := RowDiff([]float32{1}, []float32{1, 2}); err == nil {
		t.Fatal("mismatch accepted")
	}

	x := tensor.FromRows([][]float32{{1, 0}, {3, 0}, {0, 10}})
	vis, err := VIS(x, []int{0, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vis.At(0, 0) != 2 || vis.At(1, 1) != 10 {
		t.Fatalf("VIS %v", vis.Data)
	}
	if _, err := VIS(x, []int{0, 0, 5}, 2); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestHeatmapDistance(t *testing.T) {
	a := tensor.FromRows([][]float32{{1, 2, 3}})
	maxAbs, meanAbs, rank, err := HeatmapDistance(a, a.Clone())
	if err != nil || maxAbs != 0 || meanAbs != 0 || math.Abs(rank-1) > 1e-12 {
		t.Fatalf("identical heatmaps: %v %v %v %v", maxAbs, meanAbs, rank, err)
	}
	// A quantized version preserves ranks but shifts values.
	b := tensor.FromRows([][]float32{{1.1, 2.1, 3.1}})
	_, meanAbs, rank, _ = HeatmapDistance(a, b)
	if math.Abs(meanAbs-0.1) > 1e-6 || rank < 0.99 {
		t.Fatalf("shifted heatmap: mean %v rank %v", meanAbs, rank)
	}
	// Scrambled ranks drop correlation.
	c := tensor.FromRows([][]float32{{3, 1, 2}})
	_, _, rank, _ = HeatmapDistance(a, c)
	if rank > 0.5 {
		t.Fatalf("scrambled rank corr %v", rank)
	}
}

func randDense(r, c int, seed int64) *tensor.Dense {
	rng := rand.New(rand.NewSource(seed))
	d := tensor.NewDense(r, c)
	for i := range d.Data {
		d.Data[i] = float32(rng.NormFloat64())
	}
	return d
}

func TestSVCCASelfSimilarity(t *testing.T) {
	a := randDense(200, 8, 1)
	got, err := SVCCA(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.99 {
		t.Fatalf("self SVCCA %g", got)
	}
}

func TestSVCCAIndependentLow(t *testing.T) {
	a := randDense(2000, 4, 2)
	b := randDense(2000, 4, 3)
	got, err := SVCCA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.3 {
		t.Fatalf("independent SVCCA %g", got)
	}
}

func TestSVCCAQuantizationBarelyMoves(t *testing.T) {
	// The Table 2 claim: 8BIT_QT SVCCA ~= full precision SVCCA.
	a := randDense(500, 6, 4)
	b := randDense(500, 6, 5)
	// Make b correlated with a.
	for i := range b.Data {
		b.Data[i] = 0.7*a.Data[i] + 0.3*b.Data[i]
	}
	full, err := SVCCA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	q, err := quant.FitKBit(a.Data, 8)
	if err != nil {
		t.Fatal(err)
	}
	aq := a.Clone()
	copy(aq.Data, q.Apply(a.Data))
	quantized, err := SVCCA(aq, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-quantized) > 0.05 {
		t.Fatalf("8-bit quantization moved SVCCA %g -> %g", full, quantized)
	}
}

func TestSVCCAErrors(t *testing.T) {
	if _, err := SVCCA(randDense(10, 3, 1), randDense(11, 3, 2)); err == nil {
		t.Fatal("row mismatch accepted")
	}
	if _, err := SVCCA(randDense(3, 10, 1), randDense(3, 10, 2)); err == nil {
		t.Fatal("cols > rows accepted")
	}
	zero := tensor.NewDense(10, 2)
	if _, err := SVCCA(zero, zero); err == nil {
		t.Fatal("zero-energy input accepted")
	}
}

func TestNetDissect(t *testing.T) {
	// Channel 0 activates exactly on the concept pixels; channel 1 is noise.
	n, hw := 4, 8
	act := tensor.NewT4(n, 2, hw, hw)
	concept := tensor.NewT4(n, 1, hw, hw)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		cp := concept.Plane(i, 0)
		a0 := act.Plane(i, 0)
		a1 := act.Plane(i, 1)
		for j := range cp {
			if rng.Float64() < 0.1 {
				cp[j] = 1
				a0[j] = 10 + rng.Float32()
			} else {
				a0[j] = rng.Float32()
			}
			a1[j] = rng.Float32() * 10
		}
	}
	iou, err := NetDissect(act, concept, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(iou) != 2 {
		t.Fatalf("iou %v", iou)
	}
	if iou[0] < 0.5 {
		t.Fatalf("concept-aligned unit IoU %g too low", iou[0])
	}
	if iou[1] > iou[0]/2 {
		t.Fatalf("noise unit IoU %g vs aligned %g", iou[1], iou[0])
	}
	if _, err := NetDissect(act, act, 0.1); err == nil {
		t.Fatal("bad concept shape accepted")
	}
	if _, err := NetDissect(act, concept, 2); err == nil {
		t.Fatal("bad alpha accepted")
	}
}

func TestConfusionMatrix(t *testing.T) {
	m, err := ConfusionMatrix([]int{0, 1, 1, 0}, []int{0, 1, 0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 2 || m[0][1] != 1 || m[1][1] != 1 || m[1][0] != 0 {
		t.Fatalf("confusion %v", m)
	}
	if _, err := ConfusionMatrix([]int{5}, []int{0}, 2); err == nil {
		t.Fatal("bad class accepted")
	}
	if _, err := ConfusionMatrix([]int{0}, []int{0, 1}, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	// Duplicate values must rank by ascending row id, every time.
	col := []float32{2, 5, 5, 1, 5, 2}
	want := []int{1, 2, 4, 0, 5, 3}
	for trial := 0; trial < 10; trial++ {
		got := TopK(col, len(col))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: TopK order %v, want %v", trial, got, want)
			}
		}
	}
	// All-equal column: pure row-id order.
	eq := []float32{7, 7, 7, 7}
	got := TopK(eq, 3)
	for i, r := range []int{0, 1, 2} {
		if got[i] != r {
			t.Fatalf("all-equal TopK %v", got)
		}
	}
	// k clamping: negative, zero and beyond-n.
	if got := TopK(col, -1); len(got) != 0 {
		t.Fatalf("TopK(-1) = %v", got)
	}
	if got := TopK(col, 100); len(got) != len(col) {
		t.Fatalf("TopK(100) len %d", len(got))
	}
}

func TestTopKNaNSortsLast(t *testing.T) {
	nan := float32(math.NaN())
	col := []float32{nan, 3, nan, float32(math.Inf(1)), -2, float32(math.Inf(-1))}
	want := []int{3, 1, 4, 5, 0, 2} // +Inf, 3, -2, -Inf, then NaNs by row id
	got := TopK(col, len(col))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK with NaN/Inf = %v, want %v", got, want)
		}
	}
}

func TestKNNDeterministicTies(t *testing.T) {
	// Three rows at identical distance from the query row: ascending row id.
	x := tensor.NewDense(4, 2)
	x.Set(0, 0, 0) // query row
	x.Set(1, 0, 1)
	x.Set(2, 0, 1)
	x.Set(3, 0, 1)
	for trial := 0; trial < 10; trial++ {
		got := KNN(x, x.Row(0), 3, 0)
		for i, r := range []int{1, 2, 3} {
			if got[i] != r {
				t.Fatalf("trial %d: KNN ties %v", trial, got)
			}
		}
	}
}

func TestKNNNaNRowsSortLast(t *testing.T) {
	nan := float32(math.NaN())
	x := tensor.NewDense(4, 2)
	x.Set(0, 0, 0)
	x.Set(1, 0, nan) // NaN distance: must rank after every finite row
	x.Set(2, 0, 5)
	x.Set(3, 0, 1)
	got := KNN(x, x.Row(0), 3, 0)
	for i, r := range []int{3, 2, 1} {
		if got[i] != r {
			t.Fatalf("KNN with NaN row = %v", got)
		}
	}
}

func TestRankDistLessTotalOrder(t *testing.T) {
	nan := float32(math.NaN())
	vals := []float32{nan, float32(math.Inf(1)), 1, 0, float32(math.Copysign(0, -1)), -1, float32(math.Inf(-1))}
	// Antisymmetry + totality over every pair (including ±0: equal value,
	// row id decides).
	for a, va := range vals {
		for b, vb := range vals {
			ab := RankLess(va, vb, a, b)
			ba := RankLess(vb, va, b, a)
			if a == b {
				if ab || ba {
					t.Fatalf("RankLess not irreflexive at %d", a)
				}
				continue
			}
			if ab == ba {
				t.Fatalf("RankLess not antisymmetric for (%v,%d) vs (%v,%d)", va, a, vb, b)
			}
		}
	}
	if !DistLess(1, math.NaN(), 5, 0) || DistLess(math.NaN(), 1, 0, 5) {
		t.Fatal("DistLess must order NaN last")
	}
	if !DistLess(2, 2, 1, 3) || DistLess(2, 2, 3, 1) {
		t.Fatal("DistLess must break ties by row id")
	}
}
