// Package diag implements the diagnostic techniques of Table 1 / Table 5:
// the analyses that run on top of intermediates fetched from MISTIQUE.
// Query categories follow the paper's taxonomy — FCFR (POINTQ, TOPK), FCMR
// (COL_DIFF, COL_DIST), MCFR (KNN, ROW_DIFF) and MCMR (VIS, SVCCA,
// NETDISSECT).
package diag

import (
	"fmt"
	"math"
	"sort"

	"mistique/internal/linalg"
	"mistique/internal/tensor"
)

// PointQuery returns the value of one column at one row (POINTQ: "find the
// activation of neuron-35 for image-345"). The heavy lifting is the fetch;
// the analysis is the lookup itself.
func PointQuery(col []float32, row int) (float32, error) {
	if row < 0 || row >= len(col) {
		return 0, fmt.Errorf("diag: row %d out of range (%d rows)", row, len(col))
	}
	return col[row], nil
}

// RankLess is the pinned total order for activation ranking, shared with
// the neuron-centric index (internal/nindex) so indexed TOPK and a full
// scan produce byte-identical answers: value descending, NaN after every
// number, and ties (including ±0 and equal NaNs) broken by ascending row
// id. Without the explicit NaN arm a `>` comparator treats NaN as equal to
// everything, leaving NaN rows wherever the sort happens to put them.
func RankLess(va, vb float32, ra, rb int) bool {
	an, bn := math.IsNaN(float64(va)), math.IsNaN(float64(vb))
	switch {
	case an && bn:
		return ra < rb
	case an:
		return false
	case bn:
		return true
	case va != vb:
		return va > vb
	}
	return ra < rb
}

// DistLess is the pinned total order for nearest-neighbor ranking:
// distance ascending, NaN after every number, ties broken by ascending
// row id. Shared with the engine's index-pruned KNN for exact parity.
func DistLess(da, db float64, ra, rb int) bool {
	an, bn := math.IsNaN(da), math.IsNaN(db)
	switch {
	case an && bn:
		return ra < rb
	case an:
		return false
	case bn:
		return true
	case da != db:
		return da < db
	}
	return ra < rb
}

// TopK returns the indices of the k largest values in col in RankLess
// order (TOPK: "top-10 images with highest activation for neuron-35").
// The order is fully deterministic: equal values rank by ascending row id
// and NaNs rank after every number.
func TopK(col []float32, k int) []int {
	if k < 0 {
		k = 0
	}
	if k > len(col) {
		k = len(col)
	}
	idx := make([]int, len(col))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return RankLess(col[idx[a]], col[idx[b]], idx[a], idx[b]) })
	return idx[:k]
}

// ColDiff compares two prediction/error columns grouped by a categorical
// key (COL_DIFF: "compare model performance grouped by type of house").
// Returns per-group mean of a and b keyed by group label.
func ColDiff(a, b []float32, groups []string) (map[string][2]float64, error) {
	if len(a) != len(b) || len(a) != len(groups) {
		return nil, fmt.Errorf("diag: ColDiff length mismatch %d/%d/%d", len(a), len(b), len(groups))
	}
	sums := map[string][2]float64{}
	counts := map[string]int{}
	for i := range a {
		s := sums[groups[i]]
		s[0] += float64(a[i])
		s[1] += float64(b[i])
		sums[groups[i]] = s
		counts[groups[i]]++
	}
	out := make(map[string][2]float64, len(sums))
	for g, s := range sums {
		n := float64(counts[g])
		out[g] = [2]float64{s[0] / n, s[1] / n}
	}
	return out, nil
}

// Histogram is a COL_DIST result: counts per equal-width bin over
// [Min, Max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// ColDist computes the distribution of a column (COL_DIST: "plot the error
// rates for all homes"). NaNs are skipped.
func ColDist(col []float32, bins int) Histogram {
	if bins < 1 {
		bins = 1
	}
	h := Histogram{Counts: make([]int, bins), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range col {
		f := float64(v)
		if math.IsNaN(f) {
			continue
		}
		if f < h.Min {
			h.Min = f
		}
		if f > h.Max {
			h.Max = f
		}
	}
	if h.Min > h.Max { // all NaN
		h.Min, h.Max = 0, 0
		return h
	}
	width := (h.Max - h.Min) / float64(bins)
	for _, v := range col {
		f := float64(v)
		if math.IsNaN(f) {
			continue
		}
		b := bins - 1
		if width > 0 {
			b = int((f - h.Min) / width)
			if b >= bins {
				b = bins - 1
			}
		}
		h.Counts[b]++
	}
	return h
}

// KNN returns the indices of the k nearest rows of x to the query row by
// Euclidean distance (MCFR: "find the 10 homes most similar to Home-50").
// The query row itself is excluded when selfIdx >= 0. Ranking follows
// DistLess, so rows at equal distance (and rows whose distance is NaN,
// which sort last) come out in a deterministic order.
func KNN(x *tensor.Dense, query []float32, k, selfIdx int) []int {
	type cand struct {
		idx  int
		dist float64
	}
	cands := make([]cand, 0, x.Rows)
	for i := 0; i < x.Rows; i++ {
		if i == selfIdx {
			continue
		}
		cands = append(cands, cand{idx: i, dist: tensor.L2Dist(x.Row(i), query)})
	}
	sort.Slice(cands, func(a, b int) bool {
		return DistLess(cands[a].dist, cands[b].dist, cands[a].idx, cands[b].idx)
	})
	if k < 0 {
		k = 0
	}
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}

// Overlap returns |a ∩ b| / |a| — the KNN accuracy metric of Table 3.
func Overlap(a, b []int) float64 {
	if len(a) == 0 {
		return 0
	}
	set := make(map[int]bool, len(b))
	for _, v := range b {
		set[v] = true
	}
	hit := 0
	for _, v := range a {
		if set[v] {
			hit++
		}
	}
	return float64(hit) / float64(len(a))
}

// RowDiff returns the per-feature difference between two rows (MCFR:
// "compare features for Home-50 and Home-55").
func RowDiff(a, b []float32) ([]float32, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("diag: RowDiff length mismatch %d/%d", len(a), len(b))
	}
	out := make([]float32, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out, nil
}

// VIS computes the per-class mean activation of every column (the ActiVis
// heat-map: average activations for all neurons across all classes).
// Returns a classes x cols matrix.
func VIS(x *tensor.Dense, labels []int, classes int) (*tensor.Dense, error) {
	if x.Rows != len(labels) {
		return nil, fmt.Errorf("diag: VIS rows %d != labels %d", x.Rows, len(labels))
	}
	out := tensor.NewDense(classes, x.Cols)
	counts := make([]int, classes)
	for i := 0; i < x.Rows; i++ {
		c := labels[i]
		if c < 0 || c >= classes {
			return nil, fmt.Errorf("diag: VIS label %d out of range", c)
		}
		counts[c]++
		row := x.Row(i)
		dst := out.Row(c)
		for j, v := range row {
			dst[j] += v
		}
	}
	for c := 0; c < classes; c++ {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float32(counts[c])
		row := out.Row(c)
		for j := range row {
			row[j] *= inv
		}
	}
	return out, nil
}

// HeatmapDistance compares two VIS heat-maps: max and mean absolute
// difference plus Spearman-style rank correlation of the flattened maps.
// This is how the Fig. 9 fidelity comparison is quantified numerically.
func HeatmapDistance(a, b *tensor.Dense) (maxAbs, meanAbs, rankCorr float64, err error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return 0, 0, 0, fmt.Errorf("diag: heatmap shape mismatch")
	}
	n := len(a.Data)
	if n == 0 {
		return 0, 0, 1, nil
	}
	var sum float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		sum += d
		if d > maxAbs {
			maxAbs = d
		}
	}
	meanAbs = sum / float64(n)
	ra := ranks(a.Data)
	rb := ranks(b.Data)
	rankCorr = linalg.Pearson(ra, rb)
	return maxAbs, meanAbs, rankCorr, nil
}

func ranks(vals []float32) []float64 {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	out := make([]float64, len(vals))
	for r, i := range idx {
		out[i] = float64(r)
	}
	return out
}

// SVCCA computes the mean canonical correlation between two activation
// matrices after projecting each onto the SVD subspace holding 99% of its
// energy (Alg. 1 / Raghu et al.). Rows are examples, columns neurons.
func SVCCA(a, b *tensor.Dense) (float64, error) {
	if a.Rows != b.Rows {
		return 0, fmt.Errorf("diag: SVCCA row mismatch %d/%d", a.Rows, b.Rows)
	}
	pa, err := svdProject(a, 0.99)
	if err != nil {
		return 0, err
	}
	pb, err := svdProject(b, 0.99)
	if err != nil {
		return 0, err
	}
	cors := linalg.CCA(pa, pb)
	if len(cors) == 0 {
		return 0, fmt.Errorf("diag: SVCCA found no correlated directions")
	}
	return linalg.Mean(cors), nil
}

func svdProject(x *tensor.Dense, energy float64) (*linalg.Mat, error) {
	if x.Rows < x.Cols {
		return nil, fmt.Errorf("diag: SVCCA needs rows >= cols (%dx%d); subsample columns first", x.Rows, x.Cols)
	}
	m := linalg.NewMat(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		dst := m.Row(i)
		for j, v := range row {
			dst[j] = float64(v)
		}
	}
	m.CenterColumns()
	u, s, _ := m.SVD()
	k := linalg.TruncateEnergy(s, energy)
	if k == 0 {
		return nil, fmt.Errorf("diag: SVCCA input has zero energy")
	}
	// Projection = U_k * diag(s_k): the data expressed in its top-k
	// singular directions.
	out := linalg.NewMat(x.Rows, k)
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < k; j++ {
			out.Set(i, j, u.At(i, j)*s[j])
		}
	}
	return out, nil
}

// NetDissect computes, for every channel of the activation tensor, the
// alpha-tail threshold T_k, binarizes the activation maps against it, and
// returns the intersection-over-union with the per-image binary concept
// masks (Alg. 3 / Bau et al.). Concept masks must share the activation
// spatial size.
func NetDissect(act *tensor.T4, concept *tensor.T4, alpha float64) ([]float64, error) {
	if concept.N != act.N || concept.H != act.H || concept.W != act.W || concept.C != 1 {
		return nil, fmt.Errorf("diag: concept mask shape (%d,%d,%d,%d) does not match activations",
			concept.N, concept.C, concept.H, concept.W)
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("diag: alpha must be in (0,1)")
	}
	out := make([]float64, act.C)
	plane := act.H * act.W
	vals := make([]float32, 0, act.N*plane)
	for k := 0; k < act.C; k++ {
		vals = vals[:0]
		for n := 0; n < act.N; n++ {
			vals = append(vals, act.Plane(n, k)...)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		tk := vals[int(float64(len(vals))*(1-alpha))]
		var inter, union int
		for n := 0; n < act.N; n++ {
			a := act.Plane(n, k)
			c := concept.Plane(n, 0)
			for i := range a {
				on := a[i] > tk
				lab := c[i] > 0.5
				if on && lab {
					inter++
				}
				if on || lab {
					union++
				}
			}
		}
		if union > 0 {
			out[k] = float64(inter) / float64(union)
		}
	}
	return out, nil
}

// ConfusionMatrix tallies predicted vs true classes (FCMR: "compute the
// confusion matrix for the training dataset").
func ConfusionMatrix(pred, truth []int, classes int) ([][]int, error) {
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("diag: confusion length mismatch")
	}
	m := make([][]int, classes)
	for i := range m {
		m[i] = make([]int, classes)
	}
	for i := range pred {
		if pred[i] < 0 || pred[i] >= classes || truth[i] < 0 || truth[i] >= classes {
			return nil, fmt.Errorf("diag: class out of range at %d", i)
		}
		m[truth[i]][pred[i]]++
	}
	return m, nil
}
