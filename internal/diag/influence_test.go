package diag

import (
	"math/rand"
	"testing"

	"mistique/internal/tensor"
)

// clusteredReps builds two well-separated class clusters in 2-D.
func clusteredReps(n int, seed int64) (*tensor.Dense, []int) {
	rng := rand.New(rand.NewSource(seed))
	reps := tensor.NewDense(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		cx := float32(cls * 10)
		reps.Set(i, 0, cx+float32(rng.NormFloat64()))
		reps.Set(i, 1, float32(rng.NormFloat64()))
	}
	return reps, labels
}

func TestDetectAdversarialInlier(t *testing.T) {
	reps, labels := clusteredReps(200, 1)
	// A point near the class-0 centroid.
	rep, err := DetectAdversarial(reps, labels, 2, []float32{0.2, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NearestClass != 0 {
		t.Fatalf("nearest class %d", rep.NearestClass)
	}
	if rep.Score > 1.5 {
		t.Fatalf("inlier scored %g as adversarial", rep.Score)
	}
}

func TestDetectAdversarialOutlier(t *testing.T) {
	reps, labels := clusteredReps(200, 2)
	// A point far off both manifolds.
	rep, err := DetectAdversarial(reps, labels, 2, []float32{5, 40})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Score < 5 {
		t.Fatalf("outlier scored only %g", rep.Score)
	}
	if rep.TypicalDist <= 0 || rep.CentroidDist <= rep.TypicalDist {
		t.Fatalf("report inconsistent: %+v", rep)
	}
}

func TestDetectAdversarialErrors(t *testing.T) {
	reps, labels := clusteredReps(10, 3)
	if _, err := DetectAdversarial(reps, labels[:5], 2, []float32{0, 0}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := DetectAdversarial(reps, labels, 2, []float32{0}); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestInfluenceFindsSameClassNeighbors(t *testing.T) {
	reps, labels := clusteredReps(100, 4)
	// Query near class-1 cluster: influential examples should be class 1.
	inf, err := Influence(reps, labels, []float32{10, 0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(inf) != 5 {
		t.Fatalf("got %d entries", len(inf))
	}
	for _, e := range inf {
		if e.Label != 1 {
			t.Fatalf("influence entry %+v from wrong class", e)
		}
	}
	// Distances ascending.
	for i := 1; i < len(inf); i++ {
		if inf[i].Dist < inf[i-1].Dist {
			t.Fatal("influence not sorted by distance")
		}
	}
	if _, err := Influence(reps, labels[:5], []float32{0, 0}, 3); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := Influence(reps, labels, []float32{0}, 3); err == nil {
		t.Fatal("width mismatch accepted")
	}
}
