package diag

import (
	"fmt"
	"math"

	"mistique/internal/tensor"
)

// This file covers the remaining MCFR techniques of Table 1 that operate
// on hidden representations fetched from MISTIQUE: adversarial-example
// detection ("determine whether this test point is an adversarial
// example") and influence-style attribution ("find training examples that
// contributed to the prediction of this test example").

// ClassCentroids computes the per-class mean representation of the
// training set — the reference geometry both techniques compare against.
func ClassCentroids(reps *tensor.Dense, labels []int, classes int) (*tensor.Dense, error) {
	return VIS(reps, labels, classes)
}

// AdversarialReport describes how a test representation sits relative to
// the training manifold.
type AdversarialReport struct {
	// NearestClass is the class whose centroid is closest.
	NearestClass int
	// CentroidDist is the distance to that centroid.
	CentroidDist float64
	// TypicalDist is the mean distance of that class's own training
	// examples to their centroid.
	TypicalDist float64
	// Score is CentroidDist / TypicalDist: scores well above 1 indicate a
	// representation far off the class manifold — the adversarial
	// signature this detector keys on.
	Score float64
}

// DetectAdversarial scores a test representation against the training
// representations of the same layer. It is the representation-space
// detector of Table 1: adversarial inputs reach unusual regions of hidden
// space even when their pixels look benign.
func DetectAdversarial(trainReps *tensor.Dense, labels []int, classes int, testRep []float32) (*AdversarialReport, error) {
	if trainReps.Rows != len(labels) {
		return nil, fmt.Errorf("diag: reps %d rows vs %d labels", trainReps.Rows, len(labels))
	}
	if trainReps.Cols != len(testRep) {
		return nil, fmt.Errorf("diag: test rep width %d vs train %d", len(testRep), trainReps.Cols)
	}
	centroids, err := ClassCentroids(trainReps, labels, classes)
	if err != nil {
		return nil, err
	}
	rep := &AdversarialReport{NearestClass: -1, CentroidDist: math.Inf(1)}
	for c := 0; c < classes; c++ {
		if d := tensor.L2Dist(centroids.Row(c), testRep); d < rep.CentroidDist {
			rep.CentroidDist = d
			rep.NearestClass = c
		}
	}
	// Typical spread of the winning class.
	var sum float64
	n := 0
	for i := 0; i < trainReps.Rows; i++ {
		if labels[i] != rep.NearestClass {
			continue
		}
		sum += tensor.L2Dist(trainReps.Row(i), centroids.Row(rep.NearestClass))
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("diag: class %d has no training examples", rep.NearestClass)
	}
	rep.TypicalDist = sum / float64(n)
	if rep.TypicalDist > 0 {
		rep.Score = rep.CentroidDist / rep.TypicalDist
	} else if rep.CentroidDist > 0 {
		rep.Score = math.Inf(1)
	}
	return rep, nil
}

// InfluenceEntry is one attributed training example.
type InfluenceEntry struct {
	Row   int
	Label int
	Dist  float64
}

// Influence returns the k training examples whose representations are
// closest to the test representation — the surrogate-attribution query of
// Table 1 ("training examples that contributed to this prediction").
func Influence(trainReps *tensor.Dense, labels []int, testRep []float32, k int) ([]InfluenceEntry, error) {
	if trainReps.Rows != len(labels) {
		return nil, fmt.Errorf("diag: reps %d rows vs %d labels", trainReps.Rows, len(labels))
	}
	if trainReps.Cols != len(testRep) {
		return nil, fmt.Errorf("diag: test rep width %d vs train %d", len(testRep), trainReps.Cols)
	}
	idx := KNN(trainReps, testRep, k, -1)
	out := make([]InfluenceEntry, len(idx))
	for i, r := range idx {
		out[i] = InfluenceEntry{Row: r, Label: labels[r], Dist: tensor.L2Dist(trainReps.Row(r), testRep)}
	}
	return out, nil
}
