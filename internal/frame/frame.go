// Package frame implements the dataframe abstraction MISTIQUE uses for
// model intermediates: an ordered collection of named, typed columns plus a
// row_id column that persists across pipeline stages. The paper represents
// every intermediate (including source data and predictions) as such a
// dataframe before handing its columns to the column store.
package frame

import (
	"fmt"
	"math"
	"sort"

	"mistique/internal/tensor"
)

// ColType enumerates the supported column types.
type ColType int

const (
	// Float is a float64-valued column; NaN marks a missing value.
	Float ColType = iota
	// Int is an int64-valued column.
	Int
	// String is a string-valued (categorical) column; "" marks missing.
	String
)

func (t ColType) String() string {
	switch t {
	case Float:
		return "float"
	case Int:
		return "int"
	case String:
		return "string"
	}
	return fmt.Sprintf("ColType(%d)", int(t))
}

// Column is a single named, typed column. Exactly one of F, I, S is
// populated according to Type.
type Column struct {
	Name string
	Type ColType
	F    []float64
	I    []int64
	S    []string
}

// Len returns the number of values in the column.
func (c *Column) Len() int {
	switch c.Type {
	case Float:
		return len(c.F)
	case Int:
		return len(c.I)
	default:
		return len(c.S)
	}
}

// Clone returns a deep copy of the column.
func (c *Column) Clone() *Column {
	out := &Column{Name: c.Name, Type: c.Type}
	switch c.Type {
	case Float:
		out.F = append([]float64(nil), c.F...)
	case Int:
		out.I = append([]int64(nil), c.I...)
	default:
		out.S = append([]string(nil), c.S...)
	}
	return out
}

// AsFloats returns the column as float64s, converting ints; string columns
// return ok=false.
func (c *Column) AsFloats() (vals []float64, ok bool) {
	switch c.Type {
	case Float:
		return c.F, true
	case Int:
		out := make([]float64, len(c.I))
		for i, v := range c.I {
			out[i] = float64(v)
		}
		return out, true
	default:
		return nil, false
	}
}

// gather returns a new column containing rows idx in order.
func (c *Column) gather(idx []int) *Column {
	out := &Column{Name: c.Name, Type: c.Type}
	switch c.Type {
	case Float:
		out.F = make([]float64, len(idx))
		for k, i := range idx {
			out.F[k] = c.F[i]
		}
	case Int:
		out.I = make([]int64, len(idx))
		for k, i := range idx {
			out.I[k] = c.I[i]
		}
	default:
		out.S = make([]string, len(idx))
		for k, i := range idx {
			out.S[k] = c.S[i]
		}
	}
	return out
}

// Frame is an ordered set of columns sharing a row count, plus row ids.
type Frame struct {
	rowIDs []int64
	cols   []*Column
	index  map[string]int
}

// New creates an empty frame with n rows and row ids 0..n-1.
func New(n int) *Frame {
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	return WithRowIDs(ids)
}

// WithRowIDs creates an empty frame using the supplied row ids.
func WithRowIDs(ids []int64) *Frame {
	return &Frame{rowIDs: ids, index: make(map[string]int)}
}

// NumRows returns the number of rows.
func (f *Frame) NumRows() int { return len(f.rowIDs) }

// NumCols returns the number of columns (excluding the row_id column).
func (f *Frame) NumCols() int { return len(f.cols) }

// RowIDs returns the row id column (aliasing internal storage).
func (f *Frame) RowIDs() []int64 { return f.rowIDs }

// Names returns the column names in order.
func (f *Frame) Names() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name
	}
	return out
}

// Has reports whether a column with the given name exists.
func (f *Frame) Has(name string) bool {
	_, ok := f.index[name]
	return ok
}

// Col returns the named column or nil if absent.
func (f *Frame) Col(name string) *Column {
	if i, ok := f.index[name]; ok {
		return f.cols[i]
	}
	return nil
}

// ColAt returns the i-th column.
func (f *Frame) ColAt(i int) *Column { return f.cols[i] }

// Add appends a column. It panics on duplicate names or length mismatch.
func (f *Frame) Add(c *Column) *Frame {
	if _, dup := f.index[c.Name]; dup {
		panic(fmt.Sprintf("frame: duplicate column %q", c.Name))
	}
	if c.Len() != f.NumRows() {
		panic(fmt.Sprintf("frame: column %q has %d rows, frame has %d", c.Name, c.Len(), f.NumRows()))
	}
	f.index[c.Name] = len(f.cols)
	f.cols = append(f.cols, c)
	return f
}

// AddFloats appends a float column.
func (f *Frame) AddFloats(name string, vals []float64) *Frame {
	return f.Add(&Column{Name: name, Type: Float, F: vals})
}

// AddInts appends an int column.
func (f *Frame) AddInts(name string, vals []int64) *Frame {
	return f.Add(&Column{Name: name, Type: Int, I: vals})
}

// AddStrings appends a string column.
func (f *Frame) AddStrings(name string, vals []string) *Frame {
	return f.Add(&Column{Name: name, Type: String, S: vals})
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	out := WithRowIDs(append([]int64(nil), f.rowIDs...))
	for _, c := range f.cols {
		out.Add(c.Clone())
	}
	return out
}

// Select returns a new frame containing only the named columns (shallow
// copies of the column data). Unknown names panic.
func (f *Frame) Select(names ...string) *Frame {
	out := WithRowIDs(f.rowIDs)
	for _, n := range names {
		c := f.Col(n)
		if c == nil {
			panic(fmt.Sprintf("frame: Select unknown column %q", n))
		}
		out.Add(c)
	}
	return out
}

// Drop returns a new frame without the named columns. Missing names are
// ignored (dropping an already-dropped column is a no-op, as in pandas with
// errors="ignore").
func (f *Frame) Drop(names ...string) *Frame {
	dropped := make(map[string]bool, len(names))
	for _, n := range names {
		dropped[n] = true
	}
	out := WithRowIDs(f.rowIDs)
	for _, c := range f.cols {
		if !dropped[c.Name] {
			out.Add(c)
		}
	}
	return out
}

// Gather returns a new frame containing the rows at idx, in order.
func (f *Frame) Gather(idx []int) *Frame {
	ids := make([]int64, len(idx))
	for k, i := range idx {
		ids[k] = f.rowIDs[i]
	}
	out := WithRowIDs(ids)
	for _, c := range f.cols {
		out.Add(c.gather(idx))
	}
	return out
}

// Head returns the first n rows (or fewer if the frame is shorter).
func (f *Frame) Head(n int) *Frame {
	if n > f.NumRows() {
		n = f.NumRows()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return f.Gather(idx)
}

// RowByID returns the positional index of the row with the given row id, or
// -1 if absent.
func (f *Frame) RowByID(id int64) int {
	for i, r := range f.rowIDs {
		if r == id {
			return i
		}
	}
	return -1
}

// JoinInner performs an inner join with other on the named int column. Rows
// from f keep their row ids; matching columns from other are appended with
// their names (the join key is not duplicated). If other has multiple rows
// per key, the first wins (sufficient for the star-schema joins in the
// Zillow workload, where the properties table is unique per parcel).
func (f *Frame) JoinInner(other *Frame, on string) *Frame {
	left := f.Col(on)
	right := other.Col(on)
	if left == nil || right == nil || left.Type != Int || right.Type != Int {
		panic(fmt.Sprintf("frame: JoinInner needs int column %q on both sides", on))
	}
	lookup := make(map[int64]int, other.NumRows())
	for i := len(right.I) - 1; i >= 0; i-- {
		lookup[right.I[i]] = i // earlier rows overwrite later: first wins
	}
	var lIdx, rIdx []int
	for i, k := range left.I {
		if j, ok := lookup[k]; ok {
			lIdx = append(lIdx, i)
			rIdx = append(rIdx, j)
		}
	}
	out := f.Gather(lIdx)
	for _, c := range other.cols {
		if c.Name == on || out.Has(c.Name) {
			continue
		}
		out.Add(c.gather(rIdx))
	}
	return out
}

// FloatMatrix returns all float/int columns as a float32 matrix in column
// order, along with the column names. This is the representation handed to
// models and to the column store.
func (f *Frame) FloatMatrix() (*tensor.Dense, []string) {
	var names []string
	var cols [][]float64
	for _, c := range f.cols {
		if vals, ok := c.AsFloats(); ok {
			names = append(names, c.Name)
			cols = append(cols, vals)
		}
	}
	d := tensor.NewDense(f.NumRows(), len(cols))
	for j, vals := range cols {
		for i, v := range vals {
			d.Set(i, j, float32(v))
		}
	}
	return d, names
}

// FromMatrix builds a frame from a float32 matrix with the given column
// names and row ids (ids may be nil for 0..n-1).
func FromMatrix(d *tensor.Dense, names []string, ids []int64) *Frame {
	if len(names) != d.Cols {
		panic("frame: FromMatrix name count mismatch")
	}
	var f *Frame
	if ids == nil {
		f = New(d.Rows)
	} else {
		f = WithRowIDs(ids)
	}
	for j, n := range names {
		vals := make([]float64, d.Rows)
		for i := 0; i < d.Rows; i++ {
			vals[i] = float64(d.At(i, j))
		}
		f.AddFloats(n, vals)
	}
	return f
}

// SortByFloat returns row indices that order the named float column
// ascending (NaNs last). It does not reorder the frame.
func (f *Frame) SortByFloat(name string) []int {
	c := f.Col(name)
	vals, ok := c.AsFloats()
	if !ok {
		panic(fmt.Sprintf("frame: SortByFloat on non-numeric column %q", name))
	}
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		va, vb := vals[idx[a]], vals[idx[b]]
		if math.IsNaN(va) {
			return false
		}
		if math.IsNaN(vb) {
			return true
		}
		return va < vb
	})
	return idx
}
