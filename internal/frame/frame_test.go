package frame

import (
	"math"
	"reflect"
	"testing"

	"mistique/internal/tensor"
)

func sample() *Frame {
	f := New(3)
	f.AddFloats("price", []float64{100, 200, 300})
	f.AddInts("rooms", []int64{2, 3, 4})
	f.AddStrings("city", []string{"bos", "sea", "bos"})
	return f
}

func TestBasics(t *testing.T) {
	f := sample()
	if f.NumRows() != 3 || f.NumCols() != 3 {
		t.Fatalf("shape %dx%d", f.NumRows(), f.NumCols())
	}
	if !reflect.DeepEqual(f.Names(), []string{"price", "rooms", "city"}) {
		t.Fatalf("names %v", f.Names())
	}
	if f.Col("price").F[1] != 200 {
		t.Fatal("Col lookup")
	}
	if f.Col("nope") != nil || f.Has("nope") {
		t.Fatal("missing column should be nil")
	}
	if f.RowIDs()[2] != 2 {
		t.Fatal("default row ids")
	}
}

func TestAddPanics(t *testing.T) {
	f := sample()
	for name, fn := range map[string]func(){
		"dup":     func() { f.AddFloats("price", []float64{1, 2, 3}) },
		"too-few": func() { f.AddFloats("x", []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSelectDrop(t *testing.T) {
	f := sample()
	s := f.Select("city", "price")
	if !reflect.DeepEqual(s.Names(), []string{"city", "price"}) {
		t.Fatalf("select %v", s.Names())
	}
	d := f.Drop("rooms", "not-there")
	if !reflect.DeepEqual(d.Names(), []string{"price", "city"}) {
		t.Fatalf("drop %v", d.Names())
	}
	if f.NumCols() != 3 {
		t.Fatal("Drop mutated the receiver")
	}
}

func TestGatherKeepsRowIDs(t *testing.T) {
	f := sample()
	g := f.Gather([]int{2, 0})
	if !reflect.DeepEqual(g.RowIDs(), []int64{2, 0}) {
		t.Fatalf("row ids %v", g.RowIDs())
	}
	if g.Col("price").F[0] != 300 || g.Col("city").S[1] != "bos" {
		t.Fatal("gather values")
	}
	if g.RowByID(0) != 1 || g.RowByID(99) != -1 {
		t.Fatal("RowByID")
	}
	h := f.Head(2)
	if h.NumRows() != 2 || f.Head(10).NumRows() != 3 {
		t.Fatal("Head")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := sample()
	c := f.Clone()
	c.Col("price").F[0] = -1
	c.Col("city").S[0] = "nyc"
	if f.Col("price").F[0] != 100 || f.Col("city").S[0] != "bos" {
		t.Fatal("Clone shares storage")
	}
}

func TestJoinInner(t *testing.T) {
	left := New(4)
	left.AddInts("pid", []int64{10, 11, 12, 13})
	left.AddFloats("err", []float64{0.1, 0.2, 0.3, 0.4})

	right := WithRowIDs([]int64{100, 101, 102})
	right.AddInts("pid", []int64{12, 10, 10})
	right.AddFloats("sqft", []float64{900, 1500, 9999})
	right.AddStrings("type", []string{"condo", "house", "dup"})

	j := left.JoinInner(right, "pid")
	if j.NumRows() != 2 {
		t.Fatalf("join rows %d", j.NumRows())
	}
	// pid=10 matches first occurrence (sqft 1500), pid=12 matches 900.
	if j.Col("pid").I[0] != 10 || j.Col("sqft").F[0] != 1500 || j.Col("type").S[0] != "house" {
		t.Fatalf("join row0: %v %v", j.Col("sqft").F, j.Col("type").S)
	}
	if j.Col("pid").I[1] != 12 || j.Col("sqft").F[1] != 900 {
		t.Fatal("join row1")
	}
	// Left row ids preserved.
	if !reflect.DeepEqual(j.RowIDs(), []int64{0, 2}) {
		t.Fatalf("join ids %v", j.RowIDs())
	}
}

func TestFloatMatrixRoundTrip(t *testing.T) {
	f := sample()
	m, names := f.FloatMatrix()
	if !reflect.DeepEqual(names, []string{"price", "rooms"}) {
		t.Fatalf("numeric names %v", names)
	}
	if m.Rows != 3 || m.Cols != 2 || m.At(1, 1) != 3 {
		t.Fatalf("matrix %+v", m)
	}
	back := FromMatrix(m, names, f.RowIDs())
	if back.Col("rooms").F[2] != 4 {
		t.Fatal("FromMatrix values")
	}
}

func TestFromMatrixDefaultIDs(t *testing.T) {
	m := tensor.FromRows([][]float32{{1}, {2}})
	f := FromMatrix(m, []string{"x"}, nil)
	if !reflect.DeepEqual(f.RowIDs(), []int64{0, 1}) {
		t.Fatalf("ids %v", f.RowIDs())
	}
}

func TestSortByFloatNaNLast(t *testing.T) {
	f := New(4)
	f.AddFloats("v", []float64{3, math.NaN(), 1, 2})
	idx := f.SortByFloat("v")
	if !reflect.DeepEqual(idx, []int{2, 3, 0, 1}) {
		t.Fatalf("sort idx %v", idx)
	}
}

func TestAsFloats(t *testing.T) {
	f := sample()
	if _, ok := f.Col("city").AsFloats(); ok {
		t.Fatal("string column converted to floats")
	}
	vals, ok := f.Col("rooms").AsFloats()
	if !ok || vals[0] != 2 {
		t.Fatal("int column conversion")
	}
}

func TestColAtAndTypeString(t *testing.T) {
	f := sample()
	if f.ColAt(0).Name != "price" || f.ColAt(2).Type != String {
		t.Fatal("ColAt")
	}
	if Float.String() != "float" || Int.String() != "int" || String.String() != "string" {
		t.Fatal("type strings")
	}
	if ColType(99).String() == "" {
		t.Fatal("unknown type string empty")
	}
}
