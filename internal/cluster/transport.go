package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"mistique/client"
)

// Backend is the per-shard slice of the query API the router fans out
// over. HTTPBackend implements it over the typed HTTP client;
// FaultBackend wraps any Backend with injectable network faults for the
// fault-matrix tests.
type Backend interface {
	// Intermediate fetches one intermediate's catalog entry (row count,
	// columns) — the router needs it to lay out row-blocks.
	Intermediate(ctx context.Context, model, interm string) (*client.IntermInfo, error)
	// FilterRowsRange evaluates `column op bound` over global rows
	// [from, to), returning global row offsets in ascending order.
	FilterRowsRange(ctx context.Context, model, interm, column, op string, bound float64, from, to int) ([]int, error)
	// TopKRange ranks global rows [from, to) of a column in the engine's
	// pinned RankLess order, returning global row ids.
	TopKRange(ctx context.Context, model, interm, column string, k, from, to int) ([]client.TopKEntry, error)
	// GetRows reads rows [from, to) of the given columns.
	GetRows(ctx context.Context, model, interm string, cols []string, from, to int) (*client.RowsResponse, error)
	// Ready probes readiness; ready == false with a nil error means the
	// node is alive but degraded (shed traffic, don't declare it dead).
	Ready(ctx context.Context) (resp *client.ReadyResponse, ready bool, err error)
}

// HTTPBackend adapts mistique/client to the Backend interface. Build the
// client with WithMaxRetries(0) (or very few): the router owns the retry,
// hedging and failover policy, and client-side retries underneath it
// would double-spend the latency budget on a shard the router is about
// to route around.
type HTTPBackend struct {
	C *client.Client
}

// NewHTTPBackend wraps a configured client.
func NewHTTPBackend(c *client.Client) *HTTPBackend { return &HTTPBackend{C: c} }

func (b *HTTPBackend) Intermediate(ctx context.Context, model, interm string) (*client.IntermInfo, error) {
	return b.C.Intermediate(ctx, model, interm)
}

func (b *HTTPBackend) FilterRowsRange(ctx context.Context, model, interm, column, op string, bound float64, from, to int) ([]int, error) {
	return b.C.FilterRowsRange(ctx, model, interm, column, op, bound, from, to)
}

func (b *HTTPBackend) TopKRange(ctx context.Context, model, interm, column string, k, from, to int) ([]client.TopKEntry, error) {
	return b.C.TopKRange(ctx, model, interm, column, k, from, to)
}

func (b *HTTPBackend) GetRows(ctx context.Context, model, interm string, cols []string, from, to int) (*client.RowsResponse, error) {
	return b.C.GetRows(ctx, model, interm, cols, from, to)
}

func (b *HTTPBackend) Ready(ctx context.Context) (*client.ReadyResponse, bool, error) {
	return b.C.Ready(ctx)
}

// ErrPartitioned is the canonical injected network-partition error.
var ErrPartitioned = errors.New("faultnet: network partition (injected)")

// FaultBackend wraps a Backend with injectable network faults — the
// internal/faultfs philosophy extended to the wire. Tests arm a fault
// (latency, hard error, hang, alive-but-degraded), run queries or let
// probes fire, and flip the fault off again to model flaps and healed
// partitions. All methods are safe for concurrent use; per-op call
// counts back the no-thundering-herd probe assertions.
type FaultBackend struct {
	inner Backend

	mu       sync.Mutex
	latency  time.Duration
	failWith error
	hang     bool
	degraded bool
	calls    map[string]int
}

// NewFaultBackend wraps inner with a clean (no-fault) plan.
func NewFaultBackend(inner Backend) *FaultBackend {
	return &FaultBackend{inner: inner, calls: make(map[string]int)}
}

// SetLatency delays every call by d before it reaches the wire.
func (f *FaultBackend) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// SetError fails every call with err (nil disarms). Partition() is the
// shorthand for the canonical network-partition error.
func (f *FaultBackend) SetError(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWith = err
}

// Partition makes the shard unreachable: every call, probes included,
// fails with ErrPartitioned.
func (f *FaultBackend) Partition() { f.SetError(ErrPartitioned) }

// SetHang makes every call block until its context expires — the
// worst network failure mode: no error, no bytes, just silence.
func (f *FaultBackend) SetHang(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hang = on
}

// SetDegraded makes Ready report alive-but-degraded (the /readyz 503
// shape) without touching the data path.
func (f *FaultBackend) SetDegraded(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.degraded = on
}

// Heal disarms every fault.
func (f *FaultBackend) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency, f.failWith, f.hang, f.degraded = 0, nil, false, false
}

// Calls returns how many times op ("ready", "topk", "filter", "rows",
// "interm") was attempted, faulted attempts included.
func (f *FaultBackend) Calls(op string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

// gate records the call and applies the armed plan.
func (f *FaultBackend) gate(ctx context.Context, op string) error {
	f.mu.Lock()
	f.calls[op]++
	latency, failWith, hang := f.latency, f.failWith, f.hang
	f.mu.Unlock()
	if hang {
		<-ctx.Done()
		return ctx.Err()
	}
	if latency > 0 {
		t := time.NewTimer(latency)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	return failWith
}

func (f *FaultBackend) Intermediate(ctx context.Context, model, interm string) (*client.IntermInfo, error) {
	if err := f.gate(ctx, "interm"); err != nil {
		return nil, err
	}
	return f.inner.Intermediate(ctx, model, interm)
}

func (f *FaultBackend) FilterRowsRange(ctx context.Context, model, interm, column, op string, bound float64, from, to int) ([]int, error) {
	if err := f.gate(ctx, "filter"); err != nil {
		return nil, err
	}
	return f.inner.FilterRowsRange(ctx, model, interm, column, op, bound, from, to)
}

func (f *FaultBackend) TopKRange(ctx context.Context, model, interm, column string, k, from, to int) ([]client.TopKEntry, error) {
	if err := f.gate(ctx, "topk"); err != nil {
		return nil, err
	}
	return f.inner.TopKRange(ctx, model, interm, column, k, from, to)
}

func (f *FaultBackend) GetRows(ctx context.Context, model, interm string, cols []string, from, to int) (*client.RowsResponse, error) {
	if err := f.gate(ctx, "rows"); err != nil {
		return nil, err
	}
	return f.inner.GetRows(ctx, model, interm, cols, from, to)
}

func (f *FaultBackend) Ready(ctx context.Context) (*client.ReadyResponse, bool, error) {
	if err := f.gate(ctx, "ready"); err != nil {
		return nil, false, err
	}
	f.mu.Lock()
	degraded := f.degraded
	f.mu.Unlock()
	if degraded {
		return &client.ReadyResponse{Status: "degraded", Reasons: []string{"injected degradation"}}, false, nil
	}
	return f.inner.Ready(ctx)
}
