package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// BlockRef names one row-block of one intermediate — the unit of
// placement. Content lives at the block grain so a degraded shard's data
// can be re-fetched from any replica of that block rather than declared
// lost wholesale.
type BlockRef struct {
	Model        string
	Intermediate string
	Block        int
}

func (b BlockRef) String() string {
	return fmt.Sprintf("%s.%s[%d]", b.Model, b.Intermediate, b.Block)
}

// hash is the block's position on the ring: FNV-64a over the
// NUL-separated key. Placement must be a pure function of the key and
// the shard set — every router instance, restarted or not, must agree.
func (b BlockRef) hash() uint64 {
	h := fnv.New64a()
	io.WriteString(h, b.Model)
	h.Write([]byte{0})
	io.WriteString(h, b.Intermediate)
	h.Write([]byte{0})
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(b.Block))
	h.Write(buf[:])
	return h.Sum64()
}

type ringPoint struct {
	hash  uint64
	shard int // index into Ring.shards
}

// Ring is an immutable consistent-hash ring. Each shard contributes
// vnodes virtual points so load spreads evenly; a block's replica chain
// is the first `replicas` distinct shards clockwise from the block's
// hash. The ring never reshuffles at query time — membership only
// reorders which replica is tried first, so a flapping shard cannot move
// data ownership out from under in-flight queries.
type Ring struct {
	shards   []ShardID
	points   []ringPoint
	replicas int
}

// NewRing builds a ring over the given shards. vnodes <= 0 defaults to
// 64; replicas is clamped to [1, len(shards)].
func NewRing(shards []ShardID, vnodes, replicas int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(shards) {
		replicas = len(shards)
	}
	r := &Ring{
		shards:   append([]ShardID(nil), shards...),
		replicas: replicas,
		points:   make([]ringPoint, 0, len(shards)*vnodes),
	}
	for si, s := range r.shards {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", s, v)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), shard: si})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by shard index so the walk
		// order is still deterministic across processes.
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// Replicas returns the ring's effective replication factor.
func (r *Ring) Replicas() int { return r.replicas }

// Owners returns the block's replica chain, primary first: the first
// `replicas` distinct shards clockwise from the block's point.
func (r *Ring) Owners(b BlockRef) []ShardID {
	if len(r.points) == 0 {
		return nil
	}
	key := b.hash()
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]ShardID, 0, r.replicas)
	seen := make(map[int]struct{}, r.replicas)
	for n := 0; n < len(r.points) && len(out) < r.replicas; n++ {
		p := r.points[(i+n)%len(r.points)]
		if _, dup := seen[p.shard]; dup {
			continue
		}
		seen[p.shard] = struct{}{}
		out = append(out, r.shards[p.shard])
	}
	return out
}
