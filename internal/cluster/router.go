package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mistique"
	"mistique/client"
	"mistique/internal/diag"
	"mistique/internal/obs"
)

// Config controls a Router. Zero values select defaults.
type Config struct {
	// Replication is the replica count per row-block (default 2, clamped
	// to the shard count). 1 trades availability for capacity: losing a
	// shard degrades queries over its blocks instead of failing over.
	Replication int
	// VirtualNodes is the ring vnode count per shard (default 64).
	VirtualNodes int
	// BlockRows is the placement grain in rows (default 512). It need not
	// match the store's RowBlock size — the HTTP API takes arbitrary row
	// ranges — but aligning them keeps shard-local reads block-local.
	BlockRows int
	// MaxPerShard bounds concurrently in-flight sub-requests per shard
	// (default 32) — the PR 4 admission semaphore, applied client-side. A
	// shard at the bound sheds instantly and the replica chain moves on.
	MaxPerShard int
	// RetryRounds is how many extra passes over a block's replica chain
	// the router may take after the first (default 1). Each round starts
	// behind a full-jitter backoff.
	RetryRounds int
	// RetryBackoff is the first round's backoff cap, doubled per round
	// (default 25ms). The actual sleep is uniform in [0, cap].
	RetryBackoff time.Duration
	// HedgeDelay is the hedge trigger used until a shard has enough
	// latency samples for a p95 (default 50ms).
	HedgeDelay time.Duration
	// MinHedgeDelay / MaxHedgeDelay clamp the p95-derived hedge trigger
	// (defaults 5ms / 2s). Setting both equal pins the delay — the fault
	// tests do this for determinism.
	MinHedgeDelay time.Duration
	MaxHedgeDelay time.Duration
	// ShardTimeout bounds one sub-request attempt (default 2s). A hung
	// shard costs at most this per attempt, not the whole query deadline.
	ShardTimeout time.Duration
	// CatalogTTL caches (model, intermediate) row counts (default 1s).
	CatalogTTL time.Duration
	// Member configures the health checker; DisableProbes turns active
	// probing off (membership then stays all-healthy — unit tests).
	Member        MemberConfig
	DisableProbes bool
	// Obs receives the mistique_cluster_* instruments. Pass a serving
	// System's registry to surface them on its /metrics; nil disables.
	Obs *obs.Registry
}

func (c Config) withDefaults(shards int) Config {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.Replication > shards {
		c.Replication = shards
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.BlockRows <= 0 {
		c.BlockRows = 512
	}
	if c.MaxPerShard <= 0 {
		c.MaxPerShard = 32
	}
	if c.RetryRounds < 0 {
		c.RetryRounds = 0
	} else if c.RetryRounds == 0 {
		c.RetryRounds = 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 50 * time.Millisecond
	}
	if c.MinHedgeDelay <= 0 {
		c.MinHedgeDelay = 5 * time.Millisecond
	}
	if c.MaxHedgeDelay <= 0 {
		c.MaxHedgeDelay = 2 * time.Second
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 2 * time.Second
	}
	if c.CatalogTTL <= 0 {
		c.CatalogTTL = time.Second
	}
	return c
}

// BlockRange identifies one row-block and the global rows it covers.
type BlockRange struct {
	Block int `json:"block"`
	From  int `json:"from"`
	To    int `json:"to"`
}

// Coverage is the degradation contract every scatter-gather result
// carries: Degraded reports partial coverage, Missing names exactly the
// row-blocks no replica could serve. A degraded answer is always honest
// about what it is — the data present is exact, the gaps are listed.
type Coverage struct {
	Degraded bool
	Missing  []BlockRange
}

// ErrDegraded is the errors.Is target for partial results.
var ErrDegraded = errors.New("cluster: degraded result")

// DegradedError is the typed partial-result error: the query's data (on
// the accompanying result) is exact but incomplete, and Missing is the
// manifest of unserved row-blocks. Callers that can tolerate gaps keep
// the result; callers that cannot treat it as the failure it also is.
type DegradedError struct {
	Model        string
	Intermediate string
	Missing      []BlockRange
	// Cause is the last underlying shard error.
	Cause error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("cluster: degraded result for %s.%s: %d row-block(s) unserved (last error: %v)",
		e.Model, e.Intermediate, len(e.Missing), e.Cause)
}

func (e *DegradedError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrDegraded) work.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// errShardBusy marks a client-side admission shed; the replica chain
// treats it like any transient shard failure.
var errShardBusy = errors.New("cluster: shard admission full")

// shardHandle is the router's per-shard runtime state.
type shardHandle struct {
	id  ShardID
	be  Backend
	sem chan struct{}
	lat *latencyWindow

	latHist *obs.Histogram
	errs    *obs.Counter
}

// Router fans queries across shards. Create with New, stop with Close.
// A Router is safe for concurrent use.
type Router struct {
	cfg    Config
	ring   *Ring
	shards map[ShardID]*shardHandle
	order  []ShardID
	mem    *Membership
	met    *routerMetrics

	catMu   sync.Mutex
	catalog map[string]catalogEntry
}

type catalogEntry struct {
	info *client.IntermInfo
	exp  time.Time
}

// New builds a router over the given shards and starts the health
// checker (unless cfg.DisableProbes).
func New(shards []Shard, cfg Config) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: need at least one shard")
	}
	cfg = cfg.withDefaults(len(shards))
	met := newRouterMetrics(cfg.Obs)
	r := &Router{
		cfg:     cfg,
		shards:  make(map[ShardID]*shardHandle, len(shards)),
		order:   make([]ShardID, 0, len(shards)),
		met:     met,
		catalog: make(map[string]catalogEntry),
	}
	for _, s := range shards {
		if s.ID == "" || s.Backend == nil {
			return nil, errors.New("cluster: every shard needs an ID and a Backend")
		}
		if _, dup := r.shards[s.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", s.ID)
		}
		suffix := metricName(s.ID)
		r.shards[s.ID] = &shardHandle{
			id:      s.ID,
			be:      s.Backend,
			sem:     make(chan struct{}, cfg.MaxPerShard),
			lat:     newLatencyWindow(128),
			latHist: cfg.Obs.Histogram("mistique_cluster_shard_seconds_"+suffix, "sub-request wall time against shard "+string(s.ID)),
			errs:    cfg.Obs.Counter("mistique_cluster_shard_errors_"+suffix+"_total", "failed sub-requests against shard "+string(s.ID)),
		}
		r.order = append(r.order, s.ID)
	}
	r.ring = NewRing(r.order, cfg.VirtualNodes, cfg.Replication)
	r.mem = newMembership(shards, cfg.Member, met)
	if !cfg.DisableProbes {
		r.mem.Start()
	}
	return r, nil
}

// Close stops the health checker.
func (r *Router) Close() { r.mem.Close() }

// Membership exposes the health view (CLI, tests).
func (r *Router) Membership() *Membership { return r.mem }

// Ring exposes the placement ring (CLI, tests).
func (r *Router) Ring() *Ring { return r.ring }

// call runs fn against one shard under its admission slot and the
// per-attempt timeout, recording success latency (hedge triggers derive
// from it) and errors.
func (r *Router) call(ctx context.Context, h *shardHandle, fn func(ctx context.Context, be Backend) (any, error)) (any, error) {
	select {
	case h.sem <- struct{}{}:
	default:
		r.met.shed.Inc()
		return nil, fmt.Errorf("%w: %s", errShardBusy, h.id)
	}
	defer func() { <-h.sem }()
	actx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel()
	t0 := time.Now()
	v, err := fn(actx, h.be)
	if err != nil {
		h.errs.Inc()
		return nil, err
	}
	sec := time.Since(t0).Seconds()
	h.lat.observe(sec)
	h.latHist.Observe(sec)
	return v, nil
}

// hedgeDelay is how long to let a shard run before racing the next
// replica: its own observed p95, clamped, or the configured default
// until enough samples exist.
func (r *Router) hedgeDelay(h *shardHandle) time.Duration {
	d := h.lat.p95()
	if d <= 0 {
		d = r.cfg.HedgeDelay
	}
	if d < r.cfg.MinHedgeDelay {
		d = r.cfg.MinHedgeDelay
	}
	if d > r.cfg.MaxHedgeDelay {
		d = r.cfg.MaxHedgeDelay
	}
	return d
}

// permanent reports whether a shard's answer is definitive (a 4xx other
// than 429): retrying or failing over cannot change "no such model".
func permanent(err error) bool {
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Status >= 400 && ae.Status < 500 && ae.Status != 429
	}
	return false
}

// chainFor orders a block's replica chain for attempting: healthy first
// (ring order within each class), then suspect, then down. Suspects are
// routed around, not routed out — and a down shard stays reachable as a
// last resort because the membership view may be stale.
func (r *Router) chainFor(b BlockRef) []*shardHandle {
	owners := r.ring.Owners(b)
	var healthy, suspect, down []*shardHandle
	for _, id := range owners {
		h := r.shards[id]
		switch r.mem.State(id) {
		case Healthy:
			healthy = append(healthy, h)
		case Suspect:
			suspect = append(suspect, h)
		default:
			down = append(down, h)
		}
	}
	return append(append(healthy, suspect...), down...)
}

// executeBlock answers one sub-query from a block's replica chain.
//
// The attempt plan is the chain repeated over 1+RetryRounds rounds. The
// primary starts immediately; a hedge starts the next replica when the
// running one sits past its p95; an error starts the next replica at
// once (failover); a fresh round starts only behind a full-jitter
// backoff. The first success wins and cancels every other attempt.
func (r *Router) executeBlock(ctx context.Context, chain []*shardHandle, fn func(ctx context.Context, be Backend) (any, error)) (any, error) {
	if len(chain) == 0 {
		return nil, errors.New("cluster: empty replica chain")
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	total := (1 + r.cfg.RetryRounds) * len(chain)
	type attempt struct {
		v     any
		err   error
		hedge bool
	}
	results := make(chan attempt, total)
	next, inflight := 0, 0
	start := func(hedge bool) {
		h := chain[next%len(chain)]
		next++
		inflight++
		if hedge {
			r.met.hedgesFired.Inc()
		}
		go func() {
			v, err := r.call(cctx, h, fn)
			results <- attempt{v, err, hedge}
		}()
	}
	start(false)
	hedge := time.NewTimer(r.hedgeDelay(chain[0]))
	defer hedge.Stop()
	var backoff <-chan time.Time
	var backoffTimer *time.Timer
	defer func() {
		if backoffTimer != nil {
			backoffTimer.Stop()
		}
	}()
	wait := r.cfg.RetryBackoff
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedge.C:
			if next < len(chain) && backoff == nil {
				start(true)
				if next < len(chain) {
					hedge.Reset(r.hedgeDelay(chain[next-1]))
				}
			}
		case <-backoff:
			backoff = nil
			r.met.retries.Inc()
			start(false)
		case res := <-results:
			inflight--
			if res.err == nil {
				if res.hedge {
					r.met.hedgesWon.Inc()
				}
				return res.v, nil
			}
			if permanent(res.err) {
				return nil, res.err
			}
			lastErr = res.err
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			switch {
			case next < len(chain):
				// Same round, untried replica: fail over immediately.
				r.met.failovers.Inc()
				start(false)
			case next < total && backoff == nil && inflight == 0:
				// Chain exhausted this round; buy the next one with a
				// spread-out sleep so synchronized failures don't retry
				// as a wave.
				backoffTimer = time.NewTimer(fullJitter(wait))
				backoff = backoffTimer.C
				wait *= 2
			case inflight == 0 && backoff == nil:
				return nil, lastErr
			}
		}
	}
}

// intermInfo resolves an intermediate's catalog entry, trying shards in
// membership-preferred order and caching briefly. A permanent answer
// (404: no such model/intermediate) is returned as-is — failover cannot
// conjure a model into existence.
func (r *Router) intermInfo(ctx context.Context, model, interm string) (*client.IntermInfo, error) {
	key := model + "\x00" + interm
	r.catMu.Lock()
	e, ok := r.catalog[key]
	r.catMu.Unlock()
	if ok && time.Now().Before(e.exp) {
		return e.info, nil
	}
	var lastErr error
	for _, h := range r.preferredOrder() {
		v, err := r.call(ctx, h, func(ctx context.Context, be Backend) (any, error) {
			return be.Intermediate(ctx, model, interm)
		})
		if err == nil {
			info := v.(*client.IntermInfo)
			r.catMu.Lock()
			r.catalog[key] = catalogEntry{info: info, exp: time.Now().Add(r.cfg.CatalogTTL)}
			r.catMu.Unlock()
			return info, nil
		}
		if permanent(err) {
			return nil, err
		}
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
	}
	return nil, fmt.Errorf("cluster: catalog lookup %s.%s failed on every shard: %w", model, interm, lastErr)
}

// preferredOrder lists every shard, healthy before suspect before down,
// stable within a class.
func (r *Router) preferredOrder() []*shardHandle {
	var healthy, suspect, down []*shardHandle
	for _, id := range r.order {
		h := r.shards[id]
		switch r.mem.State(id) {
		case Healthy:
			healthy = append(healthy, h)
		case Suspect:
			suspect = append(suspect, h)
		default:
			down = append(down, h)
		}
	}
	return append(append(healthy, suspect...), down...)
}

// blockRanges lays [0, rows) out in blockRows-sized placement blocks.
func blockRanges(rows, blockRows int) []BlockRange {
	if rows <= 0 {
		return nil
	}
	out := make([]BlockRange, 0, (rows+blockRows-1)/blockRows)
	for from := 0; from < rows; from += blockRows {
		to := from + blockRows
		if to > rows {
			to = rows
		}
		out = append(out, BlockRange{Block: from / blockRows, From: from, To: to})
	}
	return out
}

// scatter runs fn once per block concurrently (bounded downstream by the
// per-shard semaphores) and collects per-block values or errors.
func (r *Router) scatter(ctx context.Context, model, interm string, blocks []BlockRange, fn func(ctx context.Context, be Backend, br BlockRange) (any, error)) ([]any, []error) {
	vals := make([]any, len(blocks))
	errs := make([]error, len(blocks))
	var wg sync.WaitGroup
	for i, br := range blocks {
		wg.Add(1)
		go func(i int, br BlockRange) {
			defer wg.Done()
			chain := r.chainFor(BlockRef{Model: model, Intermediate: interm, Block: br.Block})
			v, err := r.executeBlock(ctx, chain, func(ctx context.Context, be Backend) (any, error) {
				return fn(ctx, be, br)
			})
			vals[i], errs[i] = v, err
		}(i, br)
	}
	wg.Wait()
	return vals, errs
}

// gather folds per-block outcomes into a Coverage, returning the typed
// DegradedError when any block went unserved.
func (r *Router) gather(model, interm string, blocks []BlockRange, errs []error, cov *Coverage) error {
	var cause error
	for i, err := range errs {
		if err == nil {
			continue
		}
		cov.Degraded = true
		cov.Missing = append(cov.Missing, blocks[i])
		cause = err
	}
	if !cov.Degraded {
		return nil
	}
	r.met.degraded.Inc()
	return &DegradedError{Model: model, Intermediate: interm, Missing: cov.Missing, Cause: cause}
}

// FilterResult is a scatter-gather predicate scan answer. Rows holds the
// matching global offsets from every served block, ascending.
type FilterResult struct {
	Rows []int
	Coverage
}

// FilterRows evaluates `column op bound` across the cluster. Op is one
// of "gt", "ge", "lt", "le". On partial coverage the returned result
// holds every served block's rows and err is a *DegradedError.
func (r *Router) FilterRows(ctx context.Context, model, interm, column, op string, bound float64) (*FilterResult, error) {
	info, err := r.intermInfo(ctx, model, interm)
	if err != nil {
		return nil, err
	}
	r.met.queries.Inc()
	blocks := blockRanges(info.Rows, r.cfg.BlockRows)
	vals, errs := r.scatter(ctx, model, interm, blocks, func(ctx context.Context, be Backend, br BlockRange) (any, error) {
		return be.FilterRowsRange(ctx, model, interm, column, op, bound, br.From, br.To)
	})
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	res := &FilterResult{}
	for i := range blocks {
		if errs[i] != nil {
			continue
		}
		// Blocks are row-disjoint and visited in ascending order, so
		// concatenation keeps the global ascending invariant.
		res.Rows = append(res.Rows, vals[i].([]int)...)
	}
	return res, r.gather(model, interm, blocks, errs, &res.Coverage)
}

// TopKResult is a scatter-gather TOPK answer in the engine's pinned rank
// order.
type TopKResult struct {
	Entries []mistique.TopKEntry
	Coverage
}

// TopK merges per-block top-k candidate lists under diag.RankLess — the
// same comparator every shard ranked with — so the merged answer is
// bit-identical to a single-node TopK over the union of served blocks.
func (r *Router) TopK(ctx context.Context, model, interm, column string, k int) (*TopKResult, error) {
	info, err := r.intermInfo(ctx, model, interm)
	if err != nil {
		return nil, err
	}
	if k < 0 {
		k = 0
	}
	r.met.queries.Inc()
	blocks := blockRanges(info.Rows, r.cfg.BlockRows)
	vals, errs := r.scatter(ctx, model, interm, blocks, func(ctx context.Context, be Backend, br BlockRange) (any, error) {
		// k candidates per block suffice: the global top-k contains at
		// most k rows from any one block.
		return be.TopKRange(ctx, model, interm, column, k, br.From, br.To)
	})
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	res := &TopKResult{}
	for i := range blocks {
		if errs[i] != nil {
			continue
		}
		for _, e := range vals[i].([]client.TopKEntry) {
			res.Entries = append(res.Entries, mistique.TopKEntry{Row: e.Row, Value: float32(e.Value)})
		}
	}
	sort.Slice(res.Entries, func(a, b int) bool {
		ea, eb := res.Entries[a], res.Entries[b]
		return diag.RankLess(ea.Value, eb.Value, ea.Row, eb.Row)
	})
	if len(res.Entries) > k {
		res.Entries = res.Entries[:k]
	}
	return res, r.gather(model, interm, blocks, errs, &res.Coverage)
}

// RowsResult is a scatter-gather row-range read. Data[i] is global row
// From+i; rows belonging to a missing block are nil, so a degraded
// answer keeps global alignment instead of silently compacting.
type RowsResult struct {
	Cols []string
	From int
	To   int
	Data [][]float32
	Coverage
}

// GetRows reads rows [from, to) of the given columns (nil cols: all),
// stitching per-block sub-reads back together in order.
func (r *Router) GetRows(ctx context.Context, model, interm string, cols []string, from, to int) (*RowsResult, error) {
	info, err := r.intermInfo(ctx, model, interm)
	if err != nil {
		return nil, err
	}
	if to > info.Rows {
		to = info.Rows
	}
	if from < 0 || from > to {
		return nil, fmt.Errorf("cluster: bad row range [%d, %d)", from, to)
	}
	if len(cols) == 0 {
		cols = info.Columns
	}
	r.met.queries.Inc()
	var blocks []BlockRange
	for _, br := range blockRanges(info.Rows, r.cfg.BlockRows) {
		if br.To <= from || br.From >= to {
			continue
		}
		// Clip the block to the requested window.
		if br.From < from {
			br.From = from
		}
		if br.To > to {
			br.To = to
		}
		blocks = append(blocks, br)
	}
	vals, errs := r.scatter(ctx, model, interm, blocks, func(ctx context.Context, be Backend, br BlockRange) (any, error) {
		return be.GetRows(ctx, model, interm, cols, br.From, br.To)
	})
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	res := &RowsResult{Cols: cols, From: from, To: to, Data: make([][]float32, to-from)}
	for i, br := range blocks {
		if errs[i] != nil {
			continue
		}
		resp := vals[i].(*client.RowsResponse)
		for j, row := range resp.Data {
			res.Data[br.From-from+j] = client.Floats(row)
		}
	}
	return res, r.gather(model, interm, blocks, errs, &res.Coverage)
}

// GetIntermediate fetches the first nEx rows (<= 0: all) of the named
// columns. The router always reads stored chunks — the read-vs-rerun
// choice is a per-shard concern the single-node API keeps.
func (r *Router) GetIntermediate(ctx context.Context, model, interm string, cols []string, nEx int) (*RowsResult, error) {
	info, err := r.intermInfo(ctx, model, interm)
	if err != nil {
		return nil, err
	}
	to := info.Rows
	if nEx > 0 && nEx < to {
		to = nEx
	}
	return r.GetRows(ctx, model, interm, cols, 0, to)
}

// latencyWindow is a small sliding window of success latencies backing
// the p95-derived hedge trigger.
type latencyWindow struct {
	mu   sync.Mutex
	buf  []float64
	n    int // total observations
	next int
}

func newLatencyWindow(size int) *latencyWindow {
	return &latencyWindow{buf: make([]float64, size)}
}

func (w *latencyWindow) observe(sec float64) {
	w.mu.Lock()
	w.buf[w.next] = sec
	w.next = (w.next + 1) % len(w.buf)
	w.n++
	w.mu.Unlock()
}

// p95 returns the window's 95th percentile as a duration, or 0 until at
// least 8 samples exist (callers fall back to the configured default —
// hedging off a couple of samples would be noise-driven).
func (w *latencyWindow) p95() time.Duration {
	w.mu.Lock()
	size := w.n
	if size > len(w.buf) {
		size = len(w.buf)
	}
	if size < 8 {
		w.mu.Unlock()
		return 0
	}
	vals := make([]float64, size)
	copy(vals, w.buf[:size])
	w.mu.Unlock()
	sort.Float64s(vals)
	idx := int(0.95 * float64(size-1))
	return time.Duration(vals[idx] * float64(time.Second))
}
