package cluster

// The fault matrix: a 3-node in-process cluster (real Systems behind real
// HTTP servers) with a FaultBackend between the router and every shard.
// Each test arms one network failure mode — slow shard, killed shard,
// partition of an unreplicated owner, flapping membership — and asserts
// the router's contract: bit-exact parity with a single node whenever a
// replica can serve, a typed degraded manifest when none can, and probe
// traffic that backs off instead of herding.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mistique"
	"mistique/client"
	"mistique/internal/colstore"
	"mistique/internal/obs"
	"mistique/internal/pipeline"
	"mistique/internal/server"
	"mistique/internal/zillow"
)

const demoSpec = `
name: demo
stages:
  - name: props
    op: read_table
    params: {table: properties}
  - name: sales
    op: read_table
    params: {table: train}
  - name: joined
    op: join
    inputs: [sales, props]
    params: {on: parcelid}
  - name: filled
    op: fillna
    inputs: [joined]
  - name: splits
    op: split
    inputs: [filled]
    params: {frac: 0.8, seed: 1}
    outputs: [train_split, eval_split]
  - name: model
    op: train_xgb
    inputs: [train_split]
    params: {target: logerror, rounds: 4, max_depth: 3}
`

// node is one shard: a full System (the demo pipeline is deterministic,
// so every node holds bit-identical data — replication by construction)
// behind a real HTTP server.
type node struct {
	sys *mistique.System
	fb  *FaultBackend
}

func newNode(t testing.TB, name string) *node {
	t.Helper()
	sys, err := mistique.Open(t.TempDir(), mistique.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	ps, err := pipeline.SpecFromYAML(demoSpec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(ps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.LogPipeline(p, zillow.Env(200, 600, 1)); err != nil {
		t.Fatal(err)
	}
	srv := server.New(sys, server.Config{ShardName: name})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithMaxRetries(0), client.WithTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	return &node{sys: sys, fb: NewFaultBackend(NewHTTPBackend(c))}
}

// newTestCluster stands up n nodes and a router over them. The returned
// map indexes each node's fault plan by shard id.
func newTestCluster(t testing.TB, n int, cfg Config) (*Router, map[ShardID]*node) {
	t.Helper()
	nodes := make(map[ShardID]*node, n)
	shards := make([]Shard, 0, n)
	for i := 0; i < n; i++ {
		id := ShardID(fmt.Sprintf("s%d", i))
		nd := newNode(t, string(id))
		nodes[id] = nd
		shards = append(shards, Shard{ID: id, Backend: nd.fb})
	}
	r, err := New(shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, nodes
}

// testConfig pins the knobs that matter for determinism: small blocks so
// queries actually scatter, probes off unless the test is about them.
func testConfig() Config {
	return Config{
		Replication:   2,
		BlockRows:     64,
		DisableProbes: true,
		RetryBackoff:  5 * time.Millisecond,
		ShardTimeout:  10 * time.Second,
		CatalogTTL:    time.Minute,
		Obs:           obs.New(),
	}
}

func f32eq(a, b float32) bool {
	if math.IsNaN(float64(a)) && math.IsNaN(float64(b)) {
		return true
	}
	return math.Float32bits(a) == math.Float32bits(b)
}

// anyNode returns one node's System — every node holds identical data,
// so any of them is the single-node reference.
func anyNode(nodes map[ShardID]*node) *mistique.System {
	for _, nd := range nodes {
		return nd.sys
	}
	return nil
}

// primaryOf returns the shard a block's replica chain starts with — the
// shard to break when a test needs the failure on the serving path.
func primaryOf(t *testing.T, r *Router, block int) ShardID {
	t.Helper()
	owners := r.ring.Owners(BlockRef{Model: "demo", Intermediate: "joined", Block: block})
	if len(owners) == 0 {
		t.Fatal("block has no owners")
	}
	return owners[0]
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// --- ring unit tests ---

func TestRingDeterministicPlacement(t *testing.T) {
	ids := []ShardID{"a", "b", "c"}
	r1 := NewRing(ids, 64, 2)
	r2 := NewRing(ids, 64, 2)
	counts := map[ShardID]int{}
	for blk := 0; blk < 200; blk++ {
		ref := BlockRef{Model: "m", Intermediate: "i", Block: blk}
		o1, o2 := r1.Owners(ref), r2.Owners(ref)
		if len(o1) != 2 {
			t.Fatalf("owners(%v) = %v, want 2 replicas", ref, o1)
		}
		if o1[0] == o1[1] {
			t.Fatalf("replica chain repeats a shard: %v", o1)
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("placement not deterministic: %v vs %v", o1, o2)
			}
		}
		counts[o1[0]]++
	}
	// Virtual nodes should spread primaries over every shard.
	for _, id := range ids {
		if counts[id] == 0 {
			t.Fatalf("shard %s owns no primaries: %v", id, counts)
		}
	}
}

func TestRingReplicaClamp(t *testing.T) {
	r := NewRing([]ShardID{"a", "b"}, 8, 5)
	if r.Replicas() != 2 {
		t.Fatalf("replicas = %d, want clamp to 2", r.Replicas())
	}
	if got := r.Owners(BlockRef{Model: "m", Intermediate: "i"}); len(got) != 2 {
		t.Fatalf("owners = %v", got)
	}
}

// --- fault matrix ---

// TestScatterGatherParity: a healthy cluster answers every query shape
// bit-identically to a single node.
func TestScatterGatherParity(t *testing.T) {
	r, nodes := newTestCluster(t, 3, testConfig())
	sys := anyNode(nodes)
	ctx := context.Background()

	// FilterRows.
	fr, err := r.FilterRows(ctx, "demo", "joined", "logerror", "gt", 0)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Degraded {
		t.Fatal("healthy cluster reported degraded")
	}
	direct, err := sys.FilterRows("demo", "joined", "logerror", mustOp(t, "gt"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Rows) != len(direct) {
		t.Fatalf("filter rows %d vs %d", len(fr.Rows), len(direct))
	}
	for i := range fr.Rows {
		if fr.Rows[i] != direct[i] {
			t.Fatalf("filter mismatch at %d: %d vs %d", i, fr.Rows[i], direct[i])
		}
	}

	// TopK.
	tk, err := r.TopK(ctx, "demo", "joined", "logerror", 17)
	if err != nil {
		t.Fatal(err)
	}
	dtk, err := sys.TopK("demo", "joined", "logerror", 17)
	if err != nil {
		t.Fatal(err)
	}
	assertTopKEqual(t, tk.Entries, dtk)

	// GetRows.
	cols := []string{"logerror", "finishedsquarefeet"}
	rr, err := r.GetRows(ctx, "demo", "joined", cols, 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	drm, err := sys.GetRows("demo", "joined", cols, 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Data) != drm.Rows {
		t.Fatalf("rows %d vs %d", len(rr.Data), drm.Rows)
	}
	for i := range rr.Data {
		for j := range rr.Data[i] {
			if !f32eq(rr.Data[i][j], drm.Row(i)[j]) {
				t.Fatalf("rows mismatch at (%d,%d)", i, j)
			}
		}
	}

	// GetIntermediate caps at the row count.
	gi, err := r.GetIntermediate(ctx, "demo", "joined", cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, ok := sys.Metadata().IntermSnapshot("demo", "joined")
	if !ok {
		t.Fatal("joined not in catalog")
	}
	if len(gi.Data) != info.Rows {
		t.Fatalf("full read %d rows, want %d", len(gi.Data), info.Rows)
	}
}

// TestHedgingSlowShard: the primary of block 0 answers slowly; a pinned
// hedge delay races the replica, the fast answer wins, and the result is
// still bit-exact.
func TestHedgingSlowShard(t *testing.T) {
	cfg := testConfig()
	cfg.MinHedgeDelay = 5 * time.Millisecond
	cfg.MaxHedgeDelay = 5 * time.Millisecond
	r, nodes := newTestCluster(t, 3, cfg)
	sys := anyNode(nodes)
	// Warm the catalog cache first: catalog lookups fail over sequentially
	// (membership order + ShardTimeout), they do not hedge — only the
	// scatter data path does, and that is what this test times.
	if _, err := r.intermInfo(context.Background(), "demo", "joined"); err != nil {
		t.Fatal(err)
	}
	slow := primaryOf(t, r, 0)
	nodes[slow].fb.SetLatency(1500 * time.Millisecond)

	start := time.Now()
	tk, err := r.TopK(context.Background(), "demo", "joined", "logerror", 10)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	dtk, err := sys.TopK("demo", "joined", "logerror", 10)
	if err != nil {
		t.Fatal(err)
	}
	assertTopKEqual(t, tk.Entries, dtk)
	if tk.Degraded {
		t.Fatal("hedged query reported degraded")
	}
	if elapsed >= 1500*time.Millisecond {
		t.Fatalf("query waited out the slow shard (%v): hedging did not engage", elapsed)
	}
	if r.met.hedgesFired.Value() == 0 {
		t.Fatal("no hedges fired against a slow primary")
	}
	if r.met.hedgesWon.Value() == 0 {
		t.Fatal("no hedge won against a 1.5s-slow primary")
	}
}

// TestFailoverReplicated: with the primary of block 0 partitioned and
// replication 2, every query fails over and stays bit-exact — the caller
// never sees the fault.
func TestFailoverReplicated(t *testing.T) {
	r, nodes := newTestCluster(t, 3, testConfig())
	sys := anyNode(nodes)
	dead := primaryOf(t, r, 0)
	nodes[dead].fb.Partition()

	ctx := context.Background()
	fr, err := r.FilterRows(ctx, "demo", "joined", "logerror", "gt", 0)
	if err != nil {
		t.Fatalf("replicated cluster surfaced a shard loss: %v", err)
	}
	if fr.Degraded {
		t.Fatal("replicated failover reported degraded")
	}
	direct, err := sys.FilterRows("demo", "joined", "logerror", mustOp(t, "gt"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Rows) != len(direct) {
		t.Fatalf("filter rows %d vs %d", len(fr.Rows), len(direct))
	}
	for i := range fr.Rows {
		if fr.Rows[i] != direct[i] {
			t.Fatalf("failover filter mismatch at %d", i)
		}
	}

	tk, err := r.TopK(ctx, "demo", "joined", "logerror", 12)
	if err != nil {
		t.Fatal(err)
	}
	dtk, err := sys.TopK("demo", "joined", "logerror", 12)
	if err != nil {
		t.Fatal(err)
	}
	assertTopKEqual(t, tk.Entries, dtk)
	if r.met.failovers.Value() == 0 {
		t.Fatal("failover counter did not move")
	}
	if r.met.degraded.Value() != 0 {
		t.Fatal("degraded counter moved on a fully-replicated loss")
	}
}

// TestUnreplicatedShardDownDegraded: replication 1 and the owner of
// block 0 gone. The router returns everything the surviving shards hold
// plus a typed DegradedError naming exactly the missing row-blocks.
func TestUnreplicatedShardDownDegraded(t *testing.T) {
	cfg := testConfig()
	cfg.Replication = 1
	cfg.RetryRounds = 1
	r, nodes := newTestCluster(t, 3, cfg)
	sys := anyNode(nodes)
	dead := primaryOf(t, r, 0)
	nodes[dead].fb.Partition()

	ctx := context.Background()
	fr, err := r.FilterRows(ctx, "demo", "joined", "logerror", "gt", 0)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T, want *DegradedError", err)
	}
	if len(de.Missing) == 0 || !errors.Is(de.Cause, ErrPartitioned) {
		t.Fatalf("degraded manifest = %+v", de)
	}
	if fr == nil || !fr.Degraded {
		t.Fatalf("degraded result not returned alongside the error: %+v", fr)
	}

	// The missing manifest must be exactly the dead shard's blocks.
	info, ok := sys.Metadata().IntermSnapshot("demo", "joined")
	if !ok {
		t.Fatal("joined not in catalog")
	}
	for _, br := range blockRanges(info.Rows, cfg.BlockRows) {
		owner := r.ring.Owners(BlockRef{Model: "demo", Intermediate: "joined", Block: br.Block})[0]
		missing := false
		for _, m := range de.Missing {
			if m.Block == br.Block {
				missing = true
			}
		}
		if missing != (owner == dead) {
			t.Fatalf("block %d: missing=%v but owner=%s (dead=%s)", br.Block, missing, owner, dead)
		}
	}

	// Served rows are exact: the single-node answer minus missing ranges.
	direct, err := sys.FilterRows("demo", "joined", "logerror", mustOp(t, "gt"), 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for _, row := range direct {
		lost := false
		for _, m := range de.Missing {
			if row >= m.From && row < m.To {
				lost = true
			}
		}
		if !lost {
			want = append(want, row)
		}
	}
	if len(fr.Rows) != len(want) {
		t.Fatalf("served rows %d, want %d", len(fr.Rows), len(want))
	}
	for i := range want {
		if fr.Rows[i] != want[i] {
			t.Fatalf("served row mismatch at %d", i)
		}
	}

	// GetRows keeps global alignment: nil rows exactly over the gap.
	rr, err := r.GetRows(ctx, "demo", "joined", []string{"logerror"}, 0, info.Rows)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("GetRows err = %v, want ErrDegraded", err)
	}
	for i, row := range rr.Data {
		lost := false
		for _, m := range de.Missing {
			if i >= m.From && i < m.To {
				lost = true
			}
		}
		if lost != (row == nil) {
			t.Fatalf("row %d: lost=%v but data nil=%v", i, lost, row == nil)
		}
	}
	if r.met.degraded.Value() == 0 {
		t.Fatal("degraded counter did not move")
	}
}

// TestMembershipFlapping: a flapping shard walks healthy → suspect →
// down and back, probe traffic backs off toward the cap while it fails
// (no thundering herd), and an alive-but-degraded shard is suspected but
// never declared down.
func TestMembershipFlapping(t *testing.T) {
	cfg := testConfig()
	cfg.DisableProbes = false
	cfg.Member = MemberConfig{
		ProbeInterval:   20 * time.Millisecond,
		ProbeTimeout:    200 * time.Millisecond,
		DownAfter:       3,
		MaxProbeBackoff: 160 * time.Millisecond,
	}
	r, nodes := newTestCluster(t, 3, cfg)
	var id ShardID = "s1"
	fb := nodes[id].fb

	// Degraded readiness: suspect, at normal cadence, never down.
	fb.SetDegraded(true)
	waitFor(t, "s1 suspect", func() bool { return r.mem.State(id) == Suspect })
	time.Sleep(250 * time.Millisecond) // many probe intervals
	if st := r.mem.State(id); st != Suspect {
		t.Fatalf("degraded shard state = %v, want suspect (never down)", st)
	}
	fb.Heal()
	waitFor(t, "s1 healthy again", func() bool { return r.mem.State(id) == Healthy })

	// Hard partition: down after DownAfter consecutive failures.
	fb.Partition()
	waitFor(t, "s1 down", func() bool { return r.mem.State(id) == Down })

	// While it stays down, probes back off toward MaxProbeBackoff. At the
	// 160ms cap (jittered to [80ms, 160ms)) a 600ms window sees at most
	// ~8 probes; a herd at the raw 20ms interval would send ~30+.
	before := fb.Calls("ready")
	time.Sleep(600 * time.Millisecond)
	if delta := fb.Calls("ready") - before; delta > 10 {
		t.Fatalf("%d probes in 600ms against a down shard: backoff not engaged", delta)
	}

	// Queries keep working around the down shard (replication 2).
	fr, err := r.FilterRows(context.Background(), "demo", "joined", "logerror", "gt", 0)
	if err != nil || fr.Degraded {
		t.Fatalf("query around down shard: %+v, %v", fr, err)
	}

	// Flap back: heal and recover to healthy.
	fb.Heal()
	waitFor(t, "s1 recovered", func() bool { return r.mem.State(id) == Healthy })
	if r.met.toDown.Value() == 0 || r.met.toHealthy.Value() == 0 {
		t.Fatal("membership transition counters did not move")
	}
}

// TestAdmissionShed: a shard with a full admission semaphore sheds
// instantly instead of queueing.
func TestAdmissionShed(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPerShard = 1
	r, _ := newTestCluster(t, 1, cfg)
	h := r.shards["s0"]
	h.sem <- struct{}{} // occupy the only slot
	_, err := r.call(context.Background(), h, func(ctx context.Context, be Backend) (any, error) {
		t.Fatal("shed call must not reach the backend")
		return nil, nil
	})
	if !errors.Is(err, errShardBusy) {
		t.Fatalf("err = %v, want errShardBusy", err)
	}
	if r.met.shed.Value() != 1 {
		t.Fatalf("shed counter = %d", r.met.shed.Value())
	}
	<-h.sem
}

// TestPermanentErrorsNoFailover: a 404 is a definitive answer, not a
// fault — no retries, no failover, surfaced as-is.
func TestPermanentErrorsNoFailover(t *testing.T) {
	r, nodes := newTestCluster(t, 3, testConfig())
	_, err := r.FilterRows(context.Background(), "demo", "nope", "logerror", "gt", 0)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 404 {
		t.Fatalf("unknown intermediate err = %v", err)
	}
	if errors.Is(err, ErrDegraded) {
		t.Fatal("a 404 must not masquerade as degradation")
	}
	// Exactly one catalog probe: the first shard's answer was final.
	total := 0
	for _, nd := range nodes {
		total += nd.fb.Calls("interm")
	}
	if total != 1 {
		t.Fatalf("%d catalog calls for a permanent error, want 1", total)
	}
}

// TestClusterMetricsExposition: the mistique_cluster_* series surface
// through the standard obs Prometheus exposition.
func TestClusterMetricsExposition(t *testing.T) {
	cfg := testConfig()
	r, nodes := newTestCluster(t, 3, cfg)
	dead := primaryOf(t, r, 0)
	nodes[dead].fb.Partition()
	if _, err := r.TopK(context.Background(), "demo", "joined", "logerror", 5); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := cfg.Obs.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"mistique_cluster_queries_total",
		"mistique_cluster_failovers_total",
		"mistique_cluster_hedges_fired_total",
		"mistique_cluster_degraded_results_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func assertTopKEqual(t *testing.T, got []mistique.TopKEntry, want []mistique.TopKEntry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("topk %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Row != want[i].Row || !f32eq(got[i].Value, want[i].Value) {
			t.Fatalf("topk mismatch at %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func mustOp(t *testing.T, op string) colstore.Op {
	t.Helper()
	switch op {
	case "gt":
		return colstore.Gt
	case "ge":
		return colstore.Ge
	case "lt":
		return colstore.Lt
	case "le":
		return colstore.Le
	}
	t.Fatalf("bad op %q", op)
	return 0
}
