package cluster

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"
)

// State is a shard's position in the three-state membership view.
//
//	healthy --probe fails--> suspect --DownAfter consecutive--> down
//	suspect/down --probe succeeds--> healthy
//	healthy --probe answers "degraded" (alive, shedding)--> suspect
//
// Suspect means "route around me when you can": the shard keeps its
// place in every replica chain, just at the back, so a stale view can
// never make data unreachable. Down means "last resort only".
type State int32

const (
	Healthy State = iota
	Suspect
	Down
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	}
	return "unknown"
}

// MemberConfig controls the active health checker. Zero values select
// defaults.
type MemberConfig struct {
	// ProbeInterval is the cadence against a healthy shard (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 1s).
	ProbeTimeout time.Duration
	// DownAfter is the consecutive probe failures that demote suspect to
	// down (default 3). The first failure already marks suspect.
	DownAfter int
	// MaxProbeBackoff caps the per-shard probe backoff (default 30s).
	// While a shard keeps failing its probe interval doubles toward this
	// cap, so a long outage costs O(log) probes, not a steady hammer.
	MaxProbeBackoff time.Duration
}

func (c MemberConfig) withDefaults() MemberConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.MaxProbeBackoff <= 0 {
		c.MaxProbeBackoff = 30 * time.Second
	}
	return c
}

type memberState struct {
	id       ShardID
	be       Backend
	state    State
	fails    int
	interval time.Duration
}

// Membership runs one probe loop per shard and maintains the view. The
// router consults it to order replica chains; anything else (tests, the
// CLI) can read View.
type Membership struct {
	cfg MemberConfig
	met *routerMetrics

	mu      sync.Mutex
	members map[ShardID]*memberState

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

func newMembership(shards []Shard, cfg MemberConfig, met *routerMetrics) *Membership {
	m := &Membership{
		cfg:     cfg.withDefaults(),
		met:     met,
		members: make(map[ShardID]*memberState, len(shards)),
		stop:    make(chan struct{}),
	}
	for _, s := range shards {
		m.members[s.ID] = &memberState{id: s.ID, be: s.Backend, state: Healthy, interval: m.cfg.ProbeInterval}
	}
	return m
}

// Start launches the probe loops (idempotent is not needed — the router
// calls it once).
func (m *Membership) Start() {
	for _, ms := range m.members {
		m.wg.Add(1)
		go m.run(ms)
	}
}

// Close stops every probe loop and waits for them.
func (m *Membership) Close() {
	m.once.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// State returns one shard's current state (Healthy for unknown ids, so a
// misconfigured caller fails open rather than blackholing a shard).
func (m *Membership) State(id ShardID) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ms, ok := m.members[id]; ok {
		return ms.state
	}
	return Healthy
}

// View snapshots every shard's state.
func (m *Membership) View() map[ShardID]State {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[ShardID]State, len(m.members))
	for id, ms := range m.members {
		out[id] = ms.state
	}
	return out
}

// setState transitions ms, counting the edge. Caller holds m.mu.
func (m *Membership) setState(ms *memberState, st State) {
	if ms.state == st {
		return
	}
	ms.state = st
	switch st {
	case Healthy:
		m.met.toHealthy.Inc()
	case Suspect:
		m.met.toSuspect.Inc()
	case Down:
		m.met.toDown.Inc()
	}
}

// run is one shard's probe loop. The interval is jittered (half fixed,
// half random) so a fleet of routers never probes in lockstep, and it
// doubles toward MaxProbeBackoff while the shard keeps failing — a
// flapping or dead shard sees O(log outage) probes instead of a herd.
func (m *Membership) run(ms *memberState) {
	defer m.wg.Done()
	timer := time.NewTimer(jitterInterval(m.cfg.ProbeInterval))
	defer timer.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-timer.C:
		}
		ok, degraded := m.probe(ms.be)
		m.mu.Lock()
		switch {
		case ok:
			ms.fails = 0
			ms.interval = m.cfg.ProbeInterval
			m.setState(ms, Healthy)
		case degraded:
			// Alive but asking to be shed: suspect, but never demoted to
			// down and probed at the normal cadence — it answers fast.
			ms.fails = 0
			ms.interval = m.cfg.ProbeInterval
			m.setState(ms, Suspect)
		default:
			ms.fails++
			if ms.fails >= m.cfg.DownAfter {
				m.setState(ms, Down)
			} else {
				m.setState(ms, Suspect)
			}
			ms.interval *= 2
			if ms.interval > m.cfg.MaxProbeBackoff {
				ms.interval = m.cfg.MaxProbeBackoff
			}
		}
		next := ms.interval
		m.mu.Unlock()
		timer.Reset(jitterInterval(next))
	}
}

// probe sends one readiness check. ok means take traffic; degraded means
// alive but shedding (a /readyz 503 with a body, or any decodable
// degraded answer).
func (m *Membership) probe(be Backend) (ok, degraded bool) {
	m.met.probes.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.ProbeTimeout)
	defer cancel()
	resp, ready, err := be.Ready(ctx)
	if err != nil {
		m.met.probeFails.Inc()
		return false, false
	}
	if ready {
		return true, false
	}
	_ = resp
	return false, true
}

// jitterInterval spreads a probe interval over [d/2, d): a fixed floor
// keeps probes from spinning hot, the random half decorrelates loops.
func jitterInterval(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(half)))
}

// fullJitter draws uniformly from [0, cap] — the retry-backoff sleep
// (mirrors the client's policy; see client.WithBackoff).
func fullJitter(cap time.Duration) time.Duration {
	if cap <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(cap) + 1))
}
