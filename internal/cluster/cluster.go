// Package cluster distributes the MISTIQUE query surface across shard
// nodes. A Router places row-blocks of every intermediate on a
// consistent-hash ring keyed by (model, intermediate, row-block) with
// configurable replication, and answers FilterRows / TopK / GetRows /
// GetIntermediate by fanning shard-local sub-queries over the HTTP API
// (mistique/client) and merging the per-block answers deterministically —
// TOPK candidates are re-ranked with the engine's pinned diag.RankLess
// comparator, so a scatter-gather answer is bit-identical to a
// single-node scan.
//
// Robustness is the point of the package, not an afterthought:
//
//   - Retries use full-jitter backoff under a per-query budget, so a
//     saturated shard sees a spread-out trickle instead of a synchronized
//     wave.
//   - Hedged requests: when a shard sits past its own p95 latency, the
//     router races the next replica and the first success wins; the loser
//     is cancelled. Tail latency of a slow or hung shard stops being the
//     tail latency of the query.
//   - Active health checks drive a three-state membership view (healthy /
//     suspect / down). Suspects are tried only after healthy replicas,
//     down shards only as a last resort, and probe frequency backs off
//     exponentially while a shard stays bad — a flapping node does not
//     attract a thundering herd of probes.
//   - Per-shard admission control mirrors the server's PR 4 semaphore
//     semantics on the client side: a shard at its in-flight bound sheds
//     instantly and the replica chain goes elsewhere.
//   - Graceful degradation: when a block is replicated, losing a shard is
//     invisible (transparent failover). When it is not, the query returns
//     everything it could compute plus a typed *DegradedError naming
//     exactly the missing row-blocks — never silently wrong data, never
//     an opaque failure.
//
// The fault matrix in the package tests runs a real 3-node in-process
// cluster (three Systems behind three HTTP servers) wrapped in
// FaultBackend, which extends the internal/faultfs injection philosophy
// to the network: latency, errors, hangs, flaps and partitions.
package cluster

// ShardID names one shard node.
type ShardID string

// Shard pairs a shard's identity with the transport used to reach it.
type Shard struct {
	ID      ShardID
	Backend Backend
}
