package cluster

import (
	"context"
	"testing"
)

// The scatter-gather benchmarks run the full stack — router, HTTP wire,
// three real shards — so they price the distribution overhead the way a
// deployment would see it. They feed the same benchjson -compare gate as
// the engine benchmarks.

func benchCluster(b *testing.B) *Router {
	cfg := testConfig()
	r, _ := newTestCluster(b, 3, cfg)
	// Warm the catalog so the loop measures the scatter path, not the
	// first lookup.
	if _, err := r.intermInfo(context.Background(), "demo", "joined"); err != nil {
		b.Fatal(err)
	}
	return r
}

func BenchmarkScatterGatherTOPK(b *testing.B) {
	r := benchCluster(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk, err := r.TopK(ctx, "demo", "joined", "logerror", 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(tk.Entries) != 10 {
			b.Fatalf("got %d entries", len(tk.Entries))
		}
	}
}

func BenchmarkScatterGatherFilter(b *testing.B) {
	r := benchCluster(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := r.FilterRows(ctx, "demo", "joined", "logerror", "gt", 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(fr.Rows) == 0 {
			b.Fatal("empty filter result")
		}
	}
}
