package cluster

import (
	"strings"

	"mistique/internal/obs"
)

// routerMetrics holds the mistique_cluster_* instruments. Registering
// them in a System's obs registry (or any registry a /metrics handler
// exposes) surfaces the cluster's behavior next to the engine's own
// series. Nil-registry safety comes from obs itself: a nil *Registry
// hands out nil no-op instruments.
type routerMetrics struct {
	queries     *obs.Counter
	hedgesFired *obs.Counter
	hedgesWon   *obs.Counter
	failovers   *obs.Counter
	retries     *obs.Counter
	shed        *obs.Counter
	degraded    *obs.Counter

	probes       *obs.Counter
	probeFails   *obs.Counter
	toHealthy    *obs.Counter
	toSuspect    *obs.Counter
	toDown       *obs.Counter
}

func newRouterMetrics(reg *obs.Registry) *routerMetrics {
	return &routerMetrics{
		queries:     reg.Counter("mistique_cluster_queries_total", "scatter-gather queries issued by the router"),
		hedgesFired: reg.Counter("mistique_cluster_hedges_fired_total", "hedged sub-requests started after a shard sat past its p95"),
		hedgesWon:   reg.Counter("mistique_cluster_hedges_won_total", "hedged sub-requests that answered before the primary"),
		failovers:   reg.Counter("mistique_cluster_failovers_total", "sub-requests moved to the next replica after a shard error"),
		retries:     reg.Counter("mistique_cluster_retries_total", "replica-chain retry rounds started after full-jitter backoff"),
		shed:        reg.Counter("mistique_cluster_shard_shed_total", "sub-requests shed by a shard's client-side admission semaphore"),
		degraded:    reg.Counter("mistique_cluster_degraded_results_total", "queries answered partially with a typed DegradedError"),
		probes:      reg.Counter("mistique_cluster_probes_total", "health probes sent"),
		probeFails:  reg.Counter("mistique_cluster_probe_failures_total", "health probes that errored or timed out"),
		toHealthy:   reg.Counter("mistique_cluster_healthy_transitions_total", "membership transitions into healthy"),
		toSuspect:   reg.Counter("mistique_cluster_suspect_transitions_total", "membership transitions into suspect"),
		toDown:      reg.Counter("mistique_cluster_down_transitions_total", "membership transitions into down"),
	}
}

// metricName sanitizes a shard id into a Prometheus-safe metric suffix.
func metricName(id ShardID) string {
	var b strings.Builder
	for _, r := range string(id) {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
