package nindex

import (
	"math"
	"math/rand"
	"testing"
)

func TestBuildShapes(t *testing.T) {
	vals := []float32{5, 1, float32(math.NaN()), 3, 3, -2, float32(math.Inf(1)), 0}
	x := Build(vals, 4, 42, Config{SegmentEntries: 3, HistogramBins: 4})
	if x.Rows() != 8 || x.Sig() != 42 {
		t.Fatalf("rows=%d sig=%d", x.Rows(), x.Sig())
	}
	if len(x.BlockZones()) != 2 {
		t.Fatalf("%d zones for 8 rows of 4", len(x.BlockZones()))
	}
	// 7 non-NaN entries in 3-entry segments (3+3+1) plus one NaN segment.
	if x.Segments() != 4 || x.nonNaN != 3 {
		t.Fatalf("segments=%d nonNaN=%d", x.Segments(), x.nonNaN)
	}
	for i, seg := range x.segs {
		if seg.nan != (i >= x.nonNaN) {
			t.Fatalf("segment %d nan=%v", i, seg.nan)
		}
	}
	h := x.Hist()
	if h.NaNs != 1 {
		t.Fatalf("histogram NaNs=%d", h.NaNs)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 7 {
		t.Fatalf("histogram counts sum %d, want 7", total)
	}
	if x.Bytes() <= 0 {
		t.Fatal("zero footprint")
	}
}

func TestHistogramEquiDepth(t *testing.T) {
	vals := make([]float32, 1000)
	for i := range vals {
		vals[i] = float32(i)
	}
	h := buildHistogram(vals, 10)
	if len(h.Counts) != 10 || len(h.Bounds) != 11 {
		t.Fatalf("bins=%d bounds=%d", len(h.Counts), len(h.Bounds))
	}
	for b, c := range h.Counts {
		if c != 100 {
			t.Fatalf("bin %d count %d, want 100", b, c)
		}
	}
	if h.Bounds[0] != 0 || h.Bounds[10] != 999 {
		t.Fatalf("bounds [%v, %v]", h.Bounds[0], h.Bounds[10])
	}
	// More bins than values collapses to one bin per value.
	h = buildHistogram([]float32{2, 1}, 64)
	if len(h.Counts) != 2 {
		t.Fatalf("tiny column got %d bins", len(h.Counts))
	}
}

func TestZonesIgnoreNaNAndMarkAllNaNInverted(t *testing.T) {
	nan := float32(math.NaN())
	zones := buildZones([]float32{1, nan, 3, nan, nan, nan}, 3)
	if len(zones) != 2 {
		t.Fatalf("%d zones", len(zones))
	}
	if zones[0].Min != 1 || zones[0].Max != 3 {
		t.Fatalf("zone 0 [%v, %v]", zones[0].Min, zones[0].Max)
	}
	if zones[1].Min <= zones[1].Max {
		t.Fatalf("all-NaN zone not inverted: [%v, %v]", zones[1].Min, zones[1].Max)
	}
}

func TestDecodeRowsRejectsCorruptPayloads(t *testing.T) {
	seg := buildSegment([]float32{9, 8, 7}, []int{0, 1, 2}, false)
	if rows, err := seg.decodeRows(3); err != nil || len(rows) != 3 {
		t.Fatalf("clean decode: rows=%v err=%v", rows, err)
	}
	// Row id out of range.
	if _, err := seg.decodeRows(2); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	// Truncated varints.
	trunc := seg
	trunc.rowsEnc = seg.rowsEnc[:1]
	if _, err := trunc.decodeRows(3); err == nil {
		t.Fatal("truncated row list accepted")
	}
	// Trailing bytes.
	tail := seg
	tail.rowsEnc = append(append([]byte{}, seg.rowsEnc...), 0)
	if _, err := tail.decodeRows(3); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Non-monotone deltas (a zero delta re-encodes the same row).
	dup := buildSegment([]float32{9, 8}, []int{1, 1}, false)
	if _, err := dup.decodeRows(3); err == nil {
		t.Fatal("duplicate row accepted")
	}
	// Value payload length mismatch.
	bad := seg
	bad.valsEnc = seg.valsEnc[:5]
	if _, err := bad.decodeVals(); err == nil {
		t.Fatal("short value payload accepted")
	}
}

func TestPlanKNNOrdersAndBounds(t *testing.T) {
	// Two columns, three blocks; the query sits inside block 1's ranges.
	colZones := [][]Zone{
		{{Min: 10, Max: 20, Count: 4}, {Min: 0, Max: 1, Count: 4}, {Min: -5, Max: -4, Count: 4}},
		{{Min: 10, Max: 20, Count: 4}, {Min: 0, Max: 1, Count: 4}, {Min: -5, Max: -4, Count: 4}},
	}
	plan := PlanKNN([]float32{0.5, 0.5}, colZones)
	if len(plan) != 3 {
		t.Fatalf("%d blocks", len(plan))
	}
	if plan[0].Block != 1 || plan[0].LB != 0 {
		t.Fatalf("nearest block %d lb %v", plan[0].Block, plan[0].LB)
	}
	for i := 1; i < len(plan); i++ {
		if plan[i].LB < plan[i-1].LB {
			t.Fatalf("plan not LB-ascending at %d", i)
		}
	}
	// Inverted (all-NaN) zones and NaN query coords contribute nothing.
	inverted := [][]Zone{{{Min: float32(math.Inf(1)), Max: float32(math.Inf(-1))}}}
	p := PlanKNN([]float32{float32(math.NaN())}, inverted)
	if len(p) != 1 || p[0].LB != 0 {
		t.Fatalf("inverted zone plan %+v", p)
	}
}

func TestOpPredicates(t *testing.T) {
	cases := []struct {
		op       Op
		v, bound float32
		match    bool
		str      string
		skipMin  float32 // a [min,max] that must be skippable
		skipMax  float32
		fullMin  float32 // a [min,max] that must full-match
		fullMax  float32
	}{
		{Gt, 2, 1, true, ">", -3, 1, 1.5, 9},
		{Ge, 1, 1, true, ">=", -3, 0.5, 1, 9},
		{Lt, 0, 1, true, "<", 1, 9, -3, 0.5},
		{Le, 1, 1, true, "<=", 1.5, 9, -3, 1},
	}
	for _, c := range cases {
		if c.op.String() != c.str {
			t.Errorf("%v String %q", c.op, c.op.String())
		}
		if c.op.matches(c.v, c.bound) != c.match {
			t.Errorf("%v matches(%v, %v)", c.op, c.v, c.bound)
		}
		if !c.op.canSkip(c.skipMin, c.skipMax, c.bound) {
			t.Errorf("%v canSkip [%v,%v] vs %v", c.op, c.skipMin, c.skipMax, c.bound)
		}
		if !c.op.fullMatch(c.fullMin, c.fullMax, c.bound) {
			t.Errorf("%v fullMatch [%v,%v] vs %v", c.op, c.fullMin, c.fullMax, c.bound)
		}
		// NaN bound: nothing matches, nothing full-matches.
		nan := float32(math.NaN())
		if c.op.matches(c.v, nan) || c.op.fullMatch(-1, 1, nan) {
			t.Errorf("%v accepted a NaN bound", c.op)
		}
	}
}

func TestBuildDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float32, 3000)
	for i := range vals {
		vals[i] = rng.Float32()
	}
	x := Build(vals, 0, 0, Config{})
	if got := x.Segments(); got != 3 { // 3000 rows / default 1024-entry segments
		t.Fatalf("%d segments with default config", got)
	}
	if len(x.Hist().Counts) != 64 {
		t.Fatalf("%d histogram bins with default config", len(x.Hist().Counts))
	}
	if len(x.BlockZones()) != 3 {
		t.Fatalf("%d zones with default blockRows", len(x.BlockZones()))
	}
}
