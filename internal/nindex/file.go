package nindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// On-disk format of one persisted index ("MQNI" v1). All integers are
// little-endian; varints are unsigned (binary.Uvarint).
//
//	magic      "MQNI" (4 bytes)
//	version    1 byte (currently 1)
//	key        uvarint length + bytes (the column's logical identity,
//	           verified on load so a hash-named file can never answer
//	           for the wrong column)
//	sig        u32 — colstore.ColumnSignature at build time
//	rows       uvarint
//	blockRows  uvarint
//	nonNaN     uvarint — count of leading non-NaN segments (the NaN tail
//	           is derived from position, not stored per segment)
//	histogram  uvarint bin count, then bins+1 f32 bounds, bins uvarint
//	           counts, uvarint NaN count (bin count 0 ⇒ no bounds/counts)
//	zones      uvarint count, then {f32 min, f32 max, uvarint count} each
//	segments   uvarint count, then per segment:
//	           uvarint entry count, f32 max, f32 min,
//	           uvarint rows-payload length + delta-varint row bytes,
//	           raw f32 value bytes (length = 4·entries, implicit)
//	footer     u32 CRC32-C over everything above
//
// Decode is strict: every structural invariant the probe paths rely on is
// checked, trailing bytes are an error, and a decoded index re-encodes to
// a canonical byte string (Encode always emits minimal varints), so
// decode→encode→decode is a fixed point — the property FuzzNIndexFile
// pins down.

const (
	fileMagic   = "MQNI"
	fileVersion = 1

	// maxKeyLen bounds the stored key string; real keys are short
	// model/interm/column triples.
	maxKeyLen = 4096
)

// ErrCorrupt marks a persisted index that failed validation; the manager
// quarantines the file and rebuilds from the column data.
var ErrCorrupt = errors.New("nindex: corrupt index file")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Encode serializes the index with its logical key into the MQNI v1 wire
// form, CRC32-C footer included.
func Encode(key string, x *Index) []byte {
	var scratch [binary.MaxVarintLen64]byte
	uv := func(b []byte, v uint64) []byte {
		return append(b, scratch[:binary.PutUvarint(scratch[:], v)]...)
	}
	f32 := func(b []byte, v float32) []byte {
		return binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
	}

	buf := make([]byte, 0, 64+int(x.bytes))
	buf = append(buf, fileMagic...)
	buf = append(buf, fileVersion)
	buf = uv(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint32(buf, x.sig)
	buf = uv(buf, uint64(x.rows))
	buf = uv(buf, uint64(x.blockRows))
	buf = uv(buf, uint64(x.nonNaN))

	bins := len(x.hist.Counts)
	buf = uv(buf, uint64(bins))
	for _, b := range x.hist.Bounds {
		buf = f32(buf, b)
	}
	for _, c := range x.hist.Counts {
		buf = uv(buf, uint64(c))
	}
	buf = uv(buf, uint64(x.hist.NaNs))

	buf = uv(buf, uint64(len(x.zones)))
	for _, z := range x.zones {
		buf = f32(buf, z.Min)
		buf = f32(buf, z.Max)
		buf = uv(buf, uint64(z.Count))
	}

	buf = uv(buf, uint64(len(x.segs)))
	for i := range x.segs {
		s := &x.segs[i]
		buf = uv(buf, uint64(s.count))
		buf = f32(buf, s.max)
		buf = f32(buf, s.min)
		buf = uv(buf, uint64(len(s.rowsEnc)))
		buf = append(buf, s.rowsEnc...)
		buf = append(buf, s.valsEnc...)
	}

	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// reader is a bounds-checked cursor over the decode buffer. Every length
// it returns has been verified against the remaining payload, so Decode
// never over-allocates on adversarial input.
type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, corruptf("need %d bytes, have %d", n, r.remaining())
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, corruptf("bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// count reads a uvarint that counts elements of at least elemBytes each
// and rejects values the remaining payload cannot possibly hold.
func (r *reader) count(elemBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining())/uint64(elemBytes) {
		return 0, corruptf("count %d exceeds payload", v)
	}
	return int(v), nil
}

func (r *reader) f32() (float32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(b)), nil
}

// Decode parses and validates one MQNI file, returning the stored key and
// the index. Any structural violation returns an error wrapping
// ErrCorrupt; the returned index is safe to probe (row lists are further
// validated lazily at decode time).
func Decode(data []byte) (string, *Index, error) {
	if len(data) < len(fileMagic)+1+4 {
		return "", nil, corruptf("short file (%dB)", len(data))
	}
	body, footer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(footer), crc32.Checksum(body, castagnoli); got != want {
		return "", nil, corruptf("checksum mismatch (got %08x want %08x)", got, want)
	}
	r := &reader{buf: body}
	if m, err := r.bytes(len(fileMagic)); err != nil || string(m) != fileMagic {
		return "", nil, corruptf("bad magic")
	}
	if v, err := r.bytes(1); err != nil || v[0] != fileVersion {
		return "", nil, corruptf("unsupported version")
	}
	keyLen, err := r.count(1)
	if err != nil {
		return "", nil, err
	}
	if keyLen > maxKeyLen {
		return "", nil, corruptf("key length %d", keyLen)
	}
	keyBytes, err := r.bytes(keyLen)
	if err != nil {
		return "", nil, err
	}
	key := string(keyBytes)

	x := &Index{}
	sigBytes, err := r.bytes(4)
	if err != nil {
		return "", nil, err
	}
	x.sig = binary.LittleEndian.Uint32(sigBytes)
	rows, err := r.uvarint()
	if err != nil {
		return "", nil, err
	}
	blockRows, err := r.uvarint()
	if err != nil {
		return "", nil, err
	}
	nonNaN, err := r.uvarint()
	if err != nil {
		return "", nil, err
	}
	// Each row carries at least 4 value bytes somewhere in the segment
	// payload, which bounds rows by the file size.
	if rows > uint64(len(data))/4 {
		return "", nil, corruptf("row count %d exceeds payload", rows)
	}
	if blockRows == 0 || blockRows > uint64(math.MaxInt32) {
		return "", nil, corruptf("block rows %d", blockRows)
	}
	x.rows = int(rows)
	x.blockRows = int(blockRows)

	if x.hist, err = decodeHistogram(r, x.rows); err != nil {
		return "", nil, err
	}

	nZones, err := r.count(9) // f32 + f32 + ≥1-byte count
	if err != nil {
		return "", nil, err
	}
	wantZones := 0
	if x.rows > 0 {
		wantZones = (x.rows + x.blockRows - 1) / x.blockRows
	}
	if nZones != wantZones {
		return "", nil, corruptf("%d zones for %d rows of %d", nZones, x.rows, x.blockRows)
	}
	x.zones = make([]Zone, nZones)
	zoneSum := 0
	for i := range x.zones {
		if x.zones[i].Min, err = r.f32(); err != nil {
			return "", nil, err
		}
		if x.zones[i].Max, err = r.f32(); err != nil {
			return "", nil, err
		}
		c, err := r.uvarint()
		if err != nil {
			return "", nil, err
		}
		if c > uint64(x.blockRows) {
			return "", nil, corruptf("zone %d count %d exceeds block", i, c)
		}
		x.zones[i].Count = int(c)
		zoneSum += int(c)
	}
	if zoneSum != x.rows {
		return "", nil, corruptf("zone counts sum %d, rows %d", zoneSum, x.rows)
	}

	nSegs, err := r.count(10) // count + max + min + rows len, minimum ~10B
	if err != nil {
		return "", nil, err
	}
	if nonNaN > uint64(nSegs) {
		return "", nil, corruptf("nonNaN %d of %d segments", nonNaN, nSegs)
	}
	x.nonNaN = int(nonNaN)
	x.segs = make([]segment, nSegs)
	segSum := 0
	for i := range x.segs {
		s := &x.segs[i]
		s.nan = i >= x.nonNaN
		cnt, err := r.uvarint()
		if err != nil {
			return "", nil, err
		}
		if cnt == 0 || cnt > uint64(x.rows) {
			return "", nil, corruptf("segment %d entry count %d", i, cnt)
		}
		s.count = int(cnt)
		if s.max, err = r.f32(); err != nil {
			return "", nil, err
		}
		if s.min, err = r.f32(); err != nil {
			return "", nil, err
		}
		rowsLen, err := r.count(1)
		if err != nil {
			return "", nil, err
		}
		if s.rowsEnc, err = r.bytes(rowsLen); err != nil {
			return "", nil, err
		}
		if s.valsEnc, err = r.bytes(4 * s.count); err != nil {
			return "", nil, err
		}
		segSum += s.count
	}
	if segSum != x.rows {
		return "", nil, corruptf("segment counts sum %d, rows %d", segSum, x.rows)
	}
	if r.remaining() != 0 {
		return "", nil, corruptf("%d trailing bytes", r.remaining())
	}
	x.bytes = x.footprint()
	return key, x, nil
}

func decodeHistogram(r *reader, rows int) (Histogram, error) {
	var h Histogram
	bins, err := r.count(5) // f32 bound + ≥1-byte count per bin
	if err != nil {
		return h, err
	}
	if bins > rows {
		return h, corruptf("%d histogram bins for %d rows", bins, rows)
	}
	if bins > 0 {
		h.Bounds = make([]float32, bins+1)
		for i := range h.Bounds {
			if h.Bounds[i], err = r.f32(); err != nil {
				return h, err
			}
		}
		h.Counts = make([]int, bins)
		sum := 0
		for i := range h.Counts {
			c, err := r.uvarint()
			if err != nil {
				return h, err
			}
			if c > uint64(rows) {
				return h, corruptf("histogram bin %d count %d", i, c)
			}
			h.Counts[i] = int(c)
			sum += int(c)
		}
		if sum > rows {
			return h, corruptf("histogram counts sum %d, rows %d", sum, rows)
		}
	}
	nans, err := r.uvarint()
	if err != nil {
		return h, err
	}
	if nans > uint64(rows) {
		return h, corruptf("histogram NaN count %d, rows %d", nans, rows)
	}
	h.NaNs = int(nans)
	return h, nil
}
